// Ablation: sensitivity to N_o, the per-round batch size (Sec. VI-B).
//
// Eq. 2 predicts FAST-BASIC cycles ~ (N*L_f + M*L_t)/N_o + 4N + 2M: tiny N_o
// inflates the amortized module-latency term; beyond N_o >> (N*L_f+M*L_t)/
// (4N+2M) the return vanishes while the BRAM buffer (|V(q)|-1)*N_o keeps
// growing. This bench sweeps N_o and reports simulated time plus the BRAM
// buffer cost, exposing the paper's "carefully chosen based on the FPGA"
// trade-off. The TASK/SEP variants are insensitive to N_o by Eq. 3/4.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "fpga/cycle_model.h"

namespace fast::bench {
namespace {

struct NoRow {
  double basic_ms = 0;
  double sep_ms = 0;
  double buffer_kib = 0;
};

NoRow Measure(std::uint32_t no, int qi, const std::string& dataset) {
  const Graph& g = Dataset(dataset);
  const QueryGraph q = Query(qi);
  FastRunOptions options = BenchRunOptions(FastVariant::kBasic);
  options.fpga.max_new_partials = no;
  NoRow row;
  row.basic_ms = MustRunFast(q, g, options).kernel_seconds * 1e3;
  options.variant = FastVariant::kSep;
  row.sep_ms = MustRunFast(q, g, options).kernel_seconds * 1e3;
  row.buffer_kib =
      static_cast<double>(PartialBufferWords(options.fpga, q.NumVertices()) * 4) /
      1024.0;
  return row;
}

void BM_BatchSize(benchmark::State& state) {
  const auto no = static_cast<std::uint32_t>(state.range(0));
  NoRow row;
  for (auto _ : state) row = Measure(no, 8, "DG03");
  state.counters["basic_ms"] = row.basic_ms;
  state.counters["sep_ms"] = row.sep_ms;
  state.counters["buffer_KiB"] = row.buffer_kib;
}

BENCHMARK(BM_BatchSize)->RangeMultiplier(4)->Range(16, 65536)->Unit(benchmark::kMillisecond);

void PrintAblation() {
  std::printf("\nAblation: N_o sweep on q8 / DG03 (simulated kernel ms)\n");
  std::printf("%-8s %14s %14s %14s\n", "N_o", "BASIC ms", "SEP ms", "buffer KiB");
  for (std::uint32_t no = 16; no <= 65536; no *= 4) {
    const NoRow row = Measure(no, 8, "DG03");
    std::printf("%-8u %14.3f %14.3f %14.1f\n", no, row.basic_ms, row.sep_ms,
                row.buffer_kib);
  }
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fast::bench::PrintAblation();
  return 0;
}
