// Ablation: sensitivity to Port_max (= δ_D), the adjacency fan-out the edge
// validator's array partitioning can answer in O(1) (Sec. VI-A).
//
// Smaller ports force more CST partitions (D_CST must fit) -> more DMA loads
// and more host-side partition work; larger ports cost on-chip resources on
// a real device. This bench sweeps δ_D and reports #partitions, partition
// time and total simulated time, quantifying the design point the paper
// fixes implicitly when sizing the edge validator.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"

namespace fast::bench {
namespace {

struct PortRow {
  double partitions = 0;
  double partition_ms = 0;
  double total_ms = 0;
};

PortRow Measure(std::uint32_t ports, int qi, const std::string& dataset) {
  const Graph& g = Dataset(dataset);
  const QueryGraph q = Query(qi);
  FastRunOptions options = BenchRunOptions(FastVariant::kSep);
  options.fpga.port_max = ports;
  const auto r = MustRunFast(q, g, options);
  PortRow row;
  row.partitions = static_cast<double>(r.partition_stats.num_partitions);
  row.partition_ms = r.partition_seconds * 1e3;
  row.total_ms = r.total_seconds * 1e3;
  return row;
}

void BM_PortMax(benchmark::State& state) {
  const auto ports = static_cast<std::uint32_t>(state.range(0));
  PortRow row;
  for (auto _ : state) row = Measure(ports, 2, "DG01");
  state.counters["partitions"] = row.partitions;
  state.counters["partition_ms"] = row.partition_ms;
  state.counters["total_ms"] = row.total_ms;
}

BENCHMARK(BM_PortMax)->RangeMultiplier(2)->Range(32, 512)->Unit(benchmark::kMillisecond);

void PrintAblation() {
  std::printf("\nAblation: Port_max (delta_D) sweep on q2 / DG01\n");
  std::printf("%-10s %12s %16s %14s\n", "Port_max", "#CST", "partition ms",
              "total ms");
  for (std::uint32_t ports = 32; ports <= 512; ports *= 2) {
    const PortRow row = Measure(ports, 2, "DG01");
    std::printf("%-10u %12.0f %16.3f %14.3f\n", ports, row.partitions,
                row.partition_ms, row.total_ms);
  }
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fast::bench::PrintAblation();
  return 0;
}
