// bench_batching: cross-query/cross-tenant batch scheduling on the shared
// device executor (src/device/) vs the unbatched device path.
//
//   bench_batching [--sf 0.1] [--tenants 3] [--duration 2] [--clients 6]
//                  [--workers 4] [--queries 0,1,2] [--zipf-s 1.2] [--quota 16]
//                  [--batch-window-us 1000] [--max-batch 8]
//                  [--min-occupancy 1.05] [--max-p99-factor 10] [--json FILE]
//
// Unlike the other serve benches, --workers defaults to 4 (not hardware
// concurrency): cross-query batching needs more than one worker decomposing
// queries concurrently, and CI containers can report a single core. The
// window default (1 ms) similarly covers one query's host-side work on a
// contended core so concurrent workers' items land in one round.
//
// Two phases, both in device mode under identical Zipf-skewed multi-tenant
// closed-loop load (tenant 0 hottest):
//
//   unbatched  max_batch=1, window=0: every CST partition pays its own DMA
//              transaction — the per-query serving model, measured on the
//              same executor so the transfer accounting is identical;
//   batched    partitions from concurrent queries — across tenants — are
//              coalesced into device rounds, ONE transaction per round,
//              identical images crossing once.
//
// CI gates (exit 1):
//   - a tenant that completes zero queries in the batched phase (the WRR
//     device dequeue exists to prevent exactly this starvation);
//   - batched device-round occupancy (avg distinct queries per round) at or
//     below --min-occupancy: batching that never coalesces is broken;
//   - batched simulated transfer bytes per completed query not better than
//     unbatched (per-query, so closed-loop completion-count differences
//     between the phases cannot mask a regression);
//   - coldest-tenant batched p99 more than --max-p99-factor times its
//     unbatched p99 (the batch window must delay, not starve).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_serve_common.h"
#include "device/device_executor.h"
#include "ldbc/ldbc.h"
#include "tenant/tenant_router.h"
#include "tools/flag_parser.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace fast;
using bench::ServeBenchFpgaConfig;
using tenant::RouterOptions;
using tenant::RouterStats;
using tenant::TenantOptions;
using tenant::TenantRouter;

std::string TenantId(std::size_t i) { return "t" + std::to_string(i); }

struct PhaseOutcome {
  double elapsed = 0;
  double qps = 0;
  double p99_ms = 0;  // aggregate
  std::uint64_t completed = 0;
  std::vector<double> tenant_p99_ms;
  std::vector<std::uint64_t> tenant_completed;
  device::DeviceStats device;

  double WireBytesPerQuery() const {
    return completed > 0
               ? static_cast<double>(device.wire_bytes) /
                     static_cast<double>(completed)
               : 0.0;
  }
};

PhaseOutcome RunPhase(const std::vector<Graph>& graphs,
                      const std::vector<QueryGraph>& mix,
                      const RouterOptions& router_options,
                      const TenantOptions& tenant_options,
                      const std::vector<double>& cdf, std::size_t clients,
                      double duration_seconds) {
  TenantRouter router(router_options);
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    FAST_CHECK_OK(router.AddTenant(TenantId(i), graphs[i], tenant_options));
  }

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(0xBA7C4 + 1315423911u * c);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t t = SampleCdf(cdf, rng);
        (void)router.SubmitAndWait(TenantId(t), mix[rng.Uniform(mix.size())]);
      }
    });
  }
  while (ready.load() < clients) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  Timer wall;
  while (wall.ElapsedSeconds() < duration_seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  for (auto& t : threads) t.join();

  const RouterStats stats = router.stats();
  PhaseOutcome out;
  out.elapsed = wall.ElapsedSeconds();
  out.completed = stats.completed;
  out.qps = static_cast<double>(stats.completed) / out.elapsed;
  out.p99_ms = stats.latency.P99() * 1e3;
  out.device = stats.device;
  out.tenant_p99_ms.resize(graphs.size(), 0.0);
  out.tenant_completed.resize(graphs.size(), 0);
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const std::string id = TenantId(i);
    const auto it = std::find_if(
        stats.tenants.begin(), stats.tenants.end(),
        [&](const tenant::TenantStats& ts) { return ts.id == id; });
    FAST_CHECK(it != stats.tenants.end());
    out.tenant_p99_ms[i] = it->latency.P99() * 1e3;
    out.tenant_completed[i] = it->completed;
  }
  return out;
}

int Run(int argc, char** argv) {
  auto flags = tools::FlagParser::Parse(
      argc, argv,
      {"sf", "tenants", "duration", "clients", "workers", "queries", "zipf-s",
       "quota", "batch-window-us", "max-batch", "min-occupancy",
       "max-p99-factor", "json", "help"},
      /*bool_flags=*/{"help"});
  if (!flags.ok() || flags->Has("help")) {
    std::fprintf(
        stderr,
        "usage: bench_batching [--sf S] [--tenants N] [--duration SEC]\n"
        "                      [--clients N] [--workers N] [--queries I,J,...]\n"
        "                      [--zipf-s S] [--quota N] [--batch-window-us US]\n"
        "                      [--max-batch N] [--min-occupancy Q]\n"
        "                      [--max-p99-factor F] [--json FILE]\n%s\n",
        flags.ok() ? "" : flags.status().ToString().c_str());
    return flags.ok() ? 0 : 2;
  }
  double sf, duration, zipf_s, batch_window_us, min_occupancy, max_p99_factor;
  std::size_t num_tenants, clients, workers, quota, max_batch;
  FAST_FLAG_ASSIGN_OR_USAGE(sf, flags->GetDouble("sf", 0.1));
  FAST_FLAG_ASSIGN_OR_USAGE(duration, flags->GetDouble("duration", 2.0));
  FAST_FLAG_ASSIGN_OR_USAGE(zipf_s, flags->GetDouble("zipf-s", 1.2));
  FAST_FLAG_ASSIGN_OR_USAGE(batch_window_us,
                            flags->GetDouble("batch-window-us", 1000.0));
  FAST_FLAG_ASSIGN_OR_USAGE(min_occupancy,
                            flags->GetDouble("min-occupancy", 1.05));
  FAST_FLAG_ASSIGN_OR_USAGE(max_p99_factor,
                            flags->GetDouble("max-p99-factor", 10.0));
  FAST_FLAG_ASSIGN_OR_USAGE(num_tenants, flags->GetSizeT("tenants", 3));
  FAST_FLAG_ASSIGN_OR_USAGE(clients, flags->GetSizeT("clients", 6));
  FAST_FLAG_ASSIGN_OR_USAGE(workers, flags->GetSizeT("workers", 4));
  FAST_FLAG_ASSIGN_OR_USAGE(quota, flags->GetSizeT("quota", 16));
  FAST_FLAG_ASSIGN_OR_USAGE(max_batch, flags->GetSizeT("max-batch", 8));
  if (num_tenants == 0 || clients == 0) {
    std::fprintf(stderr, "--tenants and --clients must be > 0\n");
    return 2;
  }

  auto mix_or = ParseLdbcQueryMix(flags->GetString("queries", "0,1,2"));
  if (!mix_or.ok()) {
    std::fprintf(stderr, "%s\n", mix_or.status().ToString().c_str());
    return 2;
  }
  const std::vector<QueryGraph> mix = std::move(*mix_or);

  std::vector<Graph> graphs;
  for (std::size_t i = 0; i < num_tenants; ++i) {
    LdbcConfig config;
    config.scale_factor = sf;
    config.seed = 42 + i;
    auto g = GenerateLdbcGraph(config);
    if (!g.ok()) {
      std::fprintf(stderr, "generate: %s\n", g.status().ToString().c_str());
      return 1;
    }
    graphs.push_back(std::move(*g));
  }
  std::printf("data: %zu tenants at sf=%g, e.g. %s\n", num_tenants, sf,
              graphs[0].Summary().c_str());

  obs::MetricsRegistry registry;
  RouterOptions base;
  base.num_workers = workers;
  base.queue_capacity = 512;
  base.run.fpga = ServeBenchFpgaConfig();
  base.device_mode = true;
  base.metrics = &registry;
  TenantOptions tenant_options;
  tenant_options.plan_cache_capacity = 64;
  tenant_options.max_queued = quota;
  tenant_options.weight = 1;
  const std::vector<double> cdf = ZipfCdf(num_tenants, zipf_s);

  RouterOptions unbatched = base;
  unbatched.device.max_batch_items = 1;
  unbatched.device.batch_window_seconds = 0.0;
  RouterOptions batched = base;
  batched.device.max_batch_items = std::max<std::size_t>(1, max_batch);
  batched.device.batch_window_seconds = batch_window_us * 1e-6;

  std::printf("mix: %zu queries, %zu clients, zipf s=%g, window=%gus, "
              "max-batch=%zu, %.1fs per phase\n\n",
              mix.size(), clients, zipf_s, batch_window_us,
              batched.device.max_batch_items, duration);

  const PhaseOutcome un = RunPhase(graphs, mix, unbatched, tenant_options, cdf,
                                   clients, duration);
  const PhaseOutcome ba = RunPhase(graphs, mix, batched, tenant_options, cdf,
                                   clients, duration);

  const auto per_query_mib = [](const PhaseOutcome& p) {
    return p.WireBytesPerQuery() / (1024.0 * 1024.0);
  };
  std::printf("%-10s %10s %12s %14s %14s %16s\n", "phase", "qps", "p99 ms",
              "queries/round", "items/round", "wire MiB/query");
  std::printf("%-10s %10.1f %12.3f %14.2f %14.2f %16.3f\n", "unbatched",
              un.qps, un.p99_ms, un.device.QueriesPerRound(),
              un.device.ItemsPerRound(), per_query_mib(un));
  std::printf("%-10s %10.1f %12.3f %14.2f %14.2f %16.3f\n", "batched", ba.qps,
              ba.p99_ms, ba.device.QueriesPerRound(), ba.device.ItemsPerRound(),
              per_query_mib(ba));
  std::printf("\nbatched device: %s\n", ba.device.Summary().c_str());

  const std::size_t coldest = num_tenants - 1;
  const double coldest_factor =
      un.tenant_p99_ms[coldest] > 0
          ? ba.tenant_p99_ms[coldest] / un.tenant_p99_ms[coldest]
          : 0.0;
  std::printf("coldest tenant %s: p99 %.3fms batched vs %.3fms unbatched "
              "(%.2fx)\n",
              TenantId(coldest).c_str(), ba.tenant_p99_ms[coldest],
              un.tenant_p99_ms[coldest], coldest_factor);

  const std::string json = flags->GetString("json", "");
  if (!json.empty()) {
    bench::JsonWriter w;
    w.Field("bench", "bench_batching");
    w.Field("sf", sf);
    w.Field("tenants", static_cast<std::uint64_t>(num_tenants));
    w.Field("clients", static_cast<std::uint64_t>(clients));
    w.Field("duration_s", duration);
    w.Field("zipf_s", zipf_s);
    w.Field("batch_window_us", batch_window_us);
    w.Field("max_batch", static_cast<std::uint64_t>(max_batch));
    for (const auto* phase : {&un, &ba}) {
      w.BeginObject(phase == &un ? "unbatched" : "batched");
      w.Field("qps", phase->qps);
      w.Field("p99_ms", phase->p99_ms);
      w.Field("completed", phase->completed);
      w.Field("rounds", phase->device.rounds);
      w.Field("items", phase->device.items);
      w.Field("queries_per_round", phase->device.QueriesPerRound());
      w.Field("items_per_round", phase->device.ItemsPerRound());
      w.Field("payload_bytes", phase->device.payload_bytes);
      w.Field("wire_bytes", phase->device.wire_bytes);
      w.Field("dedup_bytes_saved", phase->device.dedup_bytes_saved);
      w.Field("wire_bytes_per_query", phase->WireBytesPerQuery());
      w.Field("pcie_seconds", phase->device.pcie_seconds);
      w.Field("kernel_seconds", phase->device.kernel_seconds);
      w.BeginArray("per_tenant");
      for (std::size_t i = 0; i < num_tenants; ++i) {
        w.BeginObject();
        w.Field("id", TenantId(i));
        w.Field("completed", phase->tenant_completed[i]);
        w.Field("p99_ms", phase->tenant_p99_ms[i]);
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
    w.Field("coldest_p99_factor", coldest_factor);
    bench::EmbedBuildInfo(w);
    bench::EmbedMetrics(w, registry);
    bench::WriteJsonFile(json, w.Finish());
  }

  // CI gates.
  int rc = 0;
  for (std::size_t i = 0; i < num_tenants; ++i) {
    if (ba.tenant_completed[i] == 0) {
      std::fprintf(stderr,
                   "FAIL: tenant %s completed zero queries in the batched "
                   "phase (starved)\n",
                   TenantId(i).c_str());
      rc = 1;
    }
  }
  if (ba.device.QueriesPerRound() <= min_occupancy) {
    std::fprintf(stderr,
                 "FAIL: device occupancy %.2f queries/round <= bound %.2f "
                 "(batching never coalesced)\n",
                 ba.device.QueriesPerRound(), min_occupancy);
    rc = 1;
  }
  if (un.completed > 0 && ba.completed > 0 &&
      ba.WireBytesPerQuery() >= un.WireBytesPerQuery()) {
    std::fprintf(stderr,
                 "FAIL: batched transfer %.0f bytes/query >= unbatched %.0f "
                 "(amortization lost)\n",
                 ba.WireBytesPerQuery(), un.WireBytesPerQuery());
    rc = 1;
  }
  if (rc == 0 && coldest_factor > max_p99_factor) {
    std::fprintf(stderr,
                 "FAIL: coldest tenant batched p99 %.2fx its unbatched p99 "
                 "(bound %.1fx)\n",
                 coldest_factor, max_p99_factor);
    rc = 1;
  }
  if (rc == 0) {
    std::printf("\nOK: occupancy %.2f queries/round, transfer %.1f%% of "
                "unbatched bytes/query, coldest p99 factor %.2fx\n",
                ba.device.QueriesPerRound(),
                un.WireBytesPerQuery() > 0
                    ? 100.0 * ba.WireBytesPerQuery() / un.WireBytesPerQuery()
                    : 0.0,
                coldest_factor);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
