#ifndef FAST_BENCH_BENCH_COMMON_H_
#define FAST_BENCH_BENCH_COMMON_H_

// Shared infrastructure for the per-figure benchmark binaries.
//
// Dataset scaling: the paper's LDBC graphs DG01/DG03/DG10/DG60 span 17M ->
// 1.25B edges on a 250 GB machine with an Alveo U200. This repo scales the
// whole experiment down by ~3 orders of magnitude so every figure
// regenerates in seconds on a laptop: the DGx analogues below keep the same
// relative spacing of scale factors (1:3:10:60), and the simulated device's
// BRAM is scaled down equivalently so the partitioning pressure (number of
// CST partitions per graph) stays in the paper's regime. Absolute numbers
// therefore differ from the paper; shapes and ratios are the comparison
// target (see EXPERIMENTS.md).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/driver.h"
#include "ldbc/ldbc.h"
#include "util/logging.h"

namespace fast::bench {

// Scale factors for the paper's dataset names.
inline const std::map<std::string, double>& DatasetScaleFactors() {
  static const auto* kMap = new std::map<std::string, double>{
      {"DG01", 0.5}, {"DG03", 1.5}, {"DG10", 5.0}, {"DG60", 30.0}};
  return *kMap;
}

// Generates (and caches per process) the DGx analogue.
inline const Graph& Dataset(const std::string& name) {
  static auto* cache = new std::map<std::string, Graph>();
  auto it = cache->find(name);
  if (it != cache->end()) return it->second;
  LdbcConfig config;
  config.scale_factor = DatasetScaleFactors().at(name);
  config.seed = 42;
  auto g = GenerateLdbcGraph(config);
  FAST_CHECK(g.ok()) << g.status();
  return cache->emplace(name, std::move(g).value()).first->second;
}

// Device model scaled to the shrunken datasets: ~2 MiB of BRAM (vs 35 MB)
// keeps #partitions in the paper's range (tens to thousands) on the DGx
// analogues. Port_max stays high relative to the scaled graphs' hub degrees,
// as on the real card, so partitioning is size-driven first.
inline FpgaConfig BenchFpgaConfig() {
  FpgaConfig c;  // Alveo U200 clock/latency characteristics
  c.bram_words = 128 * 1024;
  // On the real card Port_max (512) binds only for extreme hubs because the
  // size budget δ_S splits CSTs long before D_CST does. The scaled-down BRAM
  // shifts that balance, so Port_max scales up equivalently to keep δ_S the
  // binding constraint; bench_ablation_ports sweeps this knob explicitly.
  c.port_max = 65536;
  c.max_new_partials = 1024;
  return c;
}

inline FastRunOptions BenchRunOptions(FastVariant variant,
                                      double cpu_share_delta = 0.0) {
  FastRunOptions options;
  options.variant = variant;
  options.cpu_share_delta = cpu_share_delta;
  options.fpga = BenchFpgaConfig();
  return options;
}

// Runs FAST and CHECK-fails on error: benches assume valid configs.
inline FastRunResult MustRunFast(const QueryGraph& q, const Graph& g,
                                 const FastRunOptions& options) {
  auto r = RunFast(q, g, options);
  FAST_CHECK(r.ok()) << r.status();
  return std::move(r).value();
}

inline QueryGraph Query(int index) {
  auto q = LdbcQuery(index);
  FAST_CHECK(q.ok()) << q.status();
  return std::move(q).value();
}

// Registers, for each query index, one manual-time benchmark per variant
// whose reported time is the *simulated* end-to-end elapsed time, and prints
// a paper-style "elapsed + acceleration ratio" table afterwards. Shared by
// the Fig. 7 / Fig. 11 / Fig. 12 variant-comparison binaries.
inline void RunVariantComparisonMain(int argc, char** argv, const char* figure,
                                     FastVariant baseline, FastVariant improved,
                                     const std::vector<int>& queries,
                                     const std::string& dataset) {
  // The paper's Figs. 7/11/12 compare the *matching* elapsed time, which on
  // the real system is device-dominated; report simulated kernel + transfer
  // time so host-side wall clock (which is not the paper's axis) does not
  // dilute the variants' differences.
  auto matching_seconds = [](const FastRunResult& r) {
    return r.kernel_seconds + r.pcie_seconds;
  };
  auto run = [=](benchmark::State& state, int qi, FastVariant variant) {
    const Graph& g = Dataset(dataset);
    const QueryGraph q = Query(qi);
    FastRunResult result;
    for (auto _ : state) {
      result = MustRunFast(q, g, BenchRunOptions(variant));
      state.SetIterationTime(matching_seconds(result));
    }
    state.counters["embeddings"] = static_cast<double>(result.embeddings);
    state.counters["sim_ms"] = matching_seconds(result) * 1e3;
    state.counters["kernel_ms"] = result.kernel_seconds * 1e3;
    state.counters["partitions"] =
        static_cast<double>(result.partition_stats.num_partitions);
  };
  for (int qi : queries) {
    for (FastVariant v : {baseline, improved}) {
      benchmark::RegisterBenchmark(
          (std::string(figure) + "/" + FastVariantName(v) + "/q" +
           std::to_string(qi) + "/" + dataset)
              .c_str(),
          run, qi, v)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, &argv[0]);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n%s: %s vs %s on %s (simulated matching time)\n", figure,
              FastVariantName(baseline), FastVariantName(improved), dataset.c_str());
  std::printf("%-6s %14s %14s %14s %12s\n", "query",
              (std::string(FastVariantName(baseline)) + " ms").c_str(),
              (std::string(FastVariantName(improved)) + " ms").c_str(),
              "acceleration", "#embeddings");
  const Graph& g = Dataset(dataset);
  for (int qi : queries) {
    const QueryGraph q = Query(qi);
    const double a = matching_seconds(MustRunFast(q, g, BenchRunOptions(baseline)));
    const auto run_b = MustRunFast(q, g, BenchRunOptions(improved));
    const double b = matching_seconds(run_b);
    std::printf("q%-5d %14.3f %14.3f %13.1f%% %12llu\n", qi, a * 1e3, b * 1e3,
                100.0 * (a - b) / a,
                static_cast<unsigned long long>(run_b.embeddings));
  }
}

}  // namespace fast::bench

#endif  // FAST_BENCH_BENCH_COMMON_H_
