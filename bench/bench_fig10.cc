// Fig. 10: partition time per embedding as the data graph grows.
//
// Paper result: partition time per embedding stays within the same order of
// magnitude (1.09e-9 .. 2.15e-9 s/embedding from DG01 to DG60) while |E(G)|
// grows 70x -- i.e. partitioning scales with the workload, not the graph.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "cst/partition.h"
#include "util/timer.h"

namespace fast::bench {
namespace {

struct Fig10Row {
  double partition_ms = 0;
  double embeddings = 0;
  double time_per_embedding_ns = 0;
};

Fig10Row Measure(int qi, const std::string& dataset) {
  const Graph& g = Dataset(dataset);
  const QueryGraph q = Query(qi);
  auto result = MustRunFast(q, g, BenchRunOptions(FastVariant::kSep));
  Fig10Row row;
  row.partition_ms = result.partition_seconds * 1e3;
  row.embeddings = static_cast<double>(result.embeddings);
  row.time_per_embedding_ns =
      row.embeddings > 0 ? result.partition_seconds * 1e9 / row.embeddings : 0.0;
  return row;
}

void BM_PartitionPerEmbedding(benchmark::State& state, int qi,
                              const std::string& dataset) {
  Fig10Row row;
  for (auto _ : state) row = Measure(qi, dataset);
  state.counters["partition_ms"] = row.partition_ms;
  state.counters["embeddings"] = row.embeddings;
  state.counters["ns_per_embedding"] = row.time_per_embedding_ns;
}

void PrintFig10() {
  std::printf("\nFig. 10: partition time per embedding (ns) as the graph grows\n");
  std::printf("%-6s %10s %14s %14s %16s\n", "query", "dataset", "partition ms",
              "#embeddings", "ns/embedding");
  for (int qi : {0, 1, 2, 4, 7, 8}) {
    for (const std::string name : {"DG01", "DG03", "DG10"}) {
      const Fig10Row row = Measure(qi, name);
      std::printf("q%-5d %10s %14.3f %14.0f %16.3f\n", qi, name.c_str(),
                  row.partition_ms, row.embeddings, row.time_per_embedding_ns);
    }
  }
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  for (int qi : {0, 2, 8}) {
    for (const std::string name : {"DG01", "DG03", "DG10"}) {
      benchmark::RegisterBenchmark(
          ("Fig10/q" + std::to_string(qi) + "/" + name).c_str(),
          fast::bench::BM_PartitionPerEmbedding, qi, name)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fast::bench::PrintFig10();
  return 0;
}
