// Fig. 11: elapsed time of FAST-BASIC vs FAST-TASK (effectiveness of task
// parallelism, Sec. VI-C).
//
// Paper result: up to 50% improvement (cap from Eq. 2 vs Eq. 3); weakest on
// q3 whose N/M ratio ~2, strongest on dense queries like q8.

#include "bench_common.h"

int main(int argc, char** argv) {
  fast::bench::RunVariantComparisonMain(argc, argv, "Fig11",
                                        fast::FastVariant::kBasic,
                                        fast::FastVariant::kTask,
                                        {2, 3, 5, 6, 7, 8}, "DG10");
  return 0;
}
