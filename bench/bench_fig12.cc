// Fig. 12: elapsed time of FAST-TASK vs FAST-SEP (effectiveness of task
// generator separation, Sec. VI-D).
//
// Paper result: 30-40% further improvement (cap ~33% from Eq. 3 vs Eq. 4),
// best when N/M > 1.

#include "bench_common.h"

int main(int argc, char** argv) {
  fast::bench::RunVariantComparisonMain(argc, argv, "Fig12",
                                        fast::FastVariant::kTask,
                                        fast::FastVariant::kSep,
                                        {2, 3, 5, 6, 7, 8}, "DG10");
  return 0;
}
