// Fig. 13: average acceleration ratio of FAST-SHARE over FAST-SEP while
// varying the CPU share threshold δ in [0, 0.3].
//
// Paper result: peak improvement around δ = 0.1 (up to ~20% on DG01); the
// CPU becomes the bottleneck past δ ~ 0.15 and the ratio degrades.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"

namespace fast::bench {
namespace {

const std::vector<double>& Deltas() {
  static const auto* kDeltas =
      new std::vector<double>{0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  return *kDeltas;
}

// The paper's CSTs exceed BRAM by large factors, so sharing has many
// partitions to choose from; recreate that regime with a tight partition
// budget (the scaled default fits most analogue CSTs outright, which would
// leave nothing to share).
FastRunOptions Fig13Options(double delta) {
  FastRunOptions options = BenchRunOptions(FastVariant::kSep, delta);
  options.partition.max_size_words = 4 * 1024;
  options.partition.max_degree = 1 << 16;
  return options;
}

// Median-of-five timing: the effect under measurement (5-20%) is comparable
// to host wall-clock variance on these scaled inputs.
double MedianSeconds(const QueryGraph& q, const Graph& g, double delta) {
  std::vector<double> times;
  for (int rep = 0; rep < 5; ++rep) {
    times.push_back(MustRunFast(q, g, Fig13Options(delta)).total_seconds);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

double AvgAcceleration(double delta, const std::string& dataset) {
  const Graph& g = Dataset(dataset);
  // Baseline (delta = 0) times, cached across the delta sweep.
  static std::map<std::string, std::map<int, double>> base_cache;
  auto& base_for = base_cache[dataset];
  double sum = 0;
  int count = 0;
  for (int qi : {2, 5, 6, 8}) {
    const QueryGraph q = Query(qi);
    if (base_for.find(qi) == base_for.end()) {
      base_for[qi] = MedianSeconds(q, g, 0.0);
    }
    const double base = base_for[qi];
    const double shared = MedianSeconds(q, g, delta);
    sum += (base - shared) / base;
    ++count;
  }
  return 100.0 * sum / count;
}

void BM_CpuShare(benchmark::State& state, double delta, const std::string& dataset) {
  double accel = 0;
  for (auto _ : state) accel = AvgAcceleration(delta, dataset);
  state.counters["acceleration_pct"] = accel;
}

// The mechanism behind Fig. 13, shown directly: with δ > 0 the host absorbs
// oversized CSTs instead of partitioning them further, so partition time
// falls while (real) CPU-share time grows. This component view is far less
// noisy than end-to-end wall clock at the scaled-down workload sizes.
void PrintMechanism() {
  std::printf("\nFig. 13 mechanism (q2 and q8 on DG10): time components vs delta\n");
  std::printf("%-4s %-6s %13s %10s %11s %10s %9s\n", "q", "delta", "partition ms",
              "cpu ms", "kernel ms", "total ms", "cpu CSTs");
  const Graph& g = Dataset("DG10");
  for (int qi : {2, 8}) {
    const QueryGraph q = Query(qi);
    for (double d : Deltas()) {
      FastRunResult best;
      double best_total = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        auto r = MustRunFast(q, g, Fig13Options(d));
        if (r.total_seconds < best_total) {
          best_total = r.total_seconds;
          best = std::move(r);
        }
      }
      std::printf("q%-3d %-6.2f %13.3f %10.3f %11.3f %10.3f %9zu\n", qi, d,
                  best.partition_seconds * 1e3, best.cpu_share_seconds * 1e3,
                  best.kernel_seconds * 1e3, best.total_seconds * 1e3,
                  best.cpu_partitions);
    }
  }
}

void PrintFig13() {
  PrintMechanism();
  std::printf("\nFig. 13: average acceleration ratio varying delta "
              "(FAST-SHARE vs FAST-SEP)\n");
  std::printf("%-8s", "delta");
  for (const std::string name : {"DG01", "DG03", "DG10"}) {
    std::printf(" %10s", name.c_str());
  }
  std::printf("\n");
  for (double d : Deltas()) {
    std::printf("%-8.2f", d);
    for (const std::string name : {"DG01", "DG03", "DG10"}) {
      std::printf(" %9.1f%%", AvgAcceleration(d, name));
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  for (double d : fast::bench::Deltas()) {
    benchmark::RegisterBenchmark(("Fig13/delta=" + std::to_string(d)).c_str(),
                                 fast::bench::BM_CpuShare, d, "DG03")
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fast::bench::PrintFig13();
  return 0;
}
