// Fig. 14: FAST against GSI, GpSM, CFL, DAF, CECI and CECI-8 on q0..q8
// across datasets.
//
// Paper result: FAST wins every query (24.6x average; up to 462x vs DAF,
// 150x vs CECI); the GPU joiners OOM on bigger graphs; the gap widens as the
// data grows. FAST's time here is the simulated device total; baseline times
// are measured host wall-clock. OOM/INF entries mirror the paper's tables
// (the GPU matchers run against a scaled device-memory cap, matching the
// ~1000x dataset scale-down of bench_common.h).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "baseline/baseline.h"
#include "bench_common.h"

namespace fast::bench {
namespace {

constexpr double kTimeLimitSeconds = 10.0;
// 16 GB V100 scaled down ~1000x, consistent with the dataset scale-down.
constexpr std::size_t kGpuMemoryCap = 16ull << 20;

BaselineOptions GpuOptions() {
  BaselineOptions o;
  o.time_limit_seconds = kTimeLimitSeconds;
  o.memory_cap_bytes = kGpuMemoryCap;
  return o;
}

BaselineOptions CpuOptions(unsigned threads = 1) {
  BaselineOptions o;
  o.time_limit_seconds = kTimeLimitSeconds;
  o.num_threads = threads;
  return o;
}

// Formats a baseline outcome the way the paper's charts annotate it.
std::string Cell(const StatusOr<BaselineRunResult>& r) {
  if (r.ok()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", r->seconds);
    return buf;
  }
  if (r.status().code() == StatusCode::kResourceExhausted) return "OOM";
  if (r.status().code() == StatusCode::kDeadlineExceeded) return "INF";
  return "ERR";
}

void BM_Fast(benchmark::State& state, int qi, const std::string& dataset) {
  const Graph& g = Dataset(dataset);
  const QueryGraph q = Query(qi);
  FastRunResult r;
  for (auto _ : state) {
    r = MustRunFast(q, g, BenchRunOptions(FastVariant::kSep, 0.1));
    state.SetIterationTime(r.total_seconds);
  }
  state.counters["embeddings"] = static_cast<double>(r.embeddings);
}

void BM_Baseline(benchmark::State& state, BaselineKind kind, int qi,
                 const std::string& dataset, unsigned threads) {
  const Graph& g = Dataset(dataset);
  const QueryGraph q = Query(qi);
  auto matcher = MakeBaseline(kind);
  const bool gpu = kind == BaselineKind::kGpsm || kind == BaselineKind::kGsi;
  for (auto _ : state) {
    auto r = matcher->Run(q, g, gpu ? GpuOptions() : CpuOptions(threads));
    if (!r.ok()) {
      state.SkipWithError(Cell(r).c_str());
      return;
    }
    benchmark::DoNotOptimize(r->embeddings);
  }
}

void PrintFig14(const std::string& dataset) {
  const Graph& g = Dataset(dataset);
  std::printf("\nFig. 14 (%s): elapsed seconds per algorithm "
              "(FAST simulated; baselines measured; OOM/INF as in the paper)\n",
              dataset.c_str());
  std::printf("%-6s %10s %10s %10s %10s %10s %10s %10s %12s\n", "query", "FAST",
              "GSI", "GpSM", "DAF", "CFL", "CECI", "CECI-8", "#embeddings");
  for (int qi = 0; qi < kNumLdbcQueries; ++qi) {
    const QueryGraph q = Query(qi);
    const auto fast_run = MustRunFast(q, g, BenchRunOptions(FastVariant::kSep, 0.1));
    const auto gsi = MakeBaseline(BaselineKind::kGsi)->Run(q, g, GpuOptions());
    const auto gpsm = MakeBaseline(BaselineKind::kGpsm)->Run(q, g, GpuOptions());
    const auto daf = MakeBaseline(BaselineKind::kDaf)->Run(q, g, CpuOptions());
    const auto cfl = MakeBaseline(BaselineKind::kCfl)->Run(q, g, CpuOptions());
    const auto ceci = MakeBaseline(BaselineKind::kCeci)->Run(q, g, CpuOptions());
    const auto ceci8 = MakeBaseline(BaselineKind::kCeci)->Run(q, g, CpuOptions(8));
    std::printf("q%-5d %10.4f %10s %10s %10s %10s %10s %10s %12llu\n", qi,
                fast_run.total_seconds, Cell(gsi).c_str(), Cell(gpsm).c_str(),
                Cell(daf).c_str(), Cell(cfl).c_str(), Cell(ceci).c_str(),
                Cell(ceci8).c_str(),
                static_cast<unsigned long long>(fast_run.embeddings));
  }
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  using fast::BaselineKind;
  for (const std::string dataset : {"DG01", "DG03"}) {
    for (int qi : {0, 2, 5, 8}) {
      benchmark::RegisterBenchmark(
          ("Fig14/FAST/q" + std::to_string(qi) + "/" + dataset).c_str(),
          fast::bench::BM_Fast, qi, dataset)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
      benchmark::RegisterBenchmark(
          ("Fig14/CECI/q" + std::to_string(qi) + "/" + dataset).c_str(),
          fast::bench::BM_Baseline, BaselineKind::kCeci, qi, dataset, 1)
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  for (const std::string dataset : {"DG01", "DG03", "DG10"}) {
    fast::bench::PrintFig14(dataset);
  }
  return 0;
}
