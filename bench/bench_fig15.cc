// Fig. 15: the impact of matching orders on FAST.
//
// Paper result: FAST with CFL's, DAF's and CECI's orders performs close to
// its own path-based order; even the WORST connected order still beats the
// CPU baselines. Rows: BEST / CFL / DAF / CECI / AVG / WORST average elapsed
// time over all queries.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "util/stats.h"

namespace fast::bench {
namespace {

struct OrderSweep {
  double best_s = 0;
  double avg_s = 0;
  double worst_s = 0;
};

double RunWithPolicy(const QueryGraph& q, const Graph& g, OrderPolicy policy) {
  FastRunOptions options = BenchRunOptions(FastVariant::kSep);
  options.order_policy = policy;
  return MustRunFast(q, g, options).total_seconds;
}

// Sweeps every tree-connected order (bounded) of one query.
OrderSweep SweepOrders(const QueryGraph& q, const Graph& g) {
  const VertexId root = SelectRoot(q, g);
  const auto orders = EnumerateConnectedOrders(q, root, /*limit=*/24);
  OrderSweep sweep;
  sweep.best_s = 1e100;
  RunningStats stats;
  for (const auto& o : orders) {
    FastRunOptions options = BenchRunOptions(FastVariant::kSep);
    MatchingOrder order;
    order.root = root;
    order.order = o;
    options.explicit_order = order;
    const double s = MustRunFast(q, g, options).total_seconds;
    sweep.best_s = std::min(sweep.best_s, s);
    sweep.worst_s = std::max(sweep.worst_s, s);
    stats.Add(s);
  }
  sweep.avg_s = stats.mean();
  return sweep;
}

void BM_OrderPolicy(benchmark::State& state, OrderPolicy policy,
                    const std::string& dataset) {
  const Graph& g = Dataset(dataset);
  double total = 0;
  for (auto _ : state) {
    total = 0;
    for (int qi = 0; qi < kNumLdbcQueries; ++qi) {
      total += RunWithPolicy(Query(qi), g, policy);
    }
    state.SetIterationTime(total);
  }
  state.counters["avg_elapsed_s"] = total / kNumLdbcQueries;
}

void PrintFig15(const std::string& dataset) {
  const Graph& g = Dataset(dataset);
  double best = 0;
  double avg = 0;
  double worst = 0;
  double cfl = 0;
  double daf = 0;
  double ceci = 0;
  double path = 0;
  for (int qi = 0; qi < kNumLdbcQueries; ++qi) {
    const QueryGraph q = Query(qi);
    const OrderSweep sweep = SweepOrders(q, g);
    best += sweep.best_s;
    avg += sweep.avg_s;
    worst += sweep.worst_s;
    cfl += RunWithPolicy(q, g, OrderPolicy::kCfl);
    daf += RunWithPolicy(q, g, OrderPolicy::kDaf);
    ceci += RunWithPolicy(q, g, OrderPolicy::kCeci);
    path += RunWithPolicy(q, g, OrderPolicy::kPathBased);
  }
  const double n = kNumLdbcQueries;
  std::printf("\nFig. 15 (%s): FAST elapsed seconds (averaged over q0..q8) "
              "under different matching orders\n",
              dataset.c_str());
  std::printf("%-12s %12s\n", "order", "avg elapsed s");
  std::printf("%-12s %12.4f\n", "FAST-BEST", best / n);
  std::printf("%-12s %12.4f\n", "FAST (path)", path / n);
  std::printf("%-12s %12.4f\n", "FAST-CFL", cfl / n);
  std::printf("%-12s %12.4f\n", "FAST-DAF", daf / n);
  std::printf("%-12s %12.4f\n", "FAST-CECI", ceci / n);
  std::printf("%-12s %12.4f\n", "FAST-AVG", avg / n);
  std::printf("%-12s %12.4f\n", "FAST-WORST", worst / n);
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  for (fast::OrderPolicy policy :
       {fast::OrderPolicy::kPathBased, fast::OrderPolicy::kCfl,
        fast::OrderPolicy::kDaf, fast::OrderPolicy::kCeci}) {
    benchmark::RegisterBenchmark(
        (std::string("Fig15/") + fast::OrderPolicyName(policy)).c_str(),
        fast::bench::BM_OrderPolicy, policy, "DG01")
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fast::bench::PrintFig15("DG01");
  fast::bench::PrintFig15("DG03");
  return 0;
}
