// Fig. 16: scalability of FAST varying the scale factor x of DGx.
//
// Paper result: the other algorithms all fail on DG60 (OOM / segfault /
// overflow) while FAST completes every query, and FAST's elapsed time grows
// linearly with the number of embeddings. Here: elapsed (simulated) time and
// #embeddings per query per DGx analogue -- plotting time vs embeddings
// reproduces the paper's linear series.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"

namespace fast::bench {
namespace {

void BM_Scalability(benchmark::State& state, int qi, const std::string& dataset) {
  const Graph& g = Dataset(dataset);
  const QueryGraph q = Query(qi);
  FastRunResult r;
  for (auto _ : state) {
    r = MustRunFast(q, g, BenchRunOptions(FastVariant::kSep));
    state.SetIterationTime(r.total_seconds);
  }
  state.counters["embeddings"] = static_cast<double>(r.embeddings);
  state.counters["elapsed_ms"] = r.total_seconds * 1e3;
}

void PrintFig16() {
  std::printf("\nFig. 16: FAST scalability varying x of DGx "
              "(elapsed ms vs #embeddings; expect ~linear growth)\n");
  std::printf("%-6s %8s %14s %14s %18s\n", "query", "dataset", "elapsed ms",
              "#embeddings", "ms per 1e6 emb");
  for (int qi = 0; qi < kNumLdbcQueries; ++qi) {
    for (const auto& [name, sf] : DatasetScaleFactors()) {
      // q3/q4 generate 1e9+ partial results on the DG60 analogue; the paper
      // also omits q4 from its Fig. 16 series. Keep the bench under minutes.
      if (name == "DG60" && (qi == 3 || qi == 4)) continue;
      const auto r = MustRunFast(Query(qi), Dataset(name),
                                 BenchRunOptions(FastVariant::kSep));
      const double ms = r.total_seconds * 1e3;
      std::printf("q%-5d %8s %14.3f %14llu %18.4f\n", qi, name.c_str(), ms,
                  static_cast<unsigned long long>(r.embeddings),
                  r.embeddings > 0 ? ms * 1e6 / static_cast<double>(r.embeddings)
                                   : 0.0);
    }
  }
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  for (int qi : {0, 2, 5, 8}) {
    for (const std::string name : {"DG01", "DG03", "DG10", "DG60"}) {
      benchmark::RegisterBenchmark(
          ("Fig16/q" + std::to_string(qi) + "/" + name).c_str(),
          fast::bench::BM_Scalability, qi, name)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fast::bench::PrintFig16();
  return 0;
}
