// Fig. 17: scalability of FAST varying |E(G)| -- all vertices kept, 20%-100%
// of DG60's edges sampled uniformly.
//
// Paper result: elapsed time *per embedding* stays flat as |E(G)| grows;
// sparse samples with very few embeddings show inflated per-embedding cost
// because transfer + index construction dominates.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"

namespace fast::bench {
namespace {

const Graph& SampledDataset(int percent) {
  static auto* cache = new std::map<int, Graph>();
  auto it = cache->find(percent);
  if (it != cache->end()) return it->second;
  const Graph& full = Dataset("DG60");
  auto s = SampleEdges(full, percent / 100.0, /*seed=*/2021);
  FAST_CHECK(s.ok()) << s.status();
  return cache->emplace(percent, std::move(s).value()).first->second;
}

void BM_EdgeScalability(benchmark::State& state, int qi, int percent) {
  const Graph& g = SampledDataset(percent);
  const QueryGraph q = Query(qi);
  FastRunResult r;
  for (auto _ : state) {
    r = MustRunFast(q, g, BenchRunOptions(FastVariant::kSep));
    state.SetIterationTime(r.total_seconds);
  }
  state.counters["embeddings"] = static_cast<double>(r.embeddings);
  state.counters["ms_per_embedding"] =
      r.embeddings > 0 ? r.total_seconds * 1e3 / static_cast<double>(r.embeddings)
                       : 0.0;
}

void PrintFig17() {
  std::printf("\nFig. 17: FAST elapsed time per embedding varying |E(G)| "
              "(DG60 analogue, uniform edge samples)\n");
  std::printf("%-6s", "query");
  for (int pct : {20, 40, 60, 80, 100}) std::printf(" %13d%%", pct);
  std::printf("   (ms per embedding)\n");
  // q3 is omitted: its 1e9+ intermediate results on the DG60 analogue put
  // this bench into tens of minutes (the paper's Fig. 17 likewise plots a
  // query subset).
  for (int qi : {1, 2, 5, 6, 7, 8}) {
    std::printf("q%-5d", qi);
    for (int pct : {20, 40, 60, 80, 100}) {
      const auto r = MustRunFast(Query(qi), SampledDataset(pct),
                                 BenchRunOptions(FastVariant::kSep));
      const double per_emb =
          r.embeddings > 0
              ? r.total_seconds * 1e3 / static_cast<double>(r.embeddings)
              : 0.0;
      std::printf(" %14.6f", per_emb);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  for (int qi : {2, 8}) {
    for (int pct : {20, 40, 60, 80, 100}) {
      benchmark::RegisterBenchmark(
          ("Fig17/q" + std::to_string(qi) + "/" + std::to_string(pct) + "pct")
              .c_str(),
          fast::bench::BM_EdgeScalability, qi, pct)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fast::bench::PrintFig17();
  return 0;
}
