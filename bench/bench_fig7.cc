// Fig. 7: elapsed time of FAST-DRAM vs FAST-BASIC (the necessity of CST
// partitioning).
//
// Paper result: FAST-BASIC wins on every query with ~5x average speedup,
// "close to the ratio of the read latency" (1 vs 7-8 cycles). The same
// queries (q2, q3, q5, q6, q7, q8) on the DG10 analogue.

#include "bench_common.h"

int main(int argc, char** argv) {
  fast::bench::RunVariantComparisonMain(argc, argv, "Fig7",
                                        fast::FastVariant::kDram,
                                        fast::FastVariant::kBasic,
                                        {2, 3, 5, 6, 7, 8}, "DG10");
  return 0;
}
