// Fig. 8: k-determination -- average number of CST partitions and average
// partition time, greedy strategy vs fixed k in {2, 4, 6, 8, 10}.
//
// Paper result: the greedy choice k = max(|CST|/δ_S, D_CST/δ_D) yields the
// fewest partitions and the lowest partition time; small fixed k is not far
// behind, large k inflates both.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "cst/partition.h"
#include "util/timer.h"

namespace fast::bench {
namespace {

struct KResult {
  double avg_partitions = 0;
  double avg_time_ms = 0;
};

KResult MeasureK(int fixed_k, const std::string& dataset) {
  const Graph& g = Dataset(dataset);
  KResult out;
  int runs = 0;
  for (int qi = 0; qi < kNumLdbcQueries; ++qi) {
    const QueryGraph q = Query(qi);
    auto order = ComputeMatchingOrder(q, g, OrderPolicy::kPathBased).value();
    auto cst = BuildCst(q, g, order.root).value();
    PartitionConfig config =
        DerivePartitionConfig(BenchFpgaConfig(), q.NumVertices(), {0, 0, fixed_k});
    config.fixed_k = fixed_k;
    PartitionStats stats;
    Timer timer;
    auto parts_status = PartitionCst(
        cst, order, config, [](Cst) { return Status::OK(); }, &stats);
    FAST_CHECK(parts_status.ok()) << parts_status;
    out.avg_time_ms += timer.ElapsedMillis();
    out.avg_partitions += static_cast<double>(stats.num_partitions);
    ++runs;
  }
  out.avg_partitions /= runs;
  out.avg_time_ms /= runs;
  return out;
}

void BM_PartitionWithK(benchmark::State& state) {
  const int fixed_k = static_cast<int>(state.range(0));  // 0 = greedy
  KResult r;
  for (auto _ : state) r = MeasureK(fixed_k, "DG10");
  state.counters["avg_num_cst"] = r.avg_partitions;
  state.counters["avg_partition_ms"] = r.avg_time_ms;
  state.SetLabel(fixed_k == 0 ? "greedy" : "k=" + std::to_string(fixed_k));
}

BENCHMARK(BM_PartitionWithK)
    ->Arg(0)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond);

void PrintFig8() {
  std::printf("\nFig. 8: #CST and partition time varying k (DG10 analogue, "
              "averaged over q0..q8)\n");
  std::printf("%-8s %12s %18s\n", "k", "avg #CST", "avg partition ms");
  for (int k : {0, 2, 4, 6, 8, 10}) {
    const KResult r = MeasureK(k, "DG10");
    std::printf("%-8s %12.1f %18.3f\n", k == 0 ? "greedy" : std::to_string(k).c_str(),
                r.avg_partitions, r.avg_time_ms);
  }
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fast::bench::PrintFig8();
  return 0;
}
