// Fig. 9: number of CST partitions and total CST size relative to the data
// graph (S_CST / S_G), across datasets, for q0, q1, q2, q4, q7, q8.
//
// Paper result: #partitions grows with the data graph; S_CST/S_G stays
// roughly stable (< 60%) except where the embedding count explodes (q7).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "cst/partition.h"

namespace fast::bench {
namespace {

struct Fig9Row {
  std::size_t num_partitions = 0;
  double size_ratio = 0;  // S_CST / S_G
};

Fig9Row Measure(int qi, const std::string& dataset) {
  const Graph& g = Dataset(dataset);
  const QueryGraph q = Query(qi);
  auto order = ComputeMatchingOrder(q, g, OrderPolicy::kPathBased).value();
  auto cst = BuildCst(q, g, order.root).value();
  PartitionConfig config =
      DerivePartitionConfig(BenchFpgaConfig(), q.NumVertices(), {0, 0, 0});
  PartitionStats stats;
  FAST_CHECK_OK(PartitionCst(
      cst, order, config, [](Cst) { return Status::OK(); }, &stats));
  Fig9Row row;
  row.num_partitions = stats.num_partitions;
  row.size_ratio = static_cast<double>(stats.total_size_words * 4) /
                   static_cast<double>(g.MemoryBytes());
  return row;
}

void BM_PartitionFootprint(benchmark::State& state, int qi,
                           const std::string& dataset) {
  Fig9Row row;
  for (auto _ : state) row = Measure(qi, dataset);
  state.counters["num_cst"] = static_cast<double>(row.num_partitions);
  state.counters["size_ratio_pct"] = row.size_ratio * 100.0;
}

void PrintFig9() {
  std::printf("\nFig. 9: number and total size of partitioned CST\n");
  std::printf("%-6s", "query");
  for (const auto& [name, sf] : DatasetScaleFactors()) {
    std::printf(" %10s#CST %9sS/SG", name.c_str(), name.c_str());
  }
  std::printf("\n");
  for (int qi : {0, 1, 2, 4, 7, 8}) {
    std::printf("q%-5d", qi);
    for (const auto& [name, sf] : DatasetScaleFactors()) {
      const Fig9Row row = Measure(qi, name);
      std::printf(" %14zu %12.1f%%", row.num_partitions, row.size_ratio * 100.0);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  for (int qi : {0, 1, 2, 4, 7, 8}) {
    for (const std::string name : {"DG01", "DG03", "DG10"}) {
      benchmark::RegisterBenchmark(
          ("Fig9/q" + std::to_string(qi) + "/" + name).c_str(),
          fast::bench::BM_PartitionFootprint, qi, name)
          ->Unit(benchmark::kMillisecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fast::bench::PrintFig9();
  return 0;
}
