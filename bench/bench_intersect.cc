// bench_intersect: microbenchmark of the SIMD kernel layer (src/simd/).
//
//   bench_intersect [--seconds 0.2] [--json FILE]
//
// For every available kernel level (scalar / swar / avx2 / neon) and a grid
// of size classes — balanced pairs at three scales, two skew ratios that
// trip the galloping path, plus a bitmap-filter class modelling hub-vertex
// materialization — it measures sorted-set intersections per second over a
// pool of deterministic random inputs, and reports each level's speedup over
// scalar. --json writes BENCH_intersect.json for the CI artifact; the
// acceptance gate is max_speedup >= 2.0 on at least one size class.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_serve_common.h"
#include "simd/bitset.h"
#include "simd/intersect.h"
#include "tools/flag_parser.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace fast;

std::vector<std::uint32_t> MakeSorted(Rng& rng, std::size_t n,
                                      std::uint32_t universe) {
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) x = static_cast<std::uint32_t>(rng.Uniform(universe));
  std::sort(v.begin(), v.end());
  return v;
}

struct SizeClass {
  const char* name;
  std::size_t na;
  std::size_t nb;
  std::uint32_t universe;  // controls hit density
};

constexpr SizeClass kClasses[] = {
    {"64x64", 64, 64, 256},
    {"1kx1k", 1024, 1024, 4096},
    {"16kx16k", 16384, 16384, 65536},
    {"64x16k", 64, 16384, 65536},       // gallop territory
    {"16x64k", 16, 65536, 262144},      // extreme skew
};

struct Measurement {
  double ops_per_sec = 0;
  double elems_per_sec = 0;  // (na+nb) per op, the merge-work normalizer
  std::uint64_t checksum = 0;
};

// Pool of input pairs per class, reused across levels so every level sees
// identical data.
struct InputPool {
  std::vector<std::vector<std::uint32_t>> as, bs;
};

InputPool MakePool(const SizeClass& sc) {
  InputPool pool;
  Rng rng(0x1D7E45EC + sc.na * 31 + sc.nb);
  constexpr std::size_t kPairs = 16;
  for (std::size_t p = 0; p < kPairs; ++p) {
    pool.as.push_back(MakeSorted(rng, sc.na, sc.universe));
    pool.bs.push_back(MakeSorted(rng, sc.nb, sc.universe));
  }
  return pool;
}

// One deterministic pass over the pool: the same-inputs same-outputs check
// across kernel levels (kept out of the timed loop, whose pass count varies).
std::uint64_t PoolChecksum(const simd::Kernels& k, const SizeClass& sc,
                           const InputPool& pool) {
  std::vector<std::uint32_t> out(std::min(sc.na, sc.nb));
  std::uint64_t sum = 0;
  for (std::size_t p = 0; p < pool.as.size(); ++p) {
    const auto& a = pool.as[p];
    const auto& b = pool.bs[p];
    const std::size_t cnt =
        k.intersect(a.data(), a.size(), b.data(), b.size(), out.data());
    sum = sum * 1000003ULL + cnt;
    for (std::size_t i = 0; i < cnt; ++i) sum = sum * 31 + out[i];
  }
  return sum;
}

Measurement MeasureIntersect(const simd::Kernels& k, const SizeClass& sc,
                             const InputPool& pool, double seconds) {
  std::vector<std::uint32_t> out(std::min(sc.na, sc.nb));
  Measurement m;
  std::uint64_t ops = 0;
  Timer t;
  do {
    for (std::size_t p = 0; p < pool.as.size(); ++p) {
      const auto& a = pool.as[p];
      const auto& b = pool.bs[p];
      const std::size_t cnt =
          k.intersect(a.data(), a.size(), b.data(), b.size(), out.data());
      m.checksum += cnt + (cnt > 0 ? out[cnt - 1] : 0);
      ++ops;
    }
  } while (t.ElapsedSeconds() < seconds);
  const double elapsed = t.ElapsedSeconds();
  m.ops_per_sec = static_cast<double>(ops) / elapsed;
  m.elems_per_sec = m.ops_per_sec * static_cast<double>(sc.na + sc.nb);
  return m;
}

// Bitmap-filter class: one dense "hub" bitmap vs sorted candidate keys, the
// shape of hub-vertex CST materialization.
Measurement MeasureBitmapFilter(const simd::Kernels& k, double seconds) {
  constexpr std::size_t kBits = 1 << 18;
  Rng rng(0xB17F17E6);
  simd::Bitset bits(kBits);
  for (int i = 0; i < 1 << 14; ++i) {
    bits.Set(static_cast<std::uint32_t>(rng.Uniform(kBits)));
  }
  const auto keys = MakeSorted(rng, 4096, kBits);
  std::vector<std::uint32_t> out(keys.size());
  Measurement m;
  std::uint64_t ops = 0;
  Timer t;
  do {
    for (int rep = 0; rep < 16; ++rep) {
      const std::size_t cnt = k.filter_by_bitmap(
          bits.words().data(), kBits, keys.data(), keys.size(), out.data());
      m.checksum += cnt;
      ++ops;
    }
  } while (t.ElapsedSeconds() < seconds);
  const double elapsed = t.ElapsedSeconds();
  m.ops_per_sec = static_cast<double>(ops) / elapsed;
  m.elems_per_sec = m.ops_per_sec * static_cast<double>(keys.size());
  return m;
}

int Run(int argc, char** argv) {
  auto flags = tools::FlagParser::Parse(argc, argv, {"seconds", "json", "help"},
                                        /*bool_flags=*/{"help"});
  if (!flags.ok() || flags->Has("help")) {
    std::fprintf(stderr, "usage: bench_intersect [--seconds S] [--json FILE]\n%s\n",
                 flags.ok() ? "" : flags.status().ToString().c_str());
    return flags.ok() ? 0 : 2;
  }
  double seconds;
  FAST_FLAG_ASSIGN_OR_USAGE(seconds, flags->GetDouble("seconds", 0.2));

  std::vector<simd::Level> levels;
  for (int i = 0; i < simd::kNumLevels; ++i) {
    const auto level = static_cast<simd::Level>(i);
    if (simd::LevelAvailable(level)) levels.push_back(level);
  }

  bench::JsonWriter w;
  w.Field("bench", "bench_intersect");
  w.Field("seconds_per_cell", seconds);
  w.Field("levels", simd::AvailableLevelsString());

  std::printf("%-10s %-8s %14s %16s %9s\n", "class", "kernel", "ops/sec",
              "elems/sec", "speedup");
  double max_speedup = 0.0;
  std::string max_speedup_class;
  const char* max_speedup_level = "";
  std::uint64_t scalar_checksum = 0;
  bool checksums_ok = true;
  for (const SizeClass& sc : kClasses) {
    const InputPool pool = MakePool(sc);
    double scalar_ops = 0;
    for (const simd::Level level : levels) {
      const simd::Kernels& kern = simd::KernelsFor(level);
      const Measurement m = MeasureIntersect(kern, sc, pool, seconds);
      if (level == simd::Level::kScalar) {
        scalar_ops = m.ops_per_sec;
        scalar_checksum = PoolChecksum(kern, sc, pool);
      } else if (PoolChecksum(kern, sc, pool) != scalar_checksum) {
        // Same inputs, same distinct-value outputs: any divergence is a bug.
        checksums_ok = false;
        std::fprintf(stderr, "CHECKSUM MISMATCH: %s on class %s\n",
                     simd::LevelName(level), sc.name);
      }
      const double speedup =
          scalar_ops > 0 ? m.ops_per_sec / scalar_ops : 1.0;
      if (level != simd::Level::kScalar && speedup > max_speedup) {
        max_speedup = speedup;
        max_speedup_class = sc.name;
        max_speedup_level = simd::LevelName(level);
      }
      std::printf("%-10s %-8s %14.0f %16.3e %8.2fx\n", sc.name,
                  simd::LevelName(level), m.ops_per_sec, m.elems_per_sec,
                  speedup);
      char key[64];
      std::snprintf(key, sizeof(key), "intersect_%s_%s", sc.name,
                    simd::LevelName(level));
      w.BeginObject(key);
      w.Field("ops_per_sec", m.ops_per_sec);
      w.Field("elems_per_sec", m.elems_per_sec);
      w.Field("speedup_vs_scalar", speedup);
      w.EndObject();
    }
  }
  {
    double scalar_ops = 0;
    for (const simd::Level level : levels) {
      const Measurement m = MeasureBitmapFilter(simd::KernelsFor(level), seconds);
      if (level == simd::Level::kScalar) scalar_ops = m.ops_per_sec;
      const double speedup = scalar_ops > 0 ? m.ops_per_sec / scalar_ops : 1.0;
      std::printf("%-10s %-8s %14.0f %16.3e %8.2fx\n", "hub-bitmap",
                  simd::LevelName(level), m.ops_per_sec, m.elems_per_sec,
                  speedup);
      char key[64];
      std::snprintf(key, sizeof(key), "bitmap_filter_%s",
                    simd::LevelName(level));
      w.BeginObject(key);
      w.Field("ops_per_sec", m.ops_per_sec);
      w.Field("speedup_vs_scalar", speedup);
      w.EndObject();
    }
  }
  std::printf("\nmax speedup: %.2fx (%s, class %s)\n", max_speedup,
              max_speedup_level, max_speedup_class.c_str());
  w.Field("max_speedup", max_speedup);
  w.Field("max_speedup_class", max_speedup_class);
  w.Field("max_speedup_level", max_speedup_level);
  w.Field("checksums_ok", checksums_ok);
  bench::EmbedBuildInfo(w);

  const std::string json = flags->GetString("json", "");
  if (!json.empty() && !bench::WriteJsonFile(json, w.Finish())) return 1;
  return checksums_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
