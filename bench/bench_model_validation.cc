// Model-validation ablation: the paper's closed-form cycle model (Eqs. 1-4)
// versus the cycle-stepped pipeline simulation (fpga/pipeline_sim.h) on real
// kernel traces.
//
// The closed forms drop pipeline fill, FIFO behaviour and the unpipelined
// t_n-generation outer loop; this bench quantifies how much that idealization
// costs per query and per variant (sim/analytic ratio ~1 validates using the
// analytic model everywhere else in the repository).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "core/kernel.h"
#include "fpga/pipeline_sim.h"

namespace fast::bench {
namespace {

struct TraceData {
  KernelCounters counters;
  std::vector<RoundWork> trace;
};

TraceData TraceQuery(int qi, const std::string& dataset) {
  const Graph& g = Dataset(dataset);
  const QueryGraph q = Query(qi);
  auto order = ComputeMatchingOrder(q, g, OrderPolicy::kPathBased).value();
  auto cst = BuildCst(q, g, order.root).value();
  TraceData data;
  auto run = RunKernel(cst, order, BenchFpgaConfig(), nullptr, &data.trace);
  FAST_CHECK(run.ok()) << run.status();
  data.counters = run->counters;
  return data;
}

void BM_ModelVsSim(benchmark::State& state, int qi, FastVariant variant) {
  const TraceData data = TraceQuery(qi, "DG01");
  const FpgaConfig config = BenchFpgaConfig();
  double ratio = 0;
  for (auto _ : state) {
    const double analytic = KernelCycles(config, variant, data.counters);
    const double simulated =
        SimulatePipeline(config, variant, data.trace)->cycles;
    ratio = simulated / analytic;
    benchmark::DoNotOptimize(ratio);
  }
  state.counters["sim_over_analytic"] = ratio;
}

void PrintValidation(const std::string& dataset) {
  const FpgaConfig config = BenchFpgaConfig();
  std::printf("\nModel validation (%s): simulated / analytic cycles per variant\n",
              dataset.c_str());
  std::printf("%-6s %12s %12s %12s %12s %10s\n", "query", "DRAM", "BASIC", "TASK",
              "SEP", "rounds");
  for (int qi : {0, 1, 2, 5, 6, 8}) {
    const TraceData data = TraceQuery(qi, dataset);
    std::printf("q%-5d", qi);
    for (FastVariant v : {FastVariant::kDram, FastVariant::kBasic,
                          FastVariant::kTask, FastVariant::kSep}) {
      const double analytic = KernelCycles(config, v, data.counters);
      const double simulated = SimulatePipeline(config, v, data.trace)->cycles;
      std::printf(" %12.3f", analytic > 0 ? simulated / analytic : 0.0);
    }
    std::printf(" %10llu\n",
                static_cast<unsigned long long>(data.counters.rounds));
  }
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  for (int qi : {2, 8}) {
    for (fast::FastVariant v :
         {fast::FastVariant::kBasic, fast::FastVariant::kSep}) {
      benchmark::RegisterBenchmark(
          ("ModelValidation/q" + std::to_string(qi) + "/" +
           fast::FastVariantName(v))
              .c_str(),
          fast::bench::BM_ModelVsSim, qi, v)
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fast::bench::PrintValidation("DG01");
  fast::bench::PrintValidation("DG03");
  return 0;
}
