// Multi-FPGA scaling (Sec. VII-E "Discussion").
//
// The paper argues FAST extends to multiple cards: each CST partition is an
// independent complete search space, and the workload estimator lets the host
// assign partitions to the least-loaded device. No figure is given; this
// bench quantifies the claim: device-busy makespan for 1/2/4/8 simulated
// cards on partition-heavy workloads, plus the load-balance ratio
// (busiest / average) the estimator achieves.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <numeric>

#include "bench_common.h"

namespace fast::bench {
namespace {

FastRunOptions MultiOptions() {
  FastRunOptions options = BenchRunOptions(FastVariant::kSep);
  // Tight budget -> many partitions to schedule.
  options.partition.max_size_words = 4 * 1024;
  options.partition.max_degree = 1 << 16;
  return options;
}

void BM_MultiFpga(benchmark::State& state, int qi, std::size_t devices) {
  const Graph& g = Dataset("DG03");
  const QueryGraph q = Query(qi);
  MultiFpgaResult r;
  for (auto _ : state) {
    auto run = RunMultiFpga(q, g, devices, MultiOptions());
    FAST_CHECK(run.ok()) << run.status();
    r = std::move(run).value();
    state.SetIterationTime(r.makespan_seconds);
  }
  const double busiest =
      *std::max_element(r.device_seconds.begin(), r.device_seconds.end());
  const double total =
      std::accumulate(r.device_seconds.begin(), r.device_seconds.end(), 0.0);
  state.counters["partitions"] = static_cast<double>(r.num_partitions);
  state.counters["busiest_ms"] = busiest * 1e3;
  state.counters["imbalance"] =
      total > 0 ? busiest / (total / static_cast<double>(devices)) : 0.0;
}

void PrintScaling() {
  std::printf("\nMulti-FPGA scaling (DG03 analogue, simulated device time)\n");
  std::printf("%-6s %8s %12s %14s %14s %12s\n", "query", "devices", "#parts",
              "busiest ms", "speedup", "imbalance");
  for (int qi : {2, 7, 8}) {
    const Graph& g = Dataset("DG03");
    const QueryGraph q = Query(qi);
    double single = 0;
    for (std::size_t devices : {1u, 2u, 4u, 8u}) {
      auto r = RunMultiFpga(q, g, devices, MultiOptions());
      FAST_CHECK(r.ok()) << r.status();
      const double busiest =
          *std::max_element(r->device_seconds.begin(), r->device_seconds.end());
      const double total = std::accumulate(r->device_seconds.begin(),
                                           r->device_seconds.end(), 0.0);
      if (devices == 1) single = busiest;
      std::printf("q%-5d %8zu %12zu %14.3f %13.2fx %12.2f\n", qi, devices,
                  r->num_partitions, busiest * 1e3,
                  busiest > 0 ? single / busiest : 0.0,
                  total > 0 ? busiest / (total / static_cast<double>(devices))
                            : 0.0);
    }
  }
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  for (int qi : {2, 8}) {
    for (std::size_t devices : {1u, 2u, 4u}) {
      benchmark::RegisterBenchmark(
          ("MultiFpga/q" + std::to_string(qi) + "/" + std::to_string(devices) +
           "dev")
              .c_str(),
          fast::bench::BM_MultiFpga, qi, devices)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fast::bench::PrintScaling();
  return 0;
}
