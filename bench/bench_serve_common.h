#ifndef FAST_BENCH_BENCH_SERVE_COMMON_H_
#define FAST_BENCH_BENCH_SERVE_COMMON_H_

// Shared pieces of the plain (non-google-benchmark) service benchmarks,
// bench_service and bench_update. Kept separate from bench_common.h, which
// pulls in benchmark/benchmark.h that these binaries don't link against.

#include "fpga/config.h"

namespace fast::bench {

// Device model scaled to the shrunken LDBC datasets, matching the rationale
// in bench_common.h: both service benches must simulate the same device or
// their numbers stop being comparable.
inline FpgaConfig ServeBenchFpgaConfig() {
  FpgaConfig c;
  c.bram_words = 128 * 1024;
  c.port_max = 65536;
  c.max_new_partials = 1024;
  return c;
}

}  // namespace fast::bench

#endif  // FAST_BENCH_BENCH_SERVE_COMMON_H_
