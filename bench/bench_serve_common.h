#ifndef FAST_BENCH_BENCH_SERVE_COMMON_H_
#define FAST_BENCH_BENCH_SERVE_COMMON_H_

// Shared pieces of the plain (non-google-benchmark) service benchmarks:
// bench_service, bench_update, and bench_tenancy. Kept separate from
// bench_common.h, which pulls in benchmark/benchmark.h that these binaries
// don't link against.

#include <string>

#include "fpga/config.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/json_writer.h"

namespace fast::bench {

// Device model scaled to the shrunken LDBC datasets, matching the rationale
// in bench_common.h: all the service benches must simulate the same device
// or their numbers stop being comparable.
inline FpgaConfig ServeBenchFpgaConfig() {
  FpgaConfig c;
  c.bram_words = 128 * 1024;
  c.port_max = 65536;
  c.max_new_partials = 1024;
  return c;
}

// ---- Machine-readable --json output. ----
//
// Every serve bench emits a JSON summary that CI uploads as a BENCH_*.json
// artifact. JsonWriter (util/json_writer.h, formerly defined here)
// centralizes quoting, escaping, comma placement, and indentation so a new
// bench only states its fields.

using fast::JsonEscape;
using fast::JsonWriter;
using fast::WriteJsonFile;

// Embeds a final registry snapshot under a "metrics" key of the bench's JSON
// document, so every BENCH_*.json carries the same counters/gauges/quantiles
// that `fast_serve --metrics-json` exports.
inline void EmbedMetrics(JsonWriter& w, const obs::MetricsRegistry& registry) {
  obs::WriteSnapshotJson(w, registry.Snapshot(), "metrics");
}

// Embeds the build stamp (util/build_info.h) under a "build" key, so a
// BENCH_*.json artifact records which commit and compiler produced it.
inline void EmbedBuildInfo(JsonWriter& w) { obs::WriteBuildInfoJson(w); }

}  // namespace fast::bench

#endif  // FAST_BENCH_BENCH_SERVE_COMMON_H_
