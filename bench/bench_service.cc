// bench_service: fixed-duration throughput/latency benchmark of the
// concurrent query-serving layer (src/service/), in the style of silo's
// bench_runner: spawn client threads, hold a start barrier, hammer the
// service for a fixed wall-clock window, then aggregate queries/sec.
//
//   bench_service [--sf 0.3] [--duration 3] [--clients 8] [--workers 0]
//                 [--queries 0,1,2] [--deadline-ms 0] [--json FILE]
//                 [--profile-hz HZ] [--profile-out FILE] [--chrome-trace FILE]
//
// --json FILE writes the two phases as a machine-readable summary (the CI
// smoke step uploads it as the BENCH_service.json workflow artifact).
//
// Runs the same repeated-query workload twice — plan/CST cache enabled and
// disabled — and prints both, so the cache's effect on throughput is part of
// the benchmark output. Unlike the per-figure binaries this is a plain
// binary (no google-benchmark): the quantity under test is sustained service
// throughput, not per-call time.
//
// --profile-hz HZ adds a fourth phase repeating cache-on with the stage
// sampling profiler (src/obs/profiler.h) running at HZ: the qps delta vs the
// plain cache-on phase is reported as profiler_overhead_pct (CI gates it
// < 3%). --profile-out writes that phase's collapsed-stack profile and
// --chrome-trace its trace-event timeline.
//
// Two further phases A/B the SIMD kernel layer (src/simd/) end to end:
// cache off + cpu_share_delta=0.9, so every request rebuilds its CST and
// routes ~90% of partition work through MatchCstOnCpu, first with the scalar
// kernels forced and then with the best available level (or the one forced
// via --simd=scalar|swar|avx2|neon). The ratio is reported as simd_speedup
// (CI gates >= 1.0x), and per-query match counts are verified identical
// across every available level before the phases run.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_serve_common.h"
#include "core/cpu_matcher.h"
#include "cst/cst.h"
#include "ldbc/ldbc.h"
#include "obs/export.h"
#include "obs/profiler.h"
#include "query/matching_order.h"
#include "service/match_service.h"
#include "simd/intersect.h"
#include "tools/flag_parser.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace fast;
using bench::ServeBenchFpgaConfig;
using service::MatchService;
using service::ServiceOptions;
using service::ServiceStats;

struct PhaseResult {
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double hit_rate = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
};

PhaseResult RunPhase(const Graph& graph, const std::vector<QueryGraph>& mix,
                     std::size_t cache_capacity, std::size_t workers,
                     std::size_t clients, double duration_seconds,
                     double deadline_seconds, obs::MetricsRegistry* metrics,
                     bool tracing,
                     std::vector<std::shared_ptr<const obs::CompletedTrace>>*
                         traces_out = nullptr,
                     std::vector<obs::InstantEvent>* events_out = nullptr,
                     double cpu_share_delta = 0.0) {
  ServiceOptions options;
  options.num_workers = workers;
  options.queue_capacity = 512;
  options.plan_cache_capacity = cache_capacity;
  options.default_deadline_seconds = deadline_seconds;
  options.run.fpga = ServeBenchFpgaConfig();
  options.run.cpu_share_delta = cpu_share_delta;
  options.metrics = metrics;
  options.tracing = tracing;
  MatchService svc(graph, options);

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(0x5110 + c);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_relaxed)) {
        const QueryGraph& q = mix[rng.Uniform(mix.size())];
        auto id = svc.Submit(q);
        if (!id.ok()) continue;  // admission control: queue full
        svc.Wait(*id);
      }
    });
  }
  while (ready.load() < clients) std::this_thread::yield();

  go.store(true, std::memory_order_release);  // bombs away (silo barrier_b)
  Timer wall;
  while (wall.ElapsedSeconds() < duration_seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  const double elapsed = wall.ElapsedSeconds();

  const ServiceStats stats = svc.stats();
  PhaseResult r;
  r.qps = static_cast<double>(stats.completed) / elapsed;
  r.p50_ms = stats.latency.P50() * 1e3;
  r.p99_ms = stats.latency.P99() * 1e3;
  r.hit_rate = stats.cache.HitRate();
  r.completed = stats.completed;
  r.rejected = stats.rejected_queue_full + stats.rejected_deadline;
  if (traces_out != nullptr) *traces_out = svc.recent_traces();
  if (events_out != nullptr) *events_out = svc.request_obs()->recent_events();
  return r;
}

// Single-threaded per-query match counts under the active kernel level (CPU
// matcher all the way: this is the bit-identical-results check behind the
// SIMD A/B phases).
std::vector<std::uint64_t> CountMatches(const Graph& graph,
                                        const std::vector<QueryGraph>& mix) {
  std::vector<std::uint64_t> counts;
  counts.reserve(mix.size());
  for (const QueryGraph& q : mix) {
    const auto order = ComputeMatchingOrder(q, graph, OrderPolicy::kPathBased);
    FAST_CHECK_OK(order.status());
    const auto cst = BuildCst(q, graph, order->root);
    FAST_CHECK_OK(cst.status());
    const auto count = MatchCstOnCpu(*cst, *order, nullptr);
    FAST_CHECK_OK(count.status());
    counts.push_back(*count);
  }
  return counts;
}

int Run(int argc, char** argv) {
  auto flags = tools::FlagParser::Parse(
      argc, argv,
      {"sf", "duration", "clients", "workers", "queries", "deadline-ms",
       "json", "simd", "profile-hz", "profile-out", "chrome-trace", "help"},
      /*bool_flags=*/{"help"});
  if (!flags.ok() || flags->Has("help")) {
    std::fprintf(stderr,
                 "usage: bench_service [--sf S] [--duration SEC] [--clients N]\n"
                 "                     [--workers N] [--queries I,J,...]\n"
                 "                     [--deadline-ms MS] [--json FILE]\n"
                 "                     [--simd scalar|swar|avx2|neon|auto]\n"
                 "                     [--profile-hz HZ] [--profile-out FILE]\n"
                 "                     [--chrome-trace FILE]\n%s\n",
                 flags.ok() ? "" : flags.status().ToString().c_str());
    return flags.ok() ? 0 : 2;
  }
  const std::string simd_flag = flags->GetString("simd", "auto");
  if (!simd::SetActiveByName(simd_flag)) {
    std::fprintf(stderr, "--simd=%s: unknown or unavailable (have: %s)\n",
                 simd_flag.c_str(), simd::AvailableLevelsString().c_str());
    return 2;
  }
  double sf, duration, deadline_ms;
  std::size_t clients, workers;
  FAST_FLAG_ASSIGN_OR_USAGE(sf, flags->GetDouble("sf", 0.3));
  FAST_FLAG_ASSIGN_OR_USAGE(duration, flags->GetDouble("duration", 3.0));
  FAST_FLAG_ASSIGN_OR_USAGE(deadline_ms, flags->GetDouble("deadline-ms", 0.0));
  FAST_FLAG_ASSIGN_OR_USAGE(clients, flags->GetSizeT("clients", 8));
  FAST_FLAG_ASSIGN_OR_USAGE(workers, flags->GetSizeT("workers", 0));
  double profile_hz;
  FAST_FLAG_ASSIGN_OR_USAGE(profile_hz, flags->GetDouble("profile-hz", 0.0));
  const std::string profile_out = flags->GetString("profile-out", "");
  const std::string chrome_trace = flags->GetString("chrome-trace", "");
  if ((!profile_out.empty() || !chrome_trace.empty()) && profile_hz <= 0.0) {
    std::fprintf(stderr, "--profile-out/--chrome-trace need --profile-hz (the "
                         "profile phase produces them)\n");
    return 2;
  }

  LdbcConfig config;
  config.scale_factor = sf;
  config.seed = 42;
  auto graph = GenerateLdbcGraph(config);
  if (!graph.ok()) {
    std::fprintf(stderr, "generate: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("data: %s\n", graph->Summary().c_str());

  auto mix_or = ParseLdbcQueryMix(flags->GetString("queries", "0,1,2"));
  if (!mix_or.ok()) {
    std::fprintf(stderr, "%s\n", mix_or.status().ToString().c_str());
    return 2;
  }
  std::vector<QueryGraph> mix = std::move(*mix_or);
  if (mix.empty()) {
    std::fprintf(stderr, "--queries: no queries specified\n");
    return 2;
  }
  std::printf("mix: %zu queries, %zu clients, %.1fs per phase\n\n", mix.size(),
              clients, duration);

  // The cache phases run with full observability on (registry + tracing) —
  // that is the production configuration. The extra obs-off phase repeats
  // cache-on with both disabled, so the A/B quantifies what the metrics and
  // tracing hot paths cost (acceptance gate: < 3% qps).
  obs::MetricsRegistry registry;
  const PhaseResult off =
      RunPhase(*graph, mix, /*cache_capacity=*/0, workers, clients, duration,
               deadline_ms / 1e3, &registry, /*tracing=*/true);
  const PhaseResult on =
      RunPhase(*graph, mix, /*cache_capacity=*/64, workers, clients, duration,
               deadline_ms / 1e3, &registry, /*tracing=*/true);
  const PhaseResult obs_off =
      RunPhase(*graph, mix, /*cache_capacity=*/64, workers, clients, duration,
               deadline_ms / 1e3, /*metrics=*/nullptr, /*tracing=*/false);

  // SIMD A/B. Counts first: every available kernel level must produce the
  // same per-query match counts before its throughput means anything.
  const simd::Level simd_level = simd::ActiveLevel();
  bool simd_counts_identical = true;
  {
    simd::SetActive(simd::Level::kScalar);
    const std::vector<std::uint64_t> truth = CountMatches(*graph, mix);
    for (int i = 0; i < simd::kNumLevels; ++i) {
      const auto level = static_cast<simd::Level>(i);
      if (level == simd::Level::kScalar || !simd::LevelAvailable(level)) continue;
      simd::SetActive(level);
      if (CountMatches(*graph, mix) != truth) {
        simd_counts_identical = false;
        std::fprintf(stderr, "SIMD CONSISTENCY FAILURE: --simd=%s match counts "
                             "diverge from scalar\n",
                     simd::LevelName(level));
      }
    }
  }
  // CPU-mode throughput: cache off (BuildCst per request) and 90% of
  // partition work routed to MatchCstOnCpu. The two levels run interleaved
  // (scalar, best, scalar, best) in half-duration rounds so slow drift on a
  // shared box — CPU throttling, a noisy neighbor — hits both sides equally
  // instead of biasing whichever phase ran second.
  constexpr double kCpuShare = 0.9;
  constexpr int kSimdRounds = 2;
  PhaseResult simd_scalar, simd_best;
  for (int round = 0; round < kSimdRounds; ++round) {
    simd::SetActive(simd::Level::kScalar);
    const PhaseResult rs =
        RunPhase(*graph, mix, /*cache_capacity=*/0, workers, clients,
                 duration / kSimdRounds, deadline_ms / 1e3, &registry,
                 /*tracing=*/true, nullptr, nullptr, kCpuShare);
    simd::SetActive(simd_level);
    const PhaseResult rb =
        RunPhase(*graph, mix, /*cache_capacity=*/0, workers, clients,
                 duration / kSimdRounds, deadline_ms / 1e3, &registry,
                 /*tracing=*/true, nullptr, nullptr, kCpuShare);
    const auto add = [](PhaseResult* acc, const PhaseResult& r) {
      acc->qps += r.qps / kSimdRounds;
      acc->p50_ms = std::max(acc->p50_ms, r.p50_ms);
      acc->p99_ms = std::max(acc->p99_ms, r.p99_ms);
      acc->completed += r.completed;
      acc->rejected += r.rejected;
    };
    add(&simd_scalar, rs);
    add(&simd_best, rb);
  }
  const double simd_speedup =
      simd_scalar.qps > 0 ? simd_best.qps / simd_scalar.qps : 0.0;

  // Profile phase: cache-on repeated with the stage sampler running. The
  // A/B against the plain cache-on phase is the profiler's qps overhead.
  PhaseResult prof;
  double profiler_overhead_pct = 0.0;
  std::vector<std::shared_ptr<const obs::CompletedTrace>> prof_traces;
  std::vector<obs::InstantEvent> prof_events;
  if (profile_hz > 0.0) {
    obs::Profiler::Default()->BindMetrics(&registry);
    obs::Profiler::Default()->Start(profile_hz);
    prof = RunPhase(*graph, mix, /*cache_capacity=*/64, workers, clients,
                    duration, deadline_ms / 1e3, &registry, /*tracing=*/true,
                    &prof_traces, &prof_events);
    obs::Profiler::Default()->Stop();
    profiler_overhead_pct =
        on.qps > 0 ? (on.qps - prof.qps) / on.qps * 100.0 : 0.0;
  }

  std::printf("%-12s %12s %10s %10s %10s %12s %10s\n", "phase", "queries/sec",
              "p50 ms", "p99 ms", "hit rate", "completed", "rejected");
  auto row = [](const char* name, const PhaseResult& r) {
    std::printf("%-12s %12.1f %10.3f %10.3f %9.1f%% %12llu %10llu\n", name, r.qps,
                r.p50_ms, r.p99_ms, r.hit_rate * 100.0,
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.rejected));
  };
  row("cache-off", off);
  row("cache-on", on);
  row("obs-off", obs_off);
  char simd_row[32];
  std::snprintf(simd_row, sizeof(simd_row), "simd-%s",
                simd::LevelName(simd_level));
  row("simd-scalar", simd_scalar);
  row(simd_row, simd_best);
  if (profile_hz > 0.0) row("profile-on", prof);
  std::printf("\ncache speedup: %.2fx queries/sec (%.1f -> %.1f)\n",
              off.qps > 0 ? on.qps / off.qps : 0.0, off.qps, on.qps);
  std::printf("simd speedup (%s vs scalar, cpu-mode): %.2fx (%.1f -> %.1f), "
              "counts %s\n",
              simd::LevelName(simd_level), simd_speedup, simd_scalar.qps,
              simd_best.qps, simd_counts_identical ? "identical" : "DIVERGED");
  const double obs_overhead_pct =
      obs_off.qps > 0 ? (obs_off.qps - on.qps) / obs_off.qps * 100.0 : 0.0;
  std::printf("obs overhead: %.2f%% qps (obs-on %.1f vs obs-off %.1f)\n",
              obs_overhead_pct, on.qps, obs_off.qps);
  if (profile_hz > 0.0) {
    std::printf("profiler overhead: %.2f%% qps at %g Hz (profile-on %.1f vs "
                "cache-on %.1f)\n",
                profiler_overhead_pct, profile_hz, prof.qps, on.qps);
  }

  if (!profile_out.empty()) {
    bench::WriteJsonFile(
        profile_out, obs::CollapsedStacks(obs::Profiler::Default()->Snapshot()));
    std::printf("profile: wrote %s\n", profile_out.c_str());
  }
  if (!chrome_trace.empty()) {
    obs::ChromeTraceInputs in;
    in.process_name = "bench_service";
    in.traces = prof_traces;
    const obs::ProfileSnapshot prof_snap = obs::Profiler::Default()->Snapshot();
    in.threads = prof_snap.threads;
    in.stage_samples = obs::Profiler::Default()->TimelineSnapshot();
    in.sample_period_seconds = 1.0 / profile_hz;
    in.instants = prof_events;
    bench::WriteJsonFile(chrome_trace, obs::ChromeTraceJson(in));
    std::printf("timeline: wrote %s (%zu traces, %zu stage samples)\n",
                chrome_trace.c_str(), in.traces.size(),
                in.stage_samples.size());
  }

  const std::string json = flags->GetString("json", "");
  if (!json.empty()) {
    bench::JsonWriter w;
    w.Field("bench", "bench_service");
    w.Field("sf", sf);
    w.Field("clients", static_cast<std::uint64_t>(clients));
    w.Field("duration_s", duration);
    const auto phase = [&w](const char* name, const PhaseResult& r,
                            bool with_hit_rate) {
      w.BeginObject(name);
      w.Field("qps", r.qps);
      w.Field("p50_ms", r.p50_ms);
      w.Field("p99_ms", r.p99_ms);
      if (with_hit_rate) w.Field("hit_rate", r.hit_rate);
      w.Field("completed", r.completed);
      w.Field("rejected", r.rejected);
      w.EndObject();
    };
    phase("cache_off", off, /*with_hit_rate=*/false);
    phase("cache_on", on, /*with_hit_rate=*/true);
    phase("obs_off", obs_off, /*with_hit_rate=*/true);
    phase("simd_scalar", simd_scalar, /*with_hit_rate=*/false);
    phase("simd_best", simd_best, /*with_hit_rate=*/false);
    if (profile_hz > 0.0) phase("profile_on", prof, /*with_hit_rate=*/true);
    w.Field("cache_speedup", off.qps > 0 ? on.qps / off.qps : 0.0);
    w.Field("simd_best_level", simd::LevelName(simd_level));
    w.Field("simd_speedup", simd_speedup);
    w.Field("simd_counts_identical", simd_counts_identical);
    w.Field("obs_overhead_pct", obs_overhead_pct);
    if (profile_hz > 0.0) {
      w.Field("profile_hz", profile_hz);
      w.Field("profiler_overhead_pct", profiler_overhead_pct);
    }
    bench::EmbedBuildInfo(w);
    bench::EmbedMetrics(w, registry);
    if (!bench::WriteJsonFile(json, w.Finish())) return 1;
  }
  return simd_counts_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
