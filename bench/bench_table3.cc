// Table III: characteristics of datasets.
//
// Paper row format: Name |V_G| |E_G| avg-degree max-degree #Labels.
// Our DGx analogues are scaled down ~1000x (see bench_common.h); the row
// *structure* (monotone growth, degree ~11-13, heavy-tailed max degree,
// 11 labels) is the reproduction target.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"

namespace fast::bench {
namespace {

void BM_DatasetCharacteristics(benchmark::State& state,
                               const std::string& name) {
  const Graph* g = nullptr;
  for (auto _ : state) {
    g = &Dataset(name);  // generation cost is what we time on first use
    benchmark::DoNotOptimize(g);
  }
  state.counters["V"] = static_cast<double>(g->NumVertices());
  state.counters["E"] = static_cast<double>(g->NumEdges());
  state.counters["avg_deg"] = g->AverageDegree();
  state.counters["max_deg"] = g->MaxDegree();
  state.counters["labels"] = static_cast<double>(g->NumLabels());
}

void PrintTable3() {
  std::printf("\nTable III: characteristics of datasets (scaled LDBC analogues)\n");
  std::printf("%-8s %12s %12s %10s %10s %8s\n", "Name", "|V_G|", "|E_G|", "avg_d",
              "max_D", "#Labels");
  for (const auto& [name, sf] : DatasetScaleFactors()) {
    const Graph& g = Dataset(name);
    std::printf("%-8s %12zu %12zu %10.2f %10u %8zu\n", name.c_str(),
                g.NumVertices(), g.NumEdges(), g.AverageDegree(), g.MaxDegree(),
                g.NumLabels());
  }
  std::printf("\n");
}

}  // namespace
}  // namespace fast::bench

int main(int argc, char** argv) {
  for (const auto& [name, sf] : fast::bench::DatasetScaleFactors()) {
    benchmark::RegisterBenchmark(("Table3/generate/" + name).c_str(),
                                 fast::bench::BM_DatasetCharacteristics, name)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fast::bench::PrintTable3();
  return 0;
}
