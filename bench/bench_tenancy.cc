// bench_tenancy: aggregate throughput and per-tenant tail latency of the
// multi-graph tenant router (src/tenant/) under Zipf-skewed tenant traffic.
//
//   bench_tenancy [--sf 0.2] [--tenants 4] [--duration 2] [--clients 8]
//                 [--workers 0] [--queries 0,1,2] [--zipf-s 1.2] [--quota 16]
//                 [--max-p99-factor 50] [--json FILE]
//
// Three phases:
//   solo    each tenant alone on the shared pool (sequentially, full
//           workers, no contention) — the per-tenant baseline p99;
//   shared  ONE TenantRouter hosting all tenants behind one worker pool,
//           clients picking tenants Zipf(s)-skewed (tenant 0 hottest), with
//           per-tenant admission quotas and equal WRR weights;
//   split   N independent MatchServices, each with 1/N of the workers, same
//           skewed traffic — what serving N graphs costs without the shared
//           pool.
//
// CI gates (exit 1): a tenant that completes zero queries in the shared
// phase (starvation — the WRR dequeue exists to prevent exactly this), or a
// coldest-tenant shared p99 more than --max-p99-factor times its solo p99
// (unbounded queueing behind the hot tenant). Plain binary (no
// google-benchmark), in the style of bench_service.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_serve_common.h"
#include "ldbc/ldbc.h"
#include "service/match_service.h"
#include "tenant/tenant_router.h"
#include "tools/flag_parser.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace fast;
using bench::ServeBenchFpgaConfig;
using service::MatchService;
using service::ServiceOptions;
using tenant::RouterOptions;
using tenant::RouterStats;
using tenant::TenantOptions;
using tenant::TenantRouter;
using tenant::TenantStats;

std::string TenantId(std::size_t i) { return "t" + std::to_string(i); }

struct TenantOutcome {
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;  // queue_full + quota
  double traffic_share = 0;    // fraction of client picks
};

struct PhaseOutcome {
  double qps = 0;  // aggregate completed / elapsed
  std::vector<TenantOutcome> tenants;
};

// Runs `clients` closed-loop client threads for `duration_seconds`;
// pick_tenant maps a uniform draw to a tenant index and submit executes one
// request against that tenant, returning true when it completed OK.
template <typename SubmitFn>
double RunClients(std::size_t clients, double duration_seconds,
                  const std::vector<double>& cdf,
                  std::vector<std::uint64_t>* picks, SubmitFn submit) {
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> ready{0};
  std::vector<std::vector<std::uint64_t>> per_client_picks(
      clients, std::vector<std::uint64_t>(cdf.size(), 0));
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(0x7E4A47 + 1315423911u * c);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t t = SampleCdf(cdf, rng);
        ++per_client_picks[c][t];
        submit(t, rng);
      }
    });
  }
  while (ready.load() < clients) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  Timer wall;
  while (wall.ElapsedSeconds() < duration_seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  const double elapsed = wall.ElapsedSeconds();
  picks->assign(cdf.size(), 0);
  for (const auto& pc : per_client_picks) {
    for (std::size_t t = 0; t < pc.size(); ++t) (*picks)[t] += pc[t];
  }
  return elapsed;
}

TenantOutcome OutcomeFromTenantStats(const TenantStats& ts, double elapsed) {
  TenantOutcome o;
  o.qps = static_cast<double>(ts.completed) / elapsed;
  o.p50_ms = ts.latency.P50() * 1e3;
  o.p99_ms = ts.latency.P99() * 1e3;
  o.completed = ts.completed;
  o.rejected = ts.rejected_queue_full + ts.rejected_quota;
  return o;
}

// One tenant alone behind the full shared pool: its no-contention baseline.
PhaseOutcome RunSolo(const std::vector<Graph>& graphs,
                     const std::vector<QueryGraph>& mix,
                     const RouterOptions& router_options,
                     const TenantOptions& tenant_options, std::size_t clients,
                     double duration_seconds) {
  PhaseOutcome out;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    TenantRouter router(router_options);
    FAST_CHECK_OK(router.AddTenant(TenantId(i), graphs[i], tenant_options));
    const std::vector<double> cdf = {1.0};  // all traffic to this tenant
    std::vector<std::uint64_t> picks;
    const double elapsed =
        RunClients(clients, duration_seconds, cdf, &picks, [&](std::size_t, Rng& rng) {
          auto r = router.SubmitAndWait(TenantId(i), mix[rng.Uniform(mix.size())]);
          return r.ok();
        });
    auto ts = router.tenant_stats(TenantId(i));
    FAST_CHECK(ts.ok());
    TenantOutcome o = OutcomeFromTenantStats(*ts, elapsed);
    o.traffic_share = 1.0;
    out.tenants.push_back(o);
    out.qps += o.qps;
  }
  return out;
}

PhaseOutcome RunShared(const std::vector<Graph>& graphs,
                       const std::vector<QueryGraph>& mix,
                       const RouterOptions& router_options,
                       const TenantOptions& tenant_options,
                       const std::vector<double>& cdf, std::size_t clients,
                       double duration_seconds) {
  TenantRouter router(router_options);
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    FAST_CHECK_OK(router.AddTenant(TenantId(i), graphs[i], tenant_options));
  }
  std::vector<std::uint64_t> picks;
  const double elapsed =
      RunClients(clients, duration_seconds, cdf, &picks, [&](std::size_t t, Rng& rng) {
        auto r = router.SubmitAndWait(TenantId(t), mix[rng.Uniform(mix.size())]);
        return r.ok();
      });

  const RouterStats stats = router.stats();
  PhaseOutcome out;
  std::uint64_t total_picks = 0;
  for (std::uint64_t p : picks) total_picks += p;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    // stats.tenants is sorted by id; with <= 10 tenants "t0".."t9" sorts in
    // index order, but look up by id to stay correct beyond that.
    const std::string id = TenantId(i);
    const auto it =
        std::find_if(stats.tenants.begin(), stats.tenants.end(),
                     [&](const TenantStats& ts) { return ts.id == id; });
    FAST_CHECK(it != stats.tenants.end());
    TenantOutcome o = OutcomeFromTenantStats(*it, elapsed);
    o.traffic_share = total_picks > 0
                          ? static_cast<double>(picks[i]) /
                                static_cast<double>(total_picks)
                          : 0.0;
    out.tenants.push_back(o);
    out.qps += o.qps;
  }
  return out;
}

// N independent MatchServices, each with its slice of the worker budget.
PhaseOutcome RunSplit(const std::vector<Graph>& graphs,
                      const std::vector<QueryGraph>& mix,
                      const RouterOptions& router_options,
                      std::size_t plan_cache_capacity,
                      const std::vector<double>& cdf, std::size_t clients,
                      double duration_seconds) {
  std::size_t total_workers = router_options.num_workers;
  if (total_workers == 0) {
    total_workers = std::max(1u, std::thread::hardware_concurrency());
  }
  ServiceOptions options;
  options.num_workers = std::max<std::size_t>(1, total_workers / graphs.size());
  options.queue_capacity =
      std::max<std::size_t>(1, router_options.queue_capacity / graphs.size());
  options.plan_cache_capacity = plan_cache_capacity;
  options.default_deadline_seconds = router_options.default_deadline_seconds;
  options.run = router_options.run;
  options.metrics = router_options.metrics;

  std::vector<std::unique_ptr<MatchService>> services;
  services.reserve(graphs.size());
  for (const Graph& g : graphs) {
    services.push_back(std::make_unique<MatchService>(g, options));
  }
  std::vector<std::uint64_t> picks;
  const double elapsed =
      RunClients(clients, duration_seconds, cdf, &picks, [&](std::size_t t, Rng& rng) {
        auto r = services[t]->SubmitAndWait(mix[rng.Uniform(mix.size())]);
        return r.ok();
      });

  PhaseOutcome out;
  std::uint64_t total_picks = 0;
  for (std::uint64_t p : picks) total_picks += p;
  for (std::size_t i = 0; i < services.size(); ++i) {
    const auto stats = services[i]->stats();
    TenantOutcome o;
    o.qps = static_cast<double>(stats.completed) / elapsed;
    o.p50_ms = stats.latency.P50() * 1e3;
    o.p99_ms = stats.latency.P99() * 1e3;
    o.completed = stats.completed;
    o.rejected = stats.rejected_queue_full;
    o.traffic_share = total_picks > 0
                          ? static_cast<double>(picks[i]) /
                                static_cast<double>(total_picks)
                          : 0.0;
    out.tenants.push_back(o);
    out.qps += o.qps;
  }
  return out;
}

int Run(int argc, char** argv) {
  auto flags = tools::FlagParser::Parse(
      argc, argv,
      {"sf", "tenants", "duration", "clients", "workers", "queries", "zipf-s",
       "quota", "max-p99-factor", "json", "help"},
      /*bool_flags=*/{"help"});
  if (!flags.ok() || flags->Has("help")) {
    std::fprintf(
        stderr,
        "usage: bench_tenancy [--sf S] [--tenants N] [--duration SEC]\n"
        "                     [--clients N] [--workers N] [--queries I,J,...]\n"
        "                     [--zipf-s S] [--quota N] [--max-p99-factor F]\n"
        "                     [--json FILE]\n%s\n",
        flags.ok() ? "" : flags.status().ToString().c_str());
    return flags.ok() ? 0 : 2;
  }
  double sf, duration, zipf_s, max_p99_factor;
  std::size_t num_tenants, clients, workers, quota;
  FAST_FLAG_ASSIGN_OR_USAGE(sf, flags->GetDouble("sf", 0.2));
  FAST_FLAG_ASSIGN_OR_USAGE(duration, flags->GetDouble("duration", 2.0));
  FAST_FLAG_ASSIGN_OR_USAGE(zipf_s, flags->GetDouble("zipf-s", 1.2));
  FAST_FLAG_ASSIGN_OR_USAGE(max_p99_factor,
                            flags->GetDouble("max-p99-factor", 50.0));
  FAST_FLAG_ASSIGN_OR_USAGE(num_tenants, flags->GetSizeT("tenants", 4));
  FAST_FLAG_ASSIGN_OR_USAGE(clients, flags->GetSizeT("clients", 8));
  FAST_FLAG_ASSIGN_OR_USAGE(workers, flags->GetSizeT("workers", 0));
  FAST_FLAG_ASSIGN_OR_USAGE(quota, flags->GetSizeT("quota", 16));
  if (num_tenants == 0) {
    std::fprintf(stderr, "--tenants must be > 0\n");
    return 2;
  }

  auto mix_or = ParseLdbcQueryMix(flags->GetString("queries", "0,1,2"));
  if (!mix_or.ok()) {
    std::fprintf(stderr, "%s\n", mix_or.status().ToString().c_str());
    return 2;
  }
  const std::vector<QueryGraph> mix = std::move(*mix_or);
  if (mix.empty()) {
    std::fprintf(stderr, "--queries: no queries specified\n");
    return 2;
  }

  // One LDBC-like graph per tenant, seeded differently so the tenants carry
  // genuinely different data.
  std::vector<Graph> graphs;
  for (std::size_t i = 0; i < num_tenants; ++i) {
    LdbcConfig config;
    config.scale_factor = sf;
    config.seed = 42 + i;
    auto g = GenerateLdbcGraph(config);
    if (!g.ok()) {
      std::fprintf(stderr, "generate: %s\n", g.status().ToString().c_str());
      return 1;
    }
    graphs.push_back(std::move(*g));
  }
  std::printf("data: %zu tenants at sf=%g, e.g. %s\n", num_tenants, sf,
              graphs[0].Summary().c_str());

  obs::MetricsRegistry registry;
  RouterOptions router_options;
  router_options.num_workers = workers;
  router_options.queue_capacity = 512;
  router_options.run.fpga = ServeBenchFpgaConfig();
  router_options.metrics = &registry;
  TenantOptions tenant_options;
  tenant_options.plan_cache_capacity = 64;
  tenant_options.max_queued = quota;
  tenant_options.weight = 1;

  const std::vector<double> cdf = ZipfCdf(num_tenants, zipf_s);
  const double solo_duration = std::max(0.5, duration / 2.0);
  std::printf("mix: %zu queries, %zu clients, zipf s=%g, quota=%zu, "
              "%.1fs shared phase (%.1fs solo per tenant)\n\n",
              mix.size(), clients, zipf_s, quota, duration, solo_duration);

  const PhaseOutcome solo = RunSolo(graphs, mix, router_options, tenant_options,
                                    clients, solo_duration);
  const PhaseOutcome shared = RunShared(graphs, mix, router_options,
                                        tenant_options, cdf, clients, duration);
  const PhaseOutcome split =
      RunSplit(graphs, mix, router_options, tenant_options.plan_cache_capacity,
               cdf, clients, duration);

  std::printf("%-8s %8s %12s %12s %12s %12s %10s %10s\n", "tenant", "share",
              "solo p99", "shared p99", "p99 factor", "completed", "rejected",
              "qps");
  double coldest_factor = 0.0;
  for (std::size_t i = 0; i < num_tenants; ++i) {
    const double factor = solo.tenants[i].p99_ms > 0
                              ? shared.tenants[i].p99_ms / solo.tenants[i].p99_ms
                              : 0.0;
    if (i + 1 == num_tenants) coldest_factor = factor;
    std::printf("%-8s %7.1f%% %10.3fms %10.3fms %11.2fx %12llu %10llu %10.1f\n",
                TenantId(i).c_str(), shared.tenants[i].traffic_share * 100.0,
                solo.tenants[i].p99_ms, shared.tenants[i].p99_ms, factor,
                static_cast<unsigned long long>(shared.tenants[i].completed),
                static_cast<unsigned long long>(shared.tenants[i].rejected),
                shared.tenants[i].qps);
  }
  std::printf("\naggregate qps: shared router %.1f vs %zu split services %.1f "
              "(%.2fx)\n",
              shared.qps, num_tenants, split.qps,
              split.qps > 0 ? shared.qps / split.qps : 0.0);

  const std::string json = flags->GetString("json", "");
  if (!json.empty()) {
    bench::JsonWriter w;
    w.Field("bench", "bench_tenancy");
    w.Field("sf", sf);
    w.Field("tenants", static_cast<std::uint64_t>(num_tenants));
    w.Field("clients", static_cast<std::uint64_t>(clients));
    w.Field("duration_s", duration);
    w.Field("zipf_s", zipf_s);
    w.Field("quota", static_cast<std::uint64_t>(quota));
    w.Field("shared_qps", shared.qps);
    w.Field("split_qps", split.qps);
    w.Field("qps_ratio", split.qps > 0 ? shared.qps / split.qps : 0.0);
    w.Field("coldest_p99_factor", coldest_factor);
    w.BeginArray("per_tenant");
    for (std::size_t i = 0; i < num_tenants; ++i) {
      w.BeginObject();
      w.Field("id", TenantId(i));
      w.Field("traffic_share", shared.tenants[i].traffic_share);
      w.Field("solo_p99_ms", solo.tenants[i].p99_ms);
      w.Field("shared_p99_ms", shared.tenants[i].p99_ms);
      w.Field("split_p99_ms", split.tenants[i].p99_ms);
      w.Field("completed", shared.tenants[i].completed);
      w.Field("rejected", shared.tenants[i].rejected);
      w.EndObject();
    }
    w.EndArray();
    bench::EmbedBuildInfo(w);
    bench::EmbedMetrics(w, registry);
    bench::WriteJsonFile(json, w.Finish());
  }

  // CI gates.
  int rc = 0;
  for (std::size_t i = 0; i < num_tenants; ++i) {
    if (solo.tenants[i].completed == 0) {
      std::fprintf(stderr, "FAIL: tenant %s completed zero queries solo\n",
                   TenantId(i).c_str());
      rc = 1;
    }
    if (shared.tenants[i].completed == 0) {
      std::fprintf(stderr,
                   "FAIL: tenant %s completed zero queries under shared load "
                   "(starved)\n",
                   TenantId(i).c_str());
      rc = 1;
    }
  }
  if (rc == 0 && coldest_factor > max_p99_factor) {
    std::fprintf(stderr,
                 "FAIL: coldest tenant p99 %.2fx its solo p99 (bound %.1fx)\n",
                 coldest_factor, max_p99_factor);
    rc = 1;
  }
  if (rc == 0) {
    std::printf("OK: all %zu tenants served; coldest p99 factor %.2fx "
                "(bound %.1fx)\n",
                num_tenants, coldest_factor, max_p99_factor);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
