// bench_update: query throughput under online graph updates. Client threads
// hammer the service (as in bench_service) while a writer thread applies
// random edge-churn deltas and publishes a new snapshot every
// --swap-every-ms. The quantity under test is the epoch-based swap path
// (src/service/match_service.h): queries must keep completing in every
// inter-swap window — a window with zero completions is a service-wide
// stall, and the run exits non-zero so the CI smoke step fails.
//
//   bench_update [--sf 0.3] [--duration 3] [--clients 8] [--workers 0]
//                [--queries 0,1,2] [--swap-every-ms 200] [--churn 16]
//                [--min-swaps 10] [--json FILE]
//
// A baseline phase with no writer runs first, so the printed comparison
// shows what snapshot churn costs. Plain binary (no google-benchmark), in
// the style of bench_service.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_serve_common.h"
#include "graph/graph_delta.h"
#include "ldbc/ldbc.h"
#include "service/match_service.h"
#include "tools/flag_parser.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace fast;
using bench::ServeBenchFpgaConfig;
using service::MatchService;
using service::ServiceOptions;
using service::ServiceStats;

struct PhaseResult {
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double hit_rate = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t swaps = 0;
  std::uint64_t cache_invalidations = 0;
  bool writer_failed = false;  // a swap errored and the writer stopped early
  // Completed-query counts per inter-swap window (writer phase only).
  std::vector<std::uint64_t> window_completions;

  std::uint64_t MinWindow() const {
    return window_completions.empty()
               ? 0
               : *std::min_element(window_completions.begin(),
                                   window_completions.end());
  }
};

PhaseResult RunPhase(const Graph& graph, const std::vector<QueryGraph>& mix,
                     std::size_t workers, std::size_t clients,
                     double duration_seconds, double swap_every_ms,
                     std::size_t churn, obs::MetricsRegistry* metrics) {
  ServiceOptions options;
  options.num_workers = workers;
  options.queue_capacity = 512;
  options.plan_cache_capacity = 64;
  options.run.fpga = ServeBenchFpgaConfig();
  options.metrics = metrics;
  MatchService svc(graph, options);

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(0x5110 + c);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_relaxed)) {
        const QueryGraph& q = mix[rng.Uniform(mix.size())];
        auto id = svc.Submit(q);
        if (!id.ok()) continue;  // admission control: queue full
        svc.Wait(*id);
      }
    });
  }

  PhaseResult r;
  std::thread writer;
  std::atomic<bool> writer_failed{false};
  if (swap_every_ms > 0.0) {
    writer = std::thread([&] {
      Rng rng(0xC4A91);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t completed_at_last_swap = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Sliced sleep so a long interval doesn't delay shutdown.
        Timer interval;
        while (!stop.load(std::memory_order_relaxed) &&
               interval.ElapsedSeconds() * 1e3 < swap_every_ms) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        if (stop.load(std::memory_order_relaxed)) break;
        const GraphDelta delta =
            RandomChurnDelta(*svc.snapshot().graph, churn, rng);
        auto epoch = svc.ApplyDelta(delta);
        if (!epoch.ok()) {
          std::fprintf(stderr, "swap: %s\n", epoch.status().ToString().c_str());
          writer_failed.store(true);
          break;
        }
        const std::uint64_t completed = svc.stats().completed;
        r.window_completions.push_back(completed - completed_at_last_swap);
        completed_at_last_swap = completed;
      }
    });
  }

  while (ready.load() < clients) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  Timer wall;
  while (wall.ElapsedSeconds() < duration_seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  if (writer.joinable()) writer.join();
  const double elapsed = wall.ElapsedSeconds();

  r.writer_failed = writer_failed.load();
  const ServiceStats stats = svc.stats();
  r.qps = static_cast<double>(stats.completed) / elapsed;
  r.p50_ms = stats.latency.P50() * 1e3;
  r.p99_ms = stats.latency.P99() * 1e3;
  r.hit_rate = stats.cache.HitRate();
  r.completed = stats.completed;
  r.failed = stats.failed;
  r.swaps = stats.graph_swaps;
  r.cache_invalidations = stats.cache.invalidations;
  return r;
}

void WriteJson(const std::string& path, double sf, std::size_t clients,
               double swap_every_ms, const PhaseResult& steady,
               const PhaseResult& churned, const obs::MetricsRegistry& registry) {
  bench::JsonWriter w;
  w.Field("bench", "bench_update");
  w.Field("sf", sf);
  w.Field("clients", static_cast<std::uint64_t>(clients));
  w.Field("swap_every_ms", swap_every_ms);
  const auto phase = [&w](const char* name, const PhaseResult& r) {
    w.BeginObject(name);
    w.Field("qps", r.qps);
    w.Field("p50_ms", r.p50_ms);
    w.Field("p99_ms", r.p99_ms);
    w.Field("completed", r.completed);
    w.Field("failed", r.failed);
  };
  phase("steady", steady);
  w.EndObject();
  phase("churned", churned);
  w.Field("swaps", churned.swaps);
  w.Field("min_window_completions", churned.MinWindow());
  w.Field("cache_invalidations", churned.cache_invalidations);
  w.EndObject();
  w.Field("qps_ratio", steady.qps > 0 ? churned.qps / steady.qps : 0.0);
  bench::EmbedBuildInfo(w);
  bench::EmbedMetrics(w, registry);
  bench::WriteJsonFile(path, w.Finish());
}

int Run(int argc, char** argv) {
  auto flags = tools::FlagParser::Parse(
      argc, argv,
      {"sf", "duration", "clients", "workers", "queries", "swap-every-ms",
       "churn", "min-swaps", "json", "help"},
      /*bool_flags=*/{"help"});
  if (!flags.ok() || flags->Has("help")) {
    std::fprintf(stderr,
                 "usage: bench_update [--sf S] [--duration SEC] [--clients N]\n"
                 "                    [--workers N] [--queries I,J,...]\n"
                 "                    [--swap-every-ms MS] [--churn EDGES]\n"
                 "                    [--min-swaps N] [--json FILE]\n%s\n",
                 flags.ok() ? "" : flags.status().ToString().c_str());
    return flags.ok() ? 0 : 2;
  }
  double sf, duration, swap_every_ms;
  std::size_t clients, workers, churn, min_swaps;
  FAST_FLAG_ASSIGN_OR_USAGE(sf, flags->GetDouble("sf", 0.3));
  FAST_FLAG_ASSIGN_OR_USAGE(duration, flags->GetDouble("duration", 3.0));
  FAST_FLAG_ASSIGN_OR_USAGE(swap_every_ms, flags->GetDouble("swap-every-ms", 200.0));
  FAST_FLAG_ASSIGN_OR_USAGE(clients, flags->GetSizeT("clients", 8));
  FAST_FLAG_ASSIGN_OR_USAGE(workers, flags->GetSizeT("workers", 0));
  FAST_FLAG_ASSIGN_OR_USAGE(churn, flags->GetSizeT("churn", 16));
  FAST_FLAG_ASSIGN_OR_USAGE(min_swaps, flags->GetSizeT("min-swaps", 10));
  if (swap_every_ms <= 0.0) {
    std::fprintf(stderr, "--swap-every-ms must be > 0\n");
    return 2;
  }
  if (duration * 1e3 < swap_every_ms * static_cast<double>(min_swaps + 1)) {
    std::fprintf(stderr,
                 "--duration %.1fs cannot fit %zu swaps at --swap-every-ms %.0f\n",
                 duration, min_swaps, swap_every_ms);
    return 2;
  }

  LdbcConfig config;
  config.scale_factor = sf;
  config.seed = 42;
  auto graph = GenerateLdbcGraph(config);
  if (!graph.ok()) {
    std::fprintf(stderr, "generate: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("data: %s\n", graph->Summary().c_str());

  auto mix_or = ParseLdbcQueryMix(flags->GetString("queries", "0,1,2"));
  if (!mix_or.ok()) {
    std::fprintf(stderr, "%s\n", mix_or.status().ToString().c_str());
    return 2;
  }
  std::vector<QueryGraph> mix = std::move(*mix_or);
  if (mix.empty()) {
    std::fprintf(stderr, "--queries: no queries specified\n");
    return 2;
  }
  std::printf("mix: %zu queries, %zu clients, %.1fs per phase, swap every %.0fms "
              "(churn %zu edges)\n\n",
              mix.size(), clients, duration, swap_every_ms, churn);

  obs::MetricsRegistry registry;
  const PhaseResult steady = RunPhase(*graph, mix, workers, clients, duration,
                                      /*swap_every_ms=*/0.0, churn, &registry);
  const PhaseResult churned = RunPhase(*graph, mix, workers, clients, duration,
                                       swap_every_ms, churn, &registry);

  std::printf("%-12s %12s %10s %10s %10s %12s %8s %12s\n", "phase",
              "queries/sec", "p50 ms", "p99 ms", "hit rate", "completed",
              "swaps", "min window");
  auto row = [](const char* name, const PhaseResult& r) {
    std::printf("%-12s %12.1f %10.3f %10.3f %9.1f%% %12llu %8llu %12llu\n", name,
                r.qps, r.p50_ms, r.p99_ms, r.hit_rate * 100.0,
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.swaps),
                static_cast<unsigned long long>(r.MinWindow()));
  };
  row("steady", steady);
  row("churned", churned);
  std::printf("\nupdate cost: %.2fx queries/sec (%.1f -> %.1f), %llu cache "
              "invalidations\n",
              steady.qps > 0 ? churned.qps / steady.qps : 0.0, steady.qps,
              churned.qps,
              static_cast<unsigned long long>(churned.cache_invalidations));

  const std::string json = flags->GetString("json", "");
  if (!json.empty()) {
    WriteJson(json, sf, clients, swap_every_ms, steady, churned, registry);
  }

  // CI gate: the writer survived, enough consecutive swaps published, and
  // queries completed in every inter-swap window (no service-wide stall).
  if (churned.writer_failed) {
    std::fprintf(stderr,
                 "FAIL: snapshot writer stopped early on a swap error\n");
    return 1;
  }
  if (churned.swaps < min_swaps) {
    std::fprintf(stderr, "FAIL: only %llu swaps published (want >= %zu)\n",
                 static_cast<unsigned long long>(churned.swaps), min_swaps);
    return 1;
  }
  const auto stalled = static_cast<std::size_t>(
      std::count(churned.window_completions.begin(),
                 churned.window_completions.end(), 0u));
  if (stalled > 0) {
    std::fprintf(stderr,
                 "FAIL: %zu of %zu inter-swap windows completed zero queries\n",
                 stalled, churned.window_completions.size());
    return 1;
  }
  if (churned.failed > 0) {
    std::fprintf(stderr, "FAIL: %llu queries failed under churn\n",
                 static_cast<unsigned long long>(churned.failed));
    return 1;
  }
  std::printf("OK: %llu swaps, every window completed queries\n",
              static_cast<unsigned long long>(churned.swaps));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
