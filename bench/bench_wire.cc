// bench_wire: open-loop, multi-connection load driver for the binary wire
// protocol (src/net/). Unlike the closed-loop serving benches (bench_service,
// bench_tenancy), arrivals follow a fixed offered rate on an absolute
// timeline — a slow server does NOT slow the generator down, so queueing
// delay shows up in the latency tail instead of being hidden by coordinated
// omission.
//
//   bench_wire [--sf 0.15] [--tenants 2] [--workers 0] [--connections 4]
//              [--rate 150] [--duration 2] [--trace poisson|uniform|burst|diurnal]
//              [--burst-factor 4] [--queries 0,1,2] [--zipf-s 0]
//              [--interactive-deadline-ms 500] [--batch-deadline-ms 0]
//              [--overload-factor 25] [--overload-duration 1]
//              [--min-achieved 0.95] [--no-overload] [--json FILE]
//              [--device] [--profile-hz HZ] [--profile-out FILE]
//              [--chrome-trace FILE]
//
// --device routes partition matching through the shared simulated FPGA
// executor, so one process carries worker, net, AND device threads — the
// full-tracks case for the profiling plane below.
//
// Profiling plane (src/obs/profiler.h): --profile-hz starts the stage
// sampler; --profile-out writes the final collapsed-stack profile
// (flamegraph.pl input) and --chrome-trace the trace-event timeline
// (request spans + device rounds + sampled stages + instant events; load in
// Perfetto). With --admin-port the scraper also rotates through /profile and
// /locks, so those endpoints are exercised under load.
//
// Tenants alternate SLO classes: even tenants are "interactive" (tight
// deadline), odd tenants are "batch" (loose/no deadline); the per-class
// deadline rides the SUBMIT frame header. Two phases:
//
//   steady    offered rate --rate, shaped by --trace. Gates: achieved qps
//             >= --min-achieved x offered, zero protocol errors, zero
//             transport failures, wire spans present in >= 90% of retained
//             traces.
//   overload  offered rate x --overload-factor. Gate: the server answers
//             with PUSHBACK frames (flow control) while every connection
//             stays up — overload must degrade into protocol pushback, not
//             dropped connections.
//
// Admin plane (src/net/admin_http.h):
//   --admin-port P   start the HTTP introspection server against the router
//                    and scrape it from a background thread for the whole
//                    run (rotating /metrics, /healthz, /tenants, ...); the
//                    scrape latency histogram lands in the JSON "admin"
//                    section. Gate: every mid-run scrape answers 200.
//   --slo-ms MS      per-tenant latency objective fed to the SLO burn-rate
//                    engine; with --flight-dir DIR the overload flood must
//                    trip a breach and write EXACTLY ONE rate-limited
//                    flight-recorder dump.
//   After the phases drain, the per-tenant account table must sum exactly to
//   the global fast_account_* registry counters (the process is quiescent).
//
// Emits a --json summary (BENCH_wire.json in CI) with offered/achieved qps,
// p50/p99/p999 per SLO class (measured from *scheduled* arrival, so queue
// wait is included), rejection/timeout accounting, wire-span coverage over
// the router's retained traces, admin scrape latency, SLO/flight-recorder
// counters, the build stamp, and an embedded registry snapshot.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_serve_common.h"
#include "ldbc/ldbc.h"
#include "net/admin_http.h"
#include "net/wire_client.h"
#include "net/wire_server.h"
#include "obs/accounting.h"
#include "obs/export.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "tenant/tenant_router.h"
#include "tools/flag_parser.h"
#include "util/latency_histogram.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace fast;
using bench::ServeBenchFpgaConfig;

std::string TenantId(std::size_t i) { return "t" + std::to_string(i); }

// kFlood ignores the rate: back-to-back submission with no pacing, the
// overload phase's way of exceeding service capacity on any machine.
enum class TraceShape { kPoisson, kUniform, kBurst, kDiurnal, kFlood };

StatusOr<TraceShape> ParseTraceShape(const std::string& s) {
  if (s == "poisson") return TraceShape::kPoisson;
  if (s == "uniform") return TraceShape::kUniform;
  if (s == "burst") return TraceShape::kBurst;
  if (s == "diurnal") return TraceShape::kDiurnal;
  if (s == "flood") return TraceShape::kFlood;
  return Status::InvalidArgument("unknown --trace shape: " + s);
}

const char* TraceShapeName(TraceShape s) {
  switch (s) {
    case TraceShape::kPoisson:
      return "poisson";
    case TraceShape::kUniform:
      return "uniform";
    case TraceShape::kBurst:
      return "burst";
    case TraceShape::kDiurnal:
      return "diurnal";
    case TraceShape::kFlood:
      return "flood";
  }
  return "?";
}

// Open-loop arrival schedule on an absolute timeline. Non-constant shapes
// (burst, diurnal) are generated by thinning a Poisson stream at the peak
// rate, so the instantaneous rate follows lambda(t) exactly in expectation.
class ArrivalSchedule {
 public:
  ArrivalSchedule(TraceShape shape, double rate, double burst_factor,
                  double period_seconds, std::uint64_t seed)
      : shape_(shape),
        rate_(rate),
        factor_(std::max(1.0, burst_factor)),
        period_(std::max(1e-3, period_seconds)),
        rng_(seed) {}

  // Next arrival strictly after `t`, in seconds from phase start.
  double Next(double t) {
    switch (shape_) {
      case TraceShape::kUniform:
        return t + 1.0 / rate_;
      case TraceShape::kPoisson:
        return t + Exp(rate_);
      case TraceShape::kBurst:
      case TraceShape::kDiurnal: {
        const double peak = PeakRate();
        for (;;) {
          t += Exp(peak);
          if (rng_.UniformDouble() * peak <= Lambda(t)) return t;
        }
      }
      case TraceShape::kFlood:
        return t;  // no gap; the submit loop paces itself on wall time
    }
    return t + 1.0 / rate_;
  }

 private:
  double Exp(double rate) {
    // Inverse-CDF exponential; guard the log away from 0.
    return -std::log(1.0 - std::min(rng_.UniformDouble(), 1.0 - 1e-12)) / rate;
  }

  double PeakRate() const {
    if (shape_ == TraceShape::kBurst) {
      // Square wave, duty 0.5: high phase at 2f/(f+1) x rate, low at 2/(f+1),
      // mean exactly `rate_`.
      return rate_ * 2.0 * factor_ / (factor_ + 1.0);
    }
    // Diurnal sinusoid: lambda(t) = rate (1 + a sin), a = (f-1)/(f+1) keeps
    // peak/trough = f and the mean at `rate_`.
    return rate_ * (1.0 + (factor_ - 1.0) / (factor_ + 1.0));
  }

  double Lambda(double t) const {
    if (shape_ == TraceShape::kBurst) {
      const double phase = std::fmod(t, period_) / period_;
      const double hi = rate_ * 2.0 * factor_ / (factor_ + 1.0);
      return phase < 0.5 ? hi : hi / factor_;
    }
    const double a = (factor_ - 1.0) / (factor_ + 1.0);
    return rate_ * (1.0 + a * std::sin(2.0 * M_PI * t / period_));
  }

  const TraceShape shape_;
  const double rate_;
  const double factor_;
  const double period_;
  Rng rng_;
};

// Per-SLO-class outcome accounting for one phase. Handlers run on the client
// reader threads; counts are atomic and the histograms take a short lock.
struct ClassAccum {
  std::atomic<std::uint64_t> offered{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> deadline{0};
  std::atomic<std::uint64_t> pushback_queue{0};
  std::atomic<std::uint64_t> pushback_conn{0};
  std::atomic<std::uint64_t> error{0};
  std::atomic<std::uint64_t> transport{0};
  std::mutex mu;
  LatencyHistogram latency;  // scheduled arrival -> terminal frame, ok only
};

struct ClassReport {
  std::uint64_t offered = 0;
  std::uint64_t ok = 0;
  std::uint64_t deadline = 0;
  std::uint64_t pushback_queue = 0;
  std::uint64_t pushback_conn = 0;
  std::uint64_t error = 0;
  std::uint64_t transport = 0;
  double p50_ms = 0, p99_ms = 0, p999_ms = 0;
};

struct PhaseReport {
  std::string name;
  double offered_qps = 0;   // scheduled arrivals / generation window
  double achieved_qps = 0;  // ok completions / full phase wall (incl. drain)
  double elapsed = 0;
  ClassReport interactive;
  ClassReport batch;
  std::uint64_t undrained = 0;  // requests with no terminal frame at timeout

  std::uint64_t offered() const {
    return interactive.offered + batch.offered;
  }
  std::uint64_t ok() const { return interactive.ok + batch.ok; }
  std::uint64_t pushbacks() const {
    return interactive.pushback_queue + interactive.pushback_conn +
           batch.pushback_queue + batch.pushback_conn;
  }
  std::uint64_t transports() const {
    return interactive.transport + batch.transport;
  }
};

ClassReport ReportClass(ClassAccum& a) {
  ClassReport r;
  r.offered = a.offered.load();
  r.ok = a.ok.load();
  r.deadline = a.deadline.load();
  r.pushback_queue = a.pushback_queue.load();
  r.pushback_conn = a.pushback_conn.load();
  r.error = a.error.load();
  r.transport = a.transport.load();
  std::lock_guard<std::mutex> lock(a.mu);
  r.p50_ms = a.latency.P50() * 1e3;
  r.p99_ms = a.latency.P99() * 1e3;
  r.p999_ms = a.latency.P999() * 1e3;
  return r;
}

struct PhaseConfig {
  std::string name;
  double rate = 100;  // aggregate offered qps across all connections
  double duration = 2.0;
  TraceShape shape = TraceShape::kPoisson;
  double burst_factor = 4.0;
  double interactive_deadline_us = 0;
  double batch_deadline_us = 0;
};

// Runs one open-loop phase over the given connections. Each connection
// thread follows its own absolute-time arrival schedule at rate/N; a request
// whose scheduled slot has passed is sent immediately (never skipped), which
// is what keeps the loop open.
PhaseReport RunPhase(const PhaseConfig& cfg,
                     std::vector<std::unique_ptr<net::WireClient>>& clients,
                     const std::vector<QueryGraph>& mix,
                     const std::vector<double>& tenant_cdf) {
  const std::size_t n = clients.size();
  ClassAccum interactive, batch;
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> done{0};

  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    threads.emplace_back([&, c] {
      ArrivalSchedule schedule(cfg.shape, cfg.rate / static_cast<double>(n),
                               cfg.burst_factor,
                               cfg.shape == TraceShape::kDiurnal ? cfg.duration
                                                                 : 0.25,
                               0x3A9E + 77777u * c);
      Rng rng(0xB17E + 99991u * c);
      double t = 0.0;
      for (;;) {
        if (cfg.shape == TraceShape::kFlood) {
          // Flood: back-to-back, the arrival IS the send.
          t = wall.ElapsedSeconds();
          if (t >= cfg.duration) break;
        } else {
          t = schedule.Next(t);
          if (t >= cfg.duration) break;
          // Wait out the gap to the scheduled arrival. Short sleeps keep the
          // schedule honest to well under a millisecond without burning a
          // core.
          for (;;) {
            const double gap = t - wall.ElapsedSeconds();
            if (gap <= 0) break;
            std::this_thread::sleep_for(std::chrono::duration<double>(
                std::min(gap, 0.5e-3)));
          }
        }
        const std::size_t tenant = SampleCdf(tenant_cdf, rng);
        const bool is_interactive = tenant % 2 == 0;
        ClassAccum& accum = is_interactive ? interactive : batch;
        accum.offered.fetch_add(1, std::memory_order_relaxed);

        net::WireSubmitArgs args;
        args.tenant = TenantId(tenant);
        args.deadline_us = static_cast<std::uint64_t>(
            is_interactive ? cfg.interactive_deadline_us
                           : cfg.batch_deadline_us);
        const double scheduled = t;
        auto handler = [&accum, &done, &wall,
                        scheduled](net::WireResponse resp) {
          switch (resp.kind) {
            case net::WireResponse::Kind::kResult:
              if (resp.status.ok()) {
                accum.ok.fetch_add(1, std::memory_order_relaxed);
                const double latency = wall.ElapsedSeconds() - scheduled;
                std::lock_guard<std::mutex> lock(accum.mu);
                accum.latency.Record(std::max(0.0, latency));
              } else if (resp.status.code() == StatusCode::kDeadlineExceeded) {
                accum.deadline.fetch_add(1, std::memory_order_relaxed);
              } else {
                accum.error.fetch_add(1, std::memory_order_relaxed);
              }
              break;
            case net::WireResponse::Kind::kPushback:
              if ((resp.pushback_flags & net::kFlagConnLimit) != 0) {
                accum.pushback_conn.fetch_add(1, std::memory_order_relaxed);
              } else {
                accum.pushback_queue.fetch_add(1, std::memory_order_relaxed);
              }
              break;
            case net::WireResponse::Kind::kError:
              accum.error.fetch_add(1, std::memory_order_relaxed);
              break;
            case net::WireResponse::Kind::kTransport:
              accum.transport.fetch_add(1, std::memory_order_relaxed);
              break;
          }
          done.fetch_add(1, std::memory_order_relaxed);
        };
        auto id = clients[c]->SubmitAsync(mix[rng.Uniform(mix.size())],
                                          std::move(args), std::move(handler));
        if (!id.ok()) {
          // Send failed — the handler was deregistered, account it here.
          accum.transport.fetch_add(1, std::memory_order_relaxed);
          done.fetch_add(1, std::memory_order_relaxed);
        }
        sent.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  const double generation_window = cfg.duration;

  // Drain: every submitted request gets exactly one terminal signal; bound
  // the wait so a lost frame can't hang the bench.
  Timer drain;
  while (done.load() < sent.load() && drain.ElapsedSeconds() < 30.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  PhaseReport report;
  report.name = cfg.name;
  report.elapsed = wall.ElapsedSeconds();
  report.undrained = sent.load() - done.load();
  report.interactive = ReportClass(interactive);
  report.batch = ReportClass(batch);
  report.offered_qps =
      static_cast<double>(report.offered()) / generation_window;
  report.achieved_qps = static_cast<double>(report.ok()) / report.elapsed;
  return report;
}

void PrintClass(const char* name, const ClassReport& r) {
  std::printf(
      "  %-12s offered=%-7llu ok=%-7llu p50=%.2fms p99=%.2fms p999=%.2fms "
      "deadline=%llu pushback=%llu+%llu error=%llu transport=%llu\n",
      name, static_cast<unsigned long long>(r.offered),
      static_cast<unsigned long long>(r.ok), r.p50_ms, r.p99_ms, r.p999_ms,
      static_cast<unsigned long long>(r.deadline),
      static_cast<unsigned long long>(r.pushback_queue),
      static_cast<unsigned long long>(r.pushback_conn),
      static_cast<unsigned long long>(r.error),
      static_cast<unsigned long long>(r.transport));
}

void JsonClass(bench::JsonWriter& w, const char* key, const ClassReport& r) {
  w.BeginObject(key);
  w.Field("offered", r.offered);
  w.Field("ok", r.ok);
  w.Field("deadline_exceeded", r.deadline);
  w.Field("pushback_queue", r.pushback_queue);
  w.Field("pushback_conn", r.pushback_conn);
  w.Field("error", r.error);
  w.Field("transport", r.transport);
  w.Field("p50_ms", r.p50_ms);
  w.Field("p99_ms", r.p99_ms);
  w.Field("p999_ms", r.p999_ms);
  w.EndObject();
}

void JsonPhase(bench::JsonWriter& w, const PhaseReport& r) {
  w.BeginObject();
  w.Field("name", r.name);
  w.Field("offered_qps", r.offered_qps);
  w.Field("achieved_qps", r.achieved_qps);
  w.Field("elapsed_s", r.elapsed);
  w.Field("undrained", r.undrained);
  JsonClass(w, "interactive", r.interactive);
  JsonClass(w, "batch", r.batch);
  w.EndObject();
}

int Run(int argc, char** argv) {
  auto flags = tools::FlagParser::Parse(
      argc, argv,
      {"sf", "tenants", "workers", "connections", "rate", "duration", "trace",
       "burst-factor", "queries", "zipf-s", "interactive-deadline-ms",
       "batch-deadline-ms", "overload-duration", "min-achieved", "no-overload",
       "admin-port", "slo-ms", "flight-dir", "json", "device", "profile-hz",
       "profile-out", "chrome-trace", "help"},
      /*bool_flags=*/{"no-overload", "device", "help"});
  if (!flags.ok() || flags->Has("help")) {
    std::fprintf(
        stderr,
        "usage: bench_wire [--sf S] [--tenants N] [--workers N]\n"
        "                  [--connections N] [--rate QPS] [--duration SEC]\n"
        "                  [--trace poisson|uniform|burst|diurnal|flood]\n"
        "                  [--burst-factor F] [--queries I,J,...] [--zipf-s S]\n"
        "                  [--interactive-deadline-ms MS]\n"
        "                  [--batch-deadline-ms MS]\n"
        "                  [--overload-duration SEC] [--min-achieved R]\n"
        "                  [--no-overload] [--admin-port P] [--slo-ms MS]\n"
        "                  [--flight-dir DIR] [--json FILE] [--device]\n"
        "                  [--profile-hz HZ] [--profile-out FILE]\n"
        "                  [--chrome-trace FILE]\n%s\n",
        flags.ok() ? "" : flags.status().ToString().c_str());
    return flags.ok() ? 0 : 2;
  }
  double sf, rate, duration, burst_factor, zipf_s, interactive_ms, batch_ms,
      overload_duration, min_achieved;
  std::size_t tenants, workers, connections;
  FAST_FLAG_ASSIGN_OR_USAGE(sf, flags->GetDouble("sf", 0.15));
  FAST_FLAG_ASSIGN_OR_USAGE(rate, flags->GetDouble("rate", 150.0));
  FAST_FLAG_ASSIGN_OR_USAGE(duration, flags->GetDouble("duration", 2.0));
  FAST_FLAG_ASSIGN_OR_USAGE(burst_factor, flags->GetDouble("burst-factor", 4.0));
  FAST_FLAG_ASSIGN_OR_USAGE(zipf_s, flags->GetDouble("zipf-s", 0.0));
  FAST_FLAG_ASSIGN_OR_USAGE(interactive_ms,
                            flags->GetDouble("interactive-deadline-ms", 500.0));
  FAST_FLAG_ASSIGN_OR_USAGE(batch_ms, flags->GetDouble("batch-deadline-ms", 0.0));
  FAST_FLAG_ASSIGN_OR_USAGE(overload_duration,
                            flags->GetDouble("overload-duration", 1.0));
  FAST_FLAG_ASSIGN_OR_USAGE(min_achieved, flags->GetDouble("min-achieved", 0.95));
  FAST_FLAG_ASSIGN_OR_USAGE(tenants, flags->GetSizeT("tenants", 2));
  FAST_FLAG_ASSIGN_OR_USAGE(workers, flags->GetSizeT("workers", 0));
  FAST_FLAG_ASSIGN_OR_USAGE(connections, flags->GetSizeT("connections", 4));
  std::size_t admin_port;
  double slo_ms;
  FAST_FLAG_ASSIGN_OR_USAGE(admin_port, flags->GetSizeT("admin-port", 0));
  FAST_FLAG_ASSIGN_OR_USAGE(slo_ms, flags->GetDouble("slo-ms", 0.0));
  const std::string flight_dir = flags->GetString("flight-dir", "");
  double profile_hz;
  FAST_FLAG_ASSIGN_OR_USAGE(profile_hz, flags->GetDouble("profile-hz", 0.0));
  const std::string profile_out = flags->GetString("profile-out", "");
  const std::string chrome_trace = flags->GetString("chrome-trace", "");
  if (tenants == 0 || connections == 0 || rate <= 0) {
    std::fprintf(stderr, "--tenants/--connections/--rate must be > 0\n");
    return 2;
  }
  if (admin_port > 65535) {
    std::fprintf(stderr, "--admin-port: %zu is not a TCP port\n", admin_port);
    return 2;
  }
  if (!flight_dir.empty() && slo_ms <= 0.0) {
    std::fprintf(stderr, "--flight-dir needs --slo-ms (breaches trigger the "
                         "dumps)\n");
    return 2;
  }
  auto shape = ParseTraceShape(flags->GetString("trace", "poisson"));
  if (!shape.ok()) {
    std::fprintf(stderr, "%s\n", shape.status().ToString().c_str());
    return 2;
  }
  auto mix_or = ParseLdbcQueryMix(flags->GetString("queries", "0,1,2"));
  if (!mix_or.ok() || mix_or->empty()) {
    std::fprintf(stderr, "--queries: %s\n",
                 mix_or.ok() ? "no queries specified"
                             : mix_or.status().ToString().c_str());
    return 2;
  }
  const std::vector<QueryGraph> mix = std::move(*mix_or);

  // --- Server: TenantRouter behind a WireServer on a loopback port. ---
  std::vector<Graph> graphs;
  for (std::size_t i = 0; i < tenants; ++i) {
    LdbcConfig config;
    config.scale_factor = sf;
    config.seed = 42 + i;
    auto g = GenerateLdbcGraph(config);
    if (!g.ok()) {
      std::fprintf(stderr, "generate: %s\n", g.status().ToString().c_str());
      return 1;
    }
    graphs.push_back(std::move(*g));
  }
  std::printf("data: %zu tenants at sf=%g, e.g. %s\n", tenants, sf,
              graphs[0].Summary().c_str());

  obs::MetricsRegistry registry;
  // The profiler reports into `registry` and must stop before it is
  // destroyed, on every return path below.
  struct ProfilerStopper {
    ~ProfilerStopper() { obs::Profiler::Default()->Stop(); }
  } profiler_stopper;
  if (profile_hz > 0.0) {
    obs::Profiler::Default()->BindMetrics(&registry);
    obs::Profiler::Default()->Start(profile_hz);
    std::printf("profile: sampling at %.0f Hz\n",
                obs::Profiler::Default()->hz());
  }
  tenant::RouterOptions ropts;
  ropts.num_workers = workers;
  ropts.queue_capacity = 256;
  ropts.run.fpga = ServeBenchFpgaConfig();
  ropts.metrics = &registry;
  ropts.tracing = true;
  ropts.device_mode = flags->Has("device");
  ropts.slo.latency_objective_seconds = slo_ms / 1e3;
  ropts.flight.dir = flight_dir;
  tenant::TenantRouter router(ropts);
  for (std::size_t i = 0; i < tenants; ++i) {
    tenant::TenantOptions topts;
    topts.plan_cache_capacity = 64;
    FAST_CHECK_OK(router.AddTenant(TenantId(i), std::move(graphs[i]), topts));
  }

  net::WireServerOptions wopts;
  wopts.metrics = &registry;
  wopts.max_inflight_per_conn = 1024;  // let the admission queue push back first
  net::WireServer server(&router, wopts);
  if (const Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wire: serving %zu tenants on 127.0.0.1:%u, %zu workers, "
              "queue=%zu%s\n",
              tenants, server.port(), router.num_workers(),
              ropts.queue_capacity,
              ropts.device_mode ? ", shared device executor" : "");

  std::vector<std::unique_ptr<net::WireClient>> clients;
  for (std::size_t c = 0; c < connections; ++c) {
    auto client = net::WireClient::Connect("127.0.0.1", server.port());
    if (!client.ok()) {
      std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
      return 1;
    }
    clients.push_back(std::move(*client));
  }

  const std::vector<double> tenant_cdf = ZipfCdf(tenants, zipf_s);
  std::printf("load: %zu connections, %s arrivals, %g offered qps, "
              "interactive ddl=%gms batch ddl=%gms\n\n",
              connections, TraceShapeName(*shape), rate, interactive_ms,
              batch_ms);

  // --- Admin plane: HTTP server against the router plus a background
  // scraper that keeps hitting it for the whole run, so the scrape path is
  // measured UNDER load, concurrent with itself and with serving. ---
  std::unique_ptr<net::AdminHttpServer> admin;
  std::thread scraper;
  std::atomic<bool> scrape_stop{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::atomic<std::uint64_t> scrape_errors{0};
  std::mutex scrape_mu;
  LatencyHistogram scrape_latency;
  if (flags->Has("admin-port")) {
    net::AdminHttpOptions aopts;
    aopts.port = static_cast<std::uint16_t>(admin_port);
    admin = std::make_unique<net::AdminHttpServer>(aopts);
    net::AdminEndpointsOptions eopts;
    eopts.metrics = &registry;
    eopts.request_obs = router.request_obs();
    eopts.ready = [&router] { return router.ready(); };
    eopts.queue_depth = [&router] { return router.queue_depth(); };
    eopts.profiler = obs::Profiler::Default();
    eopts.device_rounds = [&router] { return router.device_rounds(); };
    net::RegisterAdminEndpoints(*admin, std::move(eopts));
    if (const Status s = admin->Start(); !s.ok()) {
      std::fprintf(stderr, "admin: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("admin: http on 127.0.0.1:%u, scraping throughout the run\n",
                admin->port());
    scraper = std::thread([&] {
      static const char* kPaths[] = {"/metrics", "/healthz", "/tenants",
                                     "/metrics.json", "/slo", "/varz",
                                     "/profile", "/locks"};
      std::size_t i = 0;
      while (!scrape_stop.load(std::memory_order_relaxed)) {
        const char* path = kPaths[i++ % (sizeof(kPaths) / sizeof(kPaths[0]))];
        Timer t;
        auto resp = net::HttpGet("127.0.0.1", admin->port(), path);
        const double seconds = t.ElapsedSeconds();
        if (!resp.ok() || resp->status != 200) {
          scrape_errors.fetch_add(1, std::memory_order_relaxed);
        } else {
          scrapes.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(scrape_mu);
          scrape_latency.Record(seconds);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }

  // Warmup: prime the plan caches and the connections, results discarded.
  {
    PhaseConfig warm;
    warm.name = "warmup";
    warm.rate = std::max(10.0, rate / 4.0);
    warm.duration = 0.3;
    warm.shape = TraceShape::kUniform;
    RunPhase(warm, clients, mix, tenant_cdf);
  }

  PhaseConfig steady;
  steady.name = "steady";
  steady.rate = rate;
  steady.duration = duration;
  steady.shape = *shape;
  steady.burst_factor = burst_factor;
  steady.interactive_deadline_us = interactive_ms * 1e3;
  steady.batch_deadline_us = batch_ms * 1e3;
  const PhaseReport steady_report = RunPhase(steady, clients, mix, tenant_cdf);

  std::printf("phase %s: offered %.1f qps, achieved %.1f qps (%.3fx)\n",
              steady_report.name.c_str(), steady_report.offered_qps,
              steady_report.achieved_qps,
              steady_report.offered_qps > 0
                  ? steady_report.achieved_qps / steady_report.offered_qps
                  : 0.0);
  PrintClass("interactive", steady_report.interactive);
  PrintClass("batch", steady_report.batch);

  PhaseReport overload_report;
  const bool run_overload = !flags->Has("no-overload");
  if (run_overload) {
    PhaseConfig overload;
    overload.name = "overload";
    overload.rate = rate;  // ignored: flood has no pacing
    overload.duration = overload_duration;
    overload.shape = TraceShape::kFlood;
    overload.interactive_deadline_us = interactive_ms * 1e3;
    overload.batch_deadline_us = batch_ms * 1e3;
    overload_report = RunPhase(overload, clients, mix, tenant_cdf);
    std::printf("phase %s: offered %.1f qps, achieved %.1f qps, "
                "pushbacks=%llu\n",
                overload_report.name.c_str(), overload_report.offered_qps,
                overload_report.achieved_qps,
                static_cast<unsigned long long>(overload_report.pushbacks()));
    PrintClass("interactive", overload_report.interactive);
    PrintClass("batch", overload_report.batch);
  }

  // Stop the scraper only after every phase: the whole measured window ran
  // with concurrent scrapes.
  double scrape_p50_ms = 0.0, scrape_p99_ms = 0.0;
  if (scraper.joinable()) {
    scrape_stop.store(true);
    scraper.join();
    {
      std::lock_guard<std::mutex> lock(scrape_mu);
      scrape_p50_ms = scrape_latency.P50() * 1e3;
      scrape_p99_ms = scrape_latency.P99() * 1e3;
    }
    std::printf("admin: %llu scrapes under load, p50=%.2fms p99=%.2fms, "
                "errors=%llu\n",
                static_cast<unsigned long long>(scrapes.load()), scrape_p50_ms,
                scrape_p99_ms,
                static_cast<unsigned long long>(scrape_errors.load()));
  }

  // --- Quiescent accounting consistency: every request drained, so the
  // per-tenant account table must sum EXACTLY to the global fast_account_*
  // counters (both are bumped in the same Charge call). ---
  const obs::RequestObs* router_obs = router.request_obs();
  const std::vector<obs::AccountSnapshot> accounts =
      router_obs->accounts().Snapshot();
  obs::AccountSnapshot account_sums;
  for (const obs::AccountSnapshot& a : accounts) {
    account_sums.requests += a.requests;
    account_sums.errors += a.errors;
    account_sums.cpu_ns += a.cpu_ns;
    account_sums.device_kernel_ns += a.device_kernel_ns;
    account_sums.dma_bytes += a.dma_bytes;
    account_sums.queue_wait_ns += a.queue_wait_ns;
    account_sums.plan_cache_bytes += a.plan_cache_bytes;
  }
  const obs::MetricsSnapshot final_snap = registry.Snapshot();
  auto counter_value = [&final_snap](const std::string& name) -> std::uint64_t {
    for (const auto& c : final_snap.counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  };
  bool accounts_consistent = true;
  const std::pair<const char*, std::uint64_t> account_checks[] = {
      {"fast_account_requests_total", account_sums.requests},
      {"fast_account_errors_total", account_sums.errors},
      {"fast_account_cpu_ns_total", account_sums.cpu_ns},
      {"fast_account_device_kernel_ns_total", account_sums.device_kernel_ns},
      {"fast_account_dma_bytes_total", account_sums.dma_bytes},
      {"fast_account_queue_wait_ns_total", account_sums.queue_wait_ns},
      {"fast_account_plan_cache_bytes_total", account_sums.plan_cache_bytes},
  };
  for (const auto& [name, sum] : account_checks) {
    const std::uint64_t global = counter_value(name);
    if (global != sum) {
      std::fprintf(stderr,
                   "accounting mismatch: %s=%llu but per-tenant sum=%llu\n",
                   name, static_cast<unsigned long long>(global),
                   static_cast<unsigned long long>(sum));
      accounts_consistent = false;
    }
  }
  std::printf("accounts: %zu tenants, %llu requests, cpu=%.1fms "
              "kernel=%.1fms dma=%.1fKiB (per-tenant sums %s globals)\n",
              accounts.size(),
              static_cast<unsigned long long>(account_sums.requests),
              static_cast<double>(account_sums.cpu_ns) / 1e6,
              static_cast<double>(account_sums.device_kernel_ns) / 1e6,
              static_cast<double>(account_sums.dma_bytes) / 1024.0,
              accounts_consistent ? "==" : "!=");

  // --- Wire-span coverage over the router's retained traces: every request
  // arrived over the wire, so recv+decode must appear, and the wall spans
  // must explain the bulk of each request's end-to-end time. ---
  const auto traces = router.recent_traces();
  std::uint64_t with_wire_spans = 0;
  double coverage_sum = 0.0;
  std::uint64_t covered = 0;
  for (const auto& t : traces) {
    bool has_recv = false, has_decode = false;
    for (const auto& s : t->spans) {
      has_recv |= s.span == obs::Span::kRecv;
      has_decode |= s.span == obs::Span::kDecode;
    }
    if (has_recv && has_decode) ++with_wire_spans;
    if (t->ok && t->total_seconds > 0.0) {
      coverage_sum += t->Coverage();
      ++covered;
    }
  }
  const double wire_span_fraction =
      traces.empty() ? 0.0
                     : static_cast<double>(with_wire_spans) /
                           static_cast<double>(traces.size());
  const double mean_coverage = covered > 0 ? coverage_sum / covered : 0.0;
  const auto server_stats = server.stats();
  std::printf("\nwire: frames rx=%llu tx=%llu, pushback queue=%llu conn=%llu, "
              "protocol_errors=%llu\n",
              static_cast<unsigned long long>(server_stats.frames_received),
              static_cast<unsigned long long>(server_stats.frames_sent),
              static_cast<unsigned long long>(server_stats.pushback_queue),
              static_cast<unsigned long long>(server_stats.pushback_conn),
              static_cast<unsigned long long>(server_stats.protocol_errors));
  std::printf("traces: %zu retained, %.1f%% lead with recv span, mean wall "
              "coverage %.3f\n",
              traces.size(), wire_span_fraction * 100.0, mean_coverage);

  // --- Profiling-plane outputs: the collapsed-stack profile and the
  // trace-event timeline over everything this process just did. ---
  if (!profile_out.empty()) {
    bench::WriteJsonFile(
        profile_out, obs::CollapsedStacks(obs::Profiler::Default()->Snapshot()));
    std::printf("profile: wrote %s\n", profile_out.c_str());
  }
  if (!chrome_trace.empty()) {
    obs::ChromeTraceInputs in;
    in.process_name = "bench_wire";
    in.traces = traces;
    const obs::ProfileSnapshot prof_snap = obs::Profiler::Default()->Snapshot();
    in.threads = prof_snap.threads;
    in.stage_samples = obs::Profiler::Default()->TimelineSnapshot();
    in.sample_period_seconds =
        prof_snap.hz > 0.0 ? 1.0 / prof_snap.hz : 0.0;
    in.rounds = router.device_rounds();
    in.instants = router_obs->recent_events();
    bench::WriteJsonFile(chrome_trace, obs::ChromeTraceJson(in));
    std::printf("timeline: wrote %s (%zu traces, %zu stage samples, "
                "%zu rounds, %zu instants)\n",
                chrome_trace.c_str(), in.traces.size(), in.stage_samples.size(),
                in.rounds.size(), in.instants.size());
  }

  const std::string json = flags->GetString("json", "");
  if (!json.empty()) {
    bench::JsonWriter w;
    w.Field("bench", "bench_wire");
    w.Field("sf", sf);
    w.Field("tenants", static_cast<std::uint64_t>(tenants));
    w.Field("connections", static_cast<std::uint64_t>(connections));
    w.Field("trace", TraceShapeName(*shape));
    w.Field("burst_factor", burst_factor);
    w.Field("rate_qps", rate);
    w.Field("duration_s", duration);
    w.Field("interactive_deadline_ms", interactive_ms);
    w.Field("batch_deadline_ms", batch_ms);
    w.BeginArray("phases");
    JsonPhase(w, steady_report);
    if (run_overload) JsonPhase(w, overload_report);
    w.EndArray();
    w.BeginObject("wire");
    w.Field("frames_received", server_stats.frames_received);
    w.Field("frames_sent", server_stats.frames_sent);
    w.Field("submits", server_stats.submits);
    w.Field("pushback_queue", server_stats.pushback_queue);
    w.Field("pushback_conn", server_stats.pushback_conn);
    w.Field("errors_sent", server_stats.errors_sent);
    w.Field("protocol_errors", server_stats.protocol_errors);
    w.Field("connections_accepted", server_stats.connections_accepted);
    w.EndObject();
    w.BeginObject("trace_summary");
    w.Field("retained", static_cast<std::uint64_t>(traces.size()));
    w.Field("wire_span_fraction", wire_span_fraction);
    w.Field("mean_coverage", mean_coverage);
    w.EndObject();
    if (admin != nullptr) {
      const auto astats = admin->stats();
      w.BeginObject("admin");
      w.Field("scrapes", scrapes.load());
      w.Field("scrape_errors", scrape_errors.load());
      w.Field("scrape_p50_ms", scrape_p50_ms);
      w.Field("scrape_p99_ms", scrape_p99_ms);
      w.Field("requests_served", astats.requests_served);
      w.Field("not_found", astats.not_found);
      w.EndObject();
    }
    if (const obs::SloEngine* slo = router_obs->slo(); slo != nullptr) {
      w.BeginObject("slo");
      w.Field("latency_objective_ms",
              slo->options().latency_objective_seconds * 1e3);
      w.Field("target", slo->options().target);
      w.Field("breaches", slo->total_breaches());
      const obs::FlightRecorder* fr = router_obs->flight_recorder();
      w.Field("dumps_written",
              fr != nullptr ? fr->dumps_written() : std::uint64_t{0});
      w.Field("dumps_suppressed",
              fr != nullptr ? fr->dumps_suppressed() : std::uint64_t{0});
      w.EndObject();
    }
    obs::WriteAccountsJson(w, accounts);
    bench::EmbedBuildInfo(w);
    bench::EmbedMetrics(w, registry);
    bench::WriteJsonFile(json, w.Finish());
  }

  for (auto& c : clients) c->Close();
  if (admin != nullptr) admin->Shutdown();
  server.Shutdown();
  router.Shutdown();

  // --- CI gates. ---
  int rc = 0;
  const double achieved_ratio =
      steady_report.offered_qps > 0
          ? steady_report.achieved_qps / steady_report.offered_qps
          : 0.0;
  if (achieved_ratio < min_achieved) {
    std::fprintf(stderr,
                 "FAIL: steady achieved %.1f qps < %.2f x offered %.1f qps\n",
                 steady_report.achieved_qps, min_achieved,
                 steady_report.offered_qps);
    rc = 1;
  }
  if (server_stats.protocol_errors != 0) {
    std::fprintf(stderr, "FAIL: %llu protocol errors on the server\n",
                 static_cast<unsigned long long>(server_stats.protocol_errors));
    rc = 1;
  }
  const std::uint64_t transports =
      steady_report.transports() + overload_report.transports();
  if (transports != 0 || steady_report.undrained != 0 ||
      overload_report.undrained != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu transport failures, %llu undrained requests "
                 "(connections must survive)\n",
                 static_cast<unsigned long long>(transports),
                 static_cast<unsigned long long>(steady_report.undrained +
                                                 overload_report.undrained));
    rc = 1;
  }
  if (wire_span_fraction < 0.9) {
    std::fprintf(stderr,
                 "FAIL: only %.1f%% of retained traces carry wire spans "
                 "(want >= 90%%)\n",
                 wire_span_fraction * 100.0);
    rc = 1;
  }
  if (run_overload && overload_report.pushbacks() == 0) {
    std::fprintf(stderr,
                 "FAIL: overload at %.0f qps produced no PUSHBACK frames — "
                 "flow control never engaged\n",
                 overload_report.offered_qps);
    rc = 1;
  }
  if (!accounts_consistent) {
    std::fprintf(stderr, "FAIL: quiescent per-tenant account sums diverge "
                         "from the global fast_account_* counters\n");
    rc = 1;
  }
  if (admin != nullptr && (scrapes.load() == 0 || scrape_errors.load() != 0)) {
    std::fprintf(stderr,
                 "FAIL: admin scrapes under load: %llu ok, %llu errors "
                 "(want >0 ok, 0 errors)\n",
                 static_cast<unsigned long long>(scrapes.load()),
                 static_cast<unsigned long long>(scrape_errors.load()));
    rc = 1;
  }
  if (!flight_dir.empty()) {
    // The flood phase against a tight objective must trip the SLO engine,
    // and the rate limiter must hold the recorder to EXACTLY one dump.
    const obs::SloEngine* slo = router_obs->slo();
    const obs::FlightRecorder* fr = router_obs->flight_recorder();
    const std::uint64_t breaches = slo != nullptr ? slo->total_breaches() : 0;
    const std::uint64_t dumps = fr != nullptr ? fr->dumps_written() : 0;
    if (breaches == 0 || dumps != 1) {
      std::fprintf(stderr,
                   "FAIL: SLO breach drill: %llu breaches, %llu flight dumps "
                   "(want >=1 breach and exactly 1 rate-limited dump)\n",
                   static_cast<unsigned long long>(breaches),
                   static_cast<unsigned long long>(dumps));
      rc = 1;
    } else {
      std::printf("slo: %llu breach(es), 1 flight-recorder dump at %s\n",
                  static_cast<unsigned long long>(breaches),
                  fr->dump_paths().front().c_str());
    }
  }
  if (rc == 0) {
    std::printf("\nOK: achieved %.3fx offered below saturation, %llu pushbacks "
                "under overload, zero protocol errors, wire spans on %.1f%% "
                "of traces\n",
                achieved_ratio,
                static_cast<unsigned long long>(overload_report.pushbacks()),
                wire_span_fraction * 100.0);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
