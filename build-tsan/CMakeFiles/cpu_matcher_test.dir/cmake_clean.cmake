file(REMOVE_RECURSE
  "CMakeFiles/cpu_matcher_test.dir/tests/cpu_matcher_test.cc.o"
  "CMakeFiles/cpu_matcher_test.dir/tests/cpu_matcher_test.cc.o.d"
  "cpu_matcher_test"
  "cpu_matcher_test.pdb"
  "cpu_matcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
