# Empty compiler generated dependencies file for cpu_matcher_test.
# This may be replaced when dependencies are built.
