file(REMOVE_RECURSE
  "CMakeFiles/cst_serialize_test.dir/tests/cst_serialize_test.cc.o"
  "CMakeFiles/cst_serialize_test.dir/tests/cst_serialize_test.cc.o.d"
  "cst_serialize_test"
  "cst_serialize_test.pdb"
  "cst_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cst_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
