# Empty compiler generated dependencies file for cst_serialize_test.
# This may be replaced when dependencies are built.
