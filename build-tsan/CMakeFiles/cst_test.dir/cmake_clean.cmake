file(REMOVE_RECURSE
  "CMakeFiles/cst_test.dir/tests/cst_test.cc.o"
  "CMakeFiles/cst_test.dir/tests/cst_test.cc.o.d"
  "cst_test"
  "cst_test.pdb"
  "cst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
