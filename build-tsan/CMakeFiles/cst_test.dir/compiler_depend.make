# Empty compiler generated dependencies file for cst_test.
# This may be replaced when dependencies are built.
