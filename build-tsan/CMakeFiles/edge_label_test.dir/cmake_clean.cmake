file(REMOVE_RECURSE
  "CMakeFiles/edge_label_test.dir/tests/edge_label_test.cc.o"
  "CMakeFiles/edge_label_test.dir/tests/edge_label_test.cc.o.d"
  "edge_label_test"
  "edge_label_test.pdb"
  "edge_label_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_label_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
