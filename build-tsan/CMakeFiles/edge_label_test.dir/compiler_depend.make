# Empty compiler generated dependencies file for edge_label_test.
# This may be replaced when dependencies are built.
