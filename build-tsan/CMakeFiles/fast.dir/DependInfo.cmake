
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/backtracking.cc" "CMakeFiles/fast.dir/src/baseline/backtracking.cc.o" "gcc" "CMakeFiles/fast.dir/src/baseline/backtracking.cc.o.d"
  "/root/repo/src/baseline/baseline.cc" "CMakeFiles/fast.dir/src/baseline/baseline.cc.o" "gcc" "CMakeFiles/fast.dir/src/baseline/baseline.cc.o.d"
  "/root/repo/src/baseline/join.cc" "CMakeFiles/fast.dir/src/baseline/join.cc.o" "gcc" "CMakeFiles/fast.dir/src/baseline/join.cc.o.d"
  "/root/repo/src/core/cpu_matcher.cc" "CMakeFiles/fast.dir/src/core/cpu_matcher.cc.o" "gcc" "CMakeFiles/fast.dir/src/core/cpu_matcher.cc.o.d"
  "/root/repo/src/core/driver.cc" "CMakeFiles/fast.dir/src/core/driver.cc.o" "gcc" "CMakeFiles/fast.dir/src/core/driver.cc.o.d"
  "/root/repo/src/core/explain.cc" "CMakeFiles/fast.dir/src/core/explain.cc.o" "gcc" "CMakeFiles/fast.dir/src/core/explain.cc.o.d"
  "/root/repo/src/core/kernel.cc" "CMakeFiles/fast.dir/src/core/kernel.cc.o" "gcc" "CMakeFiles/fast.dir/src/core/kernel.cc.o.d"
  "/root/repo/src/cst/cst.cc" "CMakeFiles/fast.dir/src/cst/cst.cc.o" "gcc" "CMakeFiles/fast.dir/src/cst/cst.cc.o.d"
  "/root/repo/src/cst/cst_serialize.cc" "CMakeFiles/fast.dir/src/cst/cst_serialize.cc.o" "gcc" "CMakeFiles/fast.dir/src/cst/cst_serialize.cc.o.d"
  "/root/repo/src/cst/partition.cc" "CMakeFiles/fast.dir/src/cst/partition.cc.o" "gcc" "CMakeFiles/fast.dir/src/cst/partition.cc.o.d"
  "/root/repo/src/cst/workload.cc" "CMakeFiles/fast.dir/src/cst/workload.cc.o" "gcc" "CMakeFiles/fast.dir/src/cst/workload.cc.o.d"
  "/root/repo/src/fpga/config.cc" "CMakeFiles/fast.dir/src/fpga/config.cc.o" "gcc" "CMakeFiles/fast.dir/src/fpga/config.cc.o.d"
  "/root/repo/src/fpga/cycle_model.cc" "CMakeFiles/fast.dir/src/fpga/cycle_model.cc.o" "gcc" "CMakeFiles/fast.dir/src/fpga/cycle_model.cc.o.d"
  "/root/repo/src/fpga/pipeline_sim.cc" "CMakeFiles/fast.dir/src/fpga/pipeline_sim.cc.o" "gcc" "CMakeFiles/fast.dir/src/fpga/pipeline_sim.cc.o.d"
  "/root/repo/src/graph/generators.cc" "CMakeFiles/fast.dir/src/graph/generators.cc.o" "gcc" "CMakeFiles/fast.dir/src/graph/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "CMakeFiles/fast.dir/src/graph/graph.cc.o" "gcc" "CMakeFiles/fast.dir/src/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "CMakeFiles/fast.dir/src/graph/graph_io.cc.o" "gcc" "CMakeFiles/fast.dir/src/graph/graph_io.cc.o.d"
  "/root/repo/src/ldbc/ldbc.cc" "CMakeFiles/fast.dir/src/ldbc/ldbc.cc.o" "gcc" "CMakeFiles/fast.dir/src/ldbc/ldbc.cc.o.d"
  "/root/repo/src/query/matching_order.cc" "CMakeFiles/fast.dir/src/query/matching_order.cc.o" "gcc" "CMakeFiles/fast.dir/src/query/matching_order.cc.o.d"
  "/root/repo/src/query/pattern.cc" "CMakeFiles/fast.dir/src/query/pattern.cc.o" "gcc" "CMakeFiles/fast.dir/src/query/pattern.cc.o.d"
  "/root/repo/src/query/query_graph.cc" "CMakeFiles/fast.dir/src/query/query_graph.cc.o" "gcc" "CMakeFiles/fast.dir/src/query/query_graph.cc.o.d"
  "/root/repo/src/service/match_service.cc" "CMakeFiles/fast.dir/src/service/match_service.cc.o" "gcc" "CMakeFiles/fast.dir/src/service/match_service.cc.o.d"
  "/root/repo/src/service/plan_cache.cc" "CMakeFiles/fast.dir/src/service/plan_cache.cc.o" "gcc" "CMakeFiles/fast.dir/src/service/plan_cache.cc.o.d"
  "/root/repo/src/service/query_signature.cc" "CMakeFiles/fast.dir/src/service/query_signature.cc.o" "gcc" "CMakeFiles/fast.dir/src/service/query_signature.cc.o.d"
  "/root/repo/src/util/latency_histogram.cc" "CMakeFiles/fast.dir/src/util/latency_histogram.cc.o" "gcc" "CMakeFiles/fast.dir/src/util/latency_histogram.cc.o.d"
  "/root/repo/src/util/logging.cc" "CMakeFiles/fast.dir/src/util/logging.cc.o" "gcc" "CMakeFiles/fast.dir/src/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "CMakeFiles/fast.dir/src/util/rng.cc.o" "gcc" "CMakeFiles/fast.dir/src/util/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "CMakeFiles/fast.dir/src/util/stats.cc.o" "gcc" "CMakeFiles/fast.dir/src/util/stats.cc.o.d"
  "/root/repo/src/util/status.cc" "CMakeFiles/fast.dir/src/util/status.cc.o" "gcc" "CMakeFiles/fast.dir/src/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
