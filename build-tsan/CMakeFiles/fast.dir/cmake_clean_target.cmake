file(REMOVE_RECURSE
  "libfast.a"
)
