# Empty dependencies file for fast.
# This may be replaced when dependencies are built.
