file(REMOVE_RECURSE
  "CMakeFiles/fpga_model_test.dir/tests/fpga_model_test.cc.o"
  "CMakeFiles/fpga_model_test.dir/tests/fpga_model_test.cc.o.d"
  "fpga_model_test"
  "fpga_model_test.pdb"
  "fpga_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
