# Empty compiler generated dependencies file for fpga_model_test.
# This may be replaced when dependencies are built.
