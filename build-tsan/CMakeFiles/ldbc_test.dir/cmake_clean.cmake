file(REMOVE_RECURSE
  "CMakeFiles/ldbc_test.dir/tests/ldbc_test.cc.o"
  "CMakeFiles/ldbc_test.dir/tests/ldbc_test.cc.o.d"
  "ldbc_test"
  "ldbc_test.pdb"
  "ldbc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldbc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
