file(REMOVE_RECURSE
  "CMakeFiles/matching_order_test.dir/tests/matching_order_test.cc.o"
  "CMakeFiles/matching_order_test.dir/tests/matching_order_test.cc.o.d"
  "matching_order_test"
  "matching_order_test.pdb"
  "matching_order_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
