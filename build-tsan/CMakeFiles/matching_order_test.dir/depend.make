# Empty dependencies file for matching_order_test.
# This may be replaced when dependencies are built.
