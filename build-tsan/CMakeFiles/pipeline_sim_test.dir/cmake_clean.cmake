file(REMOVE_RECURSE
  "CMakeFiles/pipeline_sim_test.dir/tests/pipeline_sim_test.cc.o"
  "CMakeFiles/pipeline_sim_test.dir/tests/pipeline_sim_test.cc.o.d"
  "pipeline_sim_test"
  "pipeline_sim_test.pdb"
  "pipeline_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
