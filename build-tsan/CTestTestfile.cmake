# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-tsan
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/baseline_test[1]_include.cmake")
include("/root/repo/build-tsan/cpu_matcher_test[1]_include.cmake")
include("/root/repo/build-tsan/cst_serialize_test[1]_include.cmake")
include("/root/repo/build-tsan/cst_test[1]_include.cmake")
include("/root/repo/build-tsan/driver_test[1]_include.cmake")
include("/root/repo/build-tsan/edge_label_test[1]_include.cmake")
include("/root/repo/build-tsan/explain_test[1]_include.cmake")
include("/root/repo/build-tsan/fpga_model_test[1]_include.cmake")
include("/root/repo/build-tsan/generators_test[1]_include.cmake")
include("/root/repo/build-tsan/graph_test[1]_include.cmake")
include("/root/repo/build-tsan/integration_test[1]_include.cmake")
include("/root/repo/build-tsan/kernel_test[1]_include.cmake")
include("/root/repo/build-tsan/ldbc_test[1]_include.cmake")
include("/root/repo/build-tsan/matching_order_test[1]_include.cmake")
include("/root/repo/build-tsan/partition_test[1]_include.cmake")
include("/root/repo/build-tsan/pattern_test[1]_include.cmake")
include("/root/repo/build-tsan/pipeline_sim_test[1]_include.cmake")
include("/root/repo/build-tsan/query_graph_test[1]_include.cmake")
include("/root/repo/build-tsan/service_test[1]_include.cmake")
include("/root/repo/build-tsan/status_test[1]_include.cmake")
include("/root/repo/build-tsan/stress_test[1]_include.cmake")
include("/root/repo/build-tsan/util_test[1]_include.cmake")
include("/root/repo/build-tsan/workload_test[1]_include.cmake")
