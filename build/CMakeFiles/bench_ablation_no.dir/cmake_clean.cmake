file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_no.dir/bench/bench_ablation_no.cc.o"
  "CMakeFiles/bench_ablation_no.dir/bench/bench_ablation_no.cc.o.d"
  "bench_ablation_no"
  "bench_ablation_no.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_no.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
