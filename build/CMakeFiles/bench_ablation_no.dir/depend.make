# Empty dependencies file for bench_ablation_no.
# This may be replaced when dependencies are built.
