file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17.dir/bench/bench_fig17.cc.o"
  "CMakeFiles/bench_fig17.dir/bench/bench_fig17.cc.o.d"
  "bench_fig17"
  "bench_fig17.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
