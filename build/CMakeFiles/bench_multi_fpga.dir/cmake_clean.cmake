file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_fpga.dir/bench/bench_multi_fpga.cc.o"
  "CMakeFiles/bench_multi_fpga.dir/bench/bench_multi_fpga.cc.o.d"
  "bench_multi_fpga"
  "bench_multi_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
