# Empty dependencies file for bench_multi_fpga.
# This may be replaced when dependencies are built.
