file(REMOVE_RECURSE
  "CMakeFiles/example_graph_database.dir/examples/graph_database.cpp.o"
  "CMakeFiles/example_graph_database.dir/examples/graph_database.cpp.o.d"
  "example_graph_database"
  "example_graph_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_graph_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
