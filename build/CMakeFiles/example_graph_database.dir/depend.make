# Empty dependencies file for example_graph_database.
# This may be replaced when dependencies are built.
