file(REMOVE_RECURSE
  "CMakeFiles/example_protein_motif.dir/examples/protein_motif.cpp.o"
  "CMakeFiles/example_protein_motif.dir/examples/protein_motif.cpp.o.d"
  "example_protein_motif"
  "example_protein_motif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_protein_motif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
