# Empty dependencies file for example_protein_motif.
# This may be replaced when dependencies are built.
