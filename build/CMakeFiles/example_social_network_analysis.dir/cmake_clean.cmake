file(REMOVE_RECURSE
  "CMakeFiles/example_social_network_analysis.dir/examples/social_network_analysis.cpp.o"
  "CMakeFiles/example_social_network_analysis.dir/examples/social_network_analysis.cpp.o.d"
  "example_social_network_analysis"
  "example_social_network_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_social_network_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
