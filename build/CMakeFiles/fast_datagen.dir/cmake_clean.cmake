file(REMOVE_RECURSE
  "CMakeFiles/fast_datagen.dir/tools/fast_datagen.cc.o"
  "CMakeFiles/fast_datagen.dir/tools/fast_datagen.cc.o.d"
  "fast_datagen"
  "fast_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
