# Empty dependencies file for fast_datagen.
# This may be replaced when dependencies are built.
