file(REMOVE_RECURSE
  "CMakeFiles/fast_match.dir/tools/fast_match.cc.o"
  "CMakeFiles/fast_match.dir/tools/fast_match.cc.o.d"
  "fast_match"
  "fast_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
