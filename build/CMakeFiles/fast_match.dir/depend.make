# Empty dependencies file for fast_match.
# This may be replaced when dependencies are built.
