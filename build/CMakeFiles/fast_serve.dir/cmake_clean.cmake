file(REMOVE_RECURSE
  "CMakeFiles/fast_serve.dir/tools/fast_serve.cc.o"
  "CMakeFiles/fast_serve.dir/tools/fast_serve.cc.o.d"
  "fast_serve"
  "fast_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
