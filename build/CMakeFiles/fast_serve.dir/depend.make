# Empty dependencies file for fast_serve.
# This may be replaced when dependencies are built.
