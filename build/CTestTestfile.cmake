# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/baseline_test[1]_include.cmake")
include("/root/repo/build/cpu_matcher_test[1]_include.cmake")
include("/root/repo/build/cst_serialize_test[1]_include.cmake")
include("/root/repo/build/cst_test[1]_include.cmake")
include("/root/repo/build/driver_test[1]_include.cmake")
include("/root/repo/build/edge_label_test[1]_include.cmake")
include("/root/repo/build/explain_test[1]_include.cmake")
include("/root/repo/build/fpga_model_test[1]_include.cmake")
include("/root/repo/build/generators_test[1]_include.cmake")
include("/root/repo/build/graph_test[1]_include.cmake")
include("/root/repo/build/integration_test[1]_include.cmake")
include("/root/repo/build/kernel_test[1]_include.cmake")
include("/root/repo/build/ldbc_test[1]_include.cmake")
include("/root/repo/build/matching_order_test[1]_include.cmake")
include("/root/repo/build/partition_test[1]_include.cmake")
include("/root/repo/build/pattern_test[1]_include.cmake")
include("/root/repo/build/pipeline_sim_test[1]_include.cmake")
include("/root/repo/build/query_graph_test[1]_include.cmake")
include("/root/repo/build/service_test[1]_include.cmake")
include("/root/repo/build/status_test[1]_include.cmake")
include("/root/repo/build/stress_test[1]_include.cmake")
include("/root/repo/build/util_test[1]_include.cmake")
include("/root/repo/build/workload_test[1]_include.cmake")
