// Graph-database integration sketch: plan-then-execute.
//
// The paper's closing pitch is integrating FAST into graph databases and RDF
// engines (Secs. I, VIII). A database needs to *plan* before dispatching to
// an accelerator: will the CST fit BRAM, how many partitions, is the workload
// worth the PCIe round trip, which kernel variant? This example runs that
// loop: EXPLAIN each incoming query, route small workloads to the CPU matcher
// and large ones to the (simulated) FPGA, then execute and compare the plan's
// prediction with reality.
//
//   $ ./examples/graph_database [scale_factor]

#include <cstdio>
#include <cstdlib>

#include "baseline/baseline.h"
#include "core/driver.h"
#include "core/explain.h"
#include "ldbc/ldbc.h"

int main(int argc, char** argv) {
  using namespace fast;

  const double sf = argc > 1 ? std::atof(argv[1]) : 2.0;
  LdbcConfig config;
  config.scale_factor = sf;
  auto graph = GenerateLdbcGraph(config);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("database graph: %s\n", graph->Summary().c_str());

  const FpgaConfig device = AlveoU200Config();
  // Routing heuristic: below this estimated workload the PCIe+DMA overhead
  // isn't worth it and the host matcher runs the query.
  constexpr double kFpgaWorkloadThreshold = 50000.0;

  for (int qi = 0; qi < kNumLdbcQueries; ++qi) {
    auto query = LdbcQuery(qi);
    if (!query.ok()) return 1;

    auto plan = ExplainQuery(*query, *graph, device);
    if (!plan.ok()) {
      std::fprintf(stderr, "plan %s: %s\n", query->name().c_str(),
                   plan.status().ToString().c_str());
      continue;
    }
    std::printf("\n--- %s ---\n%s", query->name().c_str(),
                plan->ToString().c_str());

    const bool route_to_fpga = plan->workload_estimate >= kFpgaWorkloadThreshold;
    if (route_to_fpga) {
      FastRunOptions options;
      options.fpga = device;
      options.cpu_share_delta = 0.1;
      auto r = RunFast(*query, *graph, options);
      if (!r.ok()) return 1;
      std::printf("routed to FPGA: %llu embeddings in %.3f ms "
                  "(plan predicted %.3f ms kernel)\n",
                  static_cast<unsigned long long>(r->embeddings),
                  r->total_seconds * 1e3,
                  device.CyclesToSeconds(plan->predicted_cycles_sep) * 1e3);
    } else {
      auto ceci = MakeBaseline(BaselineKind::kCeci);
      auto r = ceci->Run(*query, *graph, BaselineOptions{});
      if (!r.ok()) return 1;
      std::printf("routed to CPU: %llu embeddings in %.3f ms\n",
                  static_cast<unsigned long long>(r->embeddings),
                  r->seconds * 1e3);
    }
  }
  return 0;
}
