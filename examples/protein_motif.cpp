// Protein-interaction motif search -- the paper's other headline application
// (Sec. I cites PPI network analysis and chemical sub-compound search).
//
// Builds a synthetic protein-protein interaction network (vertices labelled
// by protein family, geometric-preferential wiring), then hunts for classic
// network motifs: the feed-forward-like triangle, the bi-fan (C4), and a
// clique of one family. Demonstrates using the library on non-LDBC data and
// the multi-FPGA scheduler (Sec. VII-E).
//
//   $ ./examples/protein_motif [num_proteins]

#include <cstdio>
#include <cstdlib>

#include "core/driver.h"
#include "graph/graph.h"
#include "query/query_graph.h"
#include "util/rng.h"

namespace {

using namespace fast;

// Synthetic PPI network: kFamilies protein families, hub-biased interaction
// wiring (power-law), plus within-family complexes that plant motifs.
StatusOr<Graph> BuildPpiNetwork(std::size_t num_proteins, std::uint64_t seed) {
  constexpr std::size_t kFamilies = 6;
  Rng rng(seed);
  // Labels first: random families, except planted complexes (every
  // num_proteins/24-ish vertices) whose members all belong to family 0 so
  // same-family cliques exist.
  std::vector<Label> labels(num_proteins);
  for (std::size_t i = 0; i < num_proteins; ++i) {
    labels[i] = static_cast<Label>(rng.Uniform(kFamilies));
  }
  const std::size_t complex_stride = num_proteins / 24 + 5;
  for (std::size_t c = 0; c + 4 < num_proteins; c += complex_stride) {
    for (std::size_t i = c; i < c + 4; ++i) labels[i] = 0;
  }

  GraphBuilder b(num_proteins);
  for (Label l : labels) b.AddVertex(l);
  // Preferential interactions.
  for (std::size_t i = 1; i < num_proteins; ++i) {
    const std::size_t interactions = 1 + rng.PowerLaw(12, 1.8);
    for (std::size_t k = 0; k < interactions; ++k) {
      const auto j = static_cast<VertexId>(rng.PowerLaw(i, 1.2));
      FAST_RETURN_IF_ERROR(b.AddEdge(static_cast<VertexId>(i), j));
    }
  }
  // Planted complexes: near-cliques of four consecutive family-0 proteins.
  for (std::size_t c = 0; c + 4 < num_proteins; c += complex_stride) {
    for (std::size_t i = c; i < c + 4; ++i) {
      for (std::size_t j = i + 1; j < c + 4; ++j) {
        if (rng.Bernoulli(0.9)) {
          FAST_RETURN_IF_ERROR(
              b.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(j)));
        }
      }
    }
  }
  return b.Build();
}

StatusOr<QueryGraph> Motif(const char* name, std::vector<Label> labels,
                           std::vector<std::pair<int, int>> edges) {
  GraphBuilder b;
  for (Label l : labels) b.AddVertex(l);
  for (auto [u, v] : edges) {
    FAST_RETURN_IF_ERROR(b.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v)));
  }
  FAST_ASSIGN_OR_RETURN(Graph g, b.Build());
  return QueryGraph::Create(std::move(g), name);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  auto ppi = BuildPpiNetwork(n, /*seed=*/7);
  if (!ppi.ok()) {
    std::fprintf(stderr, "%s\n", ppi.status().ToString().c_str());
    return 1;
  }
  std::printf("PPI network: %s\n\n", ppi->Summary().c_str());

  struct MotifSpec {
    const char* description;
    StatusOr<QueryGraph> query;
  };
  MotifSpec motifs[] = {
      {"mixed-family triangle (0-1-2)",
       Motif("triangle", {0, 1, 2}, {{0, 1}, {1, 2}, {2, 0}})},
      {"bi-fan / 4-cycle (0-1-0-1)",
       Motif("bifan", {0, 1, 0, 1}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}})},
      {"family-0 clique of 4",
       Motif("clique4", {0, 0, 0, 0},
             {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})},
  };

  for (auto& m : motifs) {
    if (!m.query.ok()) {
      std::fprintf(stderr, "motif: %s\n", m.query.status().ToString().c_str());
      return 1;
    }
    fast::FastRunOptions options;
    auto r = fast::RunFast(*m.query, *ppi, options);
    if (!r.ok()) {
      std::fprintf(stderr, "match: %s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-32s %12llu matches   %8.3f ms simulated (%zu partitions)\n",
                m.description, static_cast<unsigned long long>(r->embeddings),
                r->total_seconds * 1e3, r->partition_stats.num_partitions);
  }

  // Scale out: the same workload scheduled across 1, 2, 4 simulated FPGAs
  // by estimated workload (Sec. VII-E).
  std::printf("\nmulti-FPGA scaling on the clique motif:\n");
  auto clique = Motif("clique4", {0, 0, 0, 0},
                      {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  for (std::size_t devices : {1u, 2u, 4u}) {
    fast::FastRunOptions options;
    options.partition.max_size_words = 8192;  // force enough partitions
    options.partition.max_degree = 4096;
    auto r = fast::RunMultiFpga(*clique, *ppi, devices, options);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("  %zu device(s): makespan %8.3f ms over %zu partitions\n", devices,
                r->makespan_seconds * 1e3, r->num_partitions);
  }
  return 0;
}
