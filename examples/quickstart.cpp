// Quickstart: match one labelled pattern against a small social network.
//
//   $ ./examples/quickstart
//
// Walks the full public API surface in ~60 lines: generate a data graph,
// define a query, run the CPU-FPGA pipeline, inspect results and timing.

#include <cstdio>

#include "core/driver.h"
#include "ldbc/ldbc.h"

int main() {
  using namespace fast;

  // 1. A data graph: an LDBC-SNB-like social network (scale factor 0.5
  //    ~ 5k vertices / 17k edges). Any labelled undirected graph works;
  //    see graph/graph_io.h to load your own from a text file.
  LdbcConfig data_config;
  data_config.scale_factor = 0.5;
  data_config.seed = 42;
  auto graph = GenerateLdbcGraph(data_config);
  if (!graph.ok()) {
    std::fprintf(stderr, "generate: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("data graph: %s\n", graph->Summary().c_str());

  // 2. A query: triangle of mutual friends (Fig. 6's q2). Build your own
  //    with GraphBuilder + QueryGraph::Create.
  auto query = LdbcQuery(2);
  if (!query.ok()) return 1;
  std::printf("query: %s with %zu vertices, %zu edges\n", query->name().c_str(),
              query->NumVertices(), query->NumEdges());

  // 3. Run FAST: CST construction + partitioning on the host, pipelined
  //    matching on the simulated FPGA (FAST-SEP variant, 10% CPU share).
  FastRunOptions options;
  options.variant = FastVariant::kSep;
  options.cpu_share_delta = 0.1;
  options.store_limit = 3;  // keep a few embeddings for display
  auto result = RunFast(*query, *graph, options);
  if (!result.ok()) {
    std::fprintf(stderr, "match: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 4. Results.
  std::printf("\nembeddings found: %llu\n",
              static_cast<unsigned long long>(result->embeddings));
  std::printf("CST partitions:   %zu (CPU %zu / FPGA %zu)\n",
              result->partition_stats.num_partitions, result->cpu_partitions,
              result->fpga_partitions);
  std::printf("host build:       %.3f ms\n", result->build_seconds * 1e3);
  std::printf("host partition:   %.3f ms\n", result->partition_seconds * 1e3);
  std::printf("kernel (sim):     %.3f ms at 300 MHz\n",
              result->kernel_seconds * 1e3);
  std::printf("end-to-end:       %.3f ms\n", result->total_seconds * 1e3);

  for (const auto& emb : result->sample_embeddings) {
    std::printf("sample embedding:");
    for (std::size_t u = 0; u < emb.size(); ++u) {
      std::printf(" u%zu->v%u", u, emb[u]);
    }
    std::printf("\n");
  }
  return 0;
}
