// Social-network analysis: run the full LDBC query workload (Fig. 6's
// q0..q8) on one social graph and compare the FPGA pipeline against a CPU
// baseline -- the paper's motivating scenario (Sec. I: social network
// analysis, graph databases).
//
//   $ ./examples/social_network_analysis [scale_factor]

#include <cstdio>
#include <cstdlib>

#include "baseline/baseline.h"
#include "core/driver.h"
#include "ldbc/ldbc.h"

int main(int argc, char** argv) {
  using namespace fast;

  const double sf = argc > 1 ? std::atof(argv[1]) : 4.0;
  LdbcConfig config;
  config.scale_factor = sf;
  auto graph = GenerateLdbcGraph(config);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("social network (scale %.2f): %s\n\n", sf, graph->Summary().c_str());

  auto ceci = MakeBaseline(BaselineKind::kCeci);
  BaselineOptions baseline_options;
  baseline_options.time_limit_seconds = 60.0;

  std::printf("%-4s %-28s %12s %14s %14s %10s\n", "q", "pattern", "#matches",
              "FAST sim ms", "CECI cpu ms", "speedup");
  for (int qi = 0; qi < kNumLdbcQueries; ++qi) {
    auto query = LdbcQuery(qi);
    if (!query.ok()) return 1;

    FastRunOptions options;
    options.cpu_share_delta = 0.1;
    auto fast_result = RunFast(*query, *graph, options);
    if (!fast_result.ok()) {
      std::fprintf(stderr, "q%d: %s\n", qi, fast_result.status().ToString().c_str());
      continue;
    }

    auto cpu = ceci->Run(*query, *graph, baseline_options);
    const char* descriptions[] = {
        "self-commented post",          "tag in sub-topic on post",
        "friend triangle",              "comment on friend's post",
        "friends sharing a topic",      "friends in same country",
        "triangle rooted in a country", "friend chain across cities",
        "dense friend diamond"};
    const double fast_ms = fast_result->total_seconds * 1e3;
    if (cpu.ok()) {
      const double cpu_ms = cpu->seconds * 1e3;
      std::printf("q%-3d %-28s %12llu %14.3f %14.3f %9.1fx\n", qi, descriptions[qi],
                  static_cast<unsigned long long>(fast_result->embeddings), fast_ms,
                  cpu_ms, cpu_ms / fast_ms);
    } else {
      std::printf("q%-3d %-28s %12llu %14.3f %14s %10s\n", qi, descriptions[qi],
                  static_cast<unsigned long long>(fast_result->embeddings), fast_ms,
                  "INF", "-");
    }
  }
  return 0;
}
