#include "baseline/backtracking.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "cst/cst.h"
#include "util/logging.h"
#include "util/timer.h"

namespace fast {

namespace {

// Per-thread enumeration state over a shared candidate structure.
class Enumerator {
 public:
  Enumerator(const Cst& cst, const Graph& g, const MatchingOrder& order,
             bool intersection_based, const Timer& timer, double time_limit,
             std::atomic<bool>* deadline_hit, ResultCollector* collector)
      : cst_(cst),
        g_(g),
        order_(order.order),
        intersection_based_(intersection_based),
        timer_(timer),
        time_limit_(time_limit),
        deadline_hit_(deadline_hit),
        collector_(collector) {
    const std::size_t n = order_.size();
    const BfsTree& tree = cst_.layout().tree();
    order_pos_.assign(n, -1);
    for (std::size_t i = 0; i < n; ++i) order_pos_[order_[i]] = static_cast<int>(i);
    parent_pos_.assign(n, -1);
    backward_.assign(n, {});
    for (std::size_t i = 1; i < n; ++i) {
      parent_pos_[i] = order_pos_[tree.parent(order_[i])];
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (VertexId un : tree.non_tree_neighbors(order_[i])) {
        if (order_pos_[un] < static_cast<int>(i)) {
          backward_[i].emplace_back(un, order_pos_[un]);
        }
      }
    }
    positions_.assign(n, 0);
    data_.assign(n, 0);
    embedding_.assign(n, 0);
    scratch_.resize(n);
  }

  // Enumerates embeddings whose root candidate position lies in
  // [root_begin, root_end). Returns false if the deadline fired.
  bool Run(std::uint32_t root_begin, std::uint32_t root_end) {
    const VertexId root = order_[0];
    for (std::uint32_t i = root_begin; i < root_end; ++i) {
      // Deadline check per root candidate keeps timeout latency bounded even
      // when individual subtrees are shallow.
      if (timer_.ElapsedSeconds() > time_limit_) {
        deadline_hit_->store(true, std::memory_order_relaxed);
        return false;
      }
      positions_[0] = i;
      data_[0] = cst_.Candidate(root, i);
      if (!Recurse(1)) return false;
    }
    return true;
  }

  std::uint64_t count() const { return count_; }

 private:
  bool CheckDeadline() {
    if (deadline_hit_->load(std::memory_order_relaxed)) return true;
    if (++steps_ % 8192 == 0 && timer_.ElapsedSeconds() > time_limit_) {
      deadline_hit_->store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  bool Recurse(std::size_t depth) {
    if (CheckDeadline()) return false;
    const std::size_t n = order_.size();
    const VertexId u = order_[depth];
    const VertexId up = order_[static_cast<std::size_t>(parent_pos_[depth])];
    const auto parent_adj = cst_.Neighbors(
        up, u, positions_[static_cast<std::size_t>(parent_pos_[depth])]);

    std::span<const std::uint32_t> cands = parent_adj;
    if (intersection_based_ && !backward_[depth].empty()) {
      // DAF/CECI: intersect the adjacency of every mapped neighbor.
      auto& buf = scratch_[depth];
      buf.assign(parent_adj.begin(), parent_adj.end());
      for (const auto& [un, jpos] : backward_[depth]) {
        const auto other =
            cst_.Neighbors(un, u, positions_[static_cast<std::size_t>(jpos)]);
        std::size_t write = 0;
        for (std::uint32_t t : buf) {
          if (std::binary_search(other.begin(), other.end(), t)) buf[write++] = t;
        }
        buf.resize(write);
        if (buf.empty()) break;
      }
      cands = buf;
    }

    for (std::uint32_t t : cands) {
      const VertexId v = cst_.Candidate(u, t);
      bool valid = true;
      for (std::size_t j = 0; j < depth; ++j) {
        if (data_[j] == v) {
          valid = false;
          break;
        }
      }
      if (valid && !intersection_based_) {
        // CFL: verify non-tree edges (and their labels) against the data
        // graph.
        for (const auto& [un, jpos] : backward_[depth]) {
          const Label want = cst_.layout().query().EdgeLabel(u, un);
          if (!g_.HasEdge(v, data_[static_cast<std::size_t>(jpos)]) ||
              g_.EdgeLabelBetween(v, data_[static_cast<std::size_t>(jpos)]) !=
                  want) {
            valid = false;
            break;
          }
        }
      }
      if (!valid) continue;
      positions_[depth] = t;
      data_[depth] = v;
      if (depth + 1 == n) {
        ++count_;
        if (collector_ != nullptr) {
          for (std::size_t j = 0; j < n; ++j) embedding_[order_[j]] = data_[j];
          collector_->OnEmbedding(embedding_);
        }
      } else {
        if (!Recurse(depth + 1)) return false;
      }
    }
    return true;
  }

  const Cst& cst_;
  const Graph& g_;
  const std::vector<VertexId>& order_;
  bool intersection_based_;
  const Timer& timer_;
  double time_limit_;
  std::atomic<bool>* deadline_hit_;
  ResultCollector* collector_;

  std::vector<int> order_pos_;
  std::vector<int> parent_pos_;
  std::vector<std::vector<std::pair<VertexId, int>>> backward_;
  std::vector<std::uint32_t> positions_;
  std::vector<VertexId> data_;
  std::vector<VertexId> embedding_;
  std::vector<std::vector<std::uint32_t>> scratch_;
  std::uint64_t count_ = 0;
  std::uint64_t steps_ = 0;
};

}  // namespace

StatusOr<BaselineRunResult> BacktrackingMatcher::Run(
    const QueryGraph& q, const Graph& g, const BaselineOptions& options) const {
  if (options.num_threads == 0) {
    return Status::InvalidArgument("num_threads must be positive");
  }
  Timer timer;
  FAST_ASSIGN_OR_RETURN(MatchingOrder order,
                        ComputeMatchingOrder(q, g, style_.order_policy));

  CstBuildOptions build;
  build.materialize_non_tree = style_.intersection_based;
  FAST_ASSIGN_OR_RETURN(Cst cst, BuildCst(q, g, order.root, build));

  const auto n_roots = static_cast<std::uint32_t>(cst.NumCandidates(order.root));
  std::atomic<bool> deadline_hit{false};

  BaselineRunResult result;
  if (options.num_threads == 1) {
    ResultCollector collector(options.store_limit);
    Enumerator e(cst, g, order, style_.intersection_based, timer,
                 options.time_limit_seconds, &deadline_hit, &collector);
    e.Run(0, n_roots);
    result.embeddings = e.count();
    result.sample_embeddings = collector.stored();
  } else {
    const unsigned t = options.num_threads;
    std::vector<ResultCollector> collectors(t, ResultCollector(0));
    std::vector<std::uint64_t> counts(t, 0);
    std::vector<std::thread> threads;
    threads.reserve(t);
    for (unsigned i = 0; i < t; ++i) {
      threads.emplace_back([&, i] {
        const std::uint32_t begin =
            static_cast<std::uint32_t>(std::uint64_t{n_roots} * i / t);
        const std::uint32_t end =
            static_cast<std::uint32_t>(std::uint64_t{n_roots} * (i + 1) / t);
        Enumerator e(cst, g, order, style_.intersection_based, timer,
                     options.time_limit_seconds, &deadline_hit, &collectors[i]);
        e.Run(begin, end);
        counts[i] = e.count();
      });
    }
    for (auto& th : threads) th.join();
    for (unsigned i = 0; i < t; ++i) result.embeddings += counts[i];
  }
  result.seconds = timer.ElapsedSeconds();
  if (deadline_hit.load()) {
    return Status::DeadlineExceeded(name() + " exceeded the time limit");
  }
  return result;
}

}  // namespace fast
