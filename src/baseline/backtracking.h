#ifndef FAST_BASELINE_BACKTRACKING_H_
#define FAST_BASELINE_BACKTRACKING_H_

// Shared backtracking engine behind the CFL-, DAF- and CECI-style baselines.
//
// The three published algorithms differ (for the purposes of the paper's
// comparison, Sec. VII-C) in (a) the auxiliary structure, (b) how extendable
// candidates are computed -- edge verification vs. set intersection -- and
// (c) the matching order. This engine factors those into a config.

#include "baseline/baseline.h"
#include "query/matching_order.h"

namespace fast {

struct BacktrackStyle {
  std::string name;
  OrderPolicy order_policy;
  // true: candidates of u = intersection of the CST adjacency of *all*
  // mapped neighbors (DAF/CECI). false: candidates come from the tree parent
  // only and non-tree edges are verified against G (CFL-Match / CPI).
  bool intersection_based = true;
};

inline BacktrackStyle CflStyle() {
  return {"CFL", OrderPolicy::kCfl, /*intersection_based=*/false};
}
inline BacktrackStyle DafStyle() {
  return {"DAF", OrderPolicy::kDaf, /*intersection_based=*/true};
}
inline BacktrackStyle CeciStyle() {
  return {"CECI", OrderPolicy::kCeci, /*intersection_based=*/true};
}

class BacktrackingMatcher : public BaselineMatcher {
 public:
  explicit BacktrackingMatcher(BacktrackStyle style) : style_(std::move(style)) {}

  std::string name() const override { return style_.name; }

  StatusOr<BaselineRunResult> Run(const QueryGraph& q, const Graph& g,
                                  const BaselineOptions& options) const override;

 private:
  BacktrackStyle style_;
};

}  // namespace fast

#endif  // FAST_BASELINE_BACKTRACKING_H_
