#include "baseline/baseline.h"

#include "baseline/backtracking.h"
#include "baseline/join.h"

namespace fast {

std::unique_ptr<BaselineMatcher> MakeBaseline(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kCfl:
      return std::make_unique<BacktrackingMatcher>(CflStyle());
    case BaselineKind::kDaf:
      return std::make_unique<BacktrackingMatcher>(DafStyle());
    case BaselineKind::kCeci:
      return std::make_unique<BacktrackingMatcher>(CeciStyle());
    case BaselineKind::kGpsm:
      return std::make_unique<GpsmMatcher>();
    case BaselineKind::kGsi:
      return std::make_unique<GsiMatcher>();
  }
  return nullptr;
}

}  // namespace fast
