#ifndef FAST_BASELINE_BASELINE_H_
#define FAST_BASELINE_BASELINE_H_

// State-of-the-art comparators of Sec. VII (re-implemented from their
// published algorithm descriptions; the original artifacts are not available
// in this environment -- see DESIGN.md substitutions):
//
//   CFL   - CFL-Match: CPI-like auxiliary structure (tree edges only) with
//           *edge verification* of non-tree query edges against G.
//   DAF   - candidate-space (CS) structure with *intersection-based*
//           extendable-candidate computation.
//   CECI  - compact-embedding-cluster-index-like structure, intersection
//           based; CECI-8 = 8 host threads over root-candidate ranges.
//   GpSM  - GPU binary-join strategy: materializes candidate edges per query
//           edge, then joins; memory-hungry (runs OOM on larger graphs).
//   GSI   - GPU vertex-join with Prealloc-Combine: pre-allocates worst-case
//           output tables, trading memory for conflict-free writes (OOMs
//           earlier than GpSM, as the paper observes).
//
// All baselines run on the host CPU and report measured wall-clock time;
// simulated-device comparisons against FAST are shape-faithful because the
// baselines' costs are algorithm-dominated.

#include <cstdint>
#include <memory>
#include <string>

#include "core/result_collector.h"
#include "graph/graph.h"
#include "query/query_graph.h"
#include "util/status.h"

namespace fast {

struct BaselineOptions {
  // Worker threads (1 = the paper's single-thread runs; 8 = DAF-8 / CECI-8).
  unsigned num_threads = 1;
  // Device-memory cap for the GPU-style matchers (16 GB Tesla V100 in the
  // paper); exceeding it returns ResourceExhausted ("OOM").
  std::size_t memory_cap_bytes = 16ull << 30;
  // Wall-clock limit; exceeding it returns DeadlineExceeded ("INF").
  double time_limit_seconds = 3600.0 * 3;
  std::size_t store_limit = 0;
};

struct BaselineRunResult {
  std::uint64_t embeddings = 0;
  double seconds = 0.0;
  // Peak tracked memory of the join-based matchers (0 for backtracking).
  std::size_t peak_memory_bytes = 0;
  std::vector<Embedding> sample_embeddings;
};

// Abstract matcher; implementations are stateless and reusable across runs.
class BaselineMatcher {
 public:
  virtual ~BaselineMatcher() = default;
  virtual std::string name() const = 0;
  // Runs the matcher. Returns ResourceExhausted for OOM and DeadlineExceeded
  // for timeouts (the paper's OOM / INF table entries).
  virtual StatusOr<BaselineRunResult> Run(const QueryGraph& q, const Graph& g,
                                          const BaselineOptions& options) const = 0;
};

enum class BaselineKind { kCfl, kDaf, kCeci, kGpsm, kGsi };

// Factory for the five comparators.
std::unique_ptr<BaselineMatcher> MakeBaseline(BaselineKind kind);

}  // namespace fast

#endif  // FAST_BASELINE_BASELINE_H_
