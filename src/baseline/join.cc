#include "baseline/join.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "query/matching_order.h"
#include "util/logging.h"
#include "util/timer.h"

namespace fast {

namespace {

// Tracks simulated device-memory usage against the cap.
class DeviceMemory {
 public:
  explicit DeviceMemory(std::size_t cap) : cap_(cap) {}

  Status Alloc(std::size_t bytes) {
    used_ += bytes;
    peak_ = std::max(peak_, used_);
    if (used_ > cap_) {
      return Status::ResourceExhausted("device memory exceeded (" +
                                       std::to_string(used_) + " of " +
                                       std::to_string(cap_) + " bytes)");
    }
    return Status::OK();
  }

  void Free(std::size_t bytes) { used_ -= std::min(used_, bytes); }

  std::size_t peak() const { return peak_; }

 private:
  std::size_t cap_;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
};

// LDF candidate sets + membership masks for all query vertices.
struct Candidates {
  std::vector<std::vector<VertexId>> lists;
  std::vector<std::vector<char>> masks;
};

Candidates ComputeCandidates(const QueryGraph& q, const Graph& g) {
  Candidates c;
  c.lists.resize(q.NumVertices());
  c.masks.assign(q.NumVertices(), std::vector<char>(g.NumVertices(), 0));
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    for (VertexId v : g.VerticesWithLabel(q.label(u))) {
      if (g.degree(v) >= q.degree(u)) {
        c.lists[u].push_back(v);
        c.masks[u][v] = 1;
      }
    }
  }
  return c;
}

// Row-major table of partial embeddings over `columns` query vertices.
struct JoinTable {
  std::vector<VertexId> columns;  // query vertices, in column order
  std::vector<VertexId> rows;     // row-major, stride = columns.size()

  std::size_t NumRows() const {
    return columns.empty() ? 0 : rows.size() / columns.size();
  }
  std::size_t Bytes() const { return rows.size() * sizeof(VertexId); }
  int ColumnOf(VertexId u) const {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == u) return static_cast<int>(i);
    }
    return -1;
  }
};

// Query-edge join order: BFS-tree edges top-down, then non-tree edges. This
// guarantees each joined edge touches the already-covered vertex set.
std::vector<std::pair<VertexId, VertexId>> EdgeJoinOrder(const QueryGraph& q,
                                                         VertexId root) {
  const BfsTree tree = BfsTree::Build(q, root);
  std::vector<std::pair<VertexId, VertexId>> order;
  for (VertexId u : tree.bfs_order()) {
    if (u != root) order.emplace_back(tree.parent(u), u);
  }
  std::unordered_set<std::uint64_t> seen;
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    for (VertexId w : tree.non_tree_neighbors(u)) {
      const std::uint64_t key = u < w ? (std::uint64_t{u} << 32 | w)
                                      : (std::uint64_t{w} << 32 | u);
      if (seen.insert(key).second) order.emplace_back(u, w);
    }
  }
  return order;
}

Status CheckTime(const Timer& timer, const BaselineOptions& options,
                 const std::string& who) {
  if (timer.ElapsedSeconds() > options.time_limit_seconds) {
    return Status::DeadlineExceeded(who + " exceeded the time limit");
  }
  return Status::OK();
}

void EmitResults(const JoinTable& table, const QueryGraph& q,
                 const BaselineOptions& options, BaselineRunResult* result) {
  result->embeddings = table.NumRows();
  if (options.store_limit == 0) return;
  const std::size_t stride = table.columns.size();
  Embedding e(q.NumVertices());
  const std::size_t keep = std::min(options.store_limit, table.NumRows());
  for (std::size_t r = 0; r < keep; ++r) {
    for (std::size_t i = 0; i < stride; ++i) {
      e[table.columns[i]] = table.rows[r * stride + i];
    }
    result->sample_embeddings.push_back(e);
  }
}

}  // namespace

StatusOr<BaselineRunResult> GpsmMatcher::Run(const QueryGraph& q, const Graph& g,
                                             const BaselineOptions& options) const {
  Timer timer;
  DeviceMemory mem(options.memory_cap_bytes);
  const Candidates cand = ComputeCandidates(q, g);
  for (const auto& l : cand.lists) {
    FAST_RETURN_IF_ERROR(mem.Alloc(l.size() * sizeof(VertexId)));
  }

  const VertexId root = SelectRoot(q, g);
  const auto edge_order = EdgeJoinOrder(q, root);

  // Phase 1: materialize the candidate-edge table of every query edge.
  std::unordered_map<std::uint64_t, std::vector<std::pair<VertexId, VertexId>>>
      edge_tables;
  for (const auto& [u, w] : edge_order) {
    auto& table = edge_tables[std::uint64_t{u} << 32 | w];
    const Label want = q.EdgeLabel(u, w);
    for (VertexId a : cand.lists[u]) {
      const auto nbrs = g.neighbors(a);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId b = nbrs[i];
        if (cand.masks[w][b] && g.EdgeLabelAt(a, i) == want) {
          table.emplace_back(a, b);
        }
      }
    }
    FAST_RETURN_IF_ERROR(mem.Alloc(table.size() * sizeof(table[0])));
    FAST_RETURN_IF_ERROR(CheckTime(timer, options, name()));
  }

  // Phase 2: binary joins following the edge order.
  JoinTable table;
  {
    const auto& [u, w] = edge_order.front();
    table.columns = {u, w};
    const auto& first = edge_tables[std::uint64_t{u} << 32 | w];
    table.rows.reserve(first.size() * 2);
    for (const auto& [a, b] : first) {
      if (a != b) {
        table.rows.push_back(a);
        table.rows.push_back(b);
      }
    }
    FAST_RETURN_IF_ERROR(mem.Alloc(table.Bytes()));
  }

  for (std::size_t ei = 1; ei < edge_order.size(); ++ei) {
    const auto [u, w] = edge_order[ei];
    const auto& etab = edge_tables[std::uint64_t{u} << 32 | w];
    const int cu = table.ColumnOf(u);
    const int cw = table.ColumnOf(w);
    const std::size_t stride = table.columns.size();
    JoinTable next;

    if (cu >= 0 && cw >= 0) {
      // Both endpoints bound: semi-join filter against the edge table.
      std::unordered_set<std::uint64_t> pairs;
      pairs.reserve(etab.size() * 2);
      for (const auto& [a, b] : etab) {
        pairs.insert(std::uint64_t{a} << 32 | b);
        pairs.insert(std::uint64_t{b} << 32 | a);
      }
      FAST_RETURN_IF_ERROR(mem.Alloc(pairs.size() * 16));
      next.columns = table.columns;
      for (std::size_t r = 0; r < table.NumRows(); ++r) {
        const VertexId a = table.rows[r * stride + static_cast<std::size_t>(cu)];
        const VertexId b = table.rows[r * stride + static_cast<std::size_t>(cw)];
        if (pairs.count(std::uint64_t{a} << 32 | b) != 0) {
          next.rows.insert(next.rows.end(), table.rows.begin() + r * stride,
                           table.rows.begin() + (r + 1) * stride);
        }
      }
      mem.Free(pairs.size() * 16);
    } else {
      // One endpoint bound: hash the edge table on the bound side and expand.
      const bool u_bound = cu >= 0;
      const int bound_col = u_bound ? cu : cw;
      std::unordered_map<VertexId, std::vector<VertexId>> index;
      for (const auto& [a, b] : etab) {
        if (u_bound) {
          index[a].push_back(b);
        } else {
          index[b].push_back(a);
        }
      }
      FAST_RETURN_IF_ERROR(mem.Alloc(etab.size() * 12));
      next.columns = table.columns;
      next.columns.push_back(u_bound ? w : u);
      for (std::size_t r = 0; r < table.NumRows(); ++r) {
        const VertexId key = table.rows[r * stride + static_cast<std::size_t>(bound_col)];
        auto it = index.find(key);
        if (it == index.end()) continue;
        for (VertexId nv : it->second) {
          // Injectivity.
          bool dup = false;
          for (std::size_t i = 0; i < stride; ++i) {
            if (table.rows[r * stride + i] == nv) {
              dup = true;
              break;
            }
          }
          if (dup) continue;
          next.rows.insert(next.rows.end(), table.rows.begin() + r * stride,
                           table.rows.begin() + (r + 1) * stride);
          next.rows.push_back(nv);
        }
      }
      mem.Free(etab.size() * 12);
    }
    FAST_RETURN_IF_ERROR(mem.Alloc(next.Bytes()));
    mem.Free(table.Bytes());
    table = std::move(next);
    FAST_RETURN_IF_ERROR(CheckTime(timer, options, name()));
  }

  BaselineRunResult result;
  EmitResults(table, q, options, &result);
  result.seconds = timer.ElapsedSeconds();
  result.peak_memory_bytes = mem.peak();
  return result;
}

StatusOr<BaselineRunResult> GsiMatcher::Run(const QueryGraph& q, const Graph& g,
                                            const BaselineOptions& options) const {
  Timer timer;
  DeviceMemory mem(options.memory_cap_bytes);
  const Candidates cand = ComputeCandidates(q, g);
  for (const auto& l : cand.lists) {
    FAST_RETURN_IF_ERROR(mem.Alloc(l.size() * sizeof(VertexId)));
  }

  const VertexId root = SelectRoot(q, g);
  const BfsTree tree = BfsTree::Build(q, root);
  const auto& order = tree.bfs_order();
  std::vector<int> pos_of(q.NumVertices(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) pos_of[order[i]] = static_cast<int>(i);

  JoinTable table;
  table.columns = {root};
  table.rows = cand.lists[root];
  FAST_RETURN_IF_ERROR(mem.Alloc(table.Bytes()));

  for (std::size_t step = 1; step < order.size(); ++step) {
    const VertexId u = order[step];
    // Backward neighbors of u among already-joined vertices.
    std::vector<int> backward_cols;
    for (VertexId w : q.neighbors(u)) {
      const int c = table.ColumnOf(w);
      if (c >= 0) backward_cols.push_back(c);
    }
    FAST_CHECK(!backward_cols.empty());
    const std::size_t stride = table.columns.size();

    // Prealloc-Combine: reserve worst-case output before the extension so
    // parallel writers never conflict. The bound is rows * max candidate
    // degree -- this is GSI's memory Achilles heel the paper points out.
    std::uint32_t degree_bound = 0;
    {
      const int c0 = backward_cols.front();
      for (std::size_t r = 0; r < table.NumRows(); ++r) {
        degree_bound = std::max(
            degree_bound, g.degree(table.rows[r * stride + static_cast<std::size_t>(c0)]));
      }
    }
    const std::size_t prealloc_bytes =
        table.NumRows() * static_cast<std::size_t>(degree_bound) * (stride + 1) *
        sizeof(VertexId);
    FAST_RETURN_IF_ERROR(mem.Alloc(prealloc_bytes));

    JoinTable next;
    next.columns = table.columns;
    next.columns.push_back(u);
    const VertexId anchor_qv = table.columns[static_cast<std::size_t>(backward_cols.front())];
    const Label anchor_label = q.EdgeLabel(anchor_qv, u);
    for (std::size_t r = 0; r < table.NumRows(); ++r) {
      const VertexId anchor =
          table.rows[r * stride + static_cast<std::size_t>(backward_cols.front())];
      const auto anchor_nbrs = g.neighbors(anchor);
      for (std::size_t ni = 0; ni < anchor_nbrs.size(); ++ni) {
        const VertexId v = anchor_nbrs[ni];
        if (!cand.masks[u][v] || g.EdgeLabelAt(anchor, ni) != anchor_label) continue;
        bool valid = true;
        for (std::size_t bi = 1; bi < backward_cols.size() && valid; ++bi) {
          const VertexId other =
              table.rows[r * stride + static_cast<std::size_t>(backward_cols[bi])];
          const VertexId other_qv =
              table.columns[static_cast<std::size_t>(backward_cols[bi])];
          valid = g.HasEdgeWithLabel(v, other, q.EdgeLabel(other_qv, u));
        }
        if (valid) {
          for (std::size_t i = 0; i < stride; ++i) {
            if (table.rows[r * stride + i] == v) {
              valid = false;
              break;
            }
          }
        }
        if (!valid) continue;
        next.rows.insert(next.rows.end(), table.rows.begin() + r * stride,
                         table.rows.begin() + (r + 1) * stride);
        next.rows.push_back(v);
      }
    }
    // Combine: compact into an exact-size table, release the prealloc.
    FAST_RETURN_IF_ERROR(mem.Alloc(next.Bytes()));
    mem.Free(prealloc_bytes);
    mem.Free(table.Bytes());
    table = std::move(next);
    FAST_RETURN_IF_ERROR(CheckTime(timer, options, name()));
  }

  BaselineRunResult result;
  EmitResults(table, q, options, &result);
  result.seconds = timer.ElapsedSeconds();
  result.peak_memory_bytes = mem.peak();
  return result;
}

}  // namespace fast
