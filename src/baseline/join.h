#ifndef FAST_BASELINE_JOIN_H_
#define FAST_BASELINE_JOIN_H_

// GPU-style join matchers (Sec. III-A "GPU-based Solutions", compared in
// Fig. 14).
//
// GpSM collects candidate pairs for every query edge and assembles results
// with binary joins; GSI joins candidate *vertices* with a Prealloc-Combine
// scheme that reserves worst-case output space before each extension. Both
// must keep all intermediate tables in device memory, which is why they run
// out of memory on the larger LDBC graphs in the paper. Here they execute on
// the host, with every device allocation charged against a configurable
// device-memory cap (16 GB V100 by default); exceeding the cap returns
// ResourceExhausted, reproducing the paper's OOM entries.

#include "baseline/baseline.h"

namespace fast {

class GpsmMatcher : public BaselineMatcher {
 public:
  std::string name() const override { return "GpSM"; }
  StatusOr<BaselineRunResult> Run(const QueryGraph& q, const Graph& g,
                                  const BaselineOptions& options) const override;
};

class GsiMatcher : public BaselineMatcher {
 public:
  std::string name() const override { return "GSI"; }
  StatusOr<BaselineRunResult> Run(const QueryGraph& q, const Graph& g,
                                  const BaselineOptions& options) const override;
};

}  // namespace fast

#endif  // FAST_BASELINE_JOIN_H_
