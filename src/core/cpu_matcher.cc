#include "core/cpu_matcher.h"

#include "util/logging.h"

namespace fast {

namespace {

struct CpuMatchState {
  const Cst* cst;
  const std::vector<VertexId>* order;
  std::vector<int> order_pos;                     // query vertex -> order index
  std::vector<int> parent_pos;                    // order index -> parent order index
  std::vector<std::vector<std::pair<VertexId, int>>> backward;  // per order index
  std::vector<std::uint32_t> positions;           // matched candidate positions
  std::vector<VertexId> data_vertices;            // matched data vertices
  std::vector<VertexId> embedding;                // query-vertex indexed
  ResultCollector* collector;
  std::uint64_t count = 0;
  const CancelToken* cancel = nullptr;
  std::uint32_t probe_countdown = kProbeStride;
  bool aborted = false;

  // Probe the token once per kProbeStride expansions: frequent enough to
  // bound overrun, rare enough that the clock read stays off the hot path.
  static constexpr std::uint32_t kProbeStride = 256;

  void Recurse(std::size_t depth) {
    const std::size_t n = order->size();
    const VertexId u = (*order)[depth];
    std::span<const std::uint32_t> cands;
    std::vector<std::uint32_t> root_positions;
    if (depth == 0) {
      root_positions.resize(cst->NumCandidates(u));
      for (std::uint32_t i = 0; i < root_positions.size(); ++i) root_positions[i] = i;
      cands = root_positions;
    } else {
      const VertexId up = (*order)[static_cast<std::size_t>(parent_pos[depth])];
      cands = cst->Neighbors(up, u, positions[static_cast<std::size_t>(parent_pos[depth])]);
    }
    for (std::uint32_t t : cands) {
      if (--probe_countdown == 0) {
        probe_countdown = kProbeStride;
        if (cancel != nullptr && cancel->Cancelled()) aborted = true;
      }
      if (aborted) return;
      const VertexId v = cst->Candidate(u, t);
      bool valid = true;
      for (std::size_t j = 0; j < depth; ++j) {
        if (data_vertices[j] == v) {
          valid = false;
          break;
        }
      }
      if (valid) {
        for (const auto& [un, jpos] : backward[depth]) {
          if (!cst->HasCstEdge(u, t, un, positions[static_cast<std::size_t>(jpos)])) {
            valid = false;
            break;
          }
        }
      }
      if (!valid) continue;
      positions[depth] = t;
      data_vertices[depth] = v;
      if (depth + 1 == n) {
        ++count;
        if (collector != nullptr) {
          for (std::size_t j = 0; j <= depth; ++j) embedding[(*order)[j]] = data_vertices[j];
          collector->OnEmbedding(embedding);
        }
      } else {
        Recurse(depth + 1);
      }
    }
  }
};

}  // namespace

StatusOr<std::uint64_t> MatchCstOnCpu(const Cst& cst, const MatchingOrder& order,
                                      ResultCollector* collector,
                                      const CancelToken* cancel) {
  // Entry probe: an already-tripped token aborts before any work, so even
  // graphs smaller than the probe stride observe cancellation.
  if (cancel != nullptr && cancel->Cancelled()) {
    return Status::DeadlineExceeded("cpu match cancelled mid-match");
  }
  const std::size_t n = cst.NumQueryVertices();
  if (order.order.size() != n) {
    return Status::InvalidArgument("order arity does not match CST");
  }
  const BfsTree& tree = cst.layout().tree();
  if (order.order.empty() || order.order[0] != tree.root()) {
    return Status::InvalidArgument("order root does not match CST root");
  }

  CpuMatchState st;
  st.cst = &cst;
  st.order = &order.order;
  st.order_pos.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) st.order_pos[order.order[i]] = static_cast<int>(i);
  st.parent_pos.assign(n, -1);
  st.backward.assign(n, {});
  for (std::size_t i = 1; i < n; ++i) {
    const VertexId u = order.order[i];
    const VertexId up = tree.parent(u);
    if (up == kInvalidVertex || st.order_pos[up] >= static_cast<int>(i)) {
      return Status::InvalidArgument("order is not tree-connected");
    }
    st.parent_pos[i] = st.order_pos[up];
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (VertexId un : tree.non_tree_neighbors(order.order[i])) {
      if (st.order_pos[un] < static_cast<int>(i)) {
        st.backward[i].emplace_back(un, st.order_pos[un]);
      }
    }
  }
  st.positions.assign(n, 0);
  st.data_vertices.assign(n, 0);
  st.embedding.assign(n, 0);
  st.collector = collector;
  st.cancel = cancel;
  if (cst.NumCandidates(order.order[0]) > 0) st.Recurse(0);
  if (st.aborted) {
    return Status::DeadlineExceeded("cpu match cancelled mid-match");
  }
  return st.count;
}

}  // namespace fast
