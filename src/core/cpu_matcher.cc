#include "core/cpu_matcher.h"

#include "obs/profiler.h"
#include "simd/intersect.h"
#include "util/logging.h"

namespace fast {

namespace {

struct CpuMatchState {
  const Cst* cst;
  const std::vector<VertexId>* order;
  const simd::Kernels* kernels;                   // pinned once per match
  std::vector<int> order_pos;                     // query vertex -> order index
  std::vector<int> parent_pos;                    // order index -> parent order index
  std::vector<std::vector<std::pair<VertexId, int>>> backward;  // per order index
  std::vector<std::uint32_t> root_positions;      // iota over C(order[0])
  std::vector<std::vector<std::uint32_t>> scratch;  // per-depth intersect buffer
  std::vector<std::uint32_t> positions;           // matched candidate positions
  std::vector<VertexId> data_vertices;            // matched data vertices
  std::vector<std::uint64_t> dup_filter;          // per-depth 64-bit vertex bloom
  std::vector<VertexId> embedding;                // query-vertex indexed
  ResultCollector* collector;
  std::uint64_t count = 0;
  const CancelToken* cancel = nullptr;
  std::uint32_t probe_countdown = kProbeStride;
  bool aborted = false;
  bool use_dup_filter = false;

  // Probe the token once per kProbeStride expansions: frequent enough to
  // bound overrun, rare enough that the clock read stays off the hot path.
  static constexpr std::uint32_t kProbeStride = 256;

  // The O(depth) duplicate scan is preceded by a 64-bit bloom probe once the
  // pattern is deep enough for the scan to cost more than the filter upkeep.
  static constexpr std::size_t kDupFilterMinVertices = 8;

  // Bulk-charges `m` virtual expansions against the probe budget, preserving
  // the probe-at-least-every-kProbeStride contract when a whole candidate
  // span is consumed by one batched intersection instead of a scalar loop.
  void ChargeProbes(std::size_t m) {
    while (m >= probe_countdown) {
      m -= probe_countdown;
      probe_countdown = kProbeStride;
      if (cancel != nullptr && cancel->Cancelled()) {
        aborted = true;
        return;
      }
    }
    probe_countdown -= static_cast<std::uint32_t>(m);
  }

  bool IsDuplicate(std::size_t depth, VertexId v) const {
    if (use_dup_filter &&
        (dup_filter[depth] & (std::uint64_t{1} << (v & 63))) == 0) {
      return false;  // bit clear: v cannot appear in the prefix
    }
    for (std::size_t j = 0; j < depth; ++j) {
      if (data_vertices[j] == v) return true;
    }
    return false;
  }

  void Recurse(std::size_t depth) {
    const std::size_t n = order->size();
    const VertexId u = (*order)[depth];
    std::span<const std::uint32_t> cands;
    if (depth == 0) {
      cands = root_positions;
    } else {
      const VertexId up = (*order)[static_cast<std::size_t>(parent_pos[depth])];
      cands = cst->Neighbors(up, u, positions[static_cast<std::size_t>(parent_pos[depth])]);
    }
    // Backward (non-tree) edges: a candidate position t of u survives iff t
    // is a CST-neighbor of every already-matched backward endpoint. Both
    // sides are sorted position lists, so the whole span is filtered with
    // one intersection per backward edge instead of a binary search per
    // (candidate, edge) pair; later edges refine the scratch buffer in
    // place.
    const auto& bwd = backward[depth];
    if (!bwd.empty() && !cands.empty()) {
      FAST_PROF_STAGE("intersect");
      ChargeProbes(cands.size());
      if (aborted) return;
      auto& buf = scratch[depth];
      buf.resize(cands.size());
      const std::uint32_t* cur = cands.data();
      std::size_t cur_n = cands.size();
      for (const auto& [un, jpos] : bwd) {
        const auto nbrs =
            cst->Neighbors(un, u, positions[static_cast<std::size_t>(jpos)]);
        cur_n = kernels->intersect(cur, cur_n, nbrs.data(), nbrs.size(),
                                   buf.data());
        cur = buf.data();
        if (cur_n == 0) return;
      }
      cands = {cur, cur_n};
    }
    for (std::uint32_t t : cands) {
      if (--probe_countdown == 0) {
        probe_countdown = kProbeStride;
        if (cancel != nullptr && cancel->Cancelled()) aborted = true;
      }
      if (aborted) return;
      const VertexId v = cst->Candidate(u, t);
      if (IsDuplicate(depth, v)) continue;
      positions[depth] = t;
      data_vertices[depth] = v;
      if (depth + 1 == n) {
        ++count;
        if (collector != nullptr) {
          for (std::size_t j = 0; j <= depth; ++j) embedding[(*order)[j]] = data_vertices[j];
          collector->OnEmbedding(embedding);
        }
      } else {
        if (use_dup_filter) {
          dup_filter[depth + 1] =
              dup_filter[depth] | (std::uint64_t{1} << (v & 63));
        }
        Recurse(depth + 1);
      }
    }
  }
};

}  // namespace

StatusOr<std::uint64_t> MatchCstOnCpu(const Cst& cst, const MatchingOrder& order,
                                      ResultCollector* collector,
                                      const CancelToken* cancel) {
  // Entry probe: an already-tripped token aborts before any work, so even
  // graphs smaller than the probe stride observe cancellation.
  if (cancel != nullptr && cancel->Cancelled()) {
    return Status::DeadlineExceeded("cpu match cancelled mid-match");
  }
  const std::size_t n = cst.NumQueryVertices();
  if (order.order.size() != n) {
    return Status::InvalidArgument("order arity does not match CST");
  }
  const BfsTree& tree = cst.layout().tree();
  if (order.order.empty() || order.order[0] != tree.root()) {
    return Status::InvalidArgument("order root does not match CST root");
  }

  CpuMatchState st;
  st.cst = &cst;
  st.order = &order.order;
  st.kernels = &simd::Active();
  st.order_pos.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) st.order_pos[order.order[i]] = static_cast<int>(i);
  st.parent_pos.assign(n, -1);
  st.backward.assign(n, {});
  for (std::size_t i = 1; i < n; ++i) {
    const VertexId u = order.order[i];
    const VertexId up = tree.parent(u);
    if (up == kInvalidVertex || st.order_pos[up] >= static_cast<int>(i)) {
      return Status::InvalidArgument("order is not tree-connected");
    }
    st.parent_pos[i] = st.order_pos[up];
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (VertexId un : tree.non_tree_neighbors(order.order[i])) {
      if (st.order_pos[un] < static_cast<int>(i)) {
        st.backward[i].emplace_back(un, st.order_pos[un]);
      }
    }
  }
  st.root_positions.resize(cst.NumCandidates(order.order[0]));
  for (std::uint32_t i = 0; i < st.root_positions.size(); ++i) {
    st.root_positions[i] = i;
  }
  st.scratch.assign(n, {});
  st.positions.assign(n, 0);
  st.data_vertices.assign(n, 0);
  st.use_dup_filter = n > CpuMatchState::kDupFilterMinVertices;
  st.dup_filter.assign(n + 1, 0);
  st.embedding.assign(n, 0);
  st.collector = collector;
  st.cancel = cancel;
  if (cst.NumCandidates(order.order[0]) > 0) st.Recurse(0);
  if (st.aborted) {
    return Status::DeadlineExceeded("cpu match cancelled mid-match");
  }
  return st.count;
}

}  // namespace fast
