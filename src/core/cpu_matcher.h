#ifndef FAST_CORE_CPU_MATCHER_H_
#define FAST_CORE_CPU_MATCHER_H_

// Host-side backtracking over a CST (Sec. V-C: "the host side uses the basic
// backtracking subgraph matching algorithm to process CST"). Used for the
// CPU work share in FAST-SHARE and as the reference enumerator in tests.

#include <cstdint>

#include "cst/cst.h"
#include "core/result_collector.h"
#include "query/matching_order.h"
#include "util/cancel.h"
#include "util/status.h"

namespace fast {

// Enumerates all embeddings contained in `cst` following `order`.
// Returns the number of embeddings found. A non-null `cancel` token is
// probed every few hundred candidate expansions; a tripped token unwinds
// the backtracking and returns DEADLINE_EXCEEDED.
StatusOr<std::uint64_t> MatchCstOnCpu(const Cst& cst, const MatchingOrder& order,
                                      ResultCollector* collector,
                                      const CancelToken* cancel = nullptr);

}  // namespace fast

#endif  // FAST_CORE_CPU_MATCHER_H_
