#include "core/driver.h"

#include <algorithm>

#include "core/cpu_matcher.h"
#include "cst/cst_serialize.h"
#include "cst/workload.h"
#include "util/logging.h"
#include "util/timer.h"

namespace fast {

PartitionConfig DerivePartitionConfig(const FpgaConfig& fpga, std::size_t query_size,
                                      const PartitionConfig& requested) {
  PartitionConfig config = requested;
  if (config.max_size_words == 0) {
    const std::size_t buffer_words = PartialBufferWords(fpga, query_size);
    // Leave 10% headroom for control logic and FIFOs.
    const auto budget = static_cast<std::size_t>(
        0.9 * static_cast<double>(fpga.bram_words));
    config.max_size_words =
        budget > buffer_words ? budget - buffer_words : fpga.bram_words / 2;
  }
  if (config.max_degree == 0) config.max_degree = fpga.port_max;
  return config;
}

StatusOr<FastRunResult> RunFast(const QueryGraph& q, const Graph& g,
                                const FastRunOptions& options) {
  // Reject invalid configs before paying for order computation and CST
  // construction (RunFastWithCst re-checks for its direct callers).
  FAST_RETURN_IF_ERROR(options.fpga.Validate());
  if (options.cpu_share_delta < 0.0 || options.cpu_share_delta >= 1.0) {
    return Status::InvalidArgument("cpu_share_delta must be in [0, 1)");
  }

  // --- Matching order. ---
  MatchingOrder order;
  if (options.explicit_order.has_value()) {
    FAST_RETURN_IF_ERROR(ValidateOrder(q, options.explicit_order->order));
    order = *options.explicit_order;
  } else {
    FAST_ASSIGN_OR_RETURN(order, ComputeMatchingOrder(q, g, options.order_policy));
  }

  // --- (1) CST construction. ---
  // Probe between phases: a deadline that expired during order computation
  // skips the (often dominant) CST build entirely.
  if (options.cancel != nullptr && options.cancel->Cancelled()) {
    return Status::DeadlineExceeded("run cancelled before CST build");
  }
  Timer build_timer;
  FAST_ASSIGN_OR_RETURN(Cst cst, BuildCst(q, g, order.root, options.cst_build));
  return RunFastWithCst(cst, order, options, build_timer.ElapsedSeconds());
}

StatusOr<FastRunResult> RunFastWithCst(const Cst& cst, const MatchingOrder& order,
                                       const FastRunOptions& options,
                                       double build_seconds) {
  FAST_RETURN_IF_ERROR(options.fpga.Validate());
  if (options.cpu_share_delta < 0.0 || options.cpu_share_delta >= 1.0) {
    return Status::InvalidArgument("cpu_share_delta must be in [0, 1)");
  }

  const QueryGraph& q = cst.layout().query();
  FastRunResult result;
  result.order = order;
  result.build_seconds = build_seconds;

  ResultCollector collector(options.store_limit);
  if (options.embedding_callback) collector.SetCallback(options.embedding_callback);

  // --- FAST-DRAM strawman: no partitioning, CST stays in card DRAM. ---
  if (options.variant == FastVariant::kDram) {
    obs::ScopedSpan match_span(options.trace, obs::Span::kMatch);
    Timer t;
    FAST_ASSIGN_OR_RETURN(KernelRunResult run,
                          RunKernel(cst, result.order, options.fpga, &collector,
                                    /*round_trace=*/nullptr, options.cancel));
    (void)t;
    result.counters = run.counters;
    result.embeddings = run.embeddings;
    result.kernel_seconds = SimulatedKernelSeconds(
        options.fpga, FastVariant::kDram, run, cst.SizeWords(), q.NumVertices());
    result.dma_bytes = CstWireBytes(cst);
    result.pcie_seconds =
        options.fpga.PcieSeconds(static_cast<double>(result.dma_bytes));
    if (options.trace != nullptr) {
      options.trace->RecordSimulated(obs::Span::kDma, result.pcie_seconds);
      options.trace->RecordSimulated(obs::Span::kKernel, result.kernel_seconds);
    }
    result.partition_stats.num_partitions = 1;
    result.partition_stats.total_size_words = cst.SizeWords();
    result.fpga_partitions = 1;
    result.total_seconds =
        result.build_seconds + result.pcie_seconds + result.kernel_seconds;
    result.sample_embeddings = collector.stored();
    return result;
  }

  // One wall `match` span covers partitioning, simulated-device matching,
  // and the CPU share — host time, as opposed to the simulated dma/kernel
  // durations recorded separately below.
  obs::ScopedSpan match_span(options.trace, obs::Span::kMatch);

  // --- (2)+(3)+(4) Partition, transfer, and match; (5) CPU share. ---
  const PartitionConfig pconfig =
      DerivePartitionConfig(options.fpga, q.NumVertices(), options.partition);

  double w_cpu = 0.0;    // W_C: estimated workload kept on the host
  double w_fpga = 0.0;   // W_F: estimated workload sent to the card
  std::vector<Cst> cpu_queue;

  Timer partition_timer;
  double kernel_seconds = 0.0;
  double pcie_seconds = 0.0;
  const auto fpga_sink = [&](Cst part) -> Status {
    w_fpga += EstimateWorkload(part);
    FAST_ASSIGN_OR_RETURN(KernelRunResult run,
                          RunKernel(part, result.order, options.fpga, &collector,
                                    /*round_trace=*/nullptr, options.cancel));
    result.counters += run.counters;
    result.embeddings += run.embeddings;
    kernel_seconds += SimulatedKernelSeconds(options.fpga, options.variant, run,
                                             part.SizeWords(), q.NumVertices());
    const std::uint64_t part_bytes = CstWireBytes(part);
    result.dma_bytes += part_bytes;
    pcie_seconds += options.fpga.PcieSeconds(static_cast<double>(part_bytes));
    ++result.fpga_partitions;
    return Status::OK();
  };
  Status sink_status;
  if (options.cpu_share_delta > 0.0) {
    // Alg. 3: the host keeps a CST while its share of the total estimated
    // workload stays below δ. Crucially this is consulted *during*
    // partitioning, so the host can absorb oversized CSTs instead of
    // recursing on them (Sec. VII-B's FAST-SHARE saving).
    const auto try_cpu = [&](Cst& part) -> bool {
      const double w = EstimateWorkload(part);
      if (w_cpu + w >= options.cpu_share_delta * (w_cpu + w_fpga + w)) {
        return false;
      }
      w_cpu += w;
      cpu_queue.push_back(std::move(part));
      return true;
    };
    sink_status = PartitionCstWithOffload(cst, result.order, pconfig, fpga_sink,
                                          try_cpu, &result.partition_stats);
  } else {
    sink_status =
        PartitionCst(cst, result.order, pconfig, fpga_sink, &result.partition_stats);
  }
  FAST_RETURN_IF_ERROR(sink_status);
  result.partition_seconds = partition_timer.ElapsedSeconds();
  result.kernel_seconds = kernel_seconds;
  result.pcie_seconds = pcie_seconds;

  // --- (5) CPU share runs after partitioning completes (Sec. V-C). ---
  Timer share_timer;
  for (const Cst& part : cpu_queue) {
    FAST_ASSIGN_OR_RETURN(std::uint64_t found,
                          MatchCstOnCpu(part, result.order, &collector,
                                        options.cancel));
    result.embeddings += found;
  }
  result.cpu_partitions = cpu_queue.size();
  result.cpu_share_seconds = cpu_queue.empty() ? 0.0 : share_timer.ElapsedSeconds();

  const double w_total = w_cpu + w_fpga;
  result.cpu_share_fraction = w_total > 0.0 ? w_cpu / w_total : 0.0;

  if (options.trace != nullptr) {
    options.trace->RecordSimulated(obs::Span::kDma, result.pcie_seconds);
    options.trace->RecordSimulated(obs::Span::kKernel, result.kernel_seconds);
  }

  // --- (6) Composition: the card overlaps host partitioning; the CPU share
  // extends the host path. ---
  result.total_seconds =
      result.build_seconds +
      std::max(result.partition_seconds + result.cpu_share_seconds,
               result.pcie_seconds + result.kernel_seconds);
  result.sample_embeddings = collector.stored();
  return result;
}

StatusOr<MultiFpgaResult> RunMultiFpga(const QueryGraph& q, const Graph& g,
                                       std::size_t num_devices,
                                       const FastRunOptions& options) {
  if (num_devices == 0) {
    return Status::InvalidArgument("num_devices must be positive");
  }
  FAST_RETURN_IF_ERROR(options.fpga.Validate());

  MultiFpgaResult result;
  FAST_ASSIGN_OR_RETURN(MatchingOrder order,
                        ComputeMatchingOrder(q, g, options.order_policy));

  Timer build_timer;
  FAST_ASSIGN_OR_RETURN(Cst cst, BuildCst(q, g, order.root, options.cst_build));
  result.build_seconds = build_timer.ElapsedSeconds();

  const PartitionConfig pconfig =
      DerivePartitionConfig(options.fpga, q.NumVertices(), options.partition);

  result.device_seconds.assign(num_devices, 0.0);
  std::vector<double> device_workload(num_devices, 0.0);

  Timer partition_timer;
  Status s = PartitionCst(
      cst, order, pconfig,
      [&](Cst part) -> Status {
        // Least-estimated-workload device gets the partition (Sec. VII-E).
        const std::size_t device =
            std::min_element(device_workload.begin(), device_workload.end()) -
            device_workload.begin();
        device_workload[device] += EstimateWorkload(part);
        FAST_ASSIGN_OR_RETURN(KernelRunResult run,
                              RunKernel(part, order, options.fpga, nullptr,
                                        /*round_trace=*/nullptr, options.cancel));
        result.embeddings += run.embeddings;
        result.device_seconds[device] +=
            SimulatedKernelSeconds(options.fpga, options.variant, run,
                                   part.SizeWords(), q.NumVertices()) +
            options.fpga.PcieSeconds(static_cast<double>(CstWireBytes(part)));
        ++result.num_partitions;
        return Status::OK();
      },
      nullptr);
  FAST_RETURN_IF_ERROR(s);
  result.partition_seconds = partition_timer.ElapsedSeconds();

  const double busiest =
      result.device_seconds.empty()
          ? 0.0
          : *std::max_element(result.device_seconds.begin(), result.device_seconds.end());
  result.makespan_seconds =
      result.build_seconds + std::max(result.partition_seconds, busiest);
  return result;
}

}  // namespace fast
