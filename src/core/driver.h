#ifndef FAST_CORE_DRIVER_H_
#define FAST_CORE_DRIVER_H_

// Host-side driver: the end-to-end CPU-FPGA flow of Fig. 2.
//
//  (1) build the CST on the CPU (Alg. 1)
//  (2) partition it to fit BRAM (Alg. 2)
//  (3) stream partitions over PCIe to card DRAM
//  (4) the kernel loads each partition into BRAM and matches it (Algs. 4-8)
//  (5) optionally keep a δ-share of the workload on the CPU (Alg. 3)
//  (6) collect results
//
// Host-side times (CST construction, partitioning, CPU share) are measured
// wall-clock; kernel and PCIe times are simulated by the device model. The
// paper overlaps partitioning with kernel execution, and the CPU share runs
// after partitioning finishes, so:
//
//   total = build + max(partition + cpu_share, pcie + kernel)

#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "cst/cst.h"
#include "cst/partition.h"
#include "core/kernel.h"
#include "core/result_collector.h"
#include "fpga/config.h"
#include "fpga/cycle_model.h"
#include "ldbc/ldbc.h"
#include "obs/trace.h"
#include "query/matching_order.h"
#include "util/cancel.h"
#include "util/status.h"

namespace fast {

struct FastRunOptions {
  FastVariant variant = FastVariant::kSep;

  // FAST-SHARE: let the CPU take up to a δ fraction of the estimated
  // workload (Alg. 3). delta = 0 disables sharing.
  double cpu_share_delta = 0.0;

  FpgaConfig fpga = AlveoU200Config();

  // Partition thresholds; if max_size_words is 0 they are derived from the
  // device: δ_S = BRAM words minus the partial-result buffer, δ_D = Port_max.
  PartitionConfig partition{.max_size_words = 0, .max_degree = 0, .fixed_k = 0};

  OrderPolicy order_policy = OrderPolicy::kPathBased;
  // Overrides order_policy when set (Fig. 15 sweeps).
  std::optional<MatchingOrder> explicit_order;

  CstBuildOptions cst_build;

  // Store up to this many embeddings in the result (0 = count only).
  std::size_t store_limit = 0;

  // Streaming per-embedding callback, invoked from the matching thread as
  // results are found (before storage). Independent of store_limit.
  std::function<void(std::span<const VertexId>)> embedding_callback;

  // Cooperative cancellation (util/cancel.h): probed between pipeline phases
  // and inside the matching loops (once per kernel round, every few hundred
  // CPU-side expansions). A tripped token makes the run return
  // DEADLINE_EXCEEDED instead of finishing. Non-owning; the caller keeps the
  // token alive for the duration of the run. nullptr = never cancelled.
  const CancelToken* cancel = nullptr;

  // Optional per-request span recorder (obs/trace.h). RunFastWithCst records
  // a wall `match` span over partition + matching + CPU share, plus the
  // simulated `dma`/`kernel` durations from the device model. The service
  // layers record the surrounding spans (queue, snapshot, cst_build, remap).
  // Non-owning; single-threaded like the run itself. nullptr = no tracing.
  obs::RequestTrace* trace = nullptr;
};

struct FastRunResult {
  std::uint64_t embeddings = 0;
  MatchingOrder order;

  PartitionStats partition_stats;
  KernelCounters counters;

  // Measured host times (seconds).
  double build_seconds = 0;
  double partition_seconds = 0;
  double cpu_share_seconds = 0;

  // Simulated device times (seconds).
  double kernel_seconds = 0;
  double pcie_seconds = 0;
  // Simulated bytes this run pushed across PCIe. In shared-device mode this
  // is the dedup-aware attribution: a query whose CST image was deduplicated
  // against a round-mate's transfer is charged only its share of the round's
  // fixed transaction overhead. Feeds per-tenant accounting (obs/accounting.h).
  std::uint64_t dma_bytes = 0;

  // Composed end-to-end time (see header comment).
  double total_seconds = 0;

  // Achieved CPU share W_C / (W_C + W_F).
  double cpu_share_fraction = 0;
  std::size_t cpu_partitions = 0;
  std::size_t fpga_partitions = 0;

  // First `store_limit` embeddings, if requested.
  std::vector<Embedding> sample_embeddings;
};

// Runs the full FAST pipeline for query q over data graph g.
//
// Reentrancy: RunFast keeps all state on the stack (no globals, no shared
// mutable caches), so concurrent calls over the same immutable Graph are
// safe. The service layer (src/service/) relies on this.
StatusOr<FastRunResult> RunFast(const QueryGraph& q, const Graph& g,
                                const FastRunOptions& options = {});

// Runs steps (2)-(6) of the pipeline from a prebuilt CST and matching order,
// skipping order computation and CST construction. This is the cache-hit
// path of the service layer: a deserialized CST image re-enters the pipeline
// here. `order` must be tree-connected with order.root equal to the CST's
// BFS-tree root. `build_seconds` is reported in the result (pass the
// measured construction time, or 0 when the CST came from a cache).
// `options.explicit_order` and `options.order_policy` are ignored.
//
// This call simulates a device PRIVATE to the request: partitions match
// inline on the calling thread and every call pays its own PCIe transfers.
// device/device_executor.h's RunCstOnDevice is the shared-device sibling —
// the same steps, with partitions batched onto one executor across
// concurrent requests.
StatusOr<FastRunResult> RunFastWithCst(const Cst& cst, const MatchingOrder& order,
                                       const FastRunOptions& options = {},
                                       double build_seconds = 0.0);

// Effective partition thresholds for a device (δ_S, δ_D derivation).
PartitionConfig DerivePartitionConfig(const FpgaConfig& fpga, std::size_t query_size,
                                      const PartitionConfig& requested);

// Multi-FPGA extension (Sec. VII-E): partitions are assigned to the device
// with the minimum accumulated estimated workload; the makespan composes with
// the shared host-side build/partition phases.
struct MultiFpgaResult {
  std::uint64_t embeddings = 0;
  std::size_t num_partitions = 0;
  std::vector<double> device_seconds;  // simulated busy time per device
  double makespan_seconds = 0;
  double build_seconds = 0;
  double partition_seconds = 0;
};

StatusOr<MultiFpgaResult> RunMultiFpga(const QueryGraph& q, const Graph& g,
                                       std::size_t num_devices,
                                       const FastRunOptions& options = {});

}  // namespace fast

#endif  // FAST_CORE_DRIVER_H_
