#include "core/explain.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/driver.h"
#include "cst/workload.h"

namespace fast {

std::string QueryPlan::ToString() const {
  std::ostringstream out;
  out << "QueryPlan (order policy root=u" << order.root << ")\n";
  out << "  order:";
  for (VertexId u : order.order) out << " u" << u;
  out << "\n";
  for (const auto& s : steps) {
    out << "  u" << s.query_vertex << ": label=" << s.label
        << " candidates=" << s.candidates << " ldf_estimate=" << s.ldf_estimate;
    if (s.tree_parent != kInvalidVertex) out << " parent=u" << s.tree_parent;
    if (s.backward_non_tree > 0) {
      out << " edge_checks=" << s.backward_non_tree;
    }
    out << "\n";
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  CST: %zu words (max adjacency %u), workload ~%.3g\n", cst_words,
                cst_max_degree, workload_estimate);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  device: delta_S=%zu words, delta_D=%u -> %s (>= %zu partitions)\n",
                delta_s_words, delta_d, fits_bram ? "fits BRAM" : "needs partitioning",
                predicted_partitions);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "  predicted cycles: BASIC %.3g, TASK %.3g, SEP %.3g\n",
                predicted_cycles_basic, predicted_cycles_task, predicted_cycles_sep);
  out << buf;
  return out.str();
}

StatusOr<QueryPlan> ExplainQuery(const QueryGraph& q, const Graph& g,
                                 const FpgaConfig& fpga, OrderPolicy policy) {
  FAST_RETURN_IF_ERROR(fpga.Validate());
  QueryPlan plan;
  FAST_ASSIGN_OR_RETURN(plan.order, ComputeMatchingOrder(q, g, policy));
  FAST_ASSIGN_OR_RETURN(Cst cst, BuildCst(q, g, plan.order.root));

  const BfsTree& tree = cst.layout().tree();
  const auto estimates = EstimateCandidateCounts(q, g);
  std::vector<int> order_pos(q.NumVertices(), -1);
  for (std::size_t i = 0; i < plan.order.order.size(); ++i) {
    order_pos[plan.order.order[i]] = static_cast<int>(i);
  }
  for (std::size_t i = 0; i < plan.order.order.size(); ++i) {
    const VertexId u = plan.order.order[i];
    VertexPlan step;
    step.query_vertex = u;
    step.label = q.label(u);
    step.candidates = cst.NumCandidates(u);
    step.ldf_estimate = estimates[u];
    step.tree_parent = tree.parent(u);
    for (VertexId un : tree.non_tree_neighbors(u)) {
      if (order_pos[un] < static_cast<int>(i)) ++step.backward_non_tree;
    }
    plan.steps.push_back(step);
  }

  plan.cst_words = cst.SizeWords();
  plan.cst_max_degree = cst.MaxAdjacencyDegree();
  plan.workload_estimate = EstimateWorkload(cst);

  const PartitionConfig pconfig =
      DerivePartitionConfig(fpga, q.NumVertices(), {0, 0, 0});
  plan.delta_s_words = pconfig.max_size_words;
  plan.delta_d = pconfig.max_degree;
  plan.fits_bram = plan.cst_words <= pconfig.max_size_words &&
                   plan.cst_max_degree <= pconfig.max_degree;
  plan.predicted_partitions =
      plan.fits_bram
          ? 1
          : static_cast<std::size_t>(std::max(
                std::ceil(static_cast<double>(plan.cst_words) /
                          static_cast<double>(pconfig.max_size_words)),
                std::ceil(static_cast<double>(plan.cst_max_degree) /
                          static_cast<double>(pconfig.max_degree))));

  // Predicted cycles: approximate N ~ W_CST (every tree embedding becomes a
  // partial result at the deepest level, which dominates for skewed data)
  // and M ~ N * average backward groups.
  double groups = 0;
  for (const auto& s : plan.steps) groups += static_cast<double>(s.backward_non_tree);
  KernelCounters proxy;
  proxy.partial_results = static_cast<std::uint64_t>(plan.workload_estimate);
  proxy.visited_tasks = proxy.partial_results;
  proxy.edge_tasks = static_cast<std::uint64_t>(
      plan.workload_estimate * groups /
      std::max<double>(1.0, static_cast<double>(plan.steps.size())));
  proxy.rounds =
      proxy.partial_results / std::max<std::uint32_t>(1, fpga.max_new_partials) + 1;
  plan.predicted_cycles_basic = KernelCycles(fpga, FastVariant::kBasic, proxy);
  plan.predicted_cycles_task = KernelCycles(fpga, FastVariant::kTask, proxy);
  plan.predicted_cycles_sep = KernelCycles(fpga, FastVariant::kSep, proxy);
  return plan;
}

}  // namespace fast
