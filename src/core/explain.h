#ifndef FAST_CORE_EXPLAIN_H_
#define FAST_CORE_EXPLAIN_H_

// Query-plan inspection ("EXPLAIN") for the FAST pipeline.
//
// The paper positions FAST as an accelerator for graph databases and RDF
// engines (Sec. I); this module produces the planning-time information such
// an integration needs *without* running the query: the chosen matching
// order, per-vertex candidate statistics, CST size against the device
// budgets, the workload estimate W_CST, and the predicted kernel cycles per
// variant under the analytic model.

#include <cstdint>
#include <string>
#include <vector>

#include "cst/cst.h"
#include "cst/partition.h"
#include "fpga/config.h"
#include "fpga/cycle_model.h"
#include "query/matching_order.h"
#include "util/status.h"

namespace fast {

struct VertexPlan {
  VertexId query_vertex = 0;
  Label label = 0;
  std::size_t candidates = 0;          // |C(u)| after refinement
  double ldf_estimate = 0;             // label-degree-filter estimate
  VertexId tree_parent = kInvalidVertex;
  std::size_t backward_non_tree = 0;   // edge-validation groups at this step
};

struct QueryPlan {
  MatchingOrder order;
  std::vector<VertexPlan> steps;       // in matching order

  // CST statistics.
  std::size_t cst_words = 0;
  std::uint32_t cst_max_degree = 0;
  double workload_estimate = 0;        // W_CST (Sec. V-C)

  // Device fit.
  std::size_t delta_s_words = 0;       // effective δ_S
  std::uint32_t delta_d = 0;           // effective δ_D
  bool fits_bram = false;
  std::size_t predicted_partitions = 0;  // ceil-based lower bound when not

  // Predicted matching cycles per variant under the analytic model, using
  // W_CST as the partial-result count proxy.
  double predicted_cycles_basic = 0;
  double predicted_cycles_task = 0;
  double predicted_cycles_sep = 0;

  // Human-readable multi-line rendering.
  std::string ToString() const;
};

// Plans `q` over `g` for `fpga` without enumerating results. The CST is
// built (that cost is inherent to planning, as in the paper where the host
// always constructs it), but no matching runs.
StatusOr<QueryPlan> ExplainQuery(const QueryGraph& q, const Graph& g,
                                 const FpgaConfig& fpga = AlveoU200Config(),
                                 OrderPolicy policy = OrderPolicy::kPathBased);

}  // namespace fast

#endif  // FAST_CORE_EXPLAIN_H_
