#include "core/kernel.h"

#include <algorithm>

#include "util/logging.h"

namespace fast {

namespace {

// Static per-order-position execution plan.
struct OrderStep {
  VertexId u = kInvalidVertex;
  int parent_order_pos = -1;  // position of u's t_q parent in the order
  // Backward non-tree neighbors of u: (query vertex, order position). These
  // are the edge-validation tasks t_n each new p_o spawns (Alg. 5 lines
  // 10-12); forward non-tree edges are checked when the later endpoint maps.
  std::vector<std::pair<VertexId, int>> backward_non_tree;
};

// One buffered partial result: candidate positions and the corresponding
// data vertices for order positions [0, depth), plus a resume cursor into
// the candidate list currently being expanded (Sec. VI-B: when |C(u)| exceeds
// the round budget, the remaining candidates are mapped in a later round).
struct LevelBuffer {
  // Flat storage; stride = 2 * n + 1 (positions, data vertices, cursor).
  std::vector<std::uint32_t> flat;
  std::size_t stride = 0;

  std::size_t Size() const { return stride == 0 ? 0 : flat.size() / stride; }
  bool Empty() const { return flat.empty(); }
  std::uint32_t* Back() { return flat.data() + flat.size() - stride; }
  void PopBack() { flat.resize(flat.size() - stride); }
};

}  // namespace

StatusOr<KernelRunResult> RunKernel(const Cst& cst, const MatchingOrder& order,
                                    const FpgaConfig& config,
                                    ResultCollector* collector,
                                    std::vector<RoundWork>* round_trace,
                                    const CancelToken* cancel) {
  FAST_RETURN_IF_ERROR(config.Validate());
  const std::size_t n = cst.NumQueryVertices();
  if (order.order.size() != n) {
    return Status::InvalidArgument("order arity does not match CST");
  }
  const BfsTree& tree = cst.layout().tree();
  if (order.order.empty() || order.order[0] != tree.root()) {
    return Status::InvalidArgument("order root does not match CST root");
  }

  // Build the per-step plan.
  std::vector<int> order_pos(n, -1);
  for (std::size_t i = 0; i < n; ++i) order_pos[order.order[i]] = static_cast<int>(i);
  std::vector<OrderStep> steps(n);
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId u = order.order[i];
    steps[i].u = u;
    if (i > 0) {
      const VertexId up = tree.parent(u);
      if (up == kInvalidVertex || order_pos[up] >= static_cast<int>(i)) {
        return Status::InvalidArgument("order is not tree-connected");
      }
      steps[i].parent_order_pos = order_pos[up];
    }
    for (VertexId un : tree.non_tree_neighbors(u)) {
      if (order_pos[un] < static_cast<int>(i)) {
        steps[i].backward_non_tree.emplace_back(un, order_pos[un]);
      }
    }
  }

  const std::size_t stride = 2 * n + 1;
  const std::uint32_t no = config.max_new_partials;
  // Levels 1..n-1 hold partial results with that many mapped vertices.
  std::vector<LevelBuffer> levels(n);
  for (auto& l : levels) l.stride = stride;

  KernelRunResult result;
  KernelCounters& c = result.counters;

  const auto root_cands = cst.Candidates(tree.root());
  std::size_t root_cursor = 0;
  std::vector<VertexId> embedding(n);

  // Temporary row for the expanded partial result.
  std::vector<std::uint32_t> row(stride);

  while (true) {
    // One probe per round: each round is bounded by N_o partials, so an
    // expired deadline aborts within one batch of work.
    if (cancel != nullptr && cancel->Cancelled()) {
      return Status::DeadlineExceeded("kernel run cancelled mid-match");
    }
    // Refill level 1 from root candidates when the buffer drains (Alg. 4
    // lines 2-3, batched to respect the N_o buffer bound).
    bool any = false;
    for (const auto& l : levels) any |= !l.Empty();
    if (!any) {
      if (root_cursor >= root_cands.size()) break;
      const std::size_t take =
          std::min<std::size_t>(no, root_cands.size() - root_cursor);
      for (std::size_t i = 0; i < take; ++i) {
        row.assign(stride, 0);
        row[0] = static_cast<std::uint32_t>(root_cursor + i);  // position
        row[n] = root_cands[root_cursor + i];                  // data vertex
        row[2 * n] = 0;                                        // cursor
        levels[1].flat.insert(levels[1].flat.end(), row.begin(), row.end());
      }
      root_cursor += take;
    }

    // Pick the deepest non-empty level (Sec. VI-B's overflow-avoidance rule).
    std::size_t depth = 0;
    for (std::size_t d = n; d-- > 1;) {
      if (!levels[d].Empty()) {
        depth = d;
        break;
      }
    }
    if (depth == 0) continue;  // only root refill happened; loop again

    ++c.rounds;
    const OrderStep& step = steps[depth];
    const VertexId u = step.u;
    std::uint32_t produced = 0;

    while (produced < no && !levels[depth].Empty()) {
      std::uint32_t* pi = levels[depth].Back();
      // Candidate list of u given this partial result: the CST adjacency of
      // the mapped parent candidate (Alg. 5 line 5).
      const VertexId up = order.order[static_cast<std::size_t>(step.parent_order_pos)];
      const auto cands =
          cst.Neighbors(up, u, pi[static_cast<std::size_t>(step.parent_order_pos)]);
      std::uint32_t cursor = pi[2 * n];
      const std::uint32_t budget = no - produced;
      const auto remaining = static_cast<std::uint32_t>(cands.size()) - cursor;
      const std::uint32_t take = std::min(budget, remaining);

      for (std::uint32_t k = 0; k < take; ++k) {
        const std::uint32_t t = cands[cursor + k];
        const VertexId v = cst.Candidate(u, t);
        ++c.partial_results;
        ++c.visited_tasks;
        c.edge_tasks += step.backward_non_tree.size();

        // Visited validation (Alg. 6): v must differ from every mapped data
        // vertex; the FPGA compares against all of them in parallel.
        bool valid = true;
        for (std::size_t j = 0; j < depth; ++j) {
          if (pi[n + j] == v) {
            valid = false;
            break;
          }
        }
        // Edge validation (Alg. 7): v must be CST-adjacent to the mapping of
        // every backward non-tree neighbor of u.
        if (valid) {
          for (const auto& [un, jpos] : step.backward_non_tree) {
            if (!cst.HasCstEdge(u, t, un,
                                pi[static_cast<std::size_t>(jpos)])) {
              valid = false;
              break;
            }
          }
        }
        if (!valid) continue;

        // Synchronizer (Alg. 8): complete results are reported, partial ones
        // go back to the buffer one level deeper.
        if (depth + 1 == n) {
          ++c.results;
          ++result.embeddings;
          if (collector != nullptr) {
            for (std::size_t j = 0; j < depth; ++j) {
              embedding[order.order[j]] = pi[n + j];
            }
            embedding[u] = v;
            collector->OnEmbedding(embedding);
          }
        } else {
          std::copy(pi, pi + n, row.begin());
          std::copy(pi + n, pi + 2 * n, row.begin() + static_cast<std::ptrdiff_t>(n));
          row[depth] = t;
          row[n + depth] = v;
          row[2 * n] = 0;
          levels[depth + 1].flat.insert(levels[depth + 1].flat.end(), row.begin(),
                                        row.end());
        }
      }
      produced += take;
      cursor += take;
      if (cursor == cands.size()) {
        levels[depth].PopBack();
      } else {
        pi[2 * n] = cursor;  // resume later rounds from here
      }
    }

    std::uint64_t occupancy = 0;
    for (const auto& l : levels) occupancy += l.Size();
    c.max_buffer_entries = std::max(c.max_buffer_entries, occupancy);

    if (round_trace != nullptr && produced > 0) {
      round_trace->push_back(
          {produced, static_cast<std::uint16_t>(step.backward_non_tree.size())});
    }
  }

  return result;
}

double SimulatedKernelSeconds(const FpgaConfig& config, FastVariant variant,
                              const KernelRunResult& run, std::size_t cst_words,
                              std::size_t query_size) {
  double cycles = KernelCycles(config, variant, run.counters) +
                  ResultFlushCycles(config, run.embeddings, query_size);
  if (variant != FastVariant::kDram) {
    cycles += CstLoadCycles(config, cst_words);
  }
  return config.CyclesToSeconds(cycles);
}

}  // namespace fast
