#ifndef FAST_CORE_KERNEL_H_
#define FAST_CORE_KERNEL_H_

// The FAST matching kernel (paper Algs. 4-8, Sec. VI).
//
// The kernel decomposes backtracking into four data-parallel stages --
// Generator, Visited Validator, Edge Validator, Synchronizer -- and pushes
// batches of up to N_o partial results through them per round, which is what
// lets every stage run as a fully pipelined loop on the FPGA. This module
// executes those stages *functionally* (bit-exact embeddings) while counting
// the workload quantities N, M, rounds and buffer occupancy that the cycle
// model (fpga/cycle_model.h) converts into simulated kernel time per variant.
//
// The intermediate-result buffer P is BRAM-only: partial results are grouped
// by depth and the deepest level is always expanded first, which bounds every
// level at N_o entries and the whole buffer at (|V(q)|-1)*N_o (Sec. VI-B).

#include <cstdint>

#include "cst/cst.h"
#include "core/result_collector.h"
#include "fpga/config.h"
#include "fpga/cycle_model.h"
#include "fpga/pipeline_sim.h"
#include "query/matching_order.h"
#include "util/cancel.h"
#include "util/status.h"

namespace fast {

struct KernelRunResult {
  KernelCounters counters;
  std::uint64_t embeddings = 0;
};

// Runs the matching kernel over one CST partition.
//
// `order` must be a tree-connected matching order whose root equals the CST's
// BFS-tree root. Results are reported to `collector` (may be null to count
// only within the returned counters). When `round_trace` is non-null, one
// RoundWork entry is appended per Generator round, suitable for the
// cycle-stepped pipeline simulation (fpga/pipeline_sim.h). A non-null
// `cancel` token is probed once per Generator round; a tripped token aborts
// the run with DEADLINE_EXCEEDED (partial counters are discarded).
StatusOr<KernelRunResult> RunKernel(const Cst& cst, const MatchingOrder& order,
                                    const FpgaConfig& config,
                                    ResultCollector* collector,
                                    std::vector<RoundWork>* round_trace = nullptr,
                                    const CancelToken* cancel = nullptr);

// Simulated kernel seconds for one partition under `variant`: CST DMA load
// (absent for FAST-DRAM) + matching cycles (Eqs. 1-4) + result flush.
double SimulatedKernelSeconds(const FpgaConfig& config, FastVariant variant,
                              const KernelRunResult& run, std::size_t cst_words,
                              std::size_t query_size);

}  // namespace fast

#endif  // FAST_CORE_KERNEL_H_
