#ifndef FAST_CORE_RESULT_COLLECTOR_H_
#define FAST_CORE_RESULT_COLLECTOR_H_

// Embedding sink shared by the FPGA kernel, the CPU matcher and the
// baselines. Subgraph matching on LDBC-scale inputs can produce billions of
// embeddings, so the default is count-only; callers may additionally store
// the first `store_limit` embeddings (tests, examples) or install a callback.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace fast {

// An embedding maps query vertex u -> mapping[u] (data vertex).
using Embedding = std::vector<VertexId>;

class ResultCollector {
 public:
  // store_limit: how many embeddings to retain (0 = count only).
  explicit ResultCollector(std::size_t store_limit = 0)
      : store_limit_(store_limit) {}

  // Optional per-embedding callback (invoked before storage).
  void SetCallback(std::function<void(std::span<const VertexId>)> cb) {
    callback_ = std::move(cb);
  }

  void OnEmbedding(std::span<const VertexId> mapping) {
    ++count_;
    if (callback_) callback_(mapping);
    if (stored_.size() < store_limit_) {
      stored_.emplace_back(mapping.begin(), mapping.end());
    }
  }

  std::uint64_t count() const { return count_; }
  const std::vector<Embedding>& stored() const { return stored_; }

  // Merges counts and stored embeddings from another collector (used to join
  // per-thread collectors, e.g. CECI-8).
  void Merge(const ResultCollector& other) {
    count_ += other.count_;
    for (const auto& e : other.stored_) {
      if (stored_.size() >= store_limit_) break;
      stored_.push_back(e);
    }
  }

 private:
  std::size_t store_limit_;
  std::uint64_t count_ = 0;
  std::vector<Embedding> stored_;
  std::function<void(std::span<const VertexId>)> callback_;
};

}  // namespace fast

#endif  // FAST_CORE_RESULT_COLLECTOR_H_
