#include "cst/cst.h"

#include <algorithm>
#include <cstdio>

#include "obs/profiler.h"
#include "simd/bitset.h"
#include "simd/intersect.h"
#include "util/logging.h"
#include "util/stats.h"

namespace fast {

std::shared_ptr<const CstLayout> CstLayout::Create(const QueryGraph& q, VertexId root) {
  auto layout = std::shared_ptr<CstLayout>(new CstLayout());
  layout->query_ = q;
  layout->tree_ = BfsTree::Build(q, root);
  const std::size_t n = q.NumVertices();
  layout->n_ = n;
  layout->slot_of_.assign(n * n, -1);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId w : q.neighbors(u)) {
      if (layout->slot_of_[u * n + w] >= 0) continue;
      layout->slot_of_[u * n + w] = static_cast<int>(layout->edges_.size());
      const bool tree =
          layout->tree_.parent(w) == u || layout->tree_.parent(u) == w;
      layout->edges_.push_back({u, w, tree});
    }
  }
  return layout;
}

std::span<const std::uint32_t> Cst::Neighbors(VertexId u, VertexId u_prime,
                                              std::uint32_t src_pos) const {
  const int slot = layout_->SlotOf(u, u_prime);
  FAST_DCHECK(slot >= 0);
  return adj_[slot].Neighbors(src_pos);
}

bool Cst::HasCstEdge(VertexId u, std::uint32_t src_pos, VertexId u_prime,
                     std::uint32_t dst_pos) const {
  const auto nbrs = Neighbors(u, u_prime, src_pos);
  return std::binary_search(nbrs.begin(), nbrs.end(), dst_pos);
}

std::size_t Cst::SizeWords() const {
  std::size_t words = 0;
  for (const auto& c : candidates_) words += c.size();
  for (const auto& e : adj_) words += e.offsets.size() + e.targets.size();
  return words;
}

std::uint32_t Cst::MaxAdjacencyDegree() const {
  std::uint32_t max_deg = 0;
  for (const auto& e : adj_) {
    for (std::size_t i = 0; i + 1 < e.offsets.size(); ++i) {
      max_deg = std::max(max_deg, e.offsets[i + 1] - e.offsets[i]);
    }
  }
  return max_deg;
}

std::size_t Cst::TotalCandidates() const {
  std::size_t total = 0;
  for (const auto& c : candidates_) total += c.size();
  return total;
}

Status Cst::Validate() const {
  if (layout_ == nullptr) return Status::FailedPrecondition("CST has no layout");
  const std::size_t n = NumQueryVertices();
  if (n != layout_->NumQueryVertices()) {
    return Status::Internal("candidate-set count does not match layout");
  }
  if (adj_.size() != layout_->edges().size()) {
    return Status::Internal("edge-list count does not match layout");
  }
  for (std::size_t s = 0; s < adj_.size(); ++s) {
    const auto& edge = layout_->edges()[s];
    const auto& el = adj_[s];
    if (el.offsets.size() != candidates_[edge.from].size() + 1) {
      return Status::Internal("edge list " + std::to_string(s) + " offset size mismatch");
    }
    if (!el.offsets.empty() && el.offsets.front() != 0) {
      return Status::Internal("edge list does not start at 0");
    }
    for (std::size_t i = 0; i + 1 < el.offsets.size(); ++i) {
      if (el.offsets[i] > el.offsets[i + 1]) {
        return Status::Internal("edge list offsets not monotone");
      }
      auto nbrs = el.Neighbors(static_cast<std::uint32_t>(i));
      for (std::size_t j = 0; j < nbrs.size(); ++j) {
        if (nbrs[j] >= candidates_[edge.to].size()) {
          return Status::Internal("edge target out of range");
        }
        if (j > 0 && nbrs[j - 1] >= nbrs[j]) {
          return Status::Internal("edge targets not strictly sorted");
        }
      }
    }
    if (!el.offsets.empty() && el.offsets.back() != el.targets.size()) {
      return Status::Internal("edge list final offset mismatch");
    }
    // The reverse slot must carry the same number of pairs.
    const int rev = layout_->SlotOf(edge.to, edge.from);
    if (rev < 0) return Status::Internal("missing reverse slot");
    if (adj_[rev].targets.size() != el.targets.size()) {
      return Status::Internal("directed pair count asymmetry on slot " + std::to_string(s));
    }
  }
  return Status::OK();
}

std::string Cst::Summary() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "CST[cands=%zu words=%zu D=%u]", TotalCandidates(),
                SizeWords(), MaxAdjacencyDegree());
  return buf;
}

namespace {

// Marks, per query vertex, which data vertices are candidates (byte mask over
// V(G)) and keeps the sorted candidate list in sync.
struct CandidateSets {
  explicit CandidateSets(std::size_t n_query, std::size_t n_data)
      : in_set(n_query, std::vector<char>(n_data, 0)), lists(n_query) {}

  std::vector<std::vector<char>> in_set;
  std::vector<std::vector<VertexId>> lists;
};

// Label-and-degree filter (the "local features" check of Alg. 1 lines 2/4).
inline bool PassesLdf(const QueryGraph& q, const Graph& g, VertexId u, VertexId v) {
  return g.label(v) == q.label(u) && g.degree(v) >= q.degree(u);
}

}  // namespace

StatusOr<Cst> BuildCst(const QueryGraph& q, const Graph& g, VertexId root,
                       const CstBuildOptions& options) {
  if (root >= q.NumVertices()) {
    return Status::InvalidArgument("root out of range");
  }
  auto layout = CstLayout::Create(q, root);
  const BfsTree& tree = layout->tree();
  const std::size_t nq = q.NumVertices();
  const std::size_t ng = g.NumVertices();

  CandidateSets cs(nq, ng);

  // Per-query-edge label requirements (all zero for unlabelled inputs).
  std::vector<Label> q_edge_label(nq * nq, 0);
  for (VertexId a = 0; a < nq; ++a) {
    for (VertexId b : q.neighbors(a)) q_edge_label[a * nq + b] = q.EdgeLabel(a, b);
  }

  // --- Top-down construction (Alg. 1 lines 1-7), candidate sets only. ---
  for (VertexId v : g.VerticesWithLabel(q.label(root))) {
    if (PassesLdf(q, g, root, v)) {
      cs.in_set[root][v] = 1;
      cs.lists[root].push_back(v);
    }
  }
  const bool unlabelled = !g.has_edge_labels();
  for (VertexId u : tree.bfs_order()) {
    if (u == root) continue;
    const VertexId up = tree.parent(u);
    const Label want = q_edge_label[up * nq + u];
    auto& mask = cs.in_set[u];
    auto& list = cs.lists[u];
    // Unlabelled graphs carry edge label 0 everywhere: a non-zero requirement
    // can never match, and a zero requirement needs no per-neighbor check.
    if (unlabelled && want != 0) continue;
    for (VertexId vp : cs.lists[up]) {
      const auto nbrs = g.neighbors(vp);
      if (unlabelled) {
        for (const VertexId w : nbrs) {
          if (!mask[w] && PassesLdf(q, g, u, w)) {
            mask[w] = 1;
            list.push_back(w);
          }
        }
        continue;
      }
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId w = nbrs[i];
        if (!mask[w] && g.EdgeLabelAt(vp, i) == want && PassesLdf(q, g, u, w)) {
          mask[w] = 1;
          list.push_back(w);
        }
      }
    }
    std::sort(list.begin(), list.end());
  }

  // --- Refinement (Alg. 1 lines 8-14, plus optional extra rounds). ---
  // Bottom-up: v in C(u) must have, for every t_q child u_c, at least one
  // neighbor in C(u_c). Top-down: v in C(u) must have a supporting parent
  // candidate. Removals update masks so later vertices see the shrunken sets.
  auto refine_pass = [&](bool bottom_up) {
    const auto& order = tree.bfs_order();
    auto visit = [&](VertexId u) {
      auto& list = cs.lists[u];
      auto& mask = cs.in_set[u];
      std::size_t write = 0;
      for (VertexId v : list) {
        bool valid = true;
        // Any-supporting-neighbor probe of v against C(other), with the
        // edge-label branch hoisted for unlabelled graphs.
        const auto supported = [&](VertexId other, Label want) {
          const auto nbrs = g.neighbors(v);
          if (unlabelled) {
            if (want != 0) return false;
            for (const VertexId w : nbrs) {
              if (cs.in_set[other][w]) return true;
            }
            return false;
          }
          for (std::size_t i = 0; i < nbrs.size(); ++i) {
            if (cs.in_set[other][nbrs[i]] && g.EdgeLabelAt(v, i) == want) {
              return true;
            }
          }
          return false;
        };
        if (bottom_up) {
          for (VertexId uc : tree.children(u)) {
            if (!supported(uc, q_edge_label[u * nq + uc])) {
              valid = false;
              break;
            }
          }
        } else if (u != root) {
          const VertexId up = tree.parent(u);
          valid = supported(up, q_edge_label[up * nq + u]);
        }
        if (valid) {
          list[write++] = v;
        } else {
          mask[v] = 0;
        }
      }
      list.resize(write);
    };
    if (bottom_up) {
      for (auto it = order.rbegin(); it != order.rend(); ++it) visit(*it);
    } else {
      for (VertexId u : order) visit(u);
    }
  };

  refine_pass(/*bottom_up=*/true);
  for (int r = 0; r < options.refine_rounds; ++r) {
    refine_pass(/*bottom_up=*/false);
    refine_pass(/*bottom_up=*/true);
  }

  // --- Materialize adjacency for every directed slot (incl. non-tree edges,
  // Alg. 1 lines 15-19). Candidates are sorted, so for unlabelled slots each
  // row is exactly intersect_pos(neighbors(v), C(to)) — positions into dst,
  // already ascending — or, when v is a hub, a bitmap-filtered selection of
  // dst at O(|C(to)|) independent of deg(v). Labelled slots keep the scalar
  // mask + lower_bound path. ---
  FAST_PROF_STAGE("filter");
  Cst cst;
  cst.layout_ = layout;
  cst.candidates_ = cs.lists;
  cst.non_tree_materialized_ = options.materialize_non_tree;
  cst.adj_.resize(layout->edges().size());
  const simd::Kernels& kern = simd::Active();
  std::vector<std::uint32_t> row;

  for (std::size_t s = 0; s < layout->edges().size(); ++s) {
    const auto [from, to, is_tree] = layout->edges()[s];
    const auto& src = cst.candidates_[from];
    const auto& dst = cst.candidates_[to];
    auto& el = cst.adj_[s];
    el.offsets.assign(src.size() + 1, 0);
    if (!is_tree && !options.materialize_non_tree) continue;  // CPI mode
    const Label want = q_edge_label[from * nq + to];
    if (unlabelled) {
      if (want != 0) continue;  // no edge can carry a non-zero label
      row.resize(dst.size());
      el.targets.clear();
      for (std::size_t i = 0; i < src.size(); ++i) {
        const VertexId v = src[i];
        std::size_t cnt;
        if (const auto bits = g.HubAdjacencyBitmap(v); !bits.empty()) {
          cnt = kern.filter_by_bitmap(bits.data(), ng, dst.data(), dst.size(),
                                      row.data());
        } else {
          const auto nbrs = g.neighbors(v);
          cnt = kern.intersect_pos(nbrs.data(), nbrs.size(), dst.data(),
                                   dst.size(), row.data());
        }
        el.offsets[i + 1] = el.offsets[i] + static_cast<std::uint32_t>(cnt);
        el.targets.insert(el.targets.end(), row.begin(),
                          row.begin() + static_cast<std::ptrdiff_t>(cnt));
      }
      continue;
    }
    for (std::size_t i = 0; i < src.size(); ++i) {
      const VertexId v = src[i];
      std::uint32_t count = 0;
      const auto nbrs = g.neighbors(v);
      for (std::size_t ni = 0; ni < nbrs.size(); ++ni) {
        if (cs.in_set[to][nbrs[ni]] && g.EdgeLabelAt(v, ni) == want) ++count;
      }
      el.offsets[i + 1] = el.offsets[i] + count;
    }
    el.targets.resize(el.offsets.back());
    for (std::size_t i = 0; i < src.size(); ++i) {
      std::uint32_t cursor = el.offsets[i];
      const auto nbrs = g.neighbors(src[i]);
      for (std::size_t ni = 0; ni < nbrs.size(); ++ni) {
        const VertexId w = nbrs[ni];
        if (!cs.in_set[to][w] || g.EdgeLabelAt(src[i], ni) != want) continue;
        const auto it = std::lower_bound(dst.begin(), dst.end(), w);
        el.targets[cursor++] =
            static_cast<std::uint32_t>(it - dst.begin());
      }
      std::sort(el.targets.begin() + el.offsets[i], el.targets.begin() + el.offsets[i + 1]);
    }
  }
  return cst;
}

StatusOr<Cst> SubsetCst(const Cst& cst, const std::vector<std::vector<char>>& keep) {
  const std::size_t n = cst.NumQueryVertices();
  if (keep.size() != n) return Status::InvalidArgument("keep mask arity mismatch");

  Cst out;
  out.layout_ = cst.layout_;
  out.non_tree_materialized_ = cst.non_tree_materialized_;
  out.candidates_.resize(n);

  // Old position -> new position (or -1).
  std::vector<std::vector<std::int32_t>> remap(n);
  for (VertexId u = 0; u < n; ++u) {
    const auto cands = cst.Candidates(u);
    if (keep[u].size() != cands.size()) {
      return Status::InvalidArgument("keep mask size mismatch at query vertex " +
                                     std::to_string(u));
    }
    remap[u].assign(cands.size(), -1);
    for (std::size_t i = 0; i < cands.size(); ++i) {
      if (keep[u][i]) {
        remap[u][i] = static_cast<std::int32_t>(out.candidates_[u].size());
        out.candidates_[u].push_back(cands[i]);
      }
    }
  }

  const auto& edges = cst.layout_->edges();
  out.adj_.resize(edges.size());
  for (std::size_t s = 0; s < edges.size(); ++s) {
    const auto [from, to, is_tree] = edges[s];
    const auto& src_remap = remap[from];
    const auto& dst_remap = remap[to];
    const auto& in = cst.adj_[s];
    auto& el = out.adj_[s];
    el.offsets.assign(out.candidates_[from].size() + 1, 0);
    el.targets.clear();
    el.targets.reserve(in.targets.size());
    // Kept rows appear in ascending src_remap order (the remap preserves
    // order), so one pass filters + remaps and records offsets as it goes.
    // Remapped targets stay ascending within a row for the same reason.
    std::uint32_t row = 0;
    for (std::size_t i = 0; i < src_remap.size(); ++i) {
      if (src_remap[i] < 0) continue;
      for (std::uint32_t t : in.Neighbors(static_cast<std::uint32_t>(i))) {
        if (dst_remap[t] >= 0) {
          el.targets.push_back(static_cast<std::uint32_t>(dst_remap[t]));
        }
      }
      el.offsets[++row] = static_cast<std::uint32_t>(el.targets.size());
    }
  }
  return out;
}

}  // namespace fast
