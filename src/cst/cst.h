#ifndef FAST_CST_CST_H_
#define FAST_CST_CST_H_

// Candidate Search Tree (paper Def. 2, Alg. 1).
//
// A CST is a graph isomorphic to the query q: each query vertex u carries a
// candidate set C(u), and for every query edge (u, u') there are edges
// between candidates v in C(u) and v' in C(u') iff (v, v') in E(G). Built on
// the BFS spanning tree t_q of q, with the remaining query edges stored as
// "non-tree" candidate adjacency. A *sound* CST is a complete search space:
// every embedding of q in G can be enumerated by traversing the CST alone
// (Theorem 1), which is what makes partitions independently processable in
// FPGA BRAM.
//
// Representation: adjacency targets are *positions* into the neighbor's
// candidate array, not raw data-vertex ids. This keeps partitions
// self-contained, makes the BRAM size accounting exact, and lets the FPGA
// model address candidate memory with dense indices.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "query/query_graph.h"
#include "util/status.h"

namespace fast {

// One directed candidate-adjacency relation N^u_{u'}: CSR over positions of
// C(u), targets are positions into C(u'), sorted ascending per source.
struct CstEdgeList {
  std::vector<std::uint32_t> offsets;  // size |C(u)| + 1
  std::vector<std::uint32_t> targets;

  std::span<const std::uint32_t> Neighbors(std::uint32_t src_pos) const {
    return {targets.data() + offsets[src_pos], offsets[src_pos + 1] - offsets[src_pos]};
  }
  std::uint32_t Degree(std::uint32_t src_pos) const {
    return offsets[src_pos + 1] - offsets[src_pos];
  }
};

// Directed-edge slot map for one (query, BFS tree) pair. Shared by the
// original CST and all its partitions.
class CstLayout {
 public:
  struct DirectedEdge {
    VertexId from;
    VertexId to;
    bool is_tree;  // parent<->child edge of t_q (either direction)
  };

  // The layout owns a copy of the query so CSTs never dangle when the
  // caller's QueryGraph goes out of scope.
  static std::shared_ptr<const CstLayout> Create(const QueryGraph& q, VertexId root);

  const QueryGraph& query() const { return query_; }
  const BfsTree& tree() const { return tree_; }
  std::size_t NumQueryVertices() const { return n_; }
  const std::vector<DirectedEdge>& edges() const { return edges_; }

  // Slot of directed query edge (from, to); -1 if not a query edge.
  int SlotOf(VertexId from, VertexId to) const {
    return slot_of_[from * n_ + to];
  }

 private:
  CstLayout() = default;

  QueryGraph query_;
  BfsTree tree_;
  std::size_t n_ = 0;
  std::vector<int> slot_of_;
  std::vector<DirectedEdge> edges_;
};

struct CstBuildOptions;

// The CST proper: candidate sets plus one CstEdgeList per directed slot.
class Cst {
 public:
  Cst() = default;

  const CstLayout& layout() const { return *layout_; }
  std::shared_ptr<const CstLayout> layout_ptr() const { return layout_; }

  std::size_t NumQueryVertices() const { return candidates_.size(); }

  // Candidate set C(u), sorted by data-vertex id.
  std::span<const VertexId> Candidates(VertexId u) const { return candidates_[u]; }
  std::size_t NumCandidates(VertexId u) const { return candidates_[u].size(); }
  VertexId Candidate(VertexId u, std::uint32_t pos) const {
    return candidates_[u][pos];
  }

  const CstEdgeList& EdgeList(int slot) const { return adj_[slot]; }

  // Adjacency of candidate position src_pos of u toward u'. (u, u') must be a
  // query edge.
  std::span<const std::uint32_t> Neighbors(VertexId u, VertexId u_prime,
                                           std::uint32_t src_pos) const;

  // O(log d) candidate-edge existence check: is position dst_pos of u' a
  // CST-neighbor of position src_pos of u?
  bool HasCstEdge(VertexId u, std::uint32_t src_pos, VertexId u_prime,
                  std::uint32_t dst_pos) const;

  // |CST| in 32-bit words: all candidate entries + all adjacency offsets and
  // targets. This is the quantity compared against the BRAM budget δ_S.
  std::size_t SizeWords() const;
  std::size_t SizeBytes() const { return SizeWords() * 4; }

  // D_CST: maximum adjacency-list length over all slots and sources; compared
  // against the port budget δ_D.
  std::uint32_t MaxAdjacencyDegree() const;

  // Total number of candidates across all query vertices.
  std::size_t TotalCandidates() const;

  // Structural invariant check (offsets monotone, targets sorted + in range,
  // directed pairs mutually consistent). Used by tests and DCHECK paths.
  Status Validate() const;

  // Whether non-tree candidate adjacency was materialized (true for the
  // paper's CST; false for the CPI-like structure used by the CFL baseline).
  // Partition pruning may only consult non-tree lists when this holds.
  bool non_tree_materialized() const { return non_tree_materialized_; }

  std::string Summary() const;

 private:
  friend StatusOr<Cst> BuildCst(const QueryGraph& q, const Graph& g, VertexId root,
                                const CstBuildOptions& options);
  friend StatusOr<Cst> SubsetCst(const Cst& cst,
                                 const std::vector<std::vector<char>>& keep);
  friend StatusOr<Cst> DeserializeCst(std::shared_ptr<const CstLayout> layout,
                                      const std::vector<std::uint32_t>& image);

  std::shared_ptr<const CstLayout> layout_;
  std::vector<std::vector<VertexId>> candidates_;
  std::vector<CstEdgeList> adj_;
  bool non_tree_materialized_ = true;
};

struct CstBuildOptions {
  // Extra bottom-up/top-down refinement rounds after the initial construction
  // (Alg. 1 does one bottom-up pass; CS in DAF does three. The paper notes
  // CST's two passes make its size close to CS at lower build cost).
  int refine_rounds = 1;

  // When false, non-tree candidate adjacency is left empty, yielding a
  // CPI-like structure (CFL-Match): tree edges index the search, non-tree
  // query edges must be verified against G during enumeration. The paper's
  // CST requires true (that is what makes partitions self-contained).
  bool materialize_non_tree = true;
};

// Alg. 1: builds the CST of q over g, rooted at `root` (the BFS-tree root,
// normally order.root). Returns an empty-candidate CST when q has no match.
StatusOr<Cst> BuildCst(const QueryGraph& q, const Graph& g, VertexId root,
                       const CstBuildOptions& options = {});

// Restricts a CST to the candidate subsets selected by `keep` (one byte-mask
// per query vertex, indexed by candidate position), remapping adjacency.
// Shared by the partitioner and tests.
StatusOr<Cst> SubsetCst(const Cst& cst, const std::vector<std::vector<char>>& keep);

}  // namespace fast

#endif  // FAST_CST_CST_H_
