#include "cst/cst_serialize.h"

#include "util/logging.h"

namespace fast {

std::vector<std::uint32_t> SerializeCst(const Cst& cst) {
  std::vector<std::uint32_t> image;
  const std::size_t n = cst.NumQueryVertices();
  const std::size_t slots = cst.layout().edges().size();
  image.reserve(cst.SizeWords() + 3 + n + 2 * slots);

  image.push_back(kCstImageMagic);
  image.push_back(static_cast<std::uint32_t>(n));
  image.push_back(static_cast<std::uint32_t>(slots));
  for (VertexId u = 0; u < n; ++u) {
    const auto cands = cst.Candidates(u);
    image.push_back(static_cast<std::uint32_t>(cands.size()));
    image.insert(image.end(), cands.begin(), cands.end());
  }
  for (std::size_t s = 0; s < slots; ++s) {
    const CstEdgeList& el = cst.EdgeList(static_cast<int>(s));
    image.push_back(static_cast<std::uint32_t>(el.offsets.size()));
    image.insert(image.end(), el.offsets.begin(), el.offsets.end());
    image.push_back(static_cast<std::uint32_t>(el.targets.size()));
    image.insert(image.end(), el.targets.begin(), el.targets.end());
  }
  return image;
}

StatusOr<Cst> DeserializeCst(std::shared_ptr<const CstLayout> layout,
                             const std::vector<std::uint32_t>& image) {
  if (layout == nullptr) return Status::InvalidArgument("null layout");
  std::size_t pos = 0;
  auto read = [&](const char* what) -> StatusOr<std::uint32_t> {
    if (pos >= image.size()) {
      return Status::InvalidArgument(std::string("truncated CST image at ") + what);
    }
    return image[pos++];
  };

  FAST_ASSIGN_OR_RETURN(std::uint32_t magic, read("magic"));
  if (magic != kCstImageMagic) {
    return Status::InvalidArgument("bad CST image magic");
  }
  FAST_ASSIGN_OR_RETURN(std::uint32_t n, read("arity"));
  FAST_ASSIGN_OR_RETURN(std::uint32_t slots, read("slot count"));
  if (n != layout->NumQueryVertices() || slots != layout->edges().size()) {
    return Status::InvalidArgument("CST image does not match the layout");
  }

  Cst cst;
  cst.layout_ = std::move(layout);
  cst.candidates_.resize(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    FAST_ASSIGN_OR_RETURN(std::uint32_t count, read("candidate count"));
    if (pos + count > image.size()) {
      return Status::InvalidArgument("truncated candidate set");
    }
    cst.candidates_[u].assign(image.begin() + static_cast<std::ptrdiff_t>(pos),
                              image.begin() + static_cast<std::ptrdiff_t>(pos + count));
    pos += count;
  }
  cst.adj_.resize(slots);
  for (std::uint32_t s = 0; s < slots; ++s) {
    FAST_ASSIGN_OR_RETURN(std::uint32_t n_offsets, read("offset count"));
    if (pos + n_offsets > image.size()) {
      return Status::InvalidArgument("truncated offsets");
    }
    cst.adj_[s].offsets.assign(
        image.begin() + static_cast<std::ptrdiff_t>(pos),
        image.begin() + static_cast<std::ptrdiff_t>(pos + n_offsets));
    pos += n_offsets;
    FAST_ASSIGN_OR_RETURN(std::uint32_t n_targets, read("target count"));
    if (pos + n_targets > image.size()) {
      return Status::InvalidArgument("truncated targets");
    }
    cst.adj_[s].targets.assign(
        image.begin() + static_cast<std::ptrdiff_t>(pos),
        image.begin() + static_cast<std::ptrdiff_t>(pos + n_targets));
    pos += n_targets;
  }
  if (pos != image.size()) {
    return Status::InvalidArgument("trailing bytes in CST image");
  }
  FAST_RETURN_IF_ERROR(cst.Validate());
  return cst;
}

std::size_t CstWireBytes(const Cst& cst) {
  const std::size_t n = cst.NumQueryVertices();
  const std::size_t slots = cst.layout().edges().size();
  return (cst.SizeWords() + 3 + n + 2 * slots) * sizeof(std::uint32_t);
}

}  // namespace fast
