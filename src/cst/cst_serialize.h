#ifndef FAST_CST_CST_SERIALIZE_H_
#define FAST_CST_CST_SERIALIZE_H_

// Flat 32-bit-word image of a CST — the byte stream that crosses PCIe into
// card DRAM and is then DMA'd into BRAM (Fig. 2 steps 3-4).
//
// Layout (all words little-endian uint32):
//   [magic, n_query_vertices, n_slots]
//   per query vertex u:  [|C(u)|, C(u)...]
//   per directed slot s: [|offsets|, offsets..., |targets|, targets...]
//
// The image length equals Cst::SizeWords() plus a fixed header and per-array
// length prefixes, so the BRAM budget accounting (δ_S) matches what is
// actually shipped. Decoding requires the CstLayout (query + root), which the
// host and kernel share by construction.

#include <cstdint>
#include <vector>

#include "cst/cst.h"
#include "util/status.h"

namespace fast {

inline constexpr std::uint32_t kCstImageMagic = 0xFA57C571u;

// Serializes the CST into a flat word image.
std::vector<std::uint32_t> SerializeCst(const Cst& cst);

// Reconstructs a CST from an image produced by SerializeCst. The layout must
// describe the same query and root the image was built from; structural
// mismatches are rejected.
StatusOr<Cst> DeserializeCst(std::shared_ptr<const CstLayout> layout,
                             const std::vector<std::uint32_t>& image);

// Exact wire size in bytes for a CST (image length * 4); used by the driver
// for PCIe accounting.
std::size_t CstWireBytes(const Cst& cst);

}  // namespace fast

#endif  // FAST_CST_CST_SERIALIZE_H_
