#include "cst/partition.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fast {

namespace {

bool Fits(const Cst& cst, const PartitionConfig& config) {
  return cst.SizeWords() <= config.max_size_words &&
         cst.MaxAdjacencyDegree() <= config.max_degree;
}

// Drops candidates that lost all support toward any query neighbor after
// C(u) (at order position `index`) was restricted ("can reach the i-th
// partitioned C(u)", Alg. 2 lines 9-12). A candidate of w survives only if,
// for *every* query edge (w, w'), it still has a kept CST neighbor in C(w'):
// tree edges carry reachability, and non-tree edges carry the edge-validation
// constraint (a candidate with no kept non-tree neighbor can never pass
// Alg. 7). The split vertex itself is never modified; vertices preceding it
// in the order are pruned only when `prune_preceding` is set (see
// PartitionConfig).
//
// Computed as counter-based arc consistency rather than a rescan-to-fixpoint:
// each prunable candidate tracks, per support slot, how many kept neighbors
// it still has; a counter hitting zero kills the candidate and the death
// cascades through the reverse slot (targets of (w,i) toward wn are exactly
// the positions of wn whose counters toward w count i — the directional-pair
// symmetry that Cst::Validate() enforces). Same greatest fixpoint as the
// rescan, but the work is proportional to the candidates actually removed,
// not rounds x total adjacency — this runs once per part per split level, so
// it dominates host partitioning time.
void PruneMasks(const Cst& cst, const std::vector<VertexId>& order,
                std::size_t index, bool prune_preceding,
                std::vector<std::vector<char>>* keep) {
  const QueryGraph& q = cst.layout().query();
  const std::size_t n = order.size();
  const VertexId u = order[index];

  std::vector<std::size_t> opos(n);
  for (std::size_t oi = 0; oi < n; ++oi) opos[order[oi]] = oi;
  const auto prunable = [&](VertexId w) {
    return opos[w] != index && (prune_preceding || opos[w] > index);
  };

  const auto& edges = cst.layout().edges();
  // cnt[s][i]: kept CST neighbors of candidate i of `from` toward `to`, for
  // support slots whose source is prunable. Slots toward the split vertex
  // count against its restricted mask; every other mask is still all-ones at
  // this point, so the counter is just the CSR degree — overcounts from
  // candidates removed later in this init loop are repaid when the worklist
  // drains, since every removal decrements the counters of its neighbors.
  std::vector<std::vector<std::uint32_t>> cnt(edges.size());
  std::vector<std::pair<VertexId, std::uint32_t>> worklist;

  for (std::size_t s = 0; s < edges.size(); ++s) {
    const auto [from, to, is_tree] = edges[s];
    if (!prunable(from)) continue;
    if (!is_tree && !cst.non_tree_materialized()) continue;
    const CstEdgeList& el = cst.EdgeList(static_cast<int>(s));
    const std::size_t nc = cst.NumCandidates(from);
    const std::vector<char>& keep_to = (*keep)[to];
    std::vector<char>& keep_from = (*keep)[from];
    auto& c = cnt[s];
    c.resize(nc);
    for (std::size_t i = 0; i < nc; ++i) {
      std::uint32_t kept;
      if (to == u) {
        kept = 0;
        for (std::uint32_t t : el.Neighbors(static_cast<std::uint32_t>(i))) {
          kept += keep_to[t] != 0;
        }
      } else {
        kept = el.Degree(static_cast<std::uint32_t>(i));
      }
      c[i] = kept;
      if (kept == 0 && keep_from[i]) {
        keep_from[i] = 0;
        worklist.emplace_back(from, static_cast<std::uint32_t>(i));
      }
    }
  }

  while (!worklist.empty()) {
    const auto [w, i] = worklist.back();
    worklist.pop_back();
    for (VertexId wn : q.neighbors(w)) {
      if (!prunable(wn)) continue;
      const int rev = cst.layout().SlotOf(wn, w);
      auto& rc = cnt[rev];
      if (rc.empty()) continue;  // non-materialized non-tree slot
      const int fwd = cst.layout().SlotOf(w, wn);
      std::vector<char>& keep_wn = (*keep)[wn];
      for (std::uint32_t p : cst.EdgeList(fwd).Neighbors(i)) {
        if (--rc[p] == 0 && keep_wn[p]) {
          keep_wn[p] = 0;
          worklist.emplace_back(wn, p);
        }
      }
    }
  }
}

class Partitioner {
 public:
  Partitioner(const MatchingOrder& order, const PartitionConfig& config,
              const std::function<Status(Cst)>& sink,
              const std::function<bool(Cst&)>* try_cpu, PartitionStats* stats)
      : order_(order), config_(config), sink_(sink), try_cpu_(try_cpu),
        stats_(stats) {}

  Status Run(Cst cst, std::size_t index) {
    ++stats_->num_recursive_calls;
    if (Fits(cst, config_)) {
      if (OfferToCpu(&cst)) return Status::OK();
      return Emit(std::move(cst), /*oversized=*/false);
    }
    // FAST-SHARE: the host may take an oversized CST as-is, skipping the
    // entire sub-recursion (the Sec. VII-B partition-cost saving).
    if (OfferToCpu(&cst)) return Status::OK();
    if (index >= order_.order.size()) {
      // Every candidate set is down to one vertex and the CST still exceeds
      // a threshold: nothing left to split (pathological δ settings).
      return Emit(std::move(cst), /*oversized=*/true);
    }
    const VertexId u = order_.order[index];
    const std::size_t n_cands = cst.NumCandidates(u);
    if (n_cands <= 1) return Run(std::move(cst), index + 1);

    std::size_t k;
    if (config_.fixed_k > 0) {
      k = static_cast<std::size_t>(config_.fixed_k);
    } else {
      const double by_size = std::ceil(static_cast<double>(cst.SizeWords()) /
                                       static_cast<double>(config_.max_size_words));
      const double by_degree = std::ceil(static_cast<double>(cst.MaxAdjacencyDegree()) /
                                         static_cast<double>(config_.max_degree));
      k = static_cast<std::size_t>(std::max({by_size, by_degree, 2.0}));
    }
    k = std::min(k, n_cands);

    // Even contiguous split of C(u) into k parts.
    const std::size_t base = n_cands / k;
    const std::size_t extra = n_cands % k;
    std::size_t begin = 0;
    for (std::size_t part = 0; part < k; ++part) {
      const std::size_t len = base + (part < extra ? 1 : 0);
      const std::size_t end = begin + len;

      std::vector<std::vector<char>> keep(cst.NumQueryVertices());
      for (VertexId w = 0; w < cst.NumQueryVertices(); ++w) {
        keep[w].assign(cst.NumCandidates(w), 1);
      }
      std::fill(keep[u].begin(), keep[u].end(), 0);
      for (std::size_t i = begin; i < end; ++i) keep[u][i] = 1;
      PruneMasks(cst, order_.order, index, config_.prune_preceding, &keep);

      FAST_ASSIGN_OR_RETURN(Cst sub, SubsetCst(cst, keep));
      begin = end;
      if (Fits(sub, config_)) {
        if (OfferToCpu(&sub)) continue;
        FAST_RETURN_IF_ERROR(Emit(std::move(sub), /*oversized=*/false));
      } else if (sub.NumCandidates(u) <= 1) {
        FAST_RETURN_IF_ERROR(Run(std::move(sub), index + 1));
      } else {
        FAST_RETURN_IF_ERROR(Run(std::move(sub), index));
      }
    }
    return Status::OK();
  }

 private:
  bool OfferToCpu(Cst* cst) {
    if (try_cpu_ == nullptr || !(*try_cpu_)) return false;
    if ((*try_cpu_)(*cst)) {
      ++stats_->num_cpu_offloaded;
      return true;
    }
    return false;
  }

  Status Emit(Cst cst, bool oversized) {
    ++stats_->num_partitions;
    if (oversized) ++stats_->num_oversized;
    stats_->total_size_words += cst.SizeWords();
    stats_->max_partition_words = std::max(stats_->max_partition_words, cst.SizeWords());
    return sink_(std::move(cst));
  }

  const MatchingOrder& order_;
  const PartitionConfig& config_;
  const std::function<Status(Cst)>& sink_;
  const std::function<bool(Cst&)>* try_cpu_;  // may be null
  PartitionStats* stats_;
};

Status PartitionImpl(const Cst& cst, const MatchingOrder& order,
                     const PartitionConfig& config,
                     const std::function<Status(Cst)>& sink,
                     const std::function<bool(Cst&)>* try_cpu,
                     PartitionStats* stats) {
  if (config.max_size_words == 0 || config.max_degree == 0) {
    return Status::InvalidArgument("partition thresholds must be positive");
  }
  if (order.order.size() != cst.NumQueryVertices()) {
    return Status::InvalidArgument("order arity does not match CST");
  }
  if (order.root != cst.layout().tree().root()) {
    return Status::InvalidArgument("order root does not match CST root");
  }
  PartitionStats local;
  PartitionStats* s = stats != nullptr ? stats : &local;
  *s = PartitionStats{};
  Partitioner p(order, config, sink, try_cpu, s);
  Cst copy = cst;
  return p.Run(std::move(copy), 0);
}

}  // namespace

Status PartitionCst(const Cst& cst, const MatchingOrder& order,
                    const PartitionConfig& config,
                    const std::function<Status(Cst)>& sink, PartitionStats* stats) {
  return PartitionImpl(cst, order, config, sink, nullptr, stats);
}

Status PartitionCstWithOffload(const Cst& cst, const MatchingOrder& order,
                               const PartitionConfig& config,
                               const std::function<Status(Cst)>& fpga_sink,
                               const std::function<bool(Cst&)>& try_cpu,
                               PartitionStats* stats) {
  return PartitionImpl(cst, order, config, fpga_sink, &try_cpu, stats);
}

StatusOr<std::vector<Cst>> PartitionCstToVector(const Cst& cst,
                                                const MatchingOrder& order,
                                                const PartitionConfig& config,
                                                PartitionStats* stats) {
  std::vector<Cst> out;
  Status s = PartitionCst(
      cst, order, config,
      [&out](Cst part) {
        out.push_back(std::move(part));
        return Status::OK();
      },
      stats);
  if (!s.ok()) return s;
  return out;
}

}  // namespace fast
