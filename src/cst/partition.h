#ifndef FAST_CST_PARTITION_H_
#define FAST_CST_PARTITION_H_

// CST partitioning (paper Alg. 2, Sec. V-B).
//
// BRAM is small (δ_S words) and the array-partitioned edge validator bounds
// the adjacency fan-out (δ_D = Port_max), so a CST exceeding either threshold
// is split: the candidate set of the current matching-order vertex is divided
// into k parts (k = max(|CST|/δ_S, D_CST/δ_D) under the paper's greedy rule,
// or a fixed k for the Fig. 8 sweep), each part's CST is rebuilt with only
// the candidates that can reach the part, and oversized parts recurse on the
// next order vertex. Partitions have pairwise-disjoint search spaces, so
// results are emitted exactly once (Example 3).

#include <cstdint>
#include <functional>

#include "cst/cst.h"
#include "query/matching_order.h"

namespace fast {

struct PartitionConfig {
  // δ_S: maximum CST size in 32-bit words. Default corresponds to filling
  // ~half of a 35 MB BRAM budget (Alveo U200), leaving room for the
  // intermediate-result buffer.
  std::size_t max_size_words = (35u << 20) / 2 / 4;
  // δ_D: maximum candidate adjacency degree (Port_max of Sec. VI-A).
  std::uint32_t max_degree = 512;
  // 0 = greedy k (paper's strategy); otherwise the fixed k of Fig. 8.
  int fixed_k = 0;
  // Also prune candidates of vertices *preceding* the split vertex once
  // C(u) is restricted. Alg. 2 copies preceding candidate sets verbatim
  // (lines 7-8); pruning them is sound (a preceding candidate that cannot
  // reach the kept part of C(u) through t_q cannot appear in any embedding
  // of this partition) and keeps Σ|CST_i| near |CST| instead of blowing up
  // multiplicatively on deep recursions. Disable for Alg. 2-literal
  // behaviour.
  bool prune_preceding = true;
};

struct PartitionStats {
  std::size_t num_partitions = 0;        // emitted to the FPGA sink
  std::size_t num_recursive_calls = 0;
  std::size_t total_size_words = 0;      // Σ|CST_i| (Fig. 9's S_CST)
  std::size_t max_partition_words = 0;
  // Partitions that exhausted every order vertex and still exceed a
  // threshold (singleton candidates everywhere): emitted with a warning.
  std::size_t num_oversized = 0;
  // CSTs the host kept via the FAST-SHARE offload path.
  std::size_t num_cpu_offloaded = 0;
};

// Streams every satisfying partition to `sink` in deterministic order, as
// soon as it is valid — mirroring the paper's "offloaded to FPGA
// immediately". Stops early if the sink returns an error.
Status PartitionCst(const Cst& cst, const MatchingOrder& order,
                    const PartitionConfig& config,
                    const std::function<Status(Cst)>& sink,
                    PartitionStats* stats = nullptr);

// Partitioning with a CPU-offload escape hatch (the FAST-SHARE mechanism of
// Sec. VII-B: "in FAST-SHARE we may directly assign [a CST that cannot be
// fully loaded into BRAM] to CPU, reducing the cost of partitioning").
//
// Before splitting an oversized CST — and before emitting a fitting one to
// the FPGA — `try_cpu` is consulted; returning true means the host keeps the
// CST (no further partitioning) and it is NOT sent to `fpga_sink`. The CPU
// has no BRAM constraint, so oversized CSTs are legal there.
// `try_cpu` may move from its argument only when it returns true.
Status PartitionCstWithOffload(const Cst& cst, const MatchingOrder& order,
                               const PartitionConfig& config,
                               const std::function<Status(Cst)>& fpga_sink,
                               const std::function<bool(Cst&)>& try_cpu,
                               PartitionStats* stats = nullptr);

// Convenience wrapper collecting all partitions into a vector.
StatusOr<std::vector<Cst>> PartitionCstToVector(const Cst& cst,
                                                const MatchingOrder& order,
                                                const PartitionConfig& config,
                                                PartitionStats* stats = nullptr);

}  // namespace fast

#endif  // FAST_CST_PARTITION_H_
