#include "cst/workload.h"

#include "util/logging.h"

namespace fast {

namespace {

// Computes c_u(v) for all u bottom-up; returns one table per query vertex.
std::vector<std::vector<double>> ComputeAllTables(const Cst& cst) {
  const BfsTree& tree = cst.layout().tree();
  const std::size_t n = cst.NumQueryVertices();
  std::vector<std::vector<double>> c(n);
  const auto& order = tree.bfs_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const VertexId u = *it;
    const std::size_t n_cands = cst.NumCandidates(u);
    c[u].assign(n_cands, 1.0);
    for (VertexId uc : tree.children(u)) {
      for (std::size_t i = 0; i < n_cands; ++i) {
        double sum = 0.0;
        for (std::uint32_t t :
             cst.Neighbors(u, uc, static_cast<std::uint32_t>(i))) {
          sum += c[uc][t];
        }
        c[u][i] *= sum;
      }
    }
  }
  return c;
}

}  // namespace

double EstimateWorkload(const Cst& cst) {
  if (cst.NumQueryVertices() == 0) return 0.0;
  const auto tables = ComputeAllTables(cst);
  const VertexId root = cst.layout().tree().root();
  double total = 0.0;
  for (double v : tables[root]) total += v;
  return total;
}

std::vector<double> WorkloadTable(const Cst& cst, VertexId u) {
  FAST_CHECK_LT(u, cst.NumQueryVertices());
  return ComputeAllTables(cst)[u];
}

}  // namespace fast
