#ifndef FAST_CST_WORKLOAD_H_
#define FAST_CST_WORKLOAD_H_

// Workload estimation (Sec. V-C).
//
// W_CST = number of embeddings in the CST *ignoring false positives* (i.e.
// counting spanning-tree embeddings only), computed bottom-up by dynamic
// programming: c_u(v) = prod over t_q children u' of (sum over CST-neighbors
// v' of c_{u'}(v')), with c_u(v) = 1 at leaves. W_CST = sum over root
// candidates. The scheduler uses this to balance CPU and FPGA load; it is
// also an upper bound on the true embedding count (used by tests).

#include <vector>

#include "cst/cst.h"

namespace fast {

// Total estimated workload W_CST. Doubles are used because counts overflow
// 64-bit integers on skewed graphs.
double EstimateWorkload(const Cst& cst);

// The per-candidate DP table c_u(v) for one query vertex u (indexed by
// candidate position). Exposed for tests and the Fig. 4(d) example.
std::vector<double> WorkloadTable(const Cst& cst, VertexId u);

}  // namespace fast

#endif  // FAST_CST_WORKLOAD_H_
