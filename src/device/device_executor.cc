#include "device/device_executor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <optional>
#include <set>
#include <string_view>
#include <tuple>
#include <utility>

#include "core/kernel.h"
#include "cst/cst_serialize.h"
#include "cst/partition.h"
#include "fpga/pipeline_sim.h"
#include "obs/profiler.h"
#include "util/logging.h"
#include "util/timer.h"
#include "util/wrr.h"

namespace fast::device {

namespace {
// Bound on the retained TimelineRound ring (~2k rounds of timeline history).
constexpr std::size_t kRecentRoundsCapacity = 2048;
}  // namespace

// One query session: identity for fairness/dedup, the per-query sinks the
// device thread feeds, and the completion latch FinishQuery waits on.
struct DeviceQuery {
  std::string queue_key;
  std::uint64_t epoch = 0;
  std::string plan_key;
  MatchingOrder order;
  ResultCollector* collector = nullptr;
  const CancelToken* cancel = nullptr;
  std::size_t parts = 0;  // partitions enqueued so far (guarded by executor mu_)

  std::mutex mu;
  std::condition_variable cv;
  std::size_t outstanding = 0;  // enqueued, not yet finalized
  DeviceQueryResult result;
};

// A CST partition awaiting its device round.
struct DeviceExecutor::WorkItem {
  std::shared_ptr<DeviceQuery> query;
  Cst cst;
  std::size_t part_index = 0;  // emission order within the query's plan
  std::size_t wire_bytes = 0;  // CstWireBytes(cst), cached at enqueue
};

// Per-queue-key scheduler state, guarded by DeviceExecutor::mu_. Fairness
// state lives in the shared WRR helper (util/wrr.h) — the same discipline
// tenant::TenantRouter dispatches with.
struct DeviceExecutor::Queue {
  std::deque<WorkItem> items;
  WrrQueueState wrr;
};

std::string DeviceStats::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "rounds=%llu items/round=%.2f queries/round=%.2f "
                "wire=%.1fKiB dedup_saved=%.1fKiB cancelled=%llu failed=%llu "
                "pcie(sim)=%.3fms kernel(sim)=%.3fms",
                static_cast<unsigned long long>(rounds), ItemsPerRound(),
                QueriesPerRound(), static_cast<double>(wire_bytes) / 1024.0,
                static_cast<double>(dedup_bytes_saved) / 1024.0,
                static_cast<unsigned long long>(cancelled_items),
                static_cast<unsigned long long>(failed_items),
                pcie_seconds * 1e3, kernel_seconds * 1e3);
  return buf;
}

DeviceExecutor::DeviceExecutor(DeviceOptions options)
    : options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* m = options_.metrics;
    rounds_counter_ =
        m->GetCounter("fast_device_rounds_total", "Device rounds executed");
    items_counter_ = m->GetCounter("fast_device_items_total",
                                   "CST partitions matched on the device");
    cancelled_counter_ = m->GetCounter("fast_device_cancelled_items_total",
                                       "Items skipped/aborted by a deadline");
    failed_counter_ = m->GetCounter("fast_device_failed_items_total",
                                    "Items failed by kernel/pipeline errors");
    payload_bytes_counter_ = m->GetCounter("fast_device_payload_bytes_total",
                                           "Unique image bytes transferred");
    wire_bytes_counter_ = m->GetCounter(
        "fast_device_wire_bytes_total", "Payload + per-round transaction cost");
    dedup_saved_counter_ = m->GetCounter("fast_device_dedup_bytes_saved_total",
                                         "Duplicate image bytes that rode free");
    queue_depth_gauge_ = m->GetGauge("fast_device_queue_depth",
                                     "Items queued for a device round");
    occupancy_gauge_ = m->GetGauge(
        "fast_device_occupancy", "Live items in the last round / max batch");
  }
  device_ = std::thread([this] { DeviceLoop(); });
}

DeviceExecutor::~DeviceExecutor() { Shutdown(); }

void DeviceExecutor::SetQueueWeight(const std::string& key,
                                    std::uint32_t weight) {
  std::lock_guard<util::ProfiledMutex> lock(mu_);
  std::shared_ptr<Queue>& q = queues_[key];
  if (q == nullptr) q = std::make_shared<Queue>();
  q->wrr.weight = std::max<std::uint32_t>(1, weight);
}

void DeviceExecutor::DropQueue(const std::string& key) {
  std::lock_guard<util::ProfiledMutex> lock(mu_);
  auto it = queues_.find(key);
  if (it != queues_.end() && it->second->items.empty() &&
      !it->second->wrr.in_active) {
    queues_.erase(it);
  }
}

std::shared_ptr<DeviceQuery> DeviceExecutor::BeginQuery(
    const std::string& queue_key, std::uint64_t epoch,
    const std::string& plan_key, const MatchingOrder& order,
    ResultCollector* collector, const CancelToken* cancel) {
  auto query = std::make_shared<DeviceQuery>();
  query->queue_key = queue_key;
  query->epoch = epoch;
  query->plan_key = plan_key;
  query->order = order;
  query->collector = collector;
  query->cancel = cancel;
  return query;
}

Status DeviceExecutor::EnqueuePartition(
    const std::shared_ptr<DeviceQuery>& query, Cst part) {
  WorkItem item;
  item.query = query;
  item.wire_bytes = CstWireBytes(part);
  item.cst = std::move(part);
  {
    std::unique_lock<util::ProfiledMutex> lock(mu_);
    // Back-pressure, not rejection: dropping one partition of a query would
    // silently lose embeddings. The device drains independently of any
    // worker, so this wait always makes progress. 0 = unbounded, matching
    // the other 0-disables knobs.
    space_cv_.wait(lock, [&] {
      return stopping_ || options_.max_queued_items == 0 ||
             total_queued_ < options_.max_queued_items;
    });
    if (stopping_) {
      return Status::FailedPrecondition("device executor is shut down");
    }
    item.part_index = query->parts++;
    std::shared_ptr<Queue>& q = queues_[query->queue_key];
    if (q == nullptr) q = std::make_shared<Queue>();
    {
      std::lock_guard<std::mutex> qlock(query->mu);
      ++query->outstanding;
    }
    q->items.push_back(std::move(item));
    ++total_queued_;
    if (queue_depth_gauge_ != nullptr) {
      queue_depth_gauge_->Set(static_cast<double>(total_queued_));
    }
    WrrActivate(active_, q);
  }
  cv_.notify_one();
  return Status::OK();
}

DeviceQueryResult DeviceExecutor::FinishQuery(
    const std::shared_ptr<DeviceQuery>& query) {
  DeviceQueryResult result;
  {
    std::unique_lock<std::mutex> lock(query->mu);
    query->cv.wait(lock, [&] { return query->outstanding == 0; });
    result = std::move(query->result);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.queries;
  }
  return result;
}

void DeviceExecutor::Shutdown() {
  {
    std::lock_guard<util::ProfiledMutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  space_cv_.notify_all();
  if (device_.joinable()) device_.join();
}

void DeviceExecutor::DeviceLoop() {
  obs::Profiler::RegisterCurrentThread("device", obs::ThreadKind::kDevice);
  while (true) {
    std::vector<WorkItem> round;
    {
      FAST_PROF_STAGE("pop_round");
      round = PopRound();
    }
    if (round.empty()) return;  // stopping and drained
    FAST_PROF_STAGE("round");
    RunRound(std::move(round));
  }
}

std::vector<DeviceExecutor::WorkItem> DeviceExecutor::PopRound() {
  std::unique_lock<util::ProfiledMutex> lock(mu_);
  cv_.wait(lock, [&] { return stopping_ || total_queued_ > 0; });
  if (total_queued_ == 0) return {};
  const std::size_t max_batch = std::max<std::size_t>(1, options_.max_batch_items);
  // Hold the batch open for stragglers from other in-flight queries — this
  // window is what turns light concurrent load into >1 query per round.
  // Skipped when stopping: drain as fast as possible.
  if (!stopping_ && options_.batch_window_seconds > 0.0 &&
      total_queued_ < max_batch) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options_.batch_window_seconds));
    while (!stopping_ && total_queued_ < max_batch) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
    }
  }
  // Deficit-weighted round robin over the backlogged queues — the shared
  // discipline of util/wrr.h, exactly as TenantRouter dispatches requests.
  std::vector<WorkItem> round;
  round.reserve(std::min(max_batch, total_queued_));
  while (round.size() < max_batch && total_queued_ > 0) {
    FAST_CHECK(!active_.empty());
    round.push_back(WrrPop(
        active_,
        [](Queue& q) {
          FAST_CHECK(!q.items.empty());
          WorkItem item = std::move(q.items.front());
          q.items.pop_front();
          return item;
        },
        [](const Queue& q) { return q.items.empty(); }));
    --total_queued_;
  }
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->Set(static_cast<double>(total_queued_));
  }
  space_cv_.notify_all();
  return round;
}

void DeviceExecutor::RunRound(std::vector<WorkItem> round) {
  const FpgaConfig& fpga = options_.fpga;
  const double round_start = obs::ProcessUptimeSeconds();
  Timer round_timer;

  // --- Mid-batch cancellation probe: an item whose token tripped (or whose
  // query already failed) is skipped before it costs any transfer bytes. ---
  std::vector<bool> live(round.size(), false);
  std::size_t n_live = 0;
  for (std::size_t i = 0; i < round.size(); ++i) {
    DeviceQuery& q = *round[i].query;
    bool query_ok;
    {
      std::lock_guard<std::mutex> qlock(q.mu);
      query_ok = q.result.status.ok();
    }
    if (query_ok && (q.cancel == nullptr || !q.cancel->Cancelled())) {
      live[i] = true;
      ++n_live;
    }
  }

  // --- Transfer phase: ONE DMA transaction for the whole round. Identical
  // images (same queue key, epoch, plan and partition index → bit-identical
  // CSTs) cross the bus once; duplicates ride free. ---
  std::uint64_t payload = 0;
  std::uint64_t saved = 0;
  std::vector<std::size_t> contributed(round.size(), 0);
  std::set<std::tuple<std::string_view, std::uint64_t, std::string_view,
                      std::size_t>>
      seen;
  for (std::size_t i = 0; i < round.size(); ++i) {
    if (!live[i]) continue;
    const DeviceQuery& q = *round[i].query;
    const auto key = std::make_tuple(std::string_view(q.queue_key), q.epoch,
                                     std::string_view(q.plan_key),
                                     round[i].part_index);
    if (seen.insert(key).second) {
      payload += round[i].wire_bytes;
      contributed[i] = round[i].wire_bytes;
    } else {
      saved += round[i].wire_bytes;
    }
  }
  std::uint64_t wire = 0;
  double pcie_s = 0.0;
  if (n_live > 0) {
    wire = payload + options_.transfer_overhead_bytes;
    pcie_s = fpga.PcieSeconds(static_cast<double>(wire));
  }
  const double overhead_share =
      n_live > 0 ? static_cast<double>(options_.transfer_overhead_bytes) /
                       static_cast<double>(n_live)
                 : 0.0;

  const std::uint64_t round_id = n_live > 0 ? ++round_seq_ : round_seq_;

  // --- Matching phase: items run back to back on the one simulated card.
  // Outcomes are staged locally so the round's stats publish BEFORE any
  // query is notified: a caller returning from FinishQuery must already see
  // its rounds in stats(). ---
  struct ItemOutcome {
    Status status = Status::OK();
    KernelRunResult run;
    double kernel_seconds = 0.0;
  };
  std::vector<ItemOutcome> outcomes(round.size());
  std::set<const DeviceQuery*> round_queries;
  double round_kernel = 0.0;
  std::uint64_t executed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  std::vector<RoundWork> trace;
  // Stage scopes held in an optional so "kernel" closes before "reassembly"
  // opens without re-nesting the two big loops below.
  std::optional<obs::StageScope> prof_stage;
  prof_stage.emplace("kernel");
  for (std::size_t i = 0; i < round.size(); ++i) {
    WorkItem& item = round[i];
    DeviceQuery& q = *item.query;

    Status item_status = Status::OK();
    KernelRunResult run;
    double kernel_s = 0.0;
    if (!live[i]) {
      item_status =
          Status::DeadlineExceeded("device work item cancelled before matching");
    } else {
      trace.clear();
      StatusOr<KernelRunResult> r =
          RunKernel(item.cst, q.order, fpga, q.collector,
                    options_.cycle_sim ? &trace : nullptr, q.cancel);
      if (!r.ok()) {
        item_status = r.status();
      } else {
        run = std::move(*r);
        double cycles = 0.0;
        if (options_.cycle_sim) {
          StatusOr<PipelineSimResult> sim =
              SimulatePipeline(fpga, options_.variant, trace, q.cancel);
          if (!sim.ok()) {
            item_status = sim.status();
          } else {
            cycles = sim->cycles;
          }
        } else {
          cycles = KernelCycles(fpga, options_.variant, run.counters);
        }
        if (item_status.ok()) {
          cycles += ResultFlushCycles(fpga, run.embeddings,
                                      item.cst.NumQueryVertices());
          if (options_.variant != FastVariant::kDram) {
            // The image sits in card DRAM after the shared transfer; each
            // matching pass still DMAs it into BRAM (dedup shares the PCIe
            // hop, not the BRAM load).
            cycles += CstLoadCycles(fpga, item.cst.SizeWords());
          }
          kernel_s = fpga.CyclesToSeconds(cycles);
        }
      }
    }

    outcomes[i].status = std::move(item_status);
    outcomes[i].run = std::move(run);
    outcomes[i].kernel_seconds = kernel_s;
    if (outcomes[i].status.ok()) {
      ++executed;
      round_queries.insert(&q);
      round_kernel += kernel_s;
    } else if (outcomes[i].status.code() == StatusCode::kDeadlineExceeded) {
      ++cancelled;
    } else {
      // A genuine kernel/pipeline error, not a deadline: keep it out of the
      // cancellation count so Summary() does not mask device failures.
      ++failed;
    }
  }

  prof_stage.reset();

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.rounds = round_seq_;
    if (n_live > 0) {
      obs::TimelineRound tr;
      tr.round = round_id;
      tr.start_seconds = round_start;
      tr.duration_seconds = round_timer.ElapsedSeconds();
      tr.pcie_sim_seconds = pcie_s;
      tr.kernel_sim_seconds = round_kernel;
      tr.items = executed;
      tr.queries = round_queries.size();
      tr.wire_bytes = wire;
      recent_rounds_.push_back(tr);
      while (recent_rounds_.size() > kRecentRoundsCapacity) {
        recent_rounds_.pop_front();
      }
    }
    stats_.items += executed;
    stats_.cancelled_items += cancelled;
    stats_.failed_items += failed;
    stats_.payload_bytes += payload;
    stats_.wire_bytes += wire;
    stats_.dedup_bytes_saved += saved;
    if (executed > 0) {
      stats_.sum_round_queries += round_queries.size();
      stats_.max_items_per_round =
          std::max(stats_.max_items_per_round, executed);
      stats_.max_queries_per_round = std::max<std::uint64_t>(
          stats_.max_queries_per_round, round_queries.size());
    }
    stats_.pcie_seconds += pcie_s;
    stats_.kernel_seconds += round_kernel;
  }

  // Mirror the round into the process-wide registry (relaxed atomics; no
  // lock shared with the stats block above).
  if (items_counter_ != nullptr) {
    if (n_live > 0) rounds_counter_->Increment();
    items_counter_->Increment(executed);
    cancelled_counter_->Increment(cancelled);
    failed_counter_->Increment(failed);
    payload_bytes_counter_->Increment(payload);
    wire_bytes_counter_->Increment(wire);
    dedup_saved_counter_->Increment(saved);
    occupancy_gauge_->Set(
        static_cast<double>(executed) /
        static_cast<double>(std::max<std::size_t>(1, options_.max_batch_items)));
  }

  // --- Reassembly: fold each item into its query and release waiters. ---
  prof_stage.emplace("reassembly");
  for (std::size_t i = 0; i < round.size(); ++i) {
    DeviceQuery& q = *round[i].query;
    ItemOutcome& out = outcomes[i];
    const double pcie_share =
        wire > 0 && out.status.ok()
            ? pcie_s *
                  ((static_cast<double>(contributed[i]) + overhead_share) /
                   static_cast<double>(wire))
            : 0.0;
    {
      std::lock_guard<std::mutex> qlock(q.mu);
      if (!out.status.ok()) {
        // First failure wins; an already-failed query's later items were
        // skipped above and keep the original status.
        if (q.result.status.ok()) q.result.status = std::move(out.status);
      } else {
        q.result.counters += out.run.counters;
        q.result.embeddings += out.run.embeddings;
        q.result.kernel_seconds += out.kernel_seconds;
        q.result.pcie_seconds += pcie_share;
        q.result.dma_bytes += contributed[i] +
                              static_cast<std::uint64_t>(overhead_share);
        ++q.result.items;
        if (q.result.first_round == 0) q.result.first_round = round_id;
        q.result.last_round = round_id;
      }
      --q.outstanding;
      if (q.outstanding == 0) q.cv.notify_all();
    }
  }
}

DeviceStats DeviceExecutor::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::size_t DeviceExecutor::queue_depth() const {
  std::lock_guard<util::ProfiledMutex> lock(mu_);
  return total_queued_;
}

std::vector<obs::TimelineRound> DeviceExecutor::recent_rounds() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return {recent_rounds_.begin(), recent_rounds_.end()};
}

StatusOr<FastRunResult> RunCstOnDevice(DeviceExecutor& device, const Cst& cst,
                                       const MatchingOrder& order,
                                       const FastRunOptions& options,
                                       const std::string& queue_key,
                                       std::uint64_t epoch,
                                       const std::string& plan_key,
                                       double build_seconds) {
  FAST_RETURN_IF_ERROR(device.options().fpga.Validate());
  const QueryGraph& q = cst.layout().query();
  FastRunResult result;
  result.order = order;
  result.build_seconds = build_seconds;

  // The collector lives on this thread's stack; only the device thread
  // touches it between here and FinishQuery, which synchronizes the handoff
  // back.
  ResultCollector collector(options.store_limit);
  if (options.embedding_callback) collector.SetCallback(options.embedding_callback);

  const PartitionConfig pconfig = DerivePartitionConfig(
      device.options().fpga, q.NumVertices(), options.partition);
  std::shared_ptr<DeviceQuery> session = device.BeginQuery(
      queue_key, epoch, plan_key, order, &collector, options.cancel);

  // Partitions stream to the device as Alg. 2 emits them, so matching
  // overlaps the remainder of partitioning exactly as in the driver path.
  // The whole submit-and-wait is this request's wall `device_wait` span —
  // the time the worker thread spent blocked on shared device rounds.
  if (options.trace != nullptr) options.trace->Begin(obs::Span::kDeviceWait);
  FAST_PROF_STAGE("device_wait");
  Timer partition_timer;
  const Status partition_status = PartitionCst(
      cst, order, pconfig,
      [&](Cst part) -> Status {
        return device.EnqueuePartition(session, std::move(part));
      },
      &result.partition_stats);
  result.partition_seconds = partition_timer.ElapsedSeconds();

  // Reap before propagating any partitioning error: items already queued
  // must be accounted for even when a later enqueue failed.
  DeviceQueryResult reaped = device.FinishQuery(session);
  if (options.trace != nullptr) {
    options.trace->End();
    // The simulated device-side attribution of that wait: this query's
    // amortized PCIe share and its items' kernel occupancy.
    options.trace->RecordSimulated(obs::Span::kDma, reaped.pcie_seconds);
    options.trace->RecordSimulated(obs::Span::kKernel, reaped.kernel_seconds);
  }
  FAST_RETURN_IF_ERROR(partition_status);
  FAST_RETURN_IF_ERROR(reaped.status);

  obs::ScopedSpan reassembly_span(options.trace, obs::Span::kReassembly);
  result.counters = reaped.counters;
  result.embeddings = reaped.embeddings;
  result.kernel_seconds = reaped.kernel_seconds;
  result.pcie_seconds = reaped.pcie_seconds;
  result.dma_bytes = reaped.dma_bytes;
  result.fpga_partitions = reaped.items;
  result.total_seconds =
      result.build_seconds +
      std::max(result.partition_seconds,
               result.pcie_seconds + result.kernel_seconds);
  result.sample_embeddings = collector.stored();
  return result;
}

}  // namespace fast::device
