#ifndef FAST_DEVICE_DEVICE_EXECUTOR_H_
#define FAST_DEVICE_DEVICE_EXECUTOR_H_

// Shared device executor: ONE simulated FPGA serving partition work from many
// in-flight queries — across tenants — through a multi-queue front.
//
//   workers ── BeginQuery ──▶ per-tenant item queues (one per queue key)
//      │       EnqueuePartition        │
//      │   (CST partitions, each       │  deficit-weighted round robin
//      │    pinned to its request's    ▼
//      │    captured epoch)      batch scheduler: coalesce up to max_batch
//      │                         items from MANY queries into one device
//      │                         round (wait batch_window for stragglers)
//      │                               │
//      │                   ┌───────────┴────────────┐
//      │                   │ round: ONE shared PCIe │
//      │                   │ transfer (identical    │
//      │                   │ images cross once),    │
//      │                   │ then match each item   │
//      │                   │ (kernel + cycle model) │
//      │                   └───────────┬────────────┘
//      └── FinishQuery ◀── per-query reassembly (counters, embeddings,
//                          simulated kernel/PCIe seconds) ◀──┘
//
// The per-worker serving path (service/graph_state.h) simulates a *private*
// device per request: every query pays its own PCIe transaction and the card
// idles between requests. This executor is the FAST co-design applied across
// requests: CST partitions from concurrent queries — and concurrent tenants —
// are batched into device rounds, so the fixed per-DMA-transaction cost
// (descriptor setup, doorbell, completion — modeled as
// `transfer_overhead_bytes` of PCIe-equivalent bytes) is paid once per ROUND
// instead of once per partition, and identical partition images (same tenant,
// epoch, plan and partition index — e.g. two in-flight requests for the same
// canonical query shape) cross the bus once.
//
// Fairness reuses the deficit-weighted round-robin discipline of
// tenant::TenantRouter: each queue key (tenant) spends up to `weight` credits
// per cycle over the backlogged queues, so a hot tenant flooding the device
// with partitions cannot starve a cold tenant's round slots.
//
// Deadlines: every item carries its request's CancelToken. The scheduler
// probes it mid-batch — before the item's transfer and again before matching
// — and the kernel/pipeline simulation probe it per round, so an expired
// deadline aborts inside a device round exactly like the CPU path.
//
// Threading: one device thread (the simulated card) executes rounds
// sequentially; any number of workers submit concurrently. EnqueuePartition
// applies back-pressure (blocks) past `max_queued_items`. Shutdown drains all
// queued items, so FinishQuery never deadlocks; owners must stop submitting
// workers before shutting the executor down.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/driver.h"
#include "core/result_collector.h"
#include "cst/cst.h"
#include "fpga/config.h"
#include "fpga/cycle_model.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "query/matching_order.h"
#include "util/cancel.h"
#include "util/profiled_mutex.h"
#include "util/status.h"

namespace fast::device {

struct DeviceOptions {
  // The simulated card and pipeline variant. Services configure these from
  // their FastRunOptions so the shared device matches the per-worker model.
  FpgaConfig fpga = AlveoU200Config();
  FastVariant variant = FastVariant::kSep;

  // How long the scheduler holds a non-full batch open for stragglers from
  // other queries once the first item is available. 0 = dispatch immediately.
  double batch_window_seconds = 200e-6;

  // Maximum work items (CST partitions) per device round. 1 disables
  // coalescing — the unbatched A/B baseline of bench_batching.
  std::size_t max_batch_items = 8;

  // Back-pressure bound on queued items across all queues; EnqueuePartition
  // blocks (never rejects — a query's partitions cannot be dropped halfway)
  // until the device drains below it. 0 = unbounded.
  std::size_t max_queued_items = 4096;

  // Fixed per-DMA-transaction cost in PCIe-equivalent bytes (descriptor
  // setup, doorbell write, completion interrupt — a few microseconds on real
  // hardware, ~64 KiB at gen3 x16 bandwidth). Paid once per round; this is
  // the quantity batching amortizes.
  std::size_t transfer_overhead_bytes = 64 * 1024;

  // Matching-phase cycles per item: true = cycle-stepped pipeline simulation
  // over the recorded round trace (fpga/pipeline_sim.h), false = the closed
  // forms (Eqs. 1-4). The simulation is slower but sees FIFO back-pressure.
  bool cycle_sim = true;

  // Process-wide metrics registry the executor reports into
  // (fast_device_* counters, queue-depth/occupancy gauges). Non-owning; must
  // outlive the executor. nullptr = no registry reporting. NOTE: appended
  // last — existing call sites brace-initialize this struct positionally.
  obs::MetricsRegistry* metrics = nullptr;
};

struct DeviceStats {
  std::uint64_t rounds = 0;            // rounds with at least one live item
  std::uint64_t items = 0;             // partitions matched on the device
  std::uint64_t cancelled_items = 0;   // skipped or aborted by a deadline
  std::uint64_t failed_items = 0;      // kernel/pipeline errors (not deadlines)
  std::uint64_t queries = 0;           // queries fully reaped (FinishQuery)
  std::uint64_t payload_bytes = 0;     // unique image bytes transferred
  std::uint64_t wire_bytes = 0;        // payload + per-round transaction cost
  std::uint64_t dedup_bytes_saved = 0; // duplicate images that rode free
  std::uint64_t sum_round_queries = 0; // Σ distinct queries per round
  std::uint64_t max_items_per_round = 0;
  std::uint64_t max_queries_per_round = 0;
  double pcie_seconds = 0;    // simulated transfer time across all rounds
  double kernel_seconds = 0;  // simulated matching time across all items

  // Occupancy: how many items / distinct queries an average round carried.
  // QueriesPerRound > 1 is the cross-query amortization actually happening.
  double ItemsPerRound() const {
    return rounds > 0 ? static_cast<double>(items) / static_cast<double>(rounds) : 0.0;
  }
  double QueriesPerRound() const {
    return rounds > 0
               ? static_cast<double>(sum_round_queries) / static_cast<double>(rounds)
               : 0.0;
  }
  std::string Summary() const;
};

// Aggregate outcome of one query's partitions on the device.
struct DeviceQueryResult {
  Status status = Status::OK();  // first item failure (DEADLINE_EXCEEDED, ...)
  KernelCounters counters;
  std::uint64_t embeddings = 0;
  std::size_t items = 0;  // partitions matched
  double kernel_seconds = 0;
  // This query's amortized share of its rounds' transfer time: contributed
  // unique bytes plus an even slice of each round's fixed transaction cost.
  double pcie_seconds = 0;
  // The byte form of the same attribution (what pcie_seconds was computed
  // from), for per-tenant DMA accounting. A fully deduplicated query is
  // charged only its overhead slices.
  std::uint64_t dma_bytes = 0;
  // 1-based sequence numbers of the first/last round that matched an item of
  // this query (0 = none ran). Tests assert fairness on these: a cold
  // tenant's rounds must not trail a hot tenant's whole backlog.
  std::uint64_t first_round = 0;
  std::uint64_t last_round = 0;
};

// Opaque per-query handle; defined in the .cc.
struct DeviceQuery;

class DeviceExecutor {
 public:
  explicit DeviceExecutor(DeviceOptions options = {});
  ~DeviceExecutor();

  DeviceExecutor(const DeviceExecutor&) = delete;
  DeviceExecutor& operator=(const DeviceExecutor&) = delete;

  // Registers (or updates) the WRR weight of `key`'s queue: consecutive
  // dispatch slots per cycle over the backlogged queues. 0 is treated as 1.
  void SetQueueWeight(const std::string& key, std::uint32_t weight);

  // Drops `key`'s queue bookkeeping once it is empty (no-op otherwise).
  // Callers drain the tenant's requests first (tenant::TenantRouter does).
  void DropQueue(const std::string& key);

  // Opens a query session. `queue_key` selects the fairness queue (tenant
  // id); `epoch` and `plan_key` identify the CST image for cross-query
  // transfer dedup (partitions of the same plan built on the same snapshot
  // are bit-identical). `collector` and `cancel` are borrowed; the caller
  // keeps both alive until FinishQuery returns. The collector is only
  // touched from the device thread until then.
  std::shared_ptr<DeviceQuery> BeginQuery(const std::string& queue_key,
                                          std::uint64_t epoch,
                                          const std::string& plan_key,
                                          const MatchingOrder& order,
                                          ResultCollector* collector,
                                          const CancelToken* cancel);

  // Enqueues one CST partition of `query`. Blocks on back-pressure;
  // FAILED_PRECONDITION after Shutdown. Call from one thread per query.
  Status EnqueuePartition(const std::shared_ptr<DeviceQuery>& query, Cst part);

  // Blocks until every enqueued partition of `query` has been matched (or
  // skipped by cancellation) and returns the aggregate. Call once, after the
  // last EnqueuePartition.
  DeviceQueryResult FinishQuery(const std::shared_ptr<DeviceQuery>& query);

  // Stops admission, drains every queued item, joins the device thread.
  // Idempotent; also run by the destructor.
  void Shutdown();

  DeviceStats stats() const;
  const DeviceOptions& options() const { return options_; }
  // Items currently queued (not yet popped into a round) — the periodic
  // sampler polls this for the fast_device_queue_depth time series.
  std::size_t queue_depth() const;

  // Oldest-first ring of recent rounds on the ProcessUptimeSeconds axis —
  // the timeline exporter's synthetic "device" track. Bounded (oldest
  // evicted); only rounds with at least one live item are retained.
  std::vector<obs::TimelineRound> recent_rounds() const;

 private:
  struct WorkItem;
  struct Queue;

  void DeviceLoop();
  // Pops the next round under WRR, holding the batch open for the window;
  // empty result = stopping and drained.
  std::vector<WorkItem> PopRound();
  void RunRound(std::vector<WorkItem> round);

  const DeviceOptions options_;

  // Scheduler state: queues, the WRR active list, the global queued count.
  // Never held while matching. Contention-profiled as "device_sched" (the
  // condition variables are _any variants so they can wait on it).
  mutable util::ProfiledMutex mu_{"device_sched"};
  std::condition_variable_any cv_;        // device: work available / stopping
  std::condition_variable_any space_cv_;  // submitters: back-pressure released
  std::unordered_map<std::string, std::shared_ptr<Queue>> queues_;
  std::list<std::shared_ptr<Queue>> active_;  // queues with pending items
  std::size_t total_queued_ = 0;
  bool stopping_ = false;

  mutable std::mutex stats_mu_;
  DeviceStats stats_;
  std::deque<obs::TimelineRound> recent_rounds_;  // guarded by stats_mu_
  std::uint64_t round_seq_ = 0;  // device thread only

  // Registry metrics bound once at construction (null without a registry).
  obs::Counter* rounds_counter_ = nullptr;
  obs::Counter* items_counter_ = nullptr;
  obs::Counter* cancelled_counter_ = nullptr;
  obs::Counter* failed_counter_ = nullptr;
  obs::Counter* payload_bytes_counter_ = nullptr;
  obs::Counter* wire_bytes_counter_ = nullptr;
  obs::Counter* dedup_saved_counter_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Gauge* occupancy_gauge_ = nullptr;

  std::thread device_;  // last member: joins before state is destroyed
};

// Runs steps (2)-(6) of the FAST pipeline (see core/driver.h) with every
// partition matched on the shared device executor instead of inline on the
// calling thread: partitions stream into the executor as Alg. 2 emits them,
// and the call blocks until the device has matched them all. `queue_key`
// routes fairness; `epoch`/`plan_key` enable transfer dedup. Differences from
// RunFastWithCst: the device's FpgaConfig/variant replace options.fpga /
// options.variant, cpu_share_delta is ignored (the device owns all
// partitions), and the embedding callback runs on the device thread.
// total_seconds composes as build + max(partition, pcie + kernel).
StatusOr<FastRunResult> RunCstOnDevice(DeviceExecutor& device, const Cst& cst,
                                       const MatchingOrder& order,
                                       const FastRunOptions& options,
                                       const std::string& queue_key,
                                       std::uint64_t epoch,
                                       const std::string& plan_key,
                                       double build_seconds = 0.0);

}  // namespace fast::device

#endif  // FAST_DEVICE_DEVICE_EXECUTOR_H_
