#include "fpga/config.h"

namespace fast {

Status FpgaConfig::Validate() const {
  if (clock_mhz <= 0) return Status::InvalidArgument("clock_mhz must be positive");
  if (bram_words == 0) return Status::InvalidArgument("bram_words must be positive");
  if (bram_read_latency == 0 || dram_read_latency == 0) {
    return Status::InvalidArgument("read latencies must be positive");
  }
  if (dram_read_latency < bram_read_latency) {
    return Status::InvalidArgument("DRAM latency must be >= BRAM latency");
  }
  if (dram_burst_words_per_cycle == 0) {
    return Status::InvalidArgument("dram_burst_words_per_cycle must be positive");
  }
  if (pcie_gbps <= 0) return Status::InvalidArgument("pcie_gbps must be positive");
  if (port_max == 0) return Status::InvalidArgument("port_max must be positive");
  if (max_new_partials == 0) {
    return Status::InvalidArgument("max_new_partials must be positive");
  }
  if (Lf() == 0 || Lt() == 0) {
    return Status::InvalidArgument("module latencies must be positive");
  }
  if (fifo_depth == 0) return Status::InvalidArgument("fifo_depth must be positive");
  return Status::OK();
}

}  // namespace fast
