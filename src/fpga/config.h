#ifndef FAST_FPGA_CONFIG_H_
#define FAST_FPGA_CONFIG_H_

// Device model of the FPGA card (paper Sec. II-B, VI-B, VII "Setup").
//
// The paper runs on a Xilinx Alveo U200: 300 MHz kernel clock, 35 MB of
// on-chip BRAM, 64 GB of off-chip DRAM, PCIe gen3 x16 to the host. BRAM
// reads take 1 cycle; DRAM reads 7-8 cycles. These numbers parameterize the
// cycle-level simulation that replaces the physical card here.

#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace fast {

struct FpgaConfig {
  // Kernel clock in MHz (Alveo U200 bitstream of the paper: 300 MHz).
  double clock_mhz = 300.0;

  // On-chip BRAM capacity in 32-bit words (35 MB).
  std::size_t bram_words = (35ull << 20) / 4;

  // Off-chip DRAM capacity in bytes (64 GB).
  std::size_t dram_bytes = 64ull << 30;

  // Read latency in cycles (Sec. V-B: "read latency of BRAM is 1 cycle while
  // DRAM is about 7-8 cycles").
  std::uint32_t bram_read_latency = 1;
  std::uint32_t dram_read_latency = 8;

  // Sequential DRAM burst throughput in words per cycle (used for the
  // DRAM->BRAM CST load and the result flush, which are streaming accesses).
  std::uint32_t dram_burst_words_per_cycle = 8;

  // Host<->card PCIe bandwidth in GB/s (gen3 x16 effective ~12 GB/s).
  double pcie_gbps = 12.0;

  // Port_max (Sec. VI-A): the array-partition mechanism bounds how many
  // adjacency entries one candidate may have so edge checks complete in
  // O(1); CSTs whose D_CST exceeds this are partitioned.
  std::uint32_t port_max = 512;

  // N_o (Sec. VI-B): maximum number of newly expanded partial results per
  // round. Must be >> (N*Lf + M*Lt)/(4N + 2M) ~ a few, but large values
  // consume on-chip resources; the default matches a mid-size BRAM budget.
  std::uint32_t max_new_partials = 4096;

  // Average per-module latencies L1..L6 of Sec. VI-B (cycles). Defaults: one
  // cycle to read P, two to expand + emit t_v, one per validation stage, one
  // to collect, two per t_n generate/process.
  std::uint32_t l1_read_buffer = 1;
  std::uint32_t l2_generate = 2;
  std::uint32_t l3_visited_validate = 1;
  std::uint32_t l4_collect = 1;
  std::uint32_t l5_generate_edge_task = 1;
  std::uint32_t l6_edge_validate = 1;

  // Depth of inter-module FIFOs in the task-parallel variants.
  std::uint32_t fifo_depth = 1024;

  // L_f = L1+L2+L3+L4 and L_t = L5+L6 of the cycle equations.
  std::uint32_t Lf() const {
    return l1_read_buffer + l2_generate + l3_visited_validate + l4_collect;
  }
  std::uint32_t Lt() const { return l5_generate_edge_task + l6_edge_validate; }

  double ClockHz() const { return clock_mhz * 1e6; }
  double CyclesToSeconds(double cycles) const { return cycles / ClockHz(); }
  double PcieSeconds(double bytes) const { return bytes / (pcie_gbps * 1e9); }

  Status Validate() const;
};

// The paper's card, as configured above.
inline FpgaConfig AlveoU200Config() { return FpgaConfig{}; }

}  // namespace fast

#endif  // FAST_FPGA_CONFIG_H_
