#include "fpga/cycle_model.h"

#include <algorithm>

namespace fast {

const char* FastVariantName(FastVariant variant) {
  switch (variant) {
    case FastVariant::kDram:
      return "FAST-DRAM";
    case FastVariant::kBasic:
      return "FAST-BASIC";
    case FastVariant::kTask:
      return "FAST-TASK";
    case FastVariant::kSep:
      return "FAST-SEP";
  }
  return "FAST-?";
}

double SerialCycles(const FpgaConfig& config, const KernelCounters& c) {
  const auto n = static_cast<double>(c.partial_results);
  const auto m = static_cast<double>(c.edge_tasks);
  return n * config.Lf() + m * config.Lt();
}

double KernelCycles(const FpgaConfig& config, FastVariant variant,
                    const KernelCounters& c) {
  const auto n = static_cast<double>(c.partial_results);
  const auto m = static_cast<double>(c.edge_tasks);
  const auto rounds = static_cast<double>(c.rounds);
  const double no = static_cast<double>(config.max_new_partials);
  // Pipeline fill/drain overhead per generator activation.
  const double fill = rounds * (config.Lf() + config.Lt());

  switch (variant) {
    case FastVariant::kBasic: {
      // Eq. 2: four po-stages and two tn-stages at II=1, amortized module
      // latencies.
      return (n * config.Lf() + m * config.Lt()) / no + 4.0 * n + 2.0 * m + fill;
    }
    case FastVariant::kDram: {
      // Basic pipeline, but the stages touching CST or the partial-result
      // buffer run at DRAM read latency: reading P and fetching candidates
      // charge L_dram per po on two stages; edge validation charges L_dram
      // per tn; the pure-compute visited check and collect stay at II=1.
      const double lat = config.dram_read_latency;
      return (n * config.Lf() + m * config.Lt()) / no + (2.0 * lat + 2.0) * n +
             (lat + 1.0) * m + fill;
    }
    case FastVariant::kTask: {
      // Eq. 3: the tv-pipeline (generate+validate) overlaps, the tn-pipeline
      // (generate+validate+collect) overlaps, but tn generation waits for tv
      // generation within a round.
      return 2.0 * n + std::max(n, m) + fill;
    }
    case FastVariant::kSep: {
      // Eq. 4: split generators let both task streams start immediately.
      return n + std::max(n, m) + fill;
    }
  }
  return 0.0;
}

double CstLoadCycles(const FpgaConfig& config, std::size_t cst_words) {
  // Streaming burst DMA plus a fixed handshake.
  constexpr double kDmaSetupCycles = 64.0;
  return kDmaSetupCycles + static_cast<double>(cst_words) /
                               static_cast<double>(config.dram_burst_words_per_cycle) +
         config.dram_read_latency;
}

double ResultFlushCycles(const FpgaConfig& config, std::uint64_t results,
                         std::size_t query_size) {
  const double words = static_cast<double>(results) * static_cast<double>(query_size);
  return words / static_cast<double>(config.dram_burst_words_per_cycle);
}

std::size_t PartialBufferWords(const FpgaConfig& config, std::size_t query_size) {
  if (query_size == 0) return 0;
  return (query_size - 1) * static_cast<std::size_t>(config.max_new_partials) *
         query_size;
}

}  // namespace fast
