#ifndef FAST_FPGA_CYCLE_MODEL_H_
#define FAST_FPGA_CYCLE_MODEL_H_

// The paper's cycle cost model (Sec. VI-B/C/D, Equations 1-4).
//
// The functional engine executes Algs. 4-8 exactly and records the workload
// counters N (partial results expanded) and M (edge-validation tasks); this
// module turns those counters into simulated kernel cycles per variant:
//
//   serial (no pipelining) : L_serial = N*L_f + M*L_t                  (Eq 1)
//   FAST-BASIC             : L_basic ~ (N*L_f + M*L_t)/N_o + 4N + 2M   (Eq 2)
//   FAST-TASK              : L_task  ~ 2N + max(N, M)                  (Eq 3)
//   FAST-SEP               : L_sep   ~  N + max(N, M)                  (Eq 4)
//
// FAST-DRAM is FAST-BASIC with the CST (and the intermediate-result buffer)
// resident in DRAM, so the memory-touching pipeline stages run at the DRAM
// read latency instead of 1 cycle.

#include <cstdint>

#include "fpga/config.h"

namespace fast {

enum class FastVariant {
  kDram = 0,   // CST in DRAM, basic pipeline
  kBasic = 1,  // BRAM-resident CST, modules run serially (Fig. 5a)
  kTask = 2,   // + task parallelism via FIFOs (Fig. 5b)
  kSep = 3,    // + split t_v / t_n generators (Fig. 5c)
};

const char* FastVariantName(FastVariant variant);

// Workload counters recorded by one kernel execution over one CST partition.
struct KernelCounters {
  std::uint64_t partial_results = 0;  // N: total p_o generated
  std::uint64_t edge_tasks = 0;       // M: total t_n generated
  std::uint64_t visited_tasks = 0;    // == N (one t_v per p_o)
  std::uint64_t rounds = 0;           // generator activations
  std::uint64_t results = 0;          // complete embeddings found
  std::uint64_t max_buffer_entries = 0;  // high-water mark of P (entries)

  KernelCounters& operator+=(const KernelCounters& other) {
    partial_results += other.partial_results;
    edge_tasks += other.edge_tasks;
    visited_tasks += other.visited_tasks;
    rounds += other.rounds;
    results += other.results;
    max_buffer_entries = std::max(max_buffer_entries, other.max_buffer_entries);
    return *this;
  }
};

// Matching-phase cycles for one partition under `variant` (Eqs. 1-4).
double KernelCycles(const FpgaConfig& config, FastVariant variant,
                    const KernelCounters& counters);

// Reference serial cost (Eq. 1), the no-pipelining upper bound.
double SerialCycles(const FpgaConfig& config, const KernelCounters& counters);

// DMA cost of streaming a CST of `cst_words` 32-bit words DRAM -> BRAM.
// Zero for FAST-DRAM (it reads the CST in place).
double CstLoadCycles(const FpgaConfig& config, std::size_t cst_words);

// Cost of flushing `results` embeddings of `query_size` words to DRAM.
double ResultFlushCycles(const FpgaConfig& config, std::uint64_t results,
                         std::size_t query_size);

// BRAM words needed for the intermediate-results buffer: (|V(q)|-1) * N_o
// slots of query_size words each (Sec. VI-B buffer design).
std::size_t PartialBufferWords(const FpgaConfig& config, std::size_t query_size);

}  // namespace fast

#endif  // FAST_FPGA_CYCLE_MODEL_H_
