#ifndef FAST_FPGA_FIFO_H_
#define FAST_FPGA_FIFO_H_

// Bounded FIFO emulating the hls::stream channels that connect the kernel
// modules in the task-parallel variants (Sec. VI-C). The functional engine
// drains producers into consumers through these queues; the high-water mark
// verifies that the configured hardware depth would not deadlock.

#include <cstddef>
#include <deque>

#include "util/logging.h"

namespace fast {

template <typename T>
class Fifo {
 public:
  explicit Fifo(std::size_t capacity) : capacity_(capacity) {
    FAST_CHECK_GT(capacity, 0u);
  }

  bool Full() const { return items_.size() >= capacity_; }
  bool Empty() const { return items_.empty(); }
  std::size_t Size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }

  // Returns false (and drops nothing) when full; hardware would stall the
  // producer instead.
  bool TryPush(T item) {
    if (Full()) return false;
    items_.push_back(std::move(item));
    high_water_ = std::max(high_water_, items_.size());
    ++total_pushed_;
    return true;
  }

  // Push that must succeed; CHECK-fails on overflow (a modelling bug).
  void Push(T item) { FAST_CHECK(TryPush(std::move(item))) << "FIFO overflow"; }

  T Pop() {
    FAST_CHECK(!Empty()) << "FIFO underflow";
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  std::size_t high_water_mark() const { return high_water_; }
  std::size_t total_pushed() const { return total_pushed_; }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
  std::size_t high_water_ = 0;
  std::size_t total_pushed_ = 0;
};

}  // namespace fast

#endif  // FAST_FPGA_FIFO_H_
