#include "fpga/pipeline_sim.h"

#include <algorithm>
#include <deque>

#include "util/logging.h"

namespace fast {

namespace {

// Fixed-latency delay line: tokens pushed this cycle become visible
// `latency` cycles later. Models a pipelined hardware stage's depth.
class DelayLine {
 public:
  explicit DelayLine(std::uint32_t latency) : slots_(std::max(1u, latency), 0) {}

  // Advances one cycle; returns the number of tokens that matured.
  std::uint32_t Tick() {
    const std::uint32_t out = slots_.front();
    slots_.pop_front();
    slots_.push_back(0);
    return out;
  }

  void Push(std::uint32_t count) { slots_.back() += count; }

  std::uint32_t InFlight() const {
    std::uint32_t total = 0;
    for (std::uint32_t s : slots_) total += s;
    return total;
  }

 private:
  std::deque<std::uint32_t> slots_;
};

// Token-counting FIFO with capacity and high-water tracking.
class CountFifo {
 public:
  explicit CountFifo(std::size_t capacity) : capacity_(capacity) {}

  bool Full() const { return size_ >= capacity_; }
  bool Empty() const { return size_ == 0; }
  void Push() {
    ++size_;
    high_water_ = std::max(high_water_, size_);
  }
  void Pop() {
    FAST_DCHECK(size_ > 0);
    --size_;
  }
  std::size_t high_water() const { return high_water_; }

 private:
  std::size_t capacity_;
  std::size_t size_ = 0;
  std::size_t high_water_ = 0;
};

// Serial execution (Fig. 5a): modules run back to back each round; a stage
// with initiation interval ii processing c tokens takes (fill + ii*c).
double SerialRoundCycles(const FpgaConfig& config, bool dram, std::uint32_t p,
                         std::uint32_t groups) {
  const double lat = dram ? config.dram_read_latency : 1.0;
  const std::uint64_t t = std::uint64_t{p} * groups;
  double cycles = config.l1_read_buffer;                 // batch fetch from P
  cycles += config.l2_generate + lat * p;                // t_v generation (CST read)
  cycles += config.l3_visited_validate + p;              // visited validation
  for (std::uint32_t g = 0; g < groups; ++g) {
    cycles += config.l5_generate_edge_task + p;          // t_n generation (outer loop
  }                                                      //  not pipelined, Sec. VI-A)
  if (groups > 0) {
    cycles += config.l6_edge_validate + lat * static_cast<double>(t);
  }
  cycles += config.l4_collect + lat * p;                 // synchronizer
  return cycles;
}

// Overlapped execution (Fig. 5b/c): a per-cycle simulation of the module
// graph with bounded FIFOs. kTask starts t_n generation when the t_v loop of
// the round completes; kSep runs both generators concurrently.
struct OverlapResult {
  double cycles = 0;
  double stalls = 0;
  std::size_t fv_high = 0;
  std::size_t fn_high = 0;
};

OverlapResult OverlappedRoundCycles(const FpgaConfig& config, bool split_generators,
                                    std::uint32_t p, std::uint32_t groups) {
  if (p == 0) return {};
  const std::uint64_t total_tn = std::uint64_t{p} * groups;

  CountFifo fifo_v(config.fifo_depth);   // Generator -> Visited Validator
  CountFifo fifo_n(config.fifo_depth);   // Generator -> Edge Validator
  CountFifo bits_v(config.fifo_depth);   // Visited Validator -> Synchronizer
  CountFifo bits_n(config.fifo_depth);   // Edge Validator -> Synchronizer
  DelayLine vv_pipe(config.l3_visited_validate);
  DelayLine ev_pipe(config.l6_edge_validate);

  std::uint32_t tv_emitted = 0;
  std::uint64_t tn_emitted = 0;
  std::uint32_t tn_group = 0;       // current group being generated
  std::uint32_t tn_in_group = 0;    // tasks emitted in the current group
  std::uint32_t tn_refill = config.l5_generate_edge_task;  // group-entry fill
  std::uint64_t v_bits_collected = 0;
  std::uint64_t n_bits_collected = 0;
  std::uint32_t retired = 0;

  OverlapResult result;
  double cycle = config.l1_read_buffer + config.l2_generate;  // pipeline fill
  const double kSafetyCap = 1e13;

  while (retired < p && cycle < kSafetyCap) {
    cycle += 1.0;

    // --- t_v generator: one p_o per cycle while the FIFO has room. ---
    const bool tv_active = tv_emitted < p;
    if (tv_active) {
      if (!fifo_v.Full()) {
        fifo_v.Push();
        ++tv_emitted;
      } else {
        result.stalls += 1.0;
      }
    }

    // --- t_n generator (Alg. 5 lines 10-12). In kTask it shares the
    // Generator module and must wait for the t_v loop; in kSep it runs on a
    // copy of the p_o stream from cycle zero, but cannot run ahead of what
    // has been generated. ---
    const bool tn_enabled = split_generators || tv_emitted == p;
    if (tn_enabled && tn_emitted < total_tn) {
      if (tn_refill > 0) {
        --tn_refill;
      } else if (tn_in_group < std::min<std::uint64_t>(p, split_generators
                                                              ? tv_emitted
                                                              : p)) {
        if (!fifo_n.Full()) {
          fifo_n.Push();
          ++tn_emitted;
          ++tn_in_group;
          if (tn_in_group == p) {
            tn_in_group = 0;
            ++tn_group;
            tn_refill = config.l5_generate_edge_task;
          }
        } else {
          result.stalls += 1.0;
        }
      }
    }

    // --- Validators: II=1, fixed latency, output into bit FIFOs. ---
    if (!fifo_v.Empty() && !bits_v.Full()) {
      fifo_v.Pop();
      vv_pipe.Push(1);
    }
    if (!fifo_n.Empty() && !bits_n.Full()) {
      fifo_n.Pop();
      ev_pipe.Push(1);
    }
    const std::uint32_t vv_done = vv_pipe.Tick();
    for (std::uint32_t i = 0; i < vv_done; ++i) bits_v.Push();
    const std::uint32_t ev_done = ev_pipe.Tick();
    for (std::uint32_t i = 0; i < ev_done; ++i) bits_n.Push();

    // --- Synchronizer: drains one bit from each stream per cycle and
    // retires p_o i once its visited bit and all `groups` edge bits are in.
    // Edge bits arrive group-major, so p_o i needs (groups-1)*p + i + 1 of
    // them (Alg. 8). ---
    if (!bits_v.Empty()) {
      bits_v.Pop();
      ++v_bits_collected;
    }
    if (!bits_n.Empty()) {
      bits_n.Pop();
      ++n_bits_collected;
    }
    const std::uint64_t need_n =
        groups == 0 ? 0
                    : static_cast<std::uint64_t>(groups - 1) * p + retired + 1;
    if (v_bits_collected > retired && n_bits_collected >= need_n) {
      ++retired;
    }
  }
  result.cycles = cycle + config.l4_collect;
  result.fv_high = std::max(fifo_v.high_water(), bits_v.high_water());
  result.fn_high = std::max(fifo_n.high_water(), bits_n.high_water());
  return result;
}

}  // namespace

StatusOr<PipelineSimResult> SimulatePipeline(const FpgaConfig& config,
                                             FastVariant variant,
                                             std::span<const RoundWork> rounds,
                                             const CancelToken* cancel) {
  FAST_RETURN_IF_ERROR(config.Validate());
  PipelineSimResult result;
  for (const RoundWork& round : rounds) {
    // One probe per simulated round, matching RunKernel's per-round probe:
    // each round's cost is bounded by one N_o batch of work.
    if (cancel != nullptr && cancel->Cancelled()) {
      return Status::DeadlineExceeded("pipeline simulation cancelled mid-run");
    }
    if (round.new_partials == 0) continue;
    switch (variant) {
      case FastVariant::kDram:
      case FastVariant::kBasic: {
        result.cycles += SerialRoundCycles(config, variant == FastVariant::kDram,
                                           round.new_partials, round.backward_groups);
        break;
      }
      case FastVariant::kTask:
      case FastVariant::kSep: {
        const OverlapResult r = OverlappedRoundCycles(
            config, variant == FastVariant::kSep, round.new_partials,
            round.backward_groups);
        result.cycles += r.cycles;
        result.stall_cycles += r.stalls;
        result.tv_fifo_high_water = std::max(result.tv_fifo_high_water, r.fv_high);
        result.tn_fifo_high_water = std::max(result.tn_fifo_high_water, r.fn_high);
        break;
      }
    }
  }
  return result;
}

}  // namespace fast
