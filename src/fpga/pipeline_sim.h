#ifndef FAST_FPGA_PIPELINE_SIM_H_
#define FAST_FPGA_PIPELINE_SIM_H_

// Cycle-stepped microarchitectural simulation of the FAST kernel pipelines
// (Fig. 5(a)/(b)/(c)).
//
// The analytic cost model (fpga/cycle_model.h) evaluates the paper's closed
// forms (Eqs. 1-4), which idealize away pipeline fill, FIFO back-pressure
// and the unpipelinable outer loop of t_n generation. This module instead
// *simulates* the module graph cycle by cycle: the Generator(s) emit tokens
// at their initiation intervals, tokens flow through bounded FIFOs into the
// Visited/Edge Validators, and the Synchronizer retires a partial result
// once both of its validation bits are complete. Producers stall when a FIFO
// is full, exactly as hls::stream back-pressure would.
//
// Inputs are per-round workload traces recorded by the functional kernel
// (core/kernel.h): how many partial results the round expanded and how many
// backward non-tree groups each carries. Tests verify the simulation tracks
// the analytic model on large workloads and exposes the degradation the
// closed forms cannot see (shallow FIFOs, tiny rounds).

#include <cstdint>
#include <span>
#include <vector>

#include "fpga/config.h"
#include "fpga/cycle_model.h"
#include "util/cancel.h"
#include "util/status.h"

namespace fast {

// Workload of one Generator round.
struct RoundWork {
  std::uint32_t new_partials = 0;  // p_o expanded this round (<= N_o)
  std::uint16_t backward_groups = 0;  // non-tree neighbors of the round's vertex
};

// Aggregate outcome of a pipeline simulation.
struct PipelineSimResult {
  double cycles = 0;
  // High-water marks of the inter-module FIFOs (tokens).
  std::size_t tv_fifo_high_water = 0;
  std::size_t tn_fifo_high_water = 0;
  // Cycles any producer spent stalled on a full FIFO.
  double stall_cycles = 0;
};

// Simulates the given variant over the recorded rounds. The serial variants
// (kDram/kBasic) run their modules back to back per round; kTask overlaps
// modules through FIFOs but generates t_n only after the t_v loop of the
// round; kSep runs both generators concurrently (Sec. VI-D).
//
// A non-null `cancel` token is probed once per round, mirroring RunKernel's
// discipline: device-mode serving simulates the pipeline inside shared device
// rounds (device/device_executor.h), and an expired deadline must abort the
// simulation mid-run with DEADLINE_EXCEEDED just like the matching loops.
StatusOr<PipelineSimResult> SimulatePipeline(const FpgaConfig& config,
                                             FastVariant variant,
                                             std::span<const RoundWork> rounds,
                                             const CancelToken* cancel = nullptr);

}  // namespace fast

#endif  // FAST_FPGA_PIPELINE_SIM_H_
