#ifndef FAST_GRAPH_DIRECTED_H_
#define FAST_GRAPH_DIRECTED_H_

// Directed subgraph matching by reduction to the undirected engine
// (Sec. II-A: "our techniques can be readily extended to edge-labeled and
// directed graphs").
//
// Encoding: every directed edge a -> b becomes a length-2 path through an
// auxiliary "edge vertex" x carrying a reserved label:
//
//     a --[kOut]-- x --[kIn]-- b
//
// with edge labels kOut/kIn marking the tail/head side. Applying the same
// encoding to the query graph makes undirected matching on the encoded pair
// exactly equivalent to directed matching on the originals: an auxiliary
// query vertex can only map to an auxiliary data vertex (label), and the
// kOut/kIn edge labels pin the orientation regardless of vertex-id order.
// Each directed embedding corresponds to exactly one encoded embedding
// (the auxiliary vertex of a matched edge is uniquely determined), so counts
// carry over unchanged.

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace fast {

// Edge labels used by the encoding (0 stays free for plain edges).
inline constexpr Label kDirectedOutLabel = 1;
inline constexpr Label kDirectedInLabel = 2;

// Collects a directed graph and encodes it as an undirected labelled graph.
// Original vertices keep their ids (0..n-1); auxiliary vertices follow.
class DirectedGraphBuilder {
 public:
  // `aux_label` must not be used by any real vertex of either graph; pass
  // the same value when encoding the query and the data graph.
  explicit DirectedGraphBuilder(Label aux_label) : aux_label_(aux_label) {}

  VertexId AddVertex(Label label) {
    labels_.push_back(label);
    return static_cast<VertexId>(labels_.size() - 1);
  }

  Status AddEdge(VertexId from, VertexId to) {
    if (from >= labels_.size() || to >= labels_.size()) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (from == to) return Status::InvalidArgument("self loops unsupported");
    edges_.push_back({from, to});
    return Status::OK();
  }

  std::size_t NumVertices() const { return labels_.size(); }
  std::size_t NumEdges() const { return edges_.size(); }

  // Produces the encoded undirected graph.
  StatusOr<Graph> BuildEncoded() const {
    for (Label l : labels_) {
      if (l == aux_label_) {
        return Status::InvalidArgument("a vertex uses the reserved aux label");
      }
    }
    GraphBuilder b(labels_.size() + edges_.size());
    for (Label l : labels_) b.AddVertex(l);
    for (const auto& [from, to] : edges_) {
      const VertexId x = b.AddVertex(aux_label_);
      FAST_RETURN_IF_ERROR(b.AddEdge(from, x, kDirectedOutLabel));
      FAST_RETURN_IF_ERROR(b.AddEdge(x, to, kDirectedInLabel));
    }
    return b.Build();
  }

 private:
  Label aux_label_;
  std::vector<Label> labels_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

// Projects an embedding of an encoded query onto the original query vertices
// (drops the auxiliary tail).
inline std::vector<VertexId> ProjectDirectedEmbedding(
    const std::vector<VertexId>& encoded_embedding, std::size_t original_vertices) {
  return {encoded_embedding.begin(),
          encoded_embedding.begin() + static_cast<std::ptrdiff_t>(original_vertices)};
}

}  // namespace fast

#endif  // FAST_GRAPH_DIRECTED_H_
