#include "graph/generators.h"

#include "util/logging.h"
#include "util/rng.h"

namespace fast {

StatusOr<Graph> GenerateErdosRenyi(std::size_t num_vertices, std::size_t num_edges,
                                   std::size_t num_labels, std::uint64_t seed) {
  if (num_vertices == 0) return Status::InvalidArgument("num_vertices must be > 0");
  if (num_labels == 0) return Status::InvalidArgument("num_labels must be > 0");
  Rng rng(seed);
  GraphBuilder b(num_vertices);
  for (std::size_t i = 0; i < num_vertices; ++i) {
    b.AddVertex(static_cast<Label>(rng.Uniform(num_labels)));
  }
  for (std::size_t e = 0; e < num_edges; ++e) {
    FAST_RETURN_IF_ERROR(
        b.AddEdge(static_cast<VertexId>(rng.Uniform(num_vertices)),
                  static_cast<VertexId>(rng.Uniform(num_vertices))));
  }
  return b.Build();
}

StatusOr<Graph> GenerateBarabasiAlbert(std::size_t num_vertices,
                                       std::size_t edges_per_vertex,
                                       std::size_t num_labels, std::uint64_t seed) {
  if (num_vertices == 0) return Status::InvalidArgument("num_vertices must be > 0");
  if (num_labels == 0) return Status::InvalidArgument("num_labels must be > 0");
  if (edges_per_vertex == 0) {
    return Status::InvalidArgument("edges_per_vertex must be > 0");
  }
  Rng rng(seed);
  GraphBuilder b(num_vertices);
  for (std::size_t i = 0; i < num_vertices; ++i) {
    b.AddVertex(static_cast<Label>(rng.Uniform(num_labels)));
  }
  // Endpoint pool: each inserted edge contributes both endpoints, so a
  // uniform draw from the pool is degree-proportional (the standard BA trick).
  std::vector<VertexId> pool;
  pool.reserve(2 * num_vertices * edges_per_vertex);
  pool.push_back(0);
  for (std::size_t i = 1; i < num_vertices; ++i) {
    const auto v = static_cast<VertexId>(i);
    for (std::size_t k = 0; k < edges_per_vertex; ++k) {
      const VertexId target = pool[rng.Uniform(pool.size())];
      if (target != v) {
        FAST_RETURN_IF_ERROR(b.AddEdge(v, target));
        pool.push_back(target);
        pool.push_back(v);
      }
    }
  }
  return b.Build();
}

StatusOr<Graph> GeneratePlantedCliques(const PlantedCliqueConfig& config,
                                       std::uint64_t seed) {
  if (config.num_vertices < config.clique_size) {
    return Status::InvalidArgument("graph smaller than one clique");
  }
  if (config.num_labels == 0) return Status::InvalidArgument("num_labels must be > 0");
  if (config.clique_label >= config.num_labels) {
    return Status::InvalidArgument("clique_label out of range");
  }
  if (config.clique_stride == 0) {
    return Status::InvalidArgument("clique_stride must be > 0");
  }
  Rng rng(seed);

  std::vector<Label> labels(config.num_vertices);
  for (auto& l : labels) l = static_cast<Label>(rng.Uniform(config.num_labels));
  for (std::size_t c = 0; c + config.clique_size < config.num_vertices;
       c += config.clique_stride) {
    for (std::size_t i = c; i < c + config.clique_size; ++i) {
      labels[i] = config.clique_label;
    }
  }

  GraphBuilder b(config.num_vertices);
  for (Label l : labels) b.AddVertex(l);
  for (std::size_t i = 1; i < config.num_vertices; ++i) {
    const std::size_t interactions =
        1 + rng.PowerLaw(config.max_background_degree, config.background_alpha);
    for (std::size_t k = 0; k < interactions; ++k) {
      FAST_RETURN_IF_ERROR(b.AddEdge(static_cast<VertexId>(i),
                                     static_cast<VertexId>(rng.PowerLaw(i, 1.2))));
    }
  }
  for (std::size_t c = 0; c + config.clique_size < config.num_vertices;
       c += config.clique_stride) {
    for (std::size_t i = c; i < c + config.clique_size; ++i) {
      for (std::size_t j = i + 1; j < c + config.clique_size; ++j) {
        if (rng.Bernoulli(config.clique_density)) {
          FAST_RETURN_IF_ERROR(
              b.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(j)));
        }
      }
    }
  }
  return b.Build();
}

}  // namespace fast
