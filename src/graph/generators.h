#ifndef FAST_GRAPH_GENERATORS_H_
#define FAST_GRAPH_GENERATORS_H_

// Synthetic graph generators beyond the LDBC-like social network: the
// classic families used across the subgraph-matching literature (Sec. III
// cites Erdos-Renyi-style workloads, PPI networks, and power-law graphs).
// All are deterministic given the seed.

#include <cstdint>

#include "graph/graph.h"
#include "util/status.h"

namespace fast {

// G(n, m): n vertices with uniform labels from [0, num_labels), m edges
// sampled uniformly (duplicates/self-loops dropped, so the result can have
// slightly fewer than m edges).
StatusOr<Graph> GenerateErdosRenyi(std::size_t num_vertices, std::size_t num_edges,
                                   std::size_t num_labels, std::uint64_t seed);

// Barabasi-Albert-style preferential attachment: each new vertex attaches
// `edges_per_vertex` stubs to earlier vertices with probability proportional
// to (approximate) degree, yielding a power-law degree distribution.
StatusOr<Graph> GenerateBarabasiAlbert(std::size_t num_vertices,
                                       std::size_t edges_per_vertex,
                                       std::size_t num_labels, std::uint64_t seed);

struct PlantedCliqueConfig {
  std::size_t num_vertices = 10000;
  std::size_t num_labels = 6;
  // Background wiring: power-law interactions per vertex.
  std::size_t max_background_degree = 12;
  double background_alpha = 1.8;
  // Planted near-cliques: size, spacing, label, edge density.
  std::size_t clique_size = 4;
  std::size_t clique_stride = 420;
  Label clique_label = 0;
  double clique_density = 0.9;
};

// Hub-biased background graph with planted same-label near-cliques — the
// PPI-motif workload of examples/protein_motif.cpp, exposed as a library
// generator.
StatusOr<Graph> GeneratePlantedCliques(const PlantedCliqueConfig& config,
                                       std::uint64_t seed);

}  // namespace fast

#endif  // FAST_GRAPH_GENERATORS_H_
