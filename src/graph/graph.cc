#include "graph/graph.h"

#include <algorithm>
#include <cstdio>

#include "simd/bitset.h"
#include "util/logging.h"
#include "util/stats.h"

namespace fast {

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u >= NumVertices() || v >= NumVertices()) return false;
  // Search the smaller adjacency list.
  if (degree(u) > degree(v)) std::swap(u, v);
  auto adj = neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

Label Graph::EdgeLabelBetween(VertexId u, VertexId v) const {
  if (edge_labels_.empty() || u >= NumVertices() || v >= NumVertices()) return 0;
  auto adj = neighbors(u);
  const auto it = std::lower_bound(adj.begin(), adj.end(), v);
  if (it == adj.end() || *it != v) return 0;
  return edge_labels_[offsets_[u] + static_cast<std::size_t>(it - adj.begin())];
}

std::span<const std::uint64_t> Graph::HubAdjacencyBitmap(VertexId v) const {
  if (hub_ids_.empty() || v >= NumVertices() || degree(v) <= hub_threshold_) {
    return {};
  }
  const auto it = std::lower_bound(hub_ids_.begin(), hub_ids_.end(), v);
  if (it == hub_ids_.end() || *it != v) return {};
  const std::size_t row = static_cast<std::size_t>(it - hub_ids_.begin());
  return {hub_bits_.data() + row * hub_row_words_, hub_row_words_};
}

std::span<const VertexId> Graph::VerticesWithLabel(Label label) const {
  if (label + 1 >= label_index_offsets_.size()) return {};
  return {label_index_.data() + label_index_offsets_[label],
          label_index_offsets_[label + 1] - label_index_offsets_[label]};
}

std::size_t Graph::MemoryBytes() const {
  return labels_.size() * sizeof(Label) + offsets_.size() * sizeof(std::uint64_t) +
         adjacency_.size() * sizeof(VertexId) +
         label_index_offsets_.size() * sizeof(std::uint64_t) +
         label_index_.size() * sizeof(VertexId) +
         hub_ids_.size() * sizeof(VertexId) +
         hub_bits_.size() * sizeof(std::uint64_t);
}

std::string Graph::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "|V|=%s |E|=%s d_avg=%.2f D=%u L=%zu",
                HumanCount(static_cast<double>(NumVertices())).c_str(),
                HumanCount(static_cast<double>(NumEdges())).c_str(), AverageDegree(),
                MaxDegree(), NumLabels());
  return buf;
}

Status GraphBuilder::AddEdge(VertexId u, VertexId v, Label edge_label) {
  if (u >= labels_.size() || v >= labels_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (u == v) return Status::OK();  // Simple graph: silently drop self-loops.
  edges_.push_back({u, v, edge_label});
  any_edge_label_ |= edge_label != 0;
  return Status::OK();
}

StatusOr<Graph> GraphBuilder::Build() {
  Graph g;
  g.labels_ = std::move(labels_);
  const std::size_t n = g.labels_.size();
  const bool labelled = any_edge_label_;

  // Count degrees (both directions), then fill.
  std::vector<std::uint64_t> counts(n + 1, 0);
  for (const auto& e : edges_) {
    ++counts[e.u + 1];
    ++counts[e.v + 1];
  }
  for (std::size_t i = 0; i < n; ++i) counts[i + 1] += counts[i];
  g.offsets_ = counts;  // copy: counts reused as fill cursors
  g.adjacency_.resize(edges_.size() * 2);
  if (labelled) g.edge_labels_.resize(edges_.size() * 2);
  for (const auto& e : edges_) {
    if (labelled) {
      g.edge_labels_[counts[e.u]] = e.label;
      g.edge_labels_[counts[e.v]] = e.label;
    }
    g.adjacency_[counts[e.u]++] = e.v;
    g.adjacency_[counts[e.v]++] = e.u;
  }
  edges_.clear();
  edges_.shrink_to_fit();

  // Sort + dedup each adjacency list (stably keeping the first label seen
  // for duplicate pairs), then compact.
  std::vector<std::uint64_t> new_offsets(n + 1, 0);
  std::uint64_t write = 0;
  std::vector<std::pair<VertexId, Label>> scratch;
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint64_t begin = g.offsets_[v];
    const std::uint64_t end = g.offsets_[v + 1];
    std::uint64_t len = 0;
    if (labelled) {
      scratch.clear();
      for (std::uint64_t i = begin; i < end; ++i) {
        scratch.emplace_back(g.adjacency_[i], g.edge_labels_[i]);
      }
      std::stable_sort(scratch.begin(), scratch.end(),
                       [](const auto& a, const auto& b) { return a.first < b.first; });
      std::uint64_t cursor = write;
      for (std::size_t i = 0; i < scratch.size(); ++i) {
        if (i > 0 && scratch[i].first == scratch[i - 1].first) continue;
        g.adjacency_[cursor] = scratch[i].first;
        g.edge_labels_[cursor] = scratch[i].second;
        ++cursor;
      }
      len = cursor - write;
    } else {
      std::sort(g.adjacency_.begin() + begin, g.adjacency_.begin() + end);
      auto unique_end =
          std::unique(g.adjacency_.begin() + begin, g.adjacency_.begin() + end);
      len = static_cast<std::uint64_t>(unique_end - (g.adjacency_.begin() + begin));
      if (write != begin) {
        std::copy(g.adjacency_.begin() + begin, g.adjacency_.begin() + begin + len,
                  g.adjacency_.begin() + write);
      }
    }
    new_offsets[v] = write;
    write += len;
  }
  new_offsets[n] = write;
  g.adjacency_.resize(write);
  g.adjacency_.shrink_to_fit();
  if (labelled) {
    g.edge_labels_.resize(write);
    g.edge_labels_.shrink_to_fit();
  }
  g.offsets_ = std::move(new_offsets);
  if (g.adjacency_.size() % 2 != 0) {
    return Status::Internal("CSR symmetry broken: odd directed edge count");
  }

  g.max_degree_ = 0;
  for (std::size_t v = 0; v < n; ++v) {
    g.max_degree_ = std::max(g.max_degree_, g.degree(static_cast<VertexId>(v)));
  }

  // Label index.
  Label max_label = 0;
  for (Label l : g.labels_) max_label = std::max(max_label, l);
  const std::size_t n_labels = n == 0 ? 0 : static_cast<std::size_t>(max_label) + 1;
  g.label_index_offsets_.assign(n_labels + 1, 0);
  for (Label l : g.labels_) ++g.label_index_offsets_[l + 1];
  for (std::size_t i = 0; i < n_labels; ++i) {
    g.label_index_offsets_[i + 1] += g.label_index_offsets_[i];
  }
  g.label_index_.resize(n);
  std::vector<std::uint64_t> cursor(g.label_index_offsets_.begin(),
                                    g.label_index_offsets_.end());
  for (std::size_t v = 0; v < n; ++v) {
    g.label_index_[cursor[g.labels_[v]]++] = static_cast<VertexId>(v);
  }

  // Hub dual representation: bitmap adjacency rows for vertices whose degree
  // exceeds max(64, |V|/32), so each row costs at most as much as the sorted
  // list it shadows. ApplyDelta rebuilds flow through here, so the rows track
  // the live snapshot automatically.
  g.hub_threshold_ =
      static_cast<std::uint32_t>(std::max<std::size_t>(64, n / 32));
  g.hub_row_words_ = (n + 63) / 64;
  for (std::size_t v = 0; v < n; ++v) {
    if (g.degree(static_cast<VertexId>(v)) > g.hub_threshold_) {
      g.hub_ids_.push_back(static_cast<VertexId>(v));
    }
  }
  g.hub_bits_.assign(g.hub_ids_.size() * g.hub_row_words_, 0);
  for (std::size_t row = 0; row < g.hub_ids_.size(); ++row) {
    const std::span<std::uint64_t> bits{
        g.hub_bits_.data() + row * g.hub_row_words_, g.hub_row_words_};
    for (VertexId w : g.neighbors(g.hub_ids_[row])) simd::SetBit(bits, w);
  }
  return g;
}

}  // namespace fast
