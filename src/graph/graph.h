#ifndef FAST_GRAPH_GRAPH_H_
#define FAST_GRAPH_GRAPH_H_

// Immutable labelled undirected graph in CSR form, plus its mutable builder.
//
// This is the data-graph substrate of the paper (Sec. II-A): undirected,
// vertex-labelled, connected (not enforced), simple graphs. Adjacency lists
// are sorted so edge existence is O(log d) and set intersections are linear.
//
// Edge labels (the extension Sec. II-A notes is "readily" supported) are
// optional: AddEdge defaults to label 0 and an all-zero graph stores no
// label array. A directed graph can be encoded with two edge labels
// (forward/backward) on a doubled vertex set, so no separate machinery is
// provided for direction.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace fast {

using VertexId = std::uint32_t;
using Label = std::uint32_t;

inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

// Immutable CSR graph. Construct via GraphBuilder.
class Graph {
 public:
  Graph() = default;

  std::size_t NumVertices() const { return labels_.size(); }
  std::size_t NumEdges() const { return adjacency_.size() / 2; }

  Label label(VertexId v) const { return labels_[v]; }

  std::uint32_t degree(VertexId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  // Sorted neighbor list of v.
  std::span<const VertexId> neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  // O(log d) membership test on the sorted adjacency of u.
  bool HasEdge(VertexId u, VertexId v) const;

  // Hub dual representation: vertices with degree > HubThreshold() also
  // store their adjacency as a |V|-bit bitmap so intersections against hubs
  // can take the word-parallel path (simd/intersect.h filter_by_bitmap). The
  // threshold max(64, |V|/32) keeps every bitmap row (|V|/8 bytes) no larger
  // than the sorted list it shadows (4·deg bytes).
  std::uint32_t HubThreshold() const { return hub_threshold_; }
  std::size_t NumHubs() const { return hub_ids_.size(); }

  // Bitmap adjacency row of v, or an empty span when v is not a hub. The row
  // spans bits [0, NumVertices()); probe with simd::TestBit.
  std::span<const std::uint64_t> HubAdjacencyBitmap(VertexId v) const;

  // True when any edge carries a non-zero label.
  bool has_edge_labels() const { return !edge_labels_.empty(); }

  // Label of v's i-th neighbor edge (0 when the graph is edge-unlabelled).
  Label EdgeLabelAt(VertexId v, std::size_t i) const {
    return edge_labels_.empty() ? 0 : edge_labels_[offsets_[v] + i];
  }

  // Label of edge (u, v); 0 when the edge is absent or unlabelled. Combine
  // with HasEdge when absence matters.
  Label EdgeLabelBetween(VertexId u, VertexId v) const;

  // O(log d) labelled membership test: edge (u, v) exists with `label`.
  bool HasEdgeWithLabel(VertexId u, VertexId v, Label label) const {
    return HasEdge(u, v) && EdgeLabelBetween(u, v) == label;
  }

  // All vertices carrying `label`, sorted ascending. Empty span for labels
  // never seen in the graph.
  std::span<const VertexId> VerticesWithLabel(Label label) const;

  // Number of distinct labels present (max label value + 1).
  std::size_t NumLabels() const { return label_index_offsets_.empty()
                                          ? 0
                                          : label_index_offsets_.size() - 1; }

  std::uint32_t MaxDegree() const { return max_degree_; }
  double AverageDegree() const {
    return NumVertices() == 0
               ? 0.0
               : 2.0 * static_cast<double>(NumEdges()) / static_cast<double>(NumVertices());
  }

  // Approximate resident memory of the CSR arrays, in bytes.
  std::size_t MemoryBytes() const;

  // One-line summary, e.g. "|V|=3.18M |E|=17.24M d_avg=10.84 D=464368 L=11".
  std::string Summary() const;

 private:
  friend class GraphBuilder;

  std::vector<Label> labels_;
  std::vector<std::uint64_t> offsets_;   // size |V|+1
  std::vector<VertexId> adjacency_;      // size 2|E|, sorted per vertex
  std::vector<Label> edge_labels_;       // parallel to adjacency_; empty if unused
  std::uint32_t max_degree_ = 0;

  // Label -> sorted vertex list, in CSR form over label values.
  std::vector<std::uint64_t> label_index_offsets_;  // size (max_label+2)
  std::vector<VertexId> label_index_;               // size |V|

  // Hub dual representation (see HubAdjacencyBitmap).
  std::uint32_t hub_threshold_ = 0;
  std::size_t hub_row_words_ = 0;          // (|V|+63)/64
  std::vector<VertexId> hub_ids_;          // sorted ascending
  std::vector<std::uint64_t> hub_bits_;    // NumHubs() rows of hub_row_words_
};

// Accumulates vertices and edges, then produces a canonical Graph:
// self-loops dropped, duplicate edges deduplicated, adjacency sorted.
class GraphBuilder {
 public:
  GraphBuilder() = default;
  explicit GraphBuilder(std::size_t expected_vertices) {
    labels_.reserve(expected_vertices);
  }

  // Adds a vertex and returns its id (ids are dense, 0-based).
  VertexId AddVertex(Label label) {
    labels_.push_back(label);
    return static_cast<VertexId>(labels_.size() - 1);
  }

  // Adds an undirected edge with an optional edge label. Both endpoints must
  // already exist. Duplicate (u, v) pairs are deduplicated at Build() time,
  // keeping the label seen first.
  Status AddEdge(VertexId u, VertexId v, Label edge_label = 0);

  std::size_t NumVertices() const { return labels_.size(); }
  std::size_t NumEdgesAdded() const { return edges_.size(); }

  // Builds the CSR graph. The builder is left empty afterwards.
  StatusOr<Graph> Build();

 private:
  struct PendingEdge {
    VertexId u;
    VertexId v;
    Label label;
  };

  std::vector<Label> labels_;
  std::vector<PendingEdge> edges_;
  bool any_edge_label_ = false;
};

}  // namespace fast

#endif  // FAST_GRAPH_GRAPH_H_
