#include "graph/graph_delta.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_set>

namespace fast {

namespace {

// Order-normalized edge key for the removal set.
std::uint64_t EdgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

std::string GraphDelta::Summary() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "+%zuv -%zuv +%zue -%zue", add_vertices.size(),
                remove_vertices.size(), add_edges.size(), remove_edges.size());
  return buf;
}

StatusOr<Graph> ApplyDelta(const Graph& base, const GraphDelta& delta) {
  const std::size_t n_base = base.NumVertices();
  const std::size_t n_ext = n_base + delta.add_vertices.size();

  std::vector<char> removed(n_ext, 0);
  for (VertexId v : delta.remove_vertices) {
    if (v >= n_ext) {
      return Status::InvalidArgument("remove_vertices: id " + std::to_string(v) +
                                     " out of range (extended |V| = " +
                                     std::to_string(n_ext) + ")");
    }
    removed[v] = 1;
  }
  std::unordered_set<std::uint64_t> removed_edges;
  removed_edges.reserve(delta.remove_edges.size());
  for (const auto& [u, v] : delta.remove_edges) {
    if (u >= n_ext || v >= n_ext) {
      return Status::InvalidArgument("remove_edges: endpoint out of range");
    }
    removed_edges.insert(EdgeKey(u, v));
  }

  // Surviving vertices, compacted in extended-numbering order.
  std::vector<VertexId> new_id(n_ext, kInvalidVertex);
  GraphBuilder builder(n_ext);
  for (std::size_t v = 0; v < n_ext; ++v) {
    if (removed[v]) continue;
    const Label l = v < n_base ? base.label(static_cast<VertexId>(v))
                               : delta.add_vertices[v - n_base];
    new_id[v] = builder.AddVertex(l);
  }

  // Surviving base edges first: builder dedup keeps the first label seen, so
  // a base edge wins over a re-added copy unless it was removed in the same
  // delta (the documented relabel idiom).
  for (VertexId u = 0; u < n_base; ++u) {
    if (removed[u]) continue;
    const auto nbrs = base.neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId w = nbrs[i];
      if (u >= w || removed[w]) continue;
      if (!removed_edges.empty() && removed_edges.count(EdgeKey(u, w))) continue;
      FAST_RETURN_IF_ERROR(builder.AddEdge(new_id[u], new_id[w], base.EdgeLabelAt(u, i)));
    }
  }
  for (const GraphDelta::EdgeAdd& e : delta.add_edges) {
    if (e.u >= n_ext || e.v >= n_ext) {
      return Status::InvalidArgument("add_edges: endpoint out of range");
    }
    // An edge incident to a vertex removed in the same delta: removal wins.
    if (removed[e.u] || removed[e.v]) continue;
    FAST_RETURN_IF_ERROR(builder.AddEdge(new_id[e.u], new_id[e.v], e.label));
  }
  return builder.Build();
}

StatusOr<GraphDelta> ParseDeltaText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  GraphDelta delta;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    auto fail = [&](const char* what) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " + what);
    };
    // Unlike a failed field read, leftover text is a hard error: "ae 4 5 1O"
    // (typo'd label) must not silently become label 1 + ignored garbage —
    // the swapped-in snapshot would quietly answer queries differently. The
    // 32-bit range check is a hard error for the same reason: "rv 2^32"
    // truncated to uint32 would silently remove vertex 0.
    auto at_end = [&ls] {
      ls.clear();
      std::string rest;
      return !(ls >> rest);
    };
    constexpr std::uint64_t kMax32 = 0xFFFFFFFFull;
    if (tag == "av") {
      std::uint64_t label = 0;
      if (!(ls >> label)) return fail("bad av record (want: av <label>)");
      if (!at_end()) return fail("trailing text after av record");
      if (label > kMax32) return fail("av label exceeds 32 bits");
      delta.add_vertices.push_back(static_cast<Label>(label));
    } else if (tag == "rv") {
      std::uint64_t id = 0;
      if (!(ls >> id)) return fail("bad rv record (want: rv <id>)");
      if (!at_end()) return fail("trailing text after rv record");
      if (id > kMax32) return fail("rv id exceeds 32 bits");
      delta.remove_vertices.push_back(static_cast<VertexId>(id));
    } else if (tag == "ae") {
      std::uint64_t u = 0, v = 0, label = 0;
      if (!(ls >> u >> v)) return fail("bad ae record (want: ae <u> <v> [label])");
      ls >> label;  // optional third field
      if (!at_end()) return fail("trailing text after ae record");
      if (u > kMax32 || v > kMax32 || label > kMax32) {
        return fail("ae field exceeds 32 bits");
      }
      delta.add_edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v),
                                 static_cast<Label>(label)});
    } else if (tag == "re") {
      std::uint64_t u = 0, v = 0;
      if (!(ls >> u >> v)) return fail("bad re record (want: re <u> <v>)");
      if (!at_end()) return fail("trailing text after re record");
      if (u > kMax32 || v > kMax32) return fail("re endpoint exceeds 32 bits");
      delta.remove_edges.emplace_back(static_cast<VertexId>(u),
                                      static_cast<VertexId>(v));
    } else {
      return fail("unknown op tag (want av/rv/ae/re)");
    }
  }
  return delta;
}

GraphDelta RandomChurnDelta(const Graph& base, std::size_t edge_churn, Rng& rng) {
  GraphDelta delta;
  const std::size_t n = base.NumVertices();
  if (n < 2) return delta;
  for (std::size_t i = 0; i < edge_churn; ++i) {
    const auto u = static_cast<VertexId>(rng.Uniform(n));
    const auto v = static_cast<VertexId>(rng.Uniform(n));
    if (u != v) delta.add_edges.push_back({u, v, 0});  // duplicates dedup away
  }
  for (std::size_t i = 0; i < edge_churn; ++i) {
    // A few attempts to land on a vertex that still has edges; sparse or
    // empty graphs just produce a smaller removal batch.
    for (int attempt = 0; attempt < 8; ++attempt) {
      const auto u = static_cast<VertexId>(rng.Uniform(n));
      const auto d = base.degree(u);
      if (d == 0) continue;
      delta.remove_edges.emplace_back(u, base.neighbors(u)[rng.Uniform(d)]);
      break;
    }
  }
  return delta;
}

StatusOr<GraphDelta> LoadDeltaFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseDeltaText(buf.str());
}

}  // namespace fast
