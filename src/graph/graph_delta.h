#ifndef FAST_GRAPH_GRAPH_DELTA_H_
#define FAST_GRAPH_GRAPH_DELTA_H_

// Batched vertex/edge updates against an immutable CSR Graph.
//
// The CSR substrate (graph/graph.h) is deliberately immutable: every reader
// in the pipeline assumes sorted adjacency and a frozen label index. Updates
// are therefore expressed as a GraphDelta batch, and ApplyDelta rebuilds a
// fresh CSR off-line from {base graph + delta} without touching the base.
// The service layer (src/service/) publishes the result as a new epoch
// snapshot while in-flight queries finish on the old one.
//
// Semantics, applied in this order:
//   1. add_vertices: new vertices appended after the base ones, so the k-th
//      added vertex gets id |V_base| + k ("extended numbering").
//   2. remove_edges / add_edges: interpreted in the extended numbering.
//      Removing an absent edge is a no-op. Re-adding an existing edge keeps
//      the base label (builder dedup keeps the first label seen); to relabel
//      an edge, remove and re-add it in the same delta.
//   3. remove_vertices: each removed vertex disappears with its incident
//      edges (including edges added by this delta); surviving vertices are
//      compacted to dense ids in their extended-numbering order. Vertex ids
//      are thus per-snapshot: clients resolve external keys against the
//      snapshot they query.
//
// The rebuild is O(|V| + |E| + |delta|); delta-CSR ingestion (merging small
// deltas without a full rebuild) is the planned follow-on for high update
// rates (see ROADMAP.md).

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace fast {

struct GraphDelta {
  struct EdgeAdd {
    VertexId u = 0;
    VertexId v = 0;
    Label label = 0;
  };

  // Labels of vertices to append (ids assigned |V_base|, |V_base|+1, ...).
  std::vector<Label> add_vertices;

  // Vertices to drop, in extended numbering. Duplicates are tolerated.
  std::vector<VertexId> remove_vertices;

  std::vector<EdgeAdd> add_edges;
  std::vector<std::pair<VertexId, VertexId>> remove_edges;

  bool Empty() const {
    return add_vertices.empty() && remove_vertices.empty() &&
           add_edges.empty() && remove_edges.empty();
  }

  // e.g. "+3v -1v +5e -2e".
  std::string Summary() const;
};

// Rebuilds a fresh CSR graph from base + delta (see semantics above). The
// base graph is not modified. InvalidArgument when a delta id is out of
// range of the extended numbering.
StatusOr<Graph> ApplyDelta(const Graph& base, const GraphDelta& delta);

// Text format for deltas, one op per line ('#' comments allowed):
//   av <label>            add vertex (id = |V_base| + #prior av lines)
//   rv <id>               remove vertex
//   ae <u> <v> [label]    add edge
//   re <u> <v>            remove edge
StatusOr<GraphDelta> ParseDeltaText(const std::string& text);

// Loads a delta from a file in the above format.
StatusOr<GraphDelta> LoadDeltaFile(const std::string& path);

// A random edge-churn delta against `base`: `edge_churn` random edge
// insertions between existing vertices plus `edge_churn` removals of
// existing edges. Keeps |V| fixed and |E| roughly stable, which makes it the
// standard write workload for the update benchmarks (bench_update,
// fast_serve --swap-every-ms). Deterministic given the Rng state.
GraphDelta RandomChurnDelta(const Graph& base, std::size_t edge_churn, Rng& rng);

}  // namespace fast

#endif  // FAST_GRAPH_GRAPH_DELTA_H_
