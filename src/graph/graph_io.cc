#include "graph/graph_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace fast {

StatusOr<Graph> ParseGraphText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  GraphBuilder builder;
  std::size_t declared_vertices = 0;
  std::size_t declared_edges = 0;
  std::size_t seen_edges = 0;
  bool saw_header = false;
  std::size_t line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    auto fail = [&](const char* what) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " + what);
    };
    if (tag == 't') {
      if (!(ls >> declared_vertices >> declared_edges)) return fail("bad header");
      saw_header = true;
    } else if (tag == 'v') {
      std::uint64_t id = 0;
      std::uint64_t label = 0;
      if (!(ls >> id >> label)) return fail("bad vertex record");
      if (id != builder.NumVertices()) return fail("vertex ids must be dense and ordered");
      builder.AddVertex(static_cast<Label>(label));
    } else if (tag == 'e') {
      std::uint64_t u = 0;
      std::uint64_t v = 0;
      if (!(ls >> u >> v)) return fail("bad edge record");
      std::uint64_t edge_label = 0;
      ls >> edge_label;  // optional third field
      Status s = builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v),
                                 static_cast<Label>(edge_label));
      if (!s.ok()) return fail(s.message().c_str());
      ++seen_edges;
    } else {
      return fail("unknown record tag");
    }
  }
  if (saw_header) {
    if (declared_vertices != builder.NumVertices()) {
      return Status::InvalidArgument("header vertex count mismatch");
    }
    if (declared_edges != seen_edges) {
      return Status::InvalidArgument("header edge count mismatch");
    }
  }
  return builder.Build();
}

StatusOr<Graph> LoadGraphFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return ParseGraphText(buf.str());
}

std::string GraphToText(const Graph& g) {
  std::ostringstream out;
  out << "t " << g.NumVertices() << " " << g.NumEdges() << "\n";
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    out << "v " << v << " " << g.label(v) << "\n";
  }
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (v >= nbrs[i]) continue;
      out << "e " << v << " " << nbrs[i];
      if (g.has_edge_labels()) out << " " << g.EdgeLabelAt(v, i);
      out << "\n";
    }
  }
  return out.str();
}

Status SaveGraphFile(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::InvalidArgument("cannot open " + path + " for writing");
  f << GraphToText(g);
  if (!f.good()) return Status::Internal("write failed for " + path);
  return Status::OK();
}

}  // namespace fast
