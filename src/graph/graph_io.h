#ifndef FAST_GRAPH_GRAPH_IO_H_
#define FAST_GRAPH_GRAPH_IO_H_

// Text serialization of labelled graphs.
//
// Format (one record per line, '#' comments allowed):
//   t <num_vertices> <num_edges>
//   v <vertex_id> <label>        (vertex ids must be dense 0..n-1)
//   e <src> <dst> [edge_label]
//
// This matches the de-facto format used by subgraph-matching datasets
// (CFL-Match / DAF / the in-memory matching study of Sun & Luo), extended
// with an optional third edge field for edge-labelled graphs.

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace fast {

// Parses a graph from text. Returns InvalidArgument on malformed input.
StatusOr<Graph> ParseGraphText(const std::string& text);

// Loads a graph from a file in the above format.
StatusOr<Graph> LoadGraphFile(const std::string& path);

// Serializes a graph to the text format.
std::string GraphToText(const Graph& g);

// Writes a graph to a file. Returns an IO error status on failure.
Status SaveGraphFile(const Graph& g, const std::string& path);

}  // namespace fast

#endif  // FAST_GRAPH_GRAPH_IO_H_
