#include "ldbc/ldbc.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/logging.h"
#include "util/rng.h"
#include "util/strings.h"

namespace fast {

const char* LdbcLabelName(LdbcLabel label) {
  switch (label) {
    case LdbcLabel::kPerson:
      return "Person";
    case LdbcLabel::kCity:
      return "City";
    case LdbcLabel::kCountry:
      return "Country";
    case LdbcLabel::kContinent:
      return "Continent";
    case LdbcLabel::kUniversity:
      return "University";
    case LdbcLabel::kCompany:
      return "Company";
    case LdbcLabel::kForum:
      return "Forum";
    case LdbcLabel::kPost:
      return "Post";
    case LdbcLabel::kComment:
      return "Comment";
    case LdbcLabel::kTag:
      return "Tag";
    case LdbcLabel::kTagClass:
      return "TagClass";
  }
  return "Unknown";
}

namespace {

// Dense id range [first, first + count) of one entity type.
struct Range {
  VertexId first = 0;
  std::size_t count = 0;

  VertexId At(std::size_t i) const {
    FAST_DCHECK_LT(i, count);
    return first + static_cast<VertexId>(i);
  }
  // Power-law pick: low indices are "hubs" (popular tags, big cities...).
  VertexId PickSkewed(Rng* rng, double alpha = 1.5) const {
    return At(rng->PowerLaw(count, alpha));
  }
  VertexId PickUniform(Rng* rng) const { return At(rng->Uniform(count)); }
};

std::size_t Scaled(double base, double sf, double min_value = 1.0) {
  return static_cast<std::size_t>(std::max(min_value, std::round(base * sf)));
}

}  // namespace

StatusOr<Graph> GenerateLdbcGraph(const LdbcConfig& config) {
  if (config.scale_factor <= 0.0) {
    return Status::InvalidArgument("scale_factor must be positive");
  }
  Rng rng(config.seed);
  const double sf = config.scale_factor;

  // Entity counts. Persons/messages grow linearly with the scale factor;
  // dictionary-like entities (places, tags, orgs) grow sub-linearly, matching
  // LDBC datagen behaviour.
  const std::size_t n_person = Scaled(900, sf, 20);
  const std::size_t n_city = Scaled(40, std::sqrt(sf), 8);
  const std::size_t n_country = Scaled(15, std::pow(sf, 0.25), 5);
  const std::size_t n_continent = 6;
  const std::size_t n_university = Scaled(30, std::sqrt(sf), 6);
  const std::size_t n_company = Scaled(40, std::sqrt(sf), 8);
  const std::size_t n_forum = Scaled(300, sf, 8);
  const std::size_t n_post = Scaled(2700, sf, 40);
  const std::size_t n_comment = Scaled(5400, sf, 60);
  const std::size_t n_tag = Scaled(120, std::sqrt(sf), 16);
  const std::size_t n_tagclass = Scaled(20, std::pow(sf, 0.25), 6);

  GraphBuilder builder;
  auto add_range = [&](LdbcLabel label, std::size_t count) {
    Range r;
    r.first = static_cast<VertexId>(builder.NumVertices());
    r.count = count;
    for (std::size_t i = 0; i < count; ++i) builder.AddVertex(AsLabel(label));
    return r;
  };

  const Range person = add_range(LdbcLabel::kPerson, n_person);
  const Range city = add_range(LdbcLabel::kCity, n_city);
  const Range country = add_range(LdbcLabel::kCountry, n_country);
  const Range continent = add_range(LdbcLabel::kContinent, n_continent);
  const Range university = add_range(LdbcLabel::kUniversity, n_university);
  const Range company = add_range(LdbcLabel::kCompany, n_company);
  const Range forum = add_range(LdbcLabel::kForum, n_forum);
  const Range post = add_range(LdbcLabel::kPost, n_post);
  const Range comment = add_range(LdbcLabel::kComment, n_comment);
  const Range tag = add_range(LdbcLabel::kTag, n_tag);
  const Range tagclass = add_range(LdbcLabel::kTagClass, n_tagclass);

  auto edge = [&](VertexId u, VertexId v) { FAST_CHECK_OK(builder.AddEdge(u, v)); };

  // --- Place hierarchy: City -> Country -> Continent (isPartOf). ---
  std::vector<VertexId> city_country(n_city);
  for (std::size_t i = 0; i < n_city; ++i) {
    city_country[i] = country.PickSkewed(&rng);
    edge(city.At(i), city_country[i]);
  }
  for (std::size_t i = 0; i < n_country; ++i) {
    edge(country.At(i), continent.At(rng.Uniform(n_continent)));
  }

  // --- TagClass hierarchy (isSubclassOf) and Tag -> TagClass (hasType). ---
  for (std::size_t i = 1; i < n_tagclass; ++i) {
    edge(tagclass.At(i), tagclass.At(rng.Uniform(i)));  // parent among earlier
  }
  std::vector<VertexId> tag_class(n_tag);
  for (std::size_t i = 0; i < n_tag; ++i) {
    tag_class[i] = tagclass.PickSkewed(&rng);
    edge(tag.At(i), tag_class[i]);
  }

  // --- Persons: location, orgs, interests, knows. ---
  std::vector<VertexId> person_city(n_person);
  for (std::size_t i = 0; i < n_person; ++i) {
    const VertexId p = person.At(i);
    person_city[i] = city.PickSkewed(&rng);
    edge(p, person_city[i]);
    if (rng.Bernoulli(0.5)) edge(p, university.PickSkewed(&rng));
    if (rng.Bernoulli(0.7)) edge(p, company.PickSkewed(&rng));
    const std::size_t n_interests = 1 + rng.Uniform(8);
    for (std::size_t t = 0; t < n_interests; ++t) edge(p, tag.PickSkewed(&rng));
  }
  // knows: power-law out-stubs, preferential target choice. Average target
  // degree ~12 matches the LDBC graphs' d_avg ~11.
  for (std::size_t i = 0; i < n_person; ++i) {
    const std::size_t stubs = 1 + rng.PowerLaw(48, config.knows_alpha);
    for (std::size_t s = 0; s < stubs; ++s) {
      const VertexId other = person.PickSkewed(&rng, 1.3);
      if (other != person.At(i)) edge(person.At(i), other);
    }
  }

  // --- Forums: moderator + members (power-law sizes). ---
  for (std::size_t i = 0; i < n_forum; ++i) {
    const VertexId f = forum.At(i);
    edge(f, person.PickSkewed(&rng, 1.3));  // hasModerator
    const std::size_t members = 2 + rng.PowerLaw(60, 1.6);
    for (std::size_t m = 0; m < members; ++m) {
      edge(f, person.PickSkewed(&rng, 1.3));  // hasMember
    }
  }

  // --- Posts: creator, container forum, tags. ---
  std::vector<VertexId> post_creator(n_post);
  for (std::size_t i = 0; i < n_post; ++i) {
    const VertexId po = post.At(i);
    post_creator[i] = person.PickSkewed(&rng, 1.3);
    edge(po, post_creator[i]);          // hasCreator
    edge(po, forum.PickSkewed(&rng));   // containerOf
    const std::size_t tags = 1 + rng.Uniform(3);
    for (std::size_t t = 0; t < tags; ++t) edge(po, tag.PickSkewed(&rng));
  }

  // --- Comments: creator, replyOf post, tags. ---
  for (std::size_t i = 0; i < n_comment; ++i) {
    const VertexId c = comment.At(i);
    const std::size_t reply_post = rng.PowerLaw(n_post, 1.4);
    edge(c, post.At(reply_post));  // replyOf
    const VertexId creator = rng.Bernoulli(config.self_reply_probability)
                                 ? post_creator[reply_post]
                                 : person.PickSkewed(&rng, 1.3);
    edge(c, creator);  // hasCreator
    if (rng.Bernoulli(0.6)) edge(c, tag.PickSkewed(&rng));
  }

  return builder.Build();
}

namespace {

// Builds a query graph from a label sequence and an edge list.
StatusOr<QueryGraph> MakeQuery(const std::string& name,
                               const std::vector<LdbcLabel>& labels,
                               const std::vector<std::pair<int, int>>& edges) {
  GraphBuilder b;
  for (LdbcLabel l : labels) b.AddVertex(AsLabel(l));
  for (auto [u, v] : edges) {
    FAST_RETURN_IF_ERROR(
        b.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v)));
  }
  FAST_ASSIGN_OR_RETURN(Graph g, b.Build());
  return QueryGraph::Create(std::move(g), name);
}

}  // namespace

StatusOr<QueryGraph> LdbcQuery(int index) {
  using L = LdbcLabel;
  switch (index) {
    case 0:
      // q0: person commenting on their own post.
      // Psn - Post - Cmt triangle.
      return MakeQuery("q0", {L::kPerson, L::kPost, L::kComment},
                       {{0, 1}, {1, 2}, {2, 0}});
    case 1:
      // q1: post tagged with a tag whose class has a parent class.
      // Post - Tag - TagClass - TagClass path.
      return MakeQuery("q1", {L::kPost, L::kTag, L::kTagClass, L::kTagClass},
                       {{0, 1}, {1, 2}, {2, 3}});
    case 2:
      // q2: triangle of mutual friends.
      return MakeQuery("q2", {L::kPerson, L::kPerson, L::kPerson},
                       {{0, 1}, {1, 2}, {2, 0}});
    case 3:
      // q3: person comments on a friend's post (4-cycle).
      // Psn0 knows Psn1; Cmt by Psn0 replies Post by Psn1.
      return MakeQuery("q3", {L::kPerson, L::kPerson, L::kPost, L::kComment},
                       {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
    case 4:
      // q4: friends discussing the same topic (5-cycle).
      // Post by Psn0, Cmt by Psn1, both tagged with the same Tag,
      // Psn0 knows Psn1.
      return MakeQuery(
          "q4", {L::kPerson, L::kPost, L::kTag, L::kComment, L::kPerson},
          {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
    case 5:
      // q5: friends living in two cities of the same country (5-cycle).
      return MakeQuery(
          "q5", {L::kPerson, L::kPerson, L::kCity, L::kCountry, L::kCity},
          {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
    case 6:
      // q6: friend triangle with one member located in a city of a country.
      return MakeQuery(
          "q6", {L::kPerson, L::kPerson, L::kPerson, L::kCity, L::kCountry},
          {{0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 4}});
    case 7:
      // q7: friendship chain whose endpoints live in two cities of the same
      // country (6-cycle).
      return MakeQuery("q7",
                       {L::kPerson, L::kPerson, L::kPerson, L::kCity, L::kCountry,
                        L::kCity},
                       {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
    case 8:
      // q8: dense friendship diamond (two triangles sharing an edge).
      return MakeQuery("q8", {L::kPerson, L::kPerson, L::kPerson, L::kPerson},
                       {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
    default:
      return Status::InvalidArgument("query index must be in [0, 9)");
  }
}

std::vector<QueryGraph> AllLdbcQueries() {
  std::vector<QueryGraph> out;
  out.reserve(kNumLdbcQueries);
  for (int i = 0; i < kNumLdbcQueries; ++i) {
    auto q = LdbcQuery(i);
    FAST_CHECK(q.ok()) << q.status();
    out.push_back(std::move(q).value());
  }
  return out;
}

StatusOr<std::vector<QueryGraph>> ParseLdbcQueryMix(const std::string& spec) {
  std::vector<QueryGraph> mix;
  for (const std::string& token : SplitCsv(spec)) {
    char* end = nullptr;
    const long index = std::strtol(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || index < 0 ||
        index >= kNumLdbcQueries) {
      return Status::InvalidArgument("--queries: bad LDBC query index \"" + token +
                                     "\" (want 0.." +
                                     std::to_string(kNumLdbcQueries - 1) + ")");
    }
    FAST_ASSIGN_OR_RETURN(QueryGraph q, LdbcQuery(static_cast<int>(index)));
    mix.push_back(std::move(q));
  }
  return mix;
}

StatusOr<Graph> SampleEdges(const Graph& g, double fraction, std::uint64_t seed) {
  if (fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in (0, 1]");
  }
  Rng rng(seed);
  GraphBuilder b(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) b.AddVertex(g.label(v));
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.neighbors(v)) {
      if (v < w && rng.Bernoulli(fraction)) {
        FAST_RETURN_IF_ERROR(b.AddEdge(v, w));
      }
    }
  }
  return b.Build();
}

}  // namespace fast
