#ifndef FAST_LDBC_LDBC_H_
#define FAST_LDBC_LDBC_H_

// LDBC-SNB-like synthetic workload (Sec. VII "Datasets" substitution).
//
// The paper evaluates on LDBC social-network-benchmark graphs DG01..DG60
// (11 vertex labels, power-law degrees). The official datagen and its
// billion-edge outputs are not available here, so this module generates a
// deterministic social network with the same schema: Persons who know each
// other (power-law), located in Cities -> Countries -> Continents, studying
// at Universities / working at Companies, creating Posts and Comments in
// Forums, tagged with Tags classified by TagClasses. A scale factor sweeps
// the same axis as DG01 -> DG60.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "query/query_graph.h"
#include "util/status.h"

namespace fast {

// The 11 vertex labels of the LDBC-SNB schema as used by the paper's queries.
enum class LdbcLabel : Label {
  kPerson = 0,
  kCity = 1,
  kCountry = 2,
  kContinent = 3,
  kUniversity = 4,
  kCompany = 5,
  kForum = 6,
  kPost = 7,
  kComment = 8,
  kTag = 9,
  kTagClass = 10,
};

inline constexpr std::size_t kNumLdbcLabels = 11;

const char* LdbcLabelName(LdbcLabel label);

inline Label AsLabel(LdbcLabel l) { return static_cast<Label>(l); }

struct LdbcConfig {
  // Scale factor; 1.0 produces roughly 10k vertices / 60k edges. The paper's
  // DG01..DG60 sweep maps onto sweeping this knob.
  double scale_factor = 1.0;
  std::uint64_t seed = 42;
  // Power-law exponent for person-knows-person degree skew.
  double knows_alpha = 2.0;
  // Probability that a comment replies to a post by its own author
  // (creates Person-Post-Comment triangles, needed by q0).
  double self_reply_probability = 0.3;
};

// Generates the social network. Deterministic given the config.
StatusOr<Graph> GenerateLdbcGraph(const LdbcConfig& config);

// The nine query graphs of Fig. 6 (LDBC complex tasks adapted to plain
// labelled subgraph matching: node types as labels, multi-hop edges removed).
// index in [0, 9).
StatusOr<QueryGraph> LdbcQuery(int index);

inline constexpr int kNumLdbcQueries = 9;

// All nine queries, in order q0..q8.
std::vector<QueryGraph> AllLdbcQueries();

// Parses a comma-separated list of LDBC query indices ("0,1,2") into the
// corresponding query graphs — the `--queries` flag shared by fast_serve,
// bench_service, and bench_update. Empty tokens are skipped; an index
// outside [0, kNumLdbcQueries) is InvalidArgument naming the valid range.
StatusOr<std::vector<QueryGraph>> ParseLdbcQueryMix(const std::string& spec);

// Keeps all vertices and a uniform `fraction` of edges (Fig. 17's
// |E(G)|-scalability experiment). fraction in (0, 1].
StatusOr<Graph> SampleEdges(const Graph& g, double fraction, std::uint64_t seed);

}  // namespace fast

#endif  // FAST_LDBC_LDBC_H_
