#include "net/admin_http.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "obs/export.h"
#include "util/build_info.h"
#include "util/json_writer.h"
#include "util/profiled_mutex.h"

namespace fast::net {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& r, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(r.status) + " " +
                    ReasonPhrase(r.status) + "\r\n";
  out += "Content-Type: " + r.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += r.body;
  return out;
}

}  // namespace

// ---- HttpRequestParser. ----

HttpRequestParser::State HttpRequestParser::Next(HttpRequest* out) {
  if (poisoned_) return State::kError;
  const std::size_t head_end = buf_.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    // Even an incomplete head must stay bounded; a peer trickling an
    // endless header line would otherwise grow the buffer forever.
    if (buf_.size() > max_header_bytes_) {
      poisoned_ = true;
      error_ = "request head exceeds " + std::to_string(max_header_bytes_) +
               " bytes";
      return State::kError;
    }
    return State::kNeedMore;
  }
  if (head_end + 4 > max_header_bytes_) {
    poisoned_ = true;
    error_ = "request head exceeds " + std::to_string(max_header_bytes_) +
             " bytes";
    return State::kError;
  }

  // Request line: METHOD SP request-target SP HTTP-version.
  const std::size_t line_end = buf_.find("\r\n");  // <= head_end
  const std::string line = buf_.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos || sp1 == 0 ||
      sp2 == sp1 + 1 || sp2 + 1 >= line.size() ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    poisoned_ = true;
    error_ = "malformed request line: \"" + line + "\"";
    return State::kError;
  }
  out->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  out->version = line.substr(sp2 + 1);
  const std::size_t qpos = target.find('?');
  if (qpos == std::string::npos) {
    out->path = std::move(target);
    out->query.clear();
  } else {
    out->path = target.substr(0, qpos);
    out->query = target.substr(qpos + 1);
  }
  // Header fields are otherwise skipped (the admin endpoints key on
  // method+path only, and GET carries no body), but "Connection: close"
  // matters: clients that read the response to EOF hang unless the server
  // actually closes. Case-insensitive scan of the head.
  std::string head = buf_.substr(0, head_end + 4);
  for (char& c : head) {
    if (c >= 'A' && c <= 'Z') c += 'a' - 'A';
  }
  out->close = head.find("connection: close") != std::string::npos;
  buf_.erase(0, head_end + 4);
  return State::kReady;
}

// ---- AdminHttpServer. ----

AdminHttpServer::AdminHttpServer(AdminHttpOptions options)
    : options_(std::move(options)) {}

AdminHttpServer::~AdminHttpServer() { Shutdown(); }

void AdminHttpServer::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status AdminHttpServer::Start() {
  FAST_ASSIGN_OR_RETURN(listener_,
                        ListenTcp(options_.host, options_.port, &port_));
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void AdminHttpServer::Shutdown() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  if (listener_.valid()) ShutdownFd(listener_.get());
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns) {
    if (c->fd.valid()) ShutdownFd(c->fd.get());
    if (c->thread.joinable()) c->thread.join();
  }
}

AdminHttpStats AdminHttpServer::stats() const {
  AdminHttpStats s;
  s.connections_accepted = connections_accepted_.load();
  s.requests_served = requests_served_.load();
  s.not_found = not_found_.load();
  s.bad_requests = bad_requests_.load();
  return s;
}

void AdminHttpServer::AcceptLoop() {
  obs::Profiler::RegisterCurrentThread("admin-accept", obs::ThreadKind::kAdmin);
  while (!stopping_.load()) {
    StatusOr<ScopedFd> accepted = AcceptTcp(listener_.get());
    if (!accepted.ok()) {
      if (stopping_.load()) return;
      continue;
    }
    connections_accepted_.fetch_add(1);
    auto conn = std::make_unique<Connection>();
    conn->fd = std::move(*accepted);
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] {
      ConnectionLoop(raw);
      // Signal EOF to a peer draining the response (the fd itself is closed
      // by the reaper / Shutdown, which also joins this thread).
      ShutdownFd(raw->fd.get());
      raw->done.store(true);
    });
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(std::move(conn));
    ReapFinished();
  }
}

void AdminHttpServer::ReapFinished() {
  // conns_mu_ held. Finished threads join instantly.
  auto it = conns_.begin();
  while (it != conns_.end()) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void AdminHttpServer::ConnectionLoop(Connection* conn) {
  obs::Profiler::RegisterCurrentThread("admin-conn", obs::ThreadKind::kAdmin);
  HttpRequestParser parser(options_.max_header_bytes);
  std::uint8_t buf[4096];
  while (!stopping_.load()) {
    StatusOr<std::size_t> n = RecvSome(conn->fd.get(), buf, sizeof(buf));
    if (!n.ok() || *n == 0) return;  // peer closed or shutdown
    parser.Feed(reinterpret_cast<const char*>(buf), *n);
    // Drain every pipelined request already buffered before blocking again.
    for (;;) {
      HttpRequest req;
      const HttpRequestParser::State st = parser.Next(&req);
      if (st == HttpRequestParser::State::kNeedMore) break;
      if (st == HttpRequestParser::State::kError) {
        bad_requests_.fetch_add(1);
        HttpResponse resp;
        resp.status =
            parser.error().find("exceeds") != std::string::npos ? 431 : 400;
        resp.body = parser.error() + "\n";
        const std::string wire = SerializeResponse(resp, /*keep_alive=*/false);
        // Best-effort: the connection is closing either way.
        (void)SendAll(conn->fd.get(),
                      reinterpret_cast<const std::uint8_t*>(wire.data()),
                      wire.size());
        return;
      }
      HttpResponse resp;
      if (req.method != "GET") {
        resp.status = 405;
        resp.body = "only GET is supported\n";
      } else {
        auto it = handlers_.find(req.path);
        if (it == handlers_.end()) {
          not_found_.fetch_add(1);
          resp.status = 404;
          resp.body = "unknown path: " + req.path + "\n";
        } else {
          resp = it->second(req);
        }
      }
      requests_served_.fetch_add(1);
      const std::string wire =
          SerializeResponse(resp, /*keep_alive=*/!req.close);
      if (!SendAll(conn->fd.get(),
                   reinterpret_cast<const std::uint8_t*>(wire.data()),
                   wire.size())
               .ok()) {
        return;
      }
      if (req.close) return;
    }
  }
}

// ---- Standard endpoint set. ----

namespace {

HttpResponse JsonResponse(std::string body) {
  HttpResponse r;
  r.content_type = "application/json";
  r.body = std::move(body);
  return r;
}

void WriteSloJson(JsonWriter& w, const obs::RequestObs* ro) {
  const obs::SloEngine* slo = ro == nullptr ? nullptr : ro->slo();
  w.Field("enabled", slo != nullptr);
  if (slo == nullptr) return;
  const obs::SloOptions& o = slo->options();
  w.BeginObject("objective");
  w.Field("latency_seconds", o.latency_objective_seconds);
  w.Field("target", o.target);
  w.Field("short_window_seconds", o.short_window_seconds);
  w.Field("long_window_seconds", o.long_window_seconds);
  w.Field("breach_burn_rate", o.breach_burn_rate);
  w.EndObject();
  const double now = ro->uptime_seconds();
  w.Field("now_seconds", now);
  w.BeginArray("tenants");
  for (const obs::SloTenantState& t : slo->StateSnapshot(now)) {
    w.BeginObject();
    w.Field("tenant", t.tenant);
    w.Field("short_burn", t.short_burn);
    w.Field("long_burn", t.long_burn);
    w.Field("short_total", t.short_total);
    w.Field("short_bad", t.short_bad);
    w.Field("long_total", t.long_total);
    w.Field("long_bad", t.long_bad);
    w.Field("breached", t.breached);
    w.Field("breaches", t.breaches);
    w.Field("recoveries", t.recoveries);
    w.EndObject();
  }
  w.EndArray();
  const obs::FlightRecorder* fr = ro->flight_recorder();
  w.BeginObject("flight_recorder");
  w.Field("enabled", fr != nullptr && fr->enabled());
  if (fr != nullptr) {
    w.Field("dumps_written", fr->dumps_written());
    w.Field("dumps_suppressed", fr->dumps_suppressed());
    w.BeginArray("dump_paths");
    for (const std::string& p : fr->dump_paths()) {
      w.BeginObject();
      w.Field("path", p);
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
}

HttpResponse TracesResponse(
    const std::vector<std::shared_ptr<const obs::CompletedTrace>>& traces) {
  HttpResponse r;
  r.content_type = "application/x-ndjson";
  for (const auto& t : traces) {
    if (t == nullptr) continue;
    r.body += obs::TraceToJson(*t);
    r.body += '\n';
  }
  return r;
}

// "a=1&b=2" -> value of `key` as double, or `fallback` when absent/garbage.
double QueryParam(const std::string& query, const std::string& key,
                  double fallback) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      const char* start = query.c_str() + eq + 1;
      char* end = nullptr;
      const double v = std::strtod(start, &end);
      if (end != start) return v;
      return fallback;
    }
    pos = amp + 1;
  }
  return fallback;
}

}  // namespace

void RegisterAdminEndpoints(AdminHttpServer& server,
                            AdminEndpointsOptions opts) {
  // Handlers capture `o` by value (shared state is behind stable pointers
  // the caller guarantees outlive the server).
  auto o = std::make_shared<AdminEndpointsOptions>(std::move(opts));
  Timer start_time;

  server.Handle("/metrics", [o](const HttpRequest&) {
    HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    if (o->metrics != nullptr) {
      r.body = obs::ToPrometheusText(o->metrics->Snapshot());
    }
    if (o->request_obs != nullptr) {
      r.body +=
          obs::AccountsToPrometheusText(o->request_obs->accounts().Snapshot());
    }
    // Lock contention families render at scrape time from the process-wide
    // ProfiledMutex registry (same pattern as the per-tenant accounts).
    r.body += obs::LocksToPrometheusText(util::SnapshotLockStats());
    return r;
  });

  server.Handle("/metrics.json", [o](const HttpRequest&) {
    JsonWriter w;
    if (o->metrics != nullptr) {
      obs::WriteSnapshotJson(w, o->metrics->Snapshot());
    }
    if (o->request_obs != nullptr) {
      obs::WriteAccountsJson(w, o->request_obs->accounts().Snapshot());
    }
    return JsonResponse(w.Finish());
  });

  server.Handle("/traces/recent", [o](const HttpRequest&) {
    return TracesResponse(o->request_obs != nullptr
                              ? o->request_obs->recent_traces()
                              : std::vector<std::shared_ptr<
                                    const obs::CompletedTrace>>{});
  });

  server.Handle("/traces/slow", [o](const HttpRequest&) {
    return TracesResponse(o->request_obs != nullptr
                              ? o->request_obs->slow_traces()
                              : std::vector<std::shared_ptr<
                                    const obs::CompletedTrace>>{});
  });

  server.Handle("/tenants", [o](const HttpRequest&) {
    JsonWriter w;
    const std::vector<obs::AccountSnapshot> accounts =
        o->request_obs != nullptr ? o->request_obs->accounts().Snapshot()
                                  : std::vector<obs::AccountSnapshot>{};
    w.Field("num_tenants", static_cast<std::uint64_t>(accounts.size()));
    obs::WriteAccountsJson(w, accounts);
    return JsonResponse(w.Finish());
  });

  server.Handle("/slo", [o](const HttpRequest&) {
    JsonWriter w;
    WriteSloJson(w, o->request_obs);
    return JsonResponse(w.Finish());
  });

  server.Handle("/healthz", [o](const HttpRequest&) {
    HttpResponse r;
    const bool ready = !o->ready || o->ready();
    r.status = ready ? 200 : 503;
    r.body = ready ? "ok\n" : "unavailable\n";
    return r;
  });

  server.Handle("/profile", [o](const HttpRequest& req) {
    obs::Profiler* p = o->profiler;
    if (p == nullptr) {
      return JsonResponse("{\"enabled\": false}\n");
    }
    const double want_seconds = QueryParam(req.query, "seconds", 0.0);
    if (!p->running() || want_seconds <= 0.0) {
      // Sampler off, or no window requested: serve the cumulative profile
      // immediately (hz 0 marks a disabled sampler).
      return JsonResponse(obs::ProfileToJson(p->Snapshot()));
    }
    // Window delta: snapshot, sleep the requested window, snapshot again.
    // Runs on this connection's thread; the sampler keeps ticking meanwhile.
    const double seconds = std::clamp(want_seconds, 0.05, 30.0);
    const obs::ProfileSnapshot begin = p->Snapshot();
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    return JsonResponse(obs::ProfileToJson(obs::DeltaProfile(begin, p->Snapshot())));
  });

  server.Handle("/profile/flame", [o](const HttpRequest&) {
    HttpResponse r;
    if (o->profiler != nullptr) {
      r.body = obs::CollapsedStacks(o->profiler->Snapshot());
    }
    return r;
  });

  server.Handle("/locks", [](const HttpRequest&) {
    return JsonResponse(obs::LocksToJson(util::SnapshotLockStats()));
  });

  server.Handle("/timeline/chrome", [o](const HttpRequest& req) {
    obs::ChromeTraceInputs in;
    if (o->request_obs != nullptr) {
      in.traces = o->request_obs->recent_traces();
      const auto last = static_cast<std::size_t>(std::clamp(
          QueryParam(req.query, "last", 0.0), 0.0, 1e9));
      if (last > 0 && in.traces.size() > last) {
        // The ring is newest-last; keep the newest N.
        in.traces.erase(in.traces.begin(),
                        in.traces.end() - static_cast<std::ptrdiff_t>(last));
      }
      in.instants = o->request_obs->recent_events();
    }
    if (o->profiler != nullptr) {
      const obs::ProfileSnapshot snap = o->profiler->Snapshot();
      in.threads = snap.threads;
      in.stage_samples = o->profiler->TimelineSnapshot();
      in.sample_period_seconds = snap.hz > 0.0 ? 1.0 / snap.hz : 0.0;
    }
    if (o->device_rounds) in.rounds = o->device_rounds();
    return JsonResponse(obs::ChromeTraceJson(in));
  });

  server.Handle("/varz", [o, start_time](const HttpRequest&) {
    JsonWriter w;
    obs::WriteBuildInfoJson(w);
    w.Field("uptime_seconds", start_time.ElapsedSeconds());
    if (o->request_obs != nullptr) {
      w.Field("obs_uptime_seconds", o->request_obs->uptime_seconds());
    }
    if (o->queue_depth) {
      w.Field("queue_depth", static_cast<std::uint64_t>(o->queue_depth()));
    }
    w.Field("flags", o->flags);
    return JsonResponse(w.Finish());
  });
}

// ---- Scrape client. ----

StatusOr<HttpResponse> HttpGet(const std::string& host, std::uint16_t port,
                               const std::string& path) {
  FAST_ASSIGN_OR_RETURN(ScopedFd fd, ConnectTcp(host, port));
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  FAST_RETURN_IF_ERROR(SendAll(
      fd.get(), reinterpret_cast<const std::uint8_t*>(req.data()), req.size()));
  std::string raw;
  std::uint8_t buf[4096];
  for (;;) {
    FAST_ASSIGN_OR_RETURN(std::size_t n, RecvSome(fd.get(), buf, sizeof(buf)));
    if (n == 0) break;  // server honors Connection: close
    raw.append(reinterpret_cast<const char*>(buf), n);
  }
  const std::size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    return Status::Internal("malformed HTTP response");
  }
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > line_end) {
    return Status::Internal("malformed HTTP status line");
  }
  HttpResponse resp;
  resp.status = std::atoi(raw.c_str() + sp + 1);
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::Internal("HTTP response missing head terminator");
  }
  // Content-Type echo (best effort; the body is what callers care about).
  const std::size_t ct = raw.find("Content-Type: ");
  if (ct != std::string::npos && ct < head_end) {
    const std::size_t ct_end = raw.find("\r\n", ct);
    resp.content_type = raw.substr(ct + 14, ct_end - ct - 14);
  }
  resp.body = raw.substr(head_end + 4);
  return resp;
}

}  // namespace fast::net
