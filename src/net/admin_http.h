#ifndef FAST_NET_ADMIN_HTTP_H_
#define FAST_NET_ADMIN_HTTP_H_

// Minimal GET-only HTTP/1.1 admin plane over the same POSIX socket helpers
// the wire server uses (net/socket.h) — no external HTTP dependency.
//
//   curl :PORT/metrics        Prometheus exposition (registry + per-tenant)
//   curl :PORT/metrics.json   registry snapshot as JSON
//   curl :PORT/traces/recent  retained request traces, one JSON per line
//   curl :PORT/traces/slow    slow-trace ring, one JSON per line
//   curl :PORT/tenants        per-tenant resource accounts (JSON)
//   curl :PORT/slo            SLO objectives + live burn rates (JSON)
//   curl :PORT/healthz        200 "ok" when serving, 503 otherwise
//   curl :PORT/varz           build info, uptime, flag echo (JSON)
//
// Threading mirrors WireServer: one accept thread plus one thread per
// connection; every handler runs on the connection's thread, so handlers
// must be safe to call concurrently (all registered ones only read snapshot
// APIs that take their own locks). Connections are keep-alive and requests
// may be pipelined; anything other than GET gets 405, unknown paths 404,
// and a malformed or oversized request head closes the connection after a
// 400/431.
//
// The parser is exposed (HttpRequestParser) so tests can drive truncated,
// pipelined, and oversized inputs byte-by-byte without sockets.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/request_obs.h"
#include "util/status.h"

namespace fast::net {

struct HttpRequest {
  std::string method;   // "GET"
  std::string path;     // "/metrics" (no query string)
  std::string query;    // text after '?', "" when absent
  std::string version;  // "HTTP/1.1"
  bool close = false;   // peer sent "Connection: close"
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

// Incremental request-head parser. Feed() raw bytes as they arrive, then
// drain complete requests with Next() — one call per pipelined request.
// GET/HEAD carry no body, so the head terminator (CRLFCRLF) bounds each
// request; header fields themselves are skipped, not stored.
class HttpRequestParser {
 public:
  enum class State {
    kNeedMore,  // no complete request head buffered yet
    kReady,     // *out holds the next request
    kError,     // malformed or oversized head; connection must close
  };

  explicit HttpRequestParser(std::size_t max_header_bytes = 8192)
      : max_header_bytes_(max_header_bytes) {}

  void Feed(const char* data, std::size_t n) { buf_.append(data, n); }
  void Feed(const std::string& data) { buf_.append(data); }

  // Extracts the next complete request from the buffered bytes. Once kError
  // is returned the parser stays poisoned (the byte stream has no reliable
  // resync point).
  State Next(HttpRequest* out);

  const std::string& error() const { return error_; }
  std::size_t buffered_bytes() const { return buf_.size(); }

 private:
  const std::size_t max_header_bytes_;
  std::string buf_;
  std::string error_;
  bool poisoned_ = false;
};

struct AdminHttpOptions {
  AdminHttpOptions() = default;

  std::string host = "127.0.0.1";
  // 0 = pick an ephemeral port (read it back via port() after Start()).
  std::uint16_t port = 0;
  // Request heads beyond this are rejected with 431 and the connection
  // closed (scrapers send tiny requests; anything bigger is abuse).
  std::size_t max_header_bytes = 8192;
};
static_assert(!std::is_aggregate_v<AdminHttpOptions>,
              "AdminHttpOptions must not be positionally brace-initializable");

struct AdminHttpStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t not_found = 0;      // 404s
  std::uint64_t bad_requests = 0;   // parse errors (connection closed)
};

class AdminHttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit AdminHttpServer(AdminHttpOptions options = {});
  ~AdminHttpServer();

  AdminHttpServer(const AdminHttpServer&) = delete;
  AdminHttpServer& operator=(const AdminHttpServer&) = delete;

  // Registers an exact-path handler. Call before Start(); handlers run
  // concurrently on connection threads.
  void Handle(std::string path, Handler handler);

  // Binds, listens, and starts the accept thread.
  Status Start();

  // The bound port (valid after Start()).
  std::uint16_t port() const { return port_; }

  // Stops accepting, unblocks every connection, joins all threads.
  // Idempotent; also run by the destructor.
  void Shutdown();

  AdminHttpStats stats() const;

 private:
  struct Connection {
    ScopedFd fd;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ConnectionLoop(Connection* conn);
  // Joins and frees connections whose loop has exited (called from the
  // accept thread so a long-lived server does not accumulate dead fds).
  void ReapFinished();

  const AdminHttpOptions options_;
  std::uint16_t port_ = 0;
  std::map<std::string, Handler> handlers_;

  ScopedFd listener_;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> not_found_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
};

// What the standard endpoint set needs from the process. Everything is
// optional: a null/empty member degrades the dependent endpoint gracefully
// (e.g. no registry -> /metrics serves only the per-tenant account families).
struct AdminEndpointsOptions {
  AdminEndpointsOptions() = default;

  obs::MetricsRegistry* metrics = nullptr;
  // The serving frontend's observability hub: accounts, SLO engine, flight
  // recorder, trace rings. Must outlive the server.
  const obs::RequestObs* request_obs = nullptr;
  // Readiness probe for /healthz (e.g. Frontend::ready). Empty = always ready.
  std::function<bool()> ready;
  // Queued-but-not-dispatched requests, echoed in /varz. Empty = omitted.
  std::function<std::size_t()> queue_depth;
  // Command-line echo for /varz (how this process was launched).
  std::string flags;
  // The process profiler for /profile, /profile/flame, and the stage tracks
  // of /timeline/chrome. Null degrades those endpoints to "enabled": false /
  // span-only timelines. Must outlive the server.
  obs::Profiler* profiler = nullptr;
  // Recent device rounds (Frontend::device_rounds) for the timeline's
  // synthetic device track. Empty = no device track.
  std::function<std::vector<obs::TimelineRound>()> device_rounds;
};
static_assert(!std::is_aggregate_v<AdminEndpointsOptions>,
              "AdminEndpointsOptions must not be positionally brace-init");

// Registers /metrics, /metrics.json, /traces/recent, /traces/slow, /tenants,
// /slo, /healthz, /varz, /profile (?seconds=N window delta), /profile/flame
// (collapsed stacks for flamegraph.pl), /locks (ProfiledMutex contention),
// and /timeline/chrome (?last=N, trace-event JSON for Perfetto) on `server`
// against the suppliers in `opts`.
void RegisterAdminEndpoints(AdminHttpServer& server, AdminEndpointsOptions opts);

// Blocking one-shot GET against a local admin server ("Connection: close").
// Returns the parsed status + body; transport failures come back as Status.
// Used by the scrape bench and the end-to-end tests — not a general client.
StatusOr<HttpResponse> HttpGet(const std::string& host, std::uint16_t port,
                               const std::string& path);

}  // namespace fast::net

#endif  // FAST_NET_ADMIN_HTTP_H_
