#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace fast::net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

StatusOr<sockaddr_in> MakeAddr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

void ScopedFd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<ScopedFd> ListenTcp(const std::string& host, std::uint16_t port,
                             std::uint16_t* bound_port) {
  FAST_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(fd.get(), 128) != 0) return Errno("listen");
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) !=
        0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

StatusOr<ScopedFd> AcceptTcp(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return ScopedFd(fd);
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

StatusOr<ScopedFd> ConnectTcp(const std::string& host, std::uint16_t port) {
  FAST_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddr(host, port));
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Errno("connect");
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SendAll(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<std::size_t>(rc);
  }
  return Status::OK();
}

StatusOr<std::size_t> RecvSome(int fd, std::uint8_t* buf, std::size_t cap) {
  for (;;) {
    const ssize_t rc = ::recv(fd, buf, cap, 0);
    if (rc >= 0) return static_cast<std::size_t>(rc);
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

void ShutdownFd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

}  // namespace fast::net
