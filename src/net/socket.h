#ifndef FAST_NET_SOCKET_H_
#define FAST_NET_SOCKET_H_

// Thin POSIX TCP helpers for the wire server/client. Blocking sockets,
// Status-based errors, no ownership magic beyond ScopedFd.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace fast::net {

// Closes the fd on destruction. Movable, not copyable.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { Close(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.release();
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void Close();

 private:
  int fd_ = -1;
};

// Binds and listens on `host:port` (IPv4; host "0.0.0.0" or "127.0.0.1").
// port 0 picks an ephemeral port; *bound_port reports the actual one.
StatusOr<ScopedFd> ListenTcp(const std::string& host, std::uint16_t port,
                             std::uint16_t* bound_port);

// Blocking accept. Returns an error Status when the listener was shut down
// or closed (the server's exit path).
StatusOr<ScopedFd> AcceptTcp(int listen_fd);

// Blocking connect to `host:port` with TCP_NODELAY set.
StatusOr<ScopedFd> ConnectTcp(const std::string& host, std::uint16_t port);

// Writes all n bytes (looping over partial writes, EINTR-safe, SIGPIPE
// suppressed). Error when the peer closed.
Status SendAll(int fd, const std::uint8_t* data, std::size_t n);

// One blocking recv. Returns 0 on clean EOF, otherwise the byte count.
StatusOr<std::size_t> RecvSome(int fd, std::uint8_t* buf, std::size_t cap);

// Unblocks any thread parked in accept/recv on fd (::shutdown(SHUT_RDWR)).
void ShutdownFd(int fd);

}  // namespace fast::net

#endif  // FAST_NET_SOCKET_H_
