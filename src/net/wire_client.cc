#include "net/wire_client.h"

#include <utility>

namespace fast::net {

StatusOr<std::unique_ptr<WireClient>> WireClient::Connect(
    const std::string& host, std::uint16_t port) {
  auto client = std::unique_ptr<WireClient>(new WireClient());
  FAST_ASSIGN_OR_RETURN(client->fd_, ConnectTcp(host, port));

  // HELLO handshake, synchronously before the reader thread exists so the
  // advertised window is known when Connect returns.
  FrameHeader hello;
  hello.type = FrameType::kHello;
  FAST_RETURN_IF_ERROR(client->SendFrame(hello, {}));

  FrameDecoder decoder;
  std::uint8_t buf[4096];
  for (;;) {
    Frame frame;
    FAST_ASSIGN_OR_RETURN(const bool has, decoder.Next(&frame));
    if (has) {
      if (frame.header.type != FrameType::kHelloAck) {
        return Status::Internal(std::string("wire: expected HELLO_ACK, got ") +
                                FrameTypeName(frame.header.type));
      }
      FAST_ASSIGN_OR_RETURN(const HelloAckPayload ack,
                            DecodeHelloAckPayload(frame.payload));
      client->max_inflight_ = ack.max_inflight;
      break;
    }
    FAST_ASSIGN_OR_RETURN(const std::size_t n,
                          RecvSome(client->fd_.get(), buf, sizeof(buf)));
    if (n == 0) return Status::Internal("wire: server closed during handshake");
    decoder.Feed({buf, n});
  }

  // Handshake bytes are a prefix of the stream: the decoder is drained, so
  // the reader thread can start with a fresh one.
  client->reader_ = std::thread([c = client.get()] { c->ReaderLoop(); });
  return client;
}

WireClient::~WireClient() { Close(); }

void WireClient::Close() {
  bool expected = false;
  if (!closed_.compare_exchange_strong(expected, true)) {
    // A second caller must still not return before the reader is gone.
    if (reader_.joinable() &&
        reader_.get_id() != std::this_thread::get_id()) {
      reader_.join();
    }
    return;
  }
  ShutdownFd(fd_.get());
  if (reader_.joinable()) reader_.join();
  FailAllPending(Status::Internal("wire: connection closed"));
}

std::size_t WireClient::inflight() const {
  std::lock_guard<std::mutex> lock(pending_mu_);
  return pending_.size();
}

StatusOr<std::uint64_t> WireClient::SubmitAsync(const QueryGraph& q,
                                                WireSubmitArgs args,
                                                Handler handler) {
  if (closed_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("wire: client closed");
  }
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);

  std::vector<std::uint8_t> payload;
  EncodeSubmitPayload(q, args.store_limit, &payload);
  FrameHeader h;
  h.type = FrameType::kSubmit;
  h.request_id = id;
  h.deadline_us = args.deadline_us;
  h.tenant = std::move(args.tenant);
  if (args.stream_embeddings) h.flags |= kFlagStreamEmbeddings;

  // Register BEFORE sending: the response can beat the map insert otherwise.
  {
    auto pending = std::make_unique<PendingRequest>();
    pending->handler = std::move(handler);
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.emplace(id, std::move(pending));
  }
  const Status sent = SendFrame(h, payload);
  if (!sent.ok()) {
    // The error return IS the notification — deregister without invoking the
    // handler so the caller sees exactly one signal. (Take may come up empty
    // if the reader already failed everything; that call invoked it.)
    Take(id);
    return sent;
  }
  return id;
}

StatusOr<WireResponse> WireClient::Call(const QueryGraph& q,
                                        WireSubmitArgs args) {
  struct SyncState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    WireResponse resp;
  };
  auto state = std::make_shared<SyncState>();
  FAST_RETURN_IF_ERROR(SubmitAsync(q, std::move(args),
                                   [state](WireResponse resp) {
                                     std::lock_guard<std::mutex> lock(state->mu);
                                     state->resp = std::move(resp);
                                     state->done = true;
                                     state->cv.notify_all();
                                   })
                           .status());
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state] { return state->done; });
  return std::move(state->resp);
}

Status WireClient::Ping() {
  if (closed_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("wire: client closed");
  }
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(ping_mu_);
    awaited_pong_ = id;
    pong_seen_ = false;
  }
  FrameHeader h;
  h.type = FrameType::kPing;
  h.request_id = id;
  FAST_RETURN_IF_ERROR(SendFrame(h, {}));
  std::unique_lock<std::mutex> lock(ping_mu_);
  ping_cv_.wait(lock, [this] {
    return pong_seen_ || closed_.load(std::memory_order_relaxed);
  });
  if (!pong_seen_) return Status::Internal("wire: connection closed");
  return Status::OK();
}

void WireClient::ReaderLoop() {
  FrameDecoder decoder;
  std::vector<std::uint8_t> buf(64u << 10);
  Status exit_status = Status::Internal("wire: connection closed");
  for (;;) {
    StatusOr<std::size_t> n = RecvSome(fd_.get(), buf.data(), buf.size());
    if (!n.ok()) {
      exit_status = n.status();
      break;
    }
    if (*n == 0) break;  // clean EOF
    decoder.Feed({buf.data(), *n});
    bool poisoned = false;
    for (;;) {
      Frame frame;
      StatusOr<bool> has = decoder.Next(&frame);
      if (!has.ok()) {
        exit_status = has.status();
        poisoned = true;
        break;
      }
      if (!*has) break;
      OnFrame(std::move(frame));
    }
    if (poisoned) break;
  }
  closed_.store(true, std::memory_order_relaxed);
  FailAllPending(exit_status);
  {
    std::lock_guard<std::mutex> lock(ping_mu_);
    ping_cv_.notify_all();
  }
}

void WireClient::OnFrame(Frame frame) {
  const std::uint64_t id = frame.header.request_id;
  switch (frame.header.type) {
    case FrameType::kEmbedding: {
      StatusOr<EmbeddingPayload> batch = DecodeEmbeddingPayload(frame.payload);
      if (!batch.ok()) return;  // malformed non-terminal frame: drop
      std::lock_guard<std::mutex> lock(pending_mu_);
      auto it = pending_.find(id);
      if (it != pending_.end()) {
        it->second->embeddings.push_back(std::move(*batch));
      }
      return;
    }
    case FrameType::kResult:
    case FrameType::kPushback:
    case FrameType::kError: {
      auto pending = Take(id);
      if (pending == nullptr) return;  // duplicate/unknown id
      WireResponse resp;
      resp.embeddings = std::move(pending->embeddings);
      if (frame.header.type == FrameType::kResult) {
        StatusOr<ResultPayload> result = DecodeResultPayload(frame.payload);
        if (result.ok()) {
          resp.kind = WireResponse::Kind::kResult;
          resp.result = std::move(*result);
          resp.status =
              Status(static_cast<StatusCode>(resp.result.status_code),
                     resp.result.message);
        } else {
          resp.kind = WireResponse::Kind::kTransport;
          resp.status = result.status();
        }
      } else {
        resp.kind = frame.header.type == FrameType::kPushback
                        ? WireResponse::Kind::kPushback
                        : WireResponse::Kind::kError;
        resp.pushback_flags = frame.header.flags;
        StatusOr<StatusPayload> sp = DecodeStatusPayload(frame.payload);
        resp.status = sp.ok()
                          ? Status(static_cast<StatusCode>(sp->code), sp->message)
                          : sp.status();
      }
      pending->handler(std::move(resp));
      return;
    }
    case FrameType::kPong: {
      std::lock_guard<std::mutex> lock(ping_mu_);
      if (id == awaited_pong_) {
        pong_seen_ = true;
        ping_cv_.notify_all();
      }
      return;
    }
    default:
      return;  // HELLO_ACK after handshake or client-bound types: ignore
  }
}

std::unique_ptr<WireClient::PendingRequest> WireClient::Take(
    std::uint64_t id) {
  std::lock_guard<std::mutex> lock(pending_mu_);
  auto it = pending_.find(id);
  if (it == pending_.end()) return nullptr;
  auto pending = std::move(it->second);
  pending_.erase(it);
  return pending;
}

Status WireClient::SendFrame(const FrameHeader& header,
                             std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> wire;
  wire.reserve(kPreludeBytes + header.tenant.size() + payload.size());
  EncodeFrame(header, payload, &wire);
  std::lock_guard<std::mutex> lock(write_mu_);
  return SendAll(fd_.get(), wire.data(), wire.size());
}

void WireClient::FailAllPending(const Status& why) {
  std::unordered_map<std::uint64_t, std::unique_ptr<PendingRequest>> orphaned;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    orphaned.swap(pending_);
  }
  for (auto& [id, pending] : orphaned) {
    WireResponse resp;
    resp.kind = WireResponse::Kind::kTransport;
    resp.status = why;
    resp.embeddings = std::move(pending->embeddings);
    pending->handler(std::move(resp));
  }
}

}  // namespace fast::net
