#ifndef FAST_NET_WIRE_CLIENT_H_
#define FAST_NET_WIRE_CLIENT_H_

// Client side of the wire protocol (net/wire_format.h): one TCP connection,
// a writer serialized by a lock, and a reader thread that demultiplexes
// response frames to per-request handlers by request id. Built for the
// open-loop driver (bench/bench_wire.cc): SubmitAsync never blocks on the
// request's completion, so one connection can keep hundreds of requests in
// flight at a fixed arrival rate.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/socket.h"
#include "net/wire_format.h"
#include "query/query_graph.h"
#include "util/status.h"

namespace fast::net {

// Terminal outcome of one wire request.
struct WireResponse {
  // What the terminal frame was.
  enum class Kind { kResult, kPushback, kError, kTransport };
  Kind kind = Kind::kTransport;

  // RESULT: the decoded payload (its status_code is the *execution* status —
  // e.g. DEADLINE_EXCEEDED rides in a RESULT frame). PUSHBACK/ERROR: code
  // and message mapped into `status` below. kTransport: the connection
  // failed or was closed with the request outstanding.
  ResultPayload result;
  Status status = Status::OK();
  // PUSHBACK detail: kFlagConnLimit distinguishes the connection window from
  // the service admission queue.
  std::uint8_t pushback_flags = 0;
  // Streamed (or sampled) embedding batches, in arrival order.
  std::vector<EmbeddingPayload> embeddings;
};

struct WireSubmitArgs {
  WireSubmitArgs() = default;

  std::string tenant;            // session key; empty for single-graph servers
  std::uint64_t store_limit = 0;
  std::uint64_t deadline_us = 0;  // relative budget; 0 = none
  bool stream_embeddings = false;
};
static_assert(!std::is_aggregate_v<WireSubmitArgs>,
              "WireSubmitArgs must not be positionally brace-initializable");

class WireClient {
 public:
  using Handler = std::function<void(WireResponse)>;

  // Connects, performs the HELLO handshake, and starts the reader thread.
  static StatusOr<std::unique_ptr<WireClient>> Connect(const std::string& host,
                                                       std::uint16_t port);

  ~WireClient();
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  // The server's advertised per-connection in-flight window (0 = unlimited).
  std::uint32_t max_inflight() const { return max_inflight_; }

  // Sends one SUBMIT frame and registers `handler` for its terminal frame.
  // Returns the wire request id. The handler runs on the reader thread (or
  // on the Close() caller for kTransport) exactly once; it must not call
  // back into this client. Never blocks on the request.
  StatusOr<std::uint64_t> SubmitAsync(const QueryGraph& q, WireSubmitArgs args,
                                      Handler handler);

  // Synchronous round trip: SubmitAsync + wait for the terminal frame.
  StatusOr<WireResponse> Call(const QueryGraph& q, WireSubmitArgs args = {});

  // PING/PONG round trip (liveness + a wire latency floor).
  Status Ping();

  // Requests currently awaiting a terminal frame.
  std::size_t inflight() const;

  // Shuts the socket down, joins the reader, and fails every outstanding
  // handler with kTransport. Idempotent; also run by the destructor.
  void Close();

 private:
  WireClient() = default;

  struct PendingRequest {
    Handler handler;
    std::vector<EmbeddingPayload> embeddings;
  };

  void ReaderLoop();
  void OnFrame(Frame frame);
  // Removes and returns the pending entry for id (null if unknown).
  std::unique_ptr<PendingRequest> Take(std::uint64_t id);
  Status SendFrame(const FrameHeader& header,
                   std::span<const std::uint8_t> payload);
  void FailAllPending(const Status& why);

  ScopedFd fd_;
  std::uint32_t max_inflight_ = 0;
  std::thread reader_;
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> next_id_{1};

  std::mutex write_mu_;

  mutable std::mutex pending_mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<PendingRequest>> pending_;

  // Ping coordination: pong_seen_ flips when a PONG for ping_id_ arrives.
  std::mutex ping_mu_;
  std::condition_variable ping_cv_;
  std::uint64_t awaited_pong_ = 0;
  bool pong_seen_ = false;
};

}  // namespace fast::net

#endif  // FAST_NET_WIRE_CLIENT_H_
