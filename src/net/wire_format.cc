#include "net/wire_format.h"

#include <algorithm>

namespace fast::net {

namespace {

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated payload: ") + what);
}

bool KnownFrameType(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kHello) &&
         t <= static_cast<std::uint8_t>(FrameType::kPong);
}

std::uint16_t LoadU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0]) |
         static_cast<std::uint16_t>(p[1]) << 8;
}

std::uint32_t LoadU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t LoadU64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(LoadU32(p)) |
         static_cast<std::uint64_t>(LoadU32(p + 4)) << 32;
}

void StoreU16(std::uint16_t v, std::uint8_t* p) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void StoreU32(std::uint32_t v, std::uint8_t* p) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void StoreU64(std::uint64_t v, std::uint8_t* p) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

}  // namespace

const char* FrameTypeName(FrameType t) {
  switch (t) {
    case FrameType::kHello:
      return "HELLO";
    case FrameType::kHelloAck:
      return "HELLO_ACK";
    case FrameType::kSubmit:
      return "SUBMIT";
    case FrameType::kResult:
      return "RESULT";
    case FrameType::kEmbedding:
      return "EMBEDDING";
    case FrameType::kPushback:
      return "PUSHBACK";
    case FrameType::kError:
      return "ERROR";
    case FrameType::kPing:
      return "PING";
    case FrameType::kPong:
      return "PONG";
  }
  return "UNKNOWN";
}

// ---- PayloadReader ----

template <typename T>
StatusOr<T> PayloadReader::ReadLe() {
  if (data_.size() - pos_ < sizeof(T)) return Truncated("scalar past end");
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += sizeof(T);
  return v;
}

StatusOr<std::uint8_t> PayloadReader::U8() { return ReadLe<std::uint8_t>(); }
StatusOr<std::uint16_t> PayloadReader::U16() { return ReadLe<std::uint16_t>(); }
StatusOr<std::uint32_t> PayloadReader::U32() { return ReadLe<std::uint32_t>(); }
StatusOr<std::uint64_t> PayloadReader::U64() { return ReadLe<std::uint64_t>(); }

StatusOr<double> PayloadReader::F64() {
  FAST_ASSIGN_OR_RETURN(const std::uint64_t bits, ReadLe<std::uint64_t>());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

StatusOr<std::string> PayloadReader::Str() {
  FAST_ASSIGN_OR_RETURN(const std::uint32_t len, U32());
  if (data_.size() - pos_ < len) return Truncated("string past end");
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

// ---- EncodeFrame / FrameDecoder ----

void EncodeFrame(const FrameHeader& header,
                 std::span<const std::uint8_t> payload,
                 std::vector<std::uint8_t>* out) {
  const std::size_t tenant_len =
      std::min<std::size_t>(header.tenant.size(), kMaxTenantBytes);
  const std::size_t body = tenant_len + payload.size();
  const std::size_t base = out->size();
  out->resize(base + kPreludeBytes);
  std::uint8_t* p = out->data() + base;
  StoreU16(kWireMagic, p + 0);
  p[2] = kWireVersion;
  p[3] = static_cast<std::uint8_t>(header.type);
  StoreU32(static_cast<std::uint32_t>(body), p + 4);
  StoreU64(header.request_id, p + 8);
  StoreU64(header.deadline_us, p + 16);
  StoreU16(static_cast<std::uint16_t>(tenant_len), p + 24);
  p[26] = header.flags;
  p[27] = 0;  // reserved
  out->insert(out->end(), header.tenant.begin(),
              header.tenant.begin() + tenant_len);
  out->insert(out->end(), payload.begin(), payload.end());
}

void FrameDecoder::Feed(std::span<const std::uint8_t> data) {
  if (data.empty()) return;
  if (buffered_bytes() == 0) arrival_.Reset();
  buf_.insert(buf_.end(), data.begin(), data.end());
}

StatusOr<bool> FrameDecoder::Next(Frame* out) {
  if (poisoned_.has_value()) return *poisoned_;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kPreludeBytes) return false;
  const std::uint8_t* p = buf_.data() + pos_;

  const std::uint16_t magic = LoadU16(p);
  if (magic != kWireMagic) {
    poisoned_ = Status::InvalidArgument("wire: bad frame magic");
    return *poisoned_;
  }
  if (p[2] != kWireVersion) {
    poisoned_ = Status::InvalidArgument("wire: unsupported protocol version " +
                                        std::to_string(p[2]));
    return *poisoned_;
  }
  if (!KnownFrameType(p[3])) {
    poisoned_ = Status::InvalidArgument("wire: unknown frame type " +
                                        std::to_string(p[3]));
    return *poisoned_;
  }
  const std::size_t body = LoadU32(p + 4);
  if (body > max_body_) {
    poisoned_ = Status::InvalidArgument(
        "wire: frame body " + std::to_string(body) + " bytes exceeds bound " +
        std::to_string(max_body_));
    return *poisoned_;
  }
  const std::size_t tenant_len = LoadU16(p + 24);
  if (tenant_len > body || tenant_len > kMaxTenantBytes) {
    poisoned_ = Status::InvalidArgument("wire: tenant length exceeds body");
    return *poisoned_;
  }
  if (avail < kPreludeBytes + body) return false;  // need more bytes

  out->header.type = static_cast<FrameType>(p[3]);
  out->header.request_id = LoadU64(p + 8);
  out->header.deadline_us = LoadU64(p + 16);
  out->header.flags = p[26];
  const std::uint8_t* tenant_begin = p + kPreludeBytes;
  out->header.tenant.assign(reinterpret_cast<const char*>(tenant_begin),
                            tenant_len);
  const std::uint8_t* payload_begin = tenant_begin + tenant_len;
  out->payload.assign(payload_begin, payload_begin + (body - tenant_len));
  pos_ += kPreludeBytes + body;
  last_assembly_seconds_ = arrival_.ElapsedSeconds();

  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ >= (64u << 10)) {
    // Compact consumed prefix so a long-lived connection doesn't grow the
    // buffer without bound.
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return true;
}

// ---- Typed payloads ----

void EncodeSubmitPayload(const QueryGraph& q, std::uint64_t store_limit,
                         std::vector<std::uint8_t>* out) {
  PayloadWriter w(out);
  w.U64(store_limit);
  const std::uint32_t nv = static_cast<std::uint32_t>(q.NumVertices());
  w.U32(nv);
  w.U32(static_cast<std::uint32_t>(q.NumEdges()));
  for (VertexId u = 0; u < nv; ++u) w.U32(q.label(u));
  for (VertexId u = 0; u < nv; ++u) {
    for (const VertexId v : q.neighbors(u)) {
      if (u >= v) continue;  // each undirected edge once
      w.U32(u);
      w.U32(v);
      w.U32(q.has_edge_labels() ? q.EdgeLabel(u, v) : 0);
    }
  }
}

StatusOr<SubmitPayload> DecodeSubmitPayload(
    std::span<const std::uint8_t> data) {
  PayloadReader r(data);
  SubmitPayload out;
  FAST_ASSIGN_OR_RETURN(out.store_limit, r.U64());
  FAST_ASSIGN_OR_RETURN(const std::uint32_t nv, r.U32());
  FAST_ASSIGN_OR_RETURN(const std::uint32_t ne, r.U32());
  if (nv == 0 || nv > kMaxQueryVertices) {
    return Status::InvalidArgument("wire: query vertex count " +
                                   std::to_string(nv) + " out of range");
  }
  // A connected simple query has at most nv*(nv-1)/2 edges; anything larger
  // is a malformed count, not a big query.
  if (ne > nv * (nv - 1) / 2) {
    return Status::InvalidArgument("wire: query edge count " +
                                   std::to_string(ne) + " impossible for " +
                                   std::to_string(nv) + " vertices");
  }
  GraphBuilder builder;
  for (std::uint32_t i = 0; i < nv; ++i) {
    FAST_ASSIGN_OR_RETURN(const Label label, r.U32());
    builder.AddVertex(label);
  }
  for (std::uint32_t i = 0; i < ne; ++i) {
    FAST_ASSIGN_OR_RETURN(const std::uint32_t u, r.U32());
    FAST_ASSIGN_OR_RETURN(const std::uint32_t v, r.U32());
    FAST_ASSIGN_OR_RETURN(const Label label, r.U32());
    if (u >= nv || v >= nv) {
      return Status::InvalidArgument("wire: query edge endpoint out of range");
    }
    FAST_RETURN_IF_ERROR(builder.AddEdge(u, v, label));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("wire: trailing bytes after query");
  }
  FAST_ASSIGN_OR_RETURN(Graph graph, builder.Build());
  FAST_ASSIGN_OR_RETURN(out.query, QueryGraph::Create(std::move(graph), "wire"));
  return out;
}

void EncodeResultPayload(const ResultPayload& r,
                         std::vector<std::uint8_t>* out) {
  PayloadWriter w(out);
  w.U32(r.status_code);
  w.Str(r.message);
  w.U64(r.embeddings);
  w.U64(r.graph_epoch);
  w.F64(r.queue_seconds);
  w.F64(r.total_seconds);
  w.U8(r.cache_hit ? 1 : 0);
}

StatusOr<ResultPayload> DecodeResultPayload(
    std::span<const std::uint8_t> data) {
  PayloadReader r(data);
  ResultPayload out;
  FAST_ASSIGN_OR_RETURN(out.status_code, r.U32());
  FAST_ASSIGN_OR_RETURN(out.message, r.Str());
  FAST_ASSIGN_OR_RETURN(out.embeddings, r.U64());
  FAST_ASSIGN_OR_RETURN(out.graph_epoch, r.U64());
  FAST_ASSIGN_OR_RETURN(out.queue_seconds, r.F64());
  FAST_ASSIGN_OR_RETURN(out.total_seconds, r.F64());
  FAST_ASSIGN_OR_RETURN(const std::uint8_t hit, r.U8());
  out.cache_hit = hit != 0;
  return out;
}

void EncodeEmbeddingPayload(const EmbeddingPayload& e,
                            std::vector<std::uint8_t>* out) {
  PayloadWriter w(out);
  w.U32(e.width);
  w.U32(static_cast<std::uint32_t>(e.rows()));
  for (const std::uint32_t v : e.vertices) w.U32(v);
}

StatusOr<EmbeddingPayload> DecodeEmbeddingPayload(
    std::span<const std::uint8_t> data) {
  PayloadReader r(data);
  EmbeddingPayload out;
  FAST_ASSIGN_OR_RETURN(out.width, r.U32());
  FAST_ASSIGN_OR_RETURN(const std::uint32_t rows, r.U32());
  if (out.width == 0 || out.width > kMaxQueryVertices) {
    return Status::InvalidArgument("wire: embedding width out of range");
  }
  const std::size_t total = static_cast<std::size_t>(rows) * out.width;
  if (r.remaining() != total * sizeof(std::uint32_t)) {
    return Truncated("embedding rows");
  }
  out.vertices.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    FAST_ASSIGN_OR_RETURN(const std::uint32_t v, r.U32());
    out.vertices.push_back(v);
  }
  return out;
}

void EncodeStatusPayload(const StatusPayload& s,
                         std::vector<std::uint8_t>* out) {
  PayloadWriter w(out);
  w.U32(s.code);
  w.Str(s.message);
}

StatusOr<StatusPayload> DecodeStatusPayload(
    std::span<const std::uint8_t> data) {
  PayloadReader r(data);
  StatusPayload out;
  FAST_ASSIGN_OR_RETURN(out.code, r.U32());
  FAST_ASSIGN_OR_RETURN(out.message, r.Str());
  return out;
}

void EncodeHelloAckPayload(const HelloAckPayload& h,
                           std::vector<std::uint8_t>* out) {
  PayloadWriter w(out);
  w.U32(h.max_inflight);
}

StatusOr<HelloAckPayload> DecodeHelloAckPayload(
    std::span<const std::uint8_t> data) {
  PayloadReader r(data);
  HelloAckPayload out;
  FAST_ASSIGN_OR_RETURN(out.max_inflight, r.U32());
  return out;
}

}  // namespace fast::net
