#ifndef FAST_NET_WIRE_FORMAT_H_
#define FAST_NET_WIRE_FORMAT_H_

// Binary length-prefixed framing protocol for the serving front end.
//
// Every frame is a fixed 28-byte little-endian prelude followed by the
// routing key (tenant id bytes) and a type-specific payload:
//
//   offset  size  field
//        0     2  magic 0xFA57
//        2     1  protocol version (kWireVersion)
//        3     1  frame type (FrameType)
//        4     4  body length   = tenant_len + payload bytes
//        8     8  request id    (client-chosen on SUBMIT; echoed back)
//       16     8  deadline, µs  (0 = none; SUBMIT only)
//       24     2  tenant_len    (routing key bytes immediately after prelude)
//       26     1  flags         (FrameFlags)
//       27     1  reserved (0)
//       28     …  tenant id bytes, then payload
//
// The tenant id rides in the *header*, not the payload, because it is the
// routing key: the server must pick the session before it decodes anything
// else, and an intermediary (the future inter-shard router) can forward a
// frame without understanding its payload.
//
// Conversation:
//
//   client                                server
//     ── HELLO ───────────────────────────▶
//     ◀────────────────────────── HELLO_ACK   (max in-flight per connection)
//     ── SUBMIT(id, tenant, deadline, q) ─▶
//     ◀─────────────────────── EMBEDDING(id)  (0+ frames, if flag set)
//     ◀────────────────────────── RESULT(id)  (exactly one, terminal)
//   or
//     ◀──────────────────────── PUSHBACK(id)  (admission rejected: queue or
//                                              connection window full — the
//                                              stream stays healthy, resubmit
//                                              later; NOT a dropped byte)
//   or
//     ◀─────────────────────────── ERROR(id)  (this request failed: unknown
//                                              tenant, malformed query, ...)
//
// Framing-level violations (bad magic, version mismatch, unknown type,
// body_len over the decoder bound) are NOT per-request errors: the byte
// stream is unrecoverable, the decoder returns an error Status and the
// server closes the connection.
//
// All integers are little-endian; floats are IEEE-754 doubles memcpy'd to 8
// bytes. Strings are u32 length + raw bytes.

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "query/query_graph.h"
#include "util/status.h"
#include "util/timer.h"

namespace fast::net {

inline constexpr std::uint16_t kWireMagic = 0xFA57;
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kPreludeBytes = 28;
// Decoder bound on body_len: a frame claiming more is a protocol violation
// (protects the server from one bogus length allocating gigabytes).
inline constexpr std::size_t kDefaultMaxBody = 16u << 20;  // 16 MiB
inline constexpr std::size_t kMaxTenantBytes = 4096;

enum class FrameType : std::uint8_t {
  kHello = 1,     // client → server, first frame on a connection
  kHelloAck = 2,  // server → client: u32 max in-flight requests
  kSubmit = 3,    // client → server: query submission
  kResult = 4,    // server → client: terminal result for request id
  kEmbedding = 5, // server → client: streamed embedding rows for request id
  kPushback = 6,  // server → client: admission rejected, flow control
  kError = 7,     // server → client: per-request failure (stream survives)
  kPing = 8,      // either direction; peer answers kPong
  kPong = 9,
};

const char* FrameTypeName(FrameType t);

enum FrameFlags : std::uint8_t {
  // SUBMIT: stream each embedding back as EMBEDDING frames (bounded by the
  // payload's store_limit) before the RESULT.
  kFlagStreamEmbeddings = 0x1,
  // PUSHBACK: the *connection's* in-flight window is full (as opposed to the
  // service admission queue).
  kFlagConnLimit = 0x2,
};

struct FrameHeader {
  FrameType type = FrameType::kPing;
  std::uint64_t request_id = 0;
  std::uint64_t deadline_us = 0;  // SUBMIT: per-request deadline; 0 = none
  std::uint8_t flags = 0;
  std::string tenant;  // routing key (session key); may be empty
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

// ---- Payload primitives. ----

// Appends little-endian scalars / length-prefixed strings to a byte buffer.
class PayloadWriter {
 public:
  explicit PayloadWriter(std::vector<std::uint8_t>* out) : out_(out) {}

  void U8(std::uint8_t v) { out_->push_back(v); }
  void U16(std::uint16_t v) { AppendLe(v); }
  void U32(std::uint32_t v) { AppendLe(v); }
  void U64(std::uint64_t v) { AppendLe(v); }
  void F64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    AppendLe(bits);
  }
  void Str(std::string_view s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_->insert(out_->end(), s.begin(), s.end());
  }

 private:
  template <typename T>
  void AppendLe(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t>* out_;
};

// Bounds-checked little-endian reader; every getter fails with
// INVALID_ARGUMENT ("truncated payload") past the end.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> data) : data_(data) {}

  StatusOr<std::uint8_t> U8();
  StatusOr<std::uint16_t> U16();
  StatusOr<std::uint32_t> U32();
  StatusOr<std::uint64_t> U64();
  StatusOr<double> F64();
  StatusOr<std::string> Str();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  StatusOr<T> ReadLe();
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// ---- Frame encode / decode. ----

// Appends the full wire image (prelude + tenant + payload) to *out.
void EncodeFrame(const FrameHeader& header,
                 std::span<const std::uint8_t> payload,
                 std::vector<std::uint8_t>* out);

// Incremental frame parser over an arbitrarily-chunked byte stream. Feed()
// bytes as they arrive; Next() yields complete frames. A protocol violation
// (bad magic/version/unknown type/oversized body) poisons the decoder: Next
// keeps returning the same error and the connection must be dropped.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_body = kDefaultMaxBody)
      : max_body_(max_body) {}

  void Feed(std::span<const std::uint8_t> data);

  // True: *out holds the next frame. False: need more bytes. Error Status:
  // the stream is unrecoverable.
  StatusOr<bool> Next(Frame* out);

  // Wall seconds from the arrival of the returned frame's first byte to the
  // Feed() that completed it — the wire recv span for that frame. Valid
  // after a Next() that returned true.
  double last_assembly_seconds() const { return last_assembly_seconds_; }

  std::size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  const std::size_t max_body_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  Timer arrival_;  // reset when the buffer transitions empty -> non-empty
  double last_assembly_seconds_ = 0.0;
  std::optional<Status> poisoned_;
};

// ---- Typed payloads. ----

struct SubmitPayload {
  std::uint64_t store_limit = 0;
  QueryGraph query;
};

// Serializes the query structure (labels + labelled edge list).
void EncodeSubmitPayload(const QueryGraph& q, std::uint64_t store_limit,
                         std::vector<std::uint8_t>* out);
// Rebuilds the QueryGraph; INVALID_ARGUMENT for malformed bytes (bad counts,
// out-of-range endpoints, disconnected/oversized query).
StatusOr<SubmitPayload> DecodeSubmitPayload(std::span<const std::uint8_t> data);

struct ResultPayload {
  std::uint32_t status_code = 0;  // fast::StatusCode numeric value
  std::string message;
  std::uint64_t embeddings = 0;
  std::uint64_t graph_epoch = 0;
  double queue_seconds = 0.0;
  double total_seconds = 0.0;
  bool cache_hit = false;
};

void EncodeResultPayload(const ResultPayload& r, std::vector<std::uint8_t>* out);
StatusOr<ResultPayload> DecodeResultPayload(std::span<const std::uint8_t> data);

// Embedding rows: `width` vertices per row, row-major.
struct EmbeddingPayload {
  std::uint32_t width = 0;
  std::vector<std::uint32_t> vertices;  // rows * width entries

  std::size_t rows() const { return width == 0 ? 0 : vertices.size() / width; }
};

void EncodeEmbeddingPayload(const EmbeddingPayload& e,
                            std::vector<std::uint8_t>* out);
StatusOr<EmbeddingPayload> DecodeEmbeddingPayload(
    std::span<const std::uint8_t> data);

// PUSHBACK and ERROR share the {code, message} shape.
struct StatusPayload {
  std::uint32_t code = 0;  // fast::StatusCode numeric value
  std::string message;
};

void EncodeStatusPayload(const StatusPayload& s, std::vector<std::uint8_t>* out);
StatusOr<StatusPayload> DecodeStatusPayload(std::span<const std::uint8_t> data);

// HELLO_ACK: the server's per-connection in-flight window (flow control).
struct HelloAckPayload {
  std::uint32_t max_inflight = 0;
};

void EncodeHelloAckPayload(const HelloAckPayload& h,
                           std::vector<std::uint8_t>* out);
StatusOr<HelloAckPayload> DecodeHelloAckPayload(
    std::span<const std::uint8_t> data);

}  // namespace fast::net

#endif  // FAST_NET_WIRE_FORMAT_H_
