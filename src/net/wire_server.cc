#include "net/wire_server.h"

#include <utility>

#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace fast::net {

namespace {

// Rows of one embedding batch currently buffered for streaming.
std::size_t BatchRows(const EmbeddingPayload& b) { return b.rows(); }

}  // namespace

struct WireServer::Connection {
  explicit Connection(ScopedFd socket) : fd(std::move(socket)) {}

  ScopedFd fd;
  // Serializes frame writes so concurrent completion callbacks interleave at
  // frame granularity, never mid-frame.
  std::mutex write_mu;
  std::atomic<std::uint32_t> inflight{0};
  std::atomic<bool> closed{false};
  std::thread reader;
};

WireServer::WireServer(service::Frontend* frontend, WireServerOptions options)
    : frontend_(frontend), options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* m = options_.metrics;
    m_frames_received_ = m->GetCounter("fast_wire_frames_received_total",
                                       "Frames received on wire connections");
    m_frames_sent_ = m->GetCounter("fast_wire_frames_sent_total",
                                   "Frames written to wire connections");
    m_pushback_ = m->GetCounter("fast_wire_pushback_total",
                                "PUSHBACK frames sent (flow control)");
    m_protocol_errors_ =
        m->GetCounter("fast_wire_protocol_errors_total",
                      "Framing violations that closed a connection");
    m_encode_seconds_ = m->GetHistogram(
        "fast_span_encode_seconds", "Wire span: response frame encode");
    m_send_seconds_ = m->GetHistogram("fast_span_send_seconds",
                                      "Wire span: response socket write");
  }
}

WireServer::~WireServer() { Shutdown(); }

Status WireServer::Start() {
  FAST_ASSIGN_OR_RETURN(listener_,
                        ListenTcp(options_.host, options_.port, &port_));
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void WireServer::Shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  ShutdownFd(listener_.get());
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();

  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (const auto& conn : conns) {
    conn->closed.store(true, std::memory_order_relaxed);
    ShutdownFd(conn->fd.get());
  }
  for (const auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  // Completion callbacks still in flight inside the frontend hold their own
  // shared_ptr<Connection>; they see `closed` and drop their frames.
}

WireServerStats WireServer::stats() const {
  WireServerStats s;
  s.connections_accepted =
      counters_.connections_accepted.load(std::memory_order_relaxed);
  s.connections_closed =
      counters_.connections_closed.load(std::memory_order_relaxed);
  s.frames_received = counters_.frames_received.load(std::memory_order_relaxed);
  s.frames_sent = counters_.frames_sent.load(std::memory_order_relaxed);
  s.submits = counters_.submits.load(std::memory_order_relaxed);
  s.pushback_queue = counters_.pushback_queue.load(std::memory_order_relaxed);
  s.pushback_conn = counters_.pushback_conn.load(std::memory_order_relaxed);
  s.errors_sent = counters_.errors_sent.load(std::memory_order_relaxed);
  s.protocol_errors = counters_.protocol_errors.load(std::memory_order_relaxed);
  return s;
}

void WireServer::AcceptLoop() {
  obs::Profiler::RegisterCurrentThread("net-accept", obs::ThreadKind::kNet);
  for (;;) {
    StatusOr<ScopedFd> accepted = AcceptTcp(listener_.get());
    if (!accepted.ok()) {
      // Listener shut down (normal exit) or a transient accept failure
      // during teardown; either way stop when asked to.
      if (stopping_.load(std::memory_order_relaxed)) return;
      continue;
    }
    if (stopping_.load(std::memory_order_relaxed)) return;
    auto conn = std::make_shared<Connection>(std::move(*accepted));
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
  }
}

void WireServer::ReaderLoop(std::shared_ptr<Connection> conn) {
  obs::Profiler::RegisterCurrentThread("net-conn", obs::ThreadKind::kNet);
  FrameDecoder decoder(options_.max_body);
  std::vector<std::uint8_t> buf(64u << 10);
  bool protocol_error = false;
  while (!protocol_error) {
    StatusOr<std::size_t> n = RecvSome(conn->fd.get(), buf.data(), buf.size());
    if (!n.ok() || *n == 0) break;  // EOF, reset, or Shutdown()
    decoder.Feed({buf.data(), *n});
    for (;;) {
      Frame frame;
      StatusOr<bool> has = decoder.Next(&frame);
      if (!has.ok()) {
        // Unrecoverable byte stream: close, don't guess at resync.
        FAST_LOG(WARNING) << "wire: closing connection: "
                          << has.status().ToString();
        counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        if (m_protocol_errors_ != nullptr) m_protocol_errors_->Increment();
        protocol_error = true;
        break;
      }
      if (!*has) break;
      counters_.frames_received.fetch_add(1, std::memory_order_relaxed);
      if (m_frames_received_ != nullptr) m_frames_received_->Increment();
      HandleFrame(conn, std::move(frame), decoder.last_assembly_seconds());
    }
  }
  conn->closed.store(true, std::memory_order_relaxed);
  ShutdownFd(conn->fd.get());
  counters_.connections_closed.fetch_add(1, std::memory_order_relaxed);
}

void WireServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                             Frame frame, double assembly_seconds) {
  switch (frame.header.type) {
    case FrameType::kHello: {
      std::vector<std::uint8_t> payload;
      EncodeHelloAckPayload({.max_inflight = options_.max_inflight_per_conn},
                            &payload);
      FrameHeader h;
      h.type = FrameType::kHelloAck;
      h.request_id = frame.header.request_id;
      SendFrame(conn, h, payload);
      return;
    }
    case FrameType::kPing: {
      FrameHeader h;
      h.type = FrameType::kPong;
      h.request_id = frame.header.request_id;
      SendFrame(conn, h, {});
      return;
    }
    case FrameType::kSubmit:
      HandleSubmit(conn, std::move(frame), assembly_seconds);
      return;
    case FrameType::kPong:
      return;  // unsolicited, ignore
    default: {
      // Server-bound streams must not carry server->client types; report it
      // on the request id but keep the connection (the framing is intact).
      std::vector<std::uint8_t> payload;
      EncodeStatusPayload(
          {.code = static_cast<std::uint32_t>(StatusCode::kInvalidArgument),
           .message = std::string("unexpected frame type ") +
                      FrameTypeName(frame.header.type)},
          &payload);
      FrameHeader h;
      h.type = FrameType::kError;
      h.request_id = frame.header.request_id;
      SendFrame(conn, h, payload);
      counters_.errors_sent.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

void WireServer::HandleSubmit(const std::shared_ptr<Connection>& conn,
                              Frame frame, double assembly_seconds) {
  const std::uint64_t wire_id = frame.header.request_id;

  auto send_status = [&](FrameType type, std::uint8_t flags, StatusCode code,
                         std::string message) {
    std::vector<std::uint8_t> payload;
    EncodeStatusPayload({.code = static_cast<std::uint32_t>(code),
                         .message = std::move(message)},
                        &payload);
    FrameHeader h;
    h.type = type;
    h.request_id = wire_id;
    h.flags = flags;
    SendFrame(conn, h, payload);
    if (type == FrameType::kPushback) {
      if (m_pushback_ != nullptr) m_pushback_->Increment();
    } else {
      counters_.errors_sent.fetch_add(1, std::memory_order_relaxed);
    }
  };

  // The trace is wire-anchored: constructed at frame receive, carrying the
  // frame-assembly wall time as the recv span, then handed to the frontend
  // via resume_trace so the service-side spans land in the same record.
  std::shared_ptr<obs::RequestTrace> trace;
  if (options_.tracing) {
    trace = std::make_shared<obs::RequestTrace>();
    trace->RecordWall(obs::Span::kRecv, assembly_seconds);
    trace->Begin(obs::Span::kDecode);
  }
  StatusOr<SubmitPayload> submit = DecodeSubmitPayload(frame.payload);
  if (trace != nullptr) trace->End();
  if (!submit.ok()) {
    send_status(FrameType::kError, 0, submit.status().code(),
                submit.status().message());
    return;
  }

  // Connection-window flow control. Only this reader thread increments, so
  // check-then-increment cannot race another submit on the same connection.
  if (options_.max_inflight_per_conn > 0 &&
      conn->inflight.load(std::memory_order_relaxed) >=
          options_.max_inflight_per_conn) {
    counters_.pushback_conn.fetch_add(1, std::memory_order_relaxed);
    send_status(FrameType::kPushback, kFlagConnLimit,
                StatusCode::kResourceExhausted,
                "connection in-flight window full");
    return;
  }
  conn->inflight.fetch_add(1, std::memory_order_relaxed);

  const bool streaming =
      (frame.header.flags & kFlagStreamEmbeddings) != 0 &&
      submit->store_limit > 0;

  // Per-request streaming state; on_embedding and on_complete both run on
  // the worker thread serving this request, so no lock beyond the
  // connection's write_mu (taken inside SendFrame).
  struct Pending {
    std::shared_ptr<Connection> conn;
    std::uint64_t wire_id = 0;
    bool streaming = false;
    std::size_t limit = 0;
    std::size_t streamed = 0;
    EmbeddingPayload batch;
  };
  auto pending = std::make_shared<Pending>();
  pending->conn = conn;
  pending->wire_id = wire_id;
  pending->streaming = streaming;
  pending->limit = static_cast<std::size_t>(submit->store_limit);

  auto flush_batch = [this](const std::shared_ptr<Pending>& p) {
    if (BatchRows(p->batch) == 0) return;
    std::vector<std::uint8_t> payload;
    EncodeEmbeddingPayload(p->batch, &payload);
    FrameHeader h;
    h.type = FrameType::kEmbedding;
    h.request_id = p->wire_id;
    SendFrame(p->conn, h, payload);
    p->batch.vertices.clear();
  };

  service::RequestOptions opts;
  opts.resume_trace = std::move(trace);
  if (frame.header.deadline_us > 0) {
    opts.deadline_seconds =
        static_cast<double>(frame.header.deadline_us) * 1e-6;
  }
  if (streaming) {
    // Stream as matched instead of storing in the result.
    const std::size_t chunk = options_.stream_rows_per_frame;
    opts.on_embedding = [pending, flush_batch,
                         chunk](std::span<const VertexId> emb) {
      if (pending->streamed >= pending->limit) return;
      if (pending->batch.width == 0) {
        pending->batch.width = static_cast<std::uint32_t>(emb.size());
      }
      pending->batch.vertices.insert(pending->batch.vertices.end(),
                                     emb.begin(), emb.end());
      ++pending->streamed;
      if (BatchRows(pending->batch) >= chunk) flush_batch(pending);
    };
  } else {
    opts.store_limit = static_cast<std::size_t>(submit->store_limit);
  }

  opts.on_complete = [this, pending, flush_batch](
                         std::uint64_t /*internal_id*/,
                         const service::RequestResult& result) {
    if (pending->streaming) {
      flush_batch(pending);
    } else if (result.status.ok() && !result.run.sample_embeddings.empty()) {
      // Sampled (non-streamed) embeddings ride back the same frame type,
      // batched.
      for (std::size_t i = 0; i < result.run.sample_embeddings.size();) {
        pending->batch.vertices.clear();
        pending->batch.width = static_cast<std::uint32_t>(
            result.run.sample_embeddings[i].size());
        while (i < result.run.sample_embeddings.size() &&
               BatchRows(pending->batch) < options_.stream_rows_per_frame) {
          const auto& emb = result.run.sample_embeddings[i];
          pending->batch.vertices.insert(pending->batch.vertices.end(),
                                         emb.begin(), emb.end());
          ++i;
        }
        flush_batch(pending);
      }
    }
    ResultPayload rp;
    rp.status_code = static_cast<std::uint32_t>(result.status.code());
    rp.message = result.status.message();
    rp.embeddings = result.status.ok() ? result.run.embeddings : 0;
    rp.graph_epoch = result.graph_epoch;
    rp.queue_seconds = result.queue_seconds;
    rp.total_seconds = result.total_seconds;
    rp.cache_hit = result.cache_hit;
    std::vector<std::uint8_t> payload;
    EncodeResultPayload(rp, &payload);
    FrameHeader h;
    h.type = FrameType::kResult;
    h.request_id = pending->wire_id;
    SendFrame(pending->conn, h, payload);
    pending->conn->inflight.fetch_sub(1, std::memory_order_relaxed);
  };

  counters_.submits.fetch_add(1, std::memory_order_relaxed);
  StatusOr<service::Frontend::RequestId> id = frontend_->Submit(
      frame.header.tenant, submit->query, std::move(opts));
  if (!id.ok()) {
    conn->inflight.fetch_sub(1, std::memory_order_relaxed);
    if (id.status().code() == StatusCode::kResourceExhausted) {
      // The service admission queue (or tenant quota) is full: protocol
      // pushback, not a dropped connection.
      counters_.pushback_queue.fetch_add(1, std::memory_order_relaxed);
      send_status(FrameType::kPushback, 0, id.status().code(),
                  id.status().message());
    } else {
      send_status(FrameType::kError, 0, id.status().code(),
                  id.status().message());
    }
  }
}

void WireServer::SendFrame(const std::shared_ptr<Connection>& conn,
                           const FrameHeader& header,
                           std::span<const std::uint8_t> payload) {
  if (conn->closed.load(std::memory_order_relaxed)) return;
  Timer encode_timer;
  std::vector<std::uint8_t> wire;
  wire.reserve(kPreludeBytes + header.tenant.size() + payload.size());
  EncodeFrame(header, payload, &wire);
  if (m_encode_seconds_ != nullptr) {
    m_encode_seconds_->Record(encode_timer.ElapsedSeconds());
  }
  Timer send_timer;
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (conn->closed.load(std::memory_order_relaxed)) return;
    const Status s = SendAll(conn->fd.get(), wire.data(), wire.size());
    if (!s.ok()) {
      // Peer went away; the reader will observe the shutdown and finish.
      conn->closed.store(true, std::memory_order_relaxed);
      ShutdownFd(conn->fd.get());
      return;
    }
  }
  if (m_send_seconds_ != nullptr) {
    m_send_seconds_->Record(send_timer.ElapsedSeconds());
  }
  counters_.frames_sent.fetch_add(1, std::memory_order_relaxed);
  if (m_frames_sent_ != nullptr) m_frames_sent_->Increment();
}

}  // namespace fast::net
