#ifndef FAST_NET_WIRE_SERVER_H_
#define FAST_NET_WIRE_SERVER_H_

// TCP front end over any service::Frontend (MatchService or TenantRouter).
//
// One accept thread plus one reader thread per connection. A SUBMIT frame is
// decoded into a QueryGraph and submitted in callback mode: the completion
// callback runs on the service worker thread that finished the request and
// writes the EMBEDDING/RESULT frames back under the connection's write lock,
// so responses from concurrent requests interleave at frame granularity and
// the reader thread never blocks on a slow query.
//
// Flow control maps the service's bounded admission queue onto the protocol:
//   - service RESOURCE_EXHAUSTED (queue full / tenant quota) → PUSHBACK
//   - connection in-flight window full                       → PUSHBACK
//                                                              (kFlagConnLimit)
// Both leave the connection healthy — pushback is a frame, not a dropped
// byte or a reset. Per-request failures (unknown tenant, malformed query,
// deadline) come back as ERROR/RESULT frames; only framing-level protocol
// violations close the connection.
//
// Tracing: when enabled, the server starts the request trace itself —
// anchored at frame receive, carrying the recv (frame assembly) and decode
// spans — and hands it to the service via RequestOptions::resume_trace, so
// one trace tiles the whole wire path: recv → decode → admit → queue → … →
// remap. Encode and send happen after the service froze the trace, so those
// two spans are recorded into the registry histograms
// (fast_span_encode_seconds / fast_span_send_seconds) directly.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "net/wire_format.h"
#include "obs/metrics.h"
#include "service/frontend.h"

namespace fast::net {

struct WireServerOptions {
  WireServerOptions() = default;

  std::string host = "127.0.0.1";
  // 0 = pick an ephemeral port (read it back via port() after Start()).
  std::uint16_t port = 0;
  // Per-connection in-flight window advertised in HELLO_ACK; submits beyond
  // it get PUSHBACK(kFlagConnLimit). 0 = unlimited.
  std::uint32_t max_inflight_per_conn = 64;
  // Frame-decoder body bound; larger inbound frames poison the connection.
  std::size_t max_body = kDefaultMaxBody;
  // Streamed embeddings are batched up to this many rows per EMBEDDING frame.
  std::size_t stream_rows_per_frame = 256;
  // Registry for wire counters and the encode/send span histograms. Null
  // disables registry reporting.
  obs::MetricsRegistry* metrics = nullptr;
  // Start wire-anchored request traces (resume_trace). The frontend folds
  // them into its rings only if its own tracing is on too.
  bool tracing = true;
};
static_assert(!std::is_aggregate_v<WireServerOptions>,
              "WireServerOptions must not be positionally brace-initializable");

struct WireServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t submits = 0;
  std::uint64_t pushback_queue = 0;   // service admission rejected
  std::uint64_t pushback_conn = 0;    // connection window full
  std::uint64_t errors_sent = 0;      // per-request ERROR frames
  std::uint64_t protocol_errors = 0;  // framing violations (connection closed)
};

class WireServer {
 public:
  // `frontend` must outlive the server. Session keys on SUBMIT frames are
  // passed through as-is (TenantRouter resolves them as tenant ids;
  // MatchService ignores them).
  WireServer(service::Frontend* frontend, WireServerOptions options);
  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  // Binds, listens, and starts the accept thread.
  Status Start();

  // The bound port (valid after Start()).
  std::uint16_t port() const { return port_; }

  // Stops accepting, unblocks every connection reader, joins all threads.
  // In-flight requests already inside the frontend still complete; their
  // completion callbacks find the connection closed and drop the frames.
  // Idempotent; also run by the destructor. Does NOT shut the frontend down.
  void Shutdown();

  WireServerStats stats() const;

 private:
  struct Connection;

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void HandleFrame(const std::shared_ptr<Connection>& conn, Frame frame,
                   double assembly_seconds);
  void HandleSubmit(const std::shared_ptr<Connection>& conn, Frame frame,
                    double assembly_seconds);
  // Encodes and writes one frame under the connection's write lock,
  // recording the encode/send registry spans. Closes the connection's write
  // side on error.
  void SendFrame(const std::shared_ptr<Connection>& conn,
                 const FrameHeader& header,
                 std::span<const std::uint8_t> payload);

  service::Frontend* const frontend_;
  const WireServerOptions options_;
  std::uint16_t port_ = 0;

  ScopedFd listener_;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  // Reader threads live here until Shutdown joins them. Connections
  // themselves are shared_ptr-held by completion callbacks in flight.
  std::vector<std::shared_ptr<Connection>> conns_;

  struct Counters {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_closed{0};
    std::atomic<std::uint64_t> frames_received{0};
    std::atomic<std::uint64_t> frames_sent{0};
    std::atomic<std::uint64_t> submits{0};
    std::atomic<std::uint64_t> pushback_queue{0};
    std::atomic<std::uint64_t> pushback_conn{0};
    std::atomic<std::uint64_t> errors_sent{0};
    std::atomic<std::uint64_t> protocol_errors{0};
  };
  Counters counters_;

  // Registry bindings (null without a registry).
  obs::Counter* m_frames_received_ = nullptr;
  obs::Counter* m_frames_sent_ = nullptr;
  obs::Counter* m_pushback_ = nullptr;
  obs::Counter* m_protocol_errors_ = nullptr;
  obs::Histogram* m_encode_seconds_ = nullptr;
  obs::Histogram* m_send_seconds_ = nullptr;
};

}  // namespace fast::net

#endif  // FAST_NET_WIRE_SERVER_H_
