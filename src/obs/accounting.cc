#include "obs/accounting.h"

#include <algorithm>

namespace fast::obs {

ResourceAccounts::ResourceAccounts(MetricsRegistry* metrics)
    : metrics_(metrics) {
  if (metrics_ == nullptr) return;
  requests_ = metrics_->GetCounter("fast_account_requests_total",
                                   "Finished requests charged to any account");
  errors_ = metrics_->GetCounter("fast_account_errors_total",
                                 "Finished not-OK requests, any account");
  cpu_ns_ = metrics_->GetCounter("fast_account_cpu_ns_total",
                                 "Worker thread-CPU nanoseconds charged");
  device_kernel_ns_ =
      metrics_->GetCounter("fast_account_device_kernel_ns_total",
                           "Simulated device kernel nanoseconds charged");
  dma_bytes_ = metrics_->GetCounter("fast_account_dma_bytes_total",
                                    "Simulated PCIe bytes charged");
  queue_wait_ns_ = metrics_->GetCounter("fast_account_queue_wait_ns_total",
                                        "Submit->dispatch nanoseconds charged");
  plan_cache_bytes_ =
      metrics_->GetCounter("fast_account_plan_cache_bytes_total",
                           "Serialized plan-image bytes inserted");
}

void ResourceAccounts::Charge(const std::string& tenant,
                              const RequestCost& cost, bool ok) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    AccountSnapshot& a =
        accounts_.try_emplace(tenant.empty() ? kDefaultAccount : tenant)
            .first->second;
    if (a.tenant.empty()) a.tenant = tenant.empty() ? kDefaultAccount : tenant;
    ++a.requests;
    if (!ok) ++a.errors;
    a.cpu_ns += cost.cpu_ns;
    a.device_kernel_ns += cost.device_kernel_ns;
    a.dma_bytes += cost.dma_bytes;
    a.queue_wait_ns += cost.queue_wait_ns;
    a.plan_cache_bytes += cost.plan_cache_bytes;
  }
  // Global roll-ups charged in the same call, outside the table lock — the
  // per-tenant sums and these counters agree up to requests in flight
  // between two scrapes.
  if (requests_ == nullptr) return;
  requests_->Increment();
  if (!ok) errors_->Increment();
  cpu_ns_->Increment(cost.cpu_ns);
  device_kernel_ns_->Increment(cost.device_kernel_ns);
  dma_bytes_->Increment(cost.dma_bytes);
  queue_wait_ns_->Increment(cost.queue_wait_ns);
  plan_cache_bytes_->Increment(cost.plan_cache_bytes);
}

std::vector<AccountSnapshot> ResourceAccounts::Snapshot() const {
  std::vector<AccountSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(accounts_.size());
    for (const auto& [id, a] : accounts_) out.push_back(a);
  }
  std::sort(out.begin(), out.end(),
            [](const AccountSnapshot& x, const AccountSnapshot& y) {
              return x.tenant < y.tenant;
            });
  return out;
}

std::size_t ResourceAccounts::num_accounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accounts_.size();
}

void WriteAccountsJson(JsonWriter& w, const std::vector<AccountSnapshot>& accounts,
                       const char* key) {
  w.BeginArray(key);
  for (const AccountSnapshot& a : accounts) {
    w.BeginObject();
    w.Field("tenant", a.tenant);
    w.Field("requests", a.requests);
    w.Field("errors", a.errors);
    w.Field("cpu_ns", a.cpu_ns);
    w.Field("device_kernel_ns", a.device_kernel_ns);
    w.Field("dma_bytes", a.dma_bytes);
    w.Field("queue_wait_ns", a.queue_wait_ns);
    w.Field("plan_cache_bytes", a.plan_cache_bytes);
    w.EndObject();
  }
  w.EndArray();
}

std::string AccountsToPrometheusText(
    const std::vector<AccountSnapshot>& accounts) {
  std::string out;
  const auto family = [&](const char* name, const char* help,
                          auto field) {
    out += std::string("# HELP ") + name + " " + help + "\n";
    out += std::string("# TYPE ") + name + " counter\n";
    for (const AccountSnapshot& a : accounts) {
      out += std::string(name) + "{tenant=\"" + a.tenant + "\"} " +
             std::to_string(field(a)) + "\n";
    }
  };
  family("fast_tenant_requests_total", "Finished requests per tenant",
         [](const AccountSnapshot& a) { return a.requests; });
  family("fast_tenant_errors_total", "Finished not-OK requests per tenant",
         [](const AccountSnapshot& a) { return a.errors; });
  family("fast_tenant_cpu_ns_total",
         "Worker thread-CPU nanoseconds per tenant",
         [](const AccountSnapshot& a) { return a.cpu_ns; });
  family("fast_tenant_device_kernel_ns_total",
         "Simulated device kernel nanoseconds per tenant",
         [](const AccountSnapshot& a) { return a.device_kernel_ns; });
  family("fast_tenant_dma_bytes_total", "Simulated PCIe bytes per tenant",
         [](const AccountSnapshot& a) { return a.dma_bytes; });
  family("fast_tenant_queue_wait_ns_total",
         "Submit->dispatch nanoseconds per tenant",
         [](const AccountSnapshot& a) { return a.queue_wait_ns; });
  family("fast_tenant_plan_cache_bytes_total",
         "Serialized plan-image bytes inserted per tenant",
         [](const AccountSnapshot& a) { return a.plan_cache_bytes; });
  return out;
}

}  // namespace fast::obs
