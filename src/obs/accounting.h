#ifndef FAST_OBS_ACCOUNTING_H_
#define FAST_OBS_ACCOUNTING_H_

// Per-tenant resource accounting: "which tenant is burning the device right
// now?" answered with numbers instead of guesses.
//
// Every request carries a cost vector assembled by the serving layer as the
// request finishes:
//   - cpu_ns:           worker thread-CPU time around dispatch + execution
//                       (CLOCK_THREAD_CPUTIME_ID — a worker blocked on the
//                       shared device accrues no CPU here);
//   - device_kernel_ns: the request's simulated kernel occupancy on the card
//                       (FastRunResult::kernel_seconds, amortized across a
//                       shared round in device mode);
//   - dma_bytes:        simulated bytes this request pushed across PCIe
//                       (dedup-aware in device mode: a query whose image was
//                       deduplicated against a round-mate is charged 0);
//   - queue_wait_ns:    submit -> dispatch;
//   - plan_cache_bytes: serialized CST image bytes this request *inserted*
//                       into the plan cache (0 on a hit).
//
// ResourceAccounts aggregates those vectors per tenant id ("__default" for
// the single-service mode where requests have no tenant) and mirrors the
// process-wide totals into the metrics registry as fast_account_* counters,
// charged in the same call — so the per-tenant table always sums to the
// global counters (modulo requests in flight between the two scrapes).
// Charge() is called once per finished request from RequestObs::OnFinished;
// snapshots feed the admin plane's /tenants endpoint, the flight recorder,
// and the accounts section of exported metrics JSON.

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "util/json_writer.h"

namespace fast::obs {

// Tenant id requests without a tenant are charged to.
inline constexpr const char* kDefaultAccount = "__default";

struct RequestCost {
  std::uint64_t cpu_ns = 0;
  std::uint64_t device_kernel_ns = 0;
  std::uint64_t dma_bytes = 0;
  std::uint64_t queue_wait_ns = 0;
  std::uint64_t plan_cache_bytes = 0;
};

// One tenant's accumulated account (also the snapshot row).
struct AccountSnapshot {
  std::string tenant;
  std::uint64_t requests = 0;  // every finished request, any outcome
  std::uint64_t errors = 0;    // finished not-OK
  std::uint64_t cpu_ns = 0;
  std::uint64_t device_kernel_ns = 0;
  std::uint64_t dma_bytes = 0;
  std::uint64_t queue_wait_ns = 0;
  std::uint64_t plan_cache_bytes = 0;
};

class ResourceAccounts {
 public:
  // `metrics` receives the global fast_account_* roll-up counters; nullptr
  // keeps per-tenant aggregation only. Non-owning.
  explicit ResourceAccounts(MetricsRegistry* metrics = nullptr);

  ResourceAccounts(const ResourceAccounts&) = delete;
  ResourceAccounts& operator=(const ResourceAccounts&) = delete;

  // Charges one finished request to `tenant` (empty -> "__default") and
  // bumps the global registry counters. Thread-safe.
  void Charge(const std::string& tenant, const RequestCost& cost, bool ok);

  // Account table sorted by tenant id.
  std::vector<AccountSnapshot> Snapshot() const;

  std::size_t num_accounts() const;

 private:
  MetricsRegistry* const metrics_;
  Counter* requests_ = nullptr;
  Counter* errors_ = nullptr;
  Counter* cpu_ns_ = nullptr;
  Counter* device_kernel_ns_ = nullptr;
  Counter* dma_bytes_ = nullptr;
  Counter* queue_wait_ns_ = nullptr;
  Counter* plan_cache_bytes_ = nullptr;

  mutable std::mutex mu_;
  std::unordered_map<std::string, AccountSnapshot> accounts_;
};

// Emits `accounts` as an array field named `key` of the writer's current
// scope — the shape served by /tenants and embedded next to "metrics" in
// fast_serve --metrics-json and the flight recorder.
void WriteAccountsJson(JsonWriter& w, const std::vector<AccountSnapshot>& accounts,
                       const char* key = "accounts");

// The same table as Prometheus families with a tenant label, e.g.
//   fast_tenant_requests_total{tenant="t0"} 42
// Appended to /metrics after the registry text (obs/export.h).
std::string AccountsToPrometheusText(const std::vector<AccountSnapshot>& accounts);

}  // namespace fast::obs

#endif  // FAST_OBS_ACCOUNTING_H_
