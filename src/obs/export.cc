#include "obs/export.h"

#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "util/build_info.h"

namespace fast::obs {

namespace {

// Locale-independent double formatting for the Prometheus text format.
std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return std::isnan(v) ? "NaN" : (v > 0 ? "+Inf" : "-Inf");
  char buf[48];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general, 9);
  return ec == std::errc() ? std::string(buf, ptr) : std::string("0");
}

void WriteHistogramFields(JsonWriter& w, const LatencyHistogram& h) {
  w.Field("count", h.count());
  w.Field("sum_seconds", h.sum_seconds());
  w.Field("mean_seconds", h.mean_seconds());
  w.Field("min_seconds", h.min_seconds());
  w.Field("p50_seconds", h.P50());
  w.Field("p90_seconds", h.P90());
  w.Field("p99_seconds", h.P99());
  w.Field("max_seconds", h.max_seconds());
}

}  // namespace

void WriteSnapshotJson(JsonWriter& w, const MetricsSnapshot& snap,
                       const char* key) {
  w.BeginObject(key);
  w.BeginObject("counters");
  for (const CounterSample& c : snap.counters) w.Field(c.name.c_str(), c.value);
  w.EndObject();
  w.BeginObject("gauges");
  for (const GaugeSample& g : snap.gauges) w.Field(g.name.c_str(), g.value);
  w.EndObject();
  w.BeginObject("histograms");
  for (const HistogramSample& h : snap.histograms) {
    w.BeginObject(h.name.c_str());
    WriteHistogramFields(w, h.hist);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
}

std::string SnapshotToJson(const MetricsSnapshot& snap) {
  JsonWriter w;
  WriteSnapshotJson(w, snap, "metrics");
  return w.Finish();
}

std::string ToPrometheusText(const MetricsSnapshot& snap) {
  std::string out;
  auto header = [&out](const std::string& name, const std::string& help,
                       const char* type) {
    if (!help.empty()) out += "# HELP " + name + " " + help + "\n";
    out += "# TYPE " + name + " " + type + "\n";
  };
  for (const CounterSample& c : snap.counters) {
    header(c.name, c.help, "counter");
    out += c.name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : snap.gauges) {
    header(g.name, g.help, "gauge");
    out += g.name + " " + FormatDouble(g.value) + "\n";
  }
  for (const HistogramSample& h : snap.histograms) {
    header(h.name, h.help, "histogram");
    std::uint64_t cumulative = 0;
    for (const LatencyHistogram::Bucket& b : h.hist.Buckets()) {
      cumulative += b.count;
      out += h.name + "_bucket{le=\"" + FormatDouble(b.upper_seconds) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += h.name + "_bucket{le=\"+Inf\"} " + std::to_string(h.hist.count()) +
           "\n";
    out += h.name + "_sum " + FormatDouble(h.hist.sum_seconds()) + "\n";
    out += h.name + "_count " + std::to_string(h.hist.count()) + "\n";
  }
  return out;
}

std::string TraceToJson(const CompletedTrace& trace) {
  std::string out = "{";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "\"request_id\": %llu",
                static_cast<unsigned long long>(trace.request_id));
  out += buf;
  if (!trace.tenant_id.empty()) {
    out += ", \"tenant\": \"" + JsonEscape(trace.tenant_id) + "\"";
  }
  out += ", \"ok\": ";
  out += trace.ok ? "true" : "false";
  out += ", \"status\": \"" + JsonEscape(trace.status) + "\"";
  out += ", \"total_seconds\": " + FormatDouble(trace.total_seconds);
  out += ", \"wall_span_seconds\": " + FormatDouble(trace.WallSpanSeconds());
  out += ", \"coverage\": " + FormatDouble(trace.Coverage());
  out += ", \"spans\": [";
  bool first = true;
  for (const TraceSpan& s : trace.spans) {
    if (!first) out += ", ";
    first = false;
    out += "{\"span\": \"";
    out += SpanName(s.span);
    out += "\", \"start_seconds\": " + FormatDouble(s.start_seconds);
    out += ", \"duration_seconds\": " + FormatDouble(s.duration_seconds);
    if (s.simulated) out += ", \"simulated\": true";
    out += "}";
  }
  out += "]}";
  return out;
}

void WriteTraceJson(JsonWriter& w, const CompletedTrace& trace) {
  w.BeginObject();
  w.Field("request_id", trace.request_id);
  if (!trace.tenant_id.empty()) w.Field("tenant", trace.tenant_id);
  w.Field("ok", trace.ok);
  w.Field("status", trace.status);
  w.Field("total_seconds", trace.total_seconds);
  w.Field("wall_span_seconds", trace.WallSpanSeconds());
  w.Field("coverage", trace.Coverage());
  w.BeginArray("spans");
  for (const TraceSpan& s : trace.spans) {
    w.BeginObject();
    w.Field("span", SpanName(s.span));
    w.Field("start_seconds", s.start_seconds);
    w.Field("duration_seconds", s.duration_seconds);
    if (s.simulated) w.Field("simulated", true);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

void WriteBuildInfoJson(JsonWriter& w, const char* key) {
  const BuildInfo& b = GetBuildInfo();
  w.BeginObject(key);
  w.Field("git_sha", b.git_sha);
  w.Field("build_type", b.build_type);
  w.Field("compiler", b.compiler);
  w.EndObject();
}

PeriodicSampler::PeriodicSampler(MetricsRegistry* registry,
                                 double interval_seconds, SampleFn sample,
                                 std::size_t max_points_per_series)
    : registry_(registry),
      interval_seconds_(interval_seconds),
      sample_(std::move(sample)),
      max_points_(max_points_per_series) {}

PeriodicSampler::~PeriodicSampler() { Stop(); }

void PeriodicSampler::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return;
    started_ = true;
    stopping_ = false;
  }
  clock_ = Timer();
  thread_ = std::thread(&PeriodicSampler::Loop, this);
}

void PeriodicSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final sample so a run shorter than one interval still exports a series.
  TakeSample(clock_.ElapsedSeconds());
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

void PeriodicSampler::Loop() {
  TakeSample(clock_.ElapsedSeconds());
  const auto interval = std::chrono::duration<double>(interval_seconds_);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) break;
    lock.unlock();
    TakeSample(clock_.ElapsedSeconds());
    lock.lock();
  }
}

void PeriodicSampler::TakeSample(double at_seconds) {
  if (!sample_) return;
  const auto values = sample_();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, value] : values) {
    if (registry_ != nullptr) registry_->GetGauge(name)->Set(value);
    Series* series = nullptr;
    for (Series& s : series_) {
      if (s.name == name) {
        series = &s;
        break;
      }
    }
    if (series == nullptr) {
      series_.push_back({name, {}});
      series = &series_.back();
    }
    series->points.emplace_back(at_seconds, value);
    if (series->points.size() > max_points_) {
      series->points.erase(series->points.begin());
    }
  }
}

std::vector<PeriodicSampler::Series> PeriodicSampler::SeriesSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_;
}

void PeriodicSampler::WriteSeriesJson(JsonWriter& w, const char* key) const {
  const auto series = SeriesSnapshot();
  w.BeginArray(key);
  for (const Series& s : series) {
    w.BeginObject();
    w.Field("name", s.name);
    w.BeginArray("points");
    for (const auto& [t, v] : s.points) {
      w.BeginObject();
      w.Field("t", t);
      w.Field("v", v);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
}

}  // namespace fast::obs
