#include "obs/export.h"

#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <string_view>

#include "util/build_info.h"

namespace fast::obs {

namespace {

// Locale-independent double formatting for the Prometheus text format.
std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return std::isnan(v) ? "NaN" : (v > 0 ? "+Inf" : "-Inf");
  char buf[48];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general, 9);
  return ec == std::errc() ? std::string(buf, ptr) : std::string("0");
}

void WriteHistogramFields(JsonWriter& w, const LatencyHistogram& h) {
  w.Field("count", h.count());
  w.Field("sum_seconds", h.sum_seconds());
  w.Field("mean_seconds", h.mean_seconds());
  w.Field("min_seconds", h.min_seconds());
  w.Field("p50_seconds", h.P50());
  w.Field("p90_seconds", h.P90());
  w.Field("p99_seconds", h.P99());
  w.Field("max_seconds", h.max_seconds());
}

}  // namespace

void WriteSnapshotJson(JsonWriter& w, const MetricsSnapshot& snap,
                       const char* key) {
  w.BeginObject(key);
  w.BeginObject("counters");
  for (const CounterSample& c : snap.counters) w.Field(c.name.c_str(), c.value);
  w.EndObject();
  w.BeginObject("gauges");
  for (const GaugeSample& g : snap.gauges) w.Field(g.name.c_str(), g.value);
  w.EndObject();
  w.BeginObject("histograms");
  for (const HistogramSample& h : snap.histograms) {
    w.BeginObject(h.name.c_str());
    WriteHistogramFields(w, h.hist);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
}

std::string SnapshotToJson(const MetricsSnapshot& snap) {
  JsonWriter w;
  WriteSnapshotJson(w, snap, "metrics");
  return w.Finish();
}

std::string ToPrometheusText(const MetricsSnapshot& snap) {
  std::string out;
  auto header = [&out](const std::string& name, const std::string& help,
                       const char* type) {
    if (!help.empty()) out += "# HELP " + name + " " + help + "\n";
    out += "# TYPE " + name + " " + type + "\n";
  };
  for (const CounterSample& c : snap.counters) {
    header(c.name, c.help, "counter");
    out += c.name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : snap.gauges) {
    header(g.name, g.help, "gauge");
    out += g.name + " " + FormatDouble(g.value) + "\n";
  }
  for (const HistogramSample& h : snap.histograms) {
    header(h.name, h.help, "histogram");
    std::uint64_t cumulative = 0;
    for (const LatencyHistogram::Bucket& b : h.hist.Buckets()) {
      cumulative += b.count;
      out += h.name + "_bucket{le=\"" + FormatDouble(b.upper_seconds) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += h.name + "_bucket{le=\"+Inf\"} " + std::to_string(h.hist.count()) +
           "\n";
    out += h.name + "_sum " + FormatDouble(h.hist.sum_seconds()) + "\n";
    out += h.name + "_count " + std::to_string(h.hist.count()) + "\n";
  }
  return out;
}

std::string TraceToJson(const CompletedTrace& trace) {
  std::string out = "{";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "\"request_id\": %llu",
                static_cast<unsigned long long>(trace.request_id));
  out += buf;
  if (!trace.tenant_id.empty()) {
    out += ", \"tenant\": \"" + JsonEscape(trace.tenant_id) + "\"";
  }
  out += ", \"ok\": ";
  out += trace.ok ? "true" : "false";
  out += ", \"status\": \"" + JsonEscape(trace.status) + "\"";
  out += ", \"total_seconds\": " + FormatDouble(trace.total_seconds);
  out += ", \"anchor_seconds\": " + FormatDouble(trace.anchor_uptime_seconds);
  out += ", \"wall_span_seconds\": " + FormatDouble(trace.WallSpanSeconds());
  out += ", \"coverage\": " + FormatDouble(trace.Coverage());
  out += ", \"spans\": [";
  bool first = true;
  for (const TraceSpan& s : trace.spans) {
    if (!first) out += ", ";
    first = false;
    out += "{\"span\": \"";
    out += SpanName(s.span);
    out += "\", \"start_seconds\": " + FormatDouble(s.start_seconds);
    out += ", \"duration_seconds\": " + FormatDouble(s.duration_seconds);
    if (s.simulated) out += ", \"simulated\": true";
    if (s.tid != 0) {
      char tid_buf[32];
      std::snprintf(tid_buf, sizeof(tid_buf), ", \"tid\": %u", s.tid);
      out += tid_buf;
    }
    out += "}";
  }
  out += "]}";
  return out;
}

void WriteTraceJson(JsonWriter& w, const CompletedTrace& trace) {
  w.BeginObject();
  w.Field("request_id", trace.request_id);
  if (!trace.tenant_id.empty()) w.Field("tenant", trace.tenant_id);
  w.Field("ok", trace.ok);
  w.Field("status", trace.status);
  w.Field("total_seconds", trace.total_seconds);
  w.Field("anchor_seconds", trace.anchor_uptime_seconds);
  w.Field("wall_span_seconds", trace.WallSpanSeconds());
  w.Field("coverage", trace.Coverage());
  w.BeginArray("spans");
  for (const TraceSpan& s : trace.spans) {
    w.BeginObject();
    w.Field("span", SpanName(s.span));
    w.Field("start_seconds", s.start_seconds);
    w.Field("duration_seconds", s.duration_seconds);
    if (s.simulated) w.Field("simulated", true);
    if (s.tid != 0) w.Field("tid", static_cast<std::uint64_t>(s.tid));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

void WriteBuildInfoJson(JsonWriter& w, const char* key) {
  const BuildInfo& b = GetBuildInfo();
  w.BeginObject(key);
  w.Field("git_sha", b.git_sha);
  w.Field("build_type", b.build_type);
  w.Field("compiler", b.compiler);
  w.EndObject();
}

PeriodicSampler::PeriodicSampler(MetricsRegistry* registry,
                                 double interval_seconds, SampleFn sample,
                                 std::size_t max_points_per_series)
    : registry_(registry),
      interval_seconds_(interval_seconds),
      sample_(std::move(sample)),
      max_points_(max_points_per_series) {}

PeriodicSampler::~PeriodicSampler() { Stop(); }

void PeriodicSampler::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return;
    started_ = true;
    stopping_ = false;
  }
  clock_ = Timer();
  thread_ = std::thread(&PeriodicSampler::Loop, this);
}

void PeriodicSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final sample so a run shorter than one interval still exports a series.
  TakeSample(clock_.ElapsedSeconds());
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

void PeriodicSampler::Loop() {
  TakeSample(clock_.ElapsedSeconds());
  const auto interval = std::chrono::duration<double>(interval_seconds_);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) break;
    lock.unlock();
    TakeSample(clock_.ElapsedSeconds());
    lock.lock();
  }
}

void PeriodicSampler::TakeSample(double at_seconds) {
  if (!sample_) return;
  const auto values = sample_();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, value] : values) {
    if (registry_ != nullptr) registry_->GetGauge(name)->Set(value);
    Series* series = nullptr;
    for (Series& s : series_) {
      if (s.name == name) {
        series = &s;
        break;
      }
    }
    if (series == nullptr) {
      series_.push_back({name, {}});
      series = &series_.back();
    }
    series->points.emplace_back(at_seconds, value);
    if (series->points.size() > max_points_) {
      series->points.erase(series->points.begin());
    }
  }
}

std::vector<PeriodicSampler::Series> PeriodicSampler::SeriesSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_;
}

void PeriodicSampler::WriteSeriesJson(JsonWriter& w, const char* key) const {
  const auto series = SeriesSnapshot();
  w.BeginArray(key);
  for (const Series& s : series) {
    w.BeginObject();
    w.Field("name", s.name);
    w.BeginArray("points");
    for (const auto& [t, v] : s.points) {
      w.BeginObject();
      w.Field("t", t);
      w.Field("v", v);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
}

std::string LocksToPrometheusText(const std::vector<util::LockStats>& locks) {
  if (locks.empty()) return "";
  std::string out;
  struct Family {
    const char* name;
    const char* type;
    const char* help;
  };
  static constexpr Family kFamilies[] = {
      {"fast_lock_acquisitions_total", "counter", "Lock acquisitions"},
      {"fast_lock_contended_total", "counter",
       "Acquisitions that had to block"},
      {"fast_lock_wait_seconds_total", "counter",
       "Total seconds spent blocked acquiring"},
      {"fast_lock_wait_seconds_max", "gauge", "Longest single blocked acquire"},
      {"fast_lock_hold_seconds_total", "counter",
       "Total seconds the lock was held"},
      {"fast_lock_hold_seconds_max", "gauge", "Longest single hold"},
  };
  for (const Family& f : kFamilies) {
    out += std::string("# HELP ") + f.name + " " + f.help + "\n";
    out += std::string("# TYPE ") + f.name + " " + f.type + "\n";
    for (const util::LockStats& l : locks) {
      if (l.name.empty()) continue;
      double value = 0.0;
      if (f.name == std::string_view("fast_lock_acquisitions_total")) {
        value = static_cast<double>(l.acquisitions);
      } else if (f.name == std::string_view("fast_lock_contended_total")) {
        value = static_cast<double>(l.contended);
      } else if (f.name == std::string_view("fast_lock_wait_seconds_total")) {
        value = static_cast<double>(l.total_wait_ns) / 1e9;
      } else if (f.name == std::string_view("fast_lock_wait_seconds_max")) {
        value = static_cast<double>(l.max_wait_ns) / 1e9;
      } else if (f.name == std::string_view("fast_lock_hold_seconds_total")) {
        value = static_cast<double>(l.total_hold_ns) / 1e9;
      } else {
        value = static_cast<double>(l.max_hold_ns) / 1e9;
      }
      out += std::string(f.name) + "{lock=\"" + JsonEscape(l.name) + "\"} " +
             FormatDouble(value) + "\n";
    }
  }
  return out;
}

std::string LocksToJson(const std::vector<util::LockStats>& locks) {
  JsonWriter w;
  w.BeginArray("locks");
  for (const util::LockStats& l : locks) {
    w.BeginObject();
    w.Field("name", l.name);
    w.Field("acquisitions", l.acquisitions);
    w.Field("contended", l.contended);
    w.Field("contention_rate",
            l.acquisitions > 0 ? static_cast<double>(l.contended) /
                                     static_cast<double>(l.acquisitions)
                               : 0.0);
    w.Field("total_wait_ns", l.total_wait_ns);
    w.Field("max_wait_ns", l.max_wait_ns);
    w.Field("total_hold_ns", l.total_hold_ns);
    w.Field("max_hold_ns", l.max_hold_ns);
    w.EndObject();
  }
  w.EndArray();
  return w.Finish();
}

std::string ProfileToJson(const ProfileSnapshot& snap) {
  JsonWriter w;
  w.Field("enabled", snap.hz > 0.0);
  w.Field("hz", snap.hz);
  w.Field("at_seconds", snap.at_seconds);
  w.Field("total_samples", snap.total_samples);
  w.BeginArray("buckets");
  for (const ProfileBucket& b : snap.buckets) {
    w.BeginObject();
    w.Field("kind", ThreadKindName(b.kind));
    w.Field("path", b.path);
    w.Field("samples", b.samples);
    w.Field("cpu_ns", b.cpu_ns);
    w.EndObject();
  }
  w.EndArray();
  w.BeginArray("threads");
  for (const ProfThreadInfo& t : snap.threads) {
    w.BeginObject();
    w.Field("tid", static_cast<std::uint64_t>(t.tid));
    w.Field("name", t.name);
    w.Field("kind", ThreadKindName(t.kind));
    w.Field("alive", t.alive);
    w.Field("cpu_ns", t.cpu_ns);
    w.EndObject();
  }
  w.EndArray();
  return w.Finish();
}

namespace {

// Synthetic track layout: real thread spans keep their profiler tid; each
// thread's sampled stage runs render one track up at tid + kStageTidOffset;
// device rounds share one synthetic card track.
constexpr std::uint64_t kStageTidOffset = 100000;
constexpr std::uint64_t kDeviceTrackTid = 999999;
constexpr std::uint64_t kEventTrackTid = 999998;

double ClampNonNegative(double v) { return v > 0.0 ? v : 0.0; }

void WriteMetadataEvent(JsonWriter& w, std::uint64_t tid, const char* type,
                        const std::string& value) {
  w.BeginObject();
  w.Field("name", type);
  w.Field("ph", "M");
  w.Field("pid", std::uint64_t{1});
  w.Field("tid", tid);
  w.BeginObject("args");
  w.Field("name", value);
  w.EndObject();
  w.EndObject();
}

void BeginCompleteEvent(JsonWriter& w, const char* name, const char* cat,
                        std::uint64_t tid, double start_seconds,
                        double duration_seconds) {
  w.BeginObject();
  w.Field("name", name);
  w.Field("cat", cat);
  w.Field("ph", "X");
  w.Field("pid", std::uint64_t{1});
  w.Field("tid", tid);
  w.Field("ts", ClampNonNegative(start_seconds) * 1e6);
  w.Field("dur", ClampNonNegative(duration_seconds) * 1e6);
}

}  // namespace

std::string ChromeTraceJson(const ChromeTraceInputs& inputs) {
  JsonWriter w;
  w.Field("displayTimeUnit", "ms");
  w.BeginArray("traceEvents");

  WriteMetadataEvent(w, 0, "process_name", inputs.process_name);
  for (const ProfThreadInfo& t : inputs.threads) {
    WriteMetadataEvent(w, t.tid, "thread_name",
                       t.name + " [" + ThreadKindName(t.kind) + "]");
  }

  // Request spans on their recording threads' tracks. Simulated spans carry
  // device-model seconds, not wall time — they are the rounds' job to show.
  for (const auto& trace : inputs.traces) {
    if (trace == nullptr) continue;
    for (const TraceSpan& s : trace->spans) {
      if (s.simulated) continue;
      BeginCompleteEvent(w, SpanName(s.span), "request", s.tid,
                         trace->anchor_uptime_seconds + s.start_seconds,
                         s.duration_seconds);
      w.BeginObject("args");
      w.Field("request_id", trace->request_id);
      if (!trace->tenant_id.empty()) w.Field("tenant", trace->tenant_id);
      w.EndObject();
      w.EndObject();
    }
  }

  // Sampled stage timeline: per thread, merge consecutive same-path samples
  // into one event; a path change closes the previous run at the new
  // sample's time, and the final run closes one sample period after its
  // last observation. Idle samples only close runs.
  {
    struct OpenRun {
      std::string path;
      double start = 0.0;
      double last = 0.0;
    };
    std::map<std::uint32_t, OpenRun> open;  // samples arrive time-ordered
    std::map<std::uint32_t, bool> has_track;
    auto close_run = [&](std::uint32_t tid, const OpenRun& run, double end) {
      BeginCompleteEvent(w, run.path.c_str(), "stage", tid + kStageTidOffset,
                         run.start, end - run.start);
      w.EndObject();
    };
    for (const StageSample& s : inputs.stage_samples) {
      auto it = open.find(s.tid);
      const bool idle = s.path == "(idle)";
      if (it != open.end() && (idle || it->second.path != s.path)) {
        close_run(s.tid, it->second, s.t_seconds);
        open.erase(it);
        it = open.end();
      }
      if (idle) continue;
      has_track[s.tid] = true;
      if (it == open.end()) {
        open[s.tid] = OpenRun{s.path, s.t_seconds, s.t_seconds};
      } else {
        it->second.last = s.t_seconds;
      }
    }
    for (const auto& [tid, run] : open) {
      close_run(tid, run, run.last + inputs.sample_period_seconds);
    }
    for (const auto& [tid, _] : has_track) {
      std::string name = "thread-" + std::to_string(tid);
      for (const ProfThreadInfo& t : inputs.threads) {
        if (t.tid == tid) {
          name = t.name;
          break;
        }
      }
      WriteMetadataEvent(w, tid + kStageTidOffset, "thread_name",
                         name + " (stages)");
    }
  }

  // Device rounds on the synthetic card track.
  if (!inputs.rounds.empty()) {
    WriteMetadataEvent(w, kDeviceTrackTid, "thread_name", "device (rounds)");
    for (const TimelineRound& r : inputs.rounds) {
      const std::string name = "round " + std::to_string(r.round);
      BeginCompleteEvent(w, name.c_str(), "device", kDeviceTrackTid,
                         r.start_seconds, r.duration_seconds);
      w.BeginObject("args");
      w.Field("items", r.items);
      w.Field("queries", r.queries);
      w.Field("wire_bytes", r.wire_bytes);
      w.Field("pcie_sim_ms", r.pcie_sim_seconds * 1e3);
      w.Field("kernel_sim_ms", r.kernel_sim_seconds * 1e3);
      w.EndObject();
      w.EndObject();
    }
  }

  // Instant events (SLO breaches, pushbacks, slow requests).
  if (!inputs.instants.empty()) {
    WriteMetadataEvent(w, kEventTrackTid, "thread_name", "events");
    for (const InstantEvent& e : inputs.instants) {
      w.BeginObject();
      w.Field("name", e.name);
      w.Field("cat", "event");
      w.Field("ph", "i");
      w.Field("s", "t");
      w.Field("pid", std::uint64_t{1});
      w.Field("tid", kEventTrackTid);
      w.Field("ts", ClampNonNegative(e.t_seconds) * 1e6);
      if (!e.detail.empty()) {
        w.BeginObject("args");
        w.Field("detail", e.detail);
        w.EndObject();
      }
      w.EndObject();
    }
  }

  w.EndArray();
  return w.Finish();
}

}  // namespace fast::obs
