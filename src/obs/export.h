#ifndef FAST_OBS_EXPORT_H_
#define FAST_OBS_EXPORT_H_

// Export surfaces for the metrics registry and request traces:
//   - WriteSnapshotJson / SnapshotToJson: registry snapshot as JSON (either
//     embedded into an open JsonWriter — how the benches attach a "metrics"
//     object to BENCH_*.json — or as a standalone document for
//     `fast_serve --metrics-json`).
//   - ToPrometheusText: the same snapshot in Prometheus exposition format
//     (counters/gauges verbatim, histograms as summary-style quantiles).
//   - TraceToJson: one CompletedTrace as a single-line JSON object, for
//     append-per-request JSONL trace logs.
//   - PeriodicSampler: a background thread that polls caller-supplied
//     gauges (queue depth, device occupancy, cache bytes) on an interval,
//     mirrors the latest value into registry gauges, and retains a bounded
//     time-series per name for export.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json_writer.h"
#include "util/timer.h"

namespace fast::obs {

// Emits `snap` as an object field named `key` of the writer's current scope
// ("counters"/"gauges" maps plus a "histograms" object of per-metric
// count/mean/p50/p90/p99/max).
void WriteSnapshotJson(JsonWriter& w, const MetricsSnapshot& snap,
                       const char* key = "metrics");

// Standalone JSON document of one snapshot.
std::string SnapshotToJson(const MetricsSnapshot& snap);

// Prometheus text exposition format. Histograms are exported as native
// cumulative histograms — only occupied buckets emit a series, closed by the
// mandatory +Inf bucket — so a real Prometheus/Grafana can histogram_quantile
// across scrapes and restarts (the JSON export keeps the quantile form):
//   fast_request_latency_seconds_bucket{le="0.001"} 5
//   fast_request_latency_seconds_bucket{le="+Inf"} 420
//   fast_request_latency_seconds_sum 1.5
//   fast_request_latency_seconds_count 420
std::string ToPrometheusText(const MetricsSnapshot& snap);

// One trace as a single-line JSON object (no trailing newline): request id,
// tenant, status, total, coverage, and a span array.
std::string TraceToJson(const CompletedTrace& trace);

// The same trace emitted through an open JsonWriter as one object element of
// the current (array) scope — how the flight recorder embeds trace rings in
// a breach dump.
void WriteTraceJson(JsonWriter& w, const CompletedTrace& trace);

// Build/version stamp (util/build_info.h) as an object field named `key`.
void WriteBuildInfoJson(JsonWriter& w, const char* key = "build");

// Polls `sample` every `interval_seconds` on a background thread. Each
// returned (name, value) pair is mirrored into `registry`'s gauge of that
// name and appended to a retained time-series (bounded at
// `max_points_per_series`, oldest dropped). Sampling begins on Start() and
// one final sample is taken on Stop() so short runs still export a series.
class PeriodicSampler {
 public:
  using SampleFn = std::function<std::vector<std::pair<std::string, double>>()>;

  PeriodicSampler(MetricsRegistry* registry, double interval_seconds,
                  SampleFn sample, std::size_t max_points_per_series = 4096);
  ~PeriodicSampler();

  PeriodicSampler(const PeriodicSampler&) = delete;
  PeriodicSampler& operator=(const PeriodicSampler&) = delete;

  void Start();
  void Stop();  // idempotent; joins the thread

  // Takes one sample immediately, attributed to `at_seconds` on the series
  // time axis. This is the deterministic entry point tests drive instead of
  // Start(): inject ticks at chosen instants, no background thread, no
  // sleeps. Safe to combine with Start() (the mirror + append is locked).
  void SampleNow(double at_seconds) { TakeSample(at_seconds); }

  struct Series {
    std::string name;
    std::vector<std::pair<double, double>> points;  // (seconds-since-start, value)
  };
  std::vector<Series> SeriesSnapshot() const;

  // Emits the retained series as an array field named `key`.
  void WriteSeriesJson(JsonWriter& w, const char* key = "samples") const;

 private:
  void Loop();
  void TakeSample(double at_seconds);

  MetricsRegistry* const registry_;
  const double interval_seconds_;
  const SampleFn sample_;
  const std::size_t max_points_;

  Timer clock_;
  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::vector<Series> series_;  // insertion-ordered
};

}  // namespace fast::obs

#endif  // FAST_OBS_EXPORT_H_
