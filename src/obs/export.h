#ifndef FAST_OBS_EXPORT_H_
#define FAST_OBS_EXPORT_H_

// Export surfaces for the metrics registry and request traces:
//   - WriteSnapshotJson / SnapshotToJson: registry snapshot as JSON (either
//     embedded into an open JsonWriter — how the benches attach a "metrics"
//     object to BENCH_*.json — or as a standalone document for
//     `fast_serve --metrics-json`).
//   - ToPrometheusText: the same snapshot in Prometheus exposition format
//     (counters/gauges verbatim, histograms as summary-style quantiles).
//   - TraceToJson: one CompletedTrace as a single-line JSON object, for
//     append-per-request JSONL trace logs.
//   - PeriodicSampler: a background thread that polls caller-supplied
//     gauges (queue depth, device occupancy, cache bytes) on an interval,
//     mirrors the latest value into registry gauges, and retains a bounded
//     time-series per name for export.
//   - LocksToPrometheusText / LocksToJson: the ProfiledMutex contention
//     registry as fast_lock_* label families / as the /locks document.
//   - ProfileToJson: a profiler snapshot as the /profile document.
//   - ChromeTraceJson: request spans, device rounds, sampled stage
//     transitions, and instant events merged onto one Chrome trace-event
//     timeline (load in Perfetto or chrome://tracing).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/json_writer.h"
#include "util/profiled_mutex.h"
#include "util/timer.h"

namespace fast::obs {

// Emits `snap` as an object field named `key` of the writer's current scope
// ("counters"/"gauges" maps plus a "histograms" object of per-metric
// count/mean/p50/p90/p99/max).
void WriteSnapshotJson(JsonWriter& w, const MetricsSnapshot& snap,
                       const char* key = "metrics");

// Standalone JSON document of one snapshot.
std::string SnapshotToJson(const MetricsSnapshot& snap);

// Prometheus text exposition format. Histograms are exported as native
// cumulative histograms — only occupied buckets emit a series, closed by the
// mandatory +Inf bucket — so a real Prometheus/Grafana can histogram_quantile
// across scrapes and restarts (the JSON export keeps the quantile form):
//   fast_request_latency_seconds_bucket{le="0.001"} 5
//   fast_request_latency_seconds_bucket{le="+Inf"} 420
//   fast_request_latency_seconds_sum 1.5
//   fast_request_latency_seconds_count 420
std::string ToPrometheusText(const MetricsSnapshot& snap);

// One trace as a single-line JSON object (no trailing newline): request id,
// tenant, status, total, coverage, and a span array.
std::string TraceToJson(const CompletedTrace& trace);

// The same trace emitted through an open JsonWriter as one object element of
// the current (array) scope — how the flight recorder embeds trace rings in
// a breach dump.
void WriteTraceJson(JsonWriter& w, const CompletedTrace& trace);

// Build/version stamp (util/build_info.h) as an object field named `key`.
void WriteBuildInfoJson(JsonWriter& w, const char* key = "build");

// ---- Contention accounting (util/profiled_mutex.h). ----

// The aggregated lock stats as Prometheus label families, appended to the
// /metrics exposition after the registry text:
//   fast_lock_acquisitions_total{lock="plan_cache"} 1234
//   fast_lock_contended_total{lock="plan_cache"} 56
//   fast_lock_wait_seconds_total{lock="plan_cache"} 0.004
//   fast_lock_hold_seconds_max{lock="plan_cache"} 0.0001
std::string LocksToPrometheusText(const std::vector<util::LockStats>& locks);

// The same rows as the standalone /locks JSON document.
std::string LocksToJson(const std::vector<util::LockStats>& locks);

// ---- Profiler exports (obs/profiler.h). ----

// A profile snapshot (cumulative or a /profile?seconds=N window delta) as a
// JSON document: sampler state, per-(kind, stage-path) buckets with wall
// sample counts and thread-CPU nanoseconds, and the thread table.
std::string ProfileToJson(const ProfileSnapshot& snap);

// ---- Chrome trace-event timeline. ----

// A device round on the timeline's synthetic "device" track (the executor
// retains a bounded ring of these; see DeviceExecutor::recent_rounds).
struct TimelineRound {
  std::uint64_t round = 0;          // 1-based round sequence number
  double start_seconds = 0.0;       // ProcessUptimeSeconds at round start
  double duration_seconds = 0.0;    // host wall time executing the round
  double pcie_sim_seconds = 0.0;    // simulated transfer time
  double kernel_sim_seconds = 0.0;  // simulated kernel time, summed over items
  std::uint64_t items = 0;
  std::uint64_t queries = 0;
  std::uint64_t wire_bytes = 0;
};

// Everything the timeline interleaves. All members are optional; an empty
// input still produces a valid (metadata-only) document.
struct ChromeTraceInputs {
  ChromeTraceInputs() = default;

  std::string process_name = "fast";
  // Request traces: every non-simulated span becomes a complete ("X") event
  // on the tid track that recorded it.
  std::vector<std::shared_ptr<const CompletedTrace>> traces;
  // Thread table for thread_name/thread_sort metadata (Snapshot().threads).
  std::vector<ProfThreadInfo> threads;
  // Sampled stage timeline; consecutive same-stage samples per thread merge
  // into one X event on a parallel "<thread> stages" track.
  std::vector<StageSample> stage_samples;
  double sample_period_seconds = 0.0;  // closes each thread's final stage run
  // Device rounds on the synthetic device track.
  std::vector<TimelineRound> rounds;
  // SLO breaches, pushbacks, slow-request flags as instant ("i") events.
  std::vector<InstantEvent> instants;
};
static_assert(!std::is_aggregate_v<ChromeTraceInputs>,
              "ChromeTraceInputs must not be positionally brace-initializable");

// The trace-event JSON document ({"traceEvents": [...]}, ts/dur in
// microseconds on the ProcessUptimeSeconds axis). Only "X", "i", and "M"
// phase events are emitted, so ts/dur are non-negative and no B/E balancing
// is required of consumers.
std::string ChromeTraceJson(const ChromeTraceInputs& inputs);

// Polls `sample` every `interval_seconds` on a background thread. Each
// returned (name, value) pair is mirrored into `registry`'s gauge of that
// name and appended to a retained time-series (bounded at
// `max_points_per_series`, oldest dropped). Sampling begins on Start() and
// one final sample is taken on Stop() so short runs still export a series.
class PeriodicSampler {
 public:
  using SampleFn = std::function<std::vector<std::pair<std::string, double>>()>;

  PeriodicSampler(MetricsRegistry* registry, double interval_seconds,
                  SampleFn sample, std::size_t max_points_per_series = 4096);
  ~PeriodicSampler();

  PeriodicSampler(const PeriodicSampler&) = delete;
  PeriodicSampler& operator=(const PeriodicSampler&) = delete;

  void Start();
  void Stop();  // idempotent; joins the thread

  // Takes one sample immediately, attributed to `at_seconds` on the series
  // time axis. This is the deterministic entry point tests drive instead of
  // Start(): inject ticks at chosen instants, no background thread, no
  // sleeps. Safe to combine with Start() (the mirror + append is locked).
  void SampleNow(double at_seconds) { TakeSample(at_seconds); }

  struct Series {
    std::string name;
    std::vector<std::pair<double, double>> points;  // (seconds-since-start, value)
  };
  std::vector<Series> SeriesSnapshot() const;

  // Emits the retained series as an array field named `key`.
  void WriteSeriesJson(JsonWriter& w, const char* key = "samples") const;

 private:
  void Loop();
  void TakeSample(double at_seconds);

  MetricsRegistry* const registry_;
  const double interval_seconds_;
  const SampleFn sample_;
  const std::size_t max_points_;

  Timer clock_;
  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::vector<Series> series_;  // insertion-ordered
};

}  // namespace fast::obs

#endif  // FAST_OBS_EXPORT_H_
