#include "obs/metrics.h"

#include "util/logging.h"

namespace fast::obs {

std::size_t Counter::ShardIndex() {
  // One shard per thread, assigned round-robin at first use. Collisions
  // after kNumShards threads are fine — they only cost some sharing.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return index;
}

void Histogram::Record(double seconds) {
  Shard& s = shards_[Counter::ShardIndex() % kNumShards];
  std::lock_guard<std::mutex> lock(s.mu);
  s.hist.Record(seconds);
}

LatencyHistogram Histogram::Snapshot() const {
  LatencyHistogram merged;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    merged.Merge(s.hist);
  }
  return merged;
}

MetricsRegistry::Entry* MetricsRegistry::GetEntry(const std::string& name,
                                                 const std::string& help,
                                                 Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(name);
  Entry& e = it->second;
  if (inserted) {
    e.kind = kind;
    e.help = help;
    switch (kind) {
      case Kind::kCounter:
        e.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        e.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        e.histogram = std::make_unique<Histogram>();
        break;
    }
  } else {
    FAST_CHECK(e.kind == kind)
        << "metric \"" << name << "\" re-registered as a different kind";
    if (e.help.empty() && !help.empty()) e.help = help;
  }
  return &e;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const std::string& help) {
  return GetEntry(name, help, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const std::string& help) {
  return GetEntry(name, help, Kind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  return GetEntry(name, help, Kind::kHistogram)->histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  // std::map iteration is already name-sorted.
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        snap.counters.push_back({name, e.help, e.counter->Value()});
        break;
      case Kind::kGauge:
        snap.gauges.push_back({name, e.help, e.gauge->Value()});
        break;
      case Kind::kHistogram:
        snap.histograms.push_back({name, e.help, e.histogram->Snapshot()});
        break;
    }
  }
  return snap;
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return instance;
}

}  // namespace fast::obs
