#ifndef FAST_OBS_METRICS_H_
#define FAST_OBS_METRICS_H_

// Process-wide metrics registry: named counters, gauges, and latency
// histograms shared by every serving layer (MatchService, TenantRouter,
// PlanCache, GraphState, DeviceExecutor).
//
//   obs::MetricsRegistry registry;
//   obs::Counter* reqs = registry.GetCounter("fast_requests_total", "...");
//   reqs->Increment();                       // hot path: one relaxed add
//   obs::MetricsSnapshot snap = registry.Snapshot();   // consistent-enough
//
// Design constraints, in order:
//   1. Hot-path updates must be cheap enough to leave enabled in production
//      benches (<3% qps overhead is an acceptance gate). Counters are
//      sharded across cache lines and bumped with relaxed atomics — no
//      locks, no false sharing between worker threads. Histograms shard a
//      mutex + LatencyHistogram pair; each Record takes one uncontended
//      lock in the common case.
//   2. Metric objects are registered once by name and live as long as the
//      registry: GetCounter returns a stable raw pointer that components
//      cache at bind time and bump forever after. The registry never erases
//      entries (a std::map keeps pointers stable regardless).
//   3. Snapshot() runs concurrently with updates. Counter reads sum the
//      shards with relaxed loads: totals are monotone and each individual
//      add is atomic, which is all a scrape needs.
//
// Components keep their existing per-instance stats structs (tests and
// benches compare those per-phase); the registry holds the process-wide
// view that export surfaces scrape. Both are bumped — the per-instance
// counters under locks the component already holds, the registry metrics
// with the relaxed atomics above.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/latency_histogram.h"

namespace fast::obs {

// Monotone event count. Sharded so concurrent workers don't bounce one
// cache line; Value() sums the shards.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(std::uint64_t delta = 1) {
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class Histogram;  // shares the per-thread shard index

  static constexpr std::size_t kNumShards = 16;

  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };

  static std::size_t ShardIndex();

  Shard shards_[kNumShards];
};

// Point-in-time value (queue depth, cache bytes, occupancy). Set() replaces,
// Add() adjusts by a signed delta — so several component instances can share
// one gauge and their contributions sum.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Latency distribution. Each Record locks one of kNumShards
// mutex+LatencyHistogram pairs (picked by the same per-thread index the
// Counter shards use, so two threads rarely contend); Snapshot() merges the
// shards into one LatencyHistogram.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double seconds);
  LatencyHistogram Snapshot() const;

 private:
  static constexpr std::size_t kNumShards = 8;

  struct alignas(64) Shard {
    mutable std::mutex mu;
    LatencyHistogram hist;
  };

  Shard shards_[kNumShards];
};

struct CounterSample {
  std::string name;
  std::string help;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::string help;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::string help;
  LatencyHistogram hist;
};

// One consistent-enough scrape of the whole registry, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returns the metric registered under `name`, creating it on first call.
  // The pointer stays valid for the registry's lifetime. Re-registering a
  // name as a different kind is a programmer error (FAST_CHECK).
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name, const std::string& help = "");

  MetricsSnapshot Snapshot() const;

  // Process-wide default instance (leaked, never destroyed: metrics may be
  // bumped from detached threads during shutdown).
  static MetricsRegistry* Default();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* GetEntry(const std::string& name, const std::string& help, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace fast::obs

#endif  // FAST_OBS_METRICS_H_
