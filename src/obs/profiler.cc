#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <utility>

#if defined(__linux__) || defined(__FreeBSD__)
#include <pthread.h>
#include <time.h>
#define FAST_PROF_HAS_THREAD_CPUCLOCK 1
#else
#define FAST_PROF_HAS_THREAD_CPUCLOCK 0
#endif

#include "util/timer.h"

namespace fast::obs {

double ProcessUptimeSeconds() {
  // Leaked: threads may stamp times during static destruction.
  static const Timer* epoch = new Timer();
  return epoch->ElapsedSeconds();
}

const char* ThreadKindName(ThreadKind kind) {
  switch (kind) {
    case ThreadKind::kWorker:
      return "worker";
    case ThreadKind::kDevice:
      return "device";
    case ThreadKind::kNet:
      return "net";
    case ThreadKind::kAdmin:
      return "admin";
    case ThreadKind::kOther:
      return "other";
  }
  return "other";
}

// One thread's published state. The stage stack is written lock-free by the
// owning thread and read by the sampler: entries are stored before the depth
// that makes them visible (release), and the sampler reads the depth first
// (acquire). A pop just lowers the depth — the stale entry above it is never
// read. Everything else is written under the profiler mutex.
struct Profiler::ThreadSlot {
  std::atomic<const char*> stack[kMaxStageDepth] = {};
  std::atomic<std::uint32_t> depth{0};
  std::atomic<bool> alive{false};

  // Under Profiler::mu_.
  std::uint32_t tid = 0;
  std::string name;
  ThreadKind kind = ThreadKind::kOther;
#if FAST_PROF_HAS_THREAD_CPUCLOCK
  pthread_t handle{};
#endif
  std::uint64_t last_cpu_ns = 0;  // sampler-private cumulative CPU
};

namespace {

std::uint64_t SlotThreadCpuNanos(const Profiler::ThreadSlot& slot) {
#if FAST_PROF_HAS_THREAD_CPUCLOCK
  clockid_t clock_id;
  if (pthread_getcpuclockid(slot.handle, &clock_id) != 0) return 0;
  timespec ts;
  if (clock_gettime(clock_id, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  (void)slot;
  return 0;
#endif
}

// "stage;substage" from the slot's lock-free stack; "(idle)" outside any
// scope. The read is racy by design (a scope may push/pop mid-read); every
// observable state is a valid path, just possibly one tick stale.
std::string ReadStagePath(const Profiler::ThreadSlot& slot) {
  std::uint32_t depth = slot.depth.load(std::memory_order_acquire);
  if (depth > Profiler::kMaxStageDepth) {
    depth = static_cast<std::uint32_t>(Profiler::kMaxStageDepth);
  }
  if (depth == 0) return "(idle)";
  std::string path;
  for (std::uint32_t i = 0; i < depth; ++i) {
    const char* stage = slot.stack[i].load(std::memory_order_relaxed);
    if (stage == nullptr) break;  // racing with a concurrent push
    if (!path.empty()) path.push_back(';');
    path.append(stage);
  }
  return path.empty() ? "(idle)" : path;
}

bool BucketKeyLess(const ProfileBucket& b, ThreadKind kind,
                   const std::string& path) {
  if (b.kind != kind) return b.kind < kind;
  return b.path < path;
}

}  // namespace

// Thread-local handle: releases the slot at thread exit so its tid can be
// reused and the sampler stops touching a dying thread's CPU clock.
struct Profiler::TlsSlot {
  ThreadSlot* slot = nullptr;
  bool exhausted = false;  // registry was full; stop retrying
  ~TlsSlot() {
    if (slot != nullptr) Profiler::Default()->ReleaseSlot(slot);
  }
};

namespace {
thread_local Profiler::TlsSlot tls_slot;
}  // namespace

Profiler* Profiler::Default() {
  static Profiler* p = new Profiler();
  return p;
}

Profiler::Profiler() = default;

Profiler::~Profiler() { Stop(); }

Profiler::ThreadSlot* Profiler::CurrentSlot() {
  if (tls_slot.slot != nullptr || tls_slot.exhausted) return tls_slot.slot;
  ThreadSlot* slot = Default()->AcquireSlot("", ThreadKind::kOther);
  if (slot == nullptr) {
    tls_slot.exhausted = true;
    return nullptr;
  }
  tls_slot.slot = slot;
  return slot;
}

Profiler::ThreadSlot* Profiler::AcquireSlot(std::string name, ThreadKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  ThreadSlot* slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if (slots_.size() >= kMaxThreads) return nullptr;
    slots_.push_back(std::make_unique<ThreadSlot>());
    slot = slots_.back().get();
    slot->tid = static_cast<std::uint32_t>(slots_.size());  // 0 = unknown
  }
  slot->name = name.empty() ? "thread-" + std::to_string(slot->tid)
                            : std::move(name);
  slot->kind = kind;
#if FAST_PROF_HAS_THREAD_CPUCLOCK
  slot->handle = pthread_self();
#endif
  slot->last_cpu_ns = SlotThreadCpuNanos(*slot);
  slot->depth.store(0, std::memory_order_relaxed);
  slot->alive.store(true, std::memory_order_release);
  return slot;
}

void Profiler::ReleaseSlot(ThreadSlot* slot) {
  std::lock_guard<std::mutex> lock(mu_);
  slot->alive.store(false, std::memory_order_release);
  slot->depth.store(0, std::memory_order_relaxed);
  free_slots_.push_back(slot);
}

void Profiler::RegisterCurrentThread(std::string name, ThreadKind kind) {
  Profiler* p = Default();
  if (tls_slot.slot != nullptr) {
    std::lock_guard<std::mutex> lock(p->mu_);
    tls_slot.slot->name = std::move(name);
    tls_slot.slot->kind = kind;
    return;
  }
  if (tls_slot.exhausted) return;
  ThreadSlot* slot = p->AcquireSlot(std::move(name), kind);
  if (slot == nullptr) {
    tls_slot.exhausted = true;
    return;
  }
  tls_slot.slot = slot;
}

std::uint32_t Profiler::CurrentThreadId() {
  ThreadSlot* slot = CurrentSlot();
  return slot != nullptr ? slot->tid : 0;
}

void Profiler::BindMetrics(MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics == nullptr) {
    // Detach: the registry is going away before the profiler does.
    samples_counter_ = nullptr;
    threads_gauge_ = nullptr;
    return;
  }
  samples_counter_ = metrics->GetCounter(
      "fast_prof_samples_total", "Profiler thread-samples taken");
  threads_gauge_ =
      metrics->GetGauge("fast_prof_threads", "Registered profiler threads");
}

void Profiler::Start(double hz) {
  std::unique_lock<std::mutex> lock(mu_);
  if (running_) return;
  hz_ = std::clamp(hz, 1.0, 1000.0);
  running_ = true;
  stopping_ = false;
  sampler_ = std::thread([this] { SamplerLoop(); });
}

void Profiler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stopping_ = true;
  }
  sampler_cv_.notify_all();
  sampler_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
  stopping_ = false;
  hz_ = 0.0;
}

bool Profiler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_ && !stopping_;
}

double Profiler::hz() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_ ? hz_ : 0.0;
}

void Profiler::SamplerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto period = std::chrono::duration<double>(1.0 / hz_);
  while (!stopping_) {
    if (sampler_cv_.wait_for(lock, period, [this] { return stopping_; })) break;
    lock.unlock();
    SampleOnce();
    lock.lock();
  }
}

void Profiler::SampleOnce() {
  const double now = ProcessUptimeSeconds();
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t sampled = 0;
  std::uint64_t alive = 0;
  for (const auto& slot_ptr : slots_) {
    ThreadSlot& slot = *slot_ptr;
    if (!slot.alive.load(std::memory_order_acquire)) continue;
    ++alive;
    const std::string path = ReadStagePath(slot);
    const std::uint64_t cpu = SlotThreadCpuNanos(slot);
    const std::uint64_t cpu_delta =
        cpu >= slot.last_cpu_ns ? cpu - slot.last_cpu_ns : 0;
    slot.last_cpu_ns = cpu;

    auto it = std::lower_bound(
        buckets_.begin(), buckets_.end(), slot.kind,
        [&](const ProfileBucket& b, ThreadKind kind) {
          return BucketKeyLess(b, kind, path);
        });
    if (it == buckets_.end() || it->kind != slot.kind || it->path != path) {
      ProfileBucket b;
      b.path = path;
      b.kind = slot.kind;
      it = buckets_.insert(it, std::move(b));
    }
    it->samples += 1;
    it->cpu_ns += cpu_delta;

    StageSample sample;
    sample.t_seconds = now;
    sample.tid = slot.tid;
    sample.kind = slot.kind;
    sample.path = path;
    timeline_.push_back(std::move(sample));
    if (timeline_.size() > kTimelineCapacity) timeline_.pop_front();
    ++sampled;
  }
  total_samples_ += sampled;
  if (samples_counter_ != nullptr && sampled > 0) {
    samples_counter_->Increment(sampled);
  }
  if (threads_gauge_ != nullptr) {
    threads_gauge_->Set(static_cast<double>(alive));
  }
}

ProfileSnapshot Profiler::Snapshot() const {
  ProfileSnapshot snap;
  snap.at_seconds = ProcessUptimeSeconds();
  std::lock_guard<std::mutex> lock(mu_);
  snap.hz = running_ && !stopping_ ? hz_ : 0.0;
  snap.total_samples = total_samples_;
  snap.buckets = buckets_;
  snap.threads.reserve(slots_.size());
  for (const auto& slot_ptr : slots_) {
    const ThreadSlot& slot = *slot_ptr;
    ProfThreadInfo info;
    info.tid = slot.tid;
    info.name = slot.name;
    info.kind = slot.kind;
    info.alive = slot.alive.load(std::memory_order_relaxed);
    info.cpu_ns = slot.last_cpu_ns;
    snap.threads.push_back(std::move(info));
  }
  return snap;
}

std::vector<StageSample> Profiler::TimelineSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {timeline_.begin(), timeline_.end()};
}

ProfileSnapshot DeltaProfile(const ProfileSnapshot& begin,
                             const ProfileSnapshot& end) {
  ProfileSnapshot delta;
  delta.at_seconds = end.at_seconds;
  delta.hz = end.hz;
  delta.total_samples = end.total_samples - begin.total_samples;
  delta.threads = end.threads;
  for (const ProfileBucket& b : end.buckets) {
    auto it = std::find_if(begin.buckets.begin(), begin.buckets.end(),
                           [&](const ProfileBucket& x) {
                             return x.kind == b.kind && x.path == b.path;
                           });
    ProfileBucket d = b;
    if (it != begin.buckets.end()) {
      d.samples -= std::min(it->samples, d.samples);
      d.cpu_ns -= std::min(it->cpu_ns, d.cpu_ns);
    }
    if (d.samples > 0 || d.cpu_ns > 0) delta.buckets.push_back(std::move(d));
  }
  return delta;
}

std::string CollapsedStacks(const ProfileSnapshot& snap) {
  std::string out;
  for (const ProfileBucket& b : snap.buckets) {
    if (b.samples == 0) continue;
    out.append(ThreadKindName(b.kind));
    out.push_back(';');
    out.append(b.path);
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(b.samples));
    out.append(buf);
  }
  return out;
}

StageScope::StageScope(const char* stage) : slot_(Profiler::CurrentSlot()) {
  if (slot_ == nullptr) return;
  const std::uint32_t depth = slot_->depth.load(std::memory_order_relaxed);
  if (depth < Profiler::kMaxStageDepth) {
    slot_->stack[depth].store(stage, std::memory_order_relaxed);
  }
  // Published even past kMaxStageDepth so the destructor stays symmetric;
  // the sampler clamps what it reads.
  slot_->depth.store(depth + 1, std::memory_order_release);
  pushed_ = true;
}

StageScope::~StageScope() {
  if (!pushed_) return;
  const std::uint32_t depth = slot_->depth.load(std::memory_order_relaxed);
  if (depth > 0) slot_->depth.store(depth - 1, std::memory_order_release);
}

}  // namespace fast::obs
