#ifndef FAST_OBS_PROFILER_H_
#define FAST_OBS_PROFILER_H_

// Stage-annotated sampling profiler: where were the threads?
//
// Span traces (obs/trace.h) explain one request's latency; the profiler
// explains the process. Every interesting thread registers itself with a
// name and a kind (worker/device/net/admin), and the serving code brackets
// its phases with RAII stage scopes:
//
//   FAST_PROF_STAGE("serve");
//   ...
//   { FAST_PROF_STAGE("cst_build"); BuildCst(...); }   // path "serve;cst_build"
//
// A scope publishes the stage name into the calling thread's slot — a
// fixed-depth stack of string-literal pointers held in relaxed/release
// atomics, so pushing and popping costs two atomic stores and never takes a
// lock. A sampler thread wakes at a configurable Hz and snapshots every
// live slot: the current stage path (joined "stage;substage"), plus the
// thread's CPU-clock delta since the previous sample
// (pthread_getcpuclockid — the cross-thread form of util/timer.h
// ThreadCpuNanos). Samples aggregate into a per-(thread kind, stage path)
// profile whose collapsed-stack text form ("worker;serve;cst_build 42")
// feeds flamegraph.pl directly, and into a bounded timeline ring the
// Chrome-trace exporter (obs/export.h) turns into per-thread stage tracks.
//
// Stage names MUST have static storage duration (string literals): the
// sampler dereferences the published pointer at an arbitrary later time.
//
// Cost when the sampler is off: stage scopes still publish (two relaxed
// atomic stores each), so profiles can be started mid-incident without a
// restart. Threads that never register and never enter a stage scope cost
// nothing and are invisible.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace fast::obs {

// Monotonic seconds since the process first asked for the time. This is the
// shared axis request traces, device rounds, profiler samples, and instant
// events are all stamped on, so one Chrome-trace timeline can interleave
// them.
double ProcessUptimeSeconds();

enum class ThreadKind : std::uint8_t {
  kWorker = 0,  // service/router worker pool
  kDevice,      // the simulated card's round loop
  kNet,         // wire-protocol connection threads
  kAdmin,       // admin HTTP connection threads
  kOther,       // unregistered threads auto-named on first use
};

const char* ThreadKindName(ThreadKind kind);

// A registered thread, as reported in profile snapshots.
struct ProfThreadInfo {
  std::uint32_t tid = 0;  // profiler-assigned, stable for the slot's lifetime
  std::string name;
  ThreadKind kind = ThreadKind::kOther;
  bool alive = false;
  std::uint64_t cpu_ns = 0;  // last sampled thread-CPU total
};

// One sampler observation of one thread.
struct StageSample {
  double t_seconds = 0.0;  // ProcessUptimeSeconds at the sample
  std::uint32_t tid = 0;
  ThreadKind kind = ThreadKind::kOther;
  std::string path;  // "serve;cst_build", or "(idle)" outside any scope
};

// Aggregated samples for one (thread kind, stage path) pair.
struct ProfileBucket {
  std::string path;
  ThreadKind kind = ThreadKind::kOther;
  std::uint64_t samples = 0;  // wall: sampler observations in this stage
  std::uint64_t cpu_ns = 0;   // thread-CPU attributed to this stage
};

struct ProfileSnapshot {
  double at_seconds = 0.0;  // ProcessUptimeSeconds when taken
  double hz = 0.0;          // sampler rate (0 = sampler not running)
  std::uint64_t total_samples = 0;
  std::vector<ProfileBucket> buckets;  // sorted by (kind, path)
  std::vector<ProfThreadInfo> threads;
};

// end - begin, bucket by bucket: the profile of the window between two
// snapshots (the /profile?seconds=N endpoint). Buckets that never grew are
// dropped; threads are taken from `end`.
ProfileSnapshot DeltaProfile(const ProfileSnapshot& begin,
                             const ProfileSnapshot& end);

// flamegraph.pl input: one "kind;stage;substage count" line per bucket with
// a non-zero sample count, sorted.
std::string CollapsedStacks(const ProfileSnapshot& snap);

class Profiler {
 public:
  // The process-wide instance every stage scope and thread registration
  // publishes into. Never destroyed.
  static Profiler* Default();

  Profiler();
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Names the calling thread and sets its kind. Idempotent: re-registering
  // renames the existing slot. The slot is released at thread exit and its
  // tid may then be reused by a later thread.
  static void RegisterCurrentThread(std::string name, ThreadKind kind);

  // The calling thread's profiler tid, auto-registering it as kOther
  // ("thread-<tid>") on first use. Span records stamp this into traces so
  // the timeline exporter can place spans on real thread tracks.
  static std::uint32_t CurrentThreadId();

  // Starts the sampler at `hz` (clamped to [1, 1000]). No-op if running.
  void Start(double hz);
  // Stops and joins the sampler; aggregated buckets are retained.
  void Stop();
  bool running() const;
  double hz() const;

  // One synchronous sample pass over every live thread slot (the sampler
  // thread does exactly this once per tick). Exposed so tests and the
  // sampler-off paths can drive deterministic samples.
  void SampleOnce();

  // Cumulative profile since process start (or construction).
  ProfileSnapshot Snapshot() const;

  // Newest-last ring of recent per-thread samples, for the timeline
  // exporter. Bounded (kTimelineCapacity); old samples fall off.
  std::vector<StageSample> TimelineSnapshot() const;

  // Registry reporting: fast_prof_samples_total / fast_prof_threads.
  // Optional; call before Start(). The registry must outlive the sampler —
  // Stop() before tearing it down, or BindMetrics(nullptr) to detach.
  void BindMetrics(MetricsRegistry* metrics);

  static constexpr std::size_t kMaxStageDepth = 8;
  static constexpr std::size_t kMaxThreads = 4096;
  static constexpr std::size_t kTimelineCapacity = 16384;

  // Implementation types, public only so the .cc's file-local helpers and
  // the thread_local slot handle can name them.
  struct ThreadSlot;
  struct TlsSlot;

 private:
  friend class StageScope;

  static ThreadSlot* CurrentSlot();  // null only past kMaxThreads
  ThreadSlot* AcquireSlot(std::string name, ThreadKind kind);
  void ReleaseSlot(ThreadSlot* slot);
  void SamplerLoop();

  mutable std::mutex mu_;  // slots, aggregation, timeline, sampler state
  std::vector<std::unique_ptr<ThreadSlot>> slots_;
  std::vector<ThreadSlot*> free_slots_;
  std::vector<ProfileBucket> buckets_;  // sorted by (kind, path)
  std::deque<StageSample> timeline_;
  std::uint64_t total_samples_ = 0;
  double hz_ = 0.0;
  bool running_ = false;
  bool stopping_ = false;
  std::condition_variable sampler_cv_;
  std::thread sampler_;

  Counter* samples_counter_ = nullptr;
  Gauge* threads_gauge_ = nullptr;
};

// RAII stage annotation. `stage` must be a string literal (or otherwise
// have static storage duration). Nesting builds "outer;inner" paths up to
// Profiler::kMaxStageDepth; deeper scopes are counted into the deepest
// visible stage.
class StageScope {
 public:
  explicit StageScope(const char* stage);
  ~StageScope();

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  Profiler::ThreadSlot* slot_;
  bool pushed_ = false;
};

#define FAST_PROF_STAGE_CONCAT2(a, b) a##b
#define FAST_PROF_STAGE_CONCAT(a, b) FAST_PROF_STAGE_CONCAT2(a, b)
#define FAST_PROF_STAGE(stage) \
  ::fast::obs::StageScope FAST_PROF_STAGE_CONCAT(fast_prof_stage_, __COUNTER__)(stage)

}  // namespace fast::obs

#endif  // FAST_OBS_PROFILER_H_
