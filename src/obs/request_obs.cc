#include "obs/request_obs.h"

#include <string>
#include <utility>

#include "util/logging.h"

namespace fast::obs {

RequestObs::RequestObs(const Options& opts)
    : opts_(opts),
      recent_(opts.trace_ring_capacity),
      slow_(opts.trace_ring_capacity),
      accounts_(opts.metrics) {
  if (opts_.slo.latency_objective_seconds > 0.0) {
    slo_ = std::make_unique<SloEngine>(opts_.slo, opts_.metrics);
    if (!opts_.flight.dir.empty()) {
      flight_ = std::make_unique<FlightRecorder>(opts_.flight);
      // The breach hook runs on the finishing worker thread, outside the
      // engine lock; everything it snapshots takes its own (independent)
      // locks.
      slo_->set_on_breach(
          [this](const std::string& tenant, const SloTenantState& state) {
            flight_->RecordBreach(
                tenant, state, uptime_.ElapsedSeconds(),
                opts_.metrics != nullptr ? opts_.metrics->Snapshot()
                                         : MetricsSnapshot{},
                accounts_.Snapshot(), recent_traces(), slow_traces());
          });
    }
  }
  MetricsRegistry* m = opts_.metrics;
  if (m == nullptr) return;
  submitted_ = m->GetCounter("fast_requests_total", "Requests admitted");
  completed_ =
      m->GetCounter("fast_requests_completed_total", "Requests finished OK");
  failed_ = m->GetCounter("fast_requests_failed_total",
                          "Requests failed by pipeline errors");
  rejected_queue_full_ = m->GetCounter("fast_requests_rejected_queue_full_total",
                                       "Submits rejected: queue full");
  rejected_quota_ = m->GetCounter("fast_requests_rejected_quota_total",
                                  "Submits rejected: per-tenant quota");
  rejected_deadline_ =
      m->GetCounter("fast_requests_rejected_deadline_total",
                    "Requests whose deadline passed while queued");
  cancelled_midrun_ = m->GetCounter("fast_requests_cancelled_midrun_total",
                                    "Requests cancelled mid-run by deadline");
  slow_requests_ = m->GetCounter("fast_slow_requests_total",
                                 "Requests over the slow-query threshold");
  queue_depth_ =
      m->GetGauge("fast_service_queue_depth", "Requests queued for a worker");
  latency_ = m->GetHistogram("fast_request_latency_seconds",
                             "Submit -> completion, successful requests");
  if (opts_.tracing) {
    for (std::size_t i = 0; i < kNumSpans; ++i) {
      const auto span = static_cast<Span>(i);
      span_hists_[i] =
          m->GetHistogram(std::string("fast_span_") + SpanName(span) + "_seconds",
                          std::string("Per-request ") + SpanName(span) +
                              " span duration");
    }
  }
}

std::shared_ptr<RequestTrace> RequestObs::StartTrace() const {
  return opts_.tracing ? std::make_shared<RequestTrace>() : nullptr;
}

void RequestObs::OnSubmitted() {
  if (submitted_ != nullptr) submitted_->Increment();
}

void RequestObs::OnRejectedQueueFull() {
  if (rejected_queue_full_ != nullptr) rejected_queue_full_->Increment();
}

void RequestObs::OnRejectedQuota() {
  if (rejected_quota_ != nullptr) rejected_quota_->Increment();
}

void RequestObs::SetQueueDepth(std::size_t depth) {
  if (queue_depth_ != nullptr) queue_depth_->Set(static_cast<double>(depth));
}

std::shared_ptr<const CompletedTrace> RequestObs::OnFinished(
    Outcome outcome, double total_seconds, std::shared_ptr<RequestTrace> trace,
    std::uint64_t request_id, bool ok, const char* status_name,
    std::string tenant_id, const RequestCost& cost) {
  // Attribution first: the account table and the SLO stream see every
  // finished request, whatever its outcome (tenant_id is moved below).
  accounts_.Charge(tenant_id, cost, ok);
  if (slo_ != nullptr) {
    slo_->Record(tenant_id, total_seconds, ok, uptime_.ElapsedSeconds());
  }
  switch (outcome) {
    case Outcome::kCompleted:
      if (completed_ != nullptr) completed_->Increment();
      if (latency_ != nullptr) latency_->Record(total_seconds);
      break;
    case Outcome::kRejectedDeadline:
      if (rejected_deadline_ != nullptr) rejected_deadline_->Increment();
      break;
    case Outcome::kCancelledMidrun:
      if (cancelled_midrun_ != nullptr) cancelled_midrun_->Increment();
      break;
    case Outcome::kFailed:
      if (failed_ != nullptr) failed_->Increment();
      break;
  }

  if (trace == nullptr) return nullptr;

  auto done = std::make_shared<CompletedTrace>(
      trace->Finish(request_id, ok, status_name, std::move(tenant_id)));
  for (const TraceSpan& s : done->spans) {
    Histogram* h = span_hists_[static_cast<std::size_t>(s.span)];
    if (h != nullptr) h->Record(s.duration_seconds);
  }
  recent_.Push(done);
  if (opts_.slow_request_seconds > 0.0 &&
      done->total_seconds >= opts_.slow_request_seconds) {
    if (slow_requests_ != nullptr) slow_requests_->Increment();
    slow_.Push(done);
    FAST_LOG(WARNING) << "slow request: " << done->Summary();
  }
  return done;
}

std::vector<std::shared_ptr<const CompletedTrace>> RequestObs::recent_traces()
    const {
  return recent_.Snapshot();
}

std::vector<std::shared_ptr<const CompletedTrace>> RequestObs::slow_traces()
    const {
  return slow_.Snapshot();
}

}  // namespace fast::obs
