#include "obs/request_obs.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>

#include "obs/profiler.h"
#include "util/logging.h"

namespace fast::obs {

RequestObs::RequestObs(const Options& opts)
    : opts_(opts),
      recent_(opts.trace_ring_capacity),
      slow_(opts.trace_ring_capacity),
      accounts_(opts.metrics) {
  if (opts_.slo.latency_objective_seconds > 0.0) {
    slo_ = std::make_unique<SloEngine>(opts_.slo, opts_.metrics);
    if (!opts_.flight.dir.empty()) {
      flight_ = std::make_unique<FlightRecorder>(opts_.flight);
    }
    // The breach hook runs on the finishing worker thread, outside the
    // engine lock; everything it snapshots takes its own (independent)
    // locks. Every breach lands on the timeline event ring; the flight
    // recorder additionally dumps when configured.
    slo_->set_on_breach(
        [this](const std::string& tenant, const SloTenantState& state) {
          events_.Record(ProcessUptimeSeconds(), "slo_breach", tenant);
          if (flight_ != nullptr) {
            flight_->RecordBreach(
                tenant, state, uptime_.ElapsedSeconds(),
                opts_.metrics != nullptr ? opts_.metrics->Snapshot()
                                         : MetricsSnapshot{},
                accounts_.Snapshot(), recent_traces(), slow_traces());
          }
        });
  }
  MetricsRegistry* m = opts_.metrics;
  if (m == nullptr) return;
  submitted_ = m->GetCounter("fast_requests_total", "Requests admitted");
  completed_ =
      m->GetCounter("fast_requests_completed_total", "Requests finished OK");
  failed_ = m->GetCounter("fast_requests_failed_total",
                          "Requests failed by pipeline errors");
  rejected_queue_full_ = m->GetCounter("fast_requests_rejected_queue_full_total",
                                       "Submits rejected: queue full");
  rejected_quota_ = m->GetCounter("fast_requests_rejected_quota_total",
                                  "Submits rejected: per-tenant quota");
  rejected_deadline_ =
      m->GetCounter("fast_requests_rejected_deadline_total",
                    "Requests whose deadline passed while queued");
  cancelled_midrun_ = m->GetCounter("fast_requests_cancelled_midrun_total",
                                    "Requests cancelled mid-run by deadline");
  slow_requests_ = m->GetCounter("fast_slow_requests_total",
                                 "Requests over the slow-query threshold");
  queue_pushes_blocked_ = m->GetCounter(
      "fast_queue_pushes_blocked_total",
      "Blocking queue pushes that had to wait for space");
  queue_pops_blocked_ = m->GetCounter(
      "fast_queue_pops_blocked_total",
      "Queue pops that had to wait for an item (workers idle)");
  queue_push_block_ns_ =
      m->GetCounter("fast_queue_push_block_ns_total",
                    "Nanoseconds producers spent blocked on a full queue");
  queue_pop_block_ns_ =
      m->GetCounter("fast_queue_pop_block_ns_total",
                    "Nanoseconds consumers spent blocked on an empty queue");
  queue_depth_ =
      m->GetGauge("fast_service_queue_depth", "Requests queued for a worker");
  latency_ = m->GetHistogram("fast_request_latency_seconds",
                             "Submit -> completion, successful requests");
  if (opts_.tracing) {
    for (std::size_t i = 0; i < kNumSpans; ++i) {
      const auto span = static_cast<Span>(i);
      span_hists_[i] =
          m->GetHistogram(std::string("fast_span_") + SpanName(span) + "_seconds",
                          std::string("Per-request ") + SpanName(span) +
                              " span duration");
    }
  }
}

std::shared_ptr<RequestTrace> RequestObs::StartTrace() const {
  return opts_.tracing ? std::make_shared<RequestTrace>() : nullptr;
}

void RequestObs::OnSubmitted() {
  if (submitted_ != nullptr) submitted_->Increment();
}

void RequestObs::OnRejectedQueueFull() {
  if (rejected_queue_full_ != nullptr) rejected_queue_full_->Increment();
  events_.Record(ProcessUptimeSeconds(), "pushback", "");
}

void RequestObs::OnQueueBlocked(bool is_push, std::uint64_t ns) {
  if (is_push) {
    if (queue_pushes_blocked_ != nullptr) queue_pushes_blocked_->Increment();
    if (queue_push_block_ns_ != nullptr) queue_push_block_ns_->Increment(ns);
  } else {
    if (queue_pops_blocked_ != nullptr) queue_pops_blocked_->Increment();
    if (queue_pop_block_ns_ != nullptr) queue_pop_block_ns_->Increment(ns);
  }
}

void RequestObs::OnRejectedQuota() {
  if (rejected_quota_ != nullptr) rejected_quota_->Increment();
}

void RequestObs::SetQueueDepth(std::size_t depth) {
  if (queue_depth_ != nullptr) queue_depth_->Set(static_cast<double>(depth));
}

std::shared_ptr<const CompletedTrace> RequestObs::OnFinished(
    Outcome outcome, double total_seconds, std::shared_ptr<RequestTrace> trace,
    std::uint64_t request_id, bool ok, const char* status_name,
    std::string tenant_id, const RequestCost& cost) {
  // Attribution first: the account table and the SLO stream see every
  // finished request, whatever its outcome (tenant_id is moved below).
  accounts_.Charge(tenant_id, cost, ok);
  if (slo_ != nullptr) {
    slo_->Record(tenant_id, total_seconds, ok, uptime_.ElapsedSeconds());
  }
  switch (outcome) {
    case Outcome::kCompleted:
      if (completed_ != nullptr) completed_->Increment();
      if (latency_ != nullptr) latency_->Record(total_seconds);
      break;
    case Outcome::kRejectedDeadline:
      if (rejected_deadline_ != nullptr) rejected_deadline_->Increment();
      break;
    case Outcome::kCancelledMidrun:
      if (cancelled_midrun_ != nullptr) cancelled_midrun_->Increment();
      break;
    case Outcome::kFailed:
      if (failed_ != nullptr) failed_->Increment();
      break;
  }

  if (trace == nullptr) return nullptr;

  auto done = std::make_shared<CompletedTrace>(
      trace->Finish(request_id, ok, status_name, std::move(tenant_id)));
  for (const TraceSpan& s : done->spans) {
    Histogram* h = span_hists_[static_cast<std::size_t>(s.span)];
    if (h != nullptr) h->Record(s.duration_seconds);
  }
  recent_.Push(done);
  if (opts_.slow_request_seconds > 0.0 &&
      done->total_seconds >= opts_.slow_request_seconds) {
    if (slow_requests_ != nullptr) slow_requests_->Increment();
    slow_.Push(done);
    events_.Record(ProcessUptimeSeconds(), "slow_request", done->tenant_id);

    // Top wall spans by duration: the one-line triage answer to "where did
    // the time go" without pulling /traces/slow.
    std::vector<const TraceSpan*> wall;
    wall.reserve(done->spans.size());
    for (const TraceSpan& s : done->spans) {
      if (!s.simulated) wall.push_back(&s);
    }
    const std::size_t top = std::min<std::size_t>(3, wall.size());
    std::partial_sort(wall.begin(), wall.begin() + top, wall.end(),
                      [](const TraceSpan* a, const TraceSpan* b) {
                        return a->duration_seconds > b->duration_seconds;
                      });
    std::string spans;
    for (std::size_t i = 0; i < top; ++i) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%s%s=%.3fms", i == 0 ? "" : " ",
                    SpanName(wall[i]->span),
                    wall[i]->duration_seconds * 1e3);
      spans += buf;
    }
    FAST_LOG(WARNING) << "slow request: id=" << done->request_id
                      << " tenant=" << (done->tenant_id.empty()
                                            ? "-"
                                            : done->tenant_id.c_str())
                      << " status=" << done->status << " total="
                      << static_cast<long long>(done->total_seconds * 1e6)
                      << "us coverage=" << done->Coverage()
                      << " top_spans=[" << spans << "]";
  }
  return done;
}

std::vector<std::shared_ptr<const CompletedTrace>> RequestObs::recent_traces()
    const {
  return recent_.Snapshot();
}

std::vector<std::shared_ptr<const CompletedTrace>> RequestObs::slow_traces()
    const {
  return slow_.Snapshot();
}

std::vector<InstantEvent> RequestObs::recent_events() const {
  return events_.Snapshot();
}

}  // namespace fast::obs
