#ifndef FAST_OBS_REQUEST_OBS_H_
#define FAST_OBS_REQUEST_OBS_H_

// Per-service observability bundle shared by MatchService and TenantRouter:
// the request-level registry metrics (outcome counters, latency and per-span
// histograms, queue-depth gauge), the recent-trace ring, the slow-query
// retention ring, and the slow-query WARNING log. Both services classify
// outcomes identically, so the whole finish-side pipeline lives here once.
//
// It is also the admin plane's attribution point: every OnFinished charges
// the request's cost vector to the per-tenant resource accountant
// (obs/accounting.h) and feeds the SLO burn-rate engine (obs/slo.h), whose
// breach transitions trigger the flight recorder. One call site, every
// serving mode.
//
// The services keep their per-instance counters (their stats() structs are
// per-instance views benches compare phase by phase); this bundle adds the
// process-wide view on top.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/accounting.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace fast::obs {

class RequestObs {
 public:
  struct Options {
    // Registry to report into; nullptr disables all registry metrics (trace
    // rings and the slow log still work when tracing is on).
    MetricsRegistry* metrics = nullptr;
    // Record per-request span traces. Off, StartTrace returns nullptr and
    // every downstream span record is a skipped branch.
    bool tracing = true;
    // Requests slower than this get a FAST_LOG(WARNING) with their span
    // breakdown and are retained in the slow ring. 0 disables.
    double slow_request_seconds = 0.0;
    // Capacity of the recent-trace ring (the slow ring uses the same).
    std::size_t trace_ring_capacity = 256;
    // Per-tenant SLO objectives (obs/slo.h); latency_objective_seconds == 0
    // leaves the engine off. NOTE: appended last — existing call sites
    // brace-initialize this struct positionally.
    SloOptions slo;
    // Breach flight recorder (obs/slo.h); an empty dir leaves it off.
    FlightRecorderOptions flight;
  };

  enum class Outcome {
    kCompleted,
    kRejectedDeadline,   // deadline passed while queued; never dispatched
    kCancelledMidrun,    // deadline tripped during the run
    kFailed,             // pipeline error
  };

  explicit RequestObs(const Options& opts);

  bool tracing() const { return opts_.tracing; }

  // New per-request recorder; nullptr when tracing is disabled. shared_ptr
  // because a transport front end may start the trace before Submit (anchored
  // at frame receive) and hand it to the service via
  // RequestOptions::resume_trace.
  std::shared_ptr<RequestTrace> StartTrace() const;

  // Admission-side counters.
  void OnSubmitted();
  void OnRejectedQueueFull();
  void OnRejectedQuota();

  // Queue-depth gauge (sampled value, set by the owning service).
  void SetQueueDepth(std::size_t depth);

  // BoundedQueue block observer hook: a producer (is_push) or consumer
  // blocked for `ns` on the service queue. Mirrored into the
  // fast_queue_pushes_blocked_total / fast_queue_pops_blocked_total /
  // fast_queue_{push,pop}_block_ns_total counters.
  void OnQueueBlocked(bool is_push, std::uint64_t ns);

  // Finish-side pipeline: bumps the outcome counter, records the latency
  // and per-span histograms, charges `cost` to the tenant's resource
  // account, feeds the SLO engine, and retains the trace in the recent ring
  // (and the slow ring + WARNING log past the threshold). Returns the
  // frozen trace for the RequestResult, or nullptr when `trace` was null.
  std::shared_ptr<const CompletedTrace> OnFinished(
      Outcome outcome, double total_seconds, std::shared_ptr<RequestTrace> trace,
      std::uint64_t request_id, bool ok, const char* status_name,
      std::string tenant_id = "", const RequestCost& cost = {});

  // Newest-last snapshots of the retained traces.
  std::vector<std::shared_ptr<const CompletedTrace>> recent_traces() const;
  std::vector<std::shared_ptr<const CompletedTrace>> slow_traces() const;

  // Newest-last ring of instant events (SLO breaches, queue-full pushbacks,
  // slow-request flags) on the ProcessUptimeSeconds axis, for the timeline
  // exporter.
  std::vector<InstantEvent> recent_events() const;

  double slow_request_seconds() const { return opts_.slow_request_seconds; }

  // ---- Admin-plane surfaces. ----
  const ResourceAccounts& accounts() const { return accounts_; }
  // Null when the engine / recorder is disabled.
  const SloEngine* slo() const { return slo_.get(); }
  const FlightRecorder* flight_recorder() const { return flight_.get(); }
  // The time axis SLO records and flight-recorder rate limits run on.
  double uptime_seconds() const { return uptime_.ElapsedSeconds(); }

 private:
  const Options opts_;

  // Null when no registry was supplied.
  Counter* submitted_ = nullptr;
  Counter* completed_ = nullptr;
  Counter* failed_ = nullptr;
  Counter* rejected_queue_full_ = nullptr;
  Counter* rejected_quota_ = nullptr;
  Counter* rejected_deadline_ = nullptr;
  Counter* cancelled_midrun_ = nullptr;
  Counter* slow_requests_ = nullptr;
  Counter* queue_pushes_blocked_ = nullptr;
  Counter* queue_pops_blocked_ = nullptr;
  Counter* queue_push_block_ns_ = nullptr;
  Counter* queue_pop_block_ns_ = nullptr;
  Gauge* queue_depth_ = nullptr;
  Histogram* latency_ = nullptr;
  Histogram* span_hists_[kNumSpans] = {};

  TraceRing recent_;
  TraceRing slow_;
  EventRing events_{256};

  Timer uptime_;
  ResourceAccounts accounts_;
  std::unique_ptr<SloEngine> slo_;       // null when objectives are unset
  std::unique_ptr<FlightRecorder> flight_;  // null when no dump dir
};

}  // namespace fast::obs

#endif  // FAST_OBS_REQUEST_OBS_H_
