#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "obs/export.h"
#include "util/json_writer.h"
#include "util/logging.h"

namespace fast::obs {

// ---- SloEngine::Window ----

void SloEngine::Window::Init(double window_seconds, std::size_t buckets) {
  buckets = std::max<std::size_t>(1, buckets);
  bucket_seconds = std::max(window_seconds, 1e-9) / static_cast<double>(buckets);
  total.assign(buckets, 0);
  bad.assign(buckets, 0);
  last_bucket = -1;
}

void SloEngine::Window::Advance(double now_seconds) {
  const auto b = static_cast<std::int64_t>(
      std::floor(std::max(now_seconds, 0.0) / bucket_seconds));
  const auto n = static_cast<std::int64_t>(total.size());
  if (last_bucket < 0) {
    last_bucket = b;
    return;
  }
  if (b <= last_bucket) return;  // same bucket, or a laggard thread — keep
  // Zero every bucket the clock skipped over (lazy expiry).
  const std::int64_t from = std::max(last_bucket + 1, b - n + 1);
  for (std::int64_t i = from; i <= b; ++i) {
    total[static_cast<std::size_t>(i % n)] = 0;
    bad[static_cast<std::size_t>(i % n)] = 0;
  }
  last_bucket = b;
}

void SloEngine::Window::Record(double now_seconds, bool is_bad) {
  Advance(now_seconds);
  const auto slot =
      static_cast<std::size_t>(last_bucket % static_cast<std::int64_t>(total.size()));
  ++total[slot];
  if (is_bad) ++bad[slot];
}

void SloEngine::Window::Sums(double now_seconds, std::uint64_t* out_total,
                             std::uint64_t* out_bad) {
  Advance(now_seconds);
  std::uint64_t t = 0, b = 0;
  for (std::size_t i = 0; i < total.size(); ++i) {
    t += total[i];
    b += bad[i];
  }
  *out_total = t;
  *out_bad = b;
}

// ---- SloEngine ----

SloEngine::SloEngine(const SloOptions& opts, MetricsRegistry* metrics)
    : opts_(opts) {
  if (metrics == nullptr) return;
  breaches_counter_ = metrics->GetCounter(
      "fast_slo_breaches_total", "Tenant SLO breach transitions");
  recoveries_counter_ = metrics->GetCounter(
      "fast_slo_recoveries_total", "Tenant SLO recovery transitions");
  short_burn_gauge_ = metrics->GetGauge(
      "fast_slo_burn_rate_short",
      "Short-window burn rate of the last-finishing tenant");
  long_burn_gauge_ = metrics->GetGauge(
      "fast_slo_burn_rate_long",
      "Long-window burn rate of the last-finishing tenant");
}

double SloEngine::BurnRate(std::uint64_t total, std::uint64_t bad) const {
  if (total == 0) return 0.0;
  const double budget = std::clamp(1.0 - opts_.target, 1e-9, 1.0);
  return (static_cast<double>(bad) / static_cast<double>(total)) / budget;
}

void SloEngine::Record(const std::string& tenant, double latency_seconds,
                       bool ok, double now_seconds) {
  const bool bad = !ok || latency_seconds > opts_.latency_objective_seconds;
  const std::string& key = tenant.empty() ? kDefaultAccount : tenant;
  bool breach_fired = false;
  bool recovery_fired = false;
  SloTenantState fired;
  double short_burn = 0.0, long_burn = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    TenantSlo& t = tenants_[key];
    if (t.short_w.total.empty()) {
      t.short_w.Init(opts_.short_window_seconds, opts_.buckets_per_window);
      t.long_w.Init(opts_.long_window_seconds, opts_.buckets_per_window);
    }
    t.short_w.Record(now_seconds, bad);
    t.long_w.Record(now_seconds, bad);
    std::uint64_t st, sb, lt, lb;
    t.short_w.Sums(now_seconds, &st, &sb);
    t.long_w.Sums(now_seconds, &lt, &lb);
    short_burn = BurnRate(st, sb);
    long_burn = BurnRate(lt, lb);
    if (!t.breached && short_burn >= opts_.breach_burn_rate &&
        long_burn >= opts_.breach_burn_rate) {
      t.breached = true;
      ++t.breaches;
      breach_fired = true;
    } else if (t.breached && short_burn < opts_.breach_burn_rate &&
               long_burn < opts_.breach_burn_rate) {
      t.breached = false;
      ++t.recoveries;
      recovery_fired = true;
    }
    if (breach_fired) {
      fired.tenant = key;
      fired.short_burn = short_burn;
      fired.long_burn = long_burn;
      fired.short_total = st;
      fired.short_bad = sb;
      fired.long_total = lt;
      fired.long_bad = lb;
      fired.breached = true;
      fired.breaches = t.breaches;
      fired.recoveries = t.recoveries;
    }
  }
  // Registry mirrors and the breach hook run outside the engine lock: the
  // flight recorder snapshots rings and the registry, which take their own
  // locks on this (worker) thread.
  if (short_burn_gauge_ != nullptr) short_burn_gauge_->Set(short_burn);
  if (long_burn_gauge_ != nullptr) long_burn_gauge_->Set(long_burn);
  if (breach_fired) {
    if (breaches_counter_ != nullptr) breaches_counter_->Increment();
    FAST_LOG(WARNING) << "SLO breach: tenant=" << key
                      << " short_burn=" << short_burn
                      << " long_burn=" << long_burn;
    if (on_breach_) on_breach_(key, fired);
  }
  if (recovery_fired && recoveries_counter_ != nullptr) {
    recoveries_counter_->Increment();
  }
}

void SloEngine::FillState(const std::string& id, TenantSlo& t,
                          double now_seconds, SloTenantState* out) const {
  out->tenant = id;
  std::uint64_t st, sb, lt, lb;
  t.short_w.Sums(now_seconds, &st, &sb);
  t.long_w.Sums(now_seconds, &lt, &lb);
  out->short_burn = BurnRate(st, sb);
  out->long_burn = BurnRate(lt, lb);
  out->short_total = st;
  out->short_bad = sb;
  out->long_total = lt;
  out->long_bad = lb;
  out->breached = t.breached;
  out->breaches = t.breaches;
  out->recoveries = t.recoveries;
}

std::vector<SloTenantState> SloEngine::StateSnapshot(double now_seconds) const {
  std::vector<SloTenantState> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(tenants_.size());
  for (auto& [id, t] : tenants_) {
    SloTenantState s;
    FillState(id, t, now_seconds, &s);
    out.push_back(std::move(s));
  }
  return out;
}

std::uint64_t SloEngine::total_breaches() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [id, t] : tenants_) n += t.breaches;
  return n;
}

// ---- FlightRecorder ----

namespace {

std::string SanitizeForFilename(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out += ok ? c : '_';
  }
  return out.empty() ? std::string("tenant") : out;
}

void WriteSloStateJson(JsonWriter& w, const SloTenantState& s) {
  w.Field("tenant", s.tenant);
  w.Field("short_burn", s.short_burn);
  w.Field("long_burn", s.long_burn);
  w.Field("short_total", s.short_total);
  w.Field("short_bad", s.short_bad);
  w.Field("long_total", s.long_total);
  w.Field("long_bad", s.long_bad);
  w.Field("breached", s.breached);
  w.Field("breaches", s.breaches);
  w.Field("recoveries", s.recoveries);
}

}  // namespace

FlightRecorder::FlightRecorder(const FlightRecorderOptions& opts)
    : opts_(opts) {}

std::string FlightRecorder::RecordBreach(
    const std::string& tenant, const SloTenantState& state,
    double uptime_seconds, const MetricsSnapshot& metrics,
    const std::vector<AccountSnapshot>& accounts,
    const std::vector<std::shared_ptr<const CompletedTrace>>& recent,
    const std::vector<std::shared_ptr<const CompletedTrace>>& slow) {
  if (!enabled()) return "";
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const bool rate_limited =
        any_written_ &&
        uptime_seconds - last_dump_uptime_ < opts_.min_interval_seconds;
    if (rate_limited || seq_ >= opts_.max_dumps) {
      ++suppressed_;
      return "";
    }
    any_written_ = true;
    last_dump_uptime_ = uptime_seconds;
    seq = ++seq_;
  }

  JsonWriter w;
  w.Field("reason", "slo_breach");
  w.Field("uptime_seconds", uptime_seconds);
  WriteBuildInfoJson(w);
  w.BeginObject("breach");
  WriteSloStateJson(w, state);
  w.EndObject();
  WriteSnapshotJson(w, metrics);
  WriteAccountsJson(w, accounts);
  // Newest `max_traces` of each ring (rings are newest-last).
  const auto bounded = [&](const auto& ring) {
    const std::size_t skip =
        ring.size() > opts_.max_traces ? ring.size() - opts_.max_traces : 0;
    return std::make_pair(ring.begin() + static_cast<std::ptrdiff_t>(skip),
                          ring.end());
  };
  w.BeginArray("traces_recent");
  for (auto [it, end] = bounded(recent); it != end; ++it) WriteTraceJson(w, **it);
  w.EndArray();
  w.BeginArray("traces_slow");
  for (auto [it, end] = bounded(slow); it != end; ++it) WriteTraceJson(w, **it);
  w.EndArray();

  std::error_code ec;
  std::filesystem::create_directories(opts_.dir, ec);
  const std::string path = opts_.dir + "/flight_" + SanitizeForFilename(tenant) +
                           "_" + std::to_string(seq) + ".json";
  if (!WriteJsonFile(path, w.Finish())) return "";
  FAST_LOG(WARNING) << "flight recorder: wrote " << path;
  std::lock_guard<std::mutex> lock(mu_);
  paths_.push_back(path);
  return path;
}

std::uint64_t FlightRecorder::dumps_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

std::uint64_t FlightRecorder::dumps_suppressed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_;
}

std::vector<std::string> FlightRecorder::dump_paths() const {
  std::lock_guard<std::mutex> lock(mu_);
  return paths_;
}

}  // namespace fast::obs
