#ifndef FAST_OBS_SLO_H_
#define FAST_OBS_SLO_H_

// Per-tenant SLO tracking with multi-window burn rates and a breach flight
// recorder.
//
// The objective is a good-request fraction: a request is GOOD when it
// finished OK within `latency_objective_seconds`, BAD otherwise (errors,
// deadline rejections, and over-objective completions all burn budget). The
// error budget is 1 - target; the burn rate over a window is
//
//     burn = (bad / total in window) / (1 - target)
//
// so burn == 1 means "spending budget exactly as fast as the objective
// allows", burn == 14 means "the whole budget gone in 1/14 of the period".
// Following the standard multi-window discipline, a tenant enters breach
// only when BOTH the short window (fast signal, noisy) and the long window
// (slow signal, stable) exceed `breach_burn_rate`, and recovers when both
// drop back below — one slow request cannot flap the breach state.
//
// The engine is fed from the finish-side stream (RequestObs::OnFinished
// calls Record once per finished request) and is deterministic for tests:
// every entry point takes an explicit `now_seconds` on the engine's own
// time axis, so tests inject ticks instead of sleeping.
//
// On a breach transition the engine invokes an optional callback (outside
// its lock); RequestObs points that callback at a FlightRecorder, which
// writes ONE bounded JSON dump — registry snapshot, recent + slow trace
// rings, per-tenant account table — rate-limited so a flapping tenant
// cannot fill a disk.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/accounting.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fast::obs {

struct SloOptions {
  SloOptions() = default;

  // Latency objective for a GOOD request; 0 disables the engine entirely.
  double latency_objective_seconds = 0.0;

  // Good-request fraction objective in (0, 1); the error budget is
  // 1 - target.
  double target = 0.999;

  // Multi-window burn-rate windows (seconds).
  double short_window_seconds = 30.0;
  double long_window_seconds = 300.0;

  // Breach when both windows' burn rates reach this.
  double breach_burn_rate = 2.0;

  // Ring granularity per window (buckets); higher = smoother expiry.
  std::size_t buckets_per_window = 30;
};

// One tenant's burn-rate state at a point in time.
struct SloTenantState {
  std::string tenant;
  double short_burn = 0.0;
  double long_burn = 0.0;
  std::uint64_t short_total = 0, short_bad = 0;
  std::uint64_t long_total = 0, long_bad = 0;
  bool breached = false;
  std::uint64_t breaches = 0;    // cumulative breach transitions
  std::uint64_t recoveries = 0;  // cumulative recovery transitions
};

class SloEngine {
 public:
  // Invoked on a breach transition, after the engine lock is released, on
  // the finishing worker thread.
  using BreachCallback =
      std::function<void(const std::string& tenant, const SloTenantState&)>;

  // `metrics` receives fast_slo_breaches_total / fast_slo_recoveries_total
  // and the fast_slo_burn_rate_{short,long} gauges (worst tenant at the
  // last Record). Non-owning; nullptr = no registry reporting.
  SloEngine(const SloOptions& opts, MetricsRegistry* metrics);

  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  void set_on_breach(BreachCallback cb) { on_breach_ = std::move(cb); }

  const SloOptions& options() const { return opts_; }

  // Records one finished request for `tenant` (empty -> "__default") at
  // `now_seconds` on the engine's time axis. Thread-safe.
  void Record(const std::string& tenant, double latency_seconds, bool ok,
              double now_seconds);

  // Burn-rate states as of `now_seconds`, sorted by tenant id.
  std::vector<SloTenantState> StateSnapshot(double now_seconds) const;

  std::uint64_t total_breaches() const;

 private:
  // Ring of time buckets holding (total, bad) request counts; expiry is
  // lazy — advancing past a bucket zeroes it.
  struct Window {
    double bucket_seconds = 1.0;
    std::vector<std::uint64_t> total;
    std::vector<std::uint64_t> bad;
    std::int64_t last_bucket = -1;

    void Init(double window_seconds, std::size_t buckets);
    void Advance(double now_seconds);
    void Record(double now_seconds, bool is_bad);
    void Sums(double now_seconds, std::uint64_t* out_total,
              std::uint64_t* out_bad);
  };

  struct TenantSlo {
    Window short_w, long_w;
    bool breached = false;
    std::uint64_t breaches = 0;
    std::uint64_t recoveries = 0;
  };

  double BurnRate(std::uint64_t total, std::uint64_t bad) const;
  void FillState(const std::string& id, TenantSlo& t, double now_seconds,
                 SloTenantState* out) const;

  const SloOptions opts_;
  Counter* breaches_counter_ = nullptr;
  Counter* recoveries_counter_ = nullptr;
  Gauge* short_burn_gauge_ = nullptr;
  Gauge* long_burn_gauge_ = nullptr;
  BreachCallback on_breach_;

  mutable std::mutex mu_;
  // std::map: StateSnapshot returns sorted-by-tenant without a copy+sort.
  mutable std::map<std::string, TenantSlo> tenants_;
};

// ---- Breach flight recorder. ----

struct FlightRecorderOptions {
  FlightRecorderOptions() = default;

  // Directory dumps are written into (created if missing); empty disables.
  std::string dir;

  // Minimum spacing between dumps; transitions inside the window are
  // counted as suppressed, not written.
  double min_interval_seconds = 60.0;

  // Lifetime cap on dumps written by this recorder.
  std::size_t max_dumps = 16;

  // Per-ring cap on traces embedded in a dump (newest kept).
  std::size_t max_traces = 64;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(const FlightRecorderOptions& opts);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const { return !opts_.dir.empty(); }

  // Writes flight_<tenant>_<seq>.json under dir: the breach state, the
  // registry snapshot, the account table, and the (bounded) recent + slow
  // trace rings. Returns the path, or "" when disabled, rate-limited, or
  // over the lifetime cap. Thread-safe; concurrent breaches write at most
  // one dump per rate-limit window.
  std::string RecordBreach(
      const std::string& tenant, const SloTenantState& state,
      double uptime_seconds, const MetricsSnapshot& metrics,
      const std::vector<AccountSnapshot>& accounts,
      const std::vector<std::shared_ptr<const CompletedTrace>>& recent,
      const std::vector<std::shared_ptr<const CompletedTrace>>& slow);

  std::uint64_t dumps_written() const;
  std::uint64_t dumps_suppressed() const;
  std::vector<std::string> dump_paths() const;

 private:
  const FlightRecorderOptions opts_;

  mutable std::mutex mu_;
  std::uint64_t seq_ = 0;
  std::uint64_t suppressed_ = 0;
  bool any_written_ = false;
  double last_dump_uptime_ = 0.0;
  std::vector<std::string> paths_;
};

}  // namespace fast::obs

#endif  // FAST_OBS_SLO_H_
