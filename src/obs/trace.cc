#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "obs/profiler.h"

namespace fast::obs {

const char* SpanName(Span s) {
  switch (s) {
    case Span::kRecv:
      return "recv";
    case Span::kDecode:
      return "decode";
    case Span::kAdmit:
      return "admit";
    case Span::kQueue:
      return "queue";
    case Span::kSnapshot:
      return "snapshot";
    case Span::kPlanLookup:
      return "plan_lookup";
    case Span::kCstBuild:
      return "cst_build";
    case Span::kDeviceWait:
      return "device_wait";
    case Span::kDma:
      return "dma";
    case Span::kKernel:
      return "kernel";
    case Span::kMatch:
      return "match";
    case Span::kReassembly:
      return "reassembly";
    case Span::kRemap:
      return "remap";
    case Span::kEncode:
      return "encode";
    case Span::kSend:
      return "send";
    case Span::kCount:
      break;
  }
  return "unknown";
}

double CompletedTrace::WallSpanSeconds() const {
  double total = 0.0;
  for (const TraceSpan& s : spans) {
    if (!s.simulated) total += s.duration_seconds;
  }
  return total;
}

double CompletedTrace::Coverage() const {
  return total_seconds > 0.0 ? WallSpanSeconds() / total_seconds : 0.0;
}

double CompletedTrace::SpanSeconds(Span target) const {
  double total = 0.0;
  for (const TraceSpan& s : spans) {
    if (s.span == target) total += s.duration_seconds;
  }
  return total;
}

std::string CompletedTrace::Summary() const {
  std::string out;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "req=%llu%s%s total=%.3fms [",
                static_cast<unsigned long long>(request_id),
                tenant_id.empty() ? "" : " tenant=",
                tenant_id.c_str(), total_seconds * 1e3);
  out += buf;
  bool first = true;
  for (const TraceSpan& s : spans) {
    std::snprintf(buf, sizeof(buf), "%s%s%s=%.3fms", first ? "" : " ",
                  SpanName(s.span), s.simulated ? "(sim)" : "",
                  s.duration_seconds * 1e3);
    out += buf;
    first = false;
  }
  out += ']';
  return out;
}

RequestTrace::RequestTrace()
    : anchor_uptime_seconds_(ProcessUptimeSeconds()) {}

void RequestTrace::Begin(Span s) {
  if (open_) End();
  open_ = true;
  open_span_ = s;
  open_start_ = anchor_.ElapsedSeconds();
}

void RequestTrace::End() {
  if (!open_) return;
  const double now = anchor_.ElapsedSeconds();
  spans_.push_back({open_span_, open_start_, now - open_start_, false,
                    Profiler::CurrentThreadId()});
  open_ = false;
}

void RequestTrace::RecordWall(Span s, double seconds) {
  if (open_) End();
  const double now = anchor_.ElapsedSeconds();
  const double duration = std::min(std::max(seconds, 0.0), now);
  spans_.push_back(
      {s, now - duration, duration, false, Profiler::CurrentThreadId()});
}

void RequestTrace::RecordSimulated(Span s, double seconds) {
  // Anchored where it was observed; duration is the device model's, not the
  // anchor clock's.
  spans_.push_back({s, anchor_.ElapsedSeconds(), seconds, true,
                    Profiler::CurrentThreadId()});
}

CompletedTrace RequestTrace::Finish(std::uint64_t request_id, bool ok,
                                    std::string status, std::string tenant_id) {
  End();
  CompletedTrace done;
  done.request_id = request_id;
  done.tenant_id = std::move(tenant_id);
  done.total_seconds = anchor_.ElapsedSeconds();
  done.ok = ok;
  done.status = std::move(status);
  done.anchor_uptime_seconds = anchor_uptime_seconds_;
  done.spans = std::move(spans_);
  spans_.clear();
  return done;
}

void TraceRing::Push(std::shared_ptr<const CompletedTrace> trace) {
  if (capacity_ == 0) return;
  std::lock_guard<util::ProfiledMutex> lock(mu_);
  ring_.push_back(std::move(trace));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<std::shared_ptr<const CompletedTrace>> TraceRing::Snapshot() const {
  std::lock_guard<util::ProfiledMutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

void EventRing::Record(double t_seconds, std::string name, std::string detail) {
  if (capacity_ == 0) return;
  InstantEvent e;
  e.t_seconds = t_seconds;
  e.name = std::move(name);
  e.detail = std::move(detail);
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(e));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<InstantEvent> EventRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

}  // namespace fast::obs
