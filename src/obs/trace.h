#ifndef FAST_OBS_TRACE_H_
#define FAST_OBS_TRACE_H_

// Per-request tracing: where did this query's latency go?
//
// A RequestTrace rides along with one request from Submit to completion and
// records a sequence of timestamped spans:
//
//   admit → queue → snapshot → plan_lookup → cst_build →
//     (device mode) device_wait → [dma, kernel: simulated] → reassembly →
//     (cpu mode)    match        → [dma, kernel: simulated] →
//   remap
//
// Two span flavours:
//   - WALL spans (admit, queue, snapshot, ..., reassembly, remap) are
//     measured against one steady-clock anchor started at Submit. They tile
//     the request's host-side timeline, so their durations sum to ~the
//     end-to-end latency (the acceptance gate checks within 10%).
//   - SIMULATED spans (dma, kernel) carry the device model's *simulated*
//     seconds — the PCIe transfer and kernel occupancy the FpgaConfig
//     predicts. Host-side, that simulated time is spent inside device_wait
//     (device mode) or match (CPU fallback), so simulated spans are excluded
//     from the wall-coverage sum; they answer "what would the card be
//     doing", not "where did host time go".
//
// Threading model: a trace belongs to exactly one request. Spans are
// recorded sequentially — at most one wall span is open at a time — but the
// recorder migrates across threads (client thread for admit/queue-begin,
// worker thread afterwards). The queue push/pop that hands the request over
// also hands the trace over with it (the queue's mutex provides the
// happens-before), so no atomics are needed.
//
// Every recording entry point tolerates a null trace: tracing disabled costs
// one branch per span.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/profiled_mutex.h"
#include "util/timer.h"

namespace fast::obs {

enum class Span : std::uint8_t {
  kRecv = 0,     // wire: frame bytes arriving on the socket (src/net/)
  kDecode,       // wire: frame parse + query graph decode
  kAdmit,        // Submit: canonicalize + admission control
  kQueue,        // queued, waiting for a worker
  kSnapshot,     // capture the epoch snapshot
  kPlanLookup,   // plan/CST cache probe
  kCstBuild,     // CST construction (cache miss) or image decode
  kDeviceWait,   // device mode: partition stream + wait for device rounds
  kDma,          // SIMULATED: PCIe transfer seconds from the device model
  kKernel,       // SIMULATED: kernel seconds from the device model
  kMatch,        // CPU mode: partition + match execution
  kReassembly,   // device mode: fold per-partition results together
  kRemap,        // map matches back through the canonical permutation
  kEncode,       // wire: result/embedding frame encode (registry-only: the
                 // trace is frozen at service finish, so the wire server
                 // records encode/send into fast_span_*_seconds directly)
  kSend,         // wire: socket write of the encoded frames (registry-only)
  kCount,
};

inline constexpr std::size_t kNumSpans = static_cast<std::size_t>(Span::kCount);

const char* SpanName(Span s);

struct TraceSpan {
  Span span = Span::kAdmit;
  double start_seconds = 0.0;     // offset from the trace anchor (Submit)
  double duration_seconds = 0.0;
  bool simulated = false;         // device-model seconds, not host wall time
  // Profiler tid (obs/profiler.h) of the thread that recorded the span —
  // the recorder migrates (client thread, then a worker), and the timeline
  // exporter places each span on the thread that actually ran it. 0 when
  // the thread registry overflowed.
  std::uint32_t tid = 0;
};

// The immutable record of a finished request, shared between the
// RequestResult that carries it back to the caller and the ring buffers that
// retain it for export.
struct CompletedTrace {
  std::uint64_t request_id = 0;
  std::string tenant_id;          // empty outside TenantRouter
  double total_seconds = 0.0;     // Submit -> completion
  bool ok = false;
  std::string status;             // status code name, e.g. "DEADLINE_EXCEEDED"
  // Where this trace's anchor sits on the shared ProcessUptimeSeconds axis
  // (obs/profiler.h): absolute time of span N = anchor + its start_seconds.
  // The timeline exporter uses it to interleave many requests' spans.
  double anchor_uptime_seconds = 0.0;
  std::vector<TraceSpan> spans;

  // Sum of non-simulated span durations: the portion of total_seconds the
  // spans explain.
  double WallSpanSeconds() const;
  // WallSpanSeconds / total_seconds, 0 when total is 0.
  double Coverage() const;
  double SpanSeconds(Span s) const;  // summed over occurrences, any flavour
  std::string Summary() const;
};

// Records one request's spans. Begin/End pair up sequentially; Begin while a
// span is open first closes the open one (so call sites never need a
// try/catch-like discipline on early exits — the next span boundary or
// Finish() closes whatever was left open).
class RequestTrace {
 public:
  RequestTrace();
  RequestTrace(const RequestTrace&) = delete;
  RequestTrace& operator=(const RequestTrace&) = delete;

  void Begin(Span s);
  void End();  // closes the open span, if any

  // Records a device-model duration (no wall-clock meaning).
  void RecordSimulated(Span s, double seconds);

  // Records a wall span that already elapsed: it ends now and started
  // `seconds` ago (clamped to the anchor). The wire front end uses this for
  // the recv span — the bytes' arrival was timed by the frame decoder before
  // the trace's first Begin().
  void RecordWall(Span s, double seconds);

  double Elapsed() const { return anchor_.ElapsedSeconds(); }

  // Closes any open span and freezes the record.
  CompletedTrace Finish(std::uint64_t request_id, bool ok, std::string status,
                        std::string tenant_id = "");

 private:
  Timer anchor_;  // starts at construction (Submit)
  double anchor_uptime_seconds_ = 0.0;  // anchor on the process uptime axis
  std::vector<TraceSpan> spans_;
  bool open_ = false;
  Span open_span_ = Span::kAdmit;
  double open_start_ = 0.0;
};

// RAII wall-span guard; tolerates a null trace.
class ScopedSpan {
 public:
  ScopedSpan(RequestTrace* trace, Span s) : trace_(trace) {
    if (trace_ != nullptr) trace_->Begin(s);
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->End();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  RequestTrace* trace_;
};

// Fixed-capacity ring of recently completed traces (newest evicts oldest).
// Also used for the slow-query retention ring.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) : capacity_(capacity) {}

  void Push(std::shared_ptr<const CompletedTrace> trace);
  // Newest-last snapshot of the retained traces.
  std::vector<std::shared_ptr<const CompletedTrace>> Snapshot() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable util::ProfiledMutex mu_{"trace_ring"};
  std::deque<std::shared_ptr<const CompletedTrace>> ring_;
};

// A timestamped point event on the shared process-uptime axis: SLO breach
// transitions, queue-full pushbacks, slow-request flags. The timeline
// exporter renders these as Chrome instant events.
struct InstantEvent {
  double t_seconds = 0.0;  // ProcessUptimeSeconds when it happened
  std::string name;        // e.g. "slo_breach", "pushback"
  std::string detail;      // e.g. the tenant id; may be empty
};

// Fixed-capacity ring of recent instant events (newest evicts oldest).
class EventRing {
 public:
  explicit EventRing(std::size_t capacity) : capacity_(capacity) {}

  void Record(double t_seconds, std::string name, std::string detail);
  // Newest-last snapshot.
  std::vector<InstantEvent> Snapshot() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<InstantEvent> ring_;
};

}  // namespace fast::obs

#endif  // FAST_OBS_TRACE_H_
