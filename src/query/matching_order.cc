#include "query/matching_order.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>

#include "util/logging.h"
#include "util/rng.h"

namespace fast {

const char* OrderPolicyName(OrderPolicy policy) {
  switch (policy) {
    case OrderPolicy::kPathBased:
      return "path-based";
    case OrderPolicy::kCfl:
      return "CFL";
    case OrderPolicy::kDaf:
      return "DAF";
    case OrderPolicy::kCeci:
      return "CECI";
    case OrderPolicy::kRandom:
      return "random";
  }
  return "unknown";
}

std::vector<double> EstimateCandidateCounts(const QueryGraph& q, const Graph& g) {
  std::vector<double> est(q.NumVertices(), 0.0);
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    const std::uint32_t du = q.degree(u);
    std::size_t count = 0;
    for (VertexId v : g.VerticesWithLabel(q.label(u))) {
      if (g.degree(v) >= du) ++count;
    }
    est[u] = static_cast<double>(count);
  }
  return est;
}

VertexId SelectRoot(const QueryGraph& q, const Graph& g) {
  const std::vector<double> est = EstimateCandidateCounts(q, g);
  VertexId best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    const double score = est[u] / std::max<double>(1.0, q.degree(u));
    if (score < best_score) {
      best_score = score;
      best = u;
    }
  }
  return best;
}

namespace {

// Emits the vertices of `path` (root-exclusive, top-down) that are not yet in
// the order. Parent precedence holds because a path is processed top-down and
// shared prefixes were emitted by earlier paths.
void AppendPath(const std::vector<VertexId>& path, std::vector<bool>* placed,
                std::vector<VertexId>* order) {
  for (VertexId u : path) {
    if (!(*placed)[u]) {
      (*placed)[u] = true;
      order->push_back(u);
    }
  }
}

// Path-based orders: score every root-to-leaf path, sort ascending, emit.
std::vector<VertexId> PathOrder(const BfsTree& tree,
                                const std::vector<double>& path_scores,
                                std::vector<std::vector<VertexId>> paths,
                                VertexId root, std::size_t n) {
  std::vector<std::size_t> idx(paths.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return path_scores[a] < path_scores[b];
  });
  std::vector<VertexId> order{root};
  std::vector<bool> placed(n, false);
  placed[root] = true;
  for (std::size_t i : idx) AppendPath(paths[i], &placed, &order);
  (void)tree;
  return order;
}

}  // namespace

StatusOr<MatchingOrder> ComputeMatchingOrder(const QueryGraph& q, const Graph& g,
                                             OrderPolicy policy, std::uint64_t seed) {
  const std::size_t n = q.NumVertices();
  const VertexId root = SelectRoot(q, g);
  const BfsTree tree = BfsTree::Build(q, root);
  const std::vector<double> est = EstimateCandidateCounts(q, g);

  MatchingOrder result;
  result.root = root;

  switch (policy) {
    case OrderPolicy::kCeci: {
      result.order = tree.bfs_order();
      break;
    }
    case OrderPolicy::kPathBased:
    case OrderPolicy::kCfl: {
      auto paths = tree.RootToLeafPaths();
      std::vector<double> scores(paths.size(), 0.0);
      for (std::size_t i = 0; i < paths.size(); ++i) {
        if (policy == OrderPolicy::kPathBased) {
          // Estimated path cardinality: product of per-vertex estimates,
          // damped by degree (denser vertices filter harder).
          double prod = 1.0;
          for (VertexId u : paths[i]) {
            prod *= std::max(1.0, est[u]) / std::max<double>(1.0, q.degree(u));
          }
          scores[i] = prod;
        } else {
          // CFL orders paths by minimum average candidate frequency.
          double sum = 0.0;
          for (VertexId u : paths[i]) sum += est[u];
          scores[i] = sum / static_cast<double>(paths[i].size());
        }
      }
      result.order = PathOrder(tree, scores, std::move(paths), root, n);
      break;
    }
    case OrderPolicy::kDaf: {
      // Greedy: repeatedly extend with the frontier vertex (t_q parent
      // already placed) of minimum candidate estimate, DAF's adaptive
      // min-candidate intuition applied statically.
      std::vector<bool> placed(n, false);
      result.order.push_back(root);
      placed[root] = true;
      while (result.order.size() < n) {
        VertexId best = kInvalidVertex;
        double best_est = std::numeric_limits<double>::infinity();
        for (VertexId u = 0; u < n; ++u) {
          if (placed[u] || !placed[tree.parent(u)]) continue;
          if (est[u] < best_est) {
            best_est = est[u];
            best = u;
          }
        }
        FAST_CHECK(best != kInvalidVertex);
        placed[best] = true;
        result.order.push_back(best);
      }
      break;
    }
    case OrderPolicy::kRandom: {
      Rng rng(seed);
      std::vector<bool> placed(n, false);
      result.order.push_back(root);
      placed[root] = true;
      std::vector<VertexId> frontier;
      for (VertexId c : tree.children(root)) frontier.push_back(c);
      while (!frontier.empty()) {
        const std::size_t pick = rng.Uniform(frontier.size());
        const VertexId u = frontier[pick];
        frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(pick));
        placed[u] = true;
        result.order.push_back(u);
        for (VertexId c : tree.children(u)) frontier.push_back(c);
      }
      break;
    }
  }

  FAST_RETURN_IF_ERROR(ValidateOrder(q, result.order));
  return result;
}

Status ValidateOrder(const QueryGraph& q, const std::vector<VertexId>& order) {
  const std::size_t n = q.NumVertices();
  if (order.size() != n) {
    return Status::InvalidArgument("order must contain every query vertex exactly once");
  }
  std::vector<bool> seen(n, false);
  for (VertexId u : order) {
    if (u >= n || seen[u]) {
      return Status::InvalidArgument("order is not a permutation of V(q)");
    }
    seen[u] = true;
  }
  const BfsTree tree = BfsTree::Build(q, order[0]);
  std::vector<std::size_t> pos(n, 0);
  for (std::size_t i = 0; i < n; ++i) pos[order[i]] = i;
  for (VertexId u = 0; u < n; ++u) {
    if (u == order[0]) continue;
    if (pos[tree.parent(u)] >= pos[u]) {
      return Status::InvalidArgument(
          "order violates BFS-tree parent precedence at vertex " + std::to_string(u));
    }
  }
  return Status::OK();
}

std::vector<std::vector<VertexId>> EnumerateConnectedOrders(const QueryGraph& q,
                                                            VertexId root,
                                                            std::size_t limit) {
  const std::size_t n = q.NumVertices();
  const BfsTree tree = BfsTree::Build(q, root);
  std::vector<std::vector<VertexId>> out;
  std::vector<VertexId> order{root};
  std::vector<bool> placed(n, false);
  placed[root] = true;

  // Backtracking over topological extensions of t_q.
  std::function<void()> rec = [&]() {
    if (out.size() >= limit) return;
    if (order.size() == n) {
      out.push_back(order);
      return;
    }
    for (VertexId u = 0; u < n; ++u) {
      if (placed[u] || u == root || !placed[tree.parent(u)]) continue;
      placed[u] = true;
      order.push_back(u);
      rec();
      order.pop_back();
      placed[u] = false;
    }
  };
  rec();
  return out;
}

}  // namespace fast
