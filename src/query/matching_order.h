#ifndef FAST_QUERY_MATCHING_ORDER_H_
#define FAST_QUERY_MATCHING_ORDER_H_

// Matching-order computation (Sec. V-B, Sec. VII-C "impact of matching
// orders").
//
// FAST works with any *tree-connected* order: a permutation of V(q) starting
// at the BFS-tree root in which every vertex appears after its t_q parent.
// The paper's default is the path-based method (ordering the root-to-leaf
// paths of t_q); for Fig. 15 it also runs with CFL-, DAF- and CECI-style
// orders and random connected orders.

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "query/query_graph.h"
#include "util/status.h"

namespace fast {

enum class OrderPolicy {
  kPathBased,  // FAST's default: root-to-leaf paths ordered by estimated cost
  kCfl,        // CFL-Match style: paths ordered by minimum average frequency
  kDaf,        // DAF style: greedy minimum-candidate-estimate extension
  kCeci,       // CECI style: plain BFS order
  kRandom,     // uniformly random tree-connected order (Fig. 15 sweeps)
};

const char* OrderPolicyName(OrderPolicy policy);

struct MatchingOrder {
  VertexId root = kInvalidVertex;
  std::vector<VertexId> order;  // order[0] == root
};

// Label-and-degree-filter candidate-count estimate per query vertex:
// |{v in G : l(v) = l(u), d(v) >= d(u)}|. The basis for root selection and
// path ordering, as in CFL-Match.
std::vector<double> EstimateCandidateCounts(const QueryGraph& q, const Graph& g);

// CFL-style root: argmin estimate(u) / deg(u).
VertexId SelectRoot(const QueryGraph& q, const Graph& g);

// Computes a tree-connected matching order under `policy`. The BFS tree is
// rooted at SelectRoot(q, g) for all policies so Fig. 15 isolates the order
// effect. `seed` only matters for kRandom.
StatusOr<MatchingOrder> ComputeMatchingOrder(const QueryGraph& q, const Graph& g,
                                             OrderPolicy policy,
                                             std::uint64_t seed = 0);

// Verifies that `order` is a permutation of V(q), starts at its own BFS-tree
// root, and respects t_q parent precedence. This is the precondition of the
// FAST engine and the CST partitioner.
Status ValidateOrder(const QueryGraph& q, const std::vector<VertexId>& order);

// All distinct tree-connected orders of q rooted at `root` (used by tests and
// the Fig. 15 BEST/WORST sweep on small queries). Caps output at `limit`.
std::vector<std::vector<VertexId>> EnumerateConnectedOrders(const QueryGraph& q,
                                                            VertexId root,
                                                            std::size_t limit = 10000);

}  // namespace fast

#endif  // FAST_QUERY_MATCHING_ORDER_H_
