#include "query/pattern.h"

#include <cctype>

#include "graph/graph.h"

namespace fast {

namespace {

class PatternParser {
 public:
  PatternParser(const std::string& text, const std::map<std::string, Label>& names)
      : text_(text), names_(names) {}

  StatusOr<QueryGraph> Parse(std::string query_name) {
    FAST_RETURN_IF_ERROR(ParseChain());
    SkipSpace();
    while (!AtEnd()) {
      if (!Consume(';')) return Error("expected ';' between chains");
      FAST_RETURN_IF_ERROR(ParseChain());
      SkipSpace();
    }
    GraphBuilder b;
    for (Label l : vertex_labels_) b.AddVertex(l);
    for (const auto& [u, v, label] : edges_) {
      FAST_RETURN_IF_ERROR(b.AddEdge(u, v, label));
    }
    FAST_ASSIGN_OR_RETURN(Graph g, b.Build());
    return QueryGraph::Create(std::move(g), std::move(query_name));
  }

 private:
  struct PendingEdge {
    VertexId u;
    VertexId v;
    Label label;
  };

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) {
    return Status::InvalidArgument("pattern error at offset " + std::to_string(pos_) +
                                   ": " + what);
  }

  StatusOr<std::string> ParseName() {
    SkipSpace();
    std::string name;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      name += text_[pos_++];
    }
    if (name.empty()) return Error("expected a name");
    return name;
  }

  StatusOr<Label> ParseLabel() {
    FAST_ASSIGN_OR_RETURN(std::string token, ParseName());
    if (std::isdigit(static_cast<unsigned char>(token[0]))) {
      return static_cast<Label>(std::stoul(token));
    }
    auto it = names_.find(token);
    if (it == names_.end()) return Error("unknown label name '" + token + "'");
    return it->second;
  }

  // '(' name (':' label)? ')'
  StatusOr<VertexId> ParseVertex() {
    if (!Consume('(')) return Error("expected '('");
    FAST_ASSIGN_OR_RETURN(std::string name, ParseName());
    bool has_label = false;
    Label label = 0;
    if (Consume(':')) {
      FAST_ASSIGN_OR_RETURN(label, ParseLabel());
      has_label = true;
    }
    if (!Consume(')')) return Error("expected ')'");

    auto it = vertex_ids_.find(name);
    if (it != vertex_ids_.end()) {
      if (has_label && vertex_labels_[it->second] != label) {
        return Error("conflicting label for vertex '" + name + "'");
      }
      return it->second;
    }
    if (!has_label) {
      return Error("first mention of vertex '" + name + "' needs a label");
    }
    const auto id = static_cast<VertexId>(vertex_labels_.size());
    vertex_ids_[name] = id;
    vertex_labels_.push_back(label);
    return id;
  }

  Status ParseChain() {
    FAST_ASSIGN_OR_RETURN(VertexId prev, ParseVertex());
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] == ';') break;
      if (!Consume('-')) return Error("expected '-'");
      Label edge_label = 0;
      if (Consume('[')) {
        if (!Consume(':')) return Error("expected ':' in edge label");
        FAST_ASSIGN_OR_RETURN(edge_label, ParseLabel());
        if (!Consume(']')) return Error("expected ']'");
        if (!Consume('-')) return Error("expected '-' after edge label");
      }
      FAST_ASSIGN_OR_RETURN(VertexId next, ParseVertex());
      if (next == prev) return Error("self-loop in pattern");
      edges_.push_back({prev, next, edge_label});
      prev = next;
    }
    return Status::OK();
  }

  const std::string& text_;
  const std::map<std::string, Label>& names_;
  std::size_t pos_ = 0;
  std::map<std::string, VertexId> vertex_ids_;
  std::vector<Label> vertex_labels_;
  std::vector<PendingEdge> edges_;
};

}  // namespace

StatusOr<QueryGraph> ParsePattern(const std::string& text,
                                  const std::map<std::string, Label>& label_names,
                                  std::string query_name) {
  PatternParser parser(text, label_names);
  return parser.Parse(std::move(query_name));
}

}  // namespace fast
