#ifndef FAST_QUERY_PATTERN_H_
#define FAST_QUERY_PATTERN_H_

// A tiny Cypher-flavoured pattern language for building query graphs, so
// downstream users (and the fast_match CLI) don't have to hand-author
// vertex/edge files:
//
//   pattern := chain (';' chain)*
//   chain   := vertex (edge vertex)*
//   vertex  := '(' name (':' label)? ')'
//   edge    := '-' ( '[' ':' label ']' '-' )?
//   label   := non-negative integer, or a name resolved via `label_names`
//
// Examples:
//   (a:Person)-(b:Person)-(c:Person); (a)-(c)        friend triangle
//   (p:0)-[:2]-(i:1)                                 labelled "likes" edge
//
// The first occurrence of a vertex name must carry a label; later mentions
// reuse it. Whitespace is insignificant.

#include <map>
#include <string>

#include "query/query_graph.h"
#include "util/status.h"

namespace fast {

StatusOr<QueryGraph> ParsePattern(
    const std::string& text,
    const std::map<std::string, Label>& label_names = {},
    std::string query_name = "pattern");

}  // namespace fast

#endif  // FAST_QUERY_PATTERN_H_
