#include "query/query_graph.h"

#include <deque>

#include "util/logging.h"

namespace fast {

StatusOr<QueryGraph> QueryGraph::Create(Graph graph, std::string name) {
  if (graph.NumVertices() == 0) {
    return Status::InvalidArgument("query graph must be non-empty");
  }
  if (graph.NumVertices() > kMaxQueryVertices) {
    return Status::InvalidArgument("query graph exceeds " +
                                   std::to_string(kMaxQueryVertices) + " vertices");
  }
  // Connectivity check (BFS from 0).
  std::vector<bool> seen(graph.NumVertices(), false);
  std::deque<VertexId> frontier{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    VertexId u = frontier.front();
    frontier.pop_front();
    for (VertexId w : graph.neighbors(u)) {
      if (!seen[w]) {
        seen[w] = true;
        ++visited;
        frontier.push_back(w);
      }
    }
  }
  if (visited != graph.NumVertices()) {
    return Status::InvalidArgument("query graph must be connected");
  }

  QueryGraph q;
  q.adjacency_mask_.assign(graph.NumVertices(), 0);
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (VertexId w : graph.neighbors(u)) {
      q.adjacency_mask_[u] |= (1ULL << w);
    }
  }
  q.graph_ = std::move(graph);
  q.name_ = std::move(name);
  return q;
}

BfsTree BfsTree::Build(const QueryGraph& q, VertexId root) {
  const std::size_t n = q.NumVertices();
  FAST_CHECK_LT(root, n);
  BfsTree t;
  t.root_ = root;
  t.parent_.assign(n, kInvalidVertex);
  t.children_.assign(n, {});
  t.non_tree_.assign(n, {});
  t.depth_.assign(n, 0);
  t.bfs_order_.reserve(n);

  std::vector<bool> seen(n, false);
  std::deque<VertexId> frontier{root};
  seen[root] = true;
  while (!frontier.empty()) {
    VertexId u = frontier.front();
    frontier.pop_front();
    t.bfs_order_.push_back(u);
    for (VertexId w : q.neighbors(u)) {
      if (!seen[w]) {
        seen[w] = true;
        t.parent_[w] = u;
        t.depth_[w] = t.depth_[u] + 1;
        t.children_[u].push_back(w);
        frontier.push_back(w);
      }
    }
  }
  FAST_CHECK_EQ(t.bfs_order_.size(), n);

  // Non-tree edges: query edges that are not parent-child in t_q.
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId w : q.neighbors(u)) {
      if (t.parent_[u] != w && t.parent_[w] != u) {
        t.non_tree_[u].push_back(w);
      }
    }
  }
  return t;
}

std::vector<std::vector<VertexId>> BfsTree::RootToLeafPaths() const {
  std::vector<std::vector<VertexId>> paths;
  std::vector<VertexId> current;
  // Iterative DFS over the tree, emitting the path at each leaf.
  struct Frame {
    VertexId u;
    std::size_t next_child;
  };
  std::vector<Frame> stack{{root_, 0}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_child == 0 && f.u != root_) current.push_back(f.u);
    if (f.next_child < children_[f.u].size()) {
      VertexId c = children_[f.u][f.next_child++];
      stack.push_back({c, 0});
    } else {
      if (IsLeaf(f.u)) paths.push_back(current);
      if (f.u != root_ && !current.empty()) current.pop_back();
      stack.pop_back();
    }
  }
  return paths;
}

}  // namespace fast
