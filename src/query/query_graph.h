#ifndef FAST_QUERY_QUERY_GRAPH_H_
#define FAST_QUERY_QUERY_GRAPH_H_

// Query-side graph representation.
//
// Query graphs are tiny (the paper's q0..q8 have 4-6 vertices), so on top of
// the shared CSR Graph we keep a dense adjacency bitmask per vertex for O(1)
// edge checks during enumeration, and a name for reporting.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace fast {

// Maximum number of query vertices supported (bitmask row width).
inline constexpr std::size_t kMaxQueryVertices = 64;

class QueryGraph {
 public:
  QueryGraph() = default;

  // Wraps a small labelled graph as a query. Fails if the graph has more
  // than kMaxQueryVertices vertices, is empty, or is disconnected
  // (Sec. II-A assumes connected queries).
  static StatusOr<QueryGraph> Create(Graph graph, std::string name = "q");

  const Graph& graph() const { return graph_; }
  const std::string& name() const { return name_; }

  std::size_t NumVertices() const { return graph_.NumVertices(); }
  std::size_t NumEdges() const { return graph_.NumEdges(); }
  Label label(VertexId u) const { return graph_.label(u); }
  std::uint32_t degree(VertexId u) const { return graph_.degree(u); }
  std::span<const VertexId> neighbors(VertexId u) const { return graph_.neighbors(u); }

  // O(1) adjacency test via bitmask rows.
  bool HasEdge(VertexId u, VertexId v) const {
    return (adjacency_mask_[u] >> v) & 1ULL;
  }

  // Bitmask of u's neighbors.
  std::uint64_t NeighborMask(VertexId u) const { return adjacency_mask_[u]; }

  // Edge-labelled queries (Sec. II-A extension): label required on query
  // edge (u, w); 0 for unlabelled queries.
  bool has_edge_labels() const { return graph_.has_edge_labels(); }
  Label EdgeLabel(VertexId u, VertexId w) const {
    return graph_.EdgeLabelBetween(u, w);
  }

 private:
  Graph graph_;
  std::string name_;
  std::vector<std::uint64_t> adjacency_mask_;
};

// BFS spanning tree t_q of a query graph rooted at `root` (Sec. V-A).
//
// Classifies every query edge as tree or non-tree, and records, for each
// vertex u, its parent, children, and non-tree neighbors u_n
// ((u, u_n) in E(q) \ E(t_q)).
class BfsTree {
 public:
  BfsTree() = default;

  static BfsTree Build(const QueryGraph& q, VertexId root);

  VertexId root() const { return root_; }
  // Parent of u in t_q; kInvalidVertex for the root.
  VertexId parent(VertexId u) const { return parent_[u]; }
  const std::vector<VertexId>& children(VertexId u) const { return children_[u]; }
  // Non-tree neighbors of u (both directions of each non-tree edge listed).
  const std::vector<VertexId>& non_tree_neighbors(VertexId u) const {
    return non_tree_[u];
  }
  // Vertices in BFS visitation order (root first).
  const std::vector<VertexId>& bfs_order() const { return bfs_order_; }
  // Depth of u (root = 0).
  std::uint32_t depth(VertexId u) const { return depth_[u]; }
  std::size_t NumVertices() const { return parent_.size(); }
  bool IsLeaf(VertexId u) const { return children_[u].empty(); }

  // Root-to-leaf paths of t_q, each path listed root-exclusive from depth 1
  // down to a leaf. Used by the path-based matching order.
  std::vector<std::vector<VertexId>> RootToLeafPaths() const;

 private:
  VertexId root_ = kInvalidVertex;
  std::vector<VertexId> parent_;
  std::vector<std::vector<VertexId>> children_;
  std::vector<std::vector<VertexId>> non_tree_;
  std::vector<VertexId> bfs_order_;
  std::vector<std::uint32_t> depth_;
};

}  // namespace fast

#endif  // FAST_QUERY_QUERY_GRAPH_H_
