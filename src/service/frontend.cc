#include "service/frontend.h"

#include <utility>

namespace fast::service {

std::uint64_t RequestLedger::Add(const std::shared_ptr<Slot>& slot) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_id_++;
  // Callback-mode requests are delivered on the worker thread and never
  // looked up again; keeping them out of the map keeps Wait's NOT_FOUND
  // contract ("unknown or already delivered") uniform.
  if (!slot->on_complete) waitable_.emplace(id, slot);
  return id;
}

void RequestLedger::Forget(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  waitable_.erase(id);
}

StatusOr<RequestResult> RequestLedger::Wait(std::uint64_t id) {
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = waitable_.find(id);
    if (it == waitable_.end()) {
      return Status::NotFound("unknown or already-waited request id");
    }
    slot = it->second;
    waitable_.erase(it);  // once-only: a second Wait finds nothing
  }
  std::unique_lock<std::mutex> lock(slot->mu);
  slot->cv.wait(lock, [&] { return slot->done; });
  return std::move(slot->result);
}

void RequestLedger::Deliver(std::uint64_t id, const std::shared_ptr<Slot>& slot,
                            RequestResult result) {
  if (slot->on_complete) {
    // Worker-thread delivery; the slot is not in the waitable map, so the
    // callback is the only consumer and runs exactly once.
    slot->on_complete(id, result);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->result = std::move(result);
    slot->done = true;
  }
  slot->cv.notify_all();
}

StatusOr<RequestResult> Frontend::SubmitAndWait(const SessionKey& session,
                                                const QueryGraph& q,
                                                RequestOptions opts) {
  FAST_ASSIGN_OR_RETURN(const RequestId id, Submit(session, q, std::move(opts)));
  FAST_ASSIGN_OR_RETURN(RequestResult result, Wait(id));
  // Flatten the execution outcome into the outer Status so callers check one
  // place for "did this query succeed" (admission errors and execution errors
  // surface identically).
  FAST_RETURN_IF_ERROR(result.status);
  return result;
}

}  // namespace fast::service
