#ifndef FAST_SERVICE_FRONTEND_H_
#define FAST_SERVICE_FRONTEND_H_

// Transport-agnostic request-session surface.
//
// MatchService (one graph behind its own pool) and tenant::TenantRouter (many
// graphs behind one shared pool) expose the same session lifecycle: admit a
// query, queue it, execute it on a captured snapshot, deliver a
// RequestResult. Frontend is that lifecycle as one interface, so everything
// in front of a service — the CLI replay loops, the serving benches, and the
// wire protocol in src/net/ — is written once against Frontend and runs
// unchanged over either backend:
//
//     callers / net::WireServer / benches
//                  │  Submit(SessionKey, QueryGraph, RequestOptions)
//                  ▼
//            ┌──────────┐     MatchService   (session key ignored: one graph)
//            │ Frontend │ ◀──
//            └──────────┘     TenantRouter   (session key = tenant id)
//
// Sessions: a SessionKey names the graph a request is routed to. It is the
// tenant id for TenantRouter (NOT_FOUND when unknown) and advisory for
// MatchService, which serves every session from its one graph. The wire
// protocol carries the session key in every frame header as the routing key.
//
// Delivery: exactly one of
//   - blocking: Wait(id) returns the result once; a second Wait (or an
//     unknown id) is NOT_FOUND on the *outer* StatusOr, so a caller can
//     never mistake the sentinel for a real result (RequestResult::status
//     still carries the execution outcome: OK, DEADLINE_EXCEEDED, ...);
//   - callback: a RequestOptions::on_complete registered at Submit is
//     invoked exactly once on the finishing worker thread; such requests are
//     never waitable (Wait returns NOT_FOUND). This is the asynchronous mode
//     the wire server uses — no connection thread ever blocks in Wait.
// Streamed embeddings flow through RequestOptions::on_embedding in both
// modes (the wire server turns them into EMBEDDING frames).

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "core/driver.h"
#include "device/device_executor.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/request_obs.h"
#include "obs/slo.h"
#include "query/query_graph.h"
#include "service/graph_state.h"
#include "util/status.h"

namespace fast::service {

// Names the graph a request is routed to: the tenant id under TenantRouter,
// advisory (any value accepted) under MatchService. Empty = the default
// session.
using SessionKey = std::string;

// ---- Shared serving options. ----
//
// ServiceOptions, RouterOptions, and TenantOptions used to each re-declare
// their overlapping fields; the shared fields now live in exactly one place
// and the per-backend structs *inherit* them, so every existing
// `options.num_workers = ...` call site still compiles. All three structs are
// deliberately NOT aggregates (the defaulted constructors below are
// user-declared, which in C++20 disqualifies aggregate initialization):
// positional brace-initialization silently mis-assigning fields across a
// refactor is a bug class this family has been bitten by before, so it is a
// compile error here — set fields by name.

struct CommonServingOptions {
  CommonServingOptions() = default;

  // Worker threads executing the pipeline; 0 = hardware concurrency.
  std::size_t num_workers = 0;

  // Bound of the (global) request queue; admission beyond it rejects the
  // Submit with RESOURCE_EXHAUSTED.
  std::size_t queue_capacity = 256;

  // Default per-request deadline in seconds; 0 = no deadline.
  double default_deadline_seconds = 0.0;

  // Base pipeline configuration (variant, device model, cpu-share δ, order
  // policy). Per-request fields override its store_limit/embedding_callback.
  FastRunOptions run;

  // Shared-device mode (device/device_executor.h): workers decompose each
  // request into CST-partition work items on ONE device executor, which
  // batches items from concurrent requests (and tenants) into shared device
  // rounds. The executor simulates run.fpga under run.variant;
  // run.cpu_share_delta is ignored in this mode.
  bool device_mode = false;
  device::DeviceOptions device;

  // ---- Observability (src/obs/). ----
  // Process-wide metrics registry every component reports into. Non-owning;
  // must outlive the service. nullptr = registry metrics off.
  obs::MetricsRegistry* metrics = nullptr;
  // Per-request span tracing (obs/trace.h).
  bool tracing = true;
  // Requests slower than this are FAST_LOG(WARNING)-ed with their span
  // breakdown and retained in the slow-trace ring. 0 disables.
  double slow_request_seconds = 0.0;
  // Capacity of the recent-trace ring (the slow ring uses the same).
  std::size_t trace_ring_capacity = 256;
  // Per-tenant SLO objectives (obs/slo.h): a request is good when it
  // finishes OK within slo.latency_objective_seconds; multi-window burn
  // rates per tenant, breach/recovery counters in the registry.
  // latency_objective_seconds == 0 leaves the engine off.
  obs::SloOptions slo;
  // Flight recorder for SLO breaches (obs/slo.h): one bounded, rate-limited
  // JSON dump (registry snapshot + trace rings + account table) per breach.
  // An empty dir leaves it off.
  obs::FlightRecorderOptions flight;
};
static_assert(!std::is_aggregate_v<CommonServingOptions>,
              "CommonServingOptions must not be positionally brace-initializable");

// Per-graph plan/CST cache budget, shared by ServiceOptions (the single
// graph) and tenant::TenantOptions (each tenant's graph).
struct PlanCacheOptions {
  PlanCacheOptions() = default;

  // Plan/CST cache entries; 0 disables caching.
  std::size_t plan_cache_capacity = 64;

  // Byte bound on the summed serialized-CST cache images; 0 = entries-only.
  std::size_t plan_cache_byte_budget = 0;
};
static_assert(!std::is_aggregate_v<PlanCacheOptions>,
              "PlanCacheOptions must not be positionally brace-initializable");

// ---- Request delivery ledger. ----
//
// The id → in-flight bookkeeping both frontends used to duplicate: id
// allocation, the waitable map, blocking Wait with once-only semantics, and
// completion-callback delivery. Thread-safe.
class RequestLedger {
 public:
  // One request's delivery slot. The delivery mode is fixed at admission:
  // a non-null on_complete means the finishing worker invokes it (exactly
  // once) and the request is never waitable.
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    RequestResult result;
    std::function<void(std::uint64_t, const RequestResult&)> on_complete;
  };

  // Allocates the request id and, for callback-less slots, registers it for
  // Wait.
  std::uint64_t Add(const std::shared_ptr<Slot>& slot);

  // Withdraws an id whose admission failed after Add (e.g. queue full).
  void Forget(std::uint64_t id);

  // Blocks until the request completes and returns its result. Each id
  // resolves exactly once; unknown, already-waited, and callback-mode ids
  // are NOT_FOUND.
  StatusOr<RequestResult> Wait(std::uint64_t id);

  // Delivers the result: invokes the slot's callback on this (worker)
  // thread, or publishes it for Wait.
  static void Deliver(std::uint64_t id, const std::shared_ptr<Slot>& slot,
                      RequestResult result);

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Slot>> waitable_;
  std::uint64_t next_id_ = 1;
};

// ---- The session interface. ----
class Frontend {
 public:
  using RequestId = std::uint64_t;

  virtual ~Frontend() = default;

  // Canonicalizes q and enqueues it for the session's graph. Fails fast with
  // RESOURCE_EXHAUSTED when admission control rejects (queue full or tenant
  // quota), NOT_FOUND for an unknown session (multi-tenant backends),
  // INVALID_ARGUMENT for malformed queries, FAILED_PRECONDITION after
  // Shutdown. opts carries the per-request deadline, the streamed-embedding
  // sink, and the optional completion callback.
  virtual StatusOr<RequestId> Submit(const SessionKey& session,
                                     const QueryGraph& q,
                                     RequestOptions opts = {}) = 0;

  // Blocks until the request completes. NOT_FOUND (outer status) for
  // unknown, already-waited, or callback-mode ids; the returned
  // RequestResult's own status carries the execution outcome.
  virtual StatusOr<RequestResult> Wait(RequestId id) = 0;

  // Submit + Wait; the returned Status covers admission and execution.
  // Implemented here once — this is the collapse of the two per-backend
  // SubmitAndWait copies.
  StatusOr<RequestResult> SubmitAndWait(const SessionKey& session,
                                        const QueryGraph& q,
                                        RequestOptions opts = {});

  // Stops admission, drains queued requests, joins workers. Idempotent.
  virtual void Shutdown() = 0;

  // Requests queued but not yet dispatched (periodic-sampler probe and the
  // wire server's flow-control hint).
  virtual std::size_t queue_depth() const = 0;

  // ---- Admin-plane surfaces (src/net/admin_http.h). ----

  // The finish-side observability bundle: trace rings, per-tenant resource
  // accounts, SLO burn-rate state. Both backends own one; the default is
  // for Frontend fakes in tests.
  virtual const obs::RequestObs* request_obs() const { return nullptr; }

  // Readiness for /healthz: accepting work (not shut down) and every
  // registered graph has published a snapshot (epoch > 0).
  virtual bool ready() const { return true; }

  // Recent device rounds for the /timeline/chrome synthetic device track.
  // Empty outside device mode (and for Frontend fakes).
  virtual std::vector<obs::TimelineRound> device_rounds() const { return {}; }
};

}  // namespace fast::service

#endif  // FAST_SERVICE_FRONTEND_H_
