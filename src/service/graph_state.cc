#include "service/graph_state.h"

#include <optional>
#include <utility>
#include <vector>

#include "cst/cst_serialize.h"
#include "device/device_executor.h"
#include "obs/profiler.h"
#include "query/matching_order.h"
#include "util/timer.h"

namespace fast::service {

namespace {

bool IsIdentity(const std::vector<VertexId>& perm) {
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != i) return false;
  }
  return true;
}

// Remaps an embedding from canonical numbering back to the submitted
// numbering: submitted vertex u matched canonical position to_canonical[u].
void RemapEmbedding(const std::vector<VertexId>& to_canonical,
                    std::span<const VertexId> canonical, Embedding* out) {
  out->resize(to_canonical.size());
  for (std::size_t u = 0; u < to_canonical.size(); ++u) {
    (*out)[u] = canonical[to_canonical[u]];
  }
}

}  // namespace

GraphState::GraphState(Graph graph, const GraphStateOptions& options)
    : options_(options),
      cache_(options.plan_cache_capacity, options.plan_cache_byte_budget),
      graph_(std::make_shared<const Graph>(std::move(graph))) {
  if (options_.metrics != nullptr) {
    cache_.BindMetrics(options_.metrics);
    swaps_counter_ = options_.metrics->GetCounter(
        "fast_graph_swaps_total", "Graph snapshots published (swaps + deltas)");
    epoch_gauge_ = options_.metrics->GetGauge(
        "fast_graph_epoch", "Most recently published graph epoch");
    epoch_gauge_->Set(static_cast<double>(epoch_));
  }
}

GraphSnapshot GraphState::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return {graph_, epoch_};
}

std::uint64_t GraphState::graph_swaps() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return graph_swaps_;
}

void GraphState::publication_stats(std::uint64_t* epoch,
                                   std::uint64_t* swaps) const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  *epoch = epoch_;
  *swaps = graph_swaps_;
}

std::uint64_t GraphState::Publish(Graph next) {
  auto published = std::make_shared<const Graph>(std::move(next));
  std::uint64_t new_epoch;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    graph_ = std::move(published);
    new_epoch = ++epoch_;
    ++graph_swaps_;
  }
  // Eager reclamation only: stale plans that race past this are caught by
  // the per-key epoch tag in Lookup.
  cache_.InvalidateBefore(new_epoch);
  if (swaps_counter_ != nullptr) swaps_counter_->Increment();
  if (epoch_gauge_ != nullptr) epoch_gauge_->Set(static_cast<double>(new_epoch));
  return new_epoch;
}

std::uint64_t GraphState::SwapGraph(Graph next) {
  std::lock_guard<std::mutex> writers(swap_mu_);
  return Publish(std::move(next));
}

StatusOr<std::uint64_t> GraphState::ApplyDelta(const GraphDelta& delta) {
  // One writer at a time, so the rebuild base cannot be superseded mid-apply;
  // queries keep dispatching against the current snapshot throughout.
  std::lock_guard<std::mutex> writers(swap_mu_);
  GraphSnapshot base = snapshot();
  FAST_ASSIGN_OR_RETURN(Graph next, fast::ApplyDelta(*base.graph, delta));
  return Publish(std::move(next));
}

void GraphState::Serve(const CanonicalQuery& canonical,
                       const RequestOptions& opts,
                       const FastRunOptions& base_run, double queue_seconds,
                       double deadline_seconds, device::DeviceExecutor* device,
                       obs::RequestTrace* trace, RequestResult* result) {
  result->queue_seconds = queue_seconds;
  if (deadline_seconds > 0.0 && queue_seconds > deadline_seconds) {
    result->status = Status::DeadlineExceeded("deadline passed while queued");
    return;
  }
  // Arm mid-run cancellation with whatever deadline remains; the token lives
  // on this worker's stack for the duration of the run.
  CancelToken deadline_token;
  const CancelToken* cancel = base_run.cancel;
  if (deadline_seconds > 0.0) {
    deadline_token.ArmDeadline(deadline_seconds - queue_seconds);
    cancel = &deadline_token;
  }
  // Capture the snapshot once at dispatch: the whole request — cache
  // lookup, build, run — sees one consistent {graph, epoch}, regardless
  // of concurrent swaps.
  if (trace != nullptr) trace->Begin(obs::Span::kSnapshot);
  const GraphSnapshot snap = snapshot();
  if (trace != nullptr) trace->End();
  result->graph_epoch = snap.epoch;
  Execute(canonical, opts, snap, base_run, cancel, device, trace, result);
}

void GraphState::Execute(const CanonicalQuery& canonical,
                         const RequestOptions& opts, const GraphSnapshot& snap,
                         const FastRunOptions& base_run,
                         const CancelToken* cancel,
                         device::DeviceExecutor* device,
                         obs::RequestTrace* trace, RequestResult* result) {
  FastRunOptions run = base_run;
  run.explicit_order.reset();
  run.store_limit = opts.store_limit;
  run.cancel = cancel;
  // The pipeline below records its own spans (match / device_wait / the
  // simulated dma+kernel) through this pointer.
  run.trace = trace;

  const std::vector<VertexId>& to_canonical = canonical.to_canonical;
  const bool identity = IsIdentity(to_canonical);
  // Per-request callback overrides the base-config one; either way the
  // callback must observe embeddings in the submitted numbering, so wrap it
  // with the canonical->submitted remap when the permutation is non-trivial.
  const std::function<void(std::span<const VertexId>)>& callback =
      opts.on_embedding ? opts.on_embedding : base_run.embedding_callback;
  if (callback) {
    if (identity) {
      run.embedding_callback = callback;
    } else {
      run.embedding_callback = [&callback, &to_canonical,
                                scratch = Embedding()](
                                   std::span<const VertexId> emb) mutable {
        RemapEmbedding(to_canonical, emb, &scratch);
        callback(scratch);
      };
    }
  }

  StatusOr<FastRunResult> r = Status::Internal("unreachable");
  bool ran_from_cache = false;
  if (options_.plan_cache_capacity > 0) {
    if (trace != nullptr) trace->Begin(obs::Span::kPlanLookup);
    std::shared_ptr<const CachedPlan> plan;
    {
      FAST_PROF_STAGE("plan_lookup");
      plan = cache_.Lookup(canonical.key, snap.epoch);
    }
    if (trace != nullptr) trace->End();
    if (plan != nullptr) {
      if (plan->order_only()) {
        // Order-only hit (the full image was over the byte budget): reuse
        // the cached matching order and rebuild only the CST against this
        // request's snapshot.
        if (run.cancel != nullptr && run.cancel->Cancelled()) {
          ran_from_cache = true;
          r = Status::DeadlineExceeded("deadline expired before CST rebuild");
        } else {
          if (trace != nullptr) trace->Begin(obs::Span::kCstBuild);
          Timer build_timer;
          StatusOr<Cst> cst = Status::Internal("unreachable");
          {
            FAST_PROF_STAGE("cst_build");
            cst = BuildCst(canonical.query, *snap.graph, plan->order.root,
                           run.cst_build);
          }
          if (trace != nullptr) trace->End();
          if (cst.ok()) {
            ran_from_cache = true;
            result->cache_hit = true;
            r = Dispatch(*cst, plan->order, canonical, snap, run, device,
                         build_timer.ElapsedSeconds());
          }
        }
      } else {
        // Cache hit: rebuild the CST from the serialized image (the same
        // flat words that would cross PCIe), skipping order computation and
        // Alg. 1 construction entirely. The image decode is this request's
        // whole "cst_build" phase.
        if (trace != nullptr) trace->Begin(obs::Span::kCstBuild);
        StatusOr<Cst> cst = Status::Internal("unreachable");
        {
          FAST_PROF_STAGE("cst_build");
          cst = DeserializeCst(plan->layout, plan->cst_image);
        }
        if (trace != nullptr) trace->End();
        if (cst.ok()) {
          ran_from_cache = true;
          result->cache_hit = true;
          r = Dispatch(*cst, plan->order, canonical, snap, run, device,
                       /*build_seconds=*/0.0);
        }
        // A corrupt image falls through to a fresh build below (and its
        // Insert replaces the bad entry) instead of failing every hit.
      }
    }
  }
  if (!ran_from_cache) {
    r = BuildAndRun(canonical, snap, run, device, &result->plan_bytes_charged);
  }

  if (!r.ok()) {
    result->status = r.status();
    return;
  }
  result->run = std::move(*r);
  {
    obs::ScopedSpan remap_span(trace, obs::Span::kRemap);
    FAST_PROF_STAGE("remap");
    if (!identity) {
      // Everything client-visible is reported in the submitted numbering: the
      // sample embeddings and the matching order (root + visit sequence).
      for (Embedding& e : result->run.sample_embeddings) {
        Embedding remapped;
        RemapEmbedding(to_canonical, e, &remapped);
        e = std::move(remapped);
      }
      std::vector<VertexId> from_canonical(to_canonical.size());
      for (std::size_t u = 0; u < to_canonical.size(); ++u) {
        from_canonical[to_canonical[u]] = static_cast<VertexId>(u);
      }
      result->run.order.root = from_canonical[result->run.order.root];
      for (VertexId& v : result->run.order.order) v = from_canonical[v];
    }
  }
}

StatusOr<FastRunResult> GraphState::Dispatch(const Cst& cst,
                                             const MatchingOrder& order,
                                             const CanonicalQuery& canonical,
                                             const GraphSnapshot& snap,
                                             const FastRunOptions& run,
                                             device::DeviceExecutor* device,
                                             double build_seconds) {
  if (device != nullptr) {
    // Shared-device mode: partitions are matched in cross-query batches on
    // the executor. The canonical key + epoch identify the CST image, so
    // concurrent requests for the same shape share one PCIe transfer.
    return device::RunCstOnDevice(*device, cst, order, run,
                                  options_.device_queue_key, snap.epoch,
                                  canonical.key, build_seconds);
  }
  FAST_PROF_STAGE("match");
  return RunFastWithCst(cst, order, run, build_seconds);
}

StatusOr<FastRunResult> GraphState::BuildAndRun(
    const CanonicalQuery& canonical, const GraphSnapshot& snap,
    const FastRunOptions& run, device::DeviceExecutor* device,
    std::uint64_t* plan_bytes_charged) {
  // Cache miss (or cache disabled): compute the order and build the CST for
  // the canonical query against this request's snapshot, publish the plan
  // under the snapshot's epoch, then run the pipeline from it.
  const QueryGraph& q = canonical.query;
  const Graph& g = *snap.graph;
  // One cst_build span covers order computation, Alg. 1 construction, and
  // the serialize+insert that publishes the plan; an early error return
  // leaves the span open and RequestTrace::Finish closes it.
  if (run.trace != nullptr) run.trace->Begin(obs::Span::kCstBuild);
  // Optional so the stage closes before Dispatch (whose own stages must not
  // nest under cst_build); early error returns destroy it too.
  std::optional<obs::StageScope> build_stage;
  build_stage.emplace("cst_build");
  FAST_ASSIGN_OR_RETURN(MatchingOrder order,
                        ComputeMatchingOrder(q, g, run.order_policy));
  if (run.cancel != nullptr && run.cancel->Cancelled()) {
    return Status::DeadlineExceeded("deadline expired before CST build");
  }
  Timer build_timer;
  FAST_ASSIGN_OR_RETURN(Cst cst, BuildCst(q, g, order.root, run.cst_build));
  const double build_seconds = build_timer.ElapsedSeconds();

  if (options_.plan_cache_capacity > 0) {
    auto plan = std::make_shared<CachedPlan>();
    plan->order = order;
    plan->layout = cst.layout_ptr();
    plan->cst_image = SerializeCst(cst);
    *plan_bytes_charged = plan->ImageBytes();
    cache_.Insert(canonical.key, snap.epoch, std::move(plan));
  }
  if (run.trace != nullptr) run.trace->End();
  build_stage.reset();
  return Dispatch(cst, order, canonical, snap, run, device, build_seconds);
}

}  // namespace fast::service
