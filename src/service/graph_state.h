#ifndef FAST_SERVICE_GRAPH_STATE_H_
#define FAST_SERVICE_GRAPH_STATE_H_

// Per-graph serving state, factored out of MatchService so that one worker
// pool can serve many graphs (tenant::TenantRouter) while the single-graph
// service keeps its original API.
//
// A GraphState bundles everything that is *about one data graph* and nothing
// about pools or queues:
//
//   - the epoch-snapshotted graph: a shared_ptr<const Graph> published under
//     a monotone epoch; SwapGraph/ApplyDelta build the next snapshot off-line
//     and publish it atomically while in-flight requests drain on the
//     snapshot they captured (the old graph is freed when its last request
//     drops the shared_ptr);
//   - the epoch-tagged plan/CST cache (plan_cache.h), invalidated eagerly on
//     publish and re-checked per hit;
//   - request execution: canonical-query cache lookup, build-and-run, and
//     the remap of every client-visible vertex reference back to the
//     submitted numbering.
//
// Serve() is the single entry point a worker calls after dequeuing a
// request: it enforces the deadline at dispatch, arms a cooperative
// cancellation token with the remaining deadline (util/cancel.h) so an
// oversized query aborts mid-run, captures the snapshot once, and executes.
// GraphState is internally synchronized; concurrent Serve/Swap/ApplyDelta
// calls from any number of workers and writers are safe.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>

#include "core/driver.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/plan_cache.h"
#include "service/query_signature.h"
#include "util/cancel.h"
#include "util/status.h"

namespace fast::device {
class DeviceExecutor;
}  // namespace fast::device

namespace fast::service {

// An immutable published snapshot: the graph plus the epoch it was published
// under. Copyable; holding one keeps the graph alive across any number of
// swaps.
struct GraphSnapshot {
  std::shared_ptr<const Graph> graph;
  std::uint64_t epoch = 0;
};

struct RequestResult;

struct RequestOptions {
  // Sample-embedding mode: retain up to this many embeddings (remapped to
  // the submitted numbering). 0 = count-only.
  std::size_t store_limit = 0;

  // Overrides the service-level default deadline when >= 0.
  double deadline_seconds = -1.0;

  // Streaming per-embedding callback, invoked on the worker thread with the
  // mapping in the submitted numbering. Must be thread-safe if the same
  // callable is shared across requests.
  std::function<void(std::span<const VertexId>)> on_embedding;

  // Completion callback, invoked exactly once on the finishing worker thread
  // with (request id, result). A request submitted with a callback is never
  // waitable — Frontend::Wait on its id returns NOT_FOUND. This is the
  // asynchronous delivery mode the wire server (src/net/) runs on. The
  // callback must not re-enter the service it was registered with.
  std::function<void(std::uint64_t, const RequestResult&)> on_complete;

  // Resumes a trace the transport layer started before Submit (anchored at
  // frame receive, already carrying recv/decode spans) instead of starting a
  // fresh one at admission, so wire-path spans land in the same per-request
  // trace as the service-side ones. Null = the service starts its own trace.
  std::shared_ptr<obs::RequestTrace> resume_trace;
};

struct RequestResult {
  Status status = Status::OK();  // DEADLINE_EXCEEDED, pipeline errors, ...
  // Valid iff status.ok(). Client-visible vertex references
  // (sample_embeddings, order.root, order.order) are in the numbering of
  // the *submitted* query, even when the plan ran in canonical numbering.
  FastRunResult run;
  bool cache_hit = false;
  // Epoch of the graph snapshot this request ran on (captured at dispatch).
  // 0 for requests that never dispatched (e.g. queued past their deadline);
  // a request cancelled *mid-run* by its deadline reports the epoch it ran
  // on, distinguishing the two DEADLINE_EXCEEDED cases.
  std::uint64_t graph_epoch = 0;
  double queue_seconds = 0.0;  // Submit -> dispatch
  double total_seconds = 0.0;  // Submit -> completion
  // Serialized CST image bytes this request inserted into the plan cache
  // (0 on a hit or with caching off) — the plan-cache dimension of the
  // request's resource-account charge (obs/accounting.h).
  std::uint64_t plan_bytes_charged = 0;
  // Per-span latency breakdown of this request (obs/trace.h); null when the
  // service ran with tracing disabled. Shared with the service's recent- and
  // slow-trace rings.
  std::shared_ptr<const obs::CompletedTrace> trace;
};

struct GraphStateOptions {
  // Plan/CST cache entries; 0 disables caching.
  std::size_t plan_cache_capacity = 64;
  // Byte bound on the summed serialized-CST images; 0 = entries-only bound.
  std::size_t plan_cache_byte_budget = 0;
  // Fairness-queue key on a shared device executor (the tenant id when this
  // state serves one tenant of a TenantRouter). Only used in device mode.
  std::string device_queue_key = "default";
  // Process-wide metrics registry (obs/metrics.h) the state reports into:
  // graph-swap counts, published epoch, and plan-cache traffic. Non-owning;
  // must outlive the state. nullptr = no registry reporting. NOTE: appended
  // last — existing call sites brace-initialize this struct positionally.
  obs::MetricsRegistry* metrics = nullptr;
};

class GraphState {
 public:
  // Takes ownership of the data graph and publishes it as epoch 1.
  GraphState(Graph graph, const GraphStateOptions& options);

  GraphState(const GraphState&) = delete;
  GraphState& operator=(const GraphState&) = delete;

  // The currently published snapshot. The returned graph stays valid for as
  // long as the caller holds the shared_ptr.
  GraphSnapshot snapshot() const;
  std::uint64_t epoch() const { return snapshot().epoch; }
  std::uint64_t graph_swaps() const;

  // Epoch and swap count read under ONE lock acquisition, so the pair is
  // mutually consistent (swaps == epoch - 1 always holds) even while a
  // writer is publishing.
  void publication_stats(std::uint64_t* epoch, std::uint64_t* swaps) const;

  // Atomically publishes `next` as the new snapshot under the next epoch and
  // invalidates cached plans for older epochs. Requests dispatched before
  // the publish finish on the snapshot they captured; requests dispatched
  // after run on `next`. Writers are serialized; queries are never blocked
  // by a swap. Returns the newly published epoch.
  std::uint64_t SwapGraph(Graph next);

  // Rebuilds a fresh CSR off-line from {current snapshot + delta} (see
  // graph/graph_delta.h for the batch semantics), then publishes it as with
  // SwapGraph. The rebuild runs outside any lock that queries touch.
  StatusOr<std::uint64_t> ApplyDelta(const GraphDelta& delta);

  // Serves one dequeued request end-to-end: dispatch-time deadline check
  // (status DEADLINE_EXCEEDED with graph_epoch 0 when the deadline passed
  // while queued), mid-run cancellation armed with the remaining deadline,
  // snapshot capture, cache lookup, build/run, and result remap. base_run is
  // the service-level pipeline configuration; per-request fields
  // (store_limit, callback, cancel) are overridden from `opts`. A non-null
  // `device` routes partition matching to the shared device executor
  // (device/device_executor.h) under this state's device_queue_key instead
  // of running it inline on the calling thread; result reassembly and the
  // canonical-numbering remap are identical either way. A non-null `trace`
  // records the execution-side spans (snapshot, plan_lookup, cst_build,
  // match/device_wait, remap); the caller owns it and folds it into the
  // result after classification.
  void Serve(const CanonicalQuery& canonical, const RequestOptions& opts,
             const FastRunOptions& base_run, double queue_seconds,
             double deadline_seconds, device::DeviceExecutor* device,
             obs::RequestTrace* trace, RequestResult* result);

  PlanCacheStats cache_stats() const { return cache_.stats(); }

 private:
  void Execute(const CanonicalQuery& canonical, const RequestOptions& opts,
               const GraphSnapshot& snap, const FastRunOptions& base_run,
               const CancelToken* cancel, device::DeviceExecutor* device,
               obs::RequestTrace* trace, RequestResult* result);
  StatusOr<FastRunResult> BuildAndRun(const CanonicalQuery& canonical,
                                      const GraphSnapshot& snap,
                                      const FastRunOptions& run,
                                      device::DeviceExecutor* device,
                                      std::uint64_t* plan_bytes_charged);
  // Runs the pipeline from a ready CST + order: inline on this thread, or on
  // the shared device executor when `device` is non-null.
  StatusOr<FastRunResult> Dispatch(const Cst& cst, const MatchingOrder& order,
                                   const CanonicalQuery& canonical,
                                   const GraphSnapshot& snap,
                                   const FastRunOptions& run,
                                   device::DeviceExecutor* device,
                                   double build_seconds);
  std::uint64_t Publish(Graph next);

  const GraphStateOptions options_;
  PlanCache cache_;
  // Registry metrics bound once at construction (null without a registry).
  obs::Counter* swaps_counter_ = nullptr;
  obs::Gauge* epoch_gauge_ = nullptr;

  // Snapshot publication. snapshot_mu_ only guards the {pointer, epoch}
  // pair — never held while building a graph or running a query.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const Graph> graph_;
  std::uint64_t epoch_ = 1;
  std::uint64_t graph_swaps_ = 0;
  // Serializes writers so each delta applies to the snapshot it read.
  std::mutex swap_mu_;
};

}  // namespace fast::service

#endif  // FAST_SERVICE_GRAPH_STATE_H_
