#include "service/match_service.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <utility>

#include "obs/profiler.h"
#include "service/query_signature.h"

namespace fast::service {

struct MatchService::Request {
  RequestId id = 0;
  CanonicalQuery canonical;
  RequestOptions opts;
  double deadline_seconds = 0.0;  // resolved; 0 = none
  Timer submitted;
  // Span recorder (null when tracing is off). Recorded on the client thread
  // up to the queue push, then exclusively on the worker that popped the
  // request — the queue handoff orders the two. shared_ptr because a
  // transport front end may have started it before Submit (resume_trace).
  std::shared_ptr<obs::RequestTrace> trace;
  // Delivery slot (Wait or completion callback) in the ledger.
  std::shared_ptr<RequestLedger::Slot> slot;
};

std::string ServiceStats::Summary() const {
  char buf[400];
  std::snprintf(buf, sizeof(buf),
                "qps=%.1f completed=%llu failed=%llu rejected(queue=%llu "
                "deadline=%llu) cancelled_midrun=%llu epoch=%llu swaps=%llu "
                "cache(hit_rate=%.1f%% entries=%zu) latency[%s]",
                QueriesPerSecond(), static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(rejected_queue_full),
                static_cast<unsigned long long>(rejected_deadline),
                static_cast<unsigned long long>(cancelled_midrun),
                static_cast<unsigned long long>(epoch),
                static_cast<unsigned long long>(graph_swaps),
                cache.HitRate() * 100.0, cache.entries,
                latency.Summary().c_str());
  return buf;
}

MatchService::MatchService(Graph graph, ServiceOptions options)
    : options_(std::move(options)),
      state_(std::move(graph),
             GraphStateOptions{options_.plan_cache_capacity,
                               options_.plan_cache_byte_budget,
                               /*device_queue_key=*/"default",
                               options_.metrics}),
      obs_(obs::RequestObs::Options{options_.metrics, options_.tracing,
                                    options_.slow_request_seconds,
                                    options_.trace_ring_capacity, options_.slo,
                                    options_.flight}),
      queue_(options_.queue_capacity, "service_queue") {
  queue_.set_block_observer(
      [this](bool is_push, std::uint64_t ns) { obs_.OnQueueBlocked(is_push, ns); });
  if (options_.device_mode) {
    // The shared device simulates the same card and variant the per-worker
    // path would have.
    device::DeviceOptions dopts = options_.device;
    dopts.fpga = options_.run.fpga;
    dopts.variant = options_.run.variant;
    dopts.metrics = options_.metrics;
    device_ = std::make_unique<device::DeviceExecutor>(dopts);
  }
  std::size_t n = options_.num_workers;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

MatchService::~MatchService() { Shutdown(); }

StatusOr<MatchService::RequestId> MatchService::Submit(const SessionKey&,
                                                       const QueryGraph& q,
                                                       RequestOptions opts) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Status::FailedPrecondition("service is shut down");
  }
  // Cheap admission pre-check: don't pay for canonicalization when the queue
  // is already full (the authoritative check is still the TryPush below).
  if (queue_.size() >= queue_.capacity()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++rejected_queue_full_;
    obs_.OnRejectedQueueFull();
    return Status::ResourceExhausted("request queue full");
  }

  auto req = std::make_shared<Request>();
  // A transport-started trace (anchored at frame receive, already carrying
  // the recv/decode spans) resumes here; otherwise tracing starts now.
  req->trace = opts.resume_trace != nullptr ? std::move(opts.resume_trace)
                                            : obs_.StartTrace();
  // No ScopedSpan here: after the queue push the worker owns the trace, so
  // nothing on this thread may touch it past that point. Begin(kQueue) below
  // closes the admit span.
  if (req->trace != nullptr) req->trace->Begin(obs::Span::kAdmit);
  FAST_ASSIGN_OR_RETURN(req->canonical, CanonicalizeQuery(q));
  req->opts = std::move(opts);
  req->deadline_seconds = req->opts.deadline_seconds >= 0.0
                              ? req->opts.deadline_seconds
                              : options_.default_deadline_seconds;

  req->slot = std::make_shared<RequestLedger::Slot>();
  req->slot->on_complete = req->opts.on_complete;
  const RequestId id = ledger_.Add(req->slot);
  req->id = id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      ledger_.Forget(id);
      return Status::FailedPrecondition("service is shut down");
    }
    ++submitted_;
  }

  // Open the queue span BEFORE the push: once the request is in the queue a
  // worker may already be recording into the trace, and the queue's internal
  // mutex is what orders this write against the worker's End().
  if (req->trace != nullptr) req->trace->Begin(obs::Span::kQueue);
  if (!queue_.TryPush(req)) {
    ledger_.Forget(id);
    std::lock_guard<std::mutex> lock(mu_);
    --submitted_;  // submitted_ counts admitted requests only
    ++rejected_queue_full_;
    obs_.OnRejectedQueueFull();
    return Status::ResourceExhausted("request queue full");
  }
  obs_.OnSubmitted();
  obs_.SetQueueDepth(queue_.size());
  return id;
}

StatusOr<RequestResult> MatchService::Wait(RequestId id) {
  return ledger_.Wait(id);
}

void MatchService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  // Workers drain the queued backlog, then exit on the closed queue. The
  // device shuts down only after every worker has reaped its in-flight
  // request — a worker blocked in FinishQuery needs the device running.
  queue_.Close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (device_ != nullptr) device_->Shutdown();
}

void MatchService::WorkerLoop(std::size_t index) {
  obs::Profiler::RegisterCurrentThread("worker-" + std::to_string(index),
                                       obs::ThreadKind::kWorker);
  while (true) {
    std::optional<std::shared_ptr<Request>> item;
    {
      FAST_PROF_STAGE("queue_pop");
      item = queue_.Pop();
    }
    if (!item.has_value()) return;
    FAST_PROF_STAGE("serve");
    std::shared_ptr<Request> req = std::move(*item);
    if (req->trace != nullptr) req->trace->End();  // closes the queue span
    obs_.SetQueueDepth(queue_.size());
    RequestResult result;
    // Thread-CPU clock around the whole dispatch+execute: this worker's host
    // cost for the request (a device-mode wait accrues no CPU here).
    const std::uint64_t cpu_start = ThreadCpuNanos();
    state_.Serve(req->canonical, req->opts, options_.run,
                 req->submitted.ElapsedSeconds(), req->deadline_seconds,
                 device_.get(), req->trace.get(), &result);
    Finish(std::move(req), std::move(result), ThreadCpuNanos() - cpu_start);
  }
}

void MatchService::Finish(std::shared_ptr<Request> req, RequestResult result,
                          std::uint64_t cpu_ns) {
  result.total_seconds = req->submitted.ElapsedSeconds();
  obs::RequestObs::Outcome outcome;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (result.status.ok()) {
      ++completed_;
      latency_.Record(result.total_seconds);
      outcome = obs::RequestObs::Outcome::kCompleted;
    } else if (result.status.code() == StatusCode::kDeadlineExceeded) {
      // graph_epoch distinguishes "expired while queued" (never dispatched)
      // from "aborted mid-run by the cancellation token".
      if (result.graph_epoch == 0) {
        ++rejected_deadline_;
        outcome = obs::RequestObs::Outcome::kRejectedDeadline;
      } else {
        ++cancelled_midrun_;
        outcome = obs::RequestObs::Outcome::kCancelledMidrun;
      }
    } else {
      ++failed_;
      outcome = obs::RequestObs::Outcome::kFailed;
    }
  }
  obs::RequestCost cost;
  cost.cpu_ns = cpu_ns;
  cost.device_kernel_ns =
      static_cast<std::uint64_t>(result.run.kernel_seconds * 1e9);
  cost.dma_bytes = result.run.dma_bytes;
  cost.queue_wait_ns = static_cast<std::uint64_t>(result.queue_seconds * 1e9);
  cost.plan_cache_bytes = result.plan_bytes_charged;
  result.trace = obs_.OnFinished(outcome, result.total_seconds,
                                 std::move(req->trace), req->id,
                                 result.status.ok(),
                                 StatusCodeToString(result.status.code()),
                                 /*tenant_id=*/"", cost);
  RequestLedger::Deliver(req->id, req->slot, std::move(result));
}

ServiceStats MatchService::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.rejected_queue_full = rejected_queue_full_;
    s.rejected_deadline = rejected_deadline_;
    s.cancelled_midrun = cancelled_midrun_;
    s.latency = latency_;
  }
  state_.publication_stats(&s.epoch, &s.graph_swaps);
  s.cache = state_.cache_stats();
  s.uptime_seconds = uptime_.ElapsedSeconds();
  if (device_ != nullptr) {
    s.device_mode = true;
    s.device = device_->stats();
  }
  return s;
}

}  // namespace fast::service
