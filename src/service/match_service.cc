#include "service/match_service.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "cst/cst_serialize.h"
#include "service/query_signature.h"

namespace fast::service {

struct MatchService::Request {
  RequestId id = 0;
  CanonicalQuery canonical;
  RequestOptions opts;
  double deadline_seconds = 0.0;  // resolved; 0 = none
  Timer submitted;

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  RequestResult result;
};

namespace {

bool IsIdentity(const std::vector<VertexId>& perm) {
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != i) return false;
  }
  return true;
}

// Remaps an embedding from canonical numbering back to the submitted
// numbering: submitted vertex u matched canonical position to_canonical[u].
void RemapEmbedding(const std::vector<VertexId>& to_canonical,
                    std::span<const VertexId> canonical, Embedding* out) {
  out->resize(to_canonical.size());
  for (std::size_t u = 0; u < to_canonical.size(); ++u) {
    (*out)[u] = canonical[to_canonical[u]];
  }
}

}  // namespace

std::string ServiceStats::Summary() const {
  char buf[360];
  std::snprintf(buf, sizeof(buf),
                "qps=%.1f completed=%llu failed=%llu rejected(queue=%llu "
                "deadline=%llu) epoch=%llu swaps=%llu cache(hit_rate=%.1f%% "
                "entries=%zu) latency[%s]",
                QueriesPerSecond(), static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(rejected_queue_full),
                static_cast<unsigned long long>(rejected_deadline),
                static_cast<unsigned long long>(epoch),
                static_cast<unsigned long long>(graph_swaps),
                cache.HitRate() * 100.0, cache.entries,
                latency.Summary().c_str());
  return buf;
}

MatchService::MatchService(Graph graph, ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.plan_cache_capacity),
      queue_(options_.queue_capacity),
      graph_(std::make_shared<const Graph>(std::move(graph))) {
  std::size_t n = options_.num_workers;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

MatchService::~MatchService() { Shutdown(); }

StatusOr<MatchService::RequestId> MatchService::Submit(const QueryGraph& q,
                                                       RequestOptions opts) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Status::FailedPrecondition("service is shut down");
  }
  // Cheap admission pre-check: don't pay for canonicalization when the queue
  // is already full (the authoritative check is still the TryPush below).
  if (queue_.size() >= queue_.capacity()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++rejected_queue_full_;
    return Status::ResourceExhausted("request queue full");
  }

  auto req = std::make_shared<Request>();
  FAST_ASSIGN_OR_RETURN(req->canonical, CanonicalizeQuery(q));
  req->opts = std::move(opts);
  req->deadline_seconds = req->opts.deadline_seconds >= 0.0
                              ? req->opts.deadline_seconds
                              : options_.default_deadline_seconds;

  RequestId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Status::FailedPrecondition("service is shut down");
    id = next_id_++;
    req->id = id;
    pending_.emplace(id, req);
    ++submitted_;
  }

  if (!queue_.TryPush(req)) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.erase(id);
    --submitted_;  // submitted_ counts admitted requests only
    ++rejected_queue_full_;
    return Status::ResourceExhausted("request queue full");
  }
  return id;
}

RequestResult MatchService::Wait(RequestId id) {
  std::shared_ptr<Request> req;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      RequestResult r;
      r.status = Status::NotFound("unknown or already-waited request id");
      return r;
    }
    req = it->second;
    pending_.erase(it);
  }
  std::unique_lock<std::mutex> lock(req->mu);
  req->cv.wait(lock, [&] { return req->done; });
  return std::move(req->result);
}

StatusOr<RequestResult> MatchService::SubmitAndWait(const QueryGraph& q,
                                                    RequestOptions opts) {
  FAST_ASSIGN_OR_RETURN(RequestId id, Submit(q, std::move(opts)));
  RequestResult result = Wait(id);
  FAST_RETURN_IF_ERROR(result.status);
  return result;
}

MatchService::GraphSnapshot MatchService::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return {graph_, epoch_};
}

std::uint64_t MatchService::Publish(Graph next) {
  auto published = std::make_shared<const Graph>(std::move(next));
  std::uint64_t new_epoch;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    graph_ = std::move(published);
    new_epoch = ++epoch_;
    ++graph_swaps_;
  }
  // Eager reclamation only: stale plans that race past this are caught by
  // the per-key epoch tag in Lookup.
  cache_.InvalidateBefore(new_epoch);
  return new_epoch;
}

std::uint64_t MatchService::SwapGraph(Graph next) {
  std::lock_guard<std::mutex> writers(swap_mu_);
  return Publish(std::move(next));
}

StatusOr<std::uint64_t> MatchService::ApplyDelta(const GraphDelta& delta) {
  // One writer at a time, so the rebuild base cannot be superseded mid-apply;
  // queries keep dispatching against the current snapshot throughout.
  std::lock_guard<std::mutex> writers(swap_mu_);
  GraphSnapshot base = snapshot();
  FAST_ASSIGN_OR_RETURN(Graph next, fast::ApplyDelta(*base.graph, delta));
  return Publish(std::move(next));
}

void MatchService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  // Workers drain the queued backlog, then exit on the closed queue.
  queue_.Close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void MatchService::WorkerLoop() {
  while (auto item = queue_.Pop()) {
    std::shared_ptr<Request> req = std::move(*item);
    RequestResult result;
    result.queue_seconds = req->submitted.ElapsedSeconds();
    if (req->deadline_seconds > 0.0 && result.queue_seconds > req->deadline_seconds) {
      result.status = Status::DeadlineExceeded("deadline passed while queued");
    } else {
      // Capture the snapshot once at dispatch: the whole request — cache
      // lookup, build, run — sees one consistent {graph, epoch}, regardless
      // of concurrent swaps.
      const GraphSnapshot snap = snapshot();
      result.graph_epoch = snap.epoch;
      Execute(*req, snap, &result);
    }
    Finish(std::move(req), std::move(result));
  }
}

void MatchService::Execute(Request& req, const GraphSnapshot& snap,
                           RequestResult* result) {
  FastRunOptions run = options_.run;
  run.explicit_order.reset();
  run.store_limit = req.opts.store_limit;

  const std::vector<VertexId>& to_canonical = req.canonical.to_canonical;
  const bool identity = IsIdentity(to_canonical);
  // Per-request callback overrides the base-config one; either way the
  // callback must observe embeddings in the submitted numbering, so wrap it
  // with the canonical->submitted remap when the permutation is non-trivial.
  const std::function<void(std::span<const VertexId>)>& callback =
      req.opts.on_embedding ? req.opts.on_embedding : options_.run.embedding_callback;
  if (callback) {
    if (identity) {
      run.embedding_callback = callback;
    } else {
      run.embedding_callback = [&callback, &to_canonical,
                                scratch = Embedding()](
                                   std::span<const VertexId> emb) mutable {
        RemapEmbedding(to_canonical, emb, &scratch);
        callback(scratch);
      };
    }
  }

  StatusOr<FastRunResult> r = Status::Internal("unreachable");
  bool ran_from_cache = false;
  if (options_.plan_cache_capacity > 0) {
    std::shared_ptr<const CachedPlan> plan =
        cache_.Lookup(req.canonical.key, snap.epoch);
    if (plan != nullptr) {
      // Cache hit: rebuild the CST from the serialized image (the same flat
      // words that would cross PCIe), skipping order computation and Alg. 1
      // construction entirely.
      StatusOr<Cst> cst = DeserializeCst(plan->layout, plan->cst_image);
      if (cst.ok()) {
        ran_from_cache = true;
        result->cache_hit = true;
        r = RunFastWithCst(*cst, plan->order, run, /*build_seconds=*/0.0);
      }
      // A corrupt image falls through to a fresh build below (and its
      // Insert replaces the bad entry) instead of failing every hit.
    }
  }
  if (!ran_from_cache) r = BuildAndRun(req, snap, run);

  if (!r.ok()) {
    result->status = r.status();
    return;
  }
  result->run = std::move(*r);
  if (!identity) {
    // Everything client-visible is reported in the submitted numbering: the
    // sample embeddings and the matching order (root + visit sequence).
    for (Embedding& e : result->run.sample_embeddings) {
      Embedding remapped;
      RemapEmbedding(to_canonical, e, &remapped);
      e = std::move(remapped);
    }
    std::vector<VertexId> from_canonical(to_canonical.size());
    for (std::size_t u = 0; u < to_canonical.size(); ++u) {
      from_canonical[to_canonical[u]] = static_cast<VertexId>(u);
    }
    result->run.order.root = from_canonical[result->run.order.root];
    for (VertexId& v : result->run.order.order) v = from_canonical[v];
  }
}

StatusOr<FastRunResult> MatchService::BuildAndRun(Request& req,
                                                  const GraphSnapshot& snap,
                                                  const FastRunOptions& run) {
  // Cache miss (or cache disabled): compute the order and build the CST for
  // the canonical query against this request's snapshot, publish the plan
  // under the snapshot's epoch, then run the pipeline from it.
  const QueryGraph& q = req.canonical.query;
  const Graph& g = *snap.graph;
  FAST_ASSIGN_OR_RETURN(MatchingOrder order,
                        ComputeMatchingOrder(q, g, run.order_policy));
  Timer build_timer;
  FAST_ASSIGN_OR_RETURN(Cst cst, BuildCst(q, g, order.root, run.cst_build));
  const double build_seconds = build_timer.ElapsedSeconds();

  if (options_.plan_cache_capacity > 0) {
    auto plan = std::make_shared<CachedPlan>();
    plan->order = order;
    plan->layout = cst.layout_ptr();
    plan->cst_image = SerializeCst(cst);
    cache_.Insert(req.canonical.key, snap.epoch, std::move(plan));
  }
  return RunFastWithCst(cst, order, run, build_seconds);
}

void MatchService::Finish(std::shared_ptr<Request> req, RequestResult result) {
  result.total_seconds = req->submitted.ElapsedSeconds();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (result.status.ok()) {
      ++completed_;
      latency_.Record(result.total_seconds);
    } else if (result.status.code() == StatusCode::kDeadlineExceeded) {
      ++rejected_deadline_;
    } else {
      ++failed_;
    }
  }
  {
    std::lock_guard<std::mutex> lock(req->mu);
    req->result = std::move(result);
    req->done = true;
  }
  req->cv.notify_all();
}

ServiceStats MatchService::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.rejected_queue_full = rejected_queue_full_;
    s.rejected_deadline = rejected_deadline_;
    s.latency = latency_;
  }
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    s.epoch = epoch_;
    s.graph_swaps = graph_swaps_;
  }
  s.cache = cache_.stats();
  s.uptime_seconds = uptime_.ElapsedSeconds();
  return s;
}

}  // namespace fast::service
