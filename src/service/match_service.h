#ifndef FAST_SERVICE_MATCH_SERVICE_H_
#define FAST_SERVICE_MATCH_SERVICE_H_

// Concurrent query-serving layer over the single-query FAST pipeline.
//
//   clients ── Submit ──▶ bounded MPMC queue ──▶ worker pool ──▶ RunFast
//                 │              │                    │
//            admission      deadline check       plan/CST cache
//            control        at dispatch          (LRU, canonical key,
//                                                 epoch-tagged)
//
// The data graph is served as an immutable epoch snapshot: the service holds
// a shared_ptr<const Graph> plus a monotone epoch counter, and every request
// captures the current {graph, epoch} pair at dispatch (RunFast is reentrant
// over a const Graph — see core/driver.h). Online updates go through
// SwapGraph (publish a prebuilt graph) or ApplyDelta (off-line CSR rebuild
// from a GraphDelta batch): the writer builds the new snapshot without
// blocking readers, atomically publishes it under the next epoch, and
// invalidates the plan/CST cache (CSTs enumerate data-graph vertices, so
// they are dead against any other snapshot; the cache also re-checks the
// epoch tag on every hit). In-flight requests finish on the snapshot they
// captured — the old graph is freed when its last request drops the
// shared_ptr. Each result reports the epoch it ran on.
//
// Each request is canonicalized (service/query_signature.h); the plan cache
// maps canonical signatures to {matching order, serialized CST}, so repeated
// query shapes skip order computation and CST construction and re-enter the
// pipeline at RunFastWithCst. Results are remapped back to the submitted
// numbering.
//
// Admission control: Submit never blocks — a full queue rejects with
// RESOURCE_EXHAUSTED. Per-request deadlines are enforced at dispatch: a
// request whose deadline passed while queued completes with
// DEADLINE_EXCEEDED without running (a run in progress is never aborted).

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/driver.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "query/query_graph.h"
#include "service/plan_cache.h"
#include "util/bounded_queue.h"
#include "util/latency_histogram.h"
#include "util/status.h"
#include "util/timer.h"

namespace fast::service {

struct ServiceOptions {
  // Worker threads executing the pipeline; 0 = hardware concurrency.
  std::size_t num_workers = 0;

  // Bound of the request queue; TryPush beyond it rejects the Submit.
  std::size_t queue_capacity = 256;

  // Plan/CST cache entries; 0 disables caching.
  std::size_t plan_cache_capacity = 64;

  // Default per-request deadline in seconds; 0 = no deadline.
  double default_deadline_seconds = 0.0;

  // Base pipeline configuration (variant, device model, cpu-share δ, order
  // policy). Per-request store_limit/embedding_callback override its fields.
  FastRunOptions run;
};

struct RequestOptions {
  // Sample-embedding mode: retain up to this many embeddings (remapped to
  // the submitted numbering). 0 = count-only.
  std::size_t store_limit = 0;

  // Overrides ServiceOptions::default_deadline_seconds when >= 0.
  double deadline_seconds = -1.0;

  // Streaming per-embedding callback, invoked on the worker thread with the
  // mapping in the submitted numbering. Must be thread-safe if the same
  // callable is shared across requests.
  std::function<void(std::span<const VertexId>)> on_embedding;
};

struct RequestResult {
  Status status = Status::OK();  // DEADLINE_EXCEEDED, pipeline errors, ...
  // Valid iff status.ok(). Client-visible vertex references
  // (sample_embeddings, order.root, order.order) are in the numbering of
  // the *submitted* query, even when the plan ran in canonical numbering.
  FastRunResult run;
  bool cache_hit = false;
  // Epoch of the graph snapshot this request ran on (captured at dispatch).
  // 0 for requests that never dispatched (e.g. queued past their deadline).
  std::uint64_t graph_epoch = 0;
  double queue_seconds = 0.0;  // Submit -> dispatch
  double total_seconds = 0.0;  // Submit -> completion
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  // finished OK
  std::uint64_t failed = 0;     // pipeline errors
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t epoch = 0;        // currently published snapshot epoch
  std::uint64_t graph_swaps = 0;  // snapshots published after the first
  PlanCacheStats cache;
  LatencyHistogram latency;  // Submit -> completion, successful requests
  double uptime_seconds = 0.0;

  double QueriesPerSecond() const {
    return uptime_seconds > 0.0 ? static_cast<double>(completed) / uptime_seconds
                                : 0.0;
  }
  std::string Summary() const;
};

class MatchService {
 public:
  using RequestId = std::uint64_t;

  // An immutable published snapshot: the graph plus the epoch it was
  // published under. Copyable; holding one keeps the graph alive.
  struct GraphSnapshot {
    std::shared_ptr<const Graph> graph;
    std::uint64_t epoch = 0;
  };

  // Takes ownership of the data graph and publishes it as epoch 1. Workers
  // start immediately.
  MatchService(Graph graph, ServiceOptions options = {});
  ~MatchService();

  MatchService(const MatchService&) = delete;
  MatchService& operator=(const MatchService&) = delete;

  // Canonicalizes q and enqueues it. Fails fast with RESOURCE_EXHAUSTED when
  // the queue is full, INVALID_ARGUMENT for malformed queries, and
  // FAILED_PRECONDITION after Shutdown.
  StatusOr<RequestId> Submit(const QueryGraph& q, RequestOptions opts = {});

  // Blocks until the request completes and returns its result. Each id may
  // be waited on once; a second Wait returns NOT_FOUND.
  RequestResult Wait(RequestId id);

  // Submit + Wait; the Status covers both admission and execution.
  StatusOr<RequestResult> SubmitAndWait(const QueryGraph& q, RequestOptions opts = {});

  // Atomically publishes `next` as the new snapshot under the next epoch and
  // invalidates cached plans for older epochs. Requests dispatched before
  // the publish finish on the snapshot they captured; requests dispatched
  // after run on `next`. Writers are serialized; queries are never blocked
  // by a swap. Returns the newly published epoch.
  std::uint64_t SwapGraph(Graph next);

  // Rebuilds a fresh CSR off-line from {current snapshot + delta} (see
  // graph/graph_delta.h for the batch semantics), then publishes it as with
  // SwapGraph. The rebuild runs outside any lock that queries touch.
  StatusOr<std::uint64_t> ApplyDelta(const GraphDelta& delta);

  // Stops admission, drains queued requests, joins workers. Idempotent;
  // also run by the destructor.
  void Shutdown();

  ServiceStats stats() const;

  // The currently published snapshot. The returned graph stays valid for as
  // long as the caller holds the shared_ptr, across any number of swaps.
  GraphSnapshot snapshot() const;
  std::uint64_t epoch() const { return snapshot().epoch; }

  std::size_t num_workers() const { return workers_.size(); }

 private:
  struct Request;

  void WorkerLoop();
  void Execute(Request& req, const GraphSnapshot& snap, RequestResult* result);
  StatusOr<FastRunResult> BuildAndRun(Request& req, const GraphSnapshot& snap,
                                      const FastRunOptions& run);
  void Finish(std::shared_ptr<Request> req, RequestResult result);
  std::uint64_t Publish(Graph next);

  const ServiceOptions options_;
  PlanCache cache_;
  Timer uptime_;

  BoundedQueue<std::shared_ptr<Request>> queue_;
  std::vector<std::thread> workers_;

  // Snapshot publication. snapshot_mu_ only guards the {pointer, epoch}
  // pair — never held while building a graph or running a query.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const Graph> graph_;
  std::uint64_t epoch_ = 1;
  std::uint64_t graph_swaps_ = 0;
  // Serializes writers so each delta applies to the snapshot it read.
  std::mutex swap_mu_;

  mutable std::mutex mu_;  // pending-request map + counters + histogram
  std::unordered_map<RequestId, std::shared_ptr<Request>> pending_;
  std::uint64_t next_id_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t rejected_queue_full_ = 0;
  std::uint64_t rejected_deadline_ = 0;
  LatencyHistogram latency_;
  bool shutdown_ = false;
};

}  // namespace fast::service

#endif  // FAST_SERVICE_MATCH_SERVICE_H_
