#ifndef FAST_SERVICE_MATCH_SERVICE_H_
#define FAST_SERVICE_MATCH_SERVICE_H_

// Concurrent query-serving layer over the single-query FAST pipeline.
//
//   clients ── Submit ──▶ bounded MPMC queue ──▶ worker pool ──▶ GraphState
//                 │              │                    │
//            admission      deadline check       snapshot + plan/CST
//            control        at dispatch +        cache + execution
//                           mid-run cancel       (service/graph_state.h)
//
// MatchService owns the *pool and queue mechanics* — admission control,
// worker threads, per-request bookkeeping, service-level stats — and
// delegates everything per-graph (epoch-snapshotted graph, epoch-tagged
// plan/CST cache, request execution and result remap) to one GraphState.
// The same GraphState type serves many graphs behind one shared pool in
// tenant::TenantRouter; this class is the single-graph configuration. Both
// implement the transport-agnostic Frontend interface (service/frontend.h),
// which is what the wire server, the CLI, and the serving benches code
// against; the session key is advisory here (one graph serves them all).
//
// Admission control: Submit never blocks — a full queue rejects with
// RESOURCE_EXHAUSTED. Per-request deadlines are enforced at dispatch (a
// request whose deadline passed while queued completes with
// DEADLINE_EXCEEDED without running) and *during* the run: the worker arms a
// cooperative cancellation token with the remaining deadline, and the
// matching loops abort mid-run when it expires (util/cancel.h).

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/driver.h"
#include "device/device_executor.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "obs/request_obs.h"
#include "query/query_graph.h"
#include "service/frontend.h"
#include "service/graph_state.h"
#include "service/plan_cache.h"
#include "util/bounded_queue.h"
#include "util/latency_histogram.h"
#include "util/status.h"
#include "util/timer.h"

namespace fast::service {

// Pool knobs (CommonServingOptions) + the single graph's plan-cache budget
// (PlanCacheOptions); see service/frontend.h for every field. The defaulted
// constructor keeps this a non-aggregate on purpose — set fields by name,
// positional brace-initialization does not compile.
struct ServiceOptions : CommonServingOptions, PlanCacheOptions {
  ServiceOptions() = default;
};
static_assert(!std::is_aggregate_v<ServiceOptions>,
              "ServiceOptions must not be positionally brace-initializable");

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  // finished OK
  std::uint64_t failed = 0;     // pipeline errors
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_deadline = 0;   // deadline passed while queued
  std::uint64_t cancelled_midrun = 0;    // deadline tripped during the run
  std::uint64_t epoch = 0;        // currently published snapshot epoch
  std::uint64_t graph_swaps = 0;  // snapshots published after the first
  PlanCacheStats cache;
  LatencyHistogram latency;  // Submit -> completion, successful requests
  double uptime_seconds = 0.0;
  bool device_mode = false;
  device::DeviceStats device;  // zero unless device_mode

  double QueriesPerSecond() const {
    return uptime_seconds > 0.0 ? static_cast<double>(completed) / uptime_seconds
                                : 0.0;
  }
  std::string Summary() const;
};

class MatchService : public Frontend {
 public:
  using RequestId = Frontend::RequestId;
  // Compatibility alias: the snapshot type moved to service/graph_state.h.
  using GraphSnapshot = service::GraphSnapshot;

  // Takes ownership of the data graph and publishes it as epoch 1. Workers
  // start immediately.
  MatchService(Graph graph, ServiceOptions options = {});
  ~MatchService() override;

  MatchService(const MatchService&) = delete;
  MatchService& operator=(const MatchService&) = delete;

  // Frontend: the session key is advisory — every session is served from
  // this service's one graph. Fails fast with RESOURCE_EXHAUSTED when the
  // queue is full, INVALID_ARGUMENT for malformed queries, and
  // FAILED_PRECONDITION after Shutdown.
  StatusOr<RequestId> Submit(const SessionKey& session, const QueryGraph& q,
                             RequestOptions opts = {}) override;
  // Single-graph convenience: the historical one-graph signature.
  StatusOr<RequestId> Submit(const QueryGraph& q, RequestOptions opts = {}) {
    return Submit(SessionKey(), q, std::move(opts));
  }

  // Blocks until the request completes. NOT_FOUND (outer status) for
  // unknown, already-waited, or callback-mode ids.
  StatusOr<RequestResult> Wait(RequestId id) override;

  using Frontend::SubmitAndWait;
  // Submit + Wait; the Status covers both admission and execution.
  StatusOr<RequestResult> SubmitAndWait(const QueryGraph& q,
                                        RequestOptions opts = {}) {
    return SubmitAndWait(SessionKey(), q, std::move(opts));
  }

  // Snapshot publication — see GraphState for the epoch semantics.
  std::uint64_t SwapGraph(Graph next) { return state_.SwapGraph(std::move(next)); }
  StatusOr<std::uint64_t> ApplyDelta(const GraphDelta& delta) {
    return state_.ApplyDelta(delta);
  }

  // Stops admission, drains queued requests, joins workers. Idempotent;
  // also run by the destructor.
  void Shutdown() override;

  ServiceStats stats() const;

  // The currently published snapshot. The returned graph stays valid for as
  // long as the caller holds the shared_ptr, across any number of swaps.
  GraphSnapshot snapshot() const { return state_.snapshot(); }
  std::uint64_t epoch() const { return state_.epoch(); }

  std::size_t num_workers() const { return workers_.size(); }

  // Requests queued but not yet dispatched (periodic-sampler probe).
  std::size_t queue_depth() const override { return queue_.size(); }

  // Admin-plane surfaces (service/frontend.h).
  const obs::RequestObs* request_obs() const override { return &obs_; }
  bool ready() const override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return false;
    }
    return state_.epoch() > 0;
  }
  std::vector<obs::TimelineRound> device_rounds() const override {
    return device_ != nullptr ? device_->recent_rounds()
                              : std::vector<obs::TimelineRound>{};
  }

  // Newest-last rings of retained traces (empty when tracing is off).
  std::vector<std::shared_ptr<const obs::CompletedTrace>> recent_traces() const {
    return obs_.recent_traces();
  }
  std::vector<std::shared_ptr<const obs::CompletedTrace>> slow_traces() const {
    return obs_.slow_traces();
  }

 private:
  struct Request;

  void WorkerLoop(std::size_t index);
  void Finish(std::shared_ptr<Request> req, RequestResult result,
              std::uint64_t cpu_ns);

  const ServiceOptions options_;
  GraphState state_;
  obs::RequestObs obs_;
  Timer uptime_;
  // The shared simulated card (device mode only). Declared before the
  // workers that submit to it; shut down after they have drained.
  std::unique_ptr<device::DeviceExecutor> device_;

  BoundedQueue<std::shared_ptr<Request>> queue_;
  std::vector<std::thread> workers_;
  // Id allocation + Wait/callback delivery (service/frontend.h).
  RequestLedger ledger_;

  mutable std::mutex mu_;  // counters + histogram + shutdown flag
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t rejected_queue_full_ = 0;
  std::uint64_t rejected_deadline_ = 0;
  std::uint64_t cancelled_midrun_ = 0;
  LatencyHistogram latency_;
  bool shutdown_ = false;
};

}  // namespace fast::service

#endif  // FAST_SERVICE_MATCH_SERVICE_H_
