#ifndef FAST_SERVICE_MATCH_SERVICE_H_
#define FAST_SERVICE_MATCH_SERVICE_H_

// Concurrent query-serving layer over the single-query FAST pipeline.
//
//   clients ── Submit ──▶ bounded MPMC queue ──▶ worker pool ──▶ GraphState
//                 │              │                    │
//            admission      deadline check       snapshot + plan/CST
//            control        at dispatch +        cache + execution
//                           mid-run cancel       (service/graph_state.h)
//
// MatchService owns the *pool and queue mechanics* — admission control,
// worker threads, per-request bookkeeping, service-level stats — and
// delegates everything per-graph (epoch-snapshotted graph, epoch-tagged
// plan/CST cache, request execution and result remap) to one GraphState.
// The same GraphState type serves many graphs behind one shared pool in
// tenant::TenantRouter; this class is the single-graph configuration.
//
// Admission control: Submit never blocks — a full queue rejects with
// RESOURCE_EXHAUSTED. Per-request deadlines are enforced at dispatch (a
// request whose deadline passed while queued completes with
// DEADLINE_EXCEEDED without running) and *during* the run: the worker arms a
// cooperative cancellation token with the remaining deadline, and the
// matching loops abort mid-run when it expires (util/cancel.h).

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/driver.h"
#include "device/device_executor.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "obs/request_obs.h"
#include "query/query_graph.h"
#include "service/graph_state.h"
#include "service/plan_cache.h"
#include "util/bounded_queue.h"
#include "util/latency_histogram.h"
#include "util/status.h"
#include "util/timer.h"

namespace fast::service {

struct ServiceOptions {
  // Worker threads executing the pipeline; 0 = hardware concurrency.
  std::size_t num_workers = 0;

  // Bound of the request queue; TryPush beyond it rejects the Submit.
  std::size_t queue_capacity = 256;

  // Plan/CST cache entries; 0 disables caching.
  std::size_t plan_cache_capacity = 64;

  // Byte bound on the summed serialized-CST cache images; 0 = entries-only.
  std::size_t plan_cache_byte_budget = 0;

  // Default per-request deadline in seconds; 0 = no deadline.
  double default_deadline_seconds = 0.0;

  // Base pipeline configuration (variant, device model, cpu-share δ, order
  // policy). Per-request store_limit/embedding_callback override its fields.
  FastRunOptions run;

  // Shared-device mode (device/device_executor.h): workers decompose each
  // request into CST-partition work items on ONE device executor, which
  // batches items from concurrent requests into shared device rounds. The
  // executor simulates run.fpga under run.variant; device.fpga/device.variant
  // are overridden, and run.cpu_share_delta is ignored (the device owns all
  // partitions).
  bool device_mode = false;
  device::DeviceOptions device;

  // ---- Observability (src/obs/). NOTE: appended last — call sites
  // brace-initialize this struct positionally. ----
  // Process-wide metrics registry the service (and its cache, graph state,
  // and device executor) reports into. Non-owning; must outlive the service.
  // nullptr = registry metrics off.
  obs::MetricsRegistry* metrics = nullptr;
  // Per-request span tracing (obs/trace.h). Off: no trace is allocated and
  // every span record is a skipped branch.
  bool tracing = true;
  // Requests slower than this are FAST_LOG(WARNING)-ed with their span
  // breakdown and retained in the slow-trace ring. 0 disables.
  double slow_request_seconds = 0.0;
  // Capacity of the recent-trace ring (the slow ring uses the same).
  std::size_t trace_ring_capacity = 256;
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  // finished OK
  std::uint64_t failed = 0;     // pipeline errors
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_deadline = 0;   // deadline passed while queued
  std::uint64_t cancelled_midrun = 0;    // deadline tripped during the run
  std::uint64_t epoch = 0;        // currently published snapshot epoch
  std::uint64_t graph_swaps = 0;  // snapshots published after the first
  PlanCacheStats cache;
  LatencyHistogram latency;  // Submit -> completion, successful requests
  double uptime_seconds = 0.0;
  bool device_mode = false;
  device::DeviceStats device;  // zero unless device_mode

  double QueriesPerSecond() const {
    return uptime_seconds > 0.0 ? static_cast<double>(completed) / uptime_seconds
                                : 0.0;
  }
  std::string Summary() const;
};

class MatchService {
 public:
  using RequestId = std::uint64_t;
  // Compatibility alias: the snapshot type moved to service/graph_state.h.
  using GraphSnapshot = service::GraphSnapshot;

  // Takes ownership of the data graph and publishes it as epoch 1. Workers
  // start immediately.
  MatchService(Graph graph, ServiceOptions options = {});
  ~MatchService();

  MatchService(const MatchService&) = delete;
  MatchService& operator=(const MatchService&) = delete;

  // Canonicalizes q and enqueues it. Fails fast with RESOURCE_EXHAUSTED when
  // the queue is full, INVALID_ARGUMENT for malformed queries, and
  // FAILED_PRECONDITION after Shutdown.
  StatusOr<RequestId> Submit(const QueryGraph& q, RequestOptions opts = {});

  // Blocks until the request completes and returns its result. Each id may
  // be waited on once; a second Wait returns NOT_FOUND.
  RequestResult Wait(RequestId id);

  // Submit + Wait; the Status covers both admission and execution.
  StatusOr<RequestResult> SubmitAndWait(const QueryGraph& q, RequestOptions opts = {});

  // Snapshot publication — see GraphState for the epoch semantics.
  std::uint64_t SwapGraph(Graph next) { return state_.SwapGraph(std::move(next)); }
  StatusOr<std::uint64_t> ApplyDelta(const GraphDelta& delta) {
    return state_.ApplyDelta(delta);
  }

  // Stops admission, drains queued requests, joins workers. Idempotent;
  // also run by the destructor.
  void Shutdown();

  ServiceStats stats() const;

  // The currently published snapshot. The returned graph stays valid for as
  // long as the caller holds the shared_ptr, across any number of swaps.
  GraphSnapshot snapshot() const { return state_.snapshot(); }
  std::uint64_t epoch() const { return state_.epoch(); }

  std::size_t num_workers() const { return workers_.size(); }

  // Requests queued but not yet dispatched (periodic-sampler probe).
  std::size_t queue_depth() const { return queue_.size(); }

  // Newest-last rings of retained traces (empty when tracing is off).
  std::vector<std::shared_ptr<const obs::CompletedTrace>> recent_traces() const {
    return obs_.recent_traces();
  }
  std::vector<std::shared_ptr<const obs::CompletedTrace>> slow_traces() const {
    return obs_.slow_traces();
  }

 private:
  struct Request;

  void WorkerLoop();
  void Finish(std::shared_ptr<Request> req, RequestResult result);

  const ServiceOptions options_;
  GraphState state_;
  obs::RequestObs obs_;
  Timer uptime_;
  // The shared simulated card (device mode only). Declared before the
  // workers that submit to it; shut down after they have drained.
  std::unique_ptr<device::DeviceExecutor> device_;

  BoundedQueue<std::shared_ptr<Request>> queue_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;  // pending-request map + counters + histogram
  std::unordered_map<RequestId, std::shared_ptr<Request>> pending_;
  std::uint64_t next_id_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t rejected_queue_full_ = 0;
  std::uint64_t rejected_deadline_ = 0;
  std::uint64_t cancelled_midrun_ = 0;
  LatencyHistogram latency_;
  bool shutdown_ = false;
};

}  // namespace fast::service

#endif  // FAST_SERVICE_MATCH_SERVICE_H_
