#include "service/plan_cache.h"

#include <utility>

namespace fast::service {

void PlanCache::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  std::lock_guard<util::ProfiledMutex> lock(mu_);
  hits_counter_ = registry->GetCounter("fast_plan_cache_hits_total",
                                       "Plan cache hits (incl. order-only)");
  misses_counter_ = registry->GetCounter("fast_plan_cache_misses_total",
                                         "Plan cache misses");
  insertions_counter_ = registry->GetCounter("fast_plan_cache_insertions_total",
                                             "Plans inserted or replaced");
  evictions_counter_ = registry->GetCounter(
      "fast_plan_cache_evictions_total", "Entries evicted by LRU/byte pressure");
  invalidations_counter_ =
      registry->GetCounter("fast_plan_cache_invalidations_total",
                           "Entries dropped for a superseded epoch");
  entries_gauge_ = registry->GetGauge("fast_plan_cache_entries",
                                      "Live plan cache entries (all caches)");
  bytes_gauge_ = registry->GetGauge(
      "fast_plan_cache_bytes", "Serialized-CST bytes cached (all caches)");
}

void PlanCache::EraseLocked(std::unordered_map<std::string, Entry>::iterator it,
                            std::uint64_t* counter) {
  const std::size_t image_bytes = it->second.plan->ImageBytes();
  stats_.bytes_in_use -= image_bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  ++*counter;
  if (entries_gauge_ != nullptr) {
    entries_gauge_->Add(-1.0);
    bytes_gauge_->Add(-static_cast<double>(image_bytes));
    (counter == &stats_.evictions ? evictions_counter_ : invalidations_counter_)
        ->Increment();
  }
}

void PlanCache::EvictToFitLocked() {
  while (entries_.size() > 1 &&
         (entries_.size() > capacity_ ||
          (byte_budget_ > 0 && stats_.bytes_in_use > byte_budget_))) {
    auto victim_it = entries_.find(lru_.back());
    EraseLocked(victim_it, &stats_.evictions);
  }
  stats_.entries = entries_.size();
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(const std::string& key,
                                                    std::uint64_t epoch) {
  std::lock_guard<util::ProfiledMutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    if (misses_counter_ != nullptr) misses_counter_->Increment();
    return nullptr;
  }
  if (it->second.epoch != epoch) {
    if (it->second.epoch < epoch) {
      // Built against a superseded snapshot: the publisher only moves
      // forward, so the entry is dead — drop it rather than let it age out
      // of the LRU.
      EraseLocked(it, &stats_.invalidations);
      stats_.entries = entries_.size();
    }
    // else: the entry is NEWER than this request's snapshot (an in-flight
    // request draining on an old epoch raced a rebuild). It is the one
    // current requests want — leave it alone and treat this as a miss.
    ++stats_.misses;
    if (misses_counter_ != nullptr) misses_counter_->Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++stats_.hits;
  if (hits_counter_ != nullptr) hits_counter_->Increment();
  if (it->second.plan->order_only()) ++stats_.order_only_hits;
  return it->second.plan;
}

void PlanCache::Insert(const std::string& key, std::uint64_t epoch,
                       std::shared_ptr<const CachedPlan> plan) {
  if (capacity_ == 0 || plan == nullptr) return;
  std::lock_guard<util::ProfiledMutex> lock(mu_);
  // A plan from an already-invalidated epoch (a request draining on an old
  // snapshot) can never serve anyone — dropping it here keeps it from
  // entering at the MRU position and evicting a live current-epoch entry.
  if (epoch < min_epoch_) return;
  if (byte_budget_ > 0 && plan->ImageBytes() > byte_budget_) {
    // Demote to an order-only entry: the image would evict the whole cache,
    // but the matching order costs a few words and a hit on it still skips
    // order computation (the CST is rebuilt on hit).
    auto demoted = std::make_shared<CachedPlan>();
    demoted->order = plan->order;
    plan = std::move(demoted);
    ++stats_.rejected_oversized;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Never replace a fresher plan with one a draining old-epoch request
    // just built — that would thrash the slot around every swap.
    if (it->second.epoch > epoch) return;
    const auto old_bytes = static_cast<double>(it->second.plan->ImageBytes());
    stats_.bytes_in_use -= it->second.plan->ImageBytes();
    stats_.bytes_in_use += plan->ImageBytes();
    if (bytes_gauge_ != nullptr) {
      bytes_gauge_->Add(static_cast<double>(plan->ImageBytes()) - old_bytes);
      insertions_counter_->Increment();
    }
    it->second.plan = std::move(plan);
    it->second.epoch = epoch;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    ++stats_.insertions;
    EvictToFitLocked();  // the replacement image may be larger
    return;
  }
  lru_.push_front(key);
  stats_.bytes_in_use += plan->ImageBytes();
  if (bytes_gauge_ != nullptr) {
    bytes_gauge_->Add(static_cast<double>(plan->ImageBytes()));
    entries_gauge_->Add(1.0);
    insertions_counter_->Increment();
  }
  entries_.emplace(key, Entry{lru_.begin(), epoch, std::move(plan)});
  ++stats_.insertions;
  EvictToFitLocked();
}

void PlanCache::InvalidateBefore(std::uint64_t epoch) {
  std::lock_guard<util::ProfiledMutex> lock(mu_);
  if (epoch > min_epoch_) min_epoch_ = epoch;
  for (auto it = entries_.begin(); it != entries_.end();) {
    auto next = std::next(it);
    if (it->second.epoch < epoch) EraseLocked(it, &stats_.invalidations);
    it = next;
  }
  stats_.entries = entries_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<util::ProfiledMutex> lock(mu_);
  PlanCacheStats s = stats_;
  s.entries = entries_.size();
  s.byte_budget = byte_budget_;
  return s;
}

}  // namespace fast::service
