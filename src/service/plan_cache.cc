#include "service/plan_cache.h"

#include <utility>

namespace fast::service {

std::shared_ptr<const CachedPlan> PlanCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++stats_.hits;
  return it->second.plan;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const CachedPlan> plan) {
  if (capacity_ == 0 || plan == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    stats_.image_bytes -= it->second.plan->ImageBytes();
    stats_.image_bytes += plan->ImageBytes();
    it->second.plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    ++stats_.insertions;
    return;
  }
  lru_.push_front(key);
  stats_.image_bytes += plan->ImageBytes();
  entries_.emplace(key, Entry{lru_.begin(), std::move(plan)});
  ++stats_.insertions;
  while (entries_.size() > capacity_) {
    const std::string& victim = lru_.back();
    auto victim_it = entries_.find(victim);
    stats_.image_bytes -= victim_it->second.plan->ImageBytes();
    entries_.erase(victim_it);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = entries_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats s = stats_;
  s.entries = entries_.size();
  return s;
}

}  // namespace fast::service
