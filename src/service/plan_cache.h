#ifndef FAST_SERVICE_PLAN_CACHE_H_
#define FAST_SERVICE_PLAN_CACHE_H_

// Thread-safe LRU cache of query plans for the match service.
//
// A plan is everything RunFastWithCst needs that does not depend on the
// request: the matching order and the serialized CST image (the same flat
// word image that crosses PCIe, src/cst/cst_serialize.h), both expressed in
// the canonical query numbering of the cache key. A hit replaces order
// computation and CST construction — typically the dominant host-side cost
// for repeated query shapes — with one DeserializeCst pass over the image.
//
// Entries are immutable once inserted and handed out as shared_ptr, so
// readers never hold the cache lock while using a plan.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cst/cst.h"
#include "query/matching_order.h"

namespace fast::service {

struct CachedPlan {
  MatchingOrder order;                        // canonical numbering
  std::shared_ptr<const CstLayout> layout;    // canonical query + root
  std::vector<std::uint32_t> cst_image;       // SerializeCst output

  std::size_t ImageBytes() const { return cst_image.size() * sizeof(std::uint32_t); }
};

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t image_bytes = 0;  // total serialized-CST footprint

  double HitRate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class PlanCache {
 public:
  // capacity = max entries; 0 disables caching (Lookup always misses,
  // Insert is a no-op), which is the bench's cache-off baseline.
  explicit PlanCache(std::size_t capacity) : capacity_(capacity) {}

  // Returns the plan and refreshes its LRU position, or nullptr on miss.
  std::shared_ptr<const CachedPlan> Lookup(const std::string& key);

  // Inserts (or replaces) the plan and evicts the least recently used
  // entries beyond capacity. Concurrent builders of the same key are
  // harmless: the last insert wins and both plans are valid.
  void Insert(const std::string& key, std::shared_ptr<const CachedPlan> plan);

  PlanCacheStats stats() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::list<std::string>::iterator lru_it;
    std::shared_ptr<const CachedPlan> plan;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, Entry> entries_;
  PlanCacheStats stats_;
};

}  // namespace fast::service

#endif  // FAST_SERVICE_PLAN_CACHE_H_
