#ifndef FAST_SERVICE_PLAN_CACHE_H_
#define FAST_SERVICE_PLAN_CACHE_H_

// Thread-safe LRU cache of query plans for the match service.
//
// A plan is everything RunFastWithCst needs that does not depend on the
// request: the matching order and the serialized CST image (the same flat
// word image that crosses PCIe, src/cst/cst_serialize.h), both expressed in
// the canonical query numbering of the cache key. A hit replaces order
// computation and CST construction — typically the dominant host-side cost
// for repeated query shapes — with one DeserializeCst pass over the image.
//
// Plans are data-dependent: the CST enumerates candidate vertices of the
// data graph, so a plan built against one graph snapshot is garbage against
// any other. Every entry is therefore tagged with the graph epoch it was
// built on (see MatchService snapshot semantics); Lookup treats an epoch
// mismatch as a miss, dropping the entry on the spot when it is older than
// the request's snapshot (published epochs are monotone, so it can never
// become valid again) and leaving it in place when it is newer (a request
// draining on an old snapshot must not evict — or overwrite, see Insert —
// what current requests use). InvalidateBefore lets the publisher reclaim a
// whole superseded epoch eagerly — correctness never depends on it, the
// per-key epoch check is the safety net.
//
// Entries are immutable once inserted and handed out as shared_ptr, so
// readers never hold the cache lock while using a plan.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>

#include "util/profiled_mutex.h"
#include <string>
#include <unordered_map>
#include <vector>

#include "cst/cst.h"
#include "obs/metrics.h"
#include "query/matching_order.h"

namespace fast::service {

struct CachedPlan {
  MatchingOrder order;                        // canonical numbering
  std::shared_ptr<const CstLayout> layout;    // canonical query + root
  std::vector<std::uint32_t> cst_image;       // SerializeCst output

  std::size_t ImageBytes() const { return cst_image.size() * sizeof(std::uint32_t); }

  // Order-only entry: the plan's CST image exceeded the byte budget, so only
  // the matching order is cached (layout is null). A hit skips order
  // computation; the CST is rebuilt against the request's snapshot.
  bool order_only() const { return cst_image.empty(); }
};

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;      // LRU capacity or byte-budget pressure
  std::uint64_t invalidations = 0;  // dropped for a superseded epoch
  std::uint64_t rejected_oversized = 0;  // images over the budget (demoted)
  std::uint64_t order_only_hits = 0;  // hits that only skipped the order
  std::size_t entries = 0;
  std::size_t bytes_in_use = 0;  // total serialized-CST footprint
  std::size_t byte_budget = 0;   // configured bound; 0 = entries-only bound

  double HitRate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class PlanCache {
 public:
  // capacity = max entries; 0 disables caching (Lookup always misses,
  // Insert is a no-op), which is the bench's cache-off baseline.
  // byte_budget bounds the summed serialized-CST image bytes in addition to
  // the entry count (hub-heavy queries produce images orders of magnitude
  // larger than typical, so an entry bound alone does not bound memory);
  // 0 = no byte bound. A single plan larger than the whole budget is demoted
  // to an order-only entry — evicting every live entry to admit one query's
  // image would thrash the cache, but the order (a few words) is always
  // worth keeping: a hit still skips order computation, rebuilding only the
  // CST.
  explicit PlanCache(std::size_t capacity, std::size_t byte_budget = 0)
      : capacity_(capacity), byte_budget_(byte_budget) {}

  // Returns the plan and refreshes its LRU position, or nullptr on miss.
  // An entry tagged with a different epoch is a miss; it is also erased
  // when its epoch is older than the request's.
  std::shared_ptr<const CachedPlan> Lookup(const std::string& key,
                                           std::uint64_t epoch);

  // Inserts (or replaces) the plan, tagged with the graph epoch it was built
  // on, and evicts the least recently used entries beyond capacity. An
  // existing entry with a newer epoch is kept (the insert is dropped).
  // Concurrent builders of the same key and epoch are harmless: the last
  // insert wins and both plans are valid.
  void Insert(const std::string& key, std::uint64_t epoch,
              std::shared_ptr<const CachedPlan> plan);

  // Drops every entry tagged with an epoch < `epoch`, and rejects future
  // Inserts below it (a draining old-epoch request must not push a dead
  // plan in and evict a live one). Called by the snapshot publisher right
  // after a swap to reclaim plan memory eagerly.
  void InvalidateBefore(std::uint64_t epoch);

  PlanCacheStats stats() const;
  std::size_t capacity() const { return capacity_; }
  std::size_t byte_budget() const { return byte_budget_; }

  // Additionally reports cache traffic into the process-wide registry
  // (fast_plan_cache_* counters; entries/bytes gauges are adjusted by delta,
  // so several caches — one per tenant — sum correctly into one gauge).
  // Call before the cache sees traffic; the registry must outlive the cache.
  void BindMetrics(obs::MetricsRegistry* registry);

 private:
  struct Entry {
    std::list<std::string>::iterator lru_it;
    std::uint64_t epoch = 0;
    std::shared_ptr<const CachedPlan> plan;
  };

  // Erases an entry (caller holds mu_), accounting `counter`.
  void EraseLocked(std::unordered_map<std::string, Entry>::iterator it,
                   std::uint64_t* counter);

  // Evicts LRU entries until both the entry count and the byte budget hold
  // (caller holds mu_). The MRU entry is never evicted.
  void EvictToFitLocked();

  const std::size_t capacity_;
  const std::size_t byte_budget_;
  // Registry metrics (null until BindMetrics): bumped alongside stats_ under
  // mu_, mirroring the per-instance counters into the process-wide view.
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* insertions_counter_ = nullptr;
  obs::Counter* evictions_counter_ = nullptr;
  obs::Counter* invalidations_counter_ = nullptr;
  obs::Gauge* entries_gauge_ = nullptr;
  obs::Gauge* bytes_gauge_ = nullptr;
  mutable util::ProfiledMutex mu_{"plan_cache"};
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t min_epoch_ = 0;  // floor set by InvalidateBefore
  PlanCacheStats stats_;
};

}  // namespace fast::service

#endif  // FAST_SERVICE_PLAN_CACHE_H_
