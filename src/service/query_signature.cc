#include "service/query_signature.h"

#include <algorithm>
#include <cstdint>
#include <utility>

namespace fast::service {

namespace {

// Per-vertex isomorphism invariant: everything about a vertex that any
// numbering must preserve. Vertices with distinct invariants can never map
// to each other, so the permutation search only permutes within classes.
struct Invariant {
  Label label;
  std::uint32_t degree;
  // Sorted multiset of (neighbor label, edge label) pairs.
  std::vector<std::pair<Label, Label>> neighborhood;

  auto operator<=>(const Invariant&) const = default;
};

Invariant ComputeInvariant(const QueryGraph& q, VertexId u) {
  Invariant inv;
  inv.label = q.label(u);
  inv.degree = q.degree(u);
  for (VertexId w : q.neighbors(u)) {
    inv.neighborhood.emplace_back(q.label(w), q.EdgeLabel(u, w));
  }
  std::sort(inv.neighborhood.begin(), inv.neighborhood.end());
  return inv;
}

// Labels are full 32-bit values (src/graph/graph.h); encode them big-endian
// so byte-wise lexicographic comparison orders them numerically and distinct
// labels can never collide in the key.
void AppendLabel(Label label, std::string* out) {
  out->push_back(static_cast<char>((label >> 24) & 0xff));
  out->push_back(static_cast<char>((label >> 16) & 0xff));
  out->push_back(static_cast<char>((label >> 8) & 0xff));
  out->push_back(static_cast<char>(label & 0xff));
}

// Encoding of the labelled adjacency under permutation `perm`, where
// canonical vertex i is original vertex perm[i]: per-vertex labels, then the
// upper triangle row-major with one presence byte (0/1) followed, for
// present edges, by the edge label.
void EncodeAdjacency(const QueryGraph& q, const std::vector<VertexId>& perm,
                     std::string* out) {
  const std::size_t n = q.NumVertices();
  out->clear();
  out->reserve(4 * n + n * n / 2);
  for (std::size_t i = 0; i < n; ++i) AppendLabel(q.label(perm[i]), out);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const VertexId u = perm[i];
      const VertexId v = perm[j];
      if (q.HasEdge(u, v)) {
        out->push_back(1);
        AppendLabel(q.EdgeLabel(u, v), out);
      } else {
        out->push_back(0);
      }
    }
  }
}

// Recursively enumerates permutations that keep each position's invariant
// class, tracking the lexicographically minimal encoding. `remaining` caps
// the number of complete permutations evaluated; returns false on budget
// exhaustion.
bool SearchMinimal(const QueryGraph& q, const std::vector<std::vector<VertexId>>& classes,
                   std::size_t class_index, std::vector<VertexId>* perm,
                   std::vector<char>* used, std::string* scratch, std::string* best,
                   std::vector<VertexId>* best_perm, std::size_t* remaining) {
  if (class_index == classes.size()) {
    if (*remaining == 0) return false;
    --*remaining;
    EncodeAdjacency(q, *perm, scratch);
    if (best->empty() || *scratch < *best) {
      *best = *scratch;
      *best_perm = *perm;
    }
    return true;
  }
  const auto& members = classes[class_index];
  // Enumerate orderings of this class via recursive selection.
  const std::size_t base = perm->size();
  std::vector<VertexId> slot(members.size());
  bool ok = true;
  auto rec = [&](auto&& self, std::size_t pos) -> void {
    if (!ok) return;
    if (pos == members.size()) {
      for (VertexId v : slot) perm->push_back(v);
      if (!SearchMinimal(q, classes, class_index + 1, perm, used, scratch, best,
                         best_perm, remaining)) {
        ok = false;
      }
      perm->resize(base);
      return;
    }
    for (VertexId v : members) {
      if ((*used)[v]) continue;
      (*used)[v] = 1;
      slot[pos] = v;
      self(self, pos + 1);
      (*used)[v] = 0;
      if (!ok) return;
    }
  };
  rec(rec, 0);
  return ok;
}

}  // namespace

StatusOr<CanonicalQuery> CanonicalizeQuery(const QueryGraph& q,
                                           std::size_t max_steps) {
  const std::size_t n = q.NumVertices();
  if (n == 0) return Status::InvalidArgument("empty query");

  // Group vertices into invariant classes, ordered by invariant value so the
  // class layout itself is isomorphism-invariant.
  std::vector<std::pair<Invariant, VertexId>> tagged;
  tagged.reserve(n);
  for (VertexId u = 0; u < n; ++u) tagged.emplace_back(ComputeInvariant(q, u), u);
  std::sort(tagged.begin(), tagged.end());

  std::vector<std::vector<VertexId>> classes;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 0 || tagged[i].first != tagged[i - 1].first) classes.emplace_back();
    classes.back().push_back(tagged[i].second);
  }

  std::vector<VertexId> perm;
  perm.reserve(n);
  std::vector<char> used(n, 0);
  std::string scratch, best;
  std::vector<VertexId> best_perm;
  std::size_t remaining = max_steps;
  const bool exact = SearchMinimal(q, classes, 0, &perm, &used, &scratch, &best,
                                   &best_perm, &remaining);

  if (best_perm.empty()) {
    // Budget exhausted before the first complete permutation (cannot happen
    // with max_steps >= 1, but stay defensive): refinement order fallback.
    best_perm.clear();
    for (const auto& cls : classes) {
      for (VertexId v : cls) best_perm.push_back(v);
    }
    EncodeAdjacency(q, best_perm, &best);
  }

  CanonicalQuery out;
  out.exact = exact;
  out.to_canonical.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    out.to_canonical[best_perm[i]] = static_cast<VertexId>(i);
  }

  // Cache key: header (size, edge count, exactness) + minimal encoding. The
  // header keeps capped (inexact) keys from ever colliding with exact ones.
  out.key.reserve(best.size() + 8);
  out.key.push_back(static_cast<char>(n));
  out.key.push_back(static_cast<char>(q.NumEdges() & 0xff));
  out.key.push_back(exact ? 'x' : 'f');
  out.key += best;

  // Relabel the query into canonical numbering.
  GraphBuilder builder(n);
  for (std::size_t i = 0; i < n; ++i) builder.AddVertex(q.label(best_perm[i]));
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId w : q.neighbors(u)) {
      if (u < w) {
        FAST_RETURN_IF_ERROR(builder.AddEdge(out.to_canonical[u],
                                             out.to_canonical[w], q.EdgeLabel(u, w)));
      }
    }
  }
  FAST_ASSIGN_OR_RETURN(Graph canonical_graph, builder.Build());
  FAST_ASSIGN_OR_RETURN(out.query,
                        QueryGraph::Create(std::move(canonical_graph), q.name()));
  return out;
}

}  // namespace fast::service
