#ifndef FAST_SERVICE_QUERY_SIGNATURE_H_
#define FAST_SERVICE_QUERY_SIGNATURE_H_

// Canonicalized query signatures for the service-layer plan cache.
//
// Two isomorphic query graphs (same shape, same vertex/edge labels, any
// vertex numbering) should reuse one cached plan. CanonicalizeQuery computes
// a canonical vertex numbering by refining vertices into invariant classes
// (label, degree, neighborhood multiset) and then searching the class-
// respecting permutations for the lexicographically minimal adjacency
// encoding. That encoding is the cache key; it uniquely determines the
// canonical graph, so distinct shapes can never collide.
//
// The permutation search is capped: pathological symmetric queries fall back
// to the refinement-ordered numbering, which is still deterministic per
// input graph (resubmitting the identical query still hits the cache; only
// cross-numbering isomorphism hits are lost).

#include <string>
#include <vector>

#include "query/query_graph.h"
#include "util/status.h"

namespace fast::service {

struct CanonicalQuery {
  // Cache key: a byte encoding of the canonical labelled adjacency.
  std::string key;

  // Submitted vertex u maps to canonical vertex to_canonical[u].
  std::vector<VertexId> to_canonical;

  // The query relabelled into canonical numbering. Plans (matching order,
  // CST) cached under `key` are expressed in this numbering.
  QueryGraph query;

  // False when the permutation search hit `max_steps` and fell back.
  bool exact = true;
};

// Default permutation-search budget; queries up to ~10 vertices with modest
// symmetry complete well within it.
inline constexpr std::size_t kDefaultCanonicalizationSteps = 100000;

StatusOr<CanonicalQuery> CanonicalizeQuery(
    const QueryGraph& q, std::size_t max_steps = kDefaultCanonicalizationSteps);

}  // namespace fast::service

#endif  // FAST_SERVICE_QUERY_SIGNATURE_H_
