#ifndef FAST_SIMD_BITSET_H_
#define FAST_SIMD_BITSET_H_

// Word-aligned bitmap used by the SIMD kernel layer (src/simd/intersect.h):
// the dense side of the dual set representation. A sorted uint32 list answers
// ordered iteration and merges; a Bitset answers O(1) membership and
// word-parallel range-AND/popcount. Graph hub vertices (graph/graph.h) store
// their adjacency in both forms, picked at CSR build time.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fast::simd {

// Membership probe on a raw bitmap word span (e.g. Graph::HubAdjacencyBitmap).
// `i` must be inside the span's bit range.
inline bool TestBit(std::span<const std::uint64_t> words, std::uint32_t i) {
  return (words[i >> 6] >> (i & 63)) & 1u;
}

inline void SetBit(std::span<std::uint64_t> words, std::uint32_t i) {
  words[i >> 6] |= std::uint64_t{1} << (i & 63);
}

// Fixed-width bitmap over [0, num_bits), backed by 64-bit words.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t num_bits) { Reset(num_bits); }

  // Resizes to `num_bits` and clears every bit.
  void Reset(std::size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign((num_bits + 63) / 64, 0);
  }

  void Set(std::uint32_t i) { SetBit(words_, i); }
  void Clear(std::uint32_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  bool Test(std::uint32_t i) const { return TestBit(words_, i); }

  std::size_t num_bits() const { return num_bits_; }
  std::size_t num_words() const { return words_.size(); }
  std::span<const std::uint64_t> words() const { return words_; }
  std::span<std::uint64_t> mutable_words() { return words_; }

 private:
  std::size_t num_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace fast::simd

#endif  // FAST_SIMD_BITSET_H_
