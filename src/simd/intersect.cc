#include "simd/intersect.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#define FAST_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
#define FAST_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace fast::simd {
namespace {

// ---- Shared scalar building blocks. ----

// First index in [begin, n) with v[i] >= key, found by doubling steps from
// `begin` then binary search inside the final bracket. O(log gap) instead of
// O(log n), which is what makes skewed-pair intersection cheap.
std::size_t GallopLower(const std::uint32_t* v, std::size_t begin, std::size_t n,
                        std::uint32_t key) {
  std::size_t lo = begin;
  std::size_t hi = begin;
  std::size_t step = 1;
  while (hi < n && v[hi] < key) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  if (hi > n) hi = n;
  return static_cast<std::size_t>(
      std::lower_bound(v + lo, v + hi, key) - v);
}

// Finishes an intersection from cursors (i, j) with a plain merge. The
// (has_last, last) pair carries the dedup guard across the vector-loop /
// tail boundary so a duplicate value spanning the handoff is not emitted
// twice. Values are cached in locals before any write to `out`, which keeps
// out-aliases-a calls correct.
std::size_t MergeRest(const std::uint32_t* a, std::size_t na,
                      const std::uint32_t* b, std::size_t nb, std::size_t i,
                      std::size_t j, std::uint32_t* out, std::size_t k,
                      bool positions, bool has_last, std::uint32_t last) {
  while (i < na && j < nb) {
    const std::uint32_t x = a[i];
    const std::uint32_t y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      if (!has_last || last != x) {
        out[k++] = positions ? static_cast<std::uint32_t>(j) : x;
        has_last = true;
        last = x;
      }
      do {
        ++i;
      } while (i < na && a[i] == x);
      do {
        ++j;
      } while (j < nb && b[j] == x);
    }
  }
  return k;
}

// Small-a-over-large-b galloping intersection. Emits values, or first-
// occurrence positions in b.
std::size_t GallopOverA(const std::uint32_t* a, std::size_t na,
                        const std::uint32_t* b, std::size_t nb,
                        std::uint32_t* out, bool positions) {
  std::size_t j = 0;
  std::size_t k = 0;
  std::uint32_t prev = 0;
  bool has_prev = false;
  for (std::size_t i = 0; i < na && j < nb; ++i) {
    const std::uint32_t x = a[i];
    if (has_prev && prev == x) continue;
    prev = x;
    has_prev = true;
    j = GallopLower(b, j, nb, x);
    if (j == nb) break;
    if (b[j] == x) out[k++] = positions ? static_cast<std::uint32_t>(j) : x;
  }
  return k;
}

// Positions-mode mirror for na >> nb: iterate b (the position side), gallop
// in a. The emitted index is the iteration cursor itself.
std::size_t GallopPosOverB(const std::uint32_t* a, std::size_t na,
                           const std::uint32_t* b, std::size_t nb,
                           std::uint32_t* out) {
  std::size_t ia = 0;
  std::size_t k = 0;
  std::uint32_t prev = 0;
  bool has_prev = false;
  for (std::size_t j = 0; j < nb && ia < na; ++j) {
    const std::uint32_t y = b[j];
    if (has_prev && prev == y) continue;
    prev = y;
    has_prev = true;
    ia = GallopLower(a, ia, na, y);
    if (ia == na) break;
    if (a[ia] == y) out[k++] = static_cast<std::uint32_t>(j);
  }
  return k;
}

// Dense-range core: everything after empty/swap/gallop dispatch. One per
// level; `positions` selects value vs b-position output.
using CoreFn = std::size_t (*)(const std::uint32_t*, std::size_t,
                               const std::uint32_t*, std::size_t,
                               std::uint32_t*, bool);

std::size_t ScalarCore(const std::uint32_t* a, std::size_t na,
                       const std::uint32_t* b, std::size_t nb,
                       std::uint32_t* out, bool positions) {
  return MergeRest(a, na, b, nb, 0, 0, out, 0, positions, false, 0);
}

std::size_t IntersectDispatch(CoreFn core, std::size_t gallop_ratio,
                              const std::uint32_t* a, std::size_t na,
                              const std::uint32_t* b, std::size_t nb,
                              std::uint32_t* out, bool positions) {
  if (na == 0 || nb == 0) return 0;
  if (!positions && na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (positions && na > nb && na / nb >= gallop_ratio) {
    return GallopPosOverB(a, na, b, nb, out);
  }
  if (nb > na && nb / na >= gallop_ratio) {
    return GallopOverA(a, na, b, nb, out, positions);
  }
  return core(a, na, b, nb, out, positions);
}

std::size_t ScalarBatchContains(const std::uint32_t* sorted, std::size_t n,
                                const std::uint32_t* keys, std::size_t nk,
                                std::uint8_t* mask) {
  std::size_t j = 0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < nk; ++i) {
    const std::uint32_t x = keys[i];
    j = GallopLower(sorted, j, n, x);
    const std::uint8_t hit = (j < n && sorted[j] == x) ? 1 : 0;
    mask[i] = hit;
    hits += hit;
  }
  return hits;
}

std::uint64_t ScalarBitmapAndPopcount(const std::uint64_t* a,
                                      const std::uint64_t* b,
                                      std::size_t num_words) {
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < num_words; ++i) {
    count += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return count;
}

std::size_t ScalarFilterByBitmap(const std::uint64_t* bits,
                                 std::size_t num_bits,
                                 const std::uint32_t* keys, std::size_t nk,
                                 std::uint32_t* out) {
  std::size_t k = 0;
  for (std::size_t i = 0; i < nk; ++i) {
    const std::uint32_t v = keys[i];
    if (v < num_bits && ((bits[v >> 6] >> (v & 63)) & 1u) != 0) {
      out[k++] = static_cast<std::uint32_t>(i);
    }
  }
  return k;
}

std::size_t ScalarIntersect(const std::uint32_t* a, std::size_t na,
                            const std::uint32_t* b, std::size_t nb,
                            std::uint32_t* out) {
  return IntersectDispatch(&ScalarCore, 16, a, na, b, nb, out, false);
}

std::size_t ScalarIntersectPos(const std::uint32_t* a, std::size_t na,
                               const std::uint32_t* b, std::size_t nb,
                               std::uint32_t* out) {
  return IntersectDispatch(&ScalarCore, 16, a, na, b, nb, out, true);
}

// ---- SWAR: two 32-bit lanes per 64-bit word. ----
//
// Membership of x in a loaded pair uses the any-zero-halfword trick:
// (d - kOnes) & ~d & kHigh is non-zero iff either 32-bit half of d is zero
// (a borrow out of a low half only occurs when that half itself is zero, so
// there are no false positives for the any-hit question asked here).

constexpr std::uint64_t kSwarOnes = 0x0000000100000001ull;
constexpr std::uint64_t kSwarHigh = 0x8000000080000000ull;

inline bool SwarPairHasValue(std::uint64_t pair, std::uint32_t x) {
  const std::uint64_t d = pair ^ (kSwarOnes * x);
  return ((d - kSwarOnes) & ~d & kSwarHigh) != 0;
}

std::size_t SwarCore(const std::uint32_t* a, std::size_t na,
                     const std::uint32_t* b, std::size_t nb, std::uint32_t* out,
                     bool positions) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t k = 0;
  std::uint32_t last = 0;
  bool has_last = false;
  while (i < na && j + 2 <= nb) {
    const std::uint32_t x = a[i];
    if (has_last && last == x) {
      ++i;
      continue;
    }
    while (j + 2 <= nb && b[j + 1] < x) j += 2;
    if (j + 2 > nb) break;
    std::uint64_t pair;
    std::memcpy(&pair, b + j, sizeof(pair));
    if (SwarPairHasValue(pair, x)) {
      // Disambiguate the lane with a direct compare (endian-neutral).
      const std::uint32_t pos =
          static_cast<std::uint32_t>(j) + (b[j] == x ? 0u : 1u);
      out[k++] = positions ? pos : x;
      last = x;
      has_last = true;
    }
    ++i;
  }
  return MergeRest(a, na, b, nb, i, j, out, k, positions, has_last, last);
}

std::size_t SwarIntersect(const std::uint32_t* a, std::size_t na,
                          const std::uint32_t* b, std::size_t nb,
                          std::uint32_t* out) {
  return IntersectDispatch(&SwarCore, 16, a, na, b, nb, out, false);
}

std::size_t SwarIntersectPos(const std::uint32_t* a, std::size_t na,
                             const std::uint32_t* b, std::size_t nb,
                             std::uint32_t* out) {
  return IntersectDispatch(&SwarCore, 16, a, na, b, nb, out, true);
}

std::size_t SwarBatchContains(const std::uint32_t* sorted, std::size_t n,
                              const std::uint32_t* keys, std::size_t nk,
                              std::uint8_t* mask) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t hits = 0;
  for (; i < nk && j + 2 <= n; ++i) {
    const std::uint32_t x = keys[i];
    while (j + 2 <= n && sorted[j + 1] < x) j += 2;
    if (j + 2 > n) break;
    std::uint64_t pair;
    std::memcpy(&pair, sorted + j, sizeof(pair));
    const std::uint8_t hit = SwarPairHasValue(pair, x) ? 1 : 0;
    mask[i] = hit;
    hits += hit;
  }
  for (; i < nk; ++i) {
    const std::uint32_t x = keys[i];
    while (j < n && sorted[j] < x) ++j;
    const std::uint8_t hit = (j < n && sorted[j] == x) ? 1 : 0;
    mask[i] = hit;
    hits += hit;
  }
  return hits;
}

std::uint64_t SwarBitmapAndPopcount(const std::uint64_t* a,
                                    const std::uint64_t* b,
                                    std::size_t num_words) {
  std::uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= num_words; i += 4) {
    c0 += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
    c1 += static_cast<std::uint64_t>(__builtin_popcountll(a[i + 1] & b[i + 1]));
    c2 += static_cast<std::uint64_t>(__builtin_popcountll(a[i + 2] & b[i + 2]));
    c3 += static_cast<std::uint64_t>(__builtin_popcountll(a[i + 3] & b[i + 3]));
  }
  for (; i < num_words; ++i) {
    c0 += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return c0 + c1 + c2 + c3;
}

// ---- AVX2: 8 lanes, runtime-dispatched via the target attribute so the
// translation unit builds without -mavx2 and the vtable is only selected
// when CPUID reports support. ----

#if FAST_SIMD_X86

__attribute__((target("avx2"))) std::size_t Avx2Core(
    const std::uint32_t* a, std::size_t na, const std::uint32_t* b,
    std::size_t nb, std::uint32_t* out, bool positions) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t k = 0;
  std::uint32_t last = 0;
  bool has_last = false;
  while (i < na && j + 8 <= nb) {
    const std::uint32_t x = a[i];
    if (has_last && last == x) {
      ++i;
      continue;
    }
    while (j + 8 <= nb && b[j + 7] < x) j += 8;
    if (j + 8 > nb) break;
    const __m256i vx = _mm256_set1_epi32(static_cast<int>(x));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const int m =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(vx, vb)));
    if (m != 0) {
      out[k++] = positions
                     ? static_cast<std::uint32_t>(j) +
                           static_cast<std::uint32_t>(
                               __builtin_ctz(static_cast<unsigned>(m)))
                     : x;
      last = x;
      has_last = true;
    }
    ++i;
  }
  return MergeRest(a, na, b, nb, i, j, out, k, positions, has_last, last);
}

std::size_t Avx2Intersect(const std::uint32_t* a, std::size_t na,
                          const std::uint32_t* b, std::size_t nb,
                          std::uint32_t* out) {
  return IntersectDispatch(&Avx2Core, 128, a, na, b, nb, out, false);
}

std::size_t Avx2IntersectPos(const std::uint32_t* a, std::size_t na,
                             const std::uint32_t* b, std::size_t nb,
                             std::uint32_t* out) {
  return IntersectDispatch(&Avx2Core, 128, a, na, b, nb, out, true);
}

__attribute__((target("avx2"))) std::size_t Avx2BatchContains(
    const std::uint32_t* sorted, std::size_t n, const std::uint32_t* keys,
    std::size_t nk, std::uint8_t* mask) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t hits = 0;
  for (; i < nk && j + 8 <= n; ++i) {
    const std::uint32_t x = keys[i];
    while (j + 8 <= n && sorted[j + 7] < x) j += 8;
    if (j + 8 > n) break;
    const __m256i vx = _mm256_set1_epi32(static_cast<int>(x));
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sorted + j));
    const int m =
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(vx, vs)));
    const std::uint8_t hit = m != 0 ? 1 : 0;
    mask[i] = hit;
    hits += hit;
  }
  for (; i < nk; ++i) {
    const std::uint32_t x = keys[i];
    j = GallopLower(sorted, j, n, x);
    const std::uint8_t hit = (j < n && sorted[j] == x) ? 1 : 0;
    mask[i] = hit;
    hits += hit;
  }
  return hits;
}

__attribute__((target("avx2"))) std::uint64_t Avx2BitmapAndPopcount(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t num_words) {
  std::uint64_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= num_words; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i both = _mm256_and_si256(va, vb);
    count += static_cast<std::uint64_t>(
        __builtin_popcountll(
            static_cast<std::uint64_t>(_mm256_extract_epi64(both, 0))) +
        __builtin_popcountll(
            static_cast<std::uint64_t>(_mm256_extract_epi64(both, 1))) +
        __builtin_popcountll(
            static_cast<std::uint64_t>(_mm256_extract_epi64(both, 2))) +
        __builtin_popcountll(
            static_cast<std::uint64_t>(_mm256_extract_epi64(both, 3))));
  }
  for (; i < num_words; ++i) {
    count += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return count;
}

#endif  // FAST_SIMD_X86

// ---- NEON: 4 lanes (aarch64 baseline, no runtime detection needed). ----

#if FAST_SIMD_NEON

inline std::uint64_t NeonMoveMask(uint32x4_t eq) {
  // Narrow each 32-bit lane to 16 bits: the result is one 64-bit word with
  // 0xFFFF per matching lane; ctz/16 recovers the lane index.
  return vget_lane_u64(vreinterpret_u64_u16(vmovn_u32(eq)), 0);
}

std::size_t NeonCore(const std::uint32_t* a, std::size_t na,
                     const std::uint32_t* b, std::size_t nb, std::uint32_t* out,
                     bool positions) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t k = 0;
  std::uint32_t last = 0;
  bool has_last = false;
  while (i < na && j + 4 <= nb) {
    const std::uint32_t x = a[i];
    if (has_last && last == x) {
      ++i;
      continue;
    }
    while (j + 4 <= nb && b[j + 3] < x) j += 4;
    if (j + 4 > nb) break;
    const std::uint64_t m =
        NeonMoveMask(vceqq_u32(vld1q_u32(b + j), vdupq_n_u32(x)));
    if (m != 0) {
      out[k++] = positions
                     ? static_cast<std::uint32_t>(j) +
                           static_cast<std::uint32_t>(__builtin_ctzll(m) >> 4)
                     : x;
      last = x;
      has_last = true;
    }
    ++i;
  }
  return MergeRest(a, na, b, nb, i, j, out, k, positions, has_last, last);
}

std::size_t NeonIntersect(const std::uint32_t* a, std::size_t na,
                          const std::uint32_t* b, std::size_t nb,
                          std::uint32_t* out) {
  return IntersectDispatch(&NeonCore, 64, a, na, b, nb, out, false);
}

std::size_t NeonIntersectPos(const std::uint32_t* a, std::size_t na,
                             const std::uint32_t* b, std::size_t nb,
                             std::uint32_t* out) {
  return IntersectDispatch(&NeonCore, 64, a, na, b, nb, out, true);
}

std::size_t NeonBatchContains(const std::uint32_t* sorted, std::size_t n,
                              const std::uint32_t* keys, std::size_t nk,
                              std::uint8_t* mask) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t hits = 0;
  for (; i < nk && j + 4 <= n; ++i) {
    const std::uint32_t x = keys[i];
    while (j + 4 <= n && sorted[j + 3] < x) j += 4;
    if (j + 4 > n) break;
    const std::uint64_t m =
        NeonMoveMask(vceqq_u32(vld1q_u32(sorted + j), vdupq_n_u32(x)));
    const std::uint8_t hit = m != 0 ? 1 : 0;
    mask[i] = hit;
    hits += hit;
  }
  for (; i < nk; ++i) {
    const std::uint32_t x = keys[i];
    j = GallopLower(sorted, j, n, x);
    const std::uint8_t hit = (j < n && sorted[j] == x) ? 1 : 0;
    mask[i] = hit;
    hits += hit;
  }
  return hits;
}

#endif  // FAST_SIMD_NEON

// ---- Vtables + dispatch. ----

const Kernels kScalarKernels = {
    Level::kScalar,         "scalar",
    &ScalarIntersect,       &ScalarIntersectPos,
    &ScalarBatchContains,   &ScalarBitmapAndPopcount,
    &ScalarFilterByBitmap,
};

const Kernels kSwarKernels = {
    Level::kSwar,           "swar",
    &SwarIntersect,         &SwarIntersectPos,
    &SwarBatchContains,     &SwarBitmapAndPopcount,
    &ScalarFilterByBitmap,
};

#if FAST_SIMD_X86
const Kernels kAvx2Kernels = {
    Level::kAvx2,           "avx2",
    &Avx2Intersect,         &Avx2IntersectPos,
    &Avx2BatchContains,     &Avx2BitmapAndPopcount,
    &ScalarFilterByBitmap,
};
#endif

#if FAST_SIMD_NEON
const Kernels kNeonKernels = {
    Level::kNeon,           "neon",
    &NeonIntersect,         &NeonIntersectPos,
    &NeonBatchContains,     &SwarBitmapAndPopcount,
    &ScalarFilterByBitmap,
};
#endif

std::atomic<const Kernels*> g_active{nullptr};

const Kernels& ResolveDefault() {
  if (const char* env = std::getenv("FAST_SIMD");
      env != nullptr && env[0] != '\0' && std::string_view(env) != "auto") {
    const auto level = ParseLevelName(env);
    if (level.has_value() && LevelAvailable(*level)) {
      return KernelsFor(*level);
    }
    FAST_LOG(WARNING) << "FAST_SIMD=" << env
                      << " is unknown or unavailable (have: "
                      << AvailableLevelsString() << "); using "
                      << LevelName(DetectBestLevel());
  }
  return KernelsFor(DetectBestLevel());
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSwar:
      return "swar";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "unknown";
}

std::optional<Level> ParseLevelName(std::string_view name) {
  for (int i = 0; i < kNumLevels; ++i) {
    const auto level = static_cast<Level>(i);
    if (name == LevelName(level)) return level;
  }
  return std::nullopt;
}

bool LevelAvailable(Level level) {
  switch (level) {
    case Level::kScalar:
    case Level::kSwar:
      return true;
    case Level::kAvx2:
#if FAST_SIMD_X86
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Level::kNeon:
#if FAST_SIMD_NEON
      return true;
#else
      return false;
#endif
  }
  return false;
}

Level DetectBestLevel() {
  if (LevelAvailable(Level::kAvx2)) return Level::kAvx2;
  if (LevelAvailable(Level::kNeon)) return Level::kNeon;
  return Level::kSwar;
}

std::string AvailableLevelsString() {
  std::string out;
  for (int i = 0; i < kNumLevels; ++i) {
    const auto level = static_cast<Level>(i);
    if (!LevelAvailable(level)) continue;
    if (!out.empty()) out += ",";
    out += LevelName(level);
  }
  return out;
}

const Kernels& KernelsFor(Level level) {
  switch (level) {
    case Level::kScalar:
      return kScalarKernels;
    case Level::kSwar:
      return kSwarKernels;
    case Level::kAvx2:
#if FAST_SIMD_X86
      if (LevelAvailable(Level::kAvx2)) return kAvx2Kernels;
#endif
      break;
    case Level::kNeon:
#if FAST_SIMD_NEON
      return kNeonKernels;
#else
      break;
#endif
  }
  return kScalarKernels;
}

const Kernels& Active() {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    const Kernels* resolved = &ResolveDefault();
    const Kernels* expected = nullptr;
    g_active.compare_exchange_strong(expected, resolved,
                                     std::memory_order_acq_rel);
    k = g_active.load(std::memory_order_acquire);
  }
  return *k;
}

Level ActiveLevel() { return Active().level; }

bool SetActive(Level level) {
  if (!LevelAvailable(level)) return false;
  g_active.store(&KernelsFor(level), std::memory_order_release);
  return true;
}

bool SetActiveByName(std::string_view name) {
  if (name == "auto") {
    // "auto" (the CLI default) must not trample a FAST_SIMD override: a
    // default flag value means "whatever the environment resolves to".
    g_active.store(&ResolveDefault(), std::memory_order_release);
    return true;
  }
  const auto level = ParseLevelName(name);
  if (!level.has_value()) return false;
  return SetActive(*level);
}

}  // namespace fast::simd
