#ifndef FAST_SIMD_INTERSECT_H_
#define FAST_SIMD_INTERSECT_H_

// Vectorized sorted-set kernels for the CPU matching hot path.
//
// Every CPU-side phase of the pipeline bottoms out in operations over sorted
// uint32 arrays: candidate lists and CST adjacency are sorted (cst/cst.h),
// graph adjacency is sorted CSR (graph/graph.h). This layer provides those
// operations 4-8 lanes wide, behind one vtable selected at startup:
//
//   kScalar  portable reference (merge + galloping binary search)
//   kSwar    64-bit "SIMD within a register": two lanes per word, any-zero
//            halfword trick for membership tests; works everywhere
//   kAvx2    8-lane blocked merge via runtime-dispatched AVX2 intrinsics
//            (__attribute__((target))), selected by CPUID at startup
//   kNeon    4-lane equivalent for aarch64
//
// Selection: Active() picks the best level the CPU supports, overridable by
// the FAST_SIMD environment variable or the --simd=scalar|swar|avx2|neon
// flag the serving tools and benches expose (SetActiveByName) for A/B runs
// and CI equivalence gates. All levels are semantically identical; the
// property tests (tests/simd_kernels_test.cc) force each implementation
// against the scalar reference.
//
// Input contract: arrays are sorted ascending. Duplicates are tolerated
// (candidate/adjacency producers emit strictly sorted sets, but the kernels
// are defined for non-decreasing inputs): intersect/intersect_pos emit each
// distinct common value once, batch_contains answers per key occurrence.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace fast::simd {

enum class Level : std::uint8_t { kScalar = 0, kSwar, kAvx2, kNeon };
inline constexpr int kNumLevels = 4;

const char* LevelName(Level level);

// Parses "scalar" | "swar" | "avx2" | "neon" (case-sensitive).
std::optional<Level> ParseLevelName(std::string_view name);

// Whether this build + CPU can run `level`. kScalar/kSwar are always
// available; kAvx2 needs an x86 CPU with AVX2; kNeon an aarch64 build.
bool LevelAvailable(Level level);

// Best available level for this CPU (kAvx2 > kNeon > kSwar).
Level DetectBestLevel();

// Comma-separated list of available level names, for usage/error messages.
std::string AvailableLevelsString();

// One implementation of the kernel set. All function pointers are non-null.
struct Kernels {
  Level level;
  const char* name;

  // Sorted set intersection: writes the distinct common values of a and b to
  // `out` (ascending) and returns how many. `out` must hold min(na, nb)
  // elements and may alias `a` (in-place refinement); it must not overlap b.
  // Galloping is applied internally for heavily skewed size pairs.
  std::size_t (*intersect)(const std::uint32_t* a, std::size_t na,
                           const std::uint32_t* b, std::size_t nb,
                           std::uint32_t* out);

  // As intersect, but emits for each distinct common value its position (the
  // first occurrence index) in `b` instead of the value. Output positions are
  // strictly ascending — this is the vectorized position remap used by CST
  // materialization (targets are positions into the neighbor candidate set).
  // Unlike intersect, `out` must not overlap either input (the skewed-pair
  // path iterates b while galloping in a, so writes can precede reads).
  std::size_t (*intersect_pos)(const std::uint32_t* a, std::size_t na,
                               const std::uint32_t* b, std::size_t nb,
                               std::uint32_t* out);

  // Batched sorted-list membership: mask[i] = 1 iff keys[i] appears in
  // sorted[0..n). `keys` must be sorted ascending too (the candidate spans
  // probed by the matcher are). Returns the number of hits.
  std::size_t (*batch_contains)(const std::uint32_t* sorted, std::size_t n,
                                const std::uint32_t* keys, std::size_t nk,
                                std::uint8_t* mask);

  // Word-parallel range AND + population count over two equally sized
  // word-aligned bitmaps (simd/bitset.h).
  std::uint64_t (*bitmap_and_popcount)(const std::uint64_t* a,
                                       const std::uint64_t* b,
                                       std::size_t num_words);

  // Bitmap-filtered selection: for each i with keys[i] < num_bits and bit
  // keys[i] set, appends i to `out` (ascending). Returns the count. This is
  // the hub-bitmap intersection path: keys is a sorted candidate list, the
  // bitmap a hub vertex's adjacency, the emitted indices are candidate
  // positions.
  std::size_t (*filter_by_bitmap)(const std::uint64_t* bits,
                                  std::size_t num_bits,
                                  const std::uint32_t* keys, std::size_t nk,
                                  std::uint32_t* out);
};

// The kernel table for `level`. Falls back to the scalar table when the
// level is unavailable in this build/CPU.
const Kernels& KernelsFor(Level level);

// Process-wide active kernel table. First use resolves the FAST_SIMD
// environment override, else DetectBestLevel(). Reads are wait-free.
const Kernels& Active();
Level ActiveLevel();

// Overrides the active level. Returns false (and changes nothing) when the
// level is unavailable. "auto" (SetActiveByName) re-resolves the default:
// the FAST_SIMD environment override if set and available, else the best
// available level.
bool SetActive(Level level);
bool SetActiveByName(std::string_view name);

}  // namespace fast::simd

#endif  // FAST_SIMD_INTERSECT_H_
