#include "tenant/tenant_router.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>

#include "obs/profiler.h"
#include "util/logging.h"
#include "util/wrr.h"

namespace fast::tenant {

struct TenantRouter::Request {
  RequestId id = 0;
  std::shared_ptr<Tenant> tenant;  // keeps a removed tenant's state alive
  service::CanonicalQuery canonical;
  RequestOptions opts;
  double deadline_seconds = 0.0;  // resolved; 0 = none
  Timer submitted;
  // Span recorder (null when tracing is off). Recorded on the client thread
  // up to the queue push under sched_mu_, then exclusively on the worker that
  // popped the request — sched_mu_ orders the two. shared_ptr because a
  // transport front end may have started it before Submit (resume_trace).
  std::shared_ptr<obs::RequestTrace> trace;
  // Delivery slot (Wait or completion callback) in the ledger.
  std::shared_ptr<service::RequestLedger::Slot> slot;
};

struct TenantRouter::Tenant {
  Tenant(std::string tenant_id, Graph graph, const TenantOptions& options,
         obs::MetricsRegistry* metrics)
      : id(std::move(tenant_id)),
        opts(options),
        state(std::move(graph),
              service::GraphStateOptions{options.plan_cache_capacity,
                                         options.plan_cache_byte_budget,
                                         /*device_queue_key=*/id, metrics}) {
    wrr.weight = std::max<std::uint32_t>(1, options.weight);
  }

  const std::string id;
  const TenantOptions opts;
  service::GraphState state;  // internally synchronized

  // --- Scheduler state, guarded by TenantRouter::sched_mu_. ---
  std::deque<std::shared_ptr<Request>> queue;
  WrrQueueState wrr;          // deficit-WRR state (util/wrr.h)
  std::size_t in_flight = 0;  // dispatched, not yet finished
  bool removed = false;       // deregistered; admission closed

  // --- Per-tenant counters, guarded by TenantRouter::mu_. ---
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t cancelled_midrun = 0;
  LatencyHistogram latency;
};

std::string RouterStats::Summary() const {
  char buf[360];
  std::snprintf(buf, sizeof(buf),
                "tenants=%zu qps=%.1f completed=%llu failed=%llu "
                "rejected(queue=%llu quota=%llu deadline=%llu) "
                "cancelled_midrun=%llu latency[%s]",
                num_tenants, QueriesPerSecond(),
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(rejected_queue_full),
                static_cast<unsigned long long>(rejected_quota),
                static_cast<unsigned long long>(rejected_deadline),
                static_cast<unsigned long long>(cancelled_midrun),
                latency.Summary().c_str());
  return buf;
}

TenantRouter::TenantRouter(RouterOptions options)
    : options_(std::move(options)),
      obs_(obs::RequestObs::Options{options_.metrics, options_.tracing,
                                    options_.slow_request_seconds,
                                    options_.trace_ring_capacity, options_.slo,
                                    options_.flight}) {
  if (options_.device_mode) {
    // One simulated card shared by every tenant, modeling the service-level
    // device under the service-level variant.
    device::DeviceOptions dopts = options_.device;
    dopts.fpga = options_.run.fpga;
    dopts.variant = options_.run.variant;
    dopts.metrics = options_.metrics;
    device_ = std::make_unique<device::DeviceExecutor>(dopts);
  }
  std::size_t n = options_.num_workers;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TenantRouter::~TenantRouter() { Shutdown(); }

Status TenantRouter::AddTenant(const std::string& id, Graph graph,
                               TenantOptions opts) {
  if (opts.weight == 0) opts.weight = 1;
  // Build the tenant (including the graph move) outside the scheduler lock.
  auto t = std::make_shared<Tenant>(id, std::move(graph), opts, options_.metrics);
  std::lock_guard<util::ProfiledMutex> lock(sched_mu_);
  if (stopping_) return Status::FailedPrecondition("router is shut down");
  if (!tenants_.emplace(id, std::move(t)).second) {
    return Status::InvalidArgument("tenant id already registered: " + id);
  }
  // The tenant's WRR weight doubles as its device-round weight: dispatch
  // slots and device slots are bought by the same knob. Registered under
  // sched_mu_ so no Submit can race partitions onto a default-weight queue
  // and no RemoveTenant can interleave (sched_mu_ -> device mutex is the
  // established order; RemoveTenant's DropQueue uses the same one).
  if (device_ != nullptr) device_->SetQueueWeight(id, opts.weight);
  return Status::OK();
}

Status TenantRouter::RemoveTenant(const std::string& id) {
  std::unique_lock<util::ProfiledMutex> lock(sched_mu_);
  auto it = tenants_.find(id);
  if (it == tenants_.end()) return Status::NotFound("unknown tenant: " + id);
  std::shared_ptr<Tenant> t = it->second;
  // Close admission first (Submit re-checks `removed` under sched_mu_), then
  // wait for the backlog to drain: queued requests are still dispatched by
  // the workers and finish on the snapshots they capture — the shared_ptr
  // in each Request keeps the deregistered state alive until the last one.
  t->removed = true;
  tenants_.erase(it);
  drained_cv_.wait(lock, [&] { return t->queue.empty() && t->in_flight == 0; });
  // Drained: no request of this tenant is queued or in flight, so its device
  // queue (if any) is empty and can be dropped.
  if (device_ != nullptr) device_->DropQueue(id);
  return Status::OK();
}

std::shared_ptr<TenantRouter::Tenant> TenantRouter::FindTenant(
    const std::string& id) const {
  std::lock_guard<util::ProfiledMutex> lock(sched_mu_);
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second;
}

StatusOr<TenantRouter::RequestId> TenantRouter::Submit(
    const service::SessionKey& tenant_id, const QueryGraph& q,
    RequestOptions opts) {
  std::shared_ptr<Tenant> t = FindTenant(tenant_id);
  if (t == nullptr) return Status::NotFound("unknown tenant: " + tenant_id);

  auto req = std::make_shared<Request>();
  // A transport-started trace (anchored at frame receive, already carrying
  // the recv/decode spans) resumes here; otherwise tracing starts now.
  req->trace = opts.resume_trace != nullptr ? std::move(opts.resume_trace)
                                            : obs_.StartTrace();
  // No ScopedSpan: after the queue push the worker owns the trace, so nothing
  // on this thread may touch it past that point. Begin(kQueue) below closes
  // the admit span.
  if (req->trace != nullptr) req->trace->Begin(obs::Span::kAdmit);
  // Canonicalization is the expensive part of admission; it runs outside
  // every lock.
  FAST_ASSIGN_OR_RETURN(req->canonical, service::CanonicalizeQuery(q));
  req->tenant = t;
  req->opts = std::move(opts);
  req->deadline_seconds = req->opts.deadline_seconds >= 0.0
                              ? req->opts.deadline_seconds
                              : options_.default_deadline_seconds;

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Status::FailedPrecondition("router is shut down");
  }
  req->slot = std::make_shared<service::RequestLedger::Slot>();
  req->slot->on_complete = req->opts.on_complete;
  const RequestId id = ledger_.Add(req->slot);
  req->id = id;

  Status admit = Status::OK();
  bool quota_reject = false;
  {
    std::lock_guard<util::ProfiledMutex> lock(sched_mu_);
    if (stopping_) {
      admit = Status::FailedPrecondition("router is shut down");
    } else if (t->removed) {
      // Lost the race with RemoveTenant between lookup and enqueue.
      admit = Status::NotFound("unknown tenant: " + tenant_id);
    } else if (total_queued_ >= options_.queue_capacity) {
      admit = Status::ResourceExhausted("router queue full");
    } else if (t->opts.max_queued > 0 && t->queue.size() >= t->opts.max_queued) {
      admit = Status::ResourceExhausted("tenant quota exceeded: " + tenant_id);
      quota_reject = true;
    } else {
      // Open the queue span BEFORE the push: once the request is queued a
      // worker may already be recording into the trace; sched_mu_ orders this
      // write against the worker's End().
      if (req->trace != nullptr) req->trace->Begin(obs::Span::kQueue);
      t->queue.push_back(req);
      ++total_queued_;
      obs_.SetQueueDepth(total_queued_);
      WrrActivate(active_, t);
    }
  }
  if (!admit.ok()) ledger_.Forget(id);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!admit.ok()) {
      if (admit.code() == StatusCode::kResourceExhausted) {
        if (quota_reject) {
          ++rejected_quota_;
          ++t->rejected_quota;
          obs_.OnRejectedQuota();
        } else {
          ++rejected_queue_full_;
          ++t->rejected_queue_full;
          obs_.OnRejectedQueueFull();
        }
      }
    } else {
      ++submitted_;  // counts admitted requests only
      ++t->submitted;
      obs_.OnSubmitted();
    }
  }
  if (!admit.ok()) return admit;
  sched_cv_.notify_one();
  return id;
}

StatusOr<RequestResult> TenantRouter::Wait(RequestId id) {
  return ledger_.Wait(id);
}

StatusOr<std::uint64_t> TenantRouter::SwapGraph(const std::string& tenant_id,
                                                Graph next) {
  std::shared_ptr<Tenant> t = FindTenant(tenant_id);
  if (t == nullptr) return Status::NotFound("unknown tenant: " + tenant_id);
  return t->state.SwapGraph(std::move(next));
}

StatusOr<std::uint64_t> TenantRouter::ApplyDelta(const std::string& tenant_id,
                                                 const GraphDelta& delta) {
  std::shared_ptr<Tenant> t = FindTenant(tenant_id);
  if (t == nullptr) return Status::NotFound("unknown tenant: " + tenant_id);
  return t->state.ApplyDelta(delta);
}

StatusOr<GraphSnapshot> TenantRouter::snapshot(
    const std::string& tenant_id) const {
  std::shared_ptr<Tenant> t = FindTenant(tenant_id);
  if (t == nullptr) return Status::NotFound("unknown tenant: " + tenant_id);
  return t->state.snapshot();
}

void TenantRouter::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  {
    std::lock_guard<util::ProfiledMutex> lock(sched_mu_);
    stopping_ = true;
  }
  // Workers drain the queued backlog, then exit; the shared device shuts
  // down only after every worker has reaped its in-flight request.
  sched_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (device_ != nullptr) device_->Shutdown();
}

std::shared_ptr<TenantRouter::Request> TenantRouter::PopNext() {
  std::unique_lock<util::ProfiledMutex> lock(sched_mu_);
  sched_cv_.wait(lock, [&] { return stopping_ || total_queued_ > 0; });
  if (total_queued_ == 0) return nullptr;  // stopping and drained
  // Deficit-style weighted round robin over the backlogged tenants — the
  // shared discipline of util/wrr.h, also used by the device executor's
  // round scheduler.
  FAST_CHECK(!active_.empty());
  std::shared_ptr<Request> req = WrrPop(
      active_,
      [](Tenant& t) {
        FAST_CHECK(!t.queue.empty());
        std::shared_ptr<Request> r = std::move(t.queue.front());
        t.queue.pop_front();
        return r;
      },
      [](const Tenant& t) { return t.queue.empty(); });
  --total_queued_;
  obs_.SetQueueDepth(total_queued_);
  ++req->tenant->in_flight;
  return req;
}

std::size_t TenantRouter::queue_depth() const {
  std::lock_guard<util::ProfiledMutex> lock(sched_mu_);
  return total_queued_;
}

void TenantRouter::WorkerLoop(std::size_t index) {
  obs::Profiler::RegisterCurrentThread("worker-" + std::to_string(index),
                                       obs::ThreadKind::kWorker);
  while (true) {
    std::shared_ptr<Request> req;
    {
      FAST_PROF_STAGE("queue_pop");
      req = PopNext();
    }
    if (req == nullptr) return;
    FAST_PROF_STAGE("serve");
    if (req->trace != nullptr) req->trace->End();  // closes the queue span
    RequestResult result;
    // Dispatch captures THIS tenant's snapshot inside Serve; concurrent
    // swaps on other tenants share no state with this request. The
    // thread-CPU clock around it is this tenant's host-cost charge.
    const std::uint64_t cpu_start = ThreadCpuNanos();
    req->tenant->state.Serve(req->canonical, req->opts, options_.run,
                             req->submitted.ElapsedSeconds(),
                             req->deadline_seconds, device_.get(),
                             req->trace.get(), &result);
    Finish(std::move(req), std::move(result), ThreadCpuNanos() - cpu_start);
  }
}

void TenantRouter::Finish(std::shared_ptr<Request> req, RequestResult result,
                          std::uint64_t cpu_ns) {
  result.total_seconds = req->submitted.ElapsedSeconds();
  Tenant& t = *req->tenant;
  obs::RequestObs::Outcome outcome;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (result.status.ok()) {
      ++completed_;
      ++t.completed;
      latency_.Record(result.total_seconds);
      t.latency.Record(result.total_seconds);
      outcome = obs::RequestObs::Outcome::kCompleted;
    } else if (result.status.code() == StatusCode::kDeadlineExceeded) {
      // graph_epoch distinguishes "expired while queued" (never dispatched)
      // from "aborted mid-run by the cancellation token".
      if (result.graph_epoch == 0) {
        ++rejected_deadline_;
        ++t.rejected_deadline;
        outcome = obs::RequestObs::Outcome::kRejectedDeadline;
      } else {
        ++cancelled_midrun_;
        ++t.cancelled_midrun;
        outcome = obs::RequestObs::Outcome::kCancelledMidrun;
      }
    } else {
      ++failed_;
      ++t.failed;
      outcome = obs::RequestObs::Outcome::kFailed;
    }
  }
  obs::RequestCost cost;
  cost.cpu_ns = cpu_ns;
  cost.device_kernel_ns =
      static_cast<std::uint64_t>(result.run.kernel_seconds * 1e9);
  cost.dma_bytes = result.run.dma_bytes;
  cost.queue_wait_ns = static_cast<std::uint64_t>(result.queue_seconds * 1e9);
  cost.plan_cache_bytes = result.plan_bytes_charged;
  result.trace = obs_.OnFinished(outcome, result.total_seconds,
                                 std::move(req->trace), req->id,
                                 result.status.ok(),
                                 StatusCodeToString(result.status.code()), t.id,
                                 cost);
  {
    std::lock_guard<util::ProfiledMutex> lock(sched_mu_);
    --t.in_flight;
    if (t.removed && t.in_flight == 0 && t.queue.empty()) {
      drained_cv_.notify_all();
    }
  }
  service::RequestLedger::Deliver(req->id, req->slot, std::move(result));
}

void TenantRouter::FillTenantStats(const Tenant& t, TenantStats* out) {
  // Caller holds mu_ (counters); GraphState fields are fetched by the caller
  // after mu_ is released.
  out->id = t.id;
  out->weight = std::max<std::uint32_t>(1, t.opts.weight);
  out->submitted = t.submitted;
  out->completed = t.completed;
  out->failed = t.failed;
  out->rejected_queue_full = t.rejected_queue_full;
  out->rejected_quota = t.rejected_quota;
  out->rejected_deadline = t.rejected_deadline;
  out->cancelled_midrun = t.cancelled_midrun;
  out->latency = t.latency;
}

RouterStats TenantRouter::stats() const {
  std::vector<std::shared_ptr<Tenant>> tenants;
  {
    std::lock_guard<util::ProfiledMutex> lock(sched_mu_);
    tenants.reserve(tenants_.size());
    for (const auto& [id, t] : tenants_) tenants.push_back(t);
  }
  std::sort(tenants.begin(), tenants.end(),
            [](const auto& a, const auto& b) { return a->id < b->id; });

  RouterStats s;
  s.num_tenants = tenants.size();
  s.tenants.resize(tenants.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.rejected_queue_full = rejected_queue_full_;
    s.rejected_quota = rejected_quota_;
    s.rejected_deadline = rejected_deadline_;
    s.cancelled_midrun = cancelled_midrun_;
    s.latency = latency_;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      FillTenantStats(*tenants[i], &s.tenants[i]);
    }
  }
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    tenants[i]->state.publication_stats(&s.tenants[i].epoch,
                                        &s.tenants[i].graph_swaps);
    s.tenants[i].cache = tenants[i]->state.cache_stats();
  }
  if (device_ != nullptr) {
    s.device_mode = true;
    s.device = device_->stats();
  }
  s.uptime_seconds = uptime_.ElapsedSeconds();
  return s;
}

StatusOr<TenantStats> TenantRouter::tenant_stats(
    const std::string& tenant_id) const {
  std::shared_ptr<Tenant> t = FindTenant(tenant_id);
  if (t == nullptr) return Status::NotFound("unknown tenant: " + tenant_id);
  TenantStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    FillTenantStats(*t, &s);
  }
  t->state.publication_stats(&s.epoch, &s.graph_swaps);
  s.cache = t->state.cache_stats();
  return s;
}

std::vector<std::string> TenantRouter::tenant_ids() const {
  std::vector<std::string> ids;
  {
    std::lock_guard<util::ProfiledMutex> lock(sched_mu_);
    ids.reserve(tenants_.size());
    for (const auto& [id, t] : tenants_) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace fast::tenant
