#ifndef FAST_TENANT_TENANT_ROUTER_H_
#define FAST_TENANT_TENANT_ROUTER_H_

// Multi-graph tenancy: many data graphs served by ONE worker pool.
//
//                         ┌────────────────────────────────────────┐
//   Submit(tenant, q) ──▶ │ registry: tenant id ─▶ GraphState      │
//          │              │   (epoch snapshot + plan/CST cache)    │
//     admission:          └────────────────────────────────────────┘
//     global bound +                        │
//     per-tenant quota     per-tenant FIFO queues (one per tenant)
//          │                                │
//          └──────▶ weighted round-robin dequeue ──▶ shared workers
//                                                         │
//                                    capture THAT tenant's snapshot,
//                                    execute, per-tenant p50/p99 stats
//
// One MatchService per graph costs N worker pools and N uncoordinated
// queues. TenantRouter hosts N graphs in one process: a registry of tenants
// (each a GraphState — the same epoch-snapshotted graph + epoch-tagged plan
// cache that MatchService uses, see service/graph_state.h) in front of a
// single shared worker pool. Requests carry a tenant id; dispatch captures
// that tenant's current snapshot, so per-tenant SwapGraph/ApplyDelta keep
// working independently and a swap on tenant A is invisible to tenant B.
//
// Admission and fairness:
//   - a process-wide bound on the total queued requests (global admission
//     control — RESOURCE_EXHAUSTED when the process is saturated);
//   - an optional per-tenant quota on queued requests, so one hot tenant
//     cannot occupy the whole global queue;
//   - deficit-style weighted round-robin dequeue: workers serve up to
//     `weight` consecutive requests per tenant per cycle over the backlogged
//     tenants, so dispatch slots — not queue arrival order — are what a
//     tenant's weight buys. A hot tenant saturating its queue cannot starve
//     a cold one.
//
// Tenants can be added and removed at runtime. RemoveTenant stops new
// admissions immediately and then drains: requests already queued or
// dispatched finish normally on the snapshots they capture (the removed
// tenant's state stays alive via shared_ptr until the last request drops
// it); RemoveTenant returns once the tenant has no queued or in-flight work.
//
// Deadlines behave exactly as in MatchService: checked at dispatch, and
// enforced mid-run via a cooperative cancellation token armed with the
// remaining deadline.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/driver.h"
#include "device/device_executor.h"
#include "graph/graph.h"
#include "graph/graph_delta.h"
#include "obs/request_obs.h"
#include "query/query_graph.h"
#include "service/frontend.h"
#include "service/graph_state.h"
#include "util/latency_histogram.h"
#include "util/profiled_mutex.h"
#include "util/status.h"
#include "util/timer.h"

namespace fast::tenant {

using service::GraphSnapshot;
using service::RequestOptions;
using service::RequestResult;

// Per-tenant knobs: the tenant graph's plan-cache budget (PlanCacheOptions,
// see service/frontend.h) plus admission quota and WRR weight. Non-aggregate
// on purpose — set fields by name.
struct TenantOptions : service::PlanCacheOptions {
  TenantOptions() = default;

  // Per-tenant admission quota: max requests queued (not yet dispatched)
  // for this tenant. 0 = bounded only by the global queue capacity.
  std::size_t max_queued = 0;

  // Weighted round-robin weight: consecutive dispatch slots this tenant
  // gets per cycle over the backlogged tenants. 0 is treated as 1. In
  // device mode this doubles as the tenant's device-round weight.
  std::uint32_t weight = 1;
};
static_assert(!std::is_aggregate_v<TenantOptions>,
              "TenantOptions must not be positionally brace-initializable");

// The shared pool/queue/obs knobs (service::CommonServingOptions — see
// service/frontend.h for every field) are the whole configuration: the
// router adds nothing pool-level of its own; per-graph knobs live in
// TenantOptions. In device mode each tenant's WRR weight doubles as its
// device-round weight, and queue_capacity bounds the total queued requests
// across all tenants.
struct RouterOptions : service::CommonServingOptions {
  RouterOptions() = default;
};
static_assert(!std::is_aggregate_v<RouterOptions>,
              "RouterOptions must not be positionally brace-initializable");

struct TenantStats {
  std::string id;
  std::uint32_t weight = 1;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected_queue_full = 0;  // global queue was full
  std::uint64_t rejected_quota = 0;       // per-tenant quota exceeded
  std::uint64_t rejected_deadline = 0;    // deadline passed while queued
  std::uint64_t cancelled_midrun = 0;     // deadline tripped during the run
  std::uint64_t epoch = 0;
  std::uint64_t graph_swaps = 0;
  service::PlanCacheStats cache;
  LatencyHistogram latency;  // Submit -> completion, successful requests
};

struct RouterStats {
  std::size_t num_tenants = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t cancelled_midrun = 0;
  LatencyHistogram latency;  // aggregate over all tenants
  double uptime_seconds = 0.0;
  bool device_mode = false;
  device::DeviceStats device;  // zero unless device_mode
  std::vector<TenantStats> tenants;  // sorted by tenant id

  double QueriesPerSecond() const {
    return uptime_seconds > 0.0 ? static_cast<double>(completed) / uptime_seconds
                                : 0.0;
  }
  std::string Summary() const;
};

class TenantRouter : public service::Frontend {
 public:
  using RequestId = service::Frontend::RequestId;

  // Workers start immediately; tenants are added afterwards (or at any
  // later point).
  explicit TenantRouter(RouterOptions options = {});
  ~TenantRouter() override;

  TenantRouter(const TenantRouter&) = delete;
  TenantRouter& operator=(const TenantRouter&) = delete;

  // Registers `id` serving `graph` (published as that tenant's epoch 1).
  // ALREADY_EXISTS is reported as INVALID_ARGUMENT; FAILED_PRECONDITION
  // after Shutdown.
  Status AddTenant(const std::string& id, Graph graph, TenantOptions opts = {});

  // Deregisters `id`: new Submits fail with NOT_FOUND immediately; requests
  // already admitted drain normally on their captured snapshots. Blocks
  // until the tenant has no queued or in-flight requests. The tenant's
  // stats are discarded with it.
  Status RemoveTenant(const std::string& id);

  // Frontend: the session key is the tenant id. Canonicalizes q and
  // enqueues it for that tenant. NOT_FOUND for an unknown tenant,
  // RESOURCE_EXHAUSTED when the global queue or the tenant's quota is full,
  // INVALID_ARGUMENT for malformed queries, FAILED_PRECONDITION after
  // Shutdown.
  StatusOr<RequestId> Submit(const service::SessionKey& tenant_id,
                             const QueryGraph& q,
                             RequestOptions opts = {}) override;

  // Blocks until the request completes. NOT_FOUND (outer status) for
  // unknown, already-waited, or callback-mode ids.
  StatusOr<RequestResult> Wait(RequestId id) override;

  // SubmitAndWait(tenant_id, q, opts) is inherited: the Status covers both
  // admission and execution.

  // Per-tenant snapshot publication; other tenants' queries and caches are
  // unaffected. NOT_FOUND for unknown tenants.
  StatusOr<std::uint64_t> SwapGraph(const std::string& tenant_id, Graph next);
  StatusOr<std::uint64_t> ApplyDelta(const std::string& tenant_id,
                                     const GraphDelta& delta);

  // The tenant's currently published snapshot.
  StatusOr<GraphSnapshot> snapshot(const std::string& tenant_id) const;

  // Stops admission, drains all queued requests, joins workers. Idempotent;
  // also run by the destructor.
  void Shutdown() override;

  RouterStats stats() const;
  StatusOr<TenantStats> tenant_stats(const std::string& tenant_id) const;
  std::vector<std::string> tenant_ids() const;
  std::size_t num_workers() const { return workers_.size(); }

  // Requests queued but not yet dispatched, across all tenants
  // (periodic-sampler probe).
  std::size_t queue_depth() const override;

  // Admin-plane surfaces (service/frontend.h). Every registered tenant has
  // published epoch >= 1 by construction, so readiness is "not shut down".
  const obs::RequestObs* request_obs() const override { return &obs_; }
  bool ready() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return !shutdown_;
  }
  std::vector<obs::TimelineRound> device_rounds() const override {
    return device_ != nullptr ? device_->recent_rounds()
                              : std::vector<obs::TimelineRound>{};
  }

  // Newest-last rings of retained traces (empty when tracing is off).
  std::vector<std::shared_ptr<const obs::CompletedTrace>> recent_traces() const {
    return obs_.recent_traces();
  }
  std::vector<std::shared_ptr<const obs::CompletedTrace>> slow_traces() const {
    return obs_.slow_traces();
  }

 private:
  struct Request;
  struct Tenant;

  void WorkerLoop(std::size_t index);
  // Pops the next request under weighted round-robin; blocks until work is
  // available or shutdown has drained everything (then returns nullptr).
  std::shared_ptr<Request> PopNext();
  void Finish(std::shared_ptr<Request> req, RequestResult result,
              std::uint64_t cpu_ns);
  std::shared_ptr<Tenant> FindTenant(const std::string& id) const;
  static void FillTenantStats(const Tenant& t, TenantStats* out);

  const RouterOptions options_;
  obs::RequestObs obs_;
  Timer uptime_;
  // Id allocation + Wait/callback delivery (service/frontend.h).
  service::RequestLedger ledger_;
  // The shared simulated card (device mode only); created before the workers
  // that submit to it, shut down after they drain.
  std::unique_ptr<device::DeviceExecutor> device_;
  std::vector<std::thread> workers_;

  // Scheduler state: registry, per-tenant queues, the WRR active list, and
  // the global queued count. Never held while executing a query.
  mutable util::ProfiledMutex sched_mu_{"router_sched"};
  std::condition_variable_any sched_cv_;    // workers: work available / stopping
  std::condition_variable_any drained_cv_;  // RemoveTenant: tenant fully drained
  std::unordered_map<std::string, std::shared_ptr<Tenant>> tenants_;
  std::list<std::shared_ptr<Tenant>> active_;  // tenants with queued work
  std::size_t total_queued_ = 0;
  bool stopping_ = false;

  // All stats counters (global and per-tenant) + the shutdown flag.
  // Acquired strictly after sched_mu_ is released.
  mutable std::mutex mu_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t rejected_queue_full_ = 0;
  std::uint64_t rejected_quota_ = 0;
  std::uint64_t rejected_deadline_ = 0;
  std::uint64_t cancelled_midrun_ = 0;
  LatencyHistogram latency_;
  bool shutdown_ = false;
};

}  // namespace fast::tenant

#endif  // FAST_TENANT_TENANT_ROUTER_H_
