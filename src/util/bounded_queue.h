#ifndef FAST_UTIL_BOUNDED_QUEUE_H_
#define FAST_UTIL_BOUNDED_QUEUE_H_

// Bounded multi-producer multi-consumer FIFO with close semantics.
//
// Producers use TryPush for admission control (a full queue rejects instead
// of blocking the caller — the service turns that into RESOURCE_EXHAUSTED).
// Consumers block in Pop until an item arrives or the queue is closed and
// drained, which is the worker-shutdown signal.
//
// Contention accounting: the internal lock is a ProfiledMutex (named via the
// constructor, aggregated into the fast_lock_* families), and every blocking
// wait is counted — pushes_blocked / pops_blocked and the nanoseconds spent
// blocked, snapshot via Stats(). Pop blocking is the workers-idle signal;
// push blocking is genuine back-pressure. An optional block observer fires
// after each blocking wait completes (outside the lock) so the owning
// service can mirror the counters into its metrics registry.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>

#include "util/profiled_mutex.h"
#include "util/timer.h"

namespace fast {

struct BoundedQueueStats {
  std::uint64_t pushes_blocked = 0;   // Push calls that had to wait for space
  std::uint64_t pops_blocked = 0;     // Pop calls that had to wait for items
  std::uint64_t push_block_ns = 0;    // total ns Push callers spent blocked
  std::uint64_t pop_block_ns = 0;     // total ns Pop callers spent blocked

  std::uint64_t total_block_ns() const { return push_block_ns + pop_block_ns; }
};

template <typename T>
class BoundedQueue {
 public:
  // `lock_name` (static storage duration) names the internal mutex in the
  // process-wide lock-stats registry; nullptr keeps it anonymous.
  explicit BoundedQueue(std::size_t capacity, const char* lock_name = nullptr)
      : capacity_(capacity), mu_(lock_name) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Called after a blocking wait completes: (is_push, nanoseconds blocked).
  // Set once, before producers/consumers start.
  void set_block_observer(std::function<void(bool, std::uint64_t)> observer) {
    block_observer_ = std::move(observer);
  }

  // Non-blocking push; returns false if the queue is full or closed.
  bool TryPush(T value) {
    {
      std::lock_guard<util::ProfiledMutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocking push; returns false only if the queue is (or becomes) closed.
  bool Push(T value) {
    std::uint64_t blocked_ns = 0;
    bool pushed = false;
    {
      std::unique_lock<util::ProfiledMutex> lock(mu_);
      if (!closed_ && items_.size() >= capacity_) {
        pushes_blocked_.fetch_add(1, std::memory_order_relaxed);
        Timer wait;
        not_full_.wait(lock,
                       [&] { return closed_ || items_.size() < capacity_; });
        blocked_ns = static_cast<std::uint64_t>(wait.ElapsedNanos());
        push_block_ns_.fetch_add(blocked_ns, std::memory_order_relaxed);
      }
      if (!closed_) {
        items_.push_back(std::move(value));
        pushed = true;
      }
    }
    if (pushed) not_empty_.notify_one();
    if (blocked_ns > 0) NotifyBlocked(true, blocked_ns);
    return pushed;
  }

  // Blocks until an item is available or the queue is closed and empty
  // (returns nullopt — the consumer should exit).
  std::optional<T> Pop() {
    std::optional<T> out;
    std::uint64_t blocked_ns = 0;
    {
      std::unique_lock<util::ProfiledMutex> lock(mu_);
      if (!closed_ && items_.empty()) {
        pops_blocked_.fetch_add(1, std::memory_order_relaxed);
        Timer wait;
        not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        blocked_ns = static_cast<std::uint64_t>(wait.ElapsedNanos());
        pop_block_ns_.fetch_add(blocked_ns, std::memory_order_relaxed);
      }
      if (!items_.empty()) {
        out = std::move(items_.front());
        items_.pop_front();
      }
    }
    if (out.has_value()) not_full_.notify_one();
    if (blocked_ns > 0) NotifyBlocked(false, blocked_ns);
    return out;  // nullopt = closed and drained; the consumer should exit
  }

  // After Close: pushes fail, Pop drains the backlog then returns nullopt.
  void Close() {
    {
      std::lock_guard<util::ProfiledMutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<util::ProfiledMutex> lock(mu_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }

  BoundedQueueStats Stats() const {
    BoundedQueueStats s;
    s.pushes_blocked = pushes_blocked_.load(std::memory_order_relaxed);
    s.pops_blocked = pops_blocked_.load(std::memory_order_relaxed);
    s.push_block_ns = push_block_ns_.load(std::memory_order_relaxed);
    s.pop_block_ns = pop_block_ns_.load(std::memory_order_relaxed);
    return s;
  }

  // The internal lock's contention counters (also aggregated by name in the
  // process-wide registry when the queue was named).
  util::LockStats LockStats() const { return mu_.Stats(); }

 private:
  void NotifyBlocked(bool is_push, std::uint64_t ns) {
    if (block_observer_) block_observer_(is_push, ns);
  }

  const std::size_t capacity_;
  mutable util::ProfiledMutex mu_;
  std::condition_variable_any not_empty_;
  std::condition_variable_any not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  std::function<void(bool, std::uint64_t)> block_observer_;
  std::atomic<std::uint64_t> pushes_blocked_{0};
  std::atomic<std::uint64_t> pops_blocked_{0};
  std::atomic<std::uint64_t> push_block_ns_{0};
  std::atomic<std::uint64_t> pop_block_ns_{0};
};

}  // namespace fast

#endif  // FAST_UTIL_BOUNDED_QUEUE_H_
