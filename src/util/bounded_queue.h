#ifndef FAST_UTIL_BOUNDED_QUEUE_H_
#define FAST_UTIL_BOUNDED_QUEUE_H_

// Bounded multi-producer multi-consumer FIFO with close semantics.
//
// Producers use TryPush for admission control (a full queue rejects instead
// of blocking the caller — the service turns that into RESOURCE_EXHAUSTED).
// Consumers block in Pop until an item arrives or the queue is closed and
// drained, which is the worker-shutdown signal.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace fast {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Non-blocking push; returns false if the queue is full or closed.
  bool TryPush(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocking push; returns false only if the queue is (or becomes) closed.
  bool Push(T value) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and empty
  // (returns nullopt — the consumer should exit).
  std::optional<T> Pop() {
    std::optional<T> out;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;  // closed and drained
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  // After Close: pushes fail, Pop drains the backlog then returns nullopt.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace fast

#endif  // FAST_UTIL_BOUNDED_QUEUE_H_
