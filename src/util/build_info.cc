#include "util/build_info.h"

#ifndef FAST_BUILD_GIT_SHA
#define FAST_BUILD_GIT_SHA "unknown"
#endif
#ifndef FAST_BUILD_TYPE
#define FAST_BUILD_TYPE "unknown"
#endif
#ifndef FAST_BUILD_COMPILER
#define FAST_BUILD_COMPILER "unknown"
#endif

namespace fast {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info{FAST_BUILD_GIT_SHA, FAST_BUILD_TYPE,
                              FAST_BUILD_COMPILER};
  return info;
}

std::string BuildInfoSummary() {
  const BuildInfo& b = GetBuildInfo();
  return std::string("sha=") + b.git_sha + " build=" + b.build_type +
         " compiler=" + b.compiler;
}

}  // namespace fast
