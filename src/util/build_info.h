#ifndef FAST_UTIL_BUILD_INFO_H_
#define FAST_UTIL_BUILD_INFO_H_

// Build/version stamp, populated by CMake at configure time (git sha, build
// type, compiler) via per-file compile definitions on build_info.cc — only
// that one translation unit recompiles when the stamp changes. Surfaced in
// the admin plane's /varz endpoint, the fast_serve startup log line, and
// every bench JSON, so a perf number or a flight-recorder dump can always be
// traced back to the exact build that produced it.

#include <string>

namespace fast {

struct BuildInfo {
  const char* git_sha;     // short commit hash, "unknown" outside a checkout
  const char* build_type;  // CMAKE_BUILD_TYPE, e.g. "RelWithDebInfo"
  const char* compiler;    // "<id> <version>", e.g. "GNU 13.2.0"
};

const BuildInfo& GetBuildInfo();

// One-line form for logs: "sha=<sha> build=<type> compiler=<compiler>".
std::string BuildInfoSummary();

}  // namespace fast

#endif  // FAST_UTIL_BUILD_INFO_H_
