#ifndef FAST_UTIL_CANCEL_H_
#define FAST_UTIL_CANCEL_H_

// Cooperative cancellation for long-running matching work.
//
// A CancelToken is a cheap probe that the inner matching loops (RunKernel's
// round loop, MatchCstOnCpu's backtracking) consult between units of work:
// one relaxed atomic load per probe, plus a clock read when a deadline is
// armed and the flag has not tripped yet. Tripping is one-way — once
// Cancelled() returns true it stays true — so a run aborts at its next probe
// with DEADLINE_EXCEEDED instead of running an oversized query to
// completion. The service layer arms a token with the request's remaining
// deadline at dispatch, which is what bounds tail latency mid-run (deadlines
// used to be checked only while queued).
//
// Tokens are not copyable (they hold an atomic); owners keep the token alive
// for the duration of the run and pass `const CancelToken*` down the
// pipeline (FastRunOptions::cancel). Cancel() may be called from any thread.

#include <atomic>
#include <chrono>

namespace fast {

class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Trips the token after `seconds` of wall clock from now; <= 0 trips it
  // immediately. Arming replaces any previously armed deadline.
  void ArmDeadline(double seconds) {
    if (seconds <= 0.0) {
      Cancel();
      return;
    }
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
    has_deadline_ = true;
  }

  // Explicit cancellation, safe from any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  // The probe. Latches the deadline into the flag so later probes (and other
  // threads' probes) skip the clock read.
  bool Cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (has_deadline_ && Clock::now() >= deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  using Clock = std::chrono::steady_clock;
  mutable std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;  // set before the token is shared; never mutated after
  Clock::time_point deadline_{};
};

}  // namespace fast

#endif  // FAST_UTIL_CANCEL_H_
