#ifndef FAST_UTIL_JSON_WRITER_H_
#define FAST_UTIL_JSON_WRITER_H_

// Minimal streaming JSON emission, shared by the serve benches' --json
// summaries and the observability exports (src/obs/). Lived in
// bench/bench_serve_common.h until the metrics registry needed machine-
// readable snapshots from library code.

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace fast {

inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Streams one JSON document with automatic commas and 2-space indentation.
// Usage:
//   JsonWriter w;                       // opens the root object
//   w.Field("bench", "bench_service");
//   w.BeginObject("cache_on");
//   w.Field("qps", 123.4);
//   w.EndObject();
//   w.BeginArray("tenants");
//   w.BeginObject(); ... w.EndObject();
//   w.EndArray();
//   std::string doc = w.Finish();       // closes the root, returns the text
class JsonWriter {
 public:
  JsonWriter() { Open('{'); }

  // JSON has no NaN/Infinity literals (an empty histogram's p99 is NaN, a
  // ratio against a zero baseline is inf): emit null so the document stays
  // parseable. std::to_chars is locale-independent, unlike snprintf("%g"),
  // which under an LC_NUMERIC locale with a ',' decimal point would emit
  // invalid JSON.
  void Field(const char* key, double v) {
    if (!std::isfinite(v)) {
      Emit(key, "null");
      return;
    }
    char buf[48];
    const auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general, 6);
    Emit(key, ec == std::errc() ? std::string_view(buf, ptr - buf)
                                : std::string_view("null"));
  }
  void Field(const char* key, std::uint64_t v) {
    Emit(key, std::to_string(v));
  }
  void Field(const char* key, bool v) { Emit(key, v ? "true" : "false"); }
  void Field(const char* key, std::string_view v) {
    Emit(key, "\"" + JsonEscape(v) + "\"");
  }
  void Field(const char* key, const char* v) { Field(key, std::string_view(v)); }

  void BeginObject(const char* key = nullptr) {
    NextItem(key);
    Open('{');
  }
  void EndObject() { Close('}'); }
  void BeginArray(const char* key = nullptr) {
    NextItem(key);
    Open('[');
  }
  void EndArray() { Close(']'); }

  // Closes every still-open scope (root included) and returns the document.
  std::string Finish() {
    while (!closers_.empty()) Close(closers_.back());
    out_ += '\n';
    return std::move(out_);
  }

 private:
  void Open(char opener) {
    out_ += opener;
    closers_.push_back(opener == '{' ? '}' : ']');
    first_in_scope_ = true;
  }
  void Close(char closer) {
    out_ += '\n';
    closers_.pop_back();
    Indent();
    out_ += closer;
    first_in_scope_ = false;
  }
  void NextItem(const char* key) {
    if (!first_in_scope_) out_ += ',';
    out_ += '\n';
    first_in_scope_ = false;
    Indent();
    if (key != nullptr) {
      out_ += '"';
      out_ += JsonEscape(key);
      out_ += "\": ";
    }
  }
  void Emit(const char* key, std::string_view value) {
    NextItem(key);
    out_ += value;
  }
  void Indent() { out_.append(2 * closers_.size(), ' '); }

  std::string out_;
  std::vector<char> closers_;
  bool first_in_scope_ = true;
};

// Writes `payload` to `path`, reporting failures on stderr. Returns false on
// failure (callers treat that as a non-fatal warning; CI notices the missing
// artifact).
inline bool WriteJsonFile(const std::string& path, const std::string& payload) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  f << payload;
  return true;
}

}  // namespace fast

#endif  // FAST_UTIL_JSON_WRITER_H_
