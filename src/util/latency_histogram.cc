#include "util/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace fast {

std::size_t LatencyHistogram::BucketIndex(std::uint64_t micros) {
  // Octave 0 is linear over [0, kSubBuckets); octave o >= 1 covers
  // [kSubBuckets << (o-1), kSubBuckets << o) in kSubBuckets linear steps.
  if (micros < kSubBuckets) return static_cast<std::size_t>(micros);
  const int h = std::bit_width(micros) - 1;  // h >= 3
  const auto sub = static_cast<std::size_t>((micros >> (h - 3)) & (kSubBuckets - 1));
  const std::size_t index = static_cast<std::size_t>(h - 2) * kSubBuckets + sub;
  return std::min(index, kNumBuckets - 1);
}

double LatencyHistogram::BucketUpperSeconds(std::size_t index) {
  const std::size_t octave = index / kSubBuckets;
  const std::size_t sub = index % kSubBuckets;
  const std::uint64_t upper =
      octave == 0 ? sub + 1
                  : static_cast<std::uint64_t>(kSubBuckets + sub + 1) << (octave - 1);
  return static_cast<double>(upper) * 1e-6;
}

void LatencyHistogram::Record(double seconds) {
  seconds = std::max(seconds, 0.0);
  const auto micros = static_cast<std::uint64_t>(seconds * 1e6);
  ++buckets_[BucketIndex(micros)];
  if (count_ == 0) {
    min_seconds_ = max_seconds_ = seconds;
  } else {
    min_seconds_ = std::min(min_seconds_, seconds);
    max_seconds_ = std::max(max_seconds_, seconds);
  }
  ++count_;
  sum_seconds_ += seconds;
}

double LatencyHistogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::clamp(BucketUpperSeconds(i), min_seconds_, max_seconds_);
    }
  }
  return max_seconds_;
}

std::vector<LatencyHistogram::Bucket> LatencyHistogram::Buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    out.push_back({BucketUpperSeconds(i), buckets_[i]});
  }
  return out;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_seconds_ = other.min_seconds_;
    max_seconds_ = other.max_seconds_;
  } else {
    min_seconds_ = std::min(min_seconds_, other.min_seconds_);
    max_seconds_ = std::max(max_seconds_, other.max_seconds_);
  }
  count_ += other.count_;
  sum_seconds_ += other.sum_seconds_;
}

void LatencyHistogram::Clear() {
  std::fill(buckets_, buckets_ + kNumBuckets, 0);
  count_ = 0;
  sum_seconds_ = min_seconds_ = max_seconds_ = 0.0;
}

std::string LatencyHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3fms p50=%.3fms p99=%.3fms max=%.3fms",
                static_cast<unsigned long long>(count_), mean_seconds() * 1e3,
                P50() * 1e3, P99() * 1e3, max_seconds() * 1e3);
  return buf;
}

}  // namespace fast
