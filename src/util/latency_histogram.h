#ifndef FAST_UTIL_LATENCY_HISTOGRAM_H_
#define FAST_UTIL_LATENCY_HISTOGRAM_H_

// Log-bucketed latency histogram for service-level percentile reporting
// (p50/p99 over millions of requests in O(1) memory).
//
// Samples are recorded in integer microseconds into 2^k-wide octaves, each
// split into kSubBuckets linear sub-buckets, bounding the relative
// quantile error at 1/kSubBuckets (12.5%). Not thread-safe by itself: the
// service Records into one histogram under its stats mutex and copies it
// out in stats() snapshots. Merge() supports aggregating independent
// histograms (e.g. per-phase or per-instance) outside any lock.

#include <cstdint>
#include <string>
#include <vector>

namespace fast {

class LatencyHistogram {
 public:
  static constexpr std::size_t kSubBuckets = 8;
  static constexpr std::size_t kOctaves = 40;  // up to ~2^40 us ≈ 12.7 days
  static constexpr std::size_t kNumBuckets = kOctaves * kSubBuckets;

  void Record(double seconds);

  std::uint64_t count() const { return count_; }
  double sum_seconds() const { return sum_seconds_; }
  double mean_seconds() const {
    return count_ == 0 ? 0.0 : sum_seconds_ / static_cast<double>(count_);
  }
  double min_seconds() const { return count_ == 0 ? 0.0 : min_seconds_; }
  double max_seconds() const { return count_ == 0 ? 0.0 : max_seconds_; }

  // Upper bound of the bucket containing quantile q in [0, 1], in seconds.
  // Returns 0 for an empty histogram.
  double ValueAtQuantile(double q) const;
  double P50() const { return ValueAtQuantile(0.50); }
  double P90() const { return ValueAtQuantile(0.90); }
  double P99() const { return ValueAtQuantile(0.99); }
  double P999() const { return ValueAtQuantile(0.999); }

  // Non-empty buckets in ascending upper-bound order, counts per bucket
  // (NOT cumulative). This is the raw form behind the Prometheus
  // `_bucket{le=...}` export (obs/export.cc), which accumulates while
  // emitting; only occupied buckets are returned so a sparse histogram
  // exports O(distinct latencies) series, not kNumBuckets.
  struct Bucket {
    double upper_seconds = 0.0;
    std::uint64_t count = 0;
  };
  std::vector<Bucket> Buckets() const;

  void Merge(const LatencyHistogram& other);
  void Clear();

  // e.g. "n=1000 mean=1.2ms p50=0.9ms p99=4.1ms max=7.9ms"
  std::string Summary() const;

 private:
  static std::size_t BucketIndex(std::uint64_t micros);
  static double BucketUpperSeconds(std::size_t index);

  std::uint64_t buckets_[kNumBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_seconds_ = 0.0;
  double min_seconds_ = 0.0;
  double max_seconds_ = 0.0;
};

}  // namespace fast

#endif  // FAST_UTIL_LATENCY_HISTOGRAM_H_
