#include "util/logging.h"

#include <atomic>

namespace fast {

namespace {
std::atomic<LogSeverity> g_min_severity{LogSeverity::kInfo};

const char* SeverityName(LogSeverity s) {
  switch (s) {
    case LogSeverity::kDebug:
      return "DEBUG";
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARNING";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}
}  // namespace

LogSeverity MinLogSeverity() { return g_min_severity.load(std::memory_order_relaxed); }

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(severity, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(const char* file, int line, LogSeverity severity)
    : severity_(severity) {
  // Strip directories for brevity.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << SeverityName(severity) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace fast
