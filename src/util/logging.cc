#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <ctime>

#include <chrono>

namespace fast {

namespace {
std::atomic<LogSeverity> g_min_severity{LogSeverity::kInfo};
// Set once SetMinLogSeverity runs, so an explicit call beats FAST_LOG_LEVEL
// regardless of whether the env var is read before or after it.
std::atomic<bool> g_severity_explicit{false};

const char* SeverityName(LogSeverity s) {
  switch (s) {
    case LogSeverity::kDebug:
      return "DEBUG";
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARNING";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}

LogSeverity EnvMinSeverity() {
  // Magic static: the environment is parsed once, on first log/query.
  static const LogSeverity parsed = [] {
    const char* env = std::getenv("FAST_LOG_LEVEL");
    if (env != nullptr) {
      if (const auto s = ParseLogSeverity(env)) return *s;
      std::fprintf(stderr, "FAST_LOG_LEVEL: unrecognized level \"%s\"; using INFO\n", env);
    }
    return LogSeverity::kInfo;
  }();
  return parsed;
}
}  // namespace

std::optional<LogSeverity> ParseLogSeverity(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "debug" || lower == "0") return LogSeverity::kDebug;
  if (lower == "info" || lower == "1") return LogSeverity::kInfo;
  if (lower == "warning" || lower == "warn" || lower == "2") return LogSeverity::kWarning;
  if (lower == "error" || lower == "3") return LogSeverity::kError;
  if (lower == "fatal" || lower == "4") return LogSeverity::kFatal;
  return std::nullopt;
}

LogSeverity MinLogSeverity() {
  if (g_severity_explicit.load(std::memory_order_acquire)) {
    return g_min_severity.load(std::memory_order_relaxed);
  }
  return EnvMinSeverity();
}

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(severity, std::memory_order_relaxed);
  g_severity_explicit.store(true, std::memory_order_release);
}

namespace internal {

LogMessage::LogMessage(const char* file, int line, LogSeverity severity)
    : severity_(severity) {
  // Strip directories for brevity.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }

  // Wall-clock timestamp with microseconds, e.g. "20260808 14:03:07.123456".
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000000;
  std::tm tm{};
  localtime_r(&secs, &tm);
  char ts[80];
  std::snprintf(ts, sizeof(ts), "%04d%02d%02d %02d:%02d:%02d.%06d",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(micros));

  stream_ << "[" << ts << " " << SeverityName(severity) << " " << base << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    // One fwrite per message: POSIX stdio streams lock around each call, so
    // whole lines from concurrent threads never interleave mid-line (the
    // previous operator<< chain on std::cerr gave no such guarantee).
    std::string line = stream_.str();
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace fast
