#ifndef FAST_UTIL_LOGGING_H_
#define FAST_UTIL_LOGGING_H_

// Minimal streaming logger and CHECK macros, modelled after glog/absl.
//
//   FAST_LOG(INFO) << "built CST with " << n << " candidates";
//   FAST_CHECK(ptr != nullptr) << "null CST";
//   FAST_DCHECK_LT(i, size);
//
// FATAL (and failed CHECKs) abort the process: they flag programmer errors,
// not runtime conditions (which use fast::Status).
//
// Each message is flushed to stderr as ONE write (timestamp + severity +
// file:line prefix + body + newline), so logs from concurrent workers never
// interleave mid-line.

#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace fast {

enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Process-wide minimum severity that is actually emitted. Default: kInfo,
// overridable via the FAST_LOG_LEVEL environment variable ("debug", "info",
// "warning", "error", "fatal", case-insensitive; numeric 0-4 also accepted).
// An explicit SetMinLogSeverity call always wins over the environment.
LogSeverity MinLogSeverity();
void SetMinLogSeverity(LogSeverity severity);

// Parses a FAST_LOG_LEVEL-style severity name; nullopt when unrecognized.
// Exposed for tests.
std::optional<LogSeverity> ParseLogSeverity(std::string_view name);

namespace internal {

class LogMessage {
 public:
  LogMessage(const char* file, int line, LogSeverity severity);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace fast

#define FAST_LOG_DEBUG ::fast::internal::LogMessage(__FILE__, __LINE__, ::fast::LogSeverity::kDebug)
#define FAST_LOG_INFO ::fast::internal::LogMessage(__FILE__, __LINE__, ::fast::LogSeverity::kInfo)
#define FAST_LOG_WARNING \
  ::fast::internal::LogMessage(__FILE__, __LINE__, ::fast::LogSeverity::kWarning)
#define FAST_LOG_ERROR ::fast::internal::LogMessage(__FILE__, __LINE__, ::fast::LogSeverity::kError)
#define FAST_LOG_FATAL ::fast::internal::LogMessage(__FILE__, __LINE__, ::fast::LogSeverity::kFatal)

#define FAST_LOG(severity) FAST_LOG_##severity.stream()

// Note: the condition (and for _OP the operands) may be evaluated twice on
// the failure path only; the success path evaluates each exactly once.
#define FAST_CHECK(cond) \
  while (!(cond)) FAST_LOG(FATAL) << "Check failed: " #cond " "

#define FAST_CHECK_OP(op, a, b)                                              \
  while (!((a)op(b)))                                                        \
  FAST_LOG(FATAL) << "Check failed: " #a " " #op " " #b " (" << (a) << " vs " \
                  << (b) << ") "

#define FAST_CHECK_EQ(a, b) FAST_CHECK_OP(==, a, b)
#define FAST_CHECK_NE(a, b) FAST_CHECK_OP(!=, a, b)
#define FAST_CHECK_LT(a, b) FAST_CHECK_OP(<, a, b)
#define FAST_CHECK_LE(a, b) FAST_CHECK_OP(<=, a, b)
#define FAST_CHECK_GT(a, b) FAST_CHECK_OP(>, a, b)
#define FAST_CHECK_GE(a, b) FAST_CHECK_OP(>=, a, b)

// Checks that a fast::Status expression is OK.
#define FAST_CHECK_OK(expr)                                            \
  do {                                                                 \
    const ::fast::Status _s = (expr);                                  \
    FAST_CHECK(_s.ok()) << _s.ToString();                              \
  } while (0)

#ifdef NDEBUG
#define FAST_DCHECK(cond) \
  while (false) FAST_CHECK(cond)
#define FAST_DCHECK_EQ(a, b) \
  while (false) FAST_CHECK_EQ(a, b)
#define FAST_DCHECK_LT(a, b) \
  while (false) FAST_CHECK_LT(a, b)
#define FAST_DCHECK_LE(a, b) \
  while (false) FAST_CHECK_LE(a, b)
#else
#define FAST_DCHECK(cond) FAST_CHECK(cond)
#define FAST_DCHECK_EQ(a, b) FAST_CHECK_EQ(a, b)
#define FAST_DCHECK_LT(a, b) FAST_CHECK_LT(a, b)
#define FAST_DCHECK_LE(a, b) FAST_CHECK_LE(a, b)
#endif

#endif  // FAST_UTIL_LOGGING_H_
