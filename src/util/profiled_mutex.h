#ifndef FAST_UTIL_PROFILED_MUTEX_H_
#define FAST_UTIL_PROFILED_MUTEX_H_

// Drop-in mutex with contention accounting.
//
// ProfiledMutex wraps std::mutex and counts, per instance: acquisitions,
// contended acquisitions (the fast-path try_lock missed and the caller had
// to block), total/max wait nanoseconds spent blocked, and total/max hold
// nanoseconds between lock and unlock. The hot path costs one extra
// steady-clock read on acquire and one on release; every counter is a
// relaxed atomic, so Stats() can be read concurrently with lock traffic.
//
// It satisfies Lockable (lock/try_lock/unlock), so std::lock_guard,
// std::unique_lock, and std::scoped_lock work unchanged. Condition
// variables need std::condition_variable_any — std::condition_variable is
// hard-wired to std::mutex. The wait itself is not charged to the lock;
// the re-acquisition after wake goes through lock() and is, which is
// exactly the contention signal the profile wants.
//
// A mutex constructed with a name registers itself in a process-wide
// registry; SnapshotLockStats() aggregates the live instances by name (the
// N per-tenant plan caches roll up into one "plan_cache" row). The admin
// plane exports these as the fast_lock_* metric families and serves them
// raw on /locks. An unnamed ProfiledMutex still counts, it just is not
// exported.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fast::util {

// One lock's counters, aggregated by name across instances in
// SnapshotLockStats(). All durations are nanoseconds.
struct LockStats {
  std::string name;
  std::uint64_t acquisitions = 0;
  std::uint64_t contended = 0;
  std::uint64_t total_wait_ns = 0;
  std::uint64_t max_wait_ns = 0;
  std::uint64_t total_hold_ns = 0;
  std::uint64_t max_hold_ns = 0;
};

class ProfiledMutex {
 public:
  ProfiledMutex() { Register(); }
  explicit ProfiledMutex(const char* name) : name_(name) { Register(); }
  ~ProfiledMutex() { Unregister(); }

  ProfiledMutex(const ProfiledMutex&) = delete;
  ProfiledMutex& operator=(const ProfiledMutex&) = delete;

  void lock() {
    if (mu_.try_lock()) {
      OnAcquired();
      return;
    }
    const std::uint64_t t0 = NowNs();
    mu_.lock();
    const std::uint64_t waited = NowNs() - t0;
    contended_.fetch_add(1, std::memory_order_relaxed);
    total_wait_ns_.fetch_add(waited, std::memory_order_relaxed);
    AtomicMax(max_wait_ns_, waited);
    OnAcquired();
  }

  bool try_lock() {
    if (!mu_.try_lock()) return false;
    OnAcquired();
    return true;
  }

  void unlock() {
    const std::uint64_t held = NowNs() - hold_start_ns_;
    total_hold_ns_.fetch_add(held, std::memory_order_relaxed);
    AtomicMax(max_hold_ns_, held);
    mu_.unlock();
  }

  const char* name() const { return name_; }

  LockStats Stats() const {
    LockStats s;
    s.name = name_ != nullptr ? name_ : "";
    s.acquisitions = acquisitions_.load(std::memory_order_relaxed);
    s.contended = contended_.load(std::memory_order_relaxed);
    s.total_wait_ns = total_wait_ns_.load(std::memory_order_relaxed);
    s.max_wait_ns = max_wait_ns_.load(std::memory_order_relaxed);
    s.total_hold_ns = total_hold_ns_.load(std::memory_order_relaxed);
    s.max_hold_ns = max_hold_ns_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  friend std::vector<LockStats> SnapshotLockStats();

  // Live named instances, for the by-name aggregation. Leaked on purpose:
  // a ProfiledMutex with static storage duration may unregister after a
  // function-local static registry would have been destroyed.
  struct Registry {
    std::mutex mu;
    std::vector<const ProfiledMutex*> locks;
  };
  static Registry& GlobalRegistry() {
    static Registry* r = new Registry();
    return *r;
  }

  void Register() {
    if (name_ == nullptr) return;
    Registry& r = GlobalRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.locks.push_back(this);
  }

  void Unregister() {
    if (name_ == nullptr) return;
    Registry& r = GlobalRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.locks.erase(std::remove(r.locks.begin(), r.locks.end(), this),
                  r.locks.end());
  }

  static std::uint64_t NowNs() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  static void AtomicMax(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    std::uint64_t cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  void OnAcquired() {
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    hold_start_ns_ = NowNs();  // guarded by mu_: only the holder touches it
  }

  std::mutex mu_;
  const char* name_ = nullptr;  // static storage duration required
  std::uint64_t hold_start_ns_ = 0;
  std::atomic<std::uint64_t> acquisitions_{0};
  std::atomic<std::uint64_t> contended_{0};
  std::atomic<std::uint64_t> total_wait_ns_{0};
  std::atomic<std::uint64_t> max_wait_ns_{0};
  std::atomic<std::uint64_t> total_hold_ns_{0};
  std::atomic<std::uint64_t> max_hold_ns_{0};
};

// Counters of every live *named* ProfiledMutex, aggregated by name and
// sorted by name (max_* take the max across instances). Safe to call
// concurrently with lock traffic; each counter is read relaxed, so a row is
// a statistical snapshot, not a linearizable one.
inline std::vector<LockStats> SnapshotLockStats() {
  ProfiledMutex::Registry& r = ProfiledMutex::GlobalRegistry();
  std::vector<LockStats> out;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    for (const ProfiledMutex* m : r.locks) {
      LockStats s = m->Stats();
      auto it = std::find_if(out.begin(), out.end(),
                             [&](const LockStats& x) { return x.name == s.name; });
      if (it == out.end()) {
        out.push_back(std::move(s));
        continue;
      }
      it->acquisitions += s.acquisitions;
      it->contended += s.contended;
      it->total_wait_ns += s.total_wait_ns;
      it->max_wait_ns = std::max(it->max_wait_ns, s.max_wait_ns);
      it->total_hold_ns += s.total_hold_ns;
      it->max_hold_ns = std::max(it->max_hold_ns, s.max_hold_ns);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LockStats& a, const LockStats& b) { return a.name < b.name; });
  return out;
}

}  // namespace fast::util

#endif  // FAST_UTIL_PROFILED_MUTEX_H_
