#include "util/rng.h"

#include <cmath>

namespace fast {

std::size_t Rng::PowerLaw(std::size_t n, double alpha) {
  FAST_DCHECK(n > 0);
  if (n == 1) return 0;
  // Inverse-CDF sampling of a continuous Pareto on [1, n+1), floored.
  // For alpha == 1 the CDF integral degenerates to a log.
  const double u = UniformDouble();
  double x;
  if (std::abs(alpha - 1.0) < 1e-9) {
    x = std::exp(u * std::log(static_cast<double>(n) + 1.0));
  } else {
    const double one_minus = 1.0 - alpha;
    const double max_term = std::pow(static_cast<double>(n) + 1.0, one_minus);
    x = std::pow(1.0 + u * (max_term - 1.0), 1.0 / one_minus);
  }
  auto idx = static_cast<std::size_t>(x - 1.0);
  if (idx >= n) idx = n - 1;
  return idx;
}

}  // namespace fast
