#include "util/rng.h"

#include <algorithm>
#include <cmath>

namespace fast {

std::vector<double> ZipfCdf(std::size_t n, double s) {
  std::vector<double> cdf(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

std::size_t SampleCdf(const std::vector<double>& cdf, Rng& rng) {
  FAST_DCHECK(!cdf.empty());
  // UniformDouble is in [0, 1) and the final CDF entry is exactly 1.0, so
  // the result is always a valid index.
  const double u = rng.UniformDouble();
  return static_cast<std::size_t>(
      std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
}

std::size_t Rng::PowerLaw(std::size_t n, double alpha) {
  FAST_DCHECK(n > 0);
  if (n == 1) return 0;
  // Inverse-CDF sampling of a continuous Pareto on [1, n+1), floored.
  // For alpha == 1 the CDF integral degenerates to a log.
  const double u = UniformDouble();
  double x;
  if (std::abs(alpha - 1.0) < 1e-9) {
    x = std::exp(u * std::log(static_cast<double>(n) + 1.0));
  } else {
    const double one_minus = 1.0 - alpha;
    const double max_term = std::pow(static_cast<double>(n) + 1.0, one_minus);
    x = std::pow(1.0 + u * (max_term - 1.0), 1.0 / one_minus);
  }
  auto idx = static_cast<std::size_t>(x - 1.0);
  if (idx >= n) idx = n - 1;
  return idx;
}

}  // namespace fast
