#ifndef FAST_UTIL_RNG_H_
#define FAST_UTIL_RNG_H_

// Deterministic, seedable random number generation for the synthetic data
// generator and property tests. Everything in this library that is "random"
// flows through Rng so runs are exactly reproducible from a seed.

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace fast {

// splitmix64-seeded xoshiro256** generator: tiny, fast, good statistical
// quality, and stable across platforms (unlike std::mt19937 distributions).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    // splitmix64 to spread the seed over the full state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Uniform(std::uint64_t bound) {
    FAST_DCHECK(bound > 0);
    // Lemire's nearly-divisionless method, with rejection for exactness.
    std::uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    FAST_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    Uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double UniformDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Samples from a (bounded) discrete power-law: value i in [0, n) with
  // probability proportional to (i+1)^(-alpha). Used for degree skew.
  std::size_t PowerLaw(std::size_t n, double alpha);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

// CDF of a bounded discrete Zipf: rank r in [0, n) with probability
// proportional to (r+1)^-s; s = 0 degenerates to uniform. Pair with
// SampleCdf for exact draws — unlike Rng::PowerLaw, which floors a
// continuous Pareto and only approximates the discrete distribution. Used
// for skewed tenant-traffic generation (bench_tenancy, fast_serve).
std::vector<double> ZipfCdf(std::size_t n, double s);

// Samples an index from a CDF as produced by ZipfCdf (non-decreasing,
// final entry 1.0).
std::size_t SampleCdf(const std::vector<double>& cdf, Rng& rng);

}  // namespace fast

#endif  // FAST_UTIL_RNG_H_
