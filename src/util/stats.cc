#include "util/stats.h"

#include <cstdio>

namespace fast {

namespace {
std::string FormatWithSuffix(double v, const char* const* suffixes, int n_suffixes,
                             double base) {
  int i = 0;
  while (std::abs(v) >= base && i + 1 < n_suffixes) {
    v /= base;
    ++i;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%s", v, suffixes[i]);
  return buf;
}
}  // namespace

std::string HumanCount(double v) {
  static const char* const kSuffixes[] = {"", "K", "M", "B", "T"};
  return FormatWithSuffix(v, kSuffixes, 5, 1000.0);
}

std::string HumanBytes(double bytes) {
  static const char* const kSuffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  return FormatWithSuffix(bytes, kSuffixes, 5, 1024.0);
}

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace fast
