#ifndef FAST_UTIL_STATS_H_
#define FAST_UTIL_STATS_H_

// Small numeric helpers shared by the scheduler, benches and reports.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace fast {

// Streaming min/max/mean/variance/count accumulator. Variance uses
// Welford's online update (numerically stable even when the mean is large
// relative to the spread, where the naive sum-of-squares cancels).
class RunningStats {
 public:
  void Add(double x) {
    ++count_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  // Folds `other` into this accumulator, as if every sample Add()ed to
  // either had been Add()ed here. Chan et al.'s parallel combination of the
  // Welford moments — this is how per-worker accumulators aggregate into a
  // global export without replaying samples.
  void Merge(const RunningStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const auto na = static_cast<double>(count_);
    const auto nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * (nb / n);
    m2_ += other.m2_ + delta * delta * (na * nb / n);
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  // Population variance (divides by n, not n-1): these accumulators describe
  // the full set of observed requests, not a sample of a larger population.
  double variance() const {
    return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;  // Welford running mean (sum_/count_ kept for mean())
  double m2_ = 0.0;    // sum of squared deviations from the running mean
};

// Human-readable count, e.g. 1234567 -> "1.23M".
std::string HumanCount(double v);

// Human-readable bytes, e.g. 1536 -> "1.50KiB".
std::string HumanBytes(double bytes);

// Geometric mean of positive values; returns 0 for empty input.
double GeometricMean(const std::vector<double>& values);

}  // namespace fast

#endif  // FAST_UTIL_STATS_H_
