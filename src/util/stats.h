#ifndef FAST_UTIL_STATS_H_
#define FAST_UTIL_STATS_H_

// Small numeric helpers shared by the scheduler, benches and reports.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace fast {

// Streaming min/max/mean/count accumulator.
class RunningStats {
 public:
  void Add(double x) {
    ++count_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Human-readable count, e.g. 1234567 -> "1.23M".
std::string HumanCount(double v);

// Human-readable bytes, e.g. 1536 -> "1.50KiB".
std::string HumanBytes(double bytes);

// Geometric mean of positive values; returns 0 for empty input.
double GeometricMean(const std::vector<double>& values);

}  // namespace fast

#endif  // FAST_UTIL_STATS_H_
