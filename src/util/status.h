#ifndef FAST_UTIL_STATUS_H_
#define FAST_UTIL_STATUS_H_

// Exception-free error handling in the style of absl::Status / arrow::Status.
//
// All fallible public APIs in this library return fast::Status or
// fast::StatusOr<T>. Internal invariant violations use FAST_CHECK (fatal).

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace fast {

// Canonical error codes, a pragmatic subset of absl's code space.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kResourceExhausted = 4,  // e.g. simulated device OOM
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kDeadlineExceeded = 8,  // e.g. query timeout
};

// Human-readable name of a status code ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeToString(StatusCode code);

// A cheap, copyable success-or-error value.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// A value-or-error union. Access to value() on an error status aborts, so
// callers must check ok() first (or use FAST_ASSIGN_OR_RETURN).
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, mirroring absl::StatusOr ergonomics: allows
  // `return value;` and `return SomeErrorStatus();` from the same function.
  StatusOr(const T& value) : rep_(value) {}            // NOLINT
  StatusOr(T&& value) : rep_(std::move(value)) {}      // NOLINT
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::move(std::get<T>(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace fast

// Propagates a non-OK status to the caller.
#define FAST_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::fast::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (0)

#define FAST_CONCAT_IMPL(a, b) a##b
#define FAST_CONCAT(a, b) FAST_CONCAT_IMPL(a, b)

// Assigns the value of a StatusOr expression or propagates its error.
#define FAST_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto FAST_CONCAT(_statusor_, __LINE__) = (expr);              \
  if (!FAST_CONCAT(_statusor_, __LINE__).ok())                  \
    return FAST_CONCAT(_statusor_, __LINE__).status();          \
  lhs = std::move(FAST_CONCAT(_statusor_, __LINE__)).value()

#endif  // FAST_UTIL_STATUS_H_
