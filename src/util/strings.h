#ifndef FAST_UTIL_STRINGS_H_
#define FAST_UTIL_STRINGS_H_

// Small string helpers shared by the CLI tools and benches.

#include <string>
#include <vector>

namespace fast {

// Splits a comma-separated list, skipping empty tokens ("a,,b" -> {a, b},
// "" -> {}). Tokens are not trimmed.
inline std::vector<std::string> SplitCsv(const std::string& spec) {
  std::vector<std::string> out;
  for (std::size_t pos = 0; pos < spec.size();) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    if (comma > pos) out.push_back(spec.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

}  // namespace fast

#endif  // FAST_UTIL_STRINGS_H_
