#ifndef FAST_UTIL_TIMER_H_
#define FAST_UTIL_TIMER_H_

// Wall-clock timing helpers used by the host-side scheduler and benches.

#include <chrono>
#include <cstdint>
#include <ctime>

namespace fast {

// CPU time consumed by the calling thread, in nanoseconds. This is what the
// per-tenant resource accountant charges for host work: a worker blocked on
// the device executor accrues wall time but no thread-CPU time, so the two
// dimensions stay separable. Returns 0 on platforms without a per-thread
// CPU clock.
inline std::uint64_t ThreadCpuNanos() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Elapsed time since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Accumulates time across multiple Start/Stop intervals, e.g. to separate
// CST-construction time from partition time inside one host run.
class AccumulatingTimer {
 public:
  void Start() {
    timer_.Reset();
    running_ = true;
  }
  // Accumulates the interval since the matching Start(). A Stop() without a
  // preceding Start() is a no-op instead of double-counting the previous
  // interval.
  void Stop() {
    if (!running_) return;
    total_seconds_ += timer_.ElapsedSeconds();
    running_ = false;
  }
  bool Running() const { return running_; }
  double TotalSeconds() const { return total_seconds_; }
  double TotalMillis() const { return total_seconds_ * 1e3; }
  void Clear() {
    total_seconds_ = 0.0;
    running_ = false;
  }

 private:
  Timer timer_;
  double total_seconds_ = 0.0;
  bool running_ = false;
};

}  // namespace fast

#endif  // FAST_UTIL_TIMER_H_
