#ifndef FAST_UTIL_WRR_H_
#define FAST_UTIL_WRR_H_

// Deficit-style weighted round robin over backlogged queues, shared by the
// two schedulers that need per-queue fairness: tenant::TenantRouter (dispatch
// slots across tenants' request queues) and device::DeviceExecutor (device
// round slots across tenants' partition queues).
//
// The discipline: the head queue of the active list spends one credit per
// dequeue (credits refill to `weight` when it enters a cycle at zero),
// rotates to the back of the list when its cycle's credits are spent, and
// leaves the list when its backlog drains — credits reset, so a fresh
// backlog starts a fresh cycle. A queue's weight therefore buys consecutive
// slots per cycle over the BACKLOGGED queues: a hot queue saturating its
// backlog cannot starve a cold one.
//
// Callers embed a WrrQueueState in their queue type, keep the active list of
// queues with pending work, and hold their own lock around every call here.

#include <algorithm>
#include <cstdint>
#include <list>
#include <memory>

namespace fast {

// Per-queue scheduler state; guarded by the caller's scheduler lock.
struct WrrQueueState {
  std::uint32_t weight = 1;  // consecutive slots per cycle; 0 acts as 1
  std::uint32_t credit = 0;  // slots left in the current cycle
  bool in_active = false;    // linked into the caller's active list
};

// Links `q` into `active` if it is not already there (call after pushing
// backlog onto an idle queue). `q->wrr` must be the queue's WrrQueueState.
template <typename Q>
void WrrActivate(std::list<std::shared_ptr<Q>>& active,
                 const std::shared_ptr<Q>& q) {
  if (!q->wrr.in_active) {
    q->wrr.in_active = true;
    active.push_back(q);
  }
}

// Dequeues one item from the head queue under the WRR discipline and
// maintains the active list. `active` must be non-empty and its head must
// have backlog. `pop(queue)` removes and returns the queue's next item;
// `empty(queue)` reports whether backlog remains afterwards.
template <typename Q, typename PopFn, typename EmptyFn>
auto WrrPop(std::list<std::shared_ptr<Q>>& active, PopFn pop, EmptyFn empty) {
  std::shared_ptr<Q> q = active.front();
  WrrQueueState& s = q->wrr;
  if (s.credit == 0) s.credit = std::max<std::uint32_t>(1, s.weight);
  auto item = pop(*q);
  --s.credit;
  if (empty(*q)) {
    s.in_active = false;
    s.credit = 0;
    active.pop_front();
  } else if (s.credit == 0) {
    active.splice(active.end(), active, active.begin());
  }
  return item;
}

}  // namespace fast

#endif  // FAST_UTIL_WRR_H_
