// Tests for the admin HTTP plane (src/net/admin_http.h): the incremental
// request parser driven byte-by-byte (truncation, pipelining, malformed and
// oversized heads), the server's status handling (404/405, keep-alive,
// concurrent scrapes), and the standard endpoint set registered against a
// live MatchService.

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/admin_http.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "service/match_service.h"
#include "tests/test_util.h"
#include "util/status.h"

namespace fast {
namespace {

using net::AdminEndpointsOptions;
using net::AdminHttpServer;
using net::HttpGet;
using net::HttpRequest;
using net::HttpRequestParser;
using net::HttpResponse;
using service::MatchService;
using service::ServiceOptions;
using testing::PaperDataGraph;
using testing::PaperQuery;

using State = HttpRequestParser::State;

// ---- Parser. ----

TEST(HttpRequestParserTest, ParsesCompleteGetWithQuery) {
  HttpRequestParser p;
  p.Feed("GET /metrics?format=json HTTP/1.1\r\nHost: x\r\n\r\n");
  HttpRequest req;
  ASSERT_EQ(p.Next(&req), State::kReady);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/metrics");
  EXPECT_EQ(req.query, "format=json");
  EXPECT_EQ(req.version, "HTTP/1.1");
  EXPECT_EQ(p.Next(&req), State::kNeedMore);
  EXPECT_EQ(p.buffered_bytes(), 0u);
}

TEST(HttpRequestParserTest, TruncatedRequestLineNeedsMore) {
  HttpRequestParser p;
  p.Feed("GET /met");
  HttpRequest req;
  EXPECT_EQ(p.Next(&req), State::kNeedMore);
  p.Feed("rics HTTP/1.1\r\nHo");
  EXPECT_EQ(p.Next(&req), State::kNeedMore);
  p.Feed("st: x\r\n\r\n");
  ASSERT_EQ(p.Next(&req), State::kReady);
  EXPECT_EQ(req.path, "/metrics");
}

TEST(HttpRequestParserTest, PipelinedRequestsDrainInOrder) {
  HttpRequestParser p;
  p.Feed(
      "GET /healthz HTTP/1.1\r\n\r\n"
      "GET /varz HTTP/1.1\r\nHost: y\r\n\r\n");
  HttpRequest req;
  ASSERT_EQ(p.Next(&req), State::kReady);
  EXPECT_EQ(req.path, "/healthz");
  EXPECT_FALSE(req.close);
  ASSERT_EQ(p.Next(&req), State::kReady);
  EXPECT_EQ(req.path, "/varz");
  EXPECT_EQ(p.Next(&req), State::kNeedMore);
}

TEST(HttpRequestParserTest, MalformedRequestLineIsErrorAndPoisons) {
  HttpRequestParser p;
  p.Feed("NOT-HTTP\r\n\r\n");
  HttpRequest req;
  EXPECT_EQ(p.Next(&req), State::kError);
  EXPECT_FALSE(p.error().empty());
  // Poisoned: even a well-formed follow-up stays an error.
  p.Feed("GET / HTTP/1.1\r\n\r\n");
  EXPECT_EQ(p.Next(&req), State::kError);
}

TEST(HttpRequestParserTest, OversizedHeadWithoutTerminatorIsError) {
  HttpRequestParser p(/*max_header_bytes=*/64);
  p.Feed("GET /metrics HTTP/1.1\r\n");
  p.Feed(std::string(128, 'a'));  // header bytes keep coming, no CRLFCRLF
  HttpRequest req;
  EXPECT_EQ(p.Next(&req), State::kError);
  EXPECT_NE(p.error().find("exceeds"), std::string::npos);
}

TEST(HttpRequestParserTest, OversizedCompleteHeadIsError) {
  HttpRequestParser p(/*max_header_bytes=*/64);
  std::string head = "GET / HTTP/1.1\r\nX-Pad: " + std::string(100, 'b') +
                     "\r\n\r\n";
  p.Feed(head);
  HttpRequest req;
  EXPECT_EQ(p.Next(&req), State::kError);
}

// ---- Server. ----

TEST(AdminHttpServerTest, ServesRegisteredPathAnd404sUnknown) {
  AdminHttpServer server;
  server.Handle("/ping", [](const HttpRequest&) {
    HttpResponse r;
    r.body = "pong\n";
    return r;
  });
  FAST_CHECK_OK(server.Start());
  auto ok = HttpGet("127.0.0.1", server.port(), "/ping");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->status, 200);
  EXPECT_EQ(ok->body, "pong\n");
  auto missing = HttpGet("127.0.0.1", server.port(), "/nope");
  ASSERT_TRUE(missing.ok()) << missing.status();
  EXPECT_EQ(missing->status, 404);
  server.Shutdown();
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests_served, 2u);
  EXPECT_EQ(stats.not_found, 1u);
}

// Raw-socket request so we can send methods/bytes HttpGet never would.
std::string RawRoundTrip(std::uint16_t port, const std::string& wire) {
  auto fd = net::ConnectTcp("127.0.0.1", port);
  FAST_CHECK_OK(fd.status());
  FAST_CHECK_OK(net::SendAll(
      fd->get(), reinterpret_cast<const std::uint8_t*>(wire.data()),
      wire.size()));
  std::string reply;
  std::uint8_t buf[4096];
  while (true) {
    auto n = net::RecvSome(fd->get(), buf, sizeof buf);
    if (!n.ok() || *n == 0) break;
    reply.append(reinterpret_cast<const char*>(buf), *n);
  }
  return reply;
}

TEST(AdminHttpServerTest, NonGetGets405) {
  AdminHttpServer server;
  server.Handle("/metrics", [](const HttpRequest&) { return HttpResponse{}; });
  FAST_CHECK_OK(server.Start());
  const std::string reply = RawRoundTrip(
      server.port(),
      "POST /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_NE(reply.find("405"), std::string::npos);
  server.Shutdown();
}

TEST(AdminHttpServerTest, MalformedRequestClosesWith400) {
  AdminHttpServer server;
  FAST_CHECK_OK(server.Start());
  const std::string reply = RawRoundTrip(server.port(), "garbage\r\n\r\n");
  EXPECT_NE(reply.find("400"), std::string::npos);
  server.Shutdown();
  EXPECT_EQ(server.stats().bad_requests, 1u);
}

TEST(AdminHttpServerTest, OversizedHeadClosesWith431) {
  net::AdminHttpOptions opts;
  opts.max_header_bytes = 128;
  AdminHttpServer server(opts);
  FAST_CHECK_OK(server.Start());
  const std::string reply = RawRoundTrip(
      server.port(),
      "GET / HTTP/1.1\r\nX-Pad: " + std::string(512, 'a') + "\r\n\r\n");
  EXPECT_NE(reply.find("431"), std::string::npos);
  server.Shutdown();
}

TEST(AdminHttpServerTest, PipelinedGetsOverOneConnection) {
  AdminHttpServer server;
  server.Handle("/a", [](const HttpRequest&) {
    HttpResponse r;
    r.body = "A";
    return r;
  });
  server.Handle("/b", [](const HttpRequest&) {
    HttpResponse r;
    r.body = "B";
    return r;
  });
  FAST_CHECK_OK(server.Start());
  // Both requests in one write; "Connection: close" on the second makes the
  // server end the stream after replying, so RawRoundTrip's read-to-EOF
  // terminates.
  const std::string reply = RawRoundTrip(
      server.port(),
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n");
  const auto first = reply.find("\r\n\r\nA");
  const auto second = reply.find("\r\n\r\nB");
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  server.Shutdown();
  EXPECT_EQ(server.stats().requests_served, 2u);
  EXPECT_EQ(server.stats().connections_accepted, 1u);
}

TEST(AdminHttpServerTest, ConcurrentScrapesAllSucceed) {
  AdminHttpServer server;
  server.Handle("/metrics", [](const HttpRequest&) {
    HttpResponse r;
    r.body = std::string(64 * 1024, 'm');  // force multi-packet responses
    return r;
  });
  FAST_CHECK_OK(server.Start());
  constexpr int kThreads = 8;
  constexpr int kGetsEach = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < kThreads; ++t) {
    scrapers.emplace_back([&server, &failures] {
      for (int i = 0; i < kGetsEach; ++i) {
        auto r = HttpGet("127.0.0.1", server.port(), "/metrics");
        if (!r.ok() || r->status != 200 || r->body.size() != 64 * 1024) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& s : scrapers) s.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.stats().requests_served,
            static_cast<std::uint64_t>(kThreads) * kGetsEach);
  server.Shutdown();
}

// ---- Standard endpoints against a live service. ----

TEST(AdminEndpointsTest, EndToEndAgainstMatchService) {
  obs::MetricsRegistry registry;
  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 64;
  options.plan_cache_capacity = 8;
  options.metrics = &registry;
  MatchService svc(PaperDataGraph(), options);
  for (int i = 0; i < 3; ++i) {
    FAST_CHECK_OK(svc.SubmitAndWait(PaperQuery()).status());
  }

  AdminHttpServer server;
  AdminEndpointsOptions eopts;
  eopts.metrics = &registry;
  eopts.request_obs = svc.request_obs();
  eopts.ready = [&svc] { return svc.ready(); };
  eopts.queue_depth = [&svc] { return svc.queue_depth(); };
  eopts.flags = "--workers=2 --admin-port=0";
  net::RegisterAdminEndpoints(server, eopts);
  FAST_CHECK_OK(server.Start());

  auto metrics = HttpGet("127.0.0.1", server.port(), "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics->body.find("fast_requests_total"), std::string::npos);
  EXPECT_NE(metrics->body.find("fast_account_requests_total"),
            std::string::npos);
  // Per-tenant families from the accountant ride along after the registry.
  EXPECT_NE(metrics->body.find("fast_tenant_requests_total{tenant=\"__default\"} 3"),
            std::string::npos);

  auto mjson = HttpGet("127.0.0.1", server.port(), "/metrics.json");
  ASSERT_TRUE(mjson.ok()) << mjson.status();
  EXPECT_NE(mjson->content_type.find("application/json"), std::string::npos);
  EXPECT_NE(mjson->body.find("\"metrics\""), std::string::npos);
  EXPECT_NE(mjson->body.find("\"accounts\""), std::string::npos);

  auto health = HttpGet("127.0.0.1", server.port(), "/healthz");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body, "ok\n");

  auto tenants = HttpGet("127.0.0.1", server.port(), "/tenants");
  ASSERT_TRUE(tenants.ok()) << tenants.status();
  EXPECT_NE(tenants->body.find("\"tenant\": \"__default\""),
            std::string::npos);
  EXPECT_NE(tenants->body.find("\"requests\": 3"), std::string::npos);

  auto varz = HttpGet("127.0.0.1", server.port(), "/varz");
  ASSERT_TRUE(varz.ok()) << varz.status();
  EXPECT_NE(varz->body.find("\"build\""), std::string::npos);
  EXPECT_NE(varz->body.find("--workers=2"), std::string::npos);
  EXPECT_NE(varz->body.find("\"queue_depth\": 0"), std::string::npos);

  // No SLO objective configured -> the endpoint reports the engine off.
  auto slo = HttpGet("127.0.0.1", server.port(), "/slo");
  ASSERT_TRUE(slo.ok()) << slo.status();
  EXPECT_NE(slo->body.find("\"enabled\": false"), std::string::npos);

  auto traces = HttpGet("127.0.0.1", server.port(), "/traces/recent");
  ASSERT_TRUE(traces.ok()) << traces.status();
  EXPECT_NE(traces->content_type.find("ndjson"), std::string::npos);
  EXPECT_NE(traces->body.find("\"request_id\""), std::string::npos);

  server.Shutdown();
  svc.Shutdown();
}

TEST(AdminEndpointsTest, HealthzReports503WhenNotReady) {
  AdminHttpServer server;
  AdminEndpointsOptions eopts;
  eopts.ready = [] { return false; };
  net::RegisterAdminEndpoints(server, eopts);
  FAST_CHECK_OK(server.Start());
  auto health = HttpGet("127.0.0.1", server.port(), "/healthz");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->status, 503);
  server.Shutdown();
}

}  // namespace
}  // namespace fast
