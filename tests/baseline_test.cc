#include "baseline/baseline.h"

#include <gtest/gtest.h>

#include "baseline/backtracking.h"
#include "baseline/join.h"
#include "test_util.h"

namespace fast {
namespace {

using testing::BruteForceCount;
using testing::PaperDataGraph;
using testing::PaperQuery;
using testing::SmallLdbcGraph;
using testing::ToSet;

TEST(BaselineFactoryTest, CreatesAllKinds) {
  EXPECT_EQ(MakeBaseline(BaselineKind::kCfl)->name(), "CFL");
  EXPECT_EQ(MakeBaseline(BaselineKind::kDaf)->name(), "DAF");
  EXPECT_EQ(MakeBaseline(BaselineKind::kCeci)->name(), "CECI");
  EXPECT_EQ(MakeBaseline(BaselineKind::kGpsm)->name(), "GpSM");
  EXPECT_EQ(MakeBaseline(BaselineKind::kGsi)->name(), "GSI");
}

class BaselineCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<BaselineKind, int>> {};

TEST_P(BaselineCorrectnessTest, MatchesBruteForceOnLdbc) {
  const auto [kind, query_index] = GetParam();
  Graph g = SmallLdbcGraph();
  QueryGraph q = LdbcQuery(query_index).value();
  auto matcher = MakeBaseline(kind);
  auto result = matcher->Run(q, g, BaselineOptions{});
  ASSERT_TRUE(result.ok()) << matcher->name() << ": " << result.status();
  EXPECT_EQ(result->embeddings, BruteForceCount(q, g))
      << matcher->name() << " on " << q.name();
  EXPECT_GE(result->seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselinesAllQueries, BaselineCorrectnessTest,
    ::testing::Combine(::testing::Values(BaselineKind::kCfl, BaselineKind::kDaf,
                                         BaselineKind::kCeci, BaselineKind::kGpsm,
                                         BaselineKind::kGsi),
                       ::testing::Range(0, kNumLdbcQueries)));

TEST(BaselineCorrectnessTest, PaperExampleAllAgree) {
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  for (BaselineKind kind : {BaselineKind::kCfl, BaselineKind::kDaf,
                            BaselineKind::kCeci, BaselineKind::kGpsm,
                            BaselineKind::kGsi}) {
    auto result = MakeBaseline(kind)->Run(q, g, BaselineOptions{});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->embeddings, 2u) << MakeBaseline(kind)->name();
  }
}

TEST(BaselineCorrectnessTest, StoredEmbeddingsMatchBruteForce) {
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  BaselineOptions options;
  options.store_limit = 100;
  for (BaselineKind kind : {BaselineKind::kGpsm, BaselineKind::kGsi}) {
    auto result = MakeBaseline(kind)->Run(q, g, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(ToSet(result->sample_embeddings),
              ToSet(testing::BruteForceEmbeddings(q, g)));
  }
}

TEST(BacktrackingTest, MultiThreadedMatchesSingleThreaded) {
  Graph g = SmallLdbcGraph(0.2);
  for (int qi : {2, 5, 8}) {
    QueryGraph q = LdbcQuery(qi).value();
    BaselineOptions serial;
    BaselineOptions parallel;
    parallel.num_threads = 8;
    auto matcher = MakeBaseline(BaselineKind::kCeci);
    auto a = matcher->Run(q, g, serial);
    auto b = matcher->Run(q, g, parallel);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->embeddings, b->embeddings) << q.name();
  }
}

TEST(BacktrackingTest, RejectsZeroThreads) {
  BaselineOptions options;
  options.num_threads = 0;
  auto result =
      MakeBaseline(BaselineKind::kDaf)->Run(PaperQuery(), PaperDataGraph(), options);
  EXPECT_FALSE(result.ok());
}

TEST(BacktrackingTest, TimeoutReturnsDeadlineExceeded) {
  Graph g = SmallLdbcGraph(0.5);
  QueryGraph q = LdbcQuery(8).value();  // dense person diamond: many results
  BaselineOptions options;
  options.time_limit_seconds = 0.0;  // immediate deadline
  auto result = MakeBaseline(BaselineKind::kCeci)->Run(q, g, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(JoinTest, GpsmOomOnTinyMemoryCap) {
  Graph g = SmallLdbcGraph(0.2);
  QueryGraph q = LdbcQuery(2).value();
  BaselineOptions options;
  options.memory_cap_bytes = 1024;  // absurdly small device
  auto result = MakeBaseline(BaselineKind::kGpsm)->Run(q, g, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(JoinTest, GsiOomOnTinyMemoryCap) {
  Graph g = SmallLdbcGraph(0.2);
  QueryGraph q = LdbcQuery(2).value();
  BaselineOptions options;
  options.memory_cap_bytes = 1024;
  auto result = MakeBaseline(BaselineKind::kGsi)->Run(q, g, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(JoinTest, GsiUsesMoreMemoryThanGpsm) {
  // The Prealloc-Combine strategy reserves worst-case space: GSI's tracked
  // peak must dominate GpSM's on the same workload (paper Sec. VII-C).
  Graph g = SmallLdbcGraph(0.2);
  QueryGraph q = LdbcQuery(2).value();
  auto gpsm = MakeBaseline(BaselineKind::kGpsm)->Run(q, g, BaselineOptions{});
  auto gsi = MakeBaseline(BaselineKind::kGsi)->Run(q, g, BaselineOptions{});
  ASSERT_TRUE(gpsm.ok());
  ASSERT_TRUE(gsi.ok());
  EXPECT_EQ(gpsm->embeddings, gsi->embeddings);
  EXPECT_GT(gsi->peak_memory_bytes, 0u);
  EXPECT_GT(gpsm->peak_memory_bytes, 0u);
  EXPECT_GE(gsi->peak_memory_bytes, gpsm->peak_memory_bytes);
}

TEST(JoinTest, PeakMemoryReported) {
  auto result =
      MakeBaseline(BaselineKind::kGpsm)->Run(PaperQuery(), PaperDataGraph(), {});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->peak_memory_bytes, 0u);
}

TEST(BacktrackStyleTest, StylesHaveExpectedSettings) {
  EXPECT_FALSE(CflStyle().intersection_based);
  EXPECT_TRUE(DafStyle().intersection_based);
  EXPECT_TRUE(CeciStyle().intersection_based);
  EXPECT_EQ(CflStyle().order_policy, OrderPolicy::kCfl);
  EXPECT_EQ(DafStyle().order_policy, OrderPolicy::kDaf);
  EXPECT_EQ(CeciStyle().order_policy, OrderPolicy::kCeci);
}

}  // namespace
}  // namespace fast
