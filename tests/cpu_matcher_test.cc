#include "core/cpu_matcher.h"

#include <gtest/gtest.h>

#include "query/matching_order.h"
#include "test_util.h"

namespace fast {
namespace {

using testing::BruteForceCount;
using testing::BruteForceEmbeddings;
using testing::PaperDataGraph;
using testing::PaperQuery;
using testing::SmallLdbcGraph;
using testing::ToSet;

MatchingOrder PaperOrder() {
  MatchingOrder order;
  order.root = 0;
  order.order = {0, 1, 2, 3};
  return order;
}

TEST(CpuMatcherTest, PaperExampleEmbeddings) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  ResultCollector collector(8);
  EXPECT_EQ(MatchCstOnCpu(cst, PaperOrder(), &collector).value(), 2u);
  EXPECT_EQ(ToSet(collector.stored()),
            ToSet(BruteForceEmbeddings(PaperQuery(), PaperDataGraph())));
}

TEST(CpuMatcherTest, NullCollectorCountsOnly) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  EXPECT_EQ(MatchCstOnCpu(cst, PaperOrder(), nullptr).value(), 2u);
}

TEST(CpuMatcherTest, CancelledTokenAbortsWithDeadlineExceeded) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  CancelToken cancel;
  cancel.Cancel();
  auto run = MatchCstOnCpu(cst, PaperOrder(), nullptr, &cancel);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(CpuMatcherTest, UntrippedTokenDoesNotPerturbResults) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  CancelToken cancel;  // never tripped, no deadline
  EXPECT_EQ(MatchCstOnCpu(cst, PaperOrder(), nullptr, &cancel).value(), 2u);
}

TEST(CpuMatcherTest, RejectsWrongArity) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  MatchingOrder bad;
  bad.root = 0;
  bad.order = {0, 1};
  EXPECT_FALSE(MatchCstOnCpu(cst, bad, nullptr).ok());
}

TEST(CpuMatcherTest, RejectsWrongRoot) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  MatchingOrder bad;
  bad.root = 1;
  bad.order = {1, 0, 2, 3};
  EXPECT_FALSE(MatchCstOnCpu(cst, bad, nullptr).ok());
}

TEST(CpuMatcherTest, RejectsNonTreeConnectedOrder) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  MatchingOrder bad;
  bad.root = 0;
  bad.order = {0, 3, 1, 2};  // u3 before its t_q parent u1
  EXPECT_FALSE(MatchCstOnCpu(cst, bad, nullptr).ok());
}

TEST(CpuMatcherTest, EmptyCandidateSetsYieldZero) {
  GraphBuilder qb;
  qb.AddVertex(9);  // label absent from the data graph
  qb.AddVertex(9);
  ASSERT_TRUE(qb.AddEdge(0, 1).ok());
  auto q = QueryGraph::Create(std::move(qb).Build().value()).value();
  Cst cst = BuildCst(q, PaperDataGraph(), 0).value();
  MatchingOrder order;
  order.root = 0;
  order.order = {0, 1};
  EXPECT_EQ(MatchCstOnCpu(cst, order, nullptr).value(), 0u);
}

class CpuMatcherOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(CpuMatcherOrderTest, AnyConnectedOrderGivesSameCount) {
  Graph g = SmallLdbcGraph();
  QueryGraph q = LdbcQuery(GetParam()).value();
  const std::uint64_t truth = BruteForceCount(q, g);
  const VertexId root = SelectRoot(q, g);
  Cst cst = BuildCst(q, g, root).value();
  for (const auto& o : EnumerateConnectedOrders(q, root, 12)) {
    MatchingOrder order;
    order.root = root;
    order.order = o;
    EXPECT_EQ(MatchCstOnCpu(cst, order, nullptr).value(), truth) << q.name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllLdbcQueries, CpuMatcherOrderTest,
                         ::testing::Range(0, kNumLdbcQueries));

// ---- ResultCollector ----

TEST(ResultCollectorTest, CountsWithoutStoring) {
  ResultCollector c;
  const Embedding e{1, 2, 3};
  c.OnEmbedding(e);
  c.OnEmbedding(e);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_TRUE(c.stored().empty());
}

TEST(ResultCollectorTest, StoresUpToLimit) {
  ResultCollector c(2);
  for (VertexId i = 0; i < 5; ++i) {
    const Embedding e{i};
    c.OnEmbedding(e);
  }
  EXPECT_EQ(c.count(), 5u);
  ASSERT_EQ(c.stored().size(), 2u);
  EXPECT_EQ(c.stored()[0], (Embedding{0}));
  EXPECT_EQ(c.stored()[1], (Embedding{1}));
}

TEST(ResultCollectorTest, CallbackSeesEveryEmbedding) {
  ResultCollector c;
  std::size_t calls = 0;
  c.SetCallback([&](std::span<const VertexId> m) {
    ++calls;
    EXPECT_EQ(m.size(), 2u);
  });
  c.OnEmbedding(Embedding{1, 2});
  c.OnEmbedding(Embedding{3, 4});
  EXPECT_EQ(calls, 2u);
}

TEST(ResultCollectorTest, MergeCombinesCountsAndRespectsLimit) {
  ResultCollector a(3);
  a.OnEmbedding(Embedding{1});
  ResultCollector b(3);
  b.OnEmbedding(Embedding{2});
  b.OnEmbedding(Embedding{3});
  b.OnEmbedding(Embedding{4});
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.stored().size(), 3u);  // capped at a's limit
}

}  // namespace
}  // namespace fast
