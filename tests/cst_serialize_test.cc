#include "cst/cst_serialize.h"

#include <gtest/gtest.h>

#include "core/kernel.h"
#include "cst/partition.h"
#include "query/matching_order.h"
#include "test_util.h"

namespace fast {
namespace {

using testing::PaperDataGraph;
using testing::PaperQuery;
using testing::SmallLdbcGraph;

TEST(CstSerializeTest, RoundTripPaperExample) {
  QueryGraph q = PaperQuery();
  Cst cst = BuildCst(q, PaperDataGraph(), 0).value();
  const auto image = SerializeCst(cst);
  EXPECT_EQ(image.front(), kCstImageMagic);
  EXPECT_EQ(image.size() * 4, CstWireBytes(cst));

  auto restored = DeserializeCst(cst.layout_ptr(), image).value();
  EXPECT_TRUE(restored.Validate().ok());
  EXPECT_EQ(restored.SizeWords(), cst.SizeWords());
  EXPECT_EQ(restored.TotalCandidates(), cst.TotalCandidates());
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    ASSERT_EQ(restored.NumCandidates(u), cst.NumCandidates(u));
    for (std::uint32_t i = 0; i < cst.NumCandidates(u); ++i) {
      EXPECT_EQ(restored.Candidate(u, i), cst.Candidate(u, i));
    }
  }
}

TEST(CstSerializeTest, RestoredCstMatchesIdentically) {
  Graph g = SmallLdbcGraph();
  QueryGraph q = LdbcQuery(5).value();
  auto order = ComputeMatchingOrder(q, g, OrderPolicy::kPathBased).value();
  Cst cst = BuildCst(q, g, order.root).value();

  auto restored = DeserializeCst(cst.layout_ptr(), SerializeCst(cst)).value();
  const auto a = RunKernel(cst, order, FpgaConfig{}, nullptr).value();
  const auto b = RunKernel(restored, order, FpgaConfig{}, nullptr).value();
  EXPECT_EQ(a.embeddings, b.embeddings);
  EXPECT_EQ(a.counters.partial_results, b.counters.partial_results);
}

TEST(CstSerializeTest, PartitionImagesRoundTrip) {
  Graph g = SmallLdbcGraph(0.2);
  QueryGraph q = LdbcQuery(2).value();
  auto order = ComputeMatchingOrder(q, g, OrderPolicy::kPathBased).value();
  Cst cst = BuildCst(q, g, order.root).value();
  PartitionConfig config;
  config.max_size_words = std::max<std::size_t>(cst.SizeWords() / 5, 64);
  auto parts = PartitionCstToVector(cst, order, config, nullptr).value();
  ASSERT_GT(parts.size(), 1u);
  for (const auto& p : parts) {
    auto restored = DeserializeCst(p.layout_ptr(), SerializeCst(p)).value();
    EXPECT_EQ(restored.SizeWords(), p.SizeWords());
  }
}

TEST(CstSerializeTest, RejectsCorruptImages) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  auto image = SerializeCst(cst);

  EXPECT_FALSE(DeserializeCst(nullptr, image).ok());

  auto bad_magic = image;
  bad_magic[0] ^= 1;
  EXPECT_FALSE(DeserializeCst(cst.layout_ptr(), bad_magic).ok());

  auto truncated = image;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(DeserializeCst(cst.layout_ptr(), truncated).ok());

  auto trailing = image;
  trailing.push_back(0);
  EXPECT_FALSE(DeserializeCst(cst.layout_ptr(), trailing).ok());

  auto wrong_arity = image;
  wrong_arity[1] += 1;
  EXPECT_FALSE(DeserializeCst(cst.layout_ptr(), wrong_arity).ok());
}

TEST(CstSerializeTest, WireBytesTracksSizeWords) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  EXPECT_GT(CstWireBytes(cst), cst.SizeBytes());
  // Header + per-array length prefixes only.
  const std::size_t overhead =
      (3 + cst.NumQueryVertices() + 2 * cst.layout().edges().size()) * 4;
  EXPECT_EQ(CstWireBytes(cst), cst.SizeBytes() + overhead);
}

}  // namespace
}  // namespace fast
