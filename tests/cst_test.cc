#include "cst/cst.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "test_util.h"

namespace fast {
namespace {

using testing::BruteForceEmbeddings;
using testing::PaperDataGraph;
using testing::PaperQuery;
using testing::SmallLdbcGraph;

std::set<VertexId> CandidateSet(const Cst& cst, VertexId u) {
  auto span = cst.Candidates(u);
  return {span.begin(), span.end()};
}

TEST(CstLayoutTest, SlotsCoverAllDirectedQueryEdges) {
  QueryGraph q = PaperQuery();
  auto layout = CstLayout::Create(q, 0);
  EXPECT_EQ(layout->edges().size(), 2 * q.NumEdges());
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    for (VertexId w = 0; w < q.NumVertices(); ++w) {
      if (q.HasEdge(u, w)) {
        EXPECT_GE(layout->SlotOf(u, w), 0);
      } else {
        EXPECT_EQ(layout->SlotOf(u, w), -1);
      }
    }
  }
}

TEST(CstLayoutTest, TreeFlagMatchesBfsTree) {
  QueryGraph q = PaperQuery();
  auto layout = CstLayout::Create(q, 0);
  for (const auto& e : layout->edges()) {
    const bool is_tree = layout->tree().parent(e.to) == e.from ||
                         layout->tree().parent(e.from) == e.to;
    EXPECT_EQ(e.is_tree, is_tree);
  }
}

TEST(CstBuildTest, RejectsBadRoot) {
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  EXPECT_FALSE(BuildCst(q, g, 99).ok());
}

TEST(CstBuildTest, PaperExampleCandidateSets) {
  // Example 2 / Fig. 3(b): the exact candidate sets.
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  Cst cst = BuildCst(q, g, 0).value();
  EXPECT_EQ(CandidateSet(cst, 0), (std::set<VertexId>{0, 1}));     // v1, v2
  EXPECT_EQ(CandidateSet(cst, 1), (std::set<VertexId>{3, 5}));     // v4, v6
  EXPECT_EQ(CandidateSet(cst, 2), (std::set<VertexId>{2, 4, 6}));  // v3, v5, v7
  EXPECT_EQ(CandidateSet(cst, 3), (std::set<VertexId>{8, 9}));     // v9, v10
}

TEST(CstBuildTest, PaperExampleAdjacency) {
  // N^{u1}_{u2}(v6) = {v5, v7} and N^{u2}_{u3}(v3) = {v9}.
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  Cst cst = BuildCst(q, g, 0).value();

  const auto c1 = cst.Candidates(1);
  const auto pos_v6 = static_cast<std::uint32_t>(
      std::lower_bound(c1.begin(), c1.end(), VertexId{5}) - c1.begin());
  std::set<VertexId> n12;
  for (std::uint32_t t : cst.Neighbors(1, 2, pos_v6)) {
    n12.insert(cst.Candidate(2, t));
  }
  EXPECT_EQ(n12, (std::set<VertexId>{4, 6}));  // v5, v7

  const auto c2 = cst.Candidates(2);
  const auto pos_v3 = static_cast<std::uint32_t>(
      std::lower_bound(c2.begin(), c2.end(), VertexId{2}) - c2.begin());
  std::set<VertexId> n23;
  for (std::uint32_t t : cst.Neighbors(2, 3, pos_v3)) {
    n23.insert(cst.Candidate(3, t));
  }
  EXPECT_EQ(n23, (std::set<VertexId>{8}));  // v9
}

TEST(CstBuildTest, ValidatePassesOnPaperExample) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  EXPECT_TRUE(cst.Validate().ok()) << cst.Validate();
}

TEST(CstBuildTest, SizeAndDegreeMetricsPositive) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  EXPECT_GT(cst.SizeWords(), 0u);
  EXPECT_EQ(cst.SizeBytes(), cst.SizeWords() * 4);
  EXPECT_GT(cst.MaxAdjacencyDegree(), 0u);
  EXPECT_EQ(cst.TotalCandidates(), 2u + 2u + 3u + 2u);
}

TEST(CstBuildTest, CstEdgesMirrorGraphEdges) {
  // Def. 2: candidates v in C(u), v' in C(u') for adjacent u,u' are
  // CST-adjacent iff (v, v') in E(G).
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  Cst cst = BuildCst(q, g, 0).value();
  for (const auto& e : cst.layout().edges()) {
    const auto src = cst.Candidates(e.from);
    const auto dst = cst.Candidates(e.to);
    for (std::uint32_t i = 0; i < src.size(); ++i) {
      for (std::uint32_t j = 0; j < dst.size(); ++j) {
        EXPECT_EQ(cst.HasCstEdge(e.from, i, e.to, j), g.HasEdge(src[i], dst[j]))
            << "slot (" << e.from << "->" << e.to << ") " << src[i] << "," << dst[j];
      }
    }
  }
}

TEST(CstBuildTest, CpiModeLeavesNonTreeEmpty) {
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  CstBuildOptions options;
  options.materialize_non_tree = false;
  Cst cst = BuildCst(q, g, 0, options).value();
  EXPECT_TRUE(cst.Validate().ok());
  for (std::size_t s = 0; s < cst.layout().edges().size(); ++s) {
    const auto& e = cst.layout().edges()[s];
    if (!e.is_tree) {
      EXPECT_TRUE(cst.EdgeList(static_cast<int>(s)).targets.empty());
    } else {
      EXPECT_FALSE(cst.EdgeList(static_cast<int>(s)).targets.empty());
    }
  }
}

// Soundness (the constraint of Sec. V-A): every embedding of q in G maps
// each u into C(u).
class CstSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(CstSoundnessTest, EveryEmbeddingContainedInCandidates) {
  Graph g = SmallLdbcGraph();
  QueryGraph q = LdbcQuery(GetParam()).value();
  const auto embeddings = BruteForceEmbeddings(q, g);
  for (VertexId root = 0; root < q.NumVertices(); ++root) {
    Cst cst = BuildCst(q, g, root).value();
    ASSERT_TRUE(cst.Validate().ok());
    for (const auto& emb : embeddings) {
      for (VertexId u = 0; u < q.NumVertices(); ++u) {
        const auto c = cst.Candidates(u);
        EXPECT_TRUE(std::binary_search(c.begin(), c.end(), emb[u]))
            << q.name() << " root=" << root << " u=" << u;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLdbcQueries, CstSoundnessTest,
                         ::testing::Range(0, kNumLdbcQueries));

// Candidates are pruned but never below the soundness bar; refinement rounds
// only shrink the structure.
TEST(CstBuildTest, MoreRefinementNeverGrows) {
  Graph g = SmallLdbcGraph();
  for (int qi : {0, 2, 5, 8}) {
    QueryGraph q = LdbcQuery(qi).value();
    CstBuildOptions r0;
    r0.refine_rounds = 0;
    CstBuildOptions r3;
    r3.refine_rounds = 3;
    Cst a = BuildCst(q, g, 0, r0).value();
    Cst b = BuildCst(q, g, 0, r3).value();
    EXPECT_LE(b.SizeWords(), a.SizeWords()) << q.name();
    EXPECT_LE(b.TotalCandidates(), a.TotalCandidates()) << q.name();
  }
}

// ---- SubsetCst ----

TEST(SubsetCstTest, FullMaskIsIdentity) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  std::vector<std::vector<char>> keep(cst.NumQueryVertices());
  for (VertexId u = 0; u < cst.NumQueryVertices(); ++u) {
    keep[u].assign(cst.NumCandidates(u), 1);
  }
  Cst sub = SubsetCst(cst, keep).value();
  EXPECT_TRUE(sub.Validate().ok());
  EXPECT_EQ(sub.SizeWords(), cst.SizeWords());
  EXPECT_EQ(sub.TotalCandidates(), cst.TotalCandidates());
}

TEST(SubsetCstTest, RestrictingRootDropsAdjacency) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  std::vector<std::vector<char>> keep(cst.NumQueryVertices());
  for (VertexId u = 0; u < cst.NumQueryVertices(); ++u) {
    keep[u].assign(cst.NumCandidates(u), 1);
  }
  keep[0] = {1, 0};  // keep only v1
  Cst sub = SubsetCst(cst, keep).value();
  EXPECT_TRUE(sub.Validate().ok());
  EXPECT_EQ(sub.NumCandidates(0), 1u);
  EXPECT_LT(sub.SizeWords(), cst.SizeWords());
  // Remaining adjacency must still mirror graph edges.
  Graph g = PaperDataGraph();
  for (const auto& e : sub.layout().edges()) {
    const auto src = sub.Candidates(e.from);
    const auto dst = sub.Candidates(e.to);
    for (std::uint32_t i = 0; i < src.size(); ++i) {
      for (std::uint32_t j = 0; j < dst.size(); ++j) {
        EXPECT_EQ(sub.HasCstEdge(e.from, i, e.to, j), g.HasEdge(src[i], dst[j]));
      }
    }
  }
}

TEST(SubsetCstTest, RejectsWrongArity) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  std::vector<std::vector<char>> keep(2);
  EXPECT_FALSE(SubsetCst(cst, keep).ok());
}

TEST(SubsetCstTest, RejectsWrongMaskSize) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  std::vector<std::vector<char>> keep(cst.NumQueryVertices());
  for (VertexId u = 0; u < cst.NumQueryVertices(); ++u) {
    keep[u].assign(cst.NumCandidates(u) + 1, 1);
  }
  EXPECT_FALSE(SubsetCst(cst, keep).ok());
}

TEST(CstSummaryTest, MentionsSizeAndDegree) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  const std::string s = cst.Summary();
  EXPECT_NE(s.find("cands="), std::string::npos);
  EXPECT_NE(s.find("words="), std::string::npos);
}

}  // namespace
}  // namespace fast
