// Tests for the shared device executor (src/device/): correctness of
// device-routed matching vs the inline driver path, cross-query batch
// coalescing and transfer dedup, WRR fairness between a hot and a cold
// tenant's partition streams, mid-batch cancellation, and shutdown.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/driver.h"
#include "cst/cst.h"
#include "device/device_executor.h"
#include "query/matching_order.h"
#include "tests/test_util.h"
#include "util/cancel.h"

namespace fast {
namespace {

using device::DeviceExecutor;
using device::DeviceOptions;
using device::DeviceQueryResult;
using device::DeviceStats;
using device::RunCstOnDevice;
using testing::BruteForceCount;
using testing::PaperDataGraph;
using testing::PaperQuery;

// A device model small enough that tests run instantly; matches the serve
// benches' scaled-down card.
DeviceOptions SmallDeviceOptions() {
  DeviceOptions opts;
  opts.fpga.bram_words = 128 * 1024;
  opts.fpga.port_max = 65536;
  opts.fpga.max_new_partials = 1024;
  return opts;
}

struct Plan {
  MatchingOrder order;
  Cst cst;
};

Plan BuildPlan(const QueryGraph& q, const Graph& g) {
  auto order = ComputeMatchingOrder(q, g, OrderPolicy::kPathBased);
  FAST_CHECK(order.ok());
  auto cst = BuildCst(q, g, order->root, {});
  FAST_CHECK(cst.ok());
  return {*std::move(order), *std::move(cst)};
}

TEST(DeviceExecutorTest, DeviceRoutedRunMatchesInlineDriver) {
  const Graph g = PaperDataGraph();
  const QueryGraph q = PaperQuery();
  const Plan plan = BuildPlan(q, g);

  FastRunOptions run;
  run.fpga = SmallDeviceOptions().fpga;
  run.store_limit = 16;
  auto inline_result = RunFastWithCst(plan.cst, plan.order, run);
  ASSERT_TRUE(inline_result.ok());

  DeviceExecutor device(SmallDeviceOptions());
  auto device_result =
      RunCstOnDevice(device, plan.cst, plan.order, run, "t0", 1, "paper-q");
  ASSERT_TRUE(device_result.ok());

  EXPECT_EQ(device_result->embeddings, BruteForceCount(q, g));
  EXPECT_EQ(device_result->embeddings, inline_result->embeddings);
  EXPECT_EQ(testing::ToSet(device_result->sample_embeddings),
            testing::ToSet(inline_result->sample_embeddings));
  EXPECT_GE(device_result->fpga_partitions, 1u);
  EXPECT_GT(device_result->pcie_seconds, 0.0);
  EXPECT_GT(device_result->kernel_seconds, 0.0);

  const DeviceStats stats = device.stats();
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_GE(stats.rounds, 1u);
  EXPECT_EQ(stats.items, device_result->fpga_partitions);
  EXPECT_GT(stats.wire_bytes, stats.payload_bytes);  // per-round DMA overhead
}

TEST(DeviceExecutorTest, BatchCoalescesConcurrentQueriesIntoOneRound) {
  const Graph g = PaperDataGraph();
  const QueryGraph q = PaperQuery();
  const Plan plan = BuildPlan(q, g);

  DeviceOptions opts = SmallDeviceOptions();
  opts.batch_window_seconds = 0.2;  // generous: both submitters land inside
  opts.max_batch_items = 64;
  DeviceExecutor device(opts);

  FastRunOptions run;
  run.fpga = opts.fpga;
  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  for (int i = 0; i < 2; ++i) {
    submitters.emplace_back([&, i] {
      // Distinct tenants, same canonical plan: the batch must mix them.
      auto r = RunCstOnDevice(device, plan.cst, plan.order, run,
                              "t" + std::to_string(i), 1, "paper-q");
      if (!r.ok() || r->embeddings != BruteForceCount(q, g)) failures.fetch_add(1);
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(failures.load(), 0);

  const DeviceStats stats = device.stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.rounds, 1u);  // one shared round for both queries
  EXPECT_EQ(stats.max_queries_per_round, 2u);
  EXPECT_GT(stats.QueriesPerRound(), 1.0);
}

TEST(DeviceExecutorTest, IdenticalImagesInOneRoundTransferOnce) {
  const Graph g = PaperDataGraph();
  const QueryGraph q = PaperQuery();
  const Plan plan = BuildPlan(q, g);

  DeviceOptions opts = SmallDeviceOptions();
  opts.batch_window_seconds = 0.2;
  opts.max_batch_items = 64;
  DeviceExecutor device(opts);

  FastRunOptions run;
  run.fpga = opts.fpga;
  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  for (int i = 0; i < 2; ++i) {
    submitters.emplace_back([&] {
      // SAME tenant, epoch and plan key: bit-identical partition images.
      auto r = RunCstOnDevice(device, plan.cst, plan.order, run, "t0", 1,
                              "paper-q");
      if (!r.ok() || r->embeddings != BruteForceCount(q, g)) failures.fetch_add(1);
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(failures.load(), 0);

  const DeviceStats stats = device.stats();
  ASSERT_EQ(stats.rounds, 1u);
  // The duplicate query's images rode the first transfer for free.
  EXPECT_GT(stats.dedup_bytes_saved, 0u);
  EXPECT_EQ(stats.dedup_bytes_saved, stats.payload_bytes);
}

// Satellite gate: a hot tenant flooding the device queue must not starve a
// cold tenant's partitions. The WRR dequeue interleaves queues per round, so
// the cold query's items land in its FIRST round — the same round structure
// it gets running solo — instead of queueing behind the whole hot backlog.
TEST(DeviceExecutorTest, ColdTenantRidesFirstRoundDespiteHotFlood) {
  const Graph g = PaperDataGraph();
  const QueryGraph q = PaperQuery();
  const Plan plan = BuildPlan(q, g);

  DeviceOptions opts = SmallDeviceOptions();
  opts.batch_window_seconds = 0.2;  // all items below enqueue within this
  opts.max_batch_items = 4;
  constexpr std::size_t kHotItems = 16;
  constexpr std::size_t kColdItems = 2;

  // Solo baseline: the cold tenant alone finishes within its first round.
  std::uint64_t solo_last_round;
  {
    DeviceExecutor device(opts);
    ResultCollector collector;
    auto cold = device.BeginQuery("cold", 1, "kc", plan.order, &collector,
                                  nullptr);
    for (std::size_t i = 0; i < kColdItems; ++i) {
      ASSERT_TRUE(device.EnqueuePartition(cold, plan.cst).ok());
    }
    DeviceQueryResult r = device.FinishQuery(cold);
    ASSERT_TRUE(r.status.ok());
    solo_last_round = r.last_round;
    EXPECT_EQ(r.first_round, 1u);
    EXPECT_EQ(r.items, kColdItems);
  }

  // Flooded: 16 hot items enqueued BEFORE the cold query's 2.
  DeviceExecutor device(opts);
  ResultCollector hot_collector;
  ResultCollector cold_collector;
  auto hot =
      device.BeginQuery("hot", 1, "kh", plan.order, &hot_collector, nullptr);
  for (std::size_t i = 0; i < kHotItems; ++i) {
    ASSERT_TRUE(device.EnqueuePartition(hot, plan.cst).ok());
  }
  auto cold = device.BeginQuery("cold", 1, "kc", plan.order, &cold_collector,
                                nullptr);
  for (std::size_t i = 0; i < kColdItems; ++i) {
    ASSERT_TRUE(device.EnqueuePartition(cold, plan.cst).ok());
  }
  DeviceQueryResult cold_r = device.FinishQuery(cold);
  DeviceQueryResult hot_r = device.FinishQuery(hot);
  ASSERT_TRUE(cold_r.status.ok());
  ASSERT_TRUE(hot_r.status.ok());
  EXPECT_EQ(cold_r.items, kColdItems);
  EXPECT_EQ(hot_r.items, kHotItems);
  // A/B vs solo: WRR serves the cold queue in the first round formed after
  // its items arrive. The device may have dispatched one all-hot round
  // before the cold enqueue ran, so allow exactly one round of slack — but
  // never the 4+ rounds the 16-item hot backlog needs.
  EXPECT_LE(cold_r.last_round, solo_last_round + 1);
  EXPECT_LT(cold_r.last_round, hot_r.last_round);
  EXPECT_GE(hot_r.last_round, 4u);  // 16 items at <= 4 per round
  // Each item of the flood still matched correctly.
  EXPECT_EQ(cold_r.embeddings, kColdItems * BruteForceCount(q, g));
  EXPECT_EQ(hot_r.embeddings, kHotItems * BruteForceCount(q, g));
}

TEST(DeviceExecutorTest, TrippedTokenSkipsItemsMidBatch) {
  const Graph g = PaperDataGraph();
  const QueryGraph q = PaperQuery();
  const Plan plan = BuildPlan(q, g);

  DeviceExecutor device(SmallDeviceOptions());
  CancelToken cancelled;
  cancelled.Cancel();
  ResultCollector collector;
  auto session =
      device.BeginQuery("t0", 1, "paper-q", plan.order, &collector, &cancelled);
  ASSERT_TRUE(device.EnqueuePartition(session, plan.cst).ok());
  ASSERT_TRUE(device.EnqueuePartition(session, plan.cst).ok());
  DeviceQueryResult r = device.FinishQuery(session);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r.items, 0u);
  EXPECT_EQ(collector.count(), 0u);
  const DeviceStats stats = device.stats();
  EXPECT_EQ(stats.cancelled_items, 2u);
  EXPECT_EQ(stats.items, 0u);
  EXPECT_EQ(stats.payload_bytes, 0u);  // skipped items never transfer
}

TEST(DeviceExecutorTest, ShutdownDrainsThenRejectsNewWork) {
  const Graph g = PaperDataGraph();
  const QueryGraph q = PaperQuery();
  const Plan plan = BuildPlan(q, g);

  DeviceExecutor device(SmallDeviceOptions());
  FastRunOptions run;
  run.fpga = device.options().fpga;
  auto before = RunCstOnDevice(device, plan.cst, plan.order, run, "t0", 1, "k");
  ASSERT_TRUE(before.ok());

  device.Shutdown();
  ResultCollector collector;
  auto session = device.BeginQuery("t0", 1, "k", plan.order, &collector, nullptr);
  EXPECT_EQ(device.EnqueuePartition(session, plan.cst).code(),
            StatusCode::kFailedPrecondition);
  auto after = RunCstOnDevice(device, plan.cst, plan.order, run, "t0", 1, "k");
  EXPECT_FALSE(after.ok());
}

// Many submitters hammering one executor: every query's counts must come out
// right regardless of how rounds interleave. Primarily a TSan target.
TEST(DeviceExecutorTest, ConcurrentSubmittersAllMatchCorrectly) {
  const Graph g = PaperDataGraph();
  const QueryGraph q = PaperQuery();
  const Plan plan = BuildPlan(q, g);
  const std::uint64_t expected = BruteForceCount(q, g);

  DeviceOptions opts = SmallDeviceOptions();
  opts.batch_window_seconds = 1e-4;
  opts.max_batch_items = 3;
  DeviceExecutor device(opts);

  FastRunOptions run;
  run.fpga = opts.fpga;
  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        auto r = RunCstOnDevice(device, plan.cst, plan.order, run,
                                "t" + std::to_string(t % 2), 1, "paper-q");
        if (!r.ok() || r->embeddings != expected) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : submitters) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(device.stats().queries,
            static_cast<std::uint64_t>(kThreads * kQueriesPerThread));
}

}  // namespace
}  // namespace fast
