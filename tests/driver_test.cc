#include "core/driver.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace fast {
namespace {

using testing::BruteForceCount;
using testing::PaperDataGraph;
using testing::PaperQuery;
using testing::SmallLdbcGraph;

TEST(DriverTest, PaperExampleEndToEnd) {
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  auto result = RunFast(q, g).value();
  EXPECT_EQ(result.embeddings, 2u);
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_GT(result.kernel_seconds, 0.0);
  EXPECT_GE(result.partition_stats.num_partitions, 1u);
}

TEST(DriverTest, StoresSampleEmbeddings) {
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  FastRunOptions options;
  options.store_limit = 10;
  auto result = RunFast(q, g, options).value();
  EXPECT_EQ(result.sample_embeddings.size(), 2u);
}

TEST(DriverTest, RejectsBadDelta) {
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  FastRunOptions options;
  options.cpu_share_delta = 1.5;
  EXPECT_FALSE(RunFast(q, g, options).ok());
  options.cpu_share_delta = -0.1;
  EXPECT_FALSE(RunFast(q, g, options).ok());
}

TEST(DriverTest, RejectsInvalidFpgaConfig) {
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  FastRunOptions options;
  options.fpga.clock_mhz = -1;
  EXPECT_FALSE(RunFast(q, g, options).ok());
}

TEST(DriverTest, ExplicitOrderIsUsed) {
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  FastRunOptions options;
  MatchingOrder order;
  order.root = 0;
  order.order = {0, 2, 1, 3};
  options.explicit_order = order;
  auto result = RunFast(q, g, options).value();
  EXPECT_EQ(result.order.order, order.order);
  EXPECT_EQ(result.embeddings, 2u);
}

TEST(DriverTest, RejectsInvalidExplicitOrder) {
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  FastRunOptions options;
  MatchingOrder order;
  order.root = 0;
  order.order = {0, 3, 2, 1};  // u3 before its parent u1
  options.explicit_order = order;
  EXPECT_FALSE(RunFast(q, g, options).ok());
}

class DriverVariantTest : public ::testing::TestWithParam<FastVariant> {};

TEST_P(DriverVariantTest, AllVariantsProduceExactCounts) {
  Graph g = SmallLdbcGraph();
  for (int qi : {0, 2, 5, 8}) {
    QueryGraph q = LdbcQuery(qi).value();
    FastRunOptions options;
    options.variant = GetParam();
    auto result = RunFast(q, g, options).value();
    EXPECT_EQ(result.embeddings, BruteForceCount(q, g)) << q.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, DriverVariantTest,
                         ::testing::Values(FastVariant::kDram, FastVariant::kBasic,
                                           FastVariant::kTask, FastVariant::kSep),
                         [](const auto& info) {
                           std::string n = FastVariantName(info.param);
                           return n.substr(n.find('-') + 1);
                         });

TEST(DriverTest, DramVariantSkipsPartitioning) {
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  FastRunOptions options;
  options.variant = FastVariant::kDram;
  auto result = RunFast(q, g, options).value();
  EXPECT_EQ(result.partition_stats.num_partitions, 1u);
  EXPECT_EQ(result.embeddings, 2u);
}

TEST(DriverTest, DramSlowerThanBasicOnSameWorkload) {
  Graph g = SmallLdbcGraph(0.2);
  QueryGraph q = LdbcQuery(8).value();
  FastRunOptions options;
  options.variant = FastVariant::kDram;
  const double dram = RunFast(q, g, options).value().kernel_seconds;
  options.variant = FastVariant::kBasic;
  const double basic = RunFast(q, g, options).value().kernel_seconds;
  EXPECT_GT(dram, basic);
}

TEST(DriverTest, CpuShareProducesSameCountAndNonzeroShare) {
  Graph g = SmallLdbcGraph(0.2);
  QueryGraph q = LdbcQuery(2).value();

  FastRunOptions no_share;
  // Force many partitions so sharing has something to split.
  no_share.partition.max_size_words = 2048;
  no_share.partition.max_degree = 64;
  const auto base = RunFast(q, g, no_share).value();

  FastRunOptions share = no_share;
  share.cpu_share_delta = 0.2;
  const auto shared = RunFast(q, g, share).value();

  EXPECT_EQ(shared.embeddings, base.embeddings);
  if (shared.partition_stats.num_partitions > 1) {
    EXPECT_GT(shared.cpu_partitions, 0u);
    EXPECT_GT(shared.cpu_share_fraction, 0.0);
    EXPECT_LE(shared.cpu_share_fraction, 0.5);
  }
  EXPECT_EQ(shared.fpga_partitions, shared.partition_stats.num_partitions);
  EXPECT_EQ(shared.cpu_partitions, shared.partition_stats.num_cpu_offloaded);
}

TEST(DriverTest, SmallBramForcesMultiplePartitions) {
  Graph g = SmallLdbcGraph(0.2);
  QueryGraph q = LdbcQuery(2).value();
  FastRunOptions options;
  options.partition.max_size_words = 1024;
  options.partition.max_degree = 64;
  auto result = RunFast(q, g, options).value();
  EXPECT_GT(result.partition_stats.num_partitions, 1u);
  EXPECT_EQ(result.embeddings, BruteForceCount(q, g));
}

TEST(DerivePartitionConfigTest, DerivesFromDeviceWhenUnset) {
  FpgaConfig fpga;
  PartitionConfig requested{.max_size_words = 0, .max_degree = 0, .fixed_k = 0};
  PartitionConfig derived = DerivePartitionConfig(fpga, 5, requested);
  EXPECT_GT(derived.max_size_words, 0u);
  EXPECT_LT(derived.max_size_words, fpga.bram_words);
  EXPECT_EQ(derived.max_degree, fpga.port_max);
}

TEST(DerivePartitionConfigTest, ExplicitValuesPassThrough) {
  FpgaConfig fpga;
  PartitionConfig requested{.max_size_words = 777, .max_degree = 33, .fixed_k = 4};
  PartitionConfig derived = DerivePartitionConfig(fpga, 5, requested);
  EXPECT_EQ(derived.max_size_words, 777u);
  EXPECT_EQ(derived.max_degree, 33u);
  EXPECT_EQ(derived.fixed_k, 4);
}

// ---- Multi-FPGA (Sec. VII-E) ----

TEST(MultiFpgaTest, RejectsZeroDevices) {
  EXPECT_FALSE(RunMultiFpga(PaperQuery(), PaperDataGraph(), 0).ok());
}

TEST(MultiFpgaTest, SingleDeviceMatchesSingleRunCount) {
  Graph g = SmallLdbcGraph();
  QueryGraph q = LdbcQuery(2).value();
  auto single = RunMultiFpga(q, g, 1).value();
  EXPECT_EQ(single.embeddings, BruteForceCount(q, g));
  EXPECT_EQ(single.device_seconds.size(), 1u);
}

TEST(MultiFpgaTest, MoreDevicesNeverSlower) {
  Graph g = SmallLdbcGraph(0.2);
  QueryGraph q = LdbcQuery(8).value();
  FastRunOptions options;
  options.partition.max_size_words = 1024;
  options.partition.max_degree = 64;
  auto one = RunMultiFpga(q, g, 1, options).value();
  auto four = RunMultiFpga(q, g, 4, options).value();
  EXPECT_EQ(one.embeddings, four.embeddings);
  ASSERT_EQ(four.device_seconds.size(), 4u);
  const double busiest1 =
      *std::max_element(one.device_seconds.begin(), one.device_seconds.end());
  const double busiest4 =
      *std::max_element(four.device_seconds.begin(), four.device_seconds.end());
  EXPECT_LE(busiest4, busiest1 + 1e-12);
}

TEST(MultiFpgaTest, WorkSpreadsAcrossDevices) {
  Graph g = SmallLdbcGraph(0.2);
  QueryGraph q = LdbcQuery(2).value();
  FastRunOptions options;
  options.partition.max_size_words = 1024;
  options.partition.max_degree = 64;
  auto r = RunMultiFpga(q, g, 2, options).value();
  if (r.num_partitions >= 2) {
    EXPECT_GT(r.device_seconds[0], 0.0);
    EXPECT_GT(r.device_seconds[1], 0.0);
  }
}

}  // namespace
}  // namespace fast
