// Edge-labelled subgraph matching (the Sec. II-A extension: "our techniques
// can be readily extended to edge-labeled and directed graphs").

#include <gtest/gtest.h>

#include "baseline/baseline.h"
#include "core/driver.h"
#include "test_util.h"
#include "util/rng.h"

namespace fast {
namespace {

using testing::BruteForceCount;

// Small data graph with labelled relations:
//   friend(0) and enemy(1) edges among Person(0) vertices;
//   likes(2) edges from Person to Item(1) vertices.
Graph RelationGraph() {
  GraphBuilder b;
  for (int i = 0; i < 6; ++i) b.AddVertex(0);  // persons 0..5
  for (int i = 0; i < 3; ++i) b.AddVertex(1);  // items 6..8
  auto e = [&](VertexId u, VertexId v, Label l) {
    EXPECT_TRUE(b.AddEdge(u, v, l).ok());
  };
  e(0, 1, 0);  // friends
  e(1, 2, 0);
  e(2, 0, 0);  // friend triangle 0-1-2
  e(3, 4, 0);
  e(4, 5, 1);  // enemy!
  e(5, 3, 0);  // 3-4-5 is NOT a friend triangle
  e(0, 6, 2);
  e(1, 6, 2);  // both 0 and 1 like item 6
  e(2, 7, 2);
  e(4, 8, 2);
  return std::move(b).Build().value();
}

QueryGraph FriendTriangle() {
  GraphBuilder b;
  for (int i = 0; i < 3; ++i) b.AddVertex(0);
  EXPECT_TRUE(b.AddEdge(0, 1, 0).ok());
  EXPECT_TRUE(b.AddEdge(1, 2, 0).ok());
  EXPECT_TRUE(b.AddEdge(2, 0, 0).ok());
  return QueryGraph::Create(std::move(b).Build().value(), "friend-triangle").value();
}

QueryGraph CoLikedItem() {
  // Two friends liking the same item.
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(0);
  b.AddVertex(1);
  EXPECT_TRUE(b.AddEdge(0, 1, 0).ok());  // friend
  EXPECT_TRUE(b.AddEdge(0, 2, 2).ok());  // likes
  EXPECT_TRUE(b.AddEdge(1, 2, 2).ok());  // likes
  return QueryGraph::Create(std::move(b).Build().value(), "co-liked").value();
}

TEST(EdgeLabelGraphTest, LabelsStoredAndQueried) {
  Graph g = RelationGraph();
  EXPECT_TRUE(g.has_edge_labels());
  EXPECT_EQ(g.EdgeLabelBetween(4, 5), 1u);
  EXPECT_EQ(g.EdgeLabelBetween(5, 4), 1u);  // symmetric
  EXPECT_EQ(g.EdgeLabelBetween(0, 1), 0u);
  EXPECT_EQ(g.EdgeLabelBetween(0, 6), 2u);
  EXPECT_EQ(g.EdgeLabelBetween(0, 5), 0u);  // absent edge
  EXPECT_TRUE(g.HasEdgeWithLabel(4, 5, 1));
  EXPECT_FALSE(g.HasEdgeWithLabel(4, 5, 0));
  EXPECT_FALSE(g.HasEdgeWithLabel(0, 5, 0));  // absent edge
}

TEST(EdgeLabelGraphTest, UnlabelledGraphStoresNoLabels) {
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(0);
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = std::move(b).Build().value();
  EXPECT_FALSE(g.has_edge_labels());
  EXPECT_EQ(g.EdgeLabelBetween(0, 1), 0u);
}

TEST(EdgeLabelGraphTest, DuplicateEdgeKeepsFirstLabel) {
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(0);
  EXPECT_TRUE(b.AddEdge(0, 1, 5).ok());
  EXPECT_TRUE(b.AddEdge(0, 1, 9).ok());
  Graph g = std::move(b).Build().value();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.EdgeLabelBetween(0, 1), 5u);
  EXPECT_EQ(g.EdgeLabelBetween(1, 0), 5u);
}

TEST(EdgeLabelGraphTest, EdgeLabelAtAlignedWithNeighbors) {
  Graph g = RelationGraph();
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_EQ(g.EdgeLabelAt(v, i), g.EdgeLabelBetween(v, nbrs[i]));
    }
  }
}

TEST(EdgeLabelMatchTest, FriendTriangleExcludesEnemyTriangle) {
  Graph g = RelationGraph();
  QueryGraph q = FriendTriangle();
  // Only 0-1-2 matches (3-4-5 has one enemy edge): 6 automorphic embeddings.
  EXPECT_EQ(BruteForceCount(q, g), 6u);
  auto r = RunFast(q, g).value();
  EXPECT_EQ(r.embeddings, 6u);
}

TEST(EdgeLabelMatchTest, MixedLabelPattern) {
  Graph g = RelationGraph();
  QueryGraph q = CoLikedItem();
  // Persons 0,1 both like item 6 and are friends: embeddings (0,1,6),(1,0,6).
  EXPECT_EQ(BruteForceCount(q, g), 2u);
  auto r = RunFast(q, g).value();
  EXPECT_EQ(r.embeddings, 2u);
}

TEST(EdgeLabelMatchTest, LabelMismatchYieldsNoResults) {
  Graph g = RelationGraph();
  // Triangle of enemies: no such triangle exists.
  GraphBuilder b;
  for (int i = 0; i < 3; ++i) b.AddVertex(0);
  ASSERT_TRUE(b.AddEdge(0, 1, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2, 1).ok());
  ASSERT_TRUE(b.AddEdge(2, 0, 1).ok());
  QueryGraph q = QueryGraph::Create(std::move(b).Build().value()).value();
  EXPECT_EQ(RunFast(q, g).value().embeddings, 0u);
}

TEST(EdgeLabelMatchTest, BaselinesHonorEdgeLabels) {
  Graph g = RelationGraph();
  for (const QueryGraph& q : {FriendTriangle(), CoLikedItem()}) {
    const std::uint64_t truth = BruteForceCount(q, g);
    for (BaselineKind kind : {BaselineKind::kCfl, BaselineKind::kDaf,
                              BaselineKind::kCeci, BaselineKind::kGpsm,
                              BaselineKind::kGsi}) {
      auto r = MakeBaseline(kind)->Run(q, g, BaselineOptions{});
      ASSERT_TRUE(r.ok()) << MakeBaseline(kind)->name();
      EXPECT_EQ(r->embeddings, truth)
          << MakeBaseline(kind)->name() << " on " << q.name();
    }
  }
}

// Property sweep: random edge-labelled graphs, all engines agree.
class EdgeLabelPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EdgeLabelPropertyTest, EnginesAgreeOnRandomLabelledGraphs) {
  Rng rng(GetParam());
  GraphBuilder b;
  const std::size_t n = 60;
  for (std::size_t i = 0; i < n; ++i) b.AddVertex(static_cast<Label>(rng.Uniform(3)));
  for (std::size_t i = 0; i < 4 * n; ++i) {
    ASSERT_TRUE(b.AddEdge(static_cast<VertexId>(rng.Uniform(n)),
                          static_cast<VertexId>(rng.Uniform(n)),
                          static_cast<Label>(rng.Uniform(2)))
                    .ok());
  }
  Graph g = std::move(b).Build().value();

  // Random connected labelled triangle query.
  GraphBuilder qb;
  for (int i = 0; i < 3; ++i) qb.AddVertex(static_cast<Label>(rng.Uniform(3)));
  ASSERT_TRUE(qb.AddEdge(0, 1, static_cast<Label>(rng.Uniform(2))).ok());
  ASSERT_TRUE(qb.AddEdge(1, 2, static_cast<Label>(rng.Uniform(2))).ok());
  ASSERT_TRUE(qb.AddEdge(2, 0, static_cast<Label>(rng.Uniform(2))).ok());
  QueryGraph q = QueryGraph::Create(std::move(qb).Build().value()).value();

  const std::uint64_t truth = BruteForceCount(q, g);
  EXPECT_EQ(RunFast(q, g).value().embeddings, truth);
  auto ceci = MakeBaseline(BaselineKind::kCeci)->Run(q, g, BaselineOptions{});
  ASSERT_TRUE(ceci.ok());
  EXPECT_EQ(ceci->embeddings, truth);
  auto cfl = MakeBaseline(BaselineKind::kCfl)->Run(q, g, BaselineOptions{});
  ASSERT_TRUE(cfl.ok());
  EXPECT_EQ(cfl->embeddings, truth);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeLabelPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace fast
