#include "core/explain.h"

#include <gtest/gtest.h>

#include "core/driver.h"
#include "test_util.h"

namespace fast {
namespace {

using testing::PaperDataGraph;
using testing::PaperQuery;
using testing::SmallLdbcGraph;

TEST(ExplainTest, PaperExamplePlan) {
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  auto plan = ExplainQuery(q, g).value();
  EXPECT_EQ(plan.steps.size(), 4u);
  EXPECT_EQ(plan.steps[0].query_vertex, plan.order.root);
  EXPECT_EQ(plan.steps[0].tree_parent, kInvalidVertex);
  EXPECT_GT(plan.cst_words, 0u);
  EXPECT_GT(plan.workload_estimate, 0.0);
  EXPECT_TRUE(plan.fits_bram);  // tiny CST, real device budget
  EXPECT_EQ(plan.predicted_partitions, 1u);
}

TEST(ExplainTest, StepsFollowOrderAndCountBackwardEdges) {
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  auto plan = ExplainQuery(q, g).value();
  std::size_t total_backward = 0;
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    EXPECT_EQ(plan.steps[i].query_vertex, plan.order.order[i]);
    total_backward += plan.steps[i].backward_non_tree;
  }
  // Every non-tree edge is checked exactly once (backward).
  const BfsTree tree = BfsTree::Build(q, plan.order.root);
  std::size_t non_tree_edges = 0;
  for (VertexId u = 0; u < q.NumVertices(); ++u) {
    non_tree_edges += tree.non_tree_neighbors(u).size();
  }
  EXPECT_EQ(total_backward, non_tree_edges / 2);
}

TEST(ExplainTest, PredictedCyclesOrderedByVariant) {
  Graph g = SmallLdbcGraph();
  for (int qi : {0, 2, 8}) {
    auto plan = ExplainQuery(LdbcQuery(qi).value(), g).value();
    EXPECT_GE(plan.predicted_cycles_basic, plan.predicted_cycles_task);
    EXPECT_GE(plan.predicted_cycles_task, plan.predicted_cycles_sep);
    EXPECT_GT(plan.predicted_cycles_sep, 0.0);
  }
}

TEST(ExplainTest, SmallDevicePredictsPartitioning) {
  Graph g = SmallLdbcGraph(0.2);
  FpgaConfig tiny;
  tiny.bram_words = 4096;
  auto plan = ExplainQuery(LdbcQuery(2).value(), g, tiny).value();
  EXPECT_FALSE(plan.fits_bram);
  EXPECT_GT(plan.predicted_partitions, 1u);
}

TEST(ExplainTest, WorkloadEstimateBoundsActualCount) {
  Graph g = SmallLdbcGraph();
  for (int qi : {0, 2, 5}) {
    QueryGraph q = LdbcQuery(qi).value();
    auto plan = ExplainQuery(q, g).value();
    auto run = RunFast(q, g).value();
    EXPECT_GE(plan.workload_estimate, static_cast<double>(run.embeddings))
        << q.name();
  }
}

TEST(ExplainTest, RejectsInvalidDevice) {
  FpgaConfig bad;
  bad.clock_mhz = 0;
  EXPECT_FALSE(ExplainQuery(PaperQuery(), PaperDataGraph(), bad).ok());
}

TEST(ExplainTest, ToStringMentionsKeyFacts) {
  auto plan = ExplainQuery(PaperQuery(), PaperDataGraph()).value();
  const std::string s = plan.ToString();
  EXPECT_NE(s.find("order:"), std::string::npos);
  EXPECT_NE(s.find("CST:"), std::string::npos);
  EXPECT_NE(s.find("predicted cycles"), std::string::npos);
  EXPECT_NE(s.find("fits BRAM"), std::string::npos);
}

}  // namespace
}  // namespace fast
