#include <gtest/gtest.h>

#include "fpga/config.h"
#include "fpga/cycle_model.h"
#include "fpga/fifo.h"

namespace fast {
namespace {

TEST(FpgaConfigTest, DefaultIsValidAlveoU200) {
  FpgaConfig c = AlveoU200Config();
  EXPECT_TRUE(c.Validate().ok());
  EXPECT_DOUBLE_EQ(c.clock_mhz, 300.0);
  EXPECT_EQ(c.bram_words, (35u << 20) / 4);
  EXPECT_EQ(c.dram_read_latency, 8u);
  EXPECT_EQ(c.bram_read_latency, 1u);
}

TEST(FpgaConfigTest, ValidationCatchesBadFields) {
  FpgaConfig c;
  c.clock_mhz = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = FpgaConfig{};
  c.dram_read_latency = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = FpgaConfig{};
  c.bram_read_latency = 9;  // > DRAM latency
  EXPECT_FALSE(c.Validate().ok());
  c = FpgaConfig{};
  c.max_new_partials = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = FpgaConfig{};
  c.port_max = 0;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(FpgaConfigTest, DerivedQuantities) {
  FpgaConfig c;
  EXPECT_EQ(c.Lf(), c.l1_read_buffer + c.l2_generate + c.l3_visited_validate +
                        c.l4_collect);
  EXPECT_EQ(c.Lt(), c.l5_generate_edge_task + c.l6_edge_validate);
  EXPECT_DOUBLE_EQ(c.ClockHz(), 300e6);
  EXPECT_DOUBLE_EQ(c.CyclesToSeconds(300e6), 1.0);
  EXPECT_GT(c.PcieSeconds(1e9), 0.0);
}

KernelCounters MakeCounters(std::uint64_t n, std::uint64_t m) {
  KernelCounters c;
  c.partial_results = n;
  c.edge_tasks = m;
  c.visited_tasks = n;
  c.rounds = 1;
  return c;
}

TEST(CycleModelTest, SerialMatchesEq1) {
  FpgaConfig c;
  const auto counters = MakeCounters(1000, 500);
  EXPECT_DOUBLE_EQ(SerialCycles(c, counters), 1000.0 * c.Lf() + 500.0 * c.Lt());
}

TEST(CycleModelTest, BasicMatchesEq2Shape) {
  FpgaConfig c;
  const auto counters = MakeCounters(100000, 50000);
  const double expected = (100000.0 * c.Lf() + 50000.0 * c.Lt()) / c.max_new_partials +
                          4.0 * 100000 + 2.0 * 50000 + (c.Lf() + c.Lt());
  EXPECT_DOUBLE_EQ(KernelCycles(c, FastVariant::kBasic, counters), expected);
}

TEST(CycleModelTest, PipelineBeatsSerial) {
  FpgaConfig c;
  const auto counters = MakeCounters(1u << 20, 1u << 19);
  EXPECT_LT(KernelCycles(c, FastVariant::kBasic, counters),
            SerialCycles(c, counters));
}

TEST(CycleModelTest, VariantOrderingMatchesPaper) {
  // For any sizeable workload: DRAM > BASIC > TASK > SEP (Figs. 7, 11, 12).
  FpgaConfig c;
  for (std::uint64_t n : {std::uint64_t{1} << 16, std::uint64_t{1} << 22}) {
    for (std::uint64_t m : {n / 2, n, 2 * n}) {
      const auto counters = MakeCounters(n, m);
      const double dram = KernelCycles(c, FastVariant::kDram, counters);
      const double basic = KernelCycles(c, FastVariant::kBasic, counters);
      const double task = KernelCycles(c, FastVariant::kTask, counters);
      const double sep = KernelCycles(c, FastVariant::kSep, counters);
      EXPECT_GT(dram, basic);
      EXPECT_GT(basic, task);
      EXPECT_GT(task, sep);
    }
  }
}

TEST(CycleModelTest, TaskGainBoundedByHalf) {
  // Sec. VI-C: task parallelism achieves *up to* 50% improvement.
  FpgaConfig c;
  for (std::uint64_t m : {std::uint64_t{1000}, std::uint64_t{100000},
                          std::uint64_t{400000}}) {
    const auto counters = MakeCounters(200000, m);
    const double basic = KernelCycles(c, FastVariant::kBasic, counters);
    const double task = KernelCycles(c, FastVariant::kTask, counters);
    // "Up to 50%" plus the small amortized-latency term of Eq. 2.
    EXPECT_LE(basic - task, 0.52 * basic);
  }
}

TEST(CycleModelTest, SepGainOverTaskBoundedByThird) {
  // Sec. VI-D: generator separation achieves at most ~33% over FAST-TASK.
  FpgaConfig c;
  for (std::uint64_t m : {std::uint64_t{1000}, std::uint64_t{200000},
                          std::uint64_t{800000}}) {
    const auto counters = MakeCounters(200000, m);
    const double task = KernelCycles(c, FastVariant::kTask, counters);
    const double sep = KernelCycles(c, FastVariant::kSep, counters);
    EXPECT_LE(task - sep, task / 3.0 + 1.0);
    EXPECT_GE(task - sep, 0.0);
  }
}

TEST(CycleModelTest, DramToBasicRatioNearReadLatencyRatio) {
  // Fig. 7: ~5x speedup, "close to the ratio of the read latency".
  FpgaConfig c;
  const auto counters = MakeCounters(1u << 22, 1u << 22);
  const double ratio = KernelCycles(c, FastVariant::kDram, counters) /
                       KernelCycles(c, FastVariant::kBasic, counters);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, static_cast<double>(c.dram_read_latency));
}

TEST(CycleModelTest, LoadAndFlushScaleLinearly) {
  FpgaConfig c;
  EXPECT_GT(CstLoadCycles(c, 1024), 0.0);
  EXPECT_NEAR(CstLoadCycles(c, 2 * 1024 * 1024) - CstLoadCycles(c, 1024 * 1024),
              1024.0 * 1024.0 / c.dram_burst_words_per_cycle, 1.0);
  EXPECT_DOUBLE_EQ(ResultFlushCycles(c, 0, 4), 0.0);
  EXPECT_DOUBLE_EQ(ResultFlushCycles(c, 8, 4), 32.0 / c.dram_burst_words_per_cycle);
}

TEST(CycleModelTest, PartialBufferWordsMatchesSecVIB) {
  FpgaConfig c;
  c.max_new_partials = 100;
  // (|V(q)|-1) * N_o slots of |V(q)| words.
  EXPECT_EQ(PartialBufferWords(c, 5), 4u * 100u * 5u);
  EXPECT_EQ(PartialBufferWords(c, 0), 0u);
}

TEST(CycleModelTest, CountersAccumulate) {
  KernelCounters a = MakeCounters(10, 20);
  a.max_buffer_entries = 5;
  KernelCounters b = MakeCounters(1, 2);
  b.results = 3;
  b.max_buffer_entries = 9;
  a += b;
  EXPECT_EQ(a.partial_results, 11u);
  EXPECT_EQ(a.edge_tasks, 22u);
  EXPECT_EQ(a.results, 3u);
  EXPECT_EQ(a.max_buffer_entries, 9u);
  EXPECT_EQ(a.rounds, 2u);
}

TEST(FastVariantTest, Names) {
  EXPECT_STREQ(FastVariantName(FastVariant::kDram), "FAST-DRAM");
  EXPECT_STREQ(FastVariantName(FastVariant::kBasic), "FAST-BASIC");
  EXPECT_STREQ(FastVariantName(FastVariant::kTask), "FAST-TASK");
  EXPECT_STREQ(FastVariantName(FastVariant::kSep), "FAST-SEP");
}

// ---- Fifo ----

TEST(FifoTest, PushPopFifoOrder) {
  Fifo<int> f(4);
  f.Push(1);
  f.Push(2);
  f.Push(3);
  EXPECT_EQ(f.Pop(), 1);
  EXPECT_EQ(f.Pop(), 2);
  EXPECT_EQ(f.Pop(), 3);
  EXPECT_TRUE(f.Empty());
}

TEST(FifoTest, TryPushFailsWhenFull) {
  Fifo<int> f(2);
  EXPECT_TRUE(f.TryPush(1));
  EXPECT_TRUE(f.TryPush(2));
  EXPECT_TRUE(f.Full());
  EXPECT_FALSE(f.TryPush(3));
  EXPECT_EQ(f.Size(), 2u);
}

TEST(FifoTest, HighWaterMarkTracksPeak) {
  Fifo<int> f(8);
  f.Push(1);
  f.Push(2);
  f.Pop();
  f.Push(3);
  f.Push(4);
  EXPECT_EQ(f.high_water_mark(), 3u);
  EXPECT_EQ(f.total_pushed(), 4u);
}

TEST(FifoDeathTest, PopOnEmptyAborts) {
  Fifo<int> f(2);
  EXPECT_DEATH(f.Pop(), "underflow");
}

TEST(FifoDeathTest, PushOnFullAborts) {
  Fifo<int> f(1);
  f.Push(1);
  EXPECT_DEATH(f.Push(2), "overflow");
}

}  // namespace
}  // namespace fast
