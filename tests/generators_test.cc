#include "graph/generators.h"

#include <gtest/gtest.h>

#include "core/driver.h"
#include "graph/directed.h"
#include "query/pattern.h"
#include "test_util.h"

namespace fast {
namespace {

TEST(ErdosRenyiTest, BasicShape) {
  Graph g = GenerateErdosRenyi(200, 800, 4, 1).value();
  EXPECT_EQ(g.NumVertices(), 200u);
  EXPECT_LE(g.NumEdges(), 800u);
  EXPECT_GT(g.NumEdges(), 700u);  // few duplicate/self-loop losses
  EXPECT_LE(g.NumLabels(), 4u);
}

TEST(ErdosRenyiTest, DeterministicAndSeedSensitive) {
  Graph a = GenerateErdosRenyi(100, 300, 3, 7).value();
  Graph b = GenerateErdosRenyi(100, 300, 3, 7).value();
  Graph c = GenerateErdosRenyi(100, 300, 3, 8).value();
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_NE(a.NumEdges(), c.NumEdges());
}

TEST(ErdosRenyiTest, RejectsBadArguments) {
  EXPECT_FALSE(GenerateErdosRenyi(0, 10, 2, 1).ok());
  EXPECT_FALSE(GenerateErdosRenyi(10, 10, 0, 1).ok());
}

TEST(BarabasiAlbertTest, PowerLawDegrees) {
  Graph g = GenerateBarabasiAlbert(2000, 3, 4, 5).value();
  EXPECT_EQ(g.NumVertices(), 2000u);
  // Preferential attachment: hubs far above the average degree.
  EXPECT_GT(g.MaxDegree(), 8 * g.AverageDegree());
}

TEST(BarabasiAlbertTest, RejectsBadArguments) {
  EXPECT_FALSE(GenerateBarabasiAlbert(0, 2, 2, 1).ok());
  EXPECT_FALSE(GenerateBarabasiAlbert(10, 0, 2, 1).ok());
  EXPECT_FALSE(GenerateBarabasiAlbert(10, 2, 0, 1).ok());
}

TEST(PlantedCliqueTest, CliquesAreFindable) {
  PlantedCliqueConfig config;
  config.num_vertices = 3000;
  config.clique_stride = 300;
  config.clique_density = 1.0;  // full cliques
  Graph g = GeneratePlantedCliques(config, 3).value();

  auto clique4 = ParsePattern("(a:0)-(b:0)-(c:0)-(d:0); (a)-(c); (a)-(d); (b)-(d)")
                     .value();
  auto r = RunFast(clique4, g).value();
  // ~10 planted 4-cliques, 24 automorphisms each, plus any background ones.
  EXPECT_GE(r.embeddings, 9u * 24u);
}

TEST(PlantedCliqueTest, RejectsBadConfig) {
  PlantedCliqueConfig config;
  config.num_vertices = 2;
  config.clique_size = 4;
  EXPECT_FALSE(GeneratePlantedCliques(config, 1).ok());
  config = PlantedCliqueConfig{};
  config.clique_label = 99;
  EXPECT_FALSE(GeneratePlantedCliques(config, 1).ok());
  config = PlantedCliqueConfig{};
  config.clique_stride = 0;
  EXPECT_FALSE(GeneratePlantedCliques(config, 1).ok());
}

TEST(GeneratorMatchTest, EnginesAgreeOnGeneratedGraphs) {
  Graph g = GenerateErdosRenyi(80, 320, 3, 11).value();
  auto triangle = ParsePattern("(a:0)-(b:1)-(c:2); (a)-(c)").value();
  EXPECT_EQ(RunFast(triangle, g).value().embeddings,
            testing::BruteForceCount(triangle, g));
}

// ---- Directed encoding ----

TEST(DirectedTest, EncodingShape) {
  DirectedGraphBuilder b(/*aux_label=*/9);
  b.AddVertex(0);
  b.AddVertex(1);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = b.BuildEncoded().value();
  EXPECT_EQ(g.NumVertices(), 3u);  // 2 original + 1 auxiliary
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.label(2), 9u);
  EXPECT_TRUE(g.HasEdgeWithLabel(0, 2, kDirectedOutLabel));
  EXPECT_TRUE(g.HasEdgeWithLabel(2, 1, kDirectedInLabel));
}

TEST(DirectedTest, RejectsReservedLabelAndSelfLoops) {
  DirectedGraphBuilder b(9);
  b.AddVertex(9);
  EXPECT_FALSE(b.BuildEncoded().ok());
  DirectedGraphBuilder b2(9);
  b2.AddVertex(0);
  EXPECT_FALSE(b2.AddEdge(0, 0).ok());
}

// Directed matching: count directed 3-cycles a->b->c->a in a small digraph
// and verify against hand enumeration.
TEST(DirectedTest, DirectedTriangleCounting) {
  constexpr Label kAux = 7;
  // Data: vertices 0..3 (all label 0). Directed edges:
  // 0->1, 1->2, 2->0 (a directed 3-cycle), plus 1->0 and 2->1 and 0->3.
  DirectedGraphBuilder data(kAux);
  for (int i = 0; i < 4; ++i) data.AddVertex(0);
  for (auto [a, b] : std::vector<std::pair<int, int>>{
           {0, 1}, {1, 2}, {2, 0}, {1, 0}, {2, 1}, {0, 3}}) {
    ASSERT_TRUE(data.AddEdge(static_cast<VertexId>(a), static_cast<VertexId>(b)).ok());
  }
  Graph g = data.BuildEncoded().value();

  // Query: directed triangle u0->u1->u2->u0.
  DirectedGraphBuilder query(kAux);
  for (int i = 0; i < 3; ++i) query.AddVertex(0);
  ASSERT_TRUE(query.AddEdge(0, 1).ok());
  ASSERT_TRUE(query.AddEdge(1, 2).ok());
  ASSERT_TRUE(query.AddEdge(2, 0).ok());
  QueryGraph q = QueryGraph::Create(query.BuildEncoded().value(), "dir-tri").value();

  // The only directed 3-cycle is 0->1->2->0; its 3 rotations are distinct
  // embeddings (no reflections: the reverse cycle 0->2->1->0 does not exist).
  auto r = RunFast(q, g).value();
  EXPECT_EQ(r.embeddings, 3u);
  EXPECT_EQ(testing::BruteForceCount(q, g), 3u);
}

TEST(DirectedTest, AntiparallelEdgesBothMatch) {
  constexpr Label kAux = 7;
  DirectedGraphBuilder data(kAux);
  data.AddVertex(0);
  data.AddVertex(0);
  ASSERT_TRUE(data.AddEdge(0, 1).ok());
  ASSERT_TRUE(data.AddEdge(1, 0).ok());
  Graph g = data.BuildEncoded().value();

  DirectedGraphBuilder query(kAux);
  query.AddVertex(0);
  query.AddVertex(0);
  ASSERT_TRUE(query.AddEdge(0, 1).ok());
  QueryGraph q = QueryGraph::Create(query.BuildEncoded().value(), "dir-edge").value();

  // Both directions exist, so the single directed query edge matches twice.
  EXPECT_EQ(RunFast(q, g).value().embeddings, 2u);
}

TEST(DirectedTest, ProjectionDropsAuxiliaries) {
  const std::vector<VertexId> encoded{5, 7, 9, 100, 101};
  EXPECT_EQ(ProjectDirectedEmbedding(encoded, 3),
            (std::vector<VertexId>{5, 7, 9}));
}

}  // namespace
}  // namespace fast
