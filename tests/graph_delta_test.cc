// Tests for batched graph updates (src/graph/graph_delta.h): ApplyDelta
// rebuild semantics (append, compaction, removal-wins, relabel idiom) and
// the delta text format.

#include <gtest/gtest.h>

#include "graph/graph_delta.h"
#include "graph/graph_io.h"
#include "tests/test_util.h"

namespace fast {
namespace {

using testing::PaperDataGraph;

// A small labelled graph: 0:A-1:B-2:C path plus 0-2 closing the triangle.
Graph TriangleGraph() {
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(1);
  b.AddVertex(2);
  FAST_CHECK_OK(b.AddEdge(0, 1));
  FAST_CHECK_OK(b.AddEdge(1, 2));
  FAST_CHECK_OK(b.AddEdge(0, 2));
  auto g = std::move(b).Build();
  FAST_CHECK(g.ok());
  return std::move(g).value();
}

TEST(GraphDeltaTest, EmptyDeltaReproducesGraph) {
  const Graph base = PaperDataGraph();
  auto next = ApplyDelta(base, GraphDelta{});
  ASSERT_TRUE(next.ok()) << next.status();
  EXPECT_EQ(next->NumVertices(), base.NumVertices());
  EXPECT_EQ(next->NumEdges(), base.NumEdges());
  EXPECT_EQ(GraphToText(*next), GraphToText(base));
}

TEST(GraphDeltaTest, AddVerticesAppendDenseIds) {
  const Graph base = TriangleGraph();
  GraphDelta delta;
  delta.add_vertices = {7, 9};
  delta.add_edges = {{3, 4, 0}, {0, 3, 0}};  // new ids are 3 and 4
  auto next = ApplyDelta(base, delta);
  ASSERT_TRUE(next.ok()) << next.status();
  EXPECT_EQ(next->NumVertices(), 5u);
  EXPECT_EQ(next->label(3), 7u);
  EXPECT_EQ(next->label(4), 9u);
  EXPECT_TRUE(next->HasEdge(3, 4));
  EXPECT_TRUE(next->HasEdge(0, 3));
  EXPECT_EQ(next->NumEdges(), base.NumEdges() + 2);
}

TEST(GraphDeltaTest, RemoveEdgeIsOrderInsensitiveAndIdempotent) {
  const Graph base = TriangleGraph();
  GraphDelta delta;
  delta.remove_edges = {{2, 1}, {1, 2}};  // reversed + duplicate: one edge
  auto next = ApplyDelta(base, delta);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->NumEdges(), 2u);
  EXPECT_FALSE(next->HasEdge(1, 2));
  EXPECT_TRUE(next->HasEdge(0, 1));
  EXPECT_TRUE(next->HasEdge(0, 2));
  // Removing an absent edge is a no-op.
  GraphDelta absent;
  absent.remove_edges = {{0, 1}};
  auto again = ApplyDelta(*next, absent);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->NumEdges(), 1u);
}

TEST(GraphDeltaTest, RemoveVertexCompactsIdsAndDropsIncidentEdges) {
  const Graph base = PaperDataGraph();
  GraphDelta delta;
  delta.remove_vertices = {0};  // v1 in paper numbering: label A, degree 2
  auto next = ApplyDelta(base, delta);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->NumVertices(), base.NumVertices() - 1);
  EXPECT_EQ(next->NumEdges(), base.NumEdges() - base.degree(0));
  // Every surviving vertex shifts down by one; labels follow.
  for (VertexId v = 0; v < next->NumVertices(); ++v) {
    EXPECT_EQ(next->label(v), base.label(v + 1));
  }
  // Edge (2,6)->(1,5) in base numbering survives as (1,5) shifted.
  EXPECT_TRUE(base.HasEdge(1, 5));
  EXPECT_TRUE(next->HasEdge(0, 4));
}

TEST(GraphDeltaTest, RemovalWinsOverAddInSameDelta) {
  const Graph base = TriangleGraph();
  GraphDelta delta;
  delta.add_vertices = {4};
  delta.add_edges = {{2, 3, 0}};  // edge to a vertex removed below
  delta.remove_vertices = {3};
  auto next = ApplyDelta(base, delta);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->NumVertices(), 3u);
  EXPECT_EQ(next->NumEdges(), 3u);
}

TEST(GraphDeltaTest, RemoveThenAddRelabelsEdge) {
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(1);
  FAST_CHECK_OK(b.AddEdge(0, 1, 5));
  const Graph base = std::move(b).Build().value();

  // Re-adding without removing keeps the base label (first label wins).
  GraphDelta readd;
  readd.add_edges = {{0, 1, 9}};
  auto kept = ApplyDelta(base, readd);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->EdgeLabelBetween(0, 1), 5u);

  // The documented relabel idiom: remove + add in one delta.
  GraphDelta relabel;
  relabel.remove_edges = {{0, 1}};
  relabel.add_edges = {{0, 1, 9}};
  auto changed = ApplyDelta(base, relabel);
  ASSERT_TRUE(changed.ok());
  EXPECT_EQ(changed->EdgeLabelBetween(0, 1), 9u);
  EXPECT_EQ(changed->NumEdges(), 1u);
}

TEST(GraphDeltaTest, OutOfRangeIdsRejected) {
  const Graph base = TriangleGraph();
  GraphDelta bad_rv;
  bad_rv.remove_vertices = {3};
  EXPECT_EQ(ApplyDelta(base, bad_rv).status().code(), StatusCode::kInvalidArgument);

  GraphDelta bad_ae;
  bad_ae.add_edges = {{0, 3, 0}};
  EXPECT_EQ(ApplyDelta(base, bad_ae).status().code(), StatusCode::kInvalidArgument);

  GraphDelta bad_re;
  bad_re.remove_edges = {{0, 3}};
  EXPECT_EQ(ApplyDelta(base, bad_re).status().code(), StatusCode::kInvalidArgument);

  // The extended numbering makes ids of added vertices addressable.
  GraphDelta ok_ext;
  ok_ext.add_vertices = {1};
  ok_ext.add_edges = {{0, 3, 0}};
  EXPECT_TRUE(ApplyDelta(base, ok_ext).ok());
}

TEST(GraphDeltaTest, ParseDeltaTextRoundTrip) {
  auto delta = ParseDeltaText(
      "# add two vertices, rewire\n"
      "av 7\n"
      "av 9\n"
      "ae 3 4\n"
      "ae 0 3 2\n"
      "re 1 2\n"
      "rv 1\n");
  ASSERT_TRUE(delta.ok()) << delta.status();
  EXPECT_EQ(delta->add_vertices, (std::vector<Label>{7, 9}));
  ASSERT_EQ(delta->add_edges.size(), 2u);
  EXPECT_EQ(delta->add_edges[1].label, 2u);
  EXPECT_EQ(delta->remove_edges, (std::vector<std::pair<VertexId, VertexId>>{{1, 2}}));
  EXPECT_EQ(delta->remove_vertices, (std::vector<VertexId>{1}));
  EXPECT_EQ(delta->Summary(), "+2v -1v +2e -1e");

  const Graph base = TriangleGraph();
  auto next = ApplyDelta(base, *delta);
  ASSERT_TRUE(next.ok());
  // 3 base + 2 added - 1 removed.
  EXPECT_EQ(next->NumVertices(), 4u);
}

TEST(GraphDeltaTest, ParseDeltaTextRejectsMalformedLines) {
  EXPECT_EQ(ParseDeltaText("av\n").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseDeltaText("ae 1\n").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseDeltaText("xx 1 2\n").status().code(), StatusCode::kInvalidArgument);
  // Error messages carry the line number.
  auto bad = ParseDeltaText("av 1\nre 0\n");
  EXPECT_NE(bad.status().ToString().find("line 2"), std::string::npos);
}

TEST(GraphDeltaTest, ParseDeltaTextRejectsTrailingText) {
  // "1O" (typo'd 10) must not silently parse as label 1.
  EXPECT_EQ(ParseDeltaText("ae 4 5 1O\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseDeltaText("ae 4 5 xyz\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseDeltaText("av 1 2\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseDeltaText("rv 1 junk\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseDeltaText("re 0 1 2\n").status().code(),
            StatusCode::kInvalidArgument);
  // The optional ae label still parses when well-formed.
  auto ok = ParseDeltaText("ae 4 5 10\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->add_edges[0].label, 10u);
}

TEST(GraphDeltaTest, ParseDeltaTextRejects64BitValues) {
  // 2^32 would truncate to vertex 0 if cast blindly — must be a hard error.
  EXPECT_EQ(ParseDeltaText("rv 4294967296\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseDeltaText("ae 0 4294967296\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseDeltaText("av 4294967296\n").status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fast
