#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph_io.h"
#include "simd/bitset.h"
#include "util/rng.h"

namespace fast {
namespace {

Graph TriangleWithTail() {
  // 0-1-2 triangle (labels 0,1,2), tail 2-3 (label 1).
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(1);
  b.AddVertex(2);
  b.AddVertex(1);
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_TRUE(b.AddEdge(1, 2).ok());
  EXPECT_TRUE(b.AddEdge(2, 0).ok());
  EXPECT_TRUE(b.AddEdge(2, 3).ok());
  return std::move(b).Build().value();
}

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder b;
  Graph g = std::move(b).Build().value();
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.NumLabels(), 0u);
}

TEST(GraphBuilderTest, BasicCounts) {
  Graph g = TriangleWithTail();
  EXPECT_EQ(g.NumVertices(), 4u);
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_EQ(g.MaxDegree(), 3u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 2.0);
}

TEST(GraphBuilderTest, RejectsOutOfRangeEdge) {
  GraphBuilder b;
  b.AddVertex(0);
  EXPECT_FALSE(b.AddEdge(0, 5).ok());
}

TEST(GraphBuilderTest, DropsSelfLoops) {
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(0);
  EXPECT_TRUE(b.AddEdge(0, 0).ok());
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = std::move(b).Build().value();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(GraphBuilderTest, DeduplicatesParallelEdges) {
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(0);
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  EXPECT_TRUE(b.AddEdge(1, 0).ok());
  EXPECT_TRUE(b.AddEdge(0, 1).ok());
  Graph g = std::move(b).Build().value();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(GraphTest, AdjacencyIsSorted) {
  Graph g = TriangleWithTail();
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto nbrs = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  }
}

TEST(GraphTest, HasEdgeSymmetric) {
  Graph g = TriangleWithTail();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(3, 0));
}

TEST(GraphTest, HasEdgeOutOfRangeIsFalse) {
  Graph g = TriangleWithTail();
  EXPECT_FALSE(g.HasEdge(0, 99));
  EXPECT_FALSE(g.HasEdge(99, 0));
}

TEST(GraphTest, LabelIndex) {
  Graph g = TriangleWithTail();
  auto l1 = g.VerticesWithLabel(1);
  ASSERT_EQ(l1.size(), 2u);
  EXPECT_EQ(l1[0], 1u);
  EXPECT_EQ(l1[1], 3u);
  EXPECT_EQ(g.VerticesWithLabel(0).size(), 1u);
  EXPECT_EQ(g.VerticesWithLabel(2).size(), 1u);
  EXPECT_TRUE(g.VerticesWithLabel(99).empty());
  EXPECT_EQ(g.NumLabels(), 3u);
}

TEST(GraphTest, DegreesMatchAdjacency) {
  Graph g = TriangleWithTail();
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(g.degree(v), g.neighbors(v).size());
  }
}

TEST(GraphTest, SummaryMentionsCounts) {
  Graph g = TriangleWithTail();
  const std::string s = g.Summary();
  EXPECT_NE(s.find("|V|=4.00"), std::string::npos);
  EXPECT_NE(s.find("L=3"), std::string::npos);
}

TEST(GraphTest, MemoryBytesPositive) {
  EXPECT_GT(TriangleWithTail().MemoryBytes(), 0u);
}

// Property test: random graphs keep CSR invariants.
class RandomGraphTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphTest, CsrInvariantsHold) {
  Rng rng(GetParam());
  GraphBuilder b;
  const std::size_t n = 50 + rng.Uniform(100);
  for (std::size_t i = 0; i < n; ++i) b.AddVertex(static_cast<Label>(rng.Uniform(5)));
  const std::size_t m = rng.Uniform(4 * n);
  std::vector<std::pair<VertexId, VertexId>> inserted;
  for (std::size_t i = 0; i < m; ++i) {
    const auto u = static_cast<VertexId>(rng.Uniform(n));
    const auto v = static_cast<VertexId>(rng.Uniform(n));
    ASSERT_TRUE(b.AddEdge(u, v).ok());
    if (u != v) inserted.emplace_back(u, v);
  }
  Graph g = std::move(b).Build().value();

  // Symmetry + sortedness + degree bookkeeping.
  std::size_t degree_sum = 0;
  std::uint32_t max_deg = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto nbrs = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    EXPECT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end());
    for (VertexId w : nbrs) {
      EXPECT_NE(w, v);
      EXPECT_TRUE(g.HasEdge(w, v));
    }
    degree_sum += nbrs.size();
    max_deg = std::max(max_deg, g.degree(v));
  }
  EXPECT_EQ(degree_sum, 2 * g.NumEdges());
  EXPECT_EQ(max_deg, g.MaxDegree());
  // Every inserted edge must be present.
  for (auto [u, v] : inserted) EXPECT_TRUE(g.HasEdge(u, v));
  // Label index partitions the vertex set.
  std::size_t label_total = 0;
  for (Label l = 0; l < g.NumLabels(); ++l) {
    for (VertexId v : g.VerticesWithLabel(l)) EXPECT_EQ(g.label(v), l);
    label_total += g.VerticesWithLabel(l).size();
  }
  EXPECT_EQ(label_total, g.NumVertices());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---- Graph IO ----

TEST(GraphIoTest, RoundTrip) {
  Graph g = TriangleWithTail();
  const std::string text = GraphToText(g);
  auto parsed = ParseGraphText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->NumVertices(), g.NumVertices());
  EXPECT_EQ(parsed->NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(parsed->label(v), g.label(v));
    auto a = g.neighbors(v);
    auto b = parsed->neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(GraphIoTest, ParsesCommentsAndBlankLines) {
  auto g = ParseGraphText("# header\n\nt 2 1\nv 0 7\nv 1 7\ne 0 1\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1u);
  EXPECT_EQ(g->label(0), 7u);
}

TEST(GraphIoTest, RejectsNonDenseVertexIds) {
  EXPECT_FALSE(ParseGraphText("v 1 0\n").ok());
}

TEST(GraphIoTest, RejectsHeaderMismatch) {
  EXPECT_FALSE(ParseGraphText("t 2 2\nv 0 0\nv 1 0\ne 0 1\n").ok());
  EXPECT_FALSE(ParseGraphText("t 3 1\nv 0 0\nv 1 0\ne 0 1\n").ok());
}

TEST(GraphIoTest, RejectsUnknownTag) {
  EXPECT_FALSE(ParseGraphText("x 1 2\n").ok());
}

TEST(GraphIoTest, RejectsBadEdgeEndpoint) {
  EXPECT_FALSE(ParseGraphText("v 0 0\ne 0 9\n").ok());
}

TEST(GraphIoTest, LoadMissingFileIsNotFound) {
  auto g = LoadGraphFile("/nonexistent/path/graph.txt");
  EXPECT_EQ(g.status().code(), StatusCode::kNotFound);
}

TEST(GraphHubTest, BitmapRowsMirrorSortedAdjacency) {
  GraphBuilder b;
  const std::size_t n = 300;
  for (std::size_t i = 0; i < n; ++i) b.AddVertex(static_cast<Label>(i % 3));
  for (VertexId v = 1; v <= 100; ++v) ASSERT_TRUE(b.AddEdge(0, v).ok());
  for (VertexId v = 101; v <= 170; ++v) ASSERT_TRUE(b.AddEdge(1, v).ok());
  ASSERT_TRUE(b.AddEdge(200, 201).ok());
  const Graph g = std::move(b).Build().value();

  EXPECT_EQ(g.HubThreshold(), 64u);  // max(64, 300/32)
  EXPECT_EQ(g.NumHubs(), 2u);        // deg(0)=100, deg(1)=71 (+ edge to 0)
  EXPECT_TRUE(g.HubAdjacencyBitmap(200).empty());  // low degree
  EXPECT_TRUE(g.HubAdjacencyBitmap(999).empty());  // out of range
  for (VertexId hub : {VertexId{0}, VertexId{1}}) {
    const auto bits = g.HubAdjacencyBitmap(hub);
    ASSERT_FALSE(bits.empty());
    std::size_t set_bits = 0;
    for (VertexId v = 0; v < n; ++v) {
      const bool in_bitmap = simd::TestBit(bits, v);
      EXPECT_EQ(in_bitmap, g.HasEdge(hub, v)) << "hub " << hub << " v " << v;
      set_bits += in_bitmap ? 1 : 0;
    }
    EXPECT_EQ(set_bits, g.degree(hub));
  }
}

TEST(GraphHubTest, NoHubsBelowThreshold) {
  Graph g = TriangleWithTail();
  EXPECT_EQ(g.NumHubs(), 0u);
  EXPECT_TRUE(g.HubAdjacencyBitmap(0).empty());
  EXPECT_GE(g.HubThreshold(), 64u);
}

TEST(GraphIoTest, SaveAndLoadFile) {
  Graph g = TriangleWithTail();
  const std::string path = ::testing::TempDir() + "/fast_graph_io_test.txt";
  ASSERT_TRUE(SaveGraphFile(g, path).ok());
  auto loaded = LoadGraphFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumVertices(), 4u);
  EXPECT_EQ(loaded->NumEdges(), 4u);
}

}  // namespace
}  // namespace fast
