// Cross-module integration tests: the whole pipeline against all baselines
// on generated LDBC workloads, including scalability and failure behaviours.

#include <gtest/gtest.h>

#include "baseline/baseline.h"
#include "core/driver.h"
#include "test_util.h"

namespace fast {
namespace {

using testing::BruteForceCount;
using testing::SmallLdbcGraph;

// Every engine in the repository agrees on every query of Fig. 6.
TEST(IntegrationTest, AllEnginesAgreeOnAllQueries) {
  Graph g = SmallLdbcGraph();
  for (int qi = 0; qi < kNumLdbcQueries; ++qi) {
    QueryGraph q = LdbcQuery(qi).value();
    const std::uint64_t truth = BruteForceCount(q, g);

    auto fast_result = RunFast(q, g);
    ASSERT_TRUE(fast_result.ok()) << q.name();
    EXPECT_EQ(fast_result->embeddings, truth) << "FAST on " << q.name();

    for (BaselineKind kind : {BaselineKind::kCfl, BaselineKind::kDaf,
                              BaselineKind::kCeci, BaselineKind::kGpsm,
                              BaselineKind::kGsi}) {
      auto matcher = MakeBaseline(kind);
      auto r = matcher->Run(q, g, BaselineOptions{});
      ASSERT_TRUE(r.ok()) << matcher->name() << " on " << q.name();
      EXPECT_EQ(r->embeddings, truth) << matcher->name() << " on " << q.name();
    }
  }
}

// Consistency across scale factors (the Fig. 16 axis): FAST and CECI agree
// where brute force is too slow to be the oracle.
TEST(IntegrationTest, FastAgreesWithCeciAcrossScaleFactors) {
  for (double sf : {0.05, 0.15, 0.3}) {
    Graph g = SmallLdbcGraph(sf);
    for (int qi : {0, 2, 5}) {
      QueryGraph q = LdbcQuery(qi).value();
      auto fast_result = RunFast(q, g).value();
      auto ceci = MakeBaseline(BaselineKind::kCeci)->Run(q, g, BaselineOptions{});
      ASSERT_TRUE(ceci.ok());
      EXPECT_EQ(fast_result.embeddings, ceci->embeddings)
          << q.name() << " sf=" << sf;
    }
  }
}

// Edge sampling (Fig. 17): fewer edges can only shrink the result set of an
// edge-monotone pattern, and counts stay consistent between engines.
TEST(IntegrationTest, EdgeSamplingMonotoneAndConsistent) {
  Graph g = SmallLdbcGraph(0.2);
  QueryGraph q = LdbcQuery(2).value();
  std::uint64_t prev = 0;
  for (double f : {0.2, 0.6, 1.0}) {
    Graph sampled = SampleEdges(g, f, 99).value();
    auto fast_result = RunFast(q, sampled).value();
    auto ceci = MakeBaseline(BaselineKind::kCeci)->Run(q, sampled, BaselineOptions{});
    ASSERT_TRUE(ceci.ok());
    EXPECT_EQ(fast_result.embeddings, ceci->embeddings) << "f=" << f;
    EXPECT_GE(fast_result.embeddings, prev) << "f=" << f;
    prev = fast_result.embeddings;
  }
}

// The full option matrix produces identical counts: variants x sharing x
// partition pressure.
TEST(IntegrationTest, OptionMatrixCountInvariance) {
  Graph g = SmallLdbcGraph(0.1);
  QueryGraph q = LdbcQuery(8).value();
  const std::uint64_t truth = BruteForceCount(q, g);
  for (FastVariant variant : {FastVariant::kBasic, FastVariant::kTask,
                              FastVariant::kSep}) {
    for (double delta : {0.0, 0.1, 0.25}) {
      for (std::size_t words : {std::size_t{0}, std::size_t{4096}, std::size_t{512}}) {
        FastRunOptions options;
        options.variant = variant;
        options.cpu_share_delta = delta;
        options.partition.max_size_words = words;
        options.partition.max_degree = words == 0 ? 0 : 128;
        auto r = RunFast(q, g, options);
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(r->embeddings, truth)
            << FastVariantName(variant) << " delta=" << delta << " words=" << words;
      }
    }
  }
}

// Simulated-time sanity on a non-trivial workload: the paper's headline
// ordering FAST < CPU baselines holds for the dense person queries.
TEST(IntegrationTest, SimulatedFastBeatsMeasuredCpuBaselines) {
  Graph g = SmallLdbcGraph(0.5);
  QueryGraph q = LdbcQuery(8).value();
  auto fast_result = RunFast(q, g).value();
  auto ceci = MakeBaseline(BaselineKind::kCeci)->Run(q, g, BaselineOptions{});
  ASSERT_TRUE(ceci.ok());
  ASSERT_EQ(fast_result.embeddings, ceci->embeddings);
  // The simulated kernel at 300 MHz processes ~1 result/cycle; the CPU
  // backtracker cannot beat that on this dense query.
  EXPECT_LT(fast_result.kernel_seconds, ceci->seconds);
}

// Timeout plumbing end to end.
TEST(IntegrationTest, BaselineTimeoutSurfacesAsInf) {
  Graph g = SmallLdbcGraph(0.5);
  QueryGraph q = LdbcQuery(8).value();
  BaselineOptions options;
  options.time_limit_seconds = 0.0;
  auto r = MakeBaseline(BaselineKind::kDaf)->Run(q, g, options);
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

// A query with no matches flows through the entire pipeline cleanly.
TEST(IntegrationTest, NoMatchQueryYieldsZeroEverywhere) {
  Graph g = SmallLdbcGraph();
  // Continent triangle: continents are never mutually adjacent.
  GraphBuilder b;
  for (int i = 0; i < 3; ++i) b.AddVertex(AsLabel(LdbcLabel::kContinent));
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  ASSERT_TRUE(b.AddEdge(2, 0).ok());
  QueryGraph q = QueryGraph::Create(std::move(b).Build().value(), "no-match").value();

  EXPECT_EQ(RunFast(q, g).value().embeddings, 0u);
  for (BaselineKind kind : {BaselineKind::kCfl, BaselineKind::kCeci,
                            BaselineKind::kGpsm, BaselineKind::kGsi}) {
    auto r = MakeBaseline(kind)->Run(q, g, BaselineOptions{});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->embeddings, 0u) << MakeBaseline(kind)->name();
  }
}

// Multi-FPGA returns the same counts as single-device runs on real workloads.
TEST(IntegrationTest, MultiFpgaCountMatchesSingle) {
  Graph g = SmallLdbcGraph(0.2);
  QueryGraph q = LdbcQuery(5).value();
  auto single = RunFast(q, g).value();
  FastRunOptions options;
  options.partition.max_size_words = 2048;
  options.partition.max_degree = 128;
  auto multi = RunMultiFpga(q, g, 3, options).value();
  EXPECT_EQ(multi.embeddings, single.embeddings);
}

}  // namespace
}  // namespace fast
