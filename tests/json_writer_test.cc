// Tests for the serve-bench JSON emission (bench/bench_serve_common.h):
// non-finite doubles must come out as null (JSON has no NaN/Infinity
// literals), number formatting must be locale-independent, and escaping must
// cover quotes, backslashes and control characters.

#include <clocale>
#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "bench/bench_serve_common.h"

namespace fast {
namespace {

using bench::JsonEscape;
using bench::JsonWriter;

TEST(JsonWriterTest, NonFiniteDoublesEmitNull) {
  JsonWriter w;
  w.Field("nan", std::nan(""));
  w.Field("pos_inf", std::numeric_limits<double>::infinity());
  w.Field("neg_inf", -std::numeric_limits<double>::infinity());
  w.Field("finite", 1.5);
  const std::string doc = w.Finish();
  EXPECT_NE(doc.find("\"nan\": null"), std::string::npos);
  EXPECT_NE(doc.find("\"pos_inf\": null"), std::string::npos);
  EXPECT_NE(doc.find("\"neg_inf\": null"), std::string::npos);
  EXPECT_NE(doc.find("\"finite\": 1.5"), std::string::npos);
  // The bare C library spellings must never leak into a value position.
  EXPECT_EQ(doc.find(": nan"), std::string::npos) << doc;
  EXPECT_EQ(doc.find(": inf"), std::string::npos) << doc;
  EXPECT_EQ(doc.find(": -inf"), std::string::npos) << doc;
}

TEST(JsonWriterTest, DoubleFormattingIgnoresLocale) {
  // Under a ',' decimal-point locale, snprintf("%g") would emit "2,5" —
  // invalid JSON. The writer must keep emitting '.' regardless. Not every
  // image ships de_DE; when unavailable the test still covers the default
  // locale path.
  const char* previous = std::setlocale(LC_NUMERIC, nullptr);
  const std::string saved = previous != nullptr ? previous : "C";
  const bool have_locale = std::setlocale(LC_NUMERIC, "de_DE.UTF-8") != nullptr;
  JsonWriter w;
  w.Field("v", 2.5);
  w.Field("small", 1.25e-7);
  const std::string doc = w.Finish();
  std::setlocale(LC_NUMERIC, saved.c_str());
  EXPECT_NE(doc.find("\"v\": 2.5"), std::string::npos) << doc;
  EXPECT_EQ(doc.find("2,5"), std::string::npos) << doc;
  EXPECT_NE(doc.find("1.25e-07"), std::string::npos) << doc;
  (void)have_locale;
}

TEST(JsonWriterTest, EscapesQuotesBackslashesAndControlCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonWriterTest, NestedScopesCommasAndIndentation) {
  JsonWriter w;
  w.Field("bench", "x");
  w.BeginObject("inner");
  w.Field("a", std::uint64_t{1});
  w.Field("b", true);
  w.EndObject();
  w.BeginArray("list");
  w.BeginObject();
  w.Field("id", "t0");
  w.EndObject();
  w.EndArray();
  const std::string doc = w.Finish();
  EXPECT_EQ(doc,
            "{\n"
            "  \"bench\": \"x\",\n"
            "  \"inner\": {\n"
            "    \"a\": 1,\n"
            "    \"b\": true\n"
            "  },\n"
            "  \"list\": [\n"
            "    {\n"
            "      \"id\": \"t0\"\n"
            "    }\n"
            "  ]\n"
            "}\n");
}

}  // namespace
}  // namespace fast
