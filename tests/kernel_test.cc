#include "core/kernel.h"

#include <gtest/gtest.h>

#include "core/cpu_matcher.h"
#include "cst/partition.h"
#include "query/matching_order.h"
#include "test_util.h"

namespace fast {
namespace {

using testing::BruteForceCount;
using testing::BruteForceEmbeddings;
using testing::PaperDataGraph;
using testing::PaperQuery;
using testing::SmallLdbcGraph;
using testing::ToSet;

MatchingOrder PaperOrder() {
  MatchingOrder order;
  order.root = 0;
  order.order = {0, 1, 2, 3};
  return order;
}

TEST(KernelTest, PaperExampleFindsBothEmbeddings) {
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  Cst cst = BuildCst(q, g, 0).value();
  ResultCollector collector(16);
  auto run = RunKernel(cst, PaperOrder(), FpgaConfig{}, &collector).value();
  EXPECT_EQ(run.embeddings, 2u);
  EXPECT_EQ(collector.count(), 2u);
  // Example 1's embedding M = {(u0,v1),(u1,v4),(u2,v3),(u3,v9)}.
  const Embedding m1{0, 3, 2, 8};
  const Embedding m2{1, 5, 4, 9};
  EXPECT_EQ(ToSet(collector.stored()), (std::set<Embedding>{m1, m2}));
}

TEST(KernelTest, MatchesBruteForceOnPaperExample) {
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  Cst cst = BuildCst(q, g, 0).value();
  auto run = RunKernel(cst, PaperOrder(), FpgaConfig{}, nullptr).value();
  EXPECT_EQ(run.embeddings, BruteForceCount(q, g));
}

TEST(KernelTest, CancelledTokenAbortsWithDeadlineExceeded) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  CancelToken cancel;
  cancel.Cancel();
  auto run = RunKernel(cst, PaperOrder(), FpgaConfig{}, nullptr,
                       /*round_trace=*/nullptr, &cancel);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(KernelTest, UntrippedTokenDoesNotPerturbResults) {
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  Cst cst = BuildCst(q, g, 0).value();
  CancelToken cancel;  // never tripped, no deadline
  auto run = RunKernel(cst, PaperOrder(), FpgaConfig{}, nullptr,
                       /*round_trace=*/nullptr, &cancel);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->embeddings, BruteForceCount(q, g));
}

TEST(KernelTest, RejectsMismatchedOrder) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  MatchingOrder bad;
  bad.root = 1;
  bad.order = {1, 0, 2, 3};
  EXPECT_FALSE(RunKernel(cst, bad, FpgaConfig{}, nullptr).ok());
  bad.order = {0, 1, 2};
  EXPECT_FALSE(RunKernel(cst, bad, FpgaConfig{}, nullptr).ok());
}

TEST(KernelTest, CountersAreConsistent) {
  Cst cst = BuildCst(PaperQuery(), PaperDataGraph(), 0).value();
  auto run = RunKernel(cst, PaperOrder(), FpgaConfig{}, nullptr).value();
  const KernelCounters& c = run.counters;
  EXPECT_EQ(c.visited_tasks, c.partial_results);  // one t_v per p_o
  EXPECT_GE(c.partial_results, run.embeddings);
  EXPECT_EQ(c.results, run.embeddings);
  EXPECT_GT(c.rounds, 0u);
  EXPECT_GT(c.edge_tasks, 0u);  // the paper query has non-tree edges
}

TEST(KernelTest, TinyBatchSizeStillExact) {
  // Exercises the resume-cursor path: N_o smaller than candidate lists.
  QueryGraph q = PaperQuery();
  Graph g = PaperDataGraph();
  Cst cst = BuildCst(q, g, 0).value();
  for (std::uint32_t no : {1u, 2u, 3u}) {
    FpgaConfig config;
    config.max_new_partials = no;
    auto run = RunKernel(cst, PaperOrder(), config, nullptr).value();
    EXPECT_EQ(run.embeddings, 2u) << "N_o=" << no;
  }
}

TEST(KernelTest, BufferBoundHolds) {
  // Sec. VI-B: deepest-first expansion bounds P at (|V(q)|-1) * N_o entries.
  Graph g = SmallLdbcGraph(0.2);
  for (int qi : {2, 5, 8}) {
    QueryGraph q = LdbcQuery(qi).value();
    auto order = ComputeMatchingOrder(q, g, OrderPolicy::kPathBased).value();
    Cst cst = BuildCst(q, g, order.root).value();
    for (std::uint32_t no : {4u, 64u}) {
      FpgaConfig config;
      config.max_new_partials = no;
      auto run = RunKernel(cst, order, config, nullptr).value();
      EXPECT_LE(run.counters.max_buffer_entries,
                static_cast<std::uint64_t>(q.NumVertices() - 1) * no)
          << q.name() << " N_o=" << no;
    }
  }
}

TEST(KernelTest, BatchSizeDoesNotChangeResults) {
  Graph g = SmallLdbcGraph(0.1);
  QueryGraph q = LdbcQuery(8).value();
  auto order = ComputeMatchingOrder(q, g, OrderPolicy::kPathBased).value();
  Cst cst = BuildCst(q, g, order.root).value();
  std::uint64_t reference = 0;
  bool first = true;
  for (std::uint32_t no : {1u, 7u, 256u, 4096u}) {
    FpgaConfig config;
    config.max_new_partials = no;
    auto run = RunKernel(cst, order, config, nullptr).value();
    if (first) {
      reference = run.embeddings;
      first = false;
    } else {
      EXPECT_EQ(run.embeddings, reference) << "N_o=" << no;
    }
  }
}

// The kernel must agree with the CPU matcher and brute force on every LDBC
// query and every order policy.
class KernelEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, OrderPolicy>> {};

TEST_P(KernelEquivalenceTest, AgreesWithCpuAndBruteForce) {
  const auto [query_index, policy] = GetParam();
  Graph g = SmallLdbcGraph();
  QueryGraph q = LdbcQuery(query_index).value();
  auto order = ComputeMatchingOrder(q, g, policy, /*seed=*/5).value();
  Cst cst = BuildCst(q, g, order.root).value();

  ResultCollector kernel_collector(1000);
  auto run = RunKernel(cst, order, FpgaConfig{}, &kernel_collector).value();

  ResultCollector cpu_collector(1000);
  const std::uint64_t cpu = MatchCstOnCpu(cst, order, &cpu_collector).value();

  EXPECT_EQ(run.embeddings, cpu) << q.name();
  EXPECT_EQ(run.embeddings, BruteForceCount(q, g)) << q.name();
  // The kernel discovers results in batched-BFS order, the CPU matcher in
  // DFS order; the stored samples are only comparable when complete.
  if (run.embeddings <= 1000) {
    EXPECT_EQ(ToSet(kernel_collector.stored()), ToSet(cpu_collector.stored()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    QueriesTimesPolicies, KernelEquivalenceTest,
    ::testing::Combine(::testing::Range(0, kNumLdbcQueries),
                       ::testing::Values(OrderPolicy::kPathBased, OrderPolicy::kCeci,
                                         OrderPolicy::kRandom)));

TEST(KernelTest, PartitionedExecutionMatchesWhole) {
  Graph g = SmallLdbcGraph(0.1);
  QueryGraph q = LdbcQuery(5).value();
  auto order = ComputeMatchingOrder(q, g, OrderPolicy::kPathBased).value();
  Cst cst = BuildCst(q, g, order.root).value();
  auto whole = RunKernel(cst, order, FpgaConfig{}, nullptr).value();

  PartitionConfig pconfig;
  pconfig.max_size_words = std::max<std::size_t>(cst.SizeWords() / 7, 32);
  auto parts = PartitionCstToVector(cst, order, pconfig, nullptr).value();
  std::uint64_t total = 0;
  for (const auto& p : parts) {
    total += RunKernel(p, order, FpgaConfig{}, nullptr).value().embeddings;
  }
  EXPECT_EQ(total, whole.embeddings);
}

TEST(SimulatedKernelSecondsTest, VariantOrderingHolds) {
  Graph g = SmallLdbcGraph(0.1);
  QueryGraph q = LdbcQuery(2).value();
  auto order = ComputeMatchingOrder(q, g, OrderPolicy::kPathBased).value();
  Cst cst = BuildCst(q, g, order.root).value();
  FpgaConfig config;
  auto run = RunKernel(cst, order, config, nullptr).value();
  const double dram = SimulatedKernelSeconds(config, FastVariant::kDram, run,
                                             cst.SizeWords(), q.NumVertices());
  const double basic = SimulatedKernelSeconds(config, FastVariant::kBasic, run,
                                              cst.SizeWords(), q.NumVertices());
  const double task = SimulatedKernelSeconds(config, FastVariant::kTask, run,
                                             cst.SizeWords(), q.NumVertices());
  const double sep = SimulatedKernelSeconds(config, FastVariant::kSep, run,
                                            cst.SizeWords(), q.NumVertices());
  EXPECT_GT(dram, basic);
  EXPECT_GT(basic, task);
  EXPECT_GT(task, sep);
  EXPECT_GT(sep, 0.0);
}

}  // namespace
}  // namespace fast
